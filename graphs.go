package plurality

import (
	"fmt"

	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/trace"
)

// Topology selects a graph family for RunOnGraph — the paper's §2.5
// open problem of running the dynamics beyond the complete graph.
// Construct values with the topology constructors below.
type Topology struct {
	name string
	// degree is the per-vertex adjacency-slot count the topology will
	// materialize (0 for the complete graph, which stores no
	// adjacency) — the Experiment scheduler's per-trial memory model.
	degree int64
	// check is the static (allocation-free) part of the build's shape
	// validation, mirroring its error texts, so Experiment.compile can
	// reject a misshapen topology loudly before any trial runs.
	check func(n int) error
	build func(n int, r *rng.Rand) (graph.Graph, error)
}

// CompleteTopology is the paper's setting: every vertex samples
// uniformly among all n vertices (self-loops included).
func CompleteTopology() Topology {
	return Topology{
		name: "complete",
		check: func(n int) error {
			if n < 1 {
				return fmt.Errorf("%w: Complete needs n >= 1, got %d", graph.ErrGraph, n)
			}
			return nil
		},
		build: func(n int, _ *rng.Rand) (graph.Graph, error) {
			return graph.NewComplete(n)
		},
	}
}

// RingTopology is the circulant graph where each vertex is adjacent
// to the radius nearest vertices on each side — the low-conductance
// extreme.
func RingTopology(radius int) Topology {
	return Topology{
		name:   "ring",
		degree: 2 * int64(radius),
		check: func(n int) error {
			if n < 3 || radius < 1 || radius >= (n+1)/2 {
				return fmt.Errorf("%w: Ring needs n >= 3, 1 <= radius < n/2, got n=%d radius=%d", graph.ErrGraph, n, radius)
			}
			return nil
		},
		build: func(n int, _ *rng.Rand) (graph.Graph, error) {
			return graph.NewRing(n, radius)
		},
	}
}

// TorusTopology is the side×side two-dimensional torus; RunOnGraph
// requires N = side².
func TorusTopology(side int) Topology {
	check := func(n int) error {
		if side*side != n {
			return fmt.Errorf("plurality: torus side %d does not match N=%d", side, n)
		}
		if side < 3 {
			return fmt.Errorf("%w: Torus needs w, h >= 3, got %dx%d", graph.ErrGraph, side, side)
		}
		return nil
	}
	return Topology{
		name:   "torus",
		degree: 4,
		check:  check,
		build: func(n int, _ *rng.Rand) (graph.Graph, error) {
			if err := check(n); err != nil {
				return nil, err
			}
			return graph.NewTorus(side, side)
		},
	}
}

// RandomRegularTopology is a uniformly random simple d-regular graph —
// an expander with high probability, the fast sparse topology.
func RandomRegularTopology(d int) Topology {
	return Topology{
		name:   "random-regular",
		degree: int64(d),
		check: func(n int) error {
			if n < 4 || d < 3 || d >= n || n*d%2 != 0 {
				return fmt.Errorf("%w: RandomRegular needs n >= 4, 3 <= d < n, n·d even; got n=%d d=%d", graph.ErrGraph, n, d)
			}
			return nil
		},
		build: func(n int, r *rng.Rand) (graph.Graph, error) {
			return graph.NewRandomRegular(n, d, r)
		},
	}
}

// HypercubeTopology is the dim-dimensional hypercube; RunOnGraph
// requires N = 2^dim.
func HypercubeTopology(dim int) Topology {
	check := func(n int) error {
		if dim < 1 || dim > 30 {
			return fmt.Errorf("%w: Hypercube needs 1 <= dim <= 30, got %d", graph.ErrGraph, dim)
		}
		if n != 1<<dim {
			return fmt.Errorf("plurality: hypercube dim %d does not match N=%d", dim, n)
		}
		return nil
	}
	return Topology{
		name:   "hypercube",
		degree: int64(dim),
		check:  check,
		build: func(n int, _ *rng.Rand) (graph.Graph, error) {
			if err := check(n); err != nil {
				return nil, err
			}
			return graph.NewHypercube(dim)
		},
	}
}

// GraphConfig describes an agent-based run on an explicit topology.
// Unlike Config's count-space engine, this engine is O(n) per round
// but works on any graph.
type GraphConfig struct {
	// N is the number of vertices. Required.
	N int
	// Topology is the graph family. Required.
	Topology Topology
	// Protocol must be one of ThreeMajority(), TwoChoices() or
	// Voter() — the rules with per-vertex forms on general graphs.
	Protocol Protocol
	// Init generates the opinion counts; vertices are assigned
	// uniformly at random (well-mixed start). Required.
	Init Init
	// Seed makes runs reproducible.
	Seed uint64
	// MaxRounds bounds the run; 0 means 100000.
	MaxRounds int
	// Parallelism bounds the worker goroutines advancing each round
	// (0 = GOMAXPROCS, 1 = serial). Rounds are sharded by vertex index
	// into fixed n-derived shards with per-(seed, round, shard) RNG
	// streams, so the result is identical for every Parallelism value.
	Parallelism int
	// Trace, if non-nil, samples the opinion counts between rounds
	// (after the sharded-round barrier, so the trace too is identical
	// for every Parallelism value). Nil costs nothing.
	Trace *trace.Sampler
}

// RunOnGraph executes an agent-based run on the configured topology.
// Topology construction and the initial assignment shuffle draw from
// the stream rng.DeriveSeed(Seed, 0); rounds draw from the sharded
// per-(rng.DeriveSeed(Seed, 1), round, shard) streams (see
// internal/graph.StepSharded).
//
// Deprecated: use Experiment with Mode: ModeGraph, which adds trials,
// stop conditions and streaming. This wrapper keeps its exact streams:
// cfg.Seed is consumed as the engine seed directly, which is what an
// Experiment derives per trial (rng.DeriveSeed(Seed, i)).
func RunOnGraph(cfg GraphConfig) (Result, error) {
	c, err := cfg.experiment().compile()
	if err != nil {
		return Result{}, err
	}
	tr, err := c.runFacade(cfg.Seed, cfg.Trace, nil, cfg.Parallelism)
	if err != nil {
		return Result{}, err
	}
	return Result{Rounds: int(tr.Rounds), Consensus: tr.Consensus, Winner: tr.Winner}, nil
}

// experiment translates the legacy GraphConfig into its graph-mode
// Experiment (the caller-owned Trace sampler stays outside).
func (cfg GraphConfig) experiment() Experiment {
	return Experiment{
		Mode:        ModeGraph,
		N:           int64(cfg.N),
		Topology:    cfg.Topology,
		Protocol:    cfg.Protocol,
		Init:        cfg.Init,
		Seed:        cfg.Seed,
		MaxRounds:   cfg.MaxRounds,
		Parallelism: cfg.Parallelism,
	}
}

func ruleFor(p Protocol) (graph.Rule, error) {
	switch p.Name() {
	case "3-majority":
		return graph.ThreeMajorityRule{}, nil
	case "2-choices":
		return graph.TwoChoicesRule{}, nil
	case "voter":
		return graph.VoterRule{}, nil
	default:
		return nil, fmt.Errorf("%w: protocol %q has no general-graph rule", errConfig, p.Name())
	}
}
