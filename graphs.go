package plurality

import (
	"fmt"

	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/trace"
)

// Topology selects a graph family for RunOnGraph — the paper's §2.5
// open problem of running the dynamics beyond the complete graph.
// Construct values with the topology constructors below.
type Topology struct {
	name  string
	build func(n int, r *rng.Rand) (graph.Graph, error)
}

// CompleteTopology is the paper's setting: every vertex samples
// uniformly among all n vertices (self-loops included).
func CompleteTopology() Topology {
	return Topology{name: "complete", build: func(n int, _ *rng.Rand) (graph.Graph, error) {
		return graph.NewComplete(n)
	}}
}

// RingTopology is the circulant graph where each vertex is adjacent
// to the radius nearest vertices on each side — the low-conductance
// extreme.
func RingTopology(radius int) Topology {
	return Topology{name: "ring", build: func(n int, _ *rng.Rand) (graph.Graph, error) {
		return graph.NewRing(n, radius)
	}}
}

// TorusTopology is the side×side two-dimensional torus; RunOnGraph
// requires N = side².
func TorusTopology(side int) Topology {
	return Topology{name: "torus", build: func(n int, _ *rng.Rand) (graph.Graph, error) {
		if side*side != n {
			return nil, fmt.Errorf("plurality: torus side %d does not match N=%d", side, n)
		}
		return graph.NewTorus(side, side)
	}}
}

// RandomRegularTopology is a uniformly random simple d-regular graph —
// an expander with high probability, the fast sparse topology.
func RandomRegularTopology(d int) Topology {
	return Topology{name: "random-regular", build: func(n int, r *rng.Rand) (graph.Graph, error) {
		return graph.NewRandomRegular(n, d, r)
	}}
}

// HypercubeTopology is the dim-dimensional hypercube; RunOnGraph
// requires N = 2^dim.
func HypercubeTopology(dim int) Topology {
	return Topology{name: "hypercube", build: func(n int, _ *rng.Rand) (graph.Graph, error) {
		if n != 1<<dim {
			return nil, fmt.Errorf("plurality: hypercube dim %d does not match N=%d", dim, n)
		}
		return graph.NewHypercube(dim)
	}}
}

// GraphConfig describes an agent-based run on an explicit topology.
// Unlike Config's count-space engine, this engine is O(n) per round
// but works on any graph.
type GraphConfig struct {
	// N is the number of vertices. Required.
	N int
	// Topology is the graph family. Required.
	Topology Topology
	// Protocol must be one of ThreeMajority(), TwoChoices() or
	// Voter() — the rules with per-vertex forms on general graphs.
	Protocol Protocol
	// Init generates the opinion counts; vertices are assigned
	// uniformly at random (well-mixed start). Required.
	Init Init
	// Seed makes runs reproducible.
	Seed uint64
	// MaxRounds bounds the run; 0 means 100000.
	MaxRounds int
	// Parallelism bounds the worker goroutines advancing each round
	// (0 = GOMAXPROCS, 1 = serial). Rounds are sharded by vertex index
	// into fixed n-derived shards with per-(seed, round, shard) RNG
	// streams, so the result is identical for every Parallelism value.
	Parallelism int
	// Trace, if non-nil, samples the opinion counts between rounds
	// (after the sharded-round barrier, so the trace too is identical
	// for every Parallelism value). Nil costs nothing.
	Trace *trace.Sampler
}

// RunOnGraph executes an agent-based run on the configured topology.
// Topology construction and the initial assignment shuffle draw from
// the stream rng.DeriveSeed(Seed, 0); rounds draw from the sharded
// per-(rng.DeriveSeed(Seed, 1), round, shard) streams (see
// internal/graph.StepSharded).
func RunOnGraph(cfg GraphConfig) (Result, error) {
	if cfg.N < 1 {
		return Result{}, fmt.Errorf("%w: N = %d", errConfig, cfg.N)
	}
	if cfg.Topology.build == nil {
		return Result{}, fmt.Errorf("%w: Topology is required", errConfig)
	}
	if cfg.Init.build == nil {
		return Result{}, fmt.Errorf("%w: Init is required", errConfig)
	}
	rule, err := ruleFor(cfg.Protocol)
	if err != nil {
		return Result{}, err
	}
	r := rng.New(rng.DeriveSeed(cfg.Seed, 0))
	g, err := cfg.Topology.build(cfg.N, r)
	if err != nil {
		return Result{}, err
	}
	v, err := cfg.Init.build(int64(cfg.N))
	if err != nil {
		return Result{}, err
	}
	st, err := graph.NewState(g, v.K(), graph.ShuffledAssignment(v, r))
	if err != nil {
		return Result{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100_000
	}
	res := graph.RunShardedTraced(rng.DeriveSeed(cfg.Seed, 1), st, rule, maxRounds, cfg.Parallelism, cfg.Trace)
	return Result{Rounds: res.Rounds, Consensus: res.Consensus, Winner: int(res.Winner)}, nil
}

func ruleFor(p Protocol) (graph.Rule, error) {
	switch p.Name() {
	case "3-majority":
		return graph.ThreeMajorityRule{}, nil
	case "2-choices":
		return graph.TwoChoicesRule{}, nil
	case "voter":
		return graph.VoterRule{}, nil
	default:
		return nil, fmt.Errorf("%w: protocol %q has no general-graph rule", errConfig, p.Name())
	}
}
