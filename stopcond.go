package plurality

import "plurality/internal/stop"

// StopCondition tells an Experiment when, short of full consensus, a
// trial should end — at a phase boundary instead of the absorbing
// state. The paper's headline results are hitting-time statements (the
// round Γ crosses 1/2, the round the live-opinion count halves), and
// D'Archivio et al. tie consensus time to boundaries crossed long
// before consensus; a StopCondition runs every trial exactly to such a
// boundary.
//
// Conditions are evaluated at round boundaries on the between-rounds
// state — through the same observer hooks as tracing, never the
// engines' RNG streams — so a stopped trial is byte-for-byte the
// prefix of the unstopped trial of the same seed, in every mode and at
// every parallelism. Consensus always ends a trial whatever the
// condition: a StopCondition can only shorten a run.
//
// The zero value is StopAtConsensus(). Combine conditions with And;
// a combined condition fires at the first round where every clause
// holds simultaneously.
type StopCondition struct {
	spec stop.Spec
}

// StopAtConsensus returns the default condition: run until all
// vertices agree (or the round/tick budget runs out).
func StopAtConsensus() StopCondition { return StopCondition{} }

// StopWhenGammaAtLeast stops a trial at the end of the first round
// with Γ = Σ α(i)² >= g (g in (0, 1]; 0 means "unset" in the
// declarative spec encoding and yields StopAtConsensus, any other
// out-of-range value is rejected at validation). Γ >= 1/2 is the
// paper's two-opinion endgame boundary.
func StopWhenGammaAtLeast(g float64) StopCondition {
	return StopCondition{spec: stop.Spec{GammaAtLeast: g}}
}

// StopWhenLiveAtMost stops a trial at the end of the first round with
// at most m surviving opinions (m >= 1) — the live-opinion decay
// observable of the paper's Remark 2.5.
func StopWhenLiveAtMost(m int) StopCondition {
	return StopCondition{spec: stop.Spec{LiveAtMost: m}}
}

// StopAfterRounds stops a trial at the end of round r (r >= 1). Unlike
// MaxRounds it composes with the other clauses: combined via And, the
// trial stops at the first round >= r where the rest of the
// conjunction also holds.
func StopAfterRounds(r int64) StopCondition {
	return StopCondition{spec: stop.Spec{AfterRounds: r}}
}

// StopSpec wraps a declarative stop.Spec (the JSON form the service
// layer's requests carry) into a StopCondition.
func StopSpec(s stop.Spec) StopCondition { return StopCondition{spec: s} }

// And returns the conjunction of two conditions: the result fires only
// at a round where both would. Same-clause combinations keep the
// stricter threshold.
func (c StopCondition) And(d StopCondition) StopCondition {
	return StopCondition{spec: c.spec.And(d.spec)}
}

// Spec returns the condition's declarative form — what a service
// request's "stop" field carries.
func (c StopCondition) Spec() stop.Spec { return c.spec }

// String renders the condition ("" for StopAtConsensus).
func (c StopCondition) String() string { return c.spec.String() }
