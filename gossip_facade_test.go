package plurality

import "testing"

func TestRunGossipBasics(t *testing.T) {
	res, err := RunGossip(GossipConfig{
		N:        150,
		Protocol: ThreeMajority(),
		Init:     Balanced(3),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatalf("no consensus: %+v", res)
	}
	var total int64
	for _, c := range res.FinalCounts {
		total += c
	}
	if total != 150 {
		t.Fatalf("final counts %v do not sum to 150", res.FinalCounts)
	}
	if res.FinalCounts[res.Winner] != 150 {
		t.Fatalf("winner %d does not hold everyone: %v", res.Winner, res.FinalCounts)
	}
}

func TestRunGossipWithCrashes(t *testing.T) {
	res, err := RunGossip(GossipConfig{
		N:        100,
		Protocol: TwoChoices(),
		Init:     Balanced(2),
		Seed:     2,
		Crashed:  []int{0, 99}, // one frozen node per side
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("alive nodes did not converge")
	}
	// Both opinions survive in the histogram: each side froze a node.
	if res.FinalCounts[0] == 0 || res.FinalCounts[1] == 0 {
		t.Fatalf("frozen nodes missing from counts: %v", res.FinalCounts)
	}
}

func TestRunGossipValidation(t *testing.T) {
	base := GossipConfig{
		N:        50,
		Protocol: ThreeMajority(),
		Init:     Balanced(2),
	}
	bad := base
	bad.N = 0
	if _, err := RunGossip(bad); err == nil {
		t.Error("N=0 accepted")
	}
	bad = base
	bad.Protocol = Median()
	if _, err := RunGossip(bad); err == nil {
		t.Error("median gossip accepted")
	}
	bad = base
	bad.Init = Init{}
	if _, err := RunGossip(bad); err == nil {
		t.Error("missing init accepted")
	}
	bad = base
	bad.LossProb = 1
	if _, err := RunGossip(bad); err == nil {
		t.Error("loss prob 1 accepted")
	}
}

func TestRunGossipLossyStillDecides(t *testing.T) {
	res, err := RunGossip(GossipConfig{
		N:        120,
		Protocol: TwoChoices(),
		Init:     Balanced(3),
		Seed:     3,
		LossProb: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("lossy gossip did not converge")
	}
}
