package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"regexp"
	"strings"
	"testing"
	"time"

	"plurality/internal/service"
)

// clusterStatus mirrors the GET /cluster/status body.
type clusterStatus struct {
	ID       string `json:"id"`
	Leader   string `json:"leader"`
	IsLeader bool   `json:"is_leader"`
	Role     string `json:"role"`
}

// clusterJob mirrors the GET /cluster/jobs entries.
type clusterJob struct {
	Key        string `json:"key"`
	Decided    bool   `json:"decided"`
	MergedSHA  string `json:"merged_sha"`
	DoneShards int    `json:"done_shards"`
	Shards     []struct {
		Status string `json:"status"`
	} `json:"shards"`
}

// reservePorts grabs n distinct loopback addresses and releases them:
// cluster children need the whole fleet's addresses before any of them
// starts, so ephemeral binding (-addr :0) cannot work here.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func getJSON(base, path string, v any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s", base, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestClusterKillFailoverByteIdenticalSweep is the distributed
// counterpart of TestKillRestartByteIdenticalSweep: a real 5-process
// fleet (2 coordinators, 3 workers) runs the reference sweep with every
// point sharded across the workers through the replicated job ledger.
// After the first NDJSON line arrives, the ledger leader and one worker
// are SIGKILLed. The surviving coordinator must win the election,
// requeue the dead nodes' leases, finish the stream — and the merged
// NDJSON must be byte-identical to an uninterrupted single-process run,
// with exactly one ledger decision per request key.
func TestClusterKillFailoverByteIdenticalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary into a 5-process fleet")
	}

	ids := []string{"c1", "c2", "w1", "w2", "w3"}
	addrs := reservePorts(t, len(ids))
	var peerParts []string
	for i, id := range ids {
		peerParts = append(peerParts, id+"=http://"+addrs[i])
	}
	peersArg := strings.Join(peerParts, ",")

	children := make(map[string]*exec.Cmd, len(ids))
	bases := make(map[string]string, len(ids))
	for i, id := range ids {
		role := "worker"
		if strings.HasPrefix(id, "c") {
			role = "coordinator"
		}
		cmd, base := startChild(t,
			"-addr", addrs[i], "-workers", "2",
			"-cluster", role, "-node-id", id,
			"-peers", peersArg, "-coordinators", "c1,c2",
			"-cluster-heartbeat", "25ms", "-lease-timeout", "30s",
			"-data-dir", t.TempDir())
		children[id] = cmd
		bases[id] = base
	}

	// Wait for a coordinator to win the ledger election.
	var leader string
	deadline := time.Now().Add(30 * time.Second)
	for leader == "" {
		if time.Now().After(deadline) {
			t.Fatal("no cluster leader elected")
		}
		var st clusterStatus
		if err := getJSON(bases["c1"], "/cluster/status", &st); err == nil && st.Leader != "" {
			leader = st.Leader
		}
		time.Sleep(50 * time.Millisecond)
	}
	if leader != "c1" && leader != "c2" {
		t.Fatalf("initial leader %q is not a coordinator", leader)
	}
	follower := "c1"
	if leader == "c1" {
		follower = "c2"
	}
	t.Logf("leader=%s; streaming sweep through follower %s", leader, follower)

	// Ground truth: the same sweep, uninterrupted, in one process.
	var sr service.SweepRequest
	if err := json.Unmarshal([]byte(killSweepBody), &sr); err != nil {
		t.Fatal(err)
	}
	rn := service.NewRunner(service.Options{Workers: 2})
	defer rn.Close()
	var want bytes.Buffer
	if err := rn.Sweep(context.Background(), sr, func(p service.SweepPoint) error {
		return service.EncodeJSONLine(&want, p)
	}); err != nil {
		t.Fatal(err)
	}

	// Stream the sweep through the follower coordinator, so the process
	// answering the client survives the leader kill.
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		bases[follower]+"/sweep", strings.NewReader(killSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rd := bufio.NewReader(resp.Body)
	firstLine, err := rd.ReadString('\n')
	if err != nil {
		t.Fatalf("first sweep line: %v", err)
	}
	if !bytes.HasPrefix(want.Bytes(), []byte(firstLine)) {
		t.Fatalf("pre-kill stream already diverged:\n got %s want prefix of %s", firstLine, want.Bytes())
	}

	// Mid-sweep, kill the ledger leader and one worker: 3 of 5 replicas
	// survive, which is still a majority for the surviving coordinator.
	for _, id := range []string{leader, "w3"} {
		children[id].Process.Kill()
		children[id].Wait()
	}
	t.Logf("killed leader %s and worker w3 mid-sweep", leader)

	rest, err := io.ReadAll(rd)
	if err != nil {
		t.Fatalf("stream after failover: %v", err)
	}
	got := append([]byte(firstLine), rest...)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("fleet sweep diverged from single-process run:\n got:\n%s\nwant:\n%s", got, want.Bytes())
	}

	// The survivors' applied ledgers: every job decided exactly once —
	// distinct keys, one pinned merge hash each, all shards done.
	var jobs []clusterJob
	if err := getJSON(bases[follower], "/cluster/jobs", &jobs); err != nil {
		t.Fatal(err)
	}
	wantPoints := len(sr.Values) * len(sr.Protocols)
	if len(jobs) != wantPoints {
		t.Fatalf("ledger holds %d jobs, want %d (one per sweep point)", len(jobs), wantPoints)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if seen[j.Key] {
			t.Fatalf("key %s admitted twice", j.Key)
		}
		seen[j.Key] = true
		if !j.Decided || j.MergedSHA == "" {
			t.Fatalf("job %s not decided after failover", j.Key)
		}
		if j.DoneShards != len(j.Shards) {
			t.Fatalf("job %s: %d/%d shards done", j.Key, j.DoneShards, len(j.Shards))
		}
	}

	// The surviving coordinator leads and exports the cluster counters.
	mresp, err := http.Get(bases[follower] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !regexp.MustCompile(`conserve_cluster_leader 1`).Match(metrics) {
		t.Fatalf("surviving coordinator does not lead:\n%s", metrics)
	}
	for _, name := range []string{"conserve_shard_requeues_total", "conserve_peer_cache_hits_total"} {
		if !bytes.Contains(metrics, []byte(name)) {
			t.Fatalf("metrics missing %s:\n%s", name, metrics)
		}
	}
}
