package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeEndToEnd boots the real server on an ephemeral port, hits
// /healthz and /run, and shuts it down via context cancellation.
func TestServeEndToEnd(t *testing.T) {
	addrs := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrs <- a }
	defer func() { onListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"})
	}()

	var base string
	select {
	case a := <-addrs:
		base = fmt.Sprintf("http://%s", a)
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/run", "application/json",
		strings.NewReader(`{"protocol":"3-majority","n":1000,"k":4,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"consensus":true`) {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-addr"}); err == nil {
		t.Fatal("dangling flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
