package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"plurality/internal/service"
)

// TestMain doubles as the child entry point for the crash tests: with
// CONSERVE_CHILD=1 the test binary boots a real conserve server
// (flags from CONSERVE_CHILD_ARGS, bound address announced on stdout)
// and serves until killed or SIGTERMed — the same signal path as
// production main.
func TestMain(m *testing.M) {
	if os.Getenv("CONSERVE_CHILD") == "1" {
		onListen = func(a net.Addr) { fmt.Printf("conserve-child-listening %s\n", a) }
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := run(ctx, strings.Fields(os.Getenv("CONSERVE_CHILD_ARGS"))); err != nil {
			fmt.Fprintln(os.Stderr, "conserve child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startChild re-execs the test binary as a conserve server and waits
// for its bound address.
func startChild(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CONSERVE_CHILD=1",
		"CONSERVE_CHILD_ARGS="+strings.Join(args, " "))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "conserve-child-listening "); ok {
				lines <- addr
				return
			}
		}
		close(lines)
	}()
	select {
	case addr, ok := <-lines:
		if !ok {
			t.Fatal("child exited before listening")
		}
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("child did not announce its address")
		return nil, ""
	}
}

const killSweepBody = `{"base":{"protocol":"3-majority","n":20000,"seed":12,"trials":4},"sweep":"k","values":[2,4,8,16,32],"protocols":["3-majority","2-choices"]}`

// TestKillRestartByteIdenticalSweep is the crash-recovery smoke from
// the durability contract: SIGKILL a durable conserve mid-sweep,
// restart it on the same data dir, re-issue the sweep, and require the
// NDJSON byte-identical to an uninterrupted in-process run — completed
// points served from the on-disk result cache, interrupted ones
// resumed/re-run, nothing lost, nothing changed.
func TestKillRestartByteIdenticalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dataDir := t.TempDir()

	// The ground truth: the same sweep, uninterrupted, in-process.
	var sr service.SweepRequest
	if err := json.Unmarshal([]byte(killSweepBody), &sr); err != nil {
		t.Fatal(err)
	}
	rn := service.NewRunner(service.Options{Workers: 2})
	defer rn.Close()
	var want bytes.Buffer
	if err := rn.Sweep(context.Background(), sr, func(p service.SweepPoint) error {
		return service.EncodeJSONLine(&want, p)
	}); err != nil {
		t.Fatal(err)
	}

	// First server: stream the sweep, SIGKILL after the first point's
	// line arrives (so at least one completed result is on disk, and
	// whatever was in flight dies mid-execution).
	child1, base1 := startChild(t, "-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", dataDir)
	resp, err := http.Post(base1+"/sweep", "application/json", strings.NewReader(killSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	firstLine, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatalf("first sweep line: %v", err)
	}
	child1.Process.Kill()
	child1.Wait()
	resp.Body.Close()
	if !bytes.HasPrefix(want.Bytes(), []byte(firstLine)) {
		t.Fatalf("pre-kill stream already diverged:\n got %s want prefix of %s", firstLine, want.Bytes())
	}

	// Second server on the same data dir: replays the journal, then the
	// re-issued sweep must complete byte-identically.
	_, base2 := startChild(t, "-addr", "127.0.0.1:0", "-workers", "2", "-data-dir", dataDir)
	resp, err = http.Post(base2+"/sweep", "application/json", strings.NewReader(killSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("post-restart sweep diverged:\n got:\n%s\nwant:\n%s", got, want.Bytes())
	}

	// The point that completed before the kill must have come from the
	// durable result cache, not a re-simulation.
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	m := regexp.MustCompile(`conserve_disk_hits_total (\d+)`).FindSubmatch(metrics)
	if m == nil {
		t.Fatalf("metrics missing conserve_disk_hits_total:\n%s", metrics)
	}
	if n, _ := strconv.Atoi(string(m[1])); n < 1 {
		t.Fatalf("restart re-simulated the completed point: conserve_disk_hits_total %d", n)
	}
}

// TestSigtermDrainsGracefully: a durable conserve under SIGTERM stops
// intake with 503, checkpoints in-flight work, and exits 0 — the
// production graceful-shutdown path, end to end.
func TestSigtermDrainsGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dataDir := t.TempDir()
	child, base := startChild(t, "-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", dataDir, "-drain-timeout", "20s")

	// Warm request so the server is demonstrably serving.
	resp, err := http.Post(base+"/run", "application/json",
		strings.NewReader(`{"protocol":"voter","n":500,"k":3,"seed":2,"trials":2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}

	if err := child.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- child.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("child exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("child did not drain and exit after SIGTERM")
	}

	// The journal survived the shutdown with the completed result: the
	// LRU is cold in a fresh process, so a "hit" can only come from the
	// durable store.
	_, base2 := startChild(t, "-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", dataDir)
	resp, err = http.Post(base2+"/run", "application/json",
		strings.NewReader(`{"protocol":"voter","n":500,"k":3,"seed":2,"trials":2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(service.CacheHeader) != "hit" {
		t.Fatal("completed result lost across SIGTERM restart")
	}
}

// TestServeEndToEnd boots the real server on an ephemeral port, hits
// /healthz and /run, and shuts it down via context cancellation.
func TestServeEndToEnd(t *testing.T) {
	addrs := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrs <- a }
	defer func() { onListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"})
	}()

	var base string
	select {
	case a := <-addrs:
		base = fmt.Sprintf("http://%s", a)
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/run", "application/json",
		strings.NewReader(`{"protocol":"3-majority","n":1000,"k":4,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"consensus":true`) {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestAnalyticTierSmoke boots the real server and exercises the
// analytic answer tier end to end: a planet-scale /run answers 200
// with method "analytic" and an interval-carrying prediction, an
// over-cap n is promoted to the tier instead of rejected, the metric
// counts both, and the handler answers cache-miss analytic requests in
// well under a millisecond (each request below varies k, so none is a
// cache hit — the latency bound is on the compute path, not the LRU).
func TestAnalyticTierSmoke(t *testing.T) {
	addrs := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrs <- a }
	defer func() { onListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"})
	}()
	var base string
	select {
	case a := <-addrs:
		base = fmt.Sprintf("http://%s", a)
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("non-JSON body (%d): %s", resp.StatusCode, raw)
		}
		return resp.StatusCode, m
	}

	// The quickstart request: n = 10^9, explicit tier.
	code, m := post(`{"protocol":"3-majority","n":1000000000,"k":100,"tier":"analytic"}`)
	if code != http.StatusOK || m["method"] != "analytic" {
		t.Fatalf("analytic run: code %d, method %v", code, m["method"])
	}
	pred, ok := m["analytic"].(map[string]any)
	if !ok {
		t.Fatalf("response missing analytic prediction: %v", m)
	}
	lo, _ := pred["rounds_lo"].(float64)
	mid, _ := pred["rounds"].(float64)
	hi, _ := pred["rounds_hi"].(float64)
	if !(0 < lo && lo <= mid && mid <= hi) {
		t.Fatalf("prediction interval not ordered: lo=%v rounds=%v hi=%v", lo, mid, hi)
	}

	// Auto-promotion: n beyond the sync simulation cap answers 200
	// analytically instead of 400.
	code, m = post(`{"protocol":"2-choices","n":10000000000,"k":64}`)
	if code != http.StatusOK || m["method"] != "analytic" {
		t.Fatalf("promoted run: code %d, method %v", code, m["method"])
	}

	// Latency: every request below is a cache miss (k varies), and the
	// fastest of 50 must still clear a millisecond with wide margin.
	minLatency := time.Hour
	for k := 2; k < 52; k++ {
		body := fmt.Sprintf(`{"protocol":"3-majority","n":1000000000,"k":%d,"tier":"analytic"}`, k)
		start := time.Now()
		code, _ := post(body)
		if d := time.Since(start); d < minLatency {
			minLatency = d
		}
		if code != http.StatusOK {
			t.Fatalf("analytic run k=%d: code %d", k, code)
		}
	}
	if minLatency >= time.Millisecond {
		t.Fatalf("analytic tier too slow: fastest of 50 cache-miss requests took %s (want < 1ms)", minLatency)
	}
	t.Logf("fastest analytic cache-miss request: %s", minLatency)

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	mm := regexp.MustCompile(`conserve_analytic_requests_total (\d+)`).FindSubmatch(metrics)
	if mm == nil {
		t.Fatalf("metrics missing conserve_analytic_requests_total:\n%s", metrics)
	}
	if n, _ := strconv.Atoi(string(mm[1])); n != 52 {
		t.Fatalf("conserve_analytic_requests_total %d, want 52", n)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-addr"}); err == nil {
		t.Fatal("dangling flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
