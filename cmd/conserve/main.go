// Command conserve serves consensus-time experiments over HTTP —
// simulation as a service. It exposes the shared job runner behind
// consim/consweep as a concurrent, cached JSON API:
//
//	POST /run          one Request (see internal/service), canonical body;
//	                   ?trace=1 streams a round trace as NDJSON
//	POST /sweep        batch sweep, NDJSON stream of per-point medians
//	GET  /jobs/{id}    poll a detached (?detach=1) run
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus-style counters
//
// Usage:
//
//	conserve [-addr :8080] [-workers 0] [-parallelism 0] [-queue 64] [-cache 256]
//	         [-data-dir DIR] [-max-retries 0] [-job-timeout 0] [-drain-timeout 30s]
//	         [-cluster coordinator|worker -node-id ID -peers id=url,... -coordinators id,...]
//
// -workers sizes the request pool (how many requests run at once);
// -parallelism is each request's internal budget (trial fan-out in
// every mode, plus sharded graph rounds), so a lone big job expands
// into idle cores. Both default to GOMAXPROCS; neither affects
// results.
//
// -data-dir makes jobs durable: admissions, per-trial checkpoints and
// completions go to an append-only checksummed journal under DIR, and
// completed results are served from DIR/results across restarts. A
// killed server replays the journal on the next start, re-queues
// interrupted jobs, and resumes each from its last checkpoint — the
// response bytes are identical to an uninterrupted run. Without the
// flag conserve is fully in-memory, exactly as before.
//
// -max-retries retries a failing job that many times (with capped,
// jittered exponential backoff, resuming from its last checkpoint);
// -job-timeout bounds each attempt. On SIGTERM/SIGINT conserve drains:
// intake answers 503, running jobs checkpoint and stop at the next
// trial boundary (journaled as interrupted, so a restart resumes
// them), bounded by -drain-timeout.
//
// Examples:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/run -d '{"protocol":"3-majority","n":100000,"k":100,"seed":1}'
//	curl -s -X POST localhost:8080/sweep -d '{"base":{"protocol":"3-majority","n":100000,"seed":1,"trials":5},"sweep":"k","values":[2,4,8,16]}'
//	curl -s -X POST 'localhost:8080/run?trace=1' -d '{"protocol":"3-majority","n":100000,"k":100,"seed":1}'
//	curl -s -X POST localhost:8080/run -d '{"protocol":"3-majority","n":100000,"k":100,"seed":1,"stop":{"gamma_at_least":0.5}}'
//	curl -s -X POST localhost:8080/run -d '{"protocol":"3-majority","n":1000000000,"k":100,"tier":"analytic"}'
//
// The trace form records a per-round trace (γ, live opinions,
// max-opinion density, Σα³ under the adaptive decimation policy; put a
// "trace" spec in the body to choose another) and streams it as NDJSON:
// one line per sampled point, then the canonical summary line. The
// stop form ends every trial at a phase boundary (here the Γ ≥ 1/2
// crossing; see internal/stop) instead of consensus — the per-trial
// "rounds" become hitting times, and the stop spec is part of the
// cache key.
//
// The tier form answers from the calibrated analytic model (see
// internal/analytic) in microseconds without simulating: the response
// carries "method":"analytic" and a prediction with its interval.
// Sync 3-majority/2-choices requests whose n exceeds the simulation
// cap are promoted to the analytic tier automatically instead of
// being rejected; conserve_analytic_requests_total counts both forms.
//
// Results are deterministic in the request alone — trial i's façade
// seed is DeriveSeed(seed, i), which mode sync consumes directly and
// the async/graph/gossip engines expand once more at their entry
// points; no worker or parallelism setting changes a byte — so
// identical requests are served from an LRU cache without
// re-simulation; a full queue answers 429 with Retry-After.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"plurality/internal/cluster"
	"plurality/internal/durable"
	"plurality/internal/service"
)

// onListen, when set (tests), observes the bound address before the
// server starts accepting.
var onListen func(net.Addr)

// clusterFlags gathers the -cluster* flag values.
type clusterFlags struct {
	role         string
	nodeID       string
	peers        string
	coordinators string
	heartbeat    time.Duration
	leaseTimeout time.Duration
	parallelism  int
	dataDir      string
}

// newClusterNode validates the cluster flags and builds the node. With
// -data-dir the replica log persists to DIR/cluster.journal, so a
// restarted node recovers its term and entries and rejoins without
// violating its votes.
func newClusterNode(cf clusterFlags) (*cluster.Node, error) {
	role := cluster.Role(cf.role)
	if role != cluster.RoleCoordinator && role != cluster.RoleWorker {
		return nil, fmt.Errorf("-cluster must be %q or %q, got %q", cluster.RoleCoordinator, cluster.RoleWorker, cf.role)
	}
	if cf.nodeID == "" {
		return nil, fmt.Errorf("-cluster requires -node-id")
	}
	peers, err := parsePeers(cf.peers)
	if err != nil {
		return nil, err
	}
	var coords []string
	for _, c := range strings.Split(cf.coordinators, ",") {
		if c = strings.TrimSpace(c); c != "" {
			coords = append(coords, c)
		}
	}
	if len(coords) == 0 {
		return nil, fmt.Errorf("-cluster requires -coordinators")
	}
	cfg := cluster.NodeConfig{
		ID:           cf.nodeID,
		Role:         role,
		Peers:        peers,
		Coordinators: coords,
		Parallelism:  cf.parallelism,
		Heartbeat:    cf.heartbeat,
		LeaseTimeout: cf.leaseTimeout,
		Logf:         log.Printf,
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cf.dataDir != "" {
		j, recs, info, err := durable.OpenJournal(durable.OSFS{}, filepath.Join(cf.dataDir, "cluster.journal"))
		if err != nil {
			return nil, fmt.Errorf("cluster journal: %w", err)
		}
		log.Printf("conserve: cluster journal replay: %d records (%d bytes)", info.Records, info.ValidBytes)
		cfg.Journal, cfg.Records = j, recs
	}
	node, err := cluster.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	log.Printf("conserve: cluster node %s (%s), %d peers, %d coordinators", cf.nodeID, role, len(peers), len(coords))
	return node, nil
}

// parsePeers parses "id=http://host:port,..." into the fleet map.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=http://host:port", part)
		}
		peers[id] = strings.TrimSuffix(addr, "/")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-cluster requires -peers")
	}
	return peers, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "conserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("conserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "simulation workers, i.e. requests running at once (0 = GOMAXPROCS)")
		parallelism  = fs.Int("parallelism", 0, "per-request parallelism budget: trial fan-out and sharded graph rounds (0 = GOMAXPROCS; never affects results)")
		queue        = fs.Int("queue", 64, "admission queue depth (full queue => 429)")
		cache        = fs.Int("cache", 256, "LRU result-cache entries (-1 disables)")
		dataDir      = fs.String("data-dir", "", "durable data directory: journal + on-disk results, crash-safe resume (empty = in-memory only)")
		maxRetries   = fs.Int("max-retries", 0, "in-process retries per failing job, resuming from its last checkpoint")
		jobTimeout   = fs.Duration("job-timeout", 0, "wall-clock bound per execution attempt (0 = none)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound: how long to let in-flight jobs checkpoint and finish")

		clusterRole  = fs.String("cluster", "", `cluster role: "coordinator" or "worker" (empty = single node)`)
		nodeID       = fs.String("node-id", "", "this node's cluster ID (required with -cluster)")
		peersFlag    = fs.String("peers", "", "comma-separated fleet as id=http://host:port, self included (required with -cluster)")
		coordsFlag   = fs.String("coordinators", "", "comma-separated coordinator node IDs (required with -cluster)")
		clusterTick  = fs.Duration("cluster-heartbeat", 150*time.Millisecond, "ledger replication tick: leader heartbeat interval")
		leaseTimeout = fs.Duration("lease-timeout", 2*time.Minute, "per-shard execution bound; past it the lease expires and the shard requeues")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := service.Options{
		Workers:     *workers,
		Parallelism: *parallelism,
		QueueDepth:  *queue,
		CacheSize:   *cache,
		MaxAttempts: *maxRetries + 1,
		JobTimeout:  *jobTimeout,
	}
	if *dataDir != "" {
		store, err := durable.Open(durable.OSFS{}, *dataDir)
		if err != nil {
			return err
		}
		defer store.Close()
		rec := store.Recovered()
		log.Printf("conserve: journal replay: %d records (%d bytes) in %s; %d completed results, %d interrupted jobs to resume",
			rec.Journal.Records, rec.Journal.ValidBytes, rec.Elapsed.Round(time.Millisecond), rec.CompletedKeys, len(rec.Interrupted))
		if rec.Journal.CorruptTail != "" {
			log.Printf("conserve: journal corruption recovered: %s (valid prefix kept)", rec.Journal.CorruptTail)
		}
		for _, a := range rec.Anomalies {
			log.Printf("conserve: journal anomaly: %s", a)
		}
		opts.Store = store
	}

	var extra service.Extra
	if *clusterRole != "" {
		node, err := newClusterNode(clusterFlags{
			role:         *clusterRole,
			nodeID:       *nodeID,
			peers:        *peersFlag,
			coordinators: *coordsFlag,
			heartbeat:    *clusterTick,
			leaseTimeout: *leaseTimeout,
			parallelism:  *parallelism,
			dataDir:      *dataDir,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		extra = service.Extra{
			Routes:  map[string]http.Handler{"/cluster/": node.Handler()},
			Metrics: node.WriteMetrics,
		}
		if cluster.Role(*clusterRole) == cluster.RoleCoordinator {
			// Coordinators route local jobs through the fleet: peer-cache
			// read-through first, then sharded cluster execution, falling
			// back to the ordinary local path when not applicable.
			opts.Remote = node
		}
	}

	runner := service.NewRunner(opts)
	defer runner.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	log.Printf("conserve: listening on %s (workers=%d parallelism=%d queue=%d cache=%d)",
		ln.Addr(), runner.Metrics().Workers, runner.Metrics().Parallelism, *queue, *cache)

	srv := &http.Server{Handler: service.NewServerWith(runner, extra)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful drain, in order: (1) runner stops admitting — intake
		// answers 503 while the server keeps serving; (2) running jobs
		// observe the cancellation at the next trial boundary, write a
		// final checkpoint, and end journaled as interrupted (a restart
		// resumes them); (3) the HTTP server shuts down; (4) the store's
		// deferred Close flushes the journal.
		log.Printf("conserve: draining (timeout %s)", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := runner.Drain(drainCtx); err != nil {
			log.Printf("conserve: drain incomplete: %v (checkpoints are journaled; restart resumes)", err)
		}
		return srv.Shutdown(drainCtx)
	}
}
