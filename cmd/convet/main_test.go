package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestRepoIsClean is the regression pin for the contract-clean state:
// convet over the whole module must exit 0 with zero unsuppressed
// diagnostics, and every suppression that fires must be counted in
// the summary. If a future change violates a contract, this test (and
// the CI lint job) both fail.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"plurality/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("convet over plurality/... exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if got := stdout.String(); got != "" {
		t.Errorf("expected no diagnostics, got:\n%s", got)
	}
	summary := regexp.MustCompile(`convet: \d+ package\(s\), 0 diagnostic\(s\), \d+ suppressed`)
	if !summary.MatchString(stderr.String()) {
		t.Errorf("summary line missing or wrong in stderr:\n%s", stderr.String())
	}
	// The journal's annotated best-effort closes must be visible, not
	// silent: each fired suppression prints its reason.
	if !strings.Contains(stderr.String(), "best-effort cleanup") {
		t.Errorf("expected the journal.go suppressions to be printed, stderr:\n%s", stderr.String())
	}
}

func TestListExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"detmaprange", "norawentropy", "rngpurity", "durableorder", "gammafloat"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nosuch", "plurality/internal/lint"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-run nosuch exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer:\n%s", stderr.String())
	}
}

func TestRunSubsetStillValidatesAllDirectives(t *testing.T) {
	// Selecting one analyzer must not misreport the durableorder
	// allows in internal/durable as unknown or unused-in-a-bad-way.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "detmaprange", "plurality/internal/durable"}, &stdout, &stderr); code != 0 {
		t.Fatalf("subset run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("directives for unselected analyzers must stay valid:\n%s", stderr.String())
	}
}
