// Command convet is the repository's contract vet: a multichecker over
// the internal/lint analyzer suite that statically enforces the
// determinism, RNG-stream, and durability contracts the runtime test
// matrix otherwise only checks probabilistically.
//
// Usage:
//
//	convet [flags] [packages]
//
// With no packages, ./... is checked. Diagnostics print one per line as
//
//	path:line:col: message (analyzer)
//
// and the exit status is 1 when any unsuppressed diagnostic (or any
// malformed //lint:allow directive) remains, 2 on load failure.
// Suppressions are per-site annotations —
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above — and every suppression that
// fires is counted and printed, so waivers stay visible in CI logs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"plurality/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("convet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers in the suite and exit")
	only := flags.String("run", "", "comma-separated analyzer names to run (default: all)")
	quiet := flags.Bool("q", false, "print diagnostics only, no suppression summary")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-14s %s\n  contract: %s\n", a.Name, a.Doc, a.Contract)
		}
		return 0
	}

	analyzers := lint.All
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Directives are validated against the full suite, so a -run
	// subset never misreports an allow for an unselected analyzer.
	allows, malformed := lint.CollectAllows(pkgs, lint.All)
	kept, suppressed := lint.ApplySuppressions(diags, allows)
	kept = append(kept, malformed...)
	lint.SortDiagnostics(kept)

	for _, d := range kept {
		fmt.Fprintln(stdout, d)
	}
	if !*quiet {
		for _, s := range suppressed {
			fmt.Fprintf(stderr, "convet: suppressed %s at %s: //lint:allow %s %s\n",
				s.Diagnostic.Analyzer, s.Diagnostic.Pos, s.Allow.Analyzer, s.Allow.Reason)
		}
		for _, a := range lint.UnusedAllows(allows) {
			fmt.Fprintf(stderr, "convet: warning: unused //lint:allow %s at %s\n", a.Analyzer, a.Pos)
		}
		fmt.Fprintf(stderr, "convet: %d package(s), %d diagnostic(s), %d suppressed\n",
			len(pkgs), len(kept), len(suppressed))
	}
	if len(kept) > 0 {
		return 1
	}
	return 0
}
