package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-run", "fig1", "-scale", "huge"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{}); err == nil {
		t.Fatal("missing -run accepted")
	}
}

func TestRunExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	// lem55 is the fastest experiment.
	if err := run([]string{"-run", "lem55", "-csv", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "lem55_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRunCommaSeparatedIDs(t *testing.T) {
	if err := run([]string{"-run", "lem52,lem55"}); err != nil {
		t.Fatalf("comma-separated run: %v", err)
	}
}

func TestJSONBenchmarkRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	// One iteration keeps the suite to a few full runs; the point here
	// is the record format, not statistical stability.
	if err := run([]string{"-json", path, "-benchn", "1"}); err != nil {
		t.Fatalf("-json: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got benchFile
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("BENCH.json is not valid JSON: %v", err)
	}
	if got.GeneratedAt == "" || got.GoVersion == "" || got.GOOS == "" || got.GOARCH == "" {
		t.Fatalf("missing metadata: %+v", got)
	}
	if len(got.Benchmarks) != len(benchSuite()) {
		t.Fatalf("%d benchmark records, want %d", len(got.Benchmarks), len(benchSuite()))
	}
	seen := map[string]bool{}
	for _, rec := range got.Benchmarks {
		if rec.Name == "" || seen[rec.Name] {
			t.Fatalf("bad or duplicate benchmark name in %+v", rec)
		}
		seen[rec.Name] = true
		if rec.Iterations != 1 || rec.NsPerOp <= 0 {
			t.Fatalf("implausible record: %+v", rec)
		}
	}
	if !seen["run_three_majority_many_opinions_k_eq_n_1e5"] {
		t.Fatal("many-opinions benchmark missing from the suite")
	}
}

func TestJSONRejectsBadBenchn(t *testing.T) {
	if err := run([]string{"-json", filepath.Join(t.TempDir(), "b.json"), "-benchn", "0"}); err == nil {
		t.Fatal("benchn=0 accepted")
	}
}
