package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-run", "fig1", "-scale", "huge"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{}); err == nil {
		t.Fatal("missing -run accepted")
	}
}

func TestRunExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	// lem55 is the fastest experiment.
	if err := run([]string{"-run", "lem55", "-csv", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "lem55_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRunCommaSeparatedIDs(t *testing.T) {
	if err := run([]string{"-run", "lem52,lem55"}); err != nil {
		t.Fatalf("comma-separated run: %v", err)
	}
}
