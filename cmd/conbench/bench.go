package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"plurality"
	"plurality/internal/service"
	"plurality/internal/stop"
)

// benchCase is one entry of the reference performance suite: a full
// consensus run at a fixed operating point, repeated benchn times.
// The suite pins the two regimes the engine optimizes for — dense
// small-k (live ≈ k ≪ n, conditional-binomial path) and sparse
// many-opinions (k up to n, per-trial and grouped paths) — so a
// regression on either hot path shows up as a ns/op jump in BENCH.json
// (see DESIGN.md).
type benchCase struct {
	Name string
	Run  func(seed uint64) error
	// PerOp divides the measured ns/allocs/bytes before recording
	// (0 = 1): the _batchN suites run N trials per Run call but report
	// per-trial numbers, directly comparable to their serial twins.
	PerOp int
}

// consensusRun executes one full run through the shared service layer
// (the same service.Execute path the conserve server and consim -json
// use), so BENCH.json tracks what a served request actually costs —
// engine plus canonicalisation/summary overhead.
func consensusRun(n int64, k int, protocol string) func(seed uint64) error {
	return func(seed uint64) error {
		resp, err := service.Execute(service.Request{
			Protocol: protocol,
			N:        n,
			K:        k,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		if resp.Summary.Converged != resp.Summary.Trials {
			return fmt.Errorf("run did not reach consensus")
		}
		return nil
	}
}

// modeConsensusRun executes a full multi-trial request through
// service.ExecuteParallel at a fixed parallelism budget (0 =
// GOMAXPROCS). Paired _par1/_parmax cases measure the same workload —
// responses are byte-identical by the determinism contract — so their
// ns/op ratio in BENCH.json is the recorded multi-core speedup of the
// trial scheduler and the sharded graph rounds.
func modeConsensusRun(q service.Request, parallelism int) func(seed uint64) error {
	return func(seed uint64) error {
		q := q
		q.Seed = seed
		resp, err := service.ExecuteParallel(q, parallelism)
		if err != nil {
			return err
		}
		if resp.Summary.Converged != resp.Summary.Trials {
			return fmt.Errorf("only %d/%d trials reached consensus", resp.Summary.Converged, resp.Summary.Trials)
		}
		return nil
	}
}

// stoppedRun executes one request expected to end at its stop
// condition rather than consensus — the hitting-time workload the
// unified API serves directly. Paired with the full-consensus case of
// the same shape, the ns/op ratio in BENCH.json records how much an
// early-stopped run saves.
func stoppedRun(n int64, k int, protocol string, spec stop.Spec) func(seed uint64) error {
	return func(seed uint64) error {
		resp, err := service.Execute(service.Request{
			Protocol: protocol,
			N:        n,
			K:        k,
			Seed:     seed,
			Stop:     &spec,
		})
		if err != nil {
			return err
		}
		if resp.Summary.Converged != 0 {
			return fmt.Errorf("stopped run reached consensus before the boundary")
		}
		if resp.Summary.MaxRounds <= 0 {
			return fmt.Errorf("stopped run recorded no rounds")
		}
		return nil
	}
}

// batchConsensusRun executes one trials-wide batch through
// plurality.Experiment directly — the sync batch executor, bypassing
// the service layer's per-request canonicalisation so the recorded
// allocs/op are the executor's own. Paired with the serial suite of
// the same shape (divided per trial via PerOp), the ns/op ratio in
// BENCH.json is the recorded batch-kernel speedup: shared per-config
// tables plus multi-core trial fan-out.
func batchConsensusRun(n int64, k, trials int, proto plurality.Protocol) func(seed uint64) error {
	return func(seed uint64) error {
		out, err := plurality.Experiment{
			N:         n,
			Protocol:  proto,
			Init:      plurality.Balanced(k),
			Seed:      seed,
			NumTrials: trials,
		}.Run()
		if err != nil {
			return err
		}
		if out.Converged() != trials {
			return fmt.Errorf("only %d/%d trials reached consensus", out.Converged(), trials)
		}
		return nil
	}
}

func benchSuite() []benchCase {
	// The non-sync suites: a multi-trial workload per mode, measured
	// serial and at full parallelism. The graph pair additionally has a
	// lone-big-job case, where all the speedup must come from sharded
	// rounds (trials=1 leaves trial fan-out nothing to do).
	graphTrials := service.Request{Protocol: "3-majority", Mode: "graph", N: 100_000, K: 8, Trials: 8}
	graphLone := service.Request{Protocol: "3-majority", Mode: "graph", N: 1_000_000, K: 2, Trials: 1}
	asyncTrials := service.Request{Protocol: "3-majority", Mode: "async", N: 20_000, K: 8, Trials: 8}
	gossipTrials := service.Request{Protocol: "3-majority", Mode: "gossip", N: 2_000, K: 4, Trials: 8}
	// The stopgamma pair: the voter suite below, stopped at the
	// Γ >= 1/2 phase boundary. The driftless voter spends ~70% of its
	// rounds in the two-opinion endgame random walk past that boundary
	// (cheap O(live≈2) rounds, so ~20% of wall time), and the stopped
	// twin must cost strictly less than the full run it prefixes —
	// the recorded ratio is what a hitting-time workload saves by not
	// simulating the endgame. (Drift protocols like 3-Majority cross
	// Γ = 1/2 only rounds before consensus on balanced starts, so a
	// stopped twin there would measure nothing but noise.)
	gammaHalf := stop.Spec{GammaAtLeast: 0.5}
	return []benchCase{
		{"run_three_majority_n1e6_k100", consensusRun(1_000_000, 100, "3-majority"), 0},
		{"run_two_choices_n1e6_k100", consensusRun(1_000_000, 100, "2-choices"), 0},
		{"run_voter_n1e5_k64_stopgamma", stoppedRun(100_000, 64, "voter", gammaHalf), 0},
		{"run_three_majority_many_opinions_k_eq_n_1e5", consensusRun(100_000, 100_000, "3-majority"), 0},
		{"run_two_choices_many_opinions_k_eq_n_1e4", consensusRun(10_000, 10_000, "2-choices"), 0},
		// The _batch8 twins of the two many-opinions suites: 8 trials
		// per op through the sync batch executor at full parallelism,
		// recorded per trial (PerOp).
		{"run_three_majority_many_opinions_k_eq_n_1e5_batch8",
			batchConsensusRun(100_000, 100_000, 8, plurality.ThreeMajority()), 8},
		{"run_two_choices_many_opinions_k_eq_n_1e4_batch8",
			batchConsensusRun(10_000, 10_000, 8, plurality.TwoChoices()), 8},
		{"run_voter_n1e5_k64", consensusRun(100_000, 64, "voter"), 0},
		{"run_graph_complete_n1e5_k8_t8_par1", modeConsensusRun(graphTrials, 1), 0},
		{"run_graph_complete_n1e5_k8_t8_parmax", modeConsensusRun(graphTrials, 0), 0},
		{"run_graph_complete_n1e6_k2_t1_par1", modeConsensusRun(graphLone, 1), 0},
		{"run_graph_complete_n1e6_k2_t1_parmax", modeConsensusRun(graphLone, 0), 0},
		{"run_async_3majority_n2e4_k8_t8_par1", modeConsensusRun(asyncTrials, 1), 0},
		{"run_async_3majority_n2e4_k8_t8_parmax", modeConsensusRun(asyncTrials, 0), 0},
		{"run_gossip_3majority_n2e3_k4_t8_par1", modeConsensusRun(gossipTrials, 1), 0},
		{"run_gossip_3majority_n2e3_k4_t8_parmax", modeConsensusRun(gossipTrials, 0), 0},
	}
}

// benchRecord is one benchmark's measurement in BENCH.json.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
}

// benchFile is the BENCH.json schema.
type benchFile struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	Benchmarks  []benchRecord `json:"benchmarks"`
}

// measure runs fn iters times and reports wall time and allocations
// per iteration, using the monotonic runtime allocation counters the
// same way testing.B does.
func measure(c benchCase, iters int) (benchRecord, error) {
	// One untimed warm-up run grows the reusable buffers so the
	// steady-state allocation profile is measured.
	if err := c.Run(0xbe9c); err != nil {
		return benchRecord{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := c.Run(uint64(i + 1)); err != nil {
			return benchRecord{}, fmt.Errorf("%s: %w", c.Name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	div := uint64(iters)
	if c.PerOp > 1 {
		div *= uint64(c.PerOp)
	}
	return benchRecord{
		Name:        c.Name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(div),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / div,
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / div,
	}, nil
}

// writeBenchJSON runs the suite and writes the JSON record.
func writeBenchJSON(path string, iters int) error {
	if iters < 1 {
		return fmt.Errorf("benchn must be >= 1, got %d", iters)
	}
	// Fail on an unwritable path before spending minutes on the suite.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close()
	out := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	for _, c := range benchSuite() {
		rec, err := measure(c, iters)
		if err != nil {
			return err
		}
		fmt.Printf("%-45s %12.0f ns/op %8d allocs/op %10d B/op\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp)
		out.Benchmarks = append(out.Benchmarks, rec)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
