// Command conbench regenerates the paper's figures and tables.
//
// Usage:
//
//	conbench -list
//	conbench -run fig1 [-scale quick|full] [-seed N] [-csv dir]
//	conbench -run all  [-scale quick|full]
//	conbench -json BENCH.json [-benchn N]
//
// Each experiment ID corresponds to one figure, table, or theorem of
// "3-Majority and 2-Choices with Many Opinions" (PODC 2025); see
// DESIGN.md for the index and EXPERIMENTS.md for recorded results.
//
// The -json mode runs the library's reference performance suite (full
// consensus runs at the dense small-k and sparse many-opinions
// operating points) and writes per-benchmark ns/op, allocs/op and
// B/op to the given path, so perf regressions leave a comparable
// machine-readable record (see DESIGN.md §Benchmark-regression
// harness).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"plurality/internal/experiments"
	"plurality/internal/tablefmt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "conbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("conbench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		runID    = fs.String("run", "", "experiment ID to run, or 'all'")
		scaleStr = fs.String("scale", "quick", "problem scale: quick or full")
		seed     = fs.Uint64("seed", 1, "base random seed")
		par      = fs.Int("par", 0, "worker parallelism (0 = all cores)")
		csvDir   = fs.String("csv", "", "also write each table as CSV into this directory")
		jsonPath = fs.String("json", "", "run the performance suite and write BENCH.json to this path")
		benchN   = fs.Int("benchn", 5, "iterations per benchmark in -json mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %-28s %s\n", e.ID, e.Artifact, e.Title)
		}
		return nil
	}
	if *jsonPath != "" {
		return writeBenchJSON(*jsonPath, *benchN)
	}
	if *runID == "" {
		fs.Usage()
		return fmt.Errorf("missing -run, -json or -list")
	}

	scale, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	opts := experiments.Options{Scale: scale, Seed: *seed, Parallelism: *par}

	var selected []experiments.Experiment
	if *runID == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("# %s — %s (%s)\n", e.ID, e.Title, e.Artifact)
		start := time.Now()
		tables := e.Run(opts)
		fmt.Printf("# completed in %v\n\n", time.Since(start).Round(time.Millisecond))
		if err := tablefmt.RenderAll(os.Stdout, tables); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, e.ID, tables); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSVs(dir, id string, tables []tablefmt.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range tables {
		name := fmt.Sprintf("%s_%d.csv", id, i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := tables[i].WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
