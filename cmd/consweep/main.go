// Command consweep sweeps a parameter (k or n) for one or more
// protocols and prints median consensus times — the generic tool
// behind figures like the paper's Figure 1. It is a thin shell over
// the shared internal/service sweep runner, so the same sweep issued
// to conserve's POST /sweep produces byte-identical per-point results
// (compare with -ndjson).
//
// Usage:
//
//	consweep -sweep k -values 2,4,8,16,32 -n 100000 -protocols 3-majority,2-choices
//	consweep -sweep n -values 1000,10000,100000 -k 32 -protocols 3-majority
//	consweep -sweep k -values 2,4,8 -n 100000 -ndjson   # server-identical NDJSON
//	consweep -sweep k -values 8,32,128 -stop 'gamma>=0.5'  # median hitting times
//
// -stop applies a stop condition (see internal/stop) to every point:
// the reported medians become hitting times of the boundary instead of
// consensus times.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plurality/internal/service"
	"plurality/internal/stop"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "consweep:", err)
		os.Exit(1)
	}
}

func sweepFromFlags(fs *flag.FlagSet, args []string) (service.SweepRequest, error) {
	var (
		sweep     = fs.String("sweep", "k", "parameter to sweep: k or n")
		values    = fs.String("values", "2,4,8,16,32,64", "comma-separated sweep values")
		n         = fs.Int64("n", 100_000, "number of vertices (fixed when sweeping k)")
		k         = fs.Int("k", 32, "number of opinions (fixed when sweeping n)")
		protos    = fs.String("protocols", "3-majority,2-choices", "comma-separated protocols")
		initName  = fs.String("init", "balanced", "initial configuration: balanced, zipf, geometric, planted")
		initParam = fs.Float64("init-param", 1, "zipf exponent / geometric ratio / planted extra fraction")
		trials    = fs.Int("trials", 5, "trials per point")
		seed      = fs.Uint64("seed", 1, "base seed")
		maxRounds = fs.Int("max-rounds", 0, "round budget per run (0 = default)")
		stopSpec  = fs.String("stop", "", "stop condition per run: comma-separated gamma>=G, live<=M, round>=R (default: consensus)")
	)
	if err := fs.Parse(args); err != nil {
		return service.SweepRequest{}, err
	}
	vals, err := parseInts(*values)
	if err != nil {
		return service.SweepRequest{}, err
	}
	sr := service.SweepRequest{
		Base: service.Request{
			N:         *n,
			K:         *k,
			Init:      *initName,
			InitParam: *initParam,
			Seed:      *seed,
			Trials:    *trials,
			MaxRounds: *maxRounds,
		},
		Sweep:     *sweep,
		Values:    vals,
		Protocols: strings.Split(*protos, ","),
	}
	if *stopSpec != "" {
		spec, err := stop.ParseSpec(*stopSpec)
		if err != nil {
			return service.SweepRequest{}, err
		}
		sr.Base.Stop = &spec
	}
	// Surface config errors (unknown protocol/init, bad values) before
	// any output, exactly as the server's upfront point validation does.
	_, err = sr.Points()
	return sr, err
}

func run(args []string) error {
	fs := flag.NewFlagSet("consweep", flag.ContinueOnError)
	ndjson := fs.Bool("ndjson", false, "emit per-point NDJSON lines (byte-identical to conserve /sweep)")
	sr, err := sweepFromFlags(fs, args)
	if err != nil {
		return err
	}

	runner := service.NewRunner(service.Options{QueueDepth: service.MaxSweepPoints})
	defer runner.Close()

	if *ndjson {
		return runner.Sweep(context.Background(), sr, func(p service.SweepPoint) error {
			return service.EncodeJSONLine(os.Stdout, p)
		})
	}

	sr = sr.Normalize()
	fmt.Printf("%-10s", sr.Sweep)
	for _, p := range sr.Protocols {
		fmt.Printf(" %-16s", p)
	}
	fmt.Println()
	col := 0
	return runner.Sweep(context.Background(), sr, func(p service.SweepPoint) error {
		if col == 0 {
			fmt.Printf("%-10d", p.Value)
		}
		fmt.Printf(" %-16.4g", p.Summary.MedianRounds)
		if col++; col == len(sr.Protocols) {
			fmt.Println()
			col = 0
		}
		return nil
	})
}

func parseInts(csv string) ([]int64, error) {
	parts := strings.Split(csv, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sweep values")
	}
	return out, nil
}
