// Command consweep sweeps a parameter (k or n) for one or more
// protocols and prints median consensus times — the generic tool
// behind figures like the paper's Figure 1.
//
// Usage:
//
//	consweep -sweep k -values 2,4,8,16,32 -n 100000 -protocols 3-majority,2-choices
//	consweep -sweep n -values 1000,10000,100000 -k 32 -protocols 3-majority
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plurality"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "consweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("consweep", flag.ContinueOnError)
	var (
		sweep  = fs.String("sweep", "k", "parameter to sweep: k or n")
		values = fs.String("values", "2,4,8,16,32,64", "comma-separated sweep values")
		n      = fs.Int64("n", 100_000, "number of vertices (fixed when sweeping k)")
		k      = fs.Int("k", 32, "number of opinions (fixed when sweeping n)")
		protos = fs.String("protocols", "3-majority,2-choices", "comma-separated protocols")
		trials = fs.Int("trials", 5, "trials per point")
		seed   = fs.Uint64("seed", 1, "base seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	vals, err := parseInts(*values)
	if err != nil {
		return err
	}
	protoNames := strings.Split(*protos, ",")

	fmt.Printf("%-10s", *sweep)
	for _, p := range protoNames {
		fmt.Printf(" %-16s", strings.TrimSpace(p))
	}
	fmt.Println()

	for _, val := range vals {
		fmt.Printf("%-10d", val)
		for pi, pname := range protoNames {
			proto, err := protocolByName(strings.TrimSpace(pname))
			if err != nil {
				return err
			}
			curN, curK := *n, *k
			switch *sweep {
			case "k":
				curK = int(val)
			case "n":
				curN = val
			default:
				return fmt.Errorf("unknown sweep parameter %q", *sweep)
			}
			results, err := plurality.RunMany(plurality.Config{
				N:        curN,
				Protocol: proto,
				Init:     plurality.Balanced(curK),
				Seed:     *seed + uint64(pi)*101 + uint64(val),
			}, *trials)
			if err != nil {
				return err
			}
			fmt.Printf(" %-16.4g", medianRounds(results))
		}
		fmt.Println()
	}
	return nil
}

func protocolByName(name string) (plurality.Protocol, error) {
	switch name {
	case "3-majority":
		return plurality.ThreeMajority(), nil
	case "2-choices":
		return plurality.TwoChoices(), nil
	case "voter":
		return plurality.Voter(), nil
	case "median":
		return plurality.Median(), nil
	default:
		return plurality.Protocol{}, fmt.Errorf("unknown protocol %q", name)
	}
}

func parseInts(csv string) ([]int64, error) {
	parts := strings.Split(csv, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sweep values")
	}
	return out, nil
}

func medianRounds(results []plurality.Result) float64 {
	rounds := make([]int, len(results))
	for i, r := range results {
		rounds[i] = r.Rounds
	}
	for i := 1; i < len(rounds); i++ {
		for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
			rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
		}
	}
	m := len(rounds) / 2
	if len(rounds)%2 == 1 {
		return float64(rounds[m])
	}
	return float64(rounds[m-1]+rounds[m]) / 2
}
