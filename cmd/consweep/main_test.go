package main

import (
	"testing"

	"plurality"
)

func TestParseInts(t *testing.T) {
	vals, err := parseInts("2, 4,8")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 4, 8}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("parseInts = %v", vals)
		}
	}
	if _, err := parseInts("2,x"); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty accepted")
	}
}

func TestProtocolByName(t *testing.T) {
	for _, name := range []string{"3-majority", "2-choices", "voter", "median"} {
		p, err := protocolByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("protocolByName(%q) = %q, %v", name, p.Name(), err)
		}
	}
	if _, err := protocolByName("nope"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestMedianRounds(t *testing.T) {
	results := []plurality.Result{{Rounds: 5}, {Rounds: 1}, {Rounds: 3}}
	if got := medianRounds(results); got != 3 {
		t.Fatalf("median = %v", got)
	}
	even := []plurality.Result{{Rounds: 2}, {Rounds: 4}}
	if got := medianRounds(even); got != 3 {
		t.Fatalf("even median = %v", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-sweep", "k", "-values", "2,4", "-n", "400", "-protocols", "3-majority", "-trials", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-sweep", "n", "-values", "300,600", "-k", "3", "-protocols", "voter", "-trials", "1"}); err != nil {
		t.Fatalf("n sweep: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-sweep", "q", "-values", "2"}); err == nil {
		t.Fatal("bad sweep parameter accepted")
	}
	if err := run([]string{"-protocols", "nope", "-values", "2"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
}
