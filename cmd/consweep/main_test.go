package main

import (
	"flag"
	"testing"
)

func TestParseInts(t *testing.T) {
	vals, err := parseInts("2, 4,8")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 4, 8}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("parseInts = %v", vals)
		}
	}
	if _, err := parseInts("2,x"); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty accepted")
	}
}

func parseSweep(t *testing.T, args ...string) error {
	t.Helper()
	fs := flag.NewFlagSet("consweep", flag.ContinueOnError)
	_, err := sweepFromFlags(fs, args)
	return err
}

func TestSweepFromFlags(t *testing.T) {
	fs := flag.NewFlagSet("consweep", flag.ContinueOnError)
	sr, err := sweepFromFlags(fs, []string{"-sweep", "k", "-values", "2,4", "-n", "400", "-protocols", "3-majority,voter", "-trials", "3", "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Sweep != "k" || len(sr.Values) != 2 || len(sr.Protocols) != 2 {
		t.Fatalf("unexpected sweep request %+v", sr)
	}
	if sr.Base.N != 400 || sr.Base.Trials != 3 || sr.Base.Seed != 7 {
		t.Fatalf("base request not populated: %+v", sr.Base)
	}
	pts, err := sr.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("want 4 points, got %d", len(pts))
	}
}

func TestSweepFromFlagsRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-sweep", "q", "-values", "2"},        // unknown axis
		{"-protocols", "nope", "-values", "2"}, // unknown protocol
		{"-values", "2,x"},                     // unparsable value
		{"-values", ""},                        // empty value list
		{"-init", "nope", "-values", "2"},      // unknown init
		{"-sweep", "k", "-values", "0"},        // k = 0 point
		{"-sweep", "n", "-values", "-5"},       // negative n point
		{"-trials", "-1", "-values", "2"},      // bad trial count
		{"-flag-that-does-not-exist"},          // flag-level error
	} {
		if err := parseSweep(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-sweep", "k", "-values", "2,4", "-n", "400", "-protocols", "3-majority", "-trials", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-sweep", "n", "-values", "300,600", "-k", "3", "-protocols", "voter", "-trials", "1"}); err != nil {
		t.Fatalf("n sweep: %v", err)
	}
	if err := run([]string{"-sweep", "k", "-values", "2,4", "-n", "400", "-protocols", "voter", "-trials", "1", "-ndjson"}); err != nil {
		t.Fatalf("ndjson sweep: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-sweep", "q", "-values", "2"}); err == nil {
		t.Fatal("bad sweep parameter accepted")
	}
	if err := run([]string{"-protocols", "nope", "-values", "2"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
}
