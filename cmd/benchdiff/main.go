// Command benchdiff compares two conbench BENCH.json files and fails
// on performance regressions — the CI bench-regression gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_BASELINE.json -current BENCH.json
//	          [-fail-pct 25] [-warn-pct 10] [-min-ns 1000000]
//
// For every suite in the baseline it computes the ns/op delta against
// the current record and prints one markdown table row (pipe stdout
// into $GITHUB_STEP_SUMMARY for the job summary). A suite slower by
// more than -fail-pct fails the run (exit 1); slower by more than
// -warn-pct warns; faster by more than -warn-pct is flagged as
// improved. Suites faster than -min-ns in the baseline are ignored
// (too noisy to gate on), suites missing from the current file fail
// (coverage loss), and suites only in the current file are listed as
// new. Refresh the committed baseline with `make bench-baseline`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// benchRecord mirrors conbench's BENCH.json entries (the fields the
// diff consumes).
type benchRecord struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// benchFile mirrors conbench's BENCH.json schema.
type benchFile struct {
	GoVersion  string        `json:"go_version"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func loadBench(path string) (benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return benchFile{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return benchFile{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return f, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath = fs.String("baseline", "BENCH_BASELINE.json", "baseline BENCH.json")
		curPath  = fs.String("current", "BENCH.json", "current BENCH.json")
		failPct  = fs.Float64("fail-pct", 25, "fail when a suite is this % slower than baseline")
		warnPct  = fs.Float64("warn-pct", 10, "warn when a suite is this % slower than baseline")
		minNs    = fs.Float64("min-ns", 1_000_000, "ignore suites with baseline ns/op below this (noise floor)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failPct < *warnPct {
		return fmt.Errorf("fail-pct (%v) must be >= warn-pct (%v)", *failPct, *warnPct)
	}
	base, err := loadBench(*basePath)
	if err != nil {
		return err
	}
	cur, err := loadBench(*curPath)
	if err != nil {
		return err
	}
	curByName := make(map[string]benchRecord, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}

	fmt.Fprintf(out, "## Benchmark diff vs %s\n\n", *basePath)
	fmt.Fprintf(out, "Tolerance: fail > +%.0f%%, warn > +%.0f%%; suites under %.1fms ignored.\n\n", *failPct, *warnPct, *minNs/1e6)
	fmt.Fprintln(out, "| suite | baseline ns/op | current ns/op | Δ | status |")
	fmt.Fprintln(out, "|---|---:|---:|---:|---|")

	fails, warns := 0, 0
	seen := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		seen[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			fails++
			fmt.Fprintf(out, "| %s | %.0f | — | — | ❌ missing from current run |\n", b.Name, b.NsPerOp)
			continue
		}
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "✅ ok"
		switch {
		case b.NsPerOp < *minNs:
			status = "➖ below noise floor"
		case delta > *failPct:
			fails++
			status = "❌ regression"
		case delta > *warnPct:
			warns++
			status = "⚠️ slower"
		case delta < -*warnPct:
			status = "🚀 improved"
		}
		fmt.Fprintf(out, "| %s | %.0f | %.0f | %+.1f%% | %s |\n", b.Name, b.NsPerOp, c.NsPerOp, delta, status)
	}
	for _, c := range cur.Benchmarks {
		if !seen[c.Name] {
			fmt.Fprintf(out, "| %s | — | %.0f | — | 🆕 new (info) |\n", c.Name, c.NsPerOp)
		}
	}
	fmt.Fprintf(out, "\n%d suites compared, %d warnings, %d failures.\n", len(base.Benchmarks), warns, fails)
	if fails > 0 {
		return fmt.Errorf("%d suite(s) regressed beyond %.0f%% (or went missing)", fails, *failPct)
	}
	return nil
}
