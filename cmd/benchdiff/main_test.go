package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name string, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `{"benchmarks":[
	{"name":"suite_a","ns_per_op":100000000},
	{"name":"suite_b","ns_per_op":200000000},
	{"name":"suite_tiny","ns_per_op":1000}
]}`

func diff(t *testing.T, current string, extra ...string) (string, error) {
	t.Helper()
	args := append([]string{
		"-baseline", writeBench(t, "base.json", baseline),
		"-current", writeBench(t, "cur.json", current),
	}, extra...)
	var out strings.Builder
	err := run(args, &out)
	return out.String(), err
}

func TestOkWithinTolerance(t *testing.T) {
	out, err := diff(t, `{"benchmarks":[
		{"name":"suite_a","ns_per_op":105000000},
		{"name":"suite_b","ns_per_op":195000000},
		{"name":"suite_tiny","ns_per_op":99000}
	]}`)
	if err != nil {
		t.Fatalf("within-tolerance diff failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "✅ ok") || strings.Contains(out, "❌") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// The 99x-slower tiny suite sits below the noise floor and must not
	// trip the gate.
	if !strings.Contains(out, "➖ below noise floor") {
		t.Fatalf("noise floor not applied:\n%s", out)
	}
}

func TestFailOnRegression(t *testing.T) {
	out, err := diff(t, `{"benchmarks":[
		{"name":"suite_a","ns_per_op":130000000},
		{"name":"suite_b","ns_per_op":200000000},
		{"name":"suite_tiny","ns_per_op":1000}
	]}`)
	if err == nil {
		t.Fatalf("30%% regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "❌ regression") {
		t.Fatalf("missing regression marker:\n%s", out)
	}
}

func TestWarnBetweenBands(t *testing.T) {
	out, err := diff(t, `{"benchmarks":[
		{"name":"suite_a","ns_per_op":115000000},
		{"name":"suite_b","ns_per_op":200000000},
		{"name":"suite_tiny","ns_per_op":1000}
	]}`)
	if err != nil {
		t.Fatalf("warn-band diff failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "⚠️ slower") || !strings.Contains(out, "1 warnings, 0 failures") {
		t.Fatalf("missing warning:\n%s", out)
	}
}

func TestMissingSuiteFails(t *testing.T) {
	out, err := diff(t, `{"benchmarks":[
		{"name":"suite_a","ns_per_op":100000000},
		{"name":"suite_tiny","ns_per_op":1000}
	]}`)
	if err == nil {
		t.Fatalf("missing suite passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "missing from current run") {
		t.Fatalf("missing-suite marker absent:\n%s", out)
	}
}

func TestNewSuiteAndImprovement(t *testing.T) {
	out, err := diff(t, `{"benchmarks":[
		{"name":"suite_a","ns_per_op":50000000},
		{"name":"suite_b","ns_per_op":200000000},
		{"name":"suite_tiny","ns_per_op":1000},
		{"name":"suite_new","ns_per_op":300000000}
	]}`)
	if err != nil {
		t.Fatalf("improvement diff failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "🚀 improved") || !strings.Contains(out, "🆕 new (info)") {
		t.Fatalf("markers absent:\n%s", out)
	}
	// New-in-current suites are informational: they must never count
	// toward the failure total.
	if !strings.Contains(out, "0 failures") {
		t.Fatalf("new suite counted as failure:\n%s", out)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := diff(t, `{"benchmarks":[]}`); err == nil {
		t.Fatal("empty current accepted")
	}
	if _, err := diff(t, `not json`); err == nil {
		t.Fatal("bad JSON accepted")
	}
	var out strings.Builder
	if err := run([]string{"-baseline", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("missing baseline accepted")
	}
	if err := run([]string{"-fail-pct", "5", "-warn-pct", "10"}, &out); err == nil {
		t.Fatal("fail-pct < warn-pct accepted")
	}
}
