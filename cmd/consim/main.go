// Command consim runs a single consensus-dynamics trajectory and
// prints a per-round trace: γ_t, live opinions, and the leader. It is
// a thin shell over the shared internal/service request layer, so a
// consim invocation and the equivalent conserve POST /run (or consim
// -json) describe — and produce — exactly the same simulation.
//
// Usage:
//
//	consim -n 1000000 -k 100 -protocol 3-majority [-init balanced]
//	       [-seed 1] [-every 10] [-max-rounds 0] [-adversary 0]
//	       [-trials 1] [-json] [-trace spec] [-stop spec] [-tier analytic]
//
// Protocols: 3-majority, 2-choices, voter, median, undecided, h<m>
// (e.g. h5), lazy:<beta>:<base>. Inits: balanced, zipf, geometric,
// planted. With -json the per-round trace is suppressed and the
// canonical service response (byte-identical to the server's /run
// body) is printed instead.
//
// -trace records a sampled round trace through the service layer
// (spec: adaptive, log2, every[:stride], optionally :points=N — see
// internal/trace). Alone it emits the NDJSON trace stream, one point
// per line followed by the summary response line, byte-identical to
// the server's POST /run?trace=1; combined with -json the trace rides
// inline in the canonical response body.
//
// -stop ends the run at a phase boundary instead of consensus (spec:
// comma-separated conjunction of gamma>=G, live<=M, round>=R — see
// internal/stop), e.g. -stop gamma>=0.5 records the Γ ≥ 1/2 hitting
// time directly. The stop spec is part of the request identity, so it
// rides in -json/-trace bodies and in the server's cache key alike.
//
// -tier analytic answers from the calibrated theory model instead of
// simulating (see internal/analytic): the printout is the predicted
// consensus time with its prediction interval, and -json emits the
// canonical analytic response (method "analytic"), byte-identical to
// the server's. Sync 3-majority/2-choices requests whose n exceeds the
// simulation cap are promoted to this tier automatically.
package main

import (
	"flag"
	"fmt"
	"os"

	"plurality"
	"plurality/internal/service"
	"plurality/internal/stop"
	"plurality/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "consim:", err)
		os.Exit(1)
	}
}

func requestFromFlags(fs *flag.FlagSet, args []string) (service.Request, error) {
	var req service.Request
	var stopSpec string
	fs.Int64Var(&req.N, "n", 100_000, "number of vertices")
	fs.IntVar(&req.K, "k", 10, "number of opinions")
	fs.StringVar(&req.Protocol, "protocol", "3-majority", "dynamics: 3-majority, 2-choices, voter, median, undecided, h<m>, lazy:<beta>:<base>")
	fs.StringVar(&req.Init, "init", "balanced", "initial configuration: balanced, zipf, geometric, planted")
	fs.Float64Var(&req.InitParam, "init-param", 1, "zipf exponent / geometric ratio / planted extra fraction")
	fs.Uint64Var(&req.Seed, "seed", 1, "random seed")
	fs.IntVar(&req.MaxRounds, "max-rounds", 0, "round budget (0 = default)")
	fs.Int64Var(&req.AdversaryF, "adversary", 0, "hinder-adversary per-round budget F (0 = none)")
	fs.StringVar(&stopSpec, "stop", "", "stop condition: comma-separated gamma>=G, live<=M, round>=R (default: consensus)")
	fs.StringVar(&req.Tier, "tier", "", "answer tier: simulation (default) or analytic (calibrated model, no simulation)")
	if err := fs.Parse(args); err != nil {
		return service.Request{}, err
	}
	if req.AdversaryF > 0 {
		req.Adversary = "hinder"
	}
	if stopSpec != "" {
		spec, err := stop.ParseSpec(stopSpec)
		if err != nil {
			return service.Request{}, err
		}
		req.Stop = &spec
	}
	req = req.Normalize()
	return req, req.Validate()
}

func run(args []string) error {
	fs := flag.NewFlagSet("consim", flag.ContinueOnError)
	var (
		every     = fs.Int("every", 1, "print every this many rounds")
		trials    = fs.Int("trials", 0, "trials for -json/-trace mode (0 = 1)")
		asJSON    = fs.Bool("json", false, "print the canonical service response instead of a trace")
		traceSpec = fs.String("trace", "", "record a round trace: adaptive, log2, every[:stride][:points=N] (NDJSON; inline with -json)")
	)
	req, err := requestFromFlags(fs, args)
	if err != nil {
		return err
	}
	if *trials != 0 && !*asJSON && *traceSpec == "" {
		return fmt.Errorf("-trials only applies with -json or -trace (the round printout follows a single run)")
	}
	if *traceSpec != "" {
		spec, err := trace.ParseSpec(*traceSpec)
		if err != nil {
			return err
		}
		req.Trace = &spec
	}

	if *asJSON || *traceSpec != "" {
		req.Trials = *trials
		resp, err := service.Execute(req)
		if err != nil {
			return err
		}
		if *asJSON {
			return service.EncodeJSONLine(os.Stdout, resp)
		}
		return service.WriteTraceNDJSON(os.Stdout, resp, nil)
	}

	// The analytic tier has no rounds to print: it answers in closed
	// form from the calibrated model, so the plain mode prints the
	// prediction and its interval instead of a trajectory.
	if req.Tier == service.TierAnalytic {
		resp, err := service.Execute(req)
		if err != nil {
			return err
		}
		p := resp.Analytic
		fmt.Printf("analytic tier (model %s): %s on n=%d, gamma0 %.4g, delta %.4g\n",
			p.ModelVersion, p.Dynamics, req.N, p.Gamma0, p.MaxDensity)
		fmt.Printf("predicted consensus in %.4g rounds (%g%% interval: %.4g – %.4g)\n",
			p.Rounds, 100*p.Confidence, p.RoundsLo, p.RoundsHi)
		return nil
	}

	// The round printout runs through the same unified Experiment the
	// service executes, with a per-round observer attached.
	exp, err := req.Experiment()
	if err != nil {
		return err
	}
	if *every < 1 {
		*every = 1
	}
	fmt.Printf("%-8s %-12s %-8s %-8s %-10s\n", "round", "gamma", "live", "leader", "leaderfrac")
	exp.OnRound = func(_, round int, s plurality.Snapshot) bool {
		if round%*every != 0 {
			return false
		}
		op, frac := s.Leader()
		fmt.Printf("%-8d %-12.6g %-8d %-8d %-10.6g\n", round, s.Gamma(), s.Live(), op, frac)
		return false
	}
	out, err := exp.Run()
	if err != nil {
		return err
	}
	res := out.Trials[0]
	switch {
	case res.Stopped:
		fmt.Printf("\nstopped (%s) after %.0f rounds: gamma %.6g, %d live opinions (leader: opinion %d)\n",
			req.Stop, res.Rounds, res.Gamma, res.Live, res.Winner)
	case res.Consensus:
		fmt.Printf("\nconsensus on opinion %d after %.0f rounds\n", res.Winner, res.Rounds)
	default:
		fmt.Printf("\nno consensus within %.0f rounds (leader: opinion %d)\n", res.Rounds, res.Winner)
	}
	return nil
}
