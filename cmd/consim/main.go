// Command consim runs a single consensus-dynamics trajectory and
// prints a per-round trace: γ_t, live opinions, and the leader.
//
// Usage:
//
//	consim -n 1000000 -k 100 -protocol 3-majority [-init balanced]
//	       [-seed 1] [-every 10] [-max-rounds 0] [-adversary 0]
//
// Protocols: 3-majority, 2-choices, voter, median, undecided, h<k>
// (e.g. h5). Inits: balanced, zipf, geometric, planted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plurality"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "consim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("consim", flag.ContinueOnError)
	var (
		n         = fs.Int64("n", 100_000, "number of vertices")
		k         = fs.Int("k", 10, "number of opinions")
		protoName = fs.String("protocol", "3-majority", "dynamics: 3-majority, 2-choices, voter, median, undecided, h<m>")
		initName  = fs.String("init", "balanced", "initial configuration: balanced, zipf, geometric, planted")
		initParam = fs.Float64("init-param", 1, "zipf exponent / geometric ratio / planted extra fraction")
		seed      = fs.Uint64("seed", 1, "random seed")
		every     = fs.Int("every", 1, "print every this many rounds")
		maxRounds = fs.Int("max-rounds", 0, "round budget (0 = default)")
		advF      = fs.Int64("adversary", 0, "hinder-adversary per-round budget F (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto, err := parseProtocol(*protoName)
	if err != nil {
		return err
	}
	init, err := parseInit(*initName, *k, *initParam)
	if err != nil {
		return err
	}

	cfg := plurality.Config{
		N:         *n,
		Protocol:  proto,
		Init:      init,
		Seed:      *seed,
		MaxRounds: *maxRounds,
	}
	if *advF > 0 {
		cfg.Adversary = plurality.HinderAdversary(*advF)
	}
	if *every < 1 {
		*every = 1
	}
	fmt.Printf("%-8s %-12s %-8s %-8s %-10s\n", "round", "gamma", "live", "leader", "leaderfrac")
	cfg.OnRound = func(round int, s plurality.Snapshot) bool {
		if round%*every != 0 {
			return false
		}
		op, frac := s.Leader()
		fmt.Printf("%-8d %-12.6g %-8d %-8d %-10.6g\n", round, s.Gamma(), s.Live(), op, frac)
		return false
	}
	res, err := plurality.Run(cfg)
	if err != nil {
		return err
	}
	if res.Consensus {
		fmt.Printf("\nconsensus on opinion %d after %d rounds\n", res.Winner, res.Rounds)
	} else {
		fmt.Printf("\nno consensus within %d rounds (leader: opinion %d)\n", res.Rounds, res.Winner)
	}
	return nil
}

func parseProtocol(name string) (plurality.Protocol, error) {
	switch name {
	case "3-majority":
		return plurality.ThreeMajority(), nil
	case "2-choices":
		return plurality.TwoChoices(), nil
	case "voter":
		return plurality.Voter(), nil
	case "median":
		return plurality.Median(), nil
	case "undecided":
		return plurality.Undecided(), nil
	}
	if strings.HasPrefix(name, "h") {
		h, err := strconv.Atoi(name[1:])
		if err != nil || h < 1 {
			return plurality.Protocol{}, fmt.Errorf("bad h-majority spec %q", name)
		}
		return plurality.HMajority(h), nil
	}
	return plurality.Protocol{}, fmt.Errorf("unknown protocol %q", name)
}

func parseInit(name string, k int, param float64) (plurality.Init, error) {
	switch name {
	case "balanced":
		return plurality.Balanced(k), nil
	case "zipf":
		return plurality.Zipf(k, param), nil
	case "geometric":
		return plurality.Geometric(k, param), nil
	case "planted":
		return plurality.PlantedBias(k, param), nil
	default:
		return plurality.Init{}, fmt.Errorf("unknown init %q", name)
	}
}
