package main

import (
	"flag"
	"testing"
)

func parse(t *testing.T, args ...string) error {
	t.Helper()
	fs := flag.NewFlagSet("consim", flag.ContinueOnError)
	_, err := requestFromFlags(fs, args)
	return err
}

func TestRequestFromFlags(t *testing.T) {
	fs := flag.NewFlagSet("consim", flag.ContinueOnError)
	req, err := requestFromFlags(fs, []string{"-n", "500", "-k", "4", "-protocol", "h5", "-adversary", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if req.N != 500 || req.K != 4 || req.Protocol != "h5" {
		t.Fatalf("unexpected request %+v", req)
	}
	if req.Adversary != "hinder" || req.AdversaryF != 3 {
		t.Fatalf("adversary flag not mapped: %+v", req)
	}
	if req.Init != "balanced" || req.Trials != 1 || req.Mode != "sync" {
		t.Fatalf("request not normalized: %+v", req)
	}
}

func TestRequestFromFlagsRejectsBadConfig(t *testing.T) {
	for _, args := range [][]string{
		{"-protocol", "nope"},
		{"-protocol", "h0"},
		{"-init", "nope"},
		{"-n", "-1"},
	} {
		if err := parse(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-n", "500", "-k", "4", "-protocol", "2-choices", "-every", "100"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-n", "500", "-k", "4", "-protocol", "2-choices", "-json", "-trials", "2"}); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	if err := run([]string{"-n", "500", "-k", "4", "-trace", "log2", "-trials", "2"}); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	if err := run([]string{"-n", "500", "-k", "4", "-trace", "every:10", "-json"}); err != nil {
		t.Fatalf("run -trace -json: %v", err)
	}
}

func TestRunAnalyticTier(t *testing.T) {
	// Plain, -json, and the auto-promotion path (n beyond the sync
	// simulation cap with no explicit tier) all answer analytically.
	if err := run([]string{"-n", "1000000000", "-k", "100", "-tier", "analytic"}); err != nil {
		t.Fatalf("run -tier analytic: %v", err)
	}
	if err := run([]string{"-n", "1000000000", "-k", "100", "-tier", "analytic", "-json"}); err != nil {
		t.Fatalf("run -tier analytic -json: %v", err)
	}
	if err := run([]string{"-n", "10000000000", "-k", "64", "-protocol", "2-choices"}); err != nil {
		t.Fatalf("run with promoted n: %v", err)
	}
	if err := run([]string{"-n", "1000", "-k", "4", "-tier", "bogus"}); err == nil {
		t.Fatal("bad tier accepted")
	}
	if err := run([]string{"-n", "1000", "-k", "4", "-protocol", "voter", "-tier", "analytic"}); err == nil {
		t.Fatal("analytic tier accepted a protocol outside its theorems")
	}
}

func TestRunRejectsBadTraceSpec(t *testing.T) {
	if err := run([]string{"-n", "500", "-k", "4", "-trace", "bogus"}); err == nil {
		t.Fatal("bad trace spec accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-protocol", "nope"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if err := run([]string{"-init", "nope"}); err == nil {
		t.Fatal("bad init accepted")
	}
	if err := run([]string{"-trials", "5"}); err == nil {
		t.Fatal("-trials without -json silently ignored")
	}
}
