package main

import (
	"testing"
)

func TestParseProtocol(t *testing.T) {
	cases := []struct {
		in     string
		want   string
		wantOK bool
	}{
		{"3-majority", "3-majority", true},
		{"2-choices", "2-choices", true},
		{"voter", "voter", true},
		{"median", "median", true},
		{"undecided", "undecided", true},
		{"h5", "majority-h5", true},
		{"h1", "majority-h1", true},
		{"h0", "", false},
		{"hx", "", false},
		{"quantum", "", false},
	}
	for _, c := range cases {
		p, err := parseProtocol(c.in)
		if c.wantOK {
			if err != nil {
				t.Errorf("parseProtocol(%q): %v", c.in, err)
				continue
			}
			if p.Name() != c.want {
				t.Errorf("parseProtocol(%q) = %q, want %q", c.in, p.Name(), c.want)
			}
		} else if err == nil {
			t.Errorf("parseProtocol(%q) should fail", c.in)
		}
	}
}

func TestParseInit(t *testing.T) {
	for _, name := range []string{"balanced", "zipf", "geometric", "planted"} {
		if _, err := parseInit(name, 4, 0.5); err != nil {
			t.Errorf("parseInit(%q): %v", name, err)
		}
	}
	if _, err := parseInit("weird", 4, 0.5); err == nil {
		t.Error("parseInit(weird) should fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-n", "500", "-k", "4", "-protocol", "2-choices", "-every", "100"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-protocol", "nope"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
	if err := run([]string{"-init", "nope"}); err == nil {
		t.Fatal("bad init accepted")
	}
}
