package plurality

import (
	"reflect"
	"strconv"
	"testing"

	"plurality/internal/trace"
)

// The batch≡serial property: for every batch width, protocol, stop
// condition and trace setting, the batch executor's Outcome is
// byte-identical to the classic build-per-trial executor's. The test
// names contain "Identical" so the CI determinism job picks them up.

// runOutcome executes e and fails the test on error.
func runOutcome(t *testing.T, e Experiment) *Outcome {
	t.Helper()
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertOutcomesIdentical compares two Outcomes including every trace
// point; reflect.DeepEqual distinguishes NaN and ±0, which is stricter
// than == on the float observables.
func assertOutcomesIdentical(t *testing.T, got, want *Outcome, what string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s diverged:\n got %+v\nwant %+v", what, got, want)
	}
}

func TestBatchSerialIdentical(t *testing.T) {
	protocols := []struct {
		name  string
		proto Protocol
	}{
		{"3majority", ThreeMajority()},
		{"2choices", TwoChoices()},
		{"voter", Voter()},
		{"hmajority3", HMajority(3)}, // flat kernel via the 3-majority law
		{"hmajority5", HMajority(5)}, // no flat kernel: generic batched engine
	}
	widths := []int{1, 2, 7, 64}
	for _, p := range protocols {
		for _, b := range widths {
			for _, stopped := range []bool{false, true} {
				for _, traced := range []bool{false, true} {
					name := p.name + sub("B", b) + flag("stop", stopped) + flag("trace", traced)
					t.Run(name, func(t *testing.T) {
						e := Experiment{
							N:           600,
							Protocol:    p.proto,
							Init:        Balanced(12),
							Seed:        0xfeed + uint64(b),
							NumTrials:   b,
							Parallelism: 1,
						}
						if stopped {
							e.Stop = StopWhenGammaAtLeast(0.5)
						}
						if traced {
							e.Trace = &trace.Spec{Policy: "every"}
						}
						serial := e
						serial.noBatch = true
						want := runOutcome(t, serial)
						got := runOutcome(t, e)
						assertOutcomesIdentical(t, got, want, "batch vs serial")

						wide := e
						wide.Parallelism = 8
						assertOutcomesIdentical(t, runOutcome(t, wide), want, "batch at Parallelism 8")
					})
				}
			}
		}
	}
}

// TestBatchGenericPathIdentical covers the configurations the flat
// kernel cannot take — adversaries, USD, Median — which the batch
// executor routes through the generic engine with shared template and
// scratch. The property is the same: identical Outcomes.
func TestBatchGenericPathIdentical(t *testing.T) {
	cases := []struct {
		name string
		e    Experiment
	}{
		{"adversary-hinder", Experiment{
			N: 600, Protocol: ThreeMajority(), Init: Balanced(8),
			Adversary: HinderAdversary(3), MaxRounds: 200,
		}},
		{"adversary-scatter-traced", Experiment{
			N: 600, Protocol: TwoChoices(), Init: Balanced(8),
			Adversary: ScatterAdversary(2), MaxRounds: 200,
			Trace: &trace.Spec{Policy: "log2"},
		}},
		{"undecided", Experiment{
			N: 500, Protocol: Undecided(), Init: Balanced(10),
		}},
		{"median-stopped", Experiment{
			N: 500, Protocol: Median(), Init: Balanced(10),
			Stop: StopWhenLiveAtMost(2),
		}},
		{"lazy-3majority", Experiment{
			N: 500, Protocol: LazyVariant(ThreeMajority(), 0.3), Init: Balanced(10),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.e
			e.Seed = 0xabcd
			e.NumTrials = 6
			e.Parallelism = 1
			serial := e
			serial.noBatch = true
			want := runOutcome(t, serial)
			assertOutcomesIdentical(t, runOutcome(t, e), want, "generic batch vs serial")

			wide := e
			wide.Parallelism = 8
			assertOutcomesIdentical(t, runOutcome(t, wide), want, "generic batch at Parallelism 8")
		})
	}
}

// TestBatchFirstTrialIdentical pins the resume contract on the batch
// executor: the delivered suffix of a FirstTrial run matches the same
// trials of a full run.
func TestBatchFirstTrialIdentical(t *testing.T) {
	e := Experiment{
		N: 800, Protocol: ThreeMajority(), Init: Balanced(16),
		Seed: 7, NumTrials: 9, Parallelism: 1,
	}
	full := runOutcome(t, e)
	part := e
	part.FirstTrial = 4
	got := runOutcome(t, part)
	want := full.Trials[4:]
	if !reflect.DeepEqual(got.Trials, want) {
		t.Errorf("FirstTrial suffix diverged:\n got %+v\nwant %+v", got.Trials, want)
	}
}

func sub(k string, v int) string {
	return "/" + k + "=" + strconv.Itoa(v)
}

func flag(k string, on bool) string {
	if on {
		return "/" + k
	}
	return ""
}
