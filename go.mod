module plurality

go 1.23
