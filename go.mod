module plurality

go 1.22
