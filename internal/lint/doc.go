// Package lint is a custom static-analysis suite that enforces, at
// compile time, the contracts the rest of the repository can only
// check at runtime:
//
//   - determinism of the trial kernel (byte-identical results across
//     parallelism, batch width, and resume) — analyzers detmaprange
//     and gammafloat;
//   - the frozen RNG-stream contract (all randomness flows through
//     internal/rng seeded streams; stop conditions, trace sampling and
//     observer hooks never consume draws) — analyzers norawentropy and
//     rngpurity;
//   - the durability write-ordering contract (result bytes durable
//     before the completed journal record; no silently dropped
//     Sync/Close/Rename/Write errors) — analyzer durableorder.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Reportf) but is self-contained on the standard
// library: packages are loaded from `go list -export -json` metadata
// and type-checked against gc export data, the same mechanism `go vet`
// drivers use. cmd/convet is the multichecker binary over the suite.
//
// Diagnostics can be suppressed, one site at a time, with an
// annotated allow directive on the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; the runner counts and prints every
// suppression so waivers stay visible. See DESIGN.md "Statically
// enforced contracts" for the mapping from each analyzer to the
// runtime contract it guards.
//
// The contract above is owned by DESIGN.md §"Statically enforced
// contracts".
package lint
