package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite could be
// rehosted on the real framework without touching analyzer bodies.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is the one-paragraph description printed by convet -list.
	Doc string
	// Contract cites the DESIGN.md contract the analyzer guards.
	Contract string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// All is the convet suite, in stable order.
var All = []*Analyzer{
	DetMapRange,
	NoRawEntropy,
	RNGPurity,
	DurableOrder,
	GammaFloat,
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diagnostics *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Kernel packages: the deterministic trial kernel, identified by
// import-path suffix so the linttest harness can stand up fixture
// packages (e.g. testdata path "detmaprange/internal/core") that scope
// exactly like the real ones.
var kernelSuffixes = []string{
	"internal/core",
	"internal/rng",
	"internal/sim",
	"internal/population",
	"internal/async",
	"internal/graph",
	"internal/gossip",
}

// hasPathSuffix reports whether path is suffix or ends with
// "/"+suffix — i.e. suffix matches on import-path-segment boundaries.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsKernelPkg reports whether the import path names one of the
// deterministic-kernel packages.
func IsKernelPkg(path string) bool {
	for _, s := range kernelSuffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

// Determinism-scoped packages beyond the kernel: layers that replay a
// replicated log and must fold to identical state on every node.
// internal/cluster's ledger Apply runs in commit order on every
// replica, so map-order nondeterminism and ambient entropy there
// diverge the fleet exactly like they diverge trial results.
var determinismExtraSuffixes = []string{
	"internal/cluster",
}

// IsDeterminismScopedPkg reports whether the import path is covered by
// the determinism analyzers (detmaprange, norawentropy): the kernel
// packages plus the replicated-cluster layer.
func IsDeterminismScopedPkg(path string) bool {
	if IsKernelPkg(path) {
		return true
	}
	for _, s := range determinismExtraSuffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

// isRNGPkg reports whether the import path is the seeded-stream
// substrate (internal/rng) — the one legitimate randomness source.
func isRNGPkg(path string) bool { return hasPathSuffix(path, "internal/rng") }

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for calls through function
// values, built-ins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// RunAnalyzers applies each analyzer to each package and returns the
// raw (unsuppressed) diagnostics in deterministic order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				Info:        pkg.Info,
				diagnostics: &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	return diags, nil
}
