package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix introduces a suppression directive:
//
//	//lint:allow <analyzer> <reason>
//
// The directive waives diagnostics from the named analyzer on the same
// line or on the line directly below (annotation-above style). The
// reason is mandatory — an unexplained waiver is itself a diagnostic.
const allowPrefix = "lint:allow"

// Allow is one parsed //lint:allow directive.
type Allow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	// Used is set when the directive suppressed at least one
	// diagnostic in this run.
	Used bool
}

// Suppression pairs a waived diagnostic with the directive that
// waived it.
type Suppression struct {
	Diagnostic Diagnostic
	Allow      *Allow
}

// CollectAllows parses every //lint:allow directive in the packages.
// Malformed directives (missing analyzer, unknown analyzer, missing
// reason) are returned as diagnostics attributed to the pseudo-
// analyzer "allowdirective" so they fail the run like any finding.
func CollectAllows(pkgs []*Package, known []*Analyzer) ([]*Allow, []Diagnostic) {
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	var allows []*Allow
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue // block comments can't carry directives
					}
					text, ok = strings.CutPrefix(strings.TrimSpace(text), allowPrefix)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					switch {
					case len(fields) == 0:
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "allowdirective",
							Message:  "//lint:allow needs an analyzer name and a reason",
						})
					case !names[fields[0]]:
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "allowdirective",
							Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", fields[0]),
						})
					case len(fields) == 1:
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "allowdirective",
							Message:  fmt.Sprintf("//lint:allow %s needs a reason", fields[0]),
						})
					default:
						allows = append(allows, &Allow{
							Pos:      pos,
							Analyzer: fields[0],
							Reason:   strings.Join(fields[1:], " "),
						})
					}
				}
			}
		}
	}
	return allows, malformed
}

// ApplySuppressions splits diagnostics into surviving and suppressed
// according to the allow directives, marking each directive that
// fired. A directive at line L waives matching diagnostics at lines L
// and L+1 of the same file.
func ApplySuppressions(diags []Diagnostic, allows []*Allow) (kept []Diagnostic, suppressed []Suppression) {
	type key struct {
		file string
		line int
		name string
	}
	index := make(map[key]*Allow, len(allows))
	for _, a := range allows {
		index[key{a.Pos.Filename, a.Pos.Line, a.Analyzer}] = a
		index[key{a.Pos.Filename, a.Pos.Line + 1, a.Analyzer}] = a
	}
	for _, d := range diags {
		if a, ok := index[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
			a.Used = true
			suppressed = append(suppressed, Suppression{Diagnostic: d, Allow: a})
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the stable presentation order convet prints.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// UnusedAllows returns the directives that waived nothing this run —
// stale annotations worth cleaning up (reported as warnings, not
// failures, so an analyzer improvement never breaks the build).
func UnusedAllows(allows []*Allow) []*Allow {
	var out []*Allow
	for _, a := range allows {
		if !a.Used {
			out = append(out, a)
		}
	}
	return out
}
