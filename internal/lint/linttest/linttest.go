// Package linttest is the analysistest-style harness for the convet
// analyzer suite: it loads a fixture package from a GOPATH-shaped
// testdata tree, type-checks it (resolving fixture imports from
// source and everything else — stdlib, real module packages — from gc
// export data), runs one analyzer, applies //lint:allow suppressions,
// and diffs the surviving diagnostics against // want annotations.
//
// Fixture layout mirrors analysistest:
//
//	testdata/src/<import/path>/*.go
//
// The import path is chosen by the test and drives analyzer scoping:
// a fixture at testdata/src/detmaprange/internal/core is a kernel
// package to the suite because scoping matches on import-path
// suffixes.
//
// Expectations are end-of-line comments on the line the diagnostic is
// reported at:
//
//	for range m { // want `range over map`
//
// holding one or more quoted or backquoted regular expressions that
// must each match one diagnostic message on that line. A line with a
// //lint:allow directive expects its diagnostic to be suppressed, so
// it carries no want.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"plurality/internal/lint"
)

// Run loads testdata/src/<pkgPath>, applies the analyzer, and reports
// any mismatch between diagnostics and // want annotations as test
// errors.
func Run(t *testing.T, testdataDir string, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	abs, err := filepath.Abs(testdataDir)
	if err != nil {
		t.Fatalf("linttest: resolve %s: %v", testdataDir, err)
	}
	l := newLoader(abs)
	pkg, err := l.loadTarget(pkgPath)
	if err != nil {
		t.Fatalf("linttest: load %s: %v", pkgPath, err)
	}

	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: run %s: %v", a.Name, err)
	}
	allows, malformed := lint.CollectAllows([]*lint.Package{pkg}, lint.All)
	for _, d := range malformed {
		t.Errorf("linttest: %s", d)
	}
	kept, _ := lint.ApplySuppressions(diags, allows)

	wants := collectWants(t, pkg)
	for _, d := range kept {
		if !wants.match(d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
	}
}

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

func (ws *wantSet) match(d lint.Diagnostic) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// wantRE captures the quoted or backquoted patterns of a want comment.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func collectWants(t *testing.T, pkg *lint.Package) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Errorf("%s: malformed want comment (no quoted pattern): %s", pos, c.Text)
					continue
				}
				for _, m := range matches {
					pattern := m[1]
					if m[2] != "" {
						pattern = m[2]
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pattern, err)
						continue
					}
					ws.wants = append(ws.wants, &want{file: pos.Filename, line: pos.Line, pattern: pattern, re: re})
				}
			}
		}
	}
	return ws
}

// loader resolves fixture imports from testdata/src and everything
// else from gc export data produced by `go list -export`.
type loader struct {
	fset       *token.FileSet
	srcRoot    string
	pkgs       map[string]*types.Package
	exports    map[string]string
	exportImp  types.Importer
	inProgress map[string]bool
}

func newLoader(testdataDir string) *loader {
	l := &loader{
		fset:       token.NewFileSet(),
		srcRoot:    filepath.Join(testdataDir, "src"),
		pkgs:       make(map[string]*types.Package),
		exports:    make(map[string]string),
		inProgress: make(map[string]bool),
	}
	l.exportImp = lint.ExportDataImporter(l.fset, func(path string) (string, bool) {
		file, ok := l.exports[path]
		return file, ok
	})
	return l
}

// loadTarget parses and type-checks the fixture package with full
// syntax and type info, ready for analysis.
func (l *loader) loadTarget(pkgPath string) (*lint.Package, error) {
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(pkgPath))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %v", err)
	}
	return &lint.Package{
		ImportPath: pkgPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Import implements types.Importer over the two-tier resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		if l.inProgress[path] {
			return nil, fmt.Errorf("linttest: import cycle through %q", path)
		}
		l.inProgress[path] = true
		defer delete(l.inProgress, path)
		files, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("typecheck fixture dep %s: %v", path, err)
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	if _, ok := l.exports[path]; !ok {
		if err := l.goList(path); err != nil {
			return nil, err
		}
	}
	return l.exportImp.Import(path)
}

// goList records export-data locations for path and its whole
// dependency cone.
func (l *loader) goList(path string) error {
	cmd := exec.Command("go", "list", "-export", "-json", "-deps", path)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("linttest: go list -export %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("linttest: parse go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}
