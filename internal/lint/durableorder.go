package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// DurableOrder guards the durability write-ordering contract
// (DESIGN.md "Durability & crash-recovery contract"): a completed
// journal record on disk must always imply readable result bytes, so
// (a) result bytes are made durable — ResultCache.Put: temp file,
// fsync, rename — before the completed record is appended, and (b) no
// Sync/Close/Rename/Write error on a journal or result path may be
// silently dropped, because an unobserved failed fsync is
// indistinguishable from durability.
//
// Both checks are conservative and syntactic, scoped to
// internal/durable, and annotatable with //lint:allow durableorder for
// the few legitimate best-effort sites (e.g. Close on an
// already-failing error path).
var DurableOrder = &Analyzer{
	Name: "durableorder",
	Doc: "in internal/durable, flags ignored Sync/Close/Rename/Write/Truncate " +
		"errors and completed-record appends not preceded by a result-durability " +
		"Put in the same function",
	Contract: `DESIGN.md "Durability & crash-recovery contract"`,
	Run:      runDurableOrder,
}

// durableCriticalMethods are the operations whose failure means bytes
// may not be durable (or a descriptor leaked mid-protocol).
var durableCriticalMethods = map[string]bool{
	"Sync":        true,
	"Close":       true,
	"Rename":      true,
	"Write":       true,
	"WriteString": true,
	"Truncate":    true,
}

func runDurableOrder(pass *Pass) error {
	if !hasPathSuffix(pass.Pkg.Path(), "internal/durable") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkIgnoredError(pass, n.X)
			case *ast.DeferStmt:
				checkIgnoredError(pass, n.Call)
			case *ast.GoStmt:
				checkIgnoredError(pass, n.Call)
			case *ast.AssignStmt:
				if allBlank(n.Lhs) && len(n.Rhs) == 1 {
					checkIgnoredError(pass, n.Rhs[0])
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkCompletedOrder(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkIgnoredError flags a statement that discards the error result
// of a durability-critical call.
func checkIgnoredError(pass *Pass, expr ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !durableCriticalMethods[fn.Name()] {
		return
	}
	if !returnsError(fn) {
		return
	}
	pass.Reportf(call.Pos(), "%s error ignored on a durability path; an unobserved failure here breaks the completed-implies-readable invariant — handle it or annotate with //lint:allow durableorder <reason>", fn.Name())
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// allBlank reports whether every assignment target is the blank
// identifier (i.e. the statement exists to discard results).
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// checkCompletedOrder enforces, per function, that an append of a
// completed journal record is dominated (conservatively: preceded in
// source order) by a result-durability call — a method named Put. The
// real sequence lives in Store.Completed: cache.Put(key, result)
// first, journal.Append(Record{Op: OpCompleted}) second.
func checkCompletedOrder(pass *Pass, fn *ast.FuncDecl) {
	putSeen := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		switch {
		case callee.Name() == "Put":
			putSeen = true
		case callee.Name() == "Append" && hasCompletedRecordArg(pass, call):
			if !putSeen {
				pass.Reportf(call.Pos(), "completed record appended before any result-durability Put in %s; result bytes must be durable before the completed record (completed-implies-readable), or annotate with //lint:allow durableorder <reason>", fn.Name.Name)
			}
		}
		return true
	})
}

// hasCompletedRecordArg reports whether any argument is a composite
// literal whose Op field has the constant value "completed" (whether
// written as OpCompleted or as a raw string).
func hasCompletedRecordArg(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Op" {
				continue
			}
			if tv, ok := pass.Info.Types[kv.Value]; ok && tv.Value != nil &&
				tv.Value.Kind() == constant.String && constant.StringVal(tv.Value) == "completed" {
				return true
			}
		}
	}
	return false
}
