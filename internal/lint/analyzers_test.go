package lint_test

import (
	"testing"

	"plurality/internal/lint"
	"plurality/internal/lint/linttest"
)

// Each fixture package carries positive cases (// want lines that fail
// if the analyzer misses them), negative cases (clean shapes that fail
// the run if flagged), and a //lint:allow suppression case (which
// fails if the diagnostic either disappears or survives suppression).

func TestDetMapRange(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetMapRange, "detmaprange/internal/core")
}

func TestNoRawEntropy(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRawEntropy, "norawentropy/internal/sim")
}

// The determinism analyzers also scope the replicated cluster layer:
// ledger folds must be identical on every node, so map-order
// nondeterminism and clock reads are banned there like in the kernel.

func TestDetMapRangeClusterScope(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetMapRange, "detmaprange/internal/cluster")
}

func TestNoRawEntropyClusterScope(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRawEntropy, "norawentropy/internal/cluster")
}

func TestRNGPurityImportBan(t *testing.T) {
	linttest.Run(t, "testdata", lint.RNGPurity, "rngpurity/internal/stop")
}

func TestRNGPurityHooks(t *testing.T) {
	linttest.Run(t, "testdata", lint.RNGPurity, "rngpurity/internal/core")
}

func TestDurableOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.DurableOrder, "durableorder/internal/durable")
}

func TestGammaFloat(t *testing.T) {
	linttest.Run(t, "testdata", lint.GammaFloat, "gammafloat/internal/population")
}

// TestScoping pins the suffix-based package scoping: a kernel-only
// analyzer must stay silent outside its scope even on flaggable code.
func TestScoping(t *testing.T) {
	for _, tc := range []struct {
		path   string
		kernel bool
	}{
		{"plurality/internal/core", true},
		{"plurality/internal/rng", true},
		{"plurality/internal/sim", true},
		{"plurality/internal/population", true},
		{"plurality/internal/async", true},
		{"plurality/internal/graph", true},
		{"plurality/internal/gossip", true},
		{"detmaprange/internal/core", true},
		{"plurality/internal/service", false},
		{"plurality/internal/durable", false},
		{"plurality", false},
		{"internal/corex", false},
		{"myinternal/core", false},
	} {
		if got := lint.IsKernelPkg(tc.path); got != tc.kernel {
			t.Errorf("IsKernelPkg(%q) = %v, want %v", tc.path, got, tc.kernel)
		}
	}

	// The determinism scope is the kernel plus internal/cluster —
	// cluster is not a kernel package (gammafloat must stay out) but the
	// determinism analyzers cover it.
	for _, tc := range []struct {
		path   string
		scoped bool
	}{
		{"plurality/internal/cluster", true},
		{"norawentropy/internal/cluster", true},
		{"plurality/internal/core", true},
		{"plurality/internal/service", false},
		{"internal/clusterx", false},
	} {
		if got := lint.IsDeterminismScopedPkg(tc.path); got != tc.scoped {
			t.Errorf("IsDeterminismScopedPkg(%q) = %v, want %v", tc.path, got, tc.scoped)
		}
	}
	if lint.IsKernelPkg("plurality/internal/cluster") {
		t.Error("internal/cluster must not scope as a kernel package")
	}
}
