// Fixture for rngpurity's pure-by-construction rule: a package whose
// import path ends in internal/stop may not import any randomness
// source at all.
package stop

import (
	"math/rand" // want `internal/stop must stay RNG-free by construction`

	"rngpurity/internal/rng" // want `internal/stop must stay RNG-free by construction`
)

// Spec is a minimal stop-condition shape.
type Spec struct{ AfterRounds int64 }

// Done keeps the banned imports in use; the imports themselves carry
// the diagnostics.
func (s Spec) Done(round int64) bool {
	_ = rand.Int
	_ = rng.New
	return s.AfterRounds > 0 && round >= s.AfterRounds
}
