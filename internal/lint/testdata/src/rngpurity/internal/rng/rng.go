// Fixture stand-in for the real internal/rng: the analyzer matches on
// the import-path suffix, so this stub exercises the draw-detection
// rules without depending on the real module.
package rng

// Rand is a stub stream; every method models a state-mutating draw.
type Rand struct{ s uint64 }

// New derives a fresh stream from a seed; it consumes nothing.
func New(seed uint64) *Rand { return &Rand{s: seed} }

// DeriveSeed is pure seed arithmetic; it consumes nothing.
func DeriveSeed(base, index uint64) uint64 { return base ^ index<<1 }

// Uint64 is a draw.
func (r *Rand) Uint64() uint64 { r.s++; return r.s }

// Float64 is a draw.
func (r *Rand) Float64() float64 { return float64(r.Uint64() % 1000) }

// Intn is a draw.
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// MultinomialDense consumes the stream it is handed: a draw.
func MultinomialDense(r *Rand, out []int64) {
	for i := range out {
		out[i] = int64(r.Uint64())
	}
}
