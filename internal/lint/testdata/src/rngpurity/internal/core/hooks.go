// Fixture for rngpurity's hook-purity rule: functions bound to
// observer/stop hook slots must not reach an RNG draw through any
// chain of same-package calls.
package core

import "rngpurity/internal/rng"

// RunConfig mirrors the engine config surface: Observer is the
// draw-free round hook, PostRound is the adversary hook that may draw.
type RunConfig struct {
	Observer  func(round int) bool
	PostRound func(r *rng.Rand)
}

// Run stands in for the engine entry point.
func Run(r *rng.Rand, cfg RunConfig) {
	for round := 0; round < 3; round++ {
		if cfg.PostRound != nil {
			cfg.PostRound(r)
		}
		if cfg.Observer != nil && cfg.Observer(round) {
			return
		}
	}
}

// runHooked stands in for the engines' hooked entry points; the
// parameter name "stop" marks the argument as a hook body.
func runHooked(maxRounds int, stop func(round int) bool) {
	for round := 0; round < maxRounds; round++ {
		if stop != nil && stop(round) {
			return
		}
	}
}

// DirectDraw binds an observer that draws directly: flagged.
func DirectDraw(r *rng.Rand) RunConfig {
	return RunConfig{
		Observer: func(round int) bool { // want `bound to Observer field can reach RNG draw`
			return r.Float64() < 0.5
		},
	}
}

// impure reaches a draw one call deep.
func impure(r *rng.Rand) bool { return r.Intn(2) == 0 }

// TransitiveDraw binds an observer that draws through a same-package
// helper: flagged.
func TransitiveDraw(r *rng.Rand) {
	var cfg RunConfig
	cfg.Observer = func(round int) bool { return impure(r) } // want `bound to Observer field can reach RNG draw`
	Run(r, cfg)
}

// StreamArgDraw binds a stop hook that hands the stream to a package
// function: flagged.
func StreamArgDraw(r *rng.Rand) {
	out := make([]int64, 4)
	runHooked(100, func(round int) bool { // want `bound to stop parameter of runHooked can reach RNG draw`
		rng.MultinomialDense(r, out)
		return false
	})
}

// pureObserver reads state only.
func pureObserver(counts []int64) func(round int) bool {
	return func(round int) bool { return len(counts) == 0 }
}

// CleanObserver binds a draw-free closure through a factory: clean.
func CleanObserver(r *rng.Rand, counts []int64) {
	Run(r, RunConfig{Observer: pureObserver(counts)})
}

// SeedArithmetic derives seeds and forks nothing: rng.DeriveSeed and
// rng.New take no stream, so a hook may call them.
func SeedArithmetic(r *rng.Rand) {
	runHooked(10, func(round int) bool {
		return rng.DeriveSeed(7, uint64(round))%2 == 0
	})
	Run(r, RunConfig{})
}

// Adversary binds the PostRound hook, which legitimately draws: clean
// (PostRound consumes the engine stream by design; only Observer-like
// slots are frozen).
func Adversary(r *rng.Rand) RunConfig {
	return RunConfig{PostRound: func(rr *rng.Rand) { rr.Uint64() }}
}

// Waived suppresses a deliberate diagnostic-only draw with a reason.
func Waived(r *rng.Rand) RunConfig {
	return RunConfig{
		//lint:allow rngpurity diagnostic-only draw on a dedicated side stream
		Observer: func(round int) bool { return r.Float64() < 0.5 },
	}
}
