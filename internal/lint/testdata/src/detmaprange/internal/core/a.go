// Fixture for the detmaprange analyzer: its import path ends in
// internal/core, so the suite treats it as a deterministic-kernel
// package.
package core

import (
	"maps"
	"slices"
)

// SumMap ranges a map directly: flagged.
func SumMap(m map[int]float64) float64 {
	var sum float64
	for _, w := range m { // want `range over map m iterates in nondeterministic order`
		sum += w
	}
	return sum
}

// SumSlice ranges a slice: deterministic, clean.
func SumSlice(ws []float64) float64 {
	var sum float64
	for _, w := range ws {
		sum += w
	}
	return sum
}

// UnsortedKeys iterates maps.Keys without imposing an order: flagged.
func UnsortedKeys(m map[int]int) int {
	last := 0
	for k := range maps.Keys(m) { // want `maps.Keys iterates the map in nondeterministic order`
		last = k
	}
	return last
}

// SortedKeys launders the sequence through slices.Sorted first: clean.
func SortedKeys(m map[int]int) []int {
	return slices.Sorted(maps.Keys(m))
}

// UnsortedValues is the Values variant: flagged.
func UnsortedValues(m map[int]int) int {
	total := 0
	for v := range maps.Values(m) { // want `maps.Values iterates the map in nondeterministic order`
		total += v
	}
	return total
}

// Allowed documents an order-independent use and suppresses the
// diagnostic.
func Allowed(m map[int]bool) int {
	n := 0
	//lint:allow detmaprange membership count is order-independent
	for range m {
		n++
	}
	return n
}
