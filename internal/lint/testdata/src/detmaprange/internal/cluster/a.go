// Fixture for detmaprange's extended scope: the import path ends in
// internal/cluster — not a kernel package, but determinism-scoped
// because the replicated ledger must fold identically on every node.
package cluster

import (
	"maps"
	"slices"
)

// Peers ranges a map bare: flagged — replicas folding this order into
// state would diverge.
func Peers(addrs map[string]string) []string {
	var ids []string
	for id := range addrs { // want `range over map addrs iterates in nondeterministic order`
		ids = append(ids, id)
	}
	return ids
}

// SortedPeers imposes a total order before anything observes the
// sequence: clean.
func SortedPeers(addrs map[string]string) []string {
	return slices.Sorted(maps.Keys(addrs))
}

// BareKeys hands out an unsorted key sequence: flagged.
func BareKeys(addrs map[string]string) []string {
	return slices.Collect(maps.Keys(addrs)) // want `maps.Keys iterates the map in nondeterministic order`
}
