// Fixture for the durableorder analyzer: the import path ends in
// internal/durable, so ignored durability errors and misordered
// completed-record appends are flagged.
package durable

// Record mirrors the journal record shape the analyzer keys on.
type Record struct {
	Op  string
	Key string
}

// OpCompleted is the completion marker; the analyzer matches the
// constant's value, not its name.
const OpCompleted = "completed"

type file struct{}

func (file) Sync() error                 { return nil }
func (file) Close() error                { return nil }
func (file) Write(b []byte) (int, error) { return len(b), nil }
func (file) Name() string                { return "" }

type journal struct{ f file }

func (j *journal) Append(rec Record) error { return nil }

type cache struct{}

func (cache) Put(key string, data []byte) error { return nil }

// IgnoredErrors drops durability-critical errors three ways: all
// flagged.
func IgnoredErrors(f file) {
	f.Sync()        // want `Sync error ignored on a durability path`
	_ = f.Close()   // want `Close error ignored on a durability path`
	defer f.Close() // want `Close error ignored on a durability path`
}

// HandledErrors propagates them: clean. Name returns no error, so
// ignoring its result is fine.
func HandledErrors(f file) error {
	if err := f.Sync(); err != nil {
		return err
	}
	_ = f.Name()
	return f.Close()
}

// CompletedBeforePut journals completion before the result bytes are
// durable: flagged.
func CompletedBeforePut(j *journal, c cache, key string, result []byte) error {
	if err := j.Append(Record{Op: OpCompleted, Key: key}); err != nil { // want `completed record appended before any result-durability Put`
		return err
	}
	return c.Put(key, result)
}

// PutThenCompleted is the contract order: clean.
func PutThenCompleted(j *journal, c cache, key string, result []byte) error {
	if err := c.Put(key, result); err != nil {
		return err
	}
	return j.Append(Record{Op: OpCompleted, Key: key})
}

// RawStringOp matches by constant value, not spelling: flagged.
func RawStringOp(j *journal, key string) error {
	return j.Append(Record{Op: "completed", Key: key}) // want `completed record appended before any result-durability Put`
}

// OtherOps are not completion records: clean.
func OtherOps(j *journal, key string) error {
	return j.Append(Record{Op: "started", Key: key})
}

// Waived documents a best-effort cleanup close.
func Waived(f file) {
	//lint:allow durableorder fd abandoned on an already-failing path
	f.Close()
}
