// Fixture for the gammafloat analyzer: the import path ends in
// internal/population, a deterministic-kernel package, so
// variable-order floating-point reductions are flagged.
package population

// SumMap accumulates a float across a map range: flagged.
func SumMap(m map[int]float64) float64 {
	var sum float64
	for _, w := range m {
		sum += w // want `floating-point accumulation into sum inside a range over a map`
	}
	return sum
}

// SumSlice accumulates in slice order: deterministic, clean.
func SumSlice(ws []float64) float64 {
	var sum float64
	for _, w := range ws {
		sum += w
	}
	return sum
}

// CountMap accumulates an integer: associative, clean.
func CountMap(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// LocalScratch resets a loop-local float every iteration: its value
// never leaves an iteration, clean.
func LocalScratch(m map[int][]float64) int {
	hits := 0
	for _, ws := range m { // iteration order irrelevant to an int count
		rowSum := 0.0
		for _, w := range ws {
			rowSum += w
		}
		if rowSum > 1 {
			hits++
		}
	}
	return hits
}

// SharedGoroutineSum races goroutine-ordered additions into one
// accumulator: flagged.
func SharedGoroutineSum(parts [][]float64) float64 {
	var total float64
	done := make(chan struct{})
	for _, part := range parts {
		go func() {
			for _, w := range part {
				total += w // want `floating-point accumulation into total inside a goroutine body`
			}
			done <- struct{}{}
		}()
	}
	for range parts {
		<-done
	}
	return total
}

// ShardedSum stores per-shard partials and merges them in index
// order afterwards — the deterministic fan-out pattern: clean.
func ShardedSum(parts [][]float64) float64 {
	partial := make([]float64, len(parts))
	done := make(chan struct{})
	for i := range parts {
		go func() {
			for _, w := range parts[i] {
				partial[i] += w
			}
			done <- struct{}{}
		}()
	}
	for range parts {
		<-done
	}
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// Waived documents an aggregate that never reaches a result.
func Waived(m map[int]float64) float64 {
	var sum float64
	for _, w := range m {
		//lint:allow gammafloat diagnostic-only aggregate, never part of a result
		sum += w
	}
	return sum
}
