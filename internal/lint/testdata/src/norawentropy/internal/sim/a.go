// Fixture for the norawentropy analyzer: the import path ends in
// internal/sim, a deterministic-kernel package, so ambient entropy is
// forbidden.
package sim

import (
	crand "crypto/rand" // want `import of crypto/rand in a deterministic-kernel package`
	"math/rand"         // want `import of math/rand in a deterministic-kernel package`
	"os"
	"time"
)

// Jitter draws from the global math/rand stream (the import line
// carries the diagnostic).
func Jitter() float64 { return rand.Float64() }

// Entropy keeps the crypto/rand import in use.
var Entropy = crand.Reader

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `call to time.Now in a deterministic-kernel package`
}

// Elapsed reads the wall clock through Since: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time.Since in a deterministic-kernel package`
}

// PID reads process identity: flagged.
func PID() int {
	return os.Getpid() // want `call to os.Getpid in a deterministic-kernel package`
}

// Tick is a duration constant: the time package itself is fine, only
// ambient reads are entropy.
const Tick = 10 * time.Millisecond

// LogStamp is waived: the timestamp decorates operator logs and never
// reaches a result.
func LogStamp() int64 {
	//lint:allow norawentropy wall-clock used only for operator logging
	return time.Now().Unix()
}
