// Fixture for norawentropy's extended scope: the import path ends in
// internal/cluster — determinism-scoped, so ambient entropy is banned.
// Election jitter must hash (id, term), never sample the clock.
package cluster

import (
	"time"
)

// JitterTicks reads the wall clock for election jitter: flagged.
func JitterTicks() int {
	return int(time.Now().UnixNano() % 7) // want `call to time.Now in a deterministic-kernel package`
}

// Tick is a duration constant; timers and tickers measure real time
// without folding it into replicated state, so the time package itself
// stays importable.
const Tick = 150 * time.Millisecond

// After is the legitimate use: waiting, not deciding.
func After() <-chan time.Time { return time.After(Tick) }
