package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// RNGPurity guards the stop/trace/observer RNG-independence contract
// (DESIGN.md "Stop conditions and RNG independence"): a stopped or
// traced run must be the byte-exact prefix of the full run of the same
// seed, which holds only because condition evaluation, trace sampling
// and observer hooks never consume a draw from an engine's RNG stream.
// The analyzer enforces it two ways:
//
//   - internal/stop and internal/trace are pure by construction: they
//     may not import internal/rng, math/rand or crypto/rand at all;
//   - any function bound to an observer/hook slot (an Observer struct
//     field, or an argument for a func parameter named stop, observer,
//     hook or onRound) must not reach an RNG draw through any chain of
//     same-package calls.
//
// The reachability check is intra-package: calls into other packages
// (except internal/rng and math/rand, which are draws by definition)
// are assumed pure, because those packages are themselves under this
// analyzer when convet runs over ./... .
var RNGPurity = &Analyzer{
	Name: "rngpurity",
	Doc: "forbids internal/rng (and math/rand) imports in internal/stop and " +
		"internal/trace, and flags observer/stop/trace hook functions that can " +
		"reach an RNG draw — stopped runs must be byte-exact prefixes",
	Contract: `DESIGN.md "Stop conditions and RNG independence"`,
	Run:      runRNGPurity,
}

// pureOnlySuffixes are the packages that must stay RNG-free wholesale.
var pureOnlySuffixes = []string{"internal/stop", "internal/trace"}

// hookParamNames are the parameter names the engines use for round
// hooks; a func-typed argument bound to one is a hook body.
var hookParamNames = map[string]bool{
	"stop":     true,
	"observer": true,
	"hook":     true,
	"onRound":  true,
}

// hookFieldNames are the struct fields the engines call between
// rounds; a func assigned to one is a hook body.
var hookFieldNames = map[string]bool{
	"Observer": true,
}

func runRNGPurity(pass *Pass) error {
	for _, s := range pureOnlySuffixes {
		if hasPathSuffix(pass.Pkg.Path(), s) {
			banRNGImports(pass, s)
			break
		}
	}

	pc := newPurityChecker(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && hookFieldNames[key.Name] {
						pc.checkBind(kv.Value, key.Name+" field")
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !hookFieldNames[sel.Sel.Name] || i >= len(n.Rhs) {
						continue
					}
					pc.checkBind(n.Rhs[i], sel.Sel.Name+" field")
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range n.Args {
					if i >= sig.Params().Len() {
						break // variadic tail can't be a named hook param
					}
					param := sig.Params().At(i)
					if !hookParamNames[param.Name()] {
						continue
					}
					if _, isFunc := param.Type().Underlying().(*types.Signature); !isFunc {
						continue
					}
					pc.checkBind(arg, param.Name()+" parameter of "+fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// banRNGImports reports every randomness import in a pure-only
// package.
func banRNGImports(pass *Pass, scope string) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case isRNGPkg(path), path == "math/rand", path == "math/rand/v2", path == "crypto/rand":
				pass.Reportf(imp.Pos(), "%s must stay RNG-free by construction (stopped runs are byte-exact prefixes); it cannot import %s", scope, path)
			}
		}
	}
}

// purityChecker computes, with memoization, whether a function can
// reach an RNG draw through same-package calls.
type purityChecker struct {
	pass *Pass
	// decls maps package-level functions and methods to their bodies.
	decls map[*types.Func]*ast.FuncDecl
	// funcVars maps variables to the single func literal assigned to
	// them, when the binding is that simple (x := func() {...}).
	funcVars map[types.Object]*ast.FuncLit
	// memo caches per-declaration results; keyed by decl so literals
	// (checked at their bind site) never collide.
	memo map[*ast.FuncDecl]purityResult
	// reported de-duplicates bind-site reports.
	reported map[token.Pos]bool
}

type purityResult struct {
	resolved bool
	drawPos  token.Pos
	drawDesc string
}

func newPurityChecker(pass *Pass) *purityChecker {
	pc := &purityChecker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		funcVars: make(map[types.Object]*ast.FuncLit),
		memo:     make(map[*ast.FuncDecl]purityResult),
		reported: make(map[token.Pos]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					pc.decls[obj] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit)
					if !ok {
						continue
					}
					if obj := pass.Info.ObjectOf(id); obj != nil {
						pc.funcVars[obj] = lit
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i >= len(n.Values) {
						break
					}
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
						if obj := pass.Info.ObjectOf(name); obj != nil {
							pc.funcVars[obj] = lit
						}
					}
				}
			}
			return true
		})
	}
	return pc
}

// checkBind resolves the expression bound to a hook slot and reports
// at the bind site if any resolved function can reach a draw.
func (pc *purityChecker) checkBind(expr ast.Expr, slot string) {
	if pc.reported[expr.Pos()] {
		return
	}
	for _, body := range pc.resolveFuncs(expr) {
		if res := pc.walkBody(body, make(map[*ast.FuncDecl]bool)); res.drawPos.IsValid() {
			pc.reported[expr.Pos()] = true
			pc.pass.Reportf(expr.Pos(), "function bound to %s can reach RNG draw %s (at %s); stop/trace/observer hooks must never consume RNG draws — stopped runs are byte-exact prefixes", slot, res.drawDesc, pc.pass.Fset.Position(res.drawPos))
			return
		}
	}
}

// resolveFuncs maps a bound expression to the function bodies it can
// denote: a literal, a named same-package function, a variable holding
// a literal, or a call to a same-package closure factory (whose body,
// including the returned literal, stands in for the closure).
func (pc *purityChecker) resolveFuncs(expr ast.Expr) []ast.Node {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return []ast.Node{e.Body}
	case *ast.Ident:
		if lit, ok := pc.funcVars[pc.pass.Info.ObjectOf(e)]; ok {
			return []ast.Node{lit.Body}
		}
		if fn, ok := pc.pass.Info.Uses[e].(*types.Func); ok {
			if decl := pc.decls[fn]; decl != nil {
				return []ast.Node{decl.Body}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pc.pass.Info.Uses[e.Sel].(*types.Func); ok {
			if decl := pc.decls[fn]; decl != nil {
				return []ast.Node{decl.Body}
			}
		}
	case *ast.CallExpr:
		if fn := calleeFunc(pc.pass.Info, e); fn != nil {
			if decl := pc.decls[fn]; decl != nil {
				return []ast.Node{decl.Body}
			}
		}
	}
	return nil
}

// walkBody scans a function body for RNG draws, following
// same-package calls; active guards the recursion against cycles.
func (pc *purityChecker) walkBody(body ast.Node, active map[*ast.FuncDecl]bool) purityResult {
	var res purityResult
	ast.Inspect(body, func(n ast.Node) bool {
		if res.drawPos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pc.pass.Info, call)
		if fn == nil {
			return true
		}
		if desc, draw := describeDraw(fn); draw {
			res = purityResult{resolved: true, drawPos: call.Pos(), drawDesc: desc}
			return false
		}
		if fn.Pkg() == pc.pass.Pkg {
			if decl := pc.decls[fn]; decl != nil && !active[decl] {
				if cached, ok := pc.memo[decl]; ok {
					if cached.drawPos.IsValid() {
						res = cached
						return false
					}
					return true
				}
				active[decl] = true
				inner := pc.walkBody(decl.Body, active)
				delete(active, decl)
				pc.memo[decl] = inner
				if inner.drawPos.IsValid() {
					res = inner
					return false
				}
			}
		}
		return true
	})
	return res
}

// describeDraw reports whether calling fn consumes randomness: any
// math/rand function, any method on internal/rng types, or any
// internal/rng function handed a *rng.Rand stream. Pure seed
// derivation (rng.DeriveSeed, rng.New from a constant seed) takes no
// stream argument and is allowed — creating an independent stream
// never perturbs the engine's.
func describeDraw(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	path := pkg.Path()
	if path == "math/rand" || path == "math/rand/v2" {
		return path + "." + fn.Name(), true
	}
	if !isRNGPkg(path) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		return "(" + types.TypeString(recv.Type(), nil) + ")." + fn.Name(), true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && isRNGPkg(named.Obj().Pkg().Path()) {
			return path + "." + fn.Name() + " (consumes a stream argument)", true
		}
	}
	return "", false
}
