package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseOne wraps a source string into the minimal Package the
// suppression layer reads (no type info needed).
func parseOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{ImportPath: "fixture", Fset: fset, Files: []*ast.File{f}}
}

func TestCollectAllowsMalformed(t *testing.T) {
	pkg := parseOne(t, `package p

//lint:allow
func A() {}

//lint:allow nosuchanalyzer because reasons
func B() {}

//lint:allow detmaprange
func C() {}

//lint:allow detmaprange a perfectly good reason
func D() {}
`)
	allows, malformed := CollectAllows([]*Package{pkg}, All)
	if len(allows) != 1 {
		t.Fatalf("want 1 valid allow, got %d", len(allows))
	}
	if allows[0].Reason != "a perfectly good reason" {
		t.Errorf("reason = %q", allows[0].Reason)
	}
	if len(malformed) != 3 {
		t.Fatalf("want 3 malformed directives, got %d: %v", len(malformed), malformed)
	}
	for _, d := range malformed {
		if d.Analyzer != "allowdirective" {
			t.Errorf("malformed directive attributed to %q", d.Analyzer)
		}
	}
	wantMsgs := []string{"needs an analyzer name", "unknown analyzer", "needs a reason"}
	for i, m := range wantMsgs {
		if !strings.Contains(malformed[i].Message, m) {
			t.Errorf("malformed[%d] = %q, want substring %q", i, malformed[i].Message, m)
		}
	}
}

func TestApplySuppressionsAdjacency(t *testing.T) {
	mk := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "fixture.go", Line: line}, Analyzer: analyzer, Message: "m"}
	}
	allow := &Allow{Pos: token.Position{Filename: "fixture.go", Line: 10}, Analyzer: "detmaprange", Reason: "r"}
	diags := []Diagnostic{
		mk(10, "detmaprange"), // same line: suppressed
		mk(11, "detmaprange"), // line below: suppressed
		mk(12, "detmaprange"), // two below: kept
		mk(10, "gammafloat"),  // same line, other analyzer: kept
	}
	kept, suppressed := ApplySuppressions(diags, []*Allow{allow})
	if len(suppressed) != 2 || len(kept) != 2 {
		t.Fatalf("kept %d suppressed %d, want 2 and 2", len(kept), len(suppressed))
	}
	if !allow.Used {
		t.Error("allow should be marked used")
	}
	unused := UnusedAllows([]*Allow{allow, {Analyzer: "rngpurity"}})
	if len(unused) != 1 || unused[0].Analyzer != "rngpurity" {
		t.Errorf("unused = %+v", unused)
	}
}

func TestSortDiagnosticsOrder(t *testing.T) {
	d := []Diagnostic{
		{Pos: token.Position{Filename: "b.go", Line: 1}},
		{Pos: token.Position{Filename: "a.go", Line: 9, Column: 2}, Analyzer: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 9, Column: 2}, Analyzer: "a"},
		{Pos: token.Position{Filename: "a.go", Line: 3}},
	}
	SortDiagnostics(d)
	if d[0].Pos.Line != 3 || d[1].Analyzer != "a" || d[2].Analyzer != "z" || d[3].Pos.Filename != "b.go" {
		t.Errorf("order = %+v", d)
	}
}
