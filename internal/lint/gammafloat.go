package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GammaFloat guards the floating-point half of the byte-identity
// contract (DESIGN.md "Determinism & the cache key"): the kernel's
// incremental aggregates — Γ = Σ α(i)², Σc², Σα³ — are reductions
// whose bit pattern depends on summation order, because float addition
// does not reassociate. A reduction is deterministic only when its
// iteration order is: accumulating over a map range (order randomized
// per run) or from goroutine bodies (order set by the scheduler)
// yields answers that differ in the low bits run to run, which the
// byte-identity equivalence matrix then reports as corruption.
var GammaFloat = &Analyzer{
	Name: "gammafloat",
	Doc: "flags floating-point accumulation in variable-order contexts (range " +
		"over a map, goroutine bodies) in the deterministic-kernel packages, " +
		"where reassociation breaks byte-identical aggregates",
	Contract: `DESIGN.md "Determinism & the cache key"`,
	Run:      runGammaFloat,
}

func runGammaFloat(pass *Pass) error {
	if !IsKernelPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil && isMapType(t) {
					checkFloatAccum(pass, n.Body, n.Body.Pos(), n.Body.End(),
						"inside a range over a map (per-run iteration order)", false)
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					// Indexed stores are exempt here: a per-shard
					// partial[i] += x with an ordered merge afterwards is
					// exactly the deterministic fan-out pattern the sharded
					// graph rounds use.
					checkFloatAccum(pass, lit.Body, lit.Body.Pos(), lit.Body.End(),
						"inside a goroutine body (scheduler-ordered)", true)
				}
			}
			return true
		})
	}
	return nil
}

// checkFloatAccum reports compound float accumulation into variables
// that outlive the variable-order region [lo, hi) — the shape of a
// reduction whose result depends on visit order.
func checkFloatAccum(pass *Pass, body ast.Node, lo, hi token.Pos, context string, indexedOK bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if assign.Tok != token.ADD_ASSIGN && assign.Tok != token.SUB_ASSIGN &&
			assign.Tok != token.MUL_ASSIGN && assign.Tok != token.QUO_ASSIGN {
			return true
		}
		for _, lhs := range assign.Lhs {
			if !isFloatExpr(pass.Info, lhs) {
				continue
			}
			if indexedOK {
				if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					continue
				}
			}
			if !escapesRegion(pass, lhs, lo, hi) {
				continue
			}
			pass.Reportf(assign.Pos(), "floating-point accumulation into %s %s reassociates the reduction and breaks byte-identical aggregates; accumulate in deterministic index order and merge ordered partials", types.ExprString(lhs), context)
		}
		return true
	})
}

// isFloatExpr reports whether the expression has floating-point (or
// complex) type.
func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// escapesRegion reports whether the accumulation target outlives the
// variable-order region: an identifier declared before the region, or
// any field/element of a structure (which can always be observed from
// outside). Loop-local scratch floats are fine — their final value
// never leaves an iteration.
func escapesRegion(pass *Pass, lhs ast.Expr, lo, hi token.Pos) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		return obj.Pos() < lo || obj.Pos() >= hi
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
