package lint

import (
	"go/ast"
	"go/types"
)

// DetMapRange guards the byte-identity contract (DESIGN.md
// "Determinism & the cache key"): trial results must be identical
// across parallelism, batch width, and resume, which a map-ordered
// loop in the kernel silently breaks — Go randomizes map iteration
// order per execution, so any result, RNG draw, or float accumulation
// ordered by such a loop differs run to run.
var DetMapRange = &Analyzer{
	Name: "detmaprange",
	Doc: "flags range-over-map (and unsorted maps.Keys/Values/All) in the " +
		"deterministic-kernel packages and the replicated cluster layer, " +
		"where iteration-order nondeterminism breaks byte-identical trial " +
		"results (or diverges replica state)",
	Contract: `DESIGN.md "Determinism & the cache key"`,
	Run:      runDetMapRange,
}

func runDetMapRange(pass *Pass) error {
	if !IsDeterminismScopedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		// Calls like slices.Sorted(maps.Keys(m)) impose a total order
		// before anything observes the sequence; collect the inner
		// calls they launder so only bare uses are flagged.
		sorted := make(map[*ast.CallExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "slices" && sortingFuncs[fn.Name()] {
				for _, arg := range call.Args {
					if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
						sorted[inner] = true
					}
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil && isMapType(t) {
					pass.Reportf(n.Pos(), "range over map %s iterates in nondeterministic order inside a deterministic-kernel package; iterate a sorted key slice instead", types.ExprString(n.X))
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
					return true
				}
				if name := fn.Name(); mapSeqFuncs[name] && !sorted[n] {
					pass.Reportf(n.Pos(), "maps.%s iterates the map in nondeterministic order inside a deterministic-kernel package; wrap in slices.Sorted (or sort the result) before iterating", name)
				}
			}
			return true
		})
	}
	return nil
}

var sortingFuncs = map[string]bool{
	"Sorted":           true,
	"SortedFunc":       true,
	"SortedStableFunc": true,
}

var mapSeqFuncs = map[string]bool{
	"Keys":   true,
	"Values": true,
	"All":    true,
}

// isMapType reports whether t is (an alias of) a map type.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}
