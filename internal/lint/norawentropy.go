package lint

import (
	"go/ast"
	"strconv"
)

// NoRawEntropy guards the frozen RNG-stream contract (DESIGN.md "Seed
// & stream contract"): every random draw in the kernel must come from
// an internal/rng stream derived via rng.DeriveSeed(Seed, trial), so
// the same (seed, trial) always replays the same bytes on any machine.
// Ambient entropy — global math/rand state, crypto/rand, wall-clock
// reads, process identity — is invisible to the seed contract and
// breaks cross-machine and cross-run reproducibility.
var NoRawEntropy = &Analyzer{
	Name: "norawentropy",
	Doc: "forbids math/rand, crypto/rand, time.Now and process-identity " +
		"entropy in the deterministic-kernel packages and the replicated " +
		"cluster layer; all randomness must flow through internal/rng " +
		"seeded streams (the cluster's election jitter hashes id/term)",
	Contract: `DESIGN.md "Seed & stream contract"`,
	Run:      runNoRawEntropy,
}

// entropyImports are package imports that smuggle ambient entropy or
// nonreproducible sampling into the kernel.
var entropyImports = map[string]string{
	"math/rand":    "use internal/rng seeded streams (math/rand draws are not stable across Go releases)",
	"math/rand/v2": "use internal/rng seeded streams (math/rand/v2 draws are not seed-reproducible across platforms)",
	"crypto/rand":  "kernel randomness must be replayable; crypto/rand never is",
}

// entropyCalls are ambient-state reads that differ per run or per
// host, keyed by package path then function name.
var entropyCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time is per-run entropy",
		"Since": "wall-clock time is per-run entropy",
		"Until": "wall-clock time is per-run entropy",
	},
	"os": {
		"Getpid":   "process identity is per-run entropy",
		"Hostname": "host identity is per-machine entropy",
	},
}

func runNoRawEntropy(pass *Pass) error {
	if !IsDeterminismScopedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := entropyImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s in a deterministic-kernel package: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if why, ok := entropyCalls[fn.Pkg().Path()][fn.Name()]; ok {
				pass.Reportf(call.Pos(), "call to %s.%s in a deterministic-kernel package: %s", fn.Pkg().Path(), fn.Name(), why)
			}
			return true
		})
	}
	return nil
}
