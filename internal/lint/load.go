package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matching patterns (resolved in dir)
// and type-checks each from source, importing dependencies from gc
// export data — the same data `go vet` drivers consume. It shells out
// once to `go list -export -json -deps`, so the build cache both
// provides and bounds the work; a warm cache loads the whole module in
// a few seconds. Test files are not loaded: the contracts convet
// enforces are about shipped kernel/durable code, and tests
// legitimately do odd things (fault injection, entropy for fuzzing).
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parse go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, func(path string) (string, bool) {
		file, ok := exports[path]
		return file, ok
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportDataImporter returns a types.Importer that resolves import
// paths through gc export data files named by lookup (an import path →
// file path map, typically from `go list -export`).
func ExportDataImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewInfo returns a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
