package experiments

import (
	"math"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/tablefmt"
	"plurality/internal/theory"
)

// fig1Params returns (n, k grid, trials) for the scale.
func fig1Params(scale Scale) (int64, []int, int) {
	if scale == Full {
		ks := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
		return 250_000, ks, 9
	}
	ks := []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
	return 10_000, ks, 7
}

// runFig1 reproduces both panels of Figure 1: median consensus time
// versus k from the balanced configuration, for 3-Majority (which must
// saturate near k ≈ √n) and 2-Choices (which must keep growing ~k).
func runFig1(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n, ks, trials := fig1Params(opts.Scale)
	sqrtN := math.Sqrt(float64(n))
	logN := math.Log(float64(n))

	table := tablefmt.Table{
		Title: "Figure 1: consensus time vs k (balanced start)",
		Notes: "Paper: 3-Majority = Θ̃(min{k,√n}); 2-Choices = Θ̃(k). " +
			"Normalized columns divide the median time by the theorem shape; " +
			"they should stay O(1) across the sweep.",
		Columns: []string{
			"k", "k/√n",
			"T(3maj) med", "T(3maj)/shape",
			"T(2ch) med", "T(2ch)/shape",
			"ratio 2ch/3maj",
		},
	}

	med3 := make([]float64, 0, len(ks))
	med2 := make([]float64, 0, len(ks))
	for _, k := range ks {
		t3 := medianConsensusTime(core.ThreeMajority{}, n, k, trials, opts, 0)
		t2 := medianConsensusTime(core.TwoChoices{}, n, k, trials, opts, 1)
		med3 = append(med3, t3)
		med2 = append(med2, t2)
		shape3 := theory.ConsensusTimeShape(theory.ThreeMajority, float64(n), float64(k))
		shape2 := theory.ConsensusTimeShape(theory.TwoChoices, float64(n), float64(k))
		table.AddRow(
			k, float64(k)/sqrtN,
			t3, t3/shape3,
			t2, t2/shape2,
			t2/t3,
		)
	}

	// Headline shape comparison: growth of T between the two largest
	// k values, per dynamics. Past √n, 3-Majority should be nearly
	// flat (ratio ≈ 1) while 2-Choices keeps doubling (ratio ≈ 2).
	last := len(ks) - 1
	summary := tablefmt.Table{
		Title:   "Figure 1 summary: saturation behavior past k = √n",
		Columns: []string{"dynamics", "T(kmax)/T(kmax/2)", "expected"},
	}
	summary.AddRow("3-majority", med3[last]/med3[last-1], "≈1 (saturated, Θ̃(√n))")
	summary.AddRow("2-choices", med2[last]/med2[last-1], "≈2 (linear in k)")
	_ = logN
	return []tablefmt.Table{table, summary}
}

// medianConsensusTime runs trials of proto from Balanced(n, k) and
// returns the median consensus time in rounds.
func medianConsensusTime(proto core.Protocol, n int64, k, trials int, opts Options, salt uint64) float64 {
	results := sim.RunMany(sim.Spec{
		Protocol:    proto,
		Init:        func(int) *population.Vector { return population.Balanced(n, k) },
		Trials:      trials,
		Seed:        opts.Seed*1_000_003 + salt*7919 + uint64(k),
		Parallelism: opts.Parallelism,
	})
	times, err := sim.ConsensusTimes(results)
	if err != nil {
		// The default round bound makes non-convergence practically
		// impossible for these dynamics; surface loudly if it happens.
		panic(err)
	}
	return stats.Median(times)
}
