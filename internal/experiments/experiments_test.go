package experiments

import (
	"strconv"
	"strings"
	"testing"

	"plurality/internal/tablefmt"
)

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("quick"); err != nil || s != Quick {
		t.Fatalf("quick: %v %v", s, err)
	}
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Fatalf("full: %v %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	wantIDs := []string{
		"adv", "async", "bern", "fig1", "gossip", "graphs", "hmaj",
		"lem52", "lem55", "rem25", "table1",
		"thm11", "thm21", "thm22", "thm26", "thm27", "zoo",
	}
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
	for i, want := range wantIDs {
		if all[i].ID != want {
			t.Errorf("registry[%d] = %q, want %q (sorted)", i, all[i].ID, want)
		}
		if all[i].Title == "" || all[i].Artifact == "" || all[i].Run == nil {
			t.Errorf("experiment %q incompletely registered", all[i].ID)
		}
	}
	if _, ok := ByID("fig1"); !ok {
		t.Error("ByID(fig1) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

// runExperiment executes an experiment at Quick scale and applies
// basic shape checks to its tables.
func runExperiment(t *testing.T, id string) []tablefmt.Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tables := e.Run(Options{Scale: Quick, Seed: 1})
	if len(tables) == 0 {
		t.Fatalf("%s returned no tables", id)
	}
	for ti, tb := range tables {
		if tb.Title == "" || len(tb.Columns) == 0 {
			t.Fatalf("%s table %d missing title/columns", id, ti)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s table %d has no rows", id, ti)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("%s table %d row width %d != %d columns", id, ti, len(row), len(tb.Columns))
			}
		}
	}
	return tables
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestTable1AllInequalitiesHold(t *testing.T) {
	tables := runExperiment(t, "table1")
	for _, row := range tables[0].Rows {
		if ok := row[len(row)-1]; ok != "true" {
			t.Errorf("drift inequality failed: %v", row)
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	tables := runExperiment(t, "fig1")
	summary := tables[1]
	r3 := cellFloat(t, summary.Rows[0][1])
	r2 := cellFloat(t, summary.Rows[1][1])
	// 3-Majority saturates; 2-Choices keeps growing visibly faster.
	if r3 > 1.5 {
		t.Errorf("3-majority doubling ratio %v too large for saturation", r3)
	}
	if r2 <= r3 {
		t.Errorf("2-choices doubling ratio %v not above 3-majority's %v", r2, r3)
	}
	// Consensus times in the main table must increase between the
	// first and last k for 2-Choices.
	main := tables[0]
	first := cellFloat(t, main.Rows[0][4])
	last := cellFloat(t, main.Rows[len(main.Rows)-1][4])
	if last <= first {
		t.Errorf("2-choices time did not grow with k: %v to %v", first, last)
	}
}

func TestThm27LowerBound(t *testing.T) {
	tables := runExperiment(t, "thm27")
	for _, row := range tables[0].Rows {
		if row[4] != "true" {
			continue // outside the theorem's validity range for k
		}
		minTK := cellFloat(t, row[2])
		if minTK < 0.3 {
			t.Errorf("T/k = %v below constant for row %v (Ω(k) violated)", minTK, row)
		}
	}
}

func TestLem52Bounded(t *testing.T) {
	tables := runExperiment(t, "lem52")
	for _, row := range tables[0].Rows {
		norm := cellFloat(t, row[4])
		if norm > 10 {
			t.Errorf("vanish·γ0/ln n = %v not O(1): %v", norm, row)
		}
		if row[6] != "0" {
			t.Errorf("weak opinion won consensus: %v", row)
		}
	}
}

func TestLem55Bounded(t *testing.T) {
	tables := runExperiment(t, "lem55")
	for _, row := range tables[0].Rows {
		if norm := cellFloat(t, row[4]); norm > 10 {
			t.Errorf("τ_weak·γ0/ln n = %v not O(1): %v", norm, row)
		}
	}
}

func TestThm21NormalizedBounded(t *testing.T) {
	tables := runExperiment(t, "thm21")
	for _, row := range tables[0].Rows {
		for _, col := range []int{3, 5} {
			if v := cellFloat(t, row[col]); v > 5 {
				t.Errorf("T·γ0/ln n = %v not O(1): %v", v, row)
			}
		}
	}
}

func TestThm22WithinShape(t *testing.T) {
	tables := runExperiment(t, "thm22")
	for _, row := range tables[0].Rows {
		if v := cellFloat(t, row[5]); v > 2 {
			t.Errorf("hit/shape = %v exceeds the theorem shape: %v", v, row)
		}
		// The Lemma 5.12 expected-time bound uses the paper's explicit
		// constants; the measured mean must respect it.
		if v := cellFloat(t, row[7]); v > 1 {
			t.Errorf("mean/Lemma-5.12-bound = %v exceeds 1: %v", v, row)
		}
	}
}

func TestThm26Threshold(t *testing.T) {
	tables := runExperiment(t, "thm26")
	rows := tables[0].Rows
	// m = 0 row: near-chance success for both dynamics (< 0.5).
	if p := cellFloat(t, rows[0][2]); p > 0.5 {
		t.Errorf("3-majority baseline success %v too high", p)
	}
	if p := cellFloat(t, rows[0][5]); p > 0.5 {
		t.Errorf("2-choices baseline success %v too high", p)
	}
	// Largest margin row: near-certain success for both.
	last := rows[len(rows)-1]
	if p := cellFloat(t, last[2]); p < 0.9 {
		t.Errorf("3-majority large-margin success %v too low", p)
	}
	if p := cellFloat(t, last[5]); p < 0.9 {
		t.Errorf("2-choices large-margin success %v too low", p)
	}
	// Small-γ0 panel: plurality consensus succeeds far below the
	// γ0 = Θ(1) requirement of prior work.
	for _, row := range tables[1].Rows {
		if p := cellFloat(t, row[5]); p < 0.85 {
			t.Errorf("small-γ0 plurality success %v too low: %v", p, row)
		}
	}
}

func TestRem25Bounded(t *testing.T) {
	tables := runExperiment(t, "rem25")
	for _, row := range tables[0].Rows {
		if v := cellFloat(t, row[3]); v > 2 {
			t.Errorf("live·T/(n ln n) = %v above constant: %v", v, row)
		}
	}
	// Contrast panel: for 2-Choices the same normalization must blow
	// up (the BCEKMN bound does not hold there, per Remark 2.5).
	contrast := tables[1]
	first := cellFloat(t, contrast.Rows[0][2])
	last := cellFloat(t, contrast.Rows[len(contrast.Rows)-1][2])
	if last <= first {
		t.Errorf("2-choices normalized decay did not grow: %v to %v", first, last)
	}
	if last < 2 {
		t.Errorf("2-choices normalized decay %v suspiciously small — bound should fail", last)
	}
}

func TestBernAllValid(t *testing.T) {
	if testing.Short() {
		t.Skip("MGF estimation is slow")
	}
	tables := runExperiment(t, "bern")
	for ti, tb := range tables {
		for _, row := range tb.Rows {
			if row[len(row)-1] != "true" {
				t.Errorf("table %d: concentration bound violated: %v", ti, row)
			}
		}
	}
}

func TestAsyncCorrespondence(t *testing.T) {
	tables := runExperiment(t, "async")
	for _, row := range tables[0].Rows {
		ratio := cellFloat(t, row[3])
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("async/sync ratio %v not Θ(1): %v", ratio, row)
		}
	}
}

func TestAdvMonotone(t *testing.T) {
	tables := runExperiment(t, "adv")
	rows := tables[0].Rows
	// F = 0 must converge fully; the largest budget must stall.
	if !strings.HasPrefix(rows[0][1], rows[0][1][:1]) || rows[0][2] == "stalled" {
		t.Errorf("baseline run stalled: %v", rows[0])
	}
	if rows[len(rows)-1][2] != "stalled" {
		t.Errorf("largest budget did not stall: %v", rows[len(rows)-1])
	}
}

func TestHMajOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("voter runs are slow")
	}
	tables := runExperiment(t, "hmaj")
	rows := tables[0].Rows
	// h=1 (voter) must be much slower than h=3; h=7 faster than h=3.
	t1 := cellFloat(t, rows[0][1])
	t3 := cellFloat(t, rows[2][1])
	last := cellFloat(t, rows[len(rows)-1][1])
	if t1 < 5*t3 {
		t.Errorf("voter time %v not >> 3-majority time %v", t1, t3)
	}
	if last > t3 {
		t.Errorf("h=7 time %v not below h=3 time %v", last, t3)
	}
}

func TestGraphsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("agent-based runs are slow")
	}
	tables := runExperiment(t, "graphs")
	rows := tables[0].Rows
	// First row is the complete graph: it must fully converge.
	if !strings.Contains(rows[0][0], "complete") || strings.Contains(rows[0][2], "no consensus") {
		t.Errorf("complete-graph row unexpected: %v", rows[0])
	}
	// The ring row must be slower than complete or not converge.
	last := rows[len(rows)-1]
	if !strings.Contains(last[0], "ring") {
		t.Fatalf("last row is not the ring: %v", last)
	}
	if !strings.Contains(last[2], "no consensus") {
		ringT := cellFloat(t, last[2])
		completeT := cellFloat(t, rows[0][2])
		if ringT <= completeT {
			t.Errorf("ring (%v) not slower than complete (%v)", ringT, completeT)
		}
	}
}

func TestZooOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("six protocols across a k sweep")
	}
	tables := runExperiment(t, "zoo")
	rows := tables[0].Rows
	last := rows[len(rows)-1] // largest k: separation is clearest
	t3 := cellFloat(t, last[1])
	t2 := cellFloat(t, last[2])
	tMed := cellFloat(t, last[3])
	h7 := cellFloat(t, last[5])
	if t2 <= t3 {
		t.Errorf("2-choices (%v) not slower than 3-majority (%v) at large k", t2, t3)
	}
	if tMed >= t3 {
		t.Errorf("median (%v) not faster than 3-majority (%v) at large k", tMed, t3)
	}
	if h7 > t3 {
		t.Errorf("majority-h7 (%v) slower than 3-majority (%v)", h7, t3)
	}
}

func TestGossipCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up real networks")
	}
	tables := runExperiment(t, "gossip")
	for _, row := range tables[0].Rows {
		ratio := cellFloat(t, row[3])
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("gossip/engine ratio %v not ≈1: %v", ratio, row)
		}
	}
	fault := tables[1]
	clean := cellFloat(t, fault.Rows[0][2])
	lossy := cellFloat(t, fault.Rows[2][2])
	if lossy <= clean {
		t.Errorf("lossy rounds %v not above clean %v", lossy, clean)
	}
}

func TestThm11Slopes(t *testing.T) {
	if testing.Short() {
		t.Skip("many consensus sweeps")
	}
	tables := runExperiment(t, "thm11")
	panelA := tables[0]
	// Past k = 2√n (rows with k/√n >= 2) the 3-Majority exponent must
	// be small while 2-Choices' remains substantial.
	var tail3, tail2 []float64
	for _, row := range panelA.Rows {
		if cellFloat(t, row[1]) >= 1.5 {
			tail3 = append(tail3, cellFloat(t, row[2]))
			tail2 = append(tail2, cellFloat(t, row[3]))
		}
	}
	if len(tail3) == 0 {
		t.Fatal("no rows past saturation in panel A")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if m := mean(tail3); m > 0.4 {
		t.Errorf("3-majority saturated exponent %v not near 0", m)
	}
	if m := mean(tail2); m < 0.3 {
		t.Errorf("2-choices exponent %v collapsed unexpectedly", m)
	}

	panelB := tables[1]
	slope3 := cellFloat(t, panelB.Rows[0][3])
	slope2 := cellFloat(t, panelB.Rows[1][3])
	if slope3 < 0.3 || slope3 > 0.75 {
		t.Errorf("3-majority n-slope %v not ≈0.5", slope3)
	}
	if slope2 < 0.7 || slope2 > 1.3 {
		t.Errorf("2-choices n-slope %v not ≈1", slope2)
	}
	if slope2 <= slope3 {
		t.Errorf("2-choices slope %v not above 3-majority slope %v", slope2, slope3)
	}
}
