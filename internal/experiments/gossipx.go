package experiments

import (
	"plurality/internal/core"
	"plurality/internal/gossip"
	"plurality/internal/population"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/tablefmt"
)

// runGossip validates the message-passing execution against the
// count-space engine and quantifies the fault models the abstract
// chain cannot express: the consensus times of the real concurrent
// gossip network (goroutines + channels, two-phase barrier) must match
// the engine's on clean runs, and degrade gracefully under node
// crashes and pull loss.
func runGossip(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := 300
	k := 4
	trials := 5
	maxRounds := 50_000
	if opts.Scale == Full {
		n = 1_000
		trials = 7
	}

	gossipMedian := func(rule gossip.Rule, crashed []int, loss float64, salt uint64) (float64, int) {
		times := make([]float64, 0, trials)
		converged := 0
		for trial := 0; trial < trials; trial++ {
			nw, err := gossip.New(gossip.Config{
				N:        n,
				Rule:     rule,
				Init:     population.Balanced(int64(n), k),
				Seed:     opts.Seed*2221 + salt*131 + uint64(trial),
				Crashed:  crashed,
				LossProb: loss,
			})
			if err != nil {
				panic(err)
			}
			res := nw.Run(maxRounds)
			nw.Close()
			if res.Consensus {
				converged++
				times = append(times, float64(res.Rounds))
			}
		}
		return stats.Median(times), converged
	}

	engineMedian := func(proto core.Protocol, salt uint64) float64 {
		results := sim.RunMany(sim.Spec{
			Protocol:    proto,
			Init:        func(int) *population.Vector { return population.Balanced(int64(n), k) },
			Trials:      trials,
			Seed:        opts.Seed*2221 + salt*131,
			Parallelism: opts.Parallelism,
		})
		times, err := sim.ConsensusTimes(results)
		if err != nil {
			panic(err)
		}
		return stats.Median(times)
	}

	crossTable := tablefmt.Table{
		Title: "Gossip network vs count-space engine (clean runs, balanced start)",
		Notes: "the concurrent message-passing execution and the exact Markov-chain engine " +
			"simulate the same process; median consensus times must agree up to trial noise.",
		Columns: []string{"dynamics", "engine rounds med", "gossip rounds med", "ratio"},
	}
	pairs := []struct {
		proto core.Protocol
		rule  gossip.Rule
	}{
		{core.ThreeMajority{}, gossip.ThreeMajority},
		{core.TwoChoices{}, gossip.TwoChoices},
	}
	for pi, pair := range pairs {
		e := engineMedian(pair.proto, uint64(pi))
		g, _ := gossipMedian(pair.rule, nil, 0, uint64(pi)+10)
		crossTable.AddRow(pair.proto.Name(), e, g, g/e)
	}

	faultTable := tablefmt.Table{
		Title: "Gossip 2-Choices under faults (balanced start)",
		Notes: "crashed nodes answer pulls with failures and never update; a lost pull makes the " +
			"puller keep its opinion for the round. Consensus is among alive nodes.",
		Columns: []string{"scenario", "converged", "median rounds"},
	}
	clean, conv := gossipMedian(gossip.TwoChoices, nil, 0, 20)
	faultTable.AddRow("clean", tablefmt.Cell(conv)+"/"+tablefmt.Cell(trials), clean)

	crashed := make([]int, 0, n/20)
	for id := 0; id < n; id += 20 {
		crashed = append(crashed, id)
	}
	withCrash, conv := gossipMedian(gossip.TwoChoices, crashed, 0, 21)
	faultTable.AddRow("5% crashed", tablefmt.Cell(conv)+"/"+tablefmt.Cell(trials), withCrash)

	withLoss, conv := gossipMedian(gossip.TwoChoices, nil, 0.4, 22)
	faultTable.AddRow("40% pull loss", tablefmt.Cell(conv)+"/"+tablefmt.Cell(trials), withLoss)

	return []tablefmt.Table{crossTable, faultTable}
}
