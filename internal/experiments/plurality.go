package experiments

import (
	"math"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/tablefmt"
	"plurality/internal/theory"
)

// runThm26 reproduces the Theorem 2.6 plurality-consensus threshold:
// when the most popular opinion leads every rival by a margin of
// ω(√(log n/n)) (3-Majority) resp. ω(√(α₁ log n/n)) (2-Choices), the
// dynamics converge on it w.h.p.; far below the threshold the winner
// is near-uniform among the leaders.
func runThm26(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(20_000)
	k := 10
	trials := 40
	if opts.Scale == Full {
		n = 200_000
		k = 16
		trials = 60
	}

	multipliers := []float64{0, 0.5, 1, 2, 4, 8}

	table := tablefmt.Table{
		Title: "Theorem 2.6: plurality success rate vs initial margin",
		Notes: "margin = m × paper threshold (√(ln n/n) for 3-Majority, √(α1·ln n/n) for 2-Choices). " +
			"success = consensus on the initially largest opinion; balanced baseline success is 1/k.",
		Columns: []string{
			"m", "extra vertices (3maj)", "P[win] 3maj", "95% CI",
			"extra vertices (2ch)", "P[win] 2ch", "95% CI",
		},
	}

	for mi, m := range multipliers {
		margin3 := m * theory.PluralityMargin(theory.ThreeMajority, float64(n), 0)
		extra3 := int64(margin3 * float64(n))
		p3, lo3, hi3 := pluralityRate(core.ThreeMajority{}, n, k, extra3, trials, opts, 300+uint64(mi))

		alpha1 := 1.0 / float64(k)
		margin2 := m * theory.PluralityMargin(theory.TwoChoices, float64(n), alpha1)
		extra2 := int64(margin2 * float64(n))
		p2, lo2, hi2 := pluralityRate(core.TwoChoices{}, n, k, extra2, trials, opts, 400+uint64(mi))

		table.AddRow(
			m, extra3, p3, ciString(lo3, hi3),
			extra2, p2, ciString(lo2, hi2),
		)
	}

	// Second panel: the improvement over prior work. BCNPST17 needed
	// α₀(1) = Θ(1) — i.e. γ₀ = Θ(1) — for 3-Majority plurality
	// consensus under the same √(ln n/n) margin; Theorem 2.6 only
	// needs γ₀ >= C·ln n/√n. Run with many balanced rivals so γ₀ is
	// far below any constant and show the planted opinion still wins.
	smallN := int64(100_000)
	smallK := 30
	if opts.Scale == Full {
		smallN = 2_000_000
		smallK = 100
	}
	gamma0 := 1.0 / float64(smallK)
	threshold3 := theory.GammaThreshold(theory.ThreeMajority, float64(smallN))
	small := tablefmt.Table{
		Title: "Theorem 2.6, small-γ0 regime (beyond BCNPST17's γ0 = Θ(1) requirement)",
		Notes: "γ0 ≈ " + tablefmt.Cell(gamma0) + " vs required ~ln n/√n = " + tablefmt.Cell(threshold3) +
			"; margin = 2× the Theorem 2.6 threshold. Prior work needed the leader to hold a constant fraction.",
		Columns: []string{"dynamics", "n", "k", "γ0", "margin", "P[planted wins]", "95% CI"},
	}
	margin3 := 2 * theory.PluralityMargin(theory.ThreeMajority, float64(smallN), 0)
	p3, lo3, hi3 := pluralityRate(core.ThreeMajority{}, smallN, smallK, int64(margin3*float64(smallN)), trials, opts, 900)
	small.AddRow("3-majority", smallN, smallK, gamma0, margin3, p3, ciString(lo3, hi3))
	margin2 := 2 * theory.PluralityMargin(theory.TwoChoices, float64(smallN), gamma0)
	p2, lo2, hi2 := pluralityRate(core.TwoChoices{}, smallN, smallK, int64(margin2*float64(smallN)), trials, opts, 901)
	small.AddRow("2-choices", smallN, smallK, gamma0, margin2, p2, ciString(lo2, hi2))

	return []tablefmt.Table{table, small}
}

// pluralityRate runs trials from PlantedBias(n, k, extra) and returns
// the rate at which opinion 0 wins, with its Wilson 95% interval.
func pluralityRate(p core.Protocol, n int64, k int, extra int64, trials int, opts Options, salt uint64) (rate, lo, hi float64) {
	results := sim.RunMany(sim.Spec{
		Protocol:    p,
		Init:        func(int) *population.Vector { return population.PlantedBias(n, k, extra) },
		Trials:      trials,
		Seed:        opts.Seed*7907 + salt,
		Parallelism: opts.Parallelism,
	})
	wins := 0
	for _, res := range results {
		if res.Consensus && res.Winner == 0 {
			wins++
		}
	}
	rate = float64(wins) / float64(len(results))
	lo, hi = stats.WilsonInterval(wins, len(results), 1.96)
	return rate, lo, hi
}

func ciString(lo, hi float64) string {
	return "[" + tablefmt.Cell(lo) + "," + tablefmt.Cell(hi) + "]"
}

// runThm27 reproduces the Theorem 2.7 lower bound: from the balanced
// configuration the consensus time is Ω(k) w.h.p., so even the
// *minimum* observed T/k across trials must stay above a constant.
func runThm27(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(20_000)
	ks := []int{4, 16, 64}
	trials := 9
	if opts.Scale == Full {
		n = 200_000
		ks = []int{4, 16, 64, 256}
		trials = 15
	}

	table := tablefmt.Table{
		Title: "Theorem 2.7: Ω(k) lower bound (balanced start)",
		Notes: "min and median of T/k over trials; the paper guarantees a constant lower bound w.h.p. " +
			"for k <= c·√(n/ln n) (3-Majority) and k <= c·n/ln n (2-Choices); rows outside that " +
			"range are marked and may fall below the constant (3-Majority saturates at Θ̃(√n)).",
		Columns: []string{"dynamics", "k", "min T/k", "median T/k", "within validity"},
	}

	logN := math.Log(float64(n))
	for _, p := range []core.Protocol{core.ThreeMajority{}, core.TwoChoices{}} {
		_, is3Maj := p.(core.ThreeMajority)
		for ki, k := range ks {
			results := sim.RunMany(sim.Spec{
				Protocol:    p,
				Init:        func(int) *population.Vector { return population.Balanced(n, k) },
				Trials:      trials,
				Seed:        opts.Seed*6133 + uint64(ki),
				Parallelism: opts.Parallelism,
			})
			times, err := sim.ConsensusTimes(results)
			if err != nil {
				panic(err)
			}
			minT := math.Inf(1)
			for _, t := range times {
				if t < minT {
					minT = t
				}
			}
			valid := float64(k) <= float64(n)/logN
			if is3Maj {
				valid = float64(k) <= math.Sqrt(float64(n)/logN)
			}
			table.AddRow(p.Name(), k, minT/float64(k), stats.Median(times)/float64(k), valid)
		}
	}
	return []tablefmt.Table{table}
}

// runLem52 reproduces Lemma 5.2: a weak opinion (α(i) ≤ (1−c_weak)·γ)
// vanishes within O(log n/γ₀) rounds. The initial configuration
// plants one weak opinion under five strong leaders.
func runLem52(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(20_000)
	trials := 15
	if opts.Scale == Full {
		n = 200_000
		trials = 25
	}
	c := theory.Default()

	// Five leaders at 0.18 each, one weak opinion at 0.10:
	// γ = 5·0.0324 + 0.01 = 0.172, weak threshold 0.155 > 0.10.
	fracs := append(repeat(0.18, 5), 0.10)
	weakIdx := 5
	v0, err := population.FromFractions(n, fracs)
	if err != nil {
		panic(err)
	}
	gamma0 := v0.Gamma()
	if !c.IsWeak(v0.Alpha(weakIdx), gamma0) {
		panic("experiments: lem52 initial opinion is not weak")
	}
	logN := math.Log(float64(n))

	table := tablefmt.Table{
		Title: "Lemma 5.2: vanish time of a weak opinion",
		Notes: "τ_vanish·γ0/ln n should be O(1); the weak opinion must also never win.",
		Columns: []string{
			"dynamics", "γ0", "α_weak", "vanish med (rounds)",
			"vanish·γ0/ln n", "max vanish·γ0/ln n", "weak ever won",
		},
	}

	for pi, p := range []core.Protocol{core.ThreeMajority{}, core.TwoChoices{}} {
		results := sim.RunMany(sim.Spec{
			Protocol:    p,
			Init:        func(int) *population.Vector { return v0.Clone() },
			Trials:      trials,
			Seed:        opts.Seed*509 + uint64(pi),
			Parallelism: opts.Parallelism,
			Done:        func(v *population.Vector) bool { return v.Count(weakIdx) == 0 },
		})
		times, err := sim.ConsensusTimes(results)
		if err != nil {
			panic(err)
		}
		weakWon := 0
		for _, res := range results {
			if res.Winner == weakIdx {
				weakWon++
			}
		}
		med := stats.Median(times)
		maxT := stats.Quantile(times, 1)
		table.AddRow(
			p.Name(), gamma0, v0.Alpha(weakIdx), med,
			med*gamma0/logN, maxT*gamma0/logN, weakWon,
		)
	}
	return []tablefmt.Table{table}
}

// runLem55 reproduces Lemma 5.5: from two strong leaders separated by
// a bias of C·√(log n/n), the trailing leader becomes weak within
// O(log n/γ₀) rounds.
func runLem55(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(20_000)
	trials := 15
	if opts.Scale == Full {
		n = 200_000
		trials = 25
	}
	c := theory.Default()
	logN := math.Log(float64(n))

	bias := 4 * math.Sqrt(logN/float64(n))
	v0, err := population.TwoLeaders(n, 8, 0.5, bias)
	if err != nil {
		panic(err)
	}
	gamma0 := v0.Gamma()
	if c.IsWeak(v0.Alpha(1), gamma0) {
		panic("experiments: lem55 trailing leader already weak at round 0")
	}

	table := tablefmt.Table{
		Title: "Lemma 5.5: rounds until the trailing leader becomes weak",
		Notes: "bias₀ = 4√(ln n/n); τ_weak(j)·γ0/ln n should be O(1).",
		Columns: []string{
			"dynamics", "γ0", "bias0", "τ_weak med", "τ_weak·γ0/ln n", "max τ_weak·γ0/ln n",
		},
	}

	for pi, p := range []core.Protocol{core.ThreeMajority{}, core.TwoChoices{}} {
		results := sim.RunMany(sim.Spec{
			Protocol:    p,
			Init:        func(int) *population.Vector { return v0.Clone() },
			Trials:      trials,
			Seed:        opts.Seed*769 + uint64(pi),
			Parallelism: opts.Parallelism,
			Done: func(v *population.Vector) bool {
				return c.IsWeak(v.Alpha(1), v.Gamma()) || v.Count(1) == 0
			},
		})
		times, err := sim.ConsensusTimes(results)
		if err != nil {
			panic(err)
		}
		med := stats.Median(times)
		maxT := stats.Quantile(times, 1)
		table.AddRow(p.Name(), gamma0, v0.Bias(0, 1), med, med*gamma0/logN, maxT*gamma0/logN)
	}
	return []tablefmt.Table{table}
}

// runRem25 reproduces the BCEKMN17 decay bound cited in Remark 2.5:
// after T rounds of 3-Majority from the k = n balanced configuration,
// at most O(n·log n/T) opinions survive.
func runRem25(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(10_000)
	trials := 3
	if opts.Scale == Full {
		n = 100_000
		trials = 5
	}
	logN := math.Log(float64(n))
	sqrtN := int(math.Sqrt(float64(n)))
	checkpoints := []int{sqrtN / 4, sqrtN / 2, sqrtN, 2 * sqrtN, 4 * sqrtN}

	table := tablefmt.Table{
		Title:   "Remark 2.5: surviving opinions after T rounds of 3-Majority (k = n start)",
		Notes:   "live(T)·T/(n·ln n) should be bounded by a constant (BCEKMN17: O(n·log n/T) opinions remain).",
		Columns: []string{"T", "live(T) mean", "bound n·ln n/T", "live·T/(n·ln n)"},
	}

	liveAt := make(map[int]*stats.Welford, len(checkpoints))
	for _, cp := range checkpoints {
		liveAt[cp] = &stats.Welford{}
	}
	maxCheckpoint := checkpoints[len(checkpoints)-1]

	sim.RunMany(sim.Spec{
		Protocol:    core.ThreeMajority{},
		Init:        func(int) *population.Vector { return population.Balanced(n, int(n)) },
		Trials:      trials,
		Seed:        opts.Seed * 887,
		Parallelism: 1, // observers write into shared Welfords; keep serial
		// Consensus is absorbing, so running past it is harmless; keep
		// going to the last checkpoint so live(T) = 1 is recorded
		// rather than dropped when consensus arrives early.
		Done: func(*population.Vector) bool { return false },
		Observe: func(trial int) func(int, *population.Vector) bool {
			return func(round int, v *population.Vector) bool {
				if w, ok := liveAt[round]; ok {
					w.Add(float64(v.Live()))
				}
				return round >= maxCheckpoint
			}
		},
	})

	for _, cp := range checkpoints {
		mean := liveAt[cp].Mean()
		bound := theory.RemainingOpinionsBound(float64(n), float64(cp))
		table.AddRow(cp, mean, bound, mean*float64(cp)/(float64(n)*logN))
	}

	// Contrast panel: Remark 2.5 stresses that the BCEKMN decay bound
	// does NOT hold for 2-Choices — which is why the paper needed the
	// γ-growth argument (Theorem 2.2) to cover large k there. Measure
	// the same decay curve for 2-Choices (smaller n: its per-opinion
	// extinction rate from the balanced k = n start is Θ(1/n) slower).
	n2 := n / 10
	logN2 := math.Log(float64(n2))
	sqrtN2 := int(math.Sqrt(float64(n2)))
	checkpoints2 := []int{sqrtN2, 2 * sqrtN2, 4 * sqrtN2}
	liveAt2 := make(map[int]*stats.Welford, len(checkpoints2))
	for _, cp := range checkpoints2 {
		liveAt2[cp] = &stats.Welford{}
	}
	maxCp2 := checkpoints2[len(checkpoints2)-1]
	sim.RunMany(sim.Spec{
		Protocol:    core.TwoChoices{},
		Init:        func(int) *population.Vector { return population.Balanced(n2, int(n2)) },
		Trials:      trials,
		Seed:        opts.Seed * 888,
		Parallelism: 1,
		Done:        func(*population.Vector) bool { return false },
		Observe: func(trial int) func(int, *population.Vector) bool {
			return func(round int, v *population.Vector) bool {
				if w, ok := liveAt2[round]; ok {
					w.Add(float64(v.Live()))
				}
				return round >= maxCp2
			}
		},
	})
	contrast := tablefmt.Table{
		Title: "Contrast: the same decay for 2-Choices (Remark 2.5 says the BCEKMN bound fails here)",
		Notes: "live·T/(n·ln n) blows up instead of staying constant — the reason the paper's " +
			"Theorem 2.2 γ-growth argument was needed to cover large k for 2-Choices.",
		Columns: []string{"T", "live(T) mean", "live·T/(n·ln n)"},
	}
	for _, cp := range checkpoints2 {
		mean := liveAt2[cp].Mean()
		contrast.AddRow(cp, mean, mean*float64(cp)/(float64(n2)*logN2))
	}
	return []tablefmt.Table{table, contrast}
}
