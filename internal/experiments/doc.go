// Package experiments contains one driver per figure, table, and
// quantitative theorem of the paper. Every driver regenerates the
// corresponding artifact empirically — consensus-time scaling curves,
// drift tables, thresholds — and returns its results as renderable
// tables. The experiment IDs, paper artifacts, and expectations are
// indexed in DESIGN.md; measured-vs-paper records live in
// EXPERIMENTS.md.
//
// The contract above is owned by DESIGN.md §"Experiment / artifact
// index".
package experiments
