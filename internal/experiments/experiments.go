package experiments

import (
	"fmt"
	"sort"

	"plurality/internal/tablefmt"
)

// Scale selects the problem sizes of an experiment run.
type Scale int

// Scales. Quick targets seconds per experiment (used by tests and the
// root benchmarks); Full targets the paper-credible sizes printed in
// EXPERIMENTS.md and takes minutes.
const (
	Quick Scale = iota + 1
	Full
)

// ParseScale converts a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want quick or full)", s)
	}
}

// Options configures an experiment run.
type Options struct {
	// Scale selects Quick or Full problem sizes (default Quick).
	Scale Scale
	// Seed is the base seed for all trials (default 1).
	Seed uint64
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS).
	Parallelism int
}

func (o Options) normalized() Options {
	if o.Scale == 0 {
		o.Scale = Quick
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Experiment couples an ID with its driver.
type Experiment struct {
	// ID is the short identifier accepted by conbench -run.
	ID string
	// Title describes the experiment.
	Title string
	// Artifact names the paper figure/table/theorem reproduced.
	Artifact string
	// Run executes the experiment and returns its result tables.
	Run func(opts Options) []tablefmt.Table
}

// registry is populated by init-free explicit registration in All.
func All() []Experiment {
	list := []Experiment{
		{
			ID:       "fig1",
			Title:    "Consensus time vs k for 3-Majority and 2-Choices",
			Artifact: "Figure 1 (a),(b)",
			Run:      runFig1,
		},
		{
			ID:       "table1",
			Title:    "One-round drift of α, δ, γ under stopping-time conditions",
			Artifact: "Table 1 / Lemma 4.1 / Lemma 4.5",
			Run:      runTable1,
		},
		{
			ID:       "thm11",
			Title:    "Scaling exponents of the consensus time",
			Artifact: "Theorem 1.1",
			Run:      runThm11,
		},
		{
			ID:       "thm21",
			Title:    "Consensus time O(log n / γ0) from large-norm configurations",
			Artifact: "Theorem 2.1",
			Run:      runThm21,
		},
		{
			ID:       "thm22",
			Title:    "Growth of the ℓ²-norm γ_t from the balanced configuration",
			Artifact: "Theorem 2.2 / Lemma 5.12",
			Run:      runThm22,
		},
		{
			ID:       "thm26",
			Title:    "Plurality consensus threshold in the initial margin",
			Artifact: "Theorem 2.6",
			Run:      runThm26,
		},
		{
			ID:       "thm27",
			Title:    "Ω(k) lower bound from the balanced configuration",
			Artifact: "Theorem 2.7",
			Run:      runThm27,
		},
		{
			ID:       "lem52",
			Title:    "Weak opinions vanish within O(log n / γ0) rounds",
			Artifact: "Lemma 5.2 / Lemma 2.3",
			Run:      runLem52,
		},
		{
			ID:       "lem55",
			Title:    "Initial bias makes the trailing opinion weak",
			Artifact: "Lemma 5.5 / Lemma 2.4",
			Run:      runLem55,
		},
		{
			ID:       "rem25",
			Title:    "Opinion-count decay: live opinions after T rounds",
			Artifact: "Remark 2.5 (BCEKMN17 bound)",
			Run:      runRem25,
		},
		{
			ID:       "bern",
			Title:    "Bernstein condition and Freedman bound vs empirical tails",
			Artifact: "§3.2–3.3, Lemma 4.2, Lemma 4.7",
			Run:      runBern,
		},
		{
			ID:       "async",
			Title:    "Asynchronous vs synchronous 3-Majority (ticks/n vs rounds)",
			Artifact: "§1.1 (CMRSS25 correspondence)",
			Run:      runAsync,
		},
		{
			ID:       "adv",
			Title:    "Consensus delay under a bounded adversary",
			Artifact: "§2.5 (GL18 adversary)",
			Run:      runAdv,
		},
		{
			ID:       "hmaj",
			Title:    "h-Majority generalization",
			Artifact: "§2.5 (h-Majority)",
			Run:      runHMaj,
		},
		{
			ID:       "graphs",
			Title:    "Dynamics beyond the complete graph",
			Artifact: "§2.5 open problem",
			Run:      runGraphs,
		},
		{
			ID:       "zoo",
			Title:    "Protocol zoo: all dynamics on the same instances",
			Artifact: "§1.1 baselines + §2.5 USD open question",
			Run:      runZoo,
		},
		{
			ID:       "gossip",
			Title:    "Message-passing execution vs engine; crash/loss faults",
			Artifact: "Definition 3.1 as a real distributed system",
			Run:      runGossip,
		},
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	return list
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
