package experiments

import (
	"plurality/internal/adversary"
	"plurality/internal/async"
	"plurality/internal/core"
	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/tablefmt"
)

// runAsync reproduces the §1.1 synchronous/asynchronous correspondence
// (CMRSS25): one synchronous round equates to n asynchronous ticks, so
// async ticks/n should track the synchronous consensus time within a
// constant factor.
func runAsync(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(2_000)
	ks := []int{2, 8, 32}
	trials := 7
	if opts.Scale == Full {
		n = 20_000
		ks = []int{2, 8, 32, 128}
		trials = 9
	}

	table := tablefmt.Table{
		Title: "Async vs sync 3-Majority (balanced start)",
		Notes: "async column is ticks/n (synchronous-equivalent rounds); " +
			"the ratio should be Θ(1) across k.",
		Columns: []string{"k", "sync rounds med", "async ticks/n med", "ratio async/sync"},
	}
	for ki, k := range ks {
		syncMed := medianConsensusTime(core.ThreeMajority{}, n, k, trials, opts, 500+uint64(ki))

		asyncRounds := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			r := rng.New(rng.DeriveSeed(opts.Seed*601+uint64(ki), uint64(trial)))
			res := async.Run(r, async.ThreeMajority, population.Balanced(n, k), 1_000_000_000)
			if !res.Consensus {
				panic("experiments: async run did not converge")
			}
			asyncRounds = append(asyncRounds, res.Rounds)
		}
		asyncMed := stats.Median(asyncRounds)
		table.AddRow(k, syncMed, asyncMed, asyncMed/syncMed)
	}
	return []tablefmt.Table{table}
}

// runAdv reproduces the §2.5 adversary extension (GL18): 3-Majority
// tolerates an F-bounded per-round adversary up to F = O(√n/k^1.5);
// the sweep shows the delay growing with F and the process stalling
// once F is overwhelming.
func runAdv(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(20_000)
	k := 8
	fs := []int64{0, 2, 8, 32, 128, 512}
	trials := 7
	maxRounds := 30_000
	if opts.Scale == Full {
		n = 200_000
		fs = []int64{0, 2, 8, 32, 128, 512, 2048}
		trials = 9
		maxRounds = 100_000
	}

	table := tablefmt.Table{
		Title:   "Adversarial 3-Majority: consensus delay vs per-round budget F (hinder strategy)",
		Notes:   "GL18 threshold scale is √n/k^1.5. 'stalled' trials hit the round cap without consensus.",
		Columns: []string{"F", "converged", "median rounds (converged)", "vs F=0"},
	}
	baseline := 0.0
	for fi, f := range fs {
		results := sim.RunMany(sim.Spec{
			Protocol:    core.ThreeMajority{},
			Init:        func(int) *population.Vector { return population.Balanced(n, k) },
			Trials:      trials,
			Seed:        opts.Seed*433 + uint64(fi),
			Parallelism: opts.Parallelism,
			MaxRounds:   maxRounds,
			PostRound:   adversary.PostRound(adversary.Hinder{F: f}),
		})
		converged := sim.CountConverged(results)
		times := make([]float64, 0, converged)
		for _, res := range results {
			if res.Consensus {
				times = append(times, float64(res.Rounds))
			}
		}
		med := stats.Median(times)
		if f == 0 {
			baseline = med
		}
		ratio := "-"
		if converged > 0 && baseline > 0 {
			ratio = tablefmt.Cell(med / baseline)
		}
		medCell := "stalled"
		if converged > 0 {
			medCell = tablefmt.Cell(med)
		}
		table.AddRow(f, tablefmt.Cell(converged)+"/"+tablefmt.Cell(trials), medCell, ratio)
	}
	return []tablefmt.Table{table}
}

// runHMaj reproduces the §2.5 h-Majority generalization: stronger
// majorities drift faster, so the consensus time is non-increasing in
// h; h ≤ 2 degenerates to the driftless Voter model.
func runHMaj(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(4_000)
	k := 32
	hs := []int{1, 2, 3, 4, 5, 7}
	trials := 7
	if opts.Scale == Full {
		n = 20_000
		hs = []int{1, 2, 3, 4, 5, 7, 9}
		trials = 9
	}

	table := tablefmt.Table{
		Title:   "h-Majority: consensus time vs h (balanced start)",
		Notes:   "h = 1, 2 coincide with Voter (slow, Θ(n) diffusion); h = 3 is 3-Majority; larger h drifts harder.",
		Columns: []string{"h", "median rounds", "vs h=3"},
	}
	medByH := map[int]float64{}
	for hi, h := range hs {
		med := medianConsensusTime(core.HMajority{H: h}, n, k, trials, opts, 700+uint64(hi))
		medByH[h] = med
	}
	for _, h := range hs {
		table.AddRow(h, medByH[h], medByH[h]/medByH[3])
	}
	return []tablefmt.Table{table}
}

// runGraphs reproduces the §2.5 open problem's empirical side: the
// same update rules on sparse structured topologies. Expander-like
// graphs behave like the complete graph; rings and tori are
// dramatically slower (or stall within the round budget).
func runGraphs(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	nSide := 32
	n := nSide * nSide // 1024
	k := 4
	trials := 5
	maxRounds := 20_000
	if opts.Scale == Full {
		nSide = 64
		n = nSide * nSide
		trials = 7
		maxRounds = 100_000
	}

	build := func(r *rng.Rand) []graph.Graph {
		var gs []graph.Graph
		if g, err := graph.NewComplete(n); err == nil {
			gs = append(gs, g)
		}
		if g, err := graph.NewRandomRegular(n, 8, r); err == nil {
			gs = append(gs, g)
		}
		if g, err := graph.NewTorus(nSide, nSide); err == nil {
			gs = append(gs, g)
		}
		if g, err := graph.NewRing(n, 2); err == nil {
			gs = append(gs, g)
		}
		return gs
	}

	table := tablefmt.Table{
		Title: "3-Majority beyond the complete graph (k = 4, shuffled balanced start)",
		Notes: "expanders (complete, random-regular) converge fast; low-conductance topologies " +
			"(torus, ring) are orders of magnitude slower or exceed the round budget.",
		Columns: []string{"graph", "converged", "median rounds (converged)"},
	}

	seedRand := rng.New(opts.Seed * 911)
	for _, g := range build(seedRand) {
		times := make([]float64, 0, trials)
		converged := 0
		for trial := 0; trial < trials; trial++ {
			r := rng.New(rng.DeriveSeed(opts.Seed*977, uint64(trial)))
			v := population.Balanced(int64(n), k)
			st, err := graph.NewState(g, k, graph.ShuffledAssignment(v, r))
			if err != nil {
				panic(err)
			}
			res := graph.Run(r, st, graph.ThreeMajorityRule{}, maxRounds)
			if res.Consensus {
				converged++
				times = append(times, float64(res.Rounds))
			}
		}
		medCell := "no consensus within budget"
		if converged > 0 {
			medCell = tablefmt.Cell(stats.Median(times))
		}
		table.AddRow(g.Name(), tablefmt.Cell(converged)+"/"+tablefmt.Cell(trials), medCell)
	}
	return []tablefmt.Table{table}
}
