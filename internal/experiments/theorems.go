package experiments

import (
	"math"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/tablefmt"
	"plurality/internal/theory"
)

// runThm11 extracts the Theorem 1.1 scaling behavior in the two
// directions that are measurable at laptop scale:
//
//   - panel A reports per-step doubling exponents log₂(T(2k)/T(k))
//     across a k grid at fixed n: past k ≈ √n the 3-Majority exponent
//     collapses toward 0 (Θ̃(√n) saturation) while 2-Choices' stays
//     bounded away from 0 (Θ̃(k) growth);
//   - panel B fixes the saturated regime k = n and sweeps n: the
//     3-Majority time scales like √n (log-log slope ≈ 0.5 plus polylog
//     corrections) while 2-Choices scales like n (slope ≈ 1).
func runThm11(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(10_000)
	trials := 7
	if opts.Scale == Full {
		n = 250_000
		trials = 9
	}
	sqrtN := int(math.Sqrt(float64(n)))
	ks := geometricGrid(sqrtN/8, 8*sqrtN)

	measure := func(p core.Protocol, salt uint64) []float64 {
		ys := make([]float64, 0, len(ks))
		for _, k := range ks {
			ys = append(ys, medianConsensusTime(p, n, k, trials, opts, salt))
		}
		return ys
	}
	t3 := measure(core.ThreeMajority{}, 11)
	t2 := measure(core.TwoChoices{}, 12)

	panelA := tablefmt.Table{
		Title: "Theorem 1.1 panel A: doubling exponent log2(T(2k)/T(k)) at fixed n",
		Notes: "3-Majority's exponent must collapse toward 0 past k ≈ √n; 2-Choices' must stay bounded away from 0.",
		Columns: []string{
			"k→2k", "k/√n", "exp(3maj)", "exp(2ch)",
		},
	}
	for i := 1; i < len(ks); i++ {
		panelA.AddRow(
			tablefmt.Cell(ks[i-1])+"→"+tablefmt.Cell(ks[i]),
			float64(ks[i-1])/float64(sqrtN),
			math.Log2(t3[i]/t3[i-1]),
			math.Log2(t2[i]/t2[i-1]),
		)
	}

	// Panel B: k = n, sweep n. 2-Choices needs Θ̃(n) rounds here, so
	// its grid is smaller.
	ns3 := []int64{2_500, 10_000, 40_000}
	ns2 := []int64{500, 2_000, 8_000}
	if opts.Scale == Full {
		ns3 = []int64{10_000, 40_000, 160_000}
		ns2 = []int64{2_000, 8_000, 32_000}
	}
	panelB := tablefmt.Table{
		Title: "Theorem 1.1 panel B: T vs n in the saturated regime k = n",
		Notes: "log-log slope expected ≈0.5 (+polylog) for 3-Majority (Θ̃(√n)) and ≈1 for 2-Choices (Θ̃(n)).",
		Columns: []string{
			"dynamics", "n grid", "T medians", "slope vs n", "R²", "expected",
		},
	}
	slopeOverN := func(p core.Protocol, ns []int64, salt uint64) ([]float64, stats.LinearFit) {
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		for _, nn := range ns {
			ys = append(ys, medianConsensusTime(p, nn, int(nn), trials, opts, salt))
			xs = append(xs, float64(nn))
		}
		return ys, stats.LogLogSlope(xs, ys)
	}
	y3, fit3 := slopeOverN(core.ThreeMajority{}, ns3, 13)
	panelB.AddRow("3-majority", int64GridString(ns3), floatsString(y3), fit3.Slope, fit3.R2, "≈0.5")
	y2, fit2 := slopeOverN(core.TwoChoices{}, ns2, 14)
	panelB.AddRow("2-choices", int64GridString(ns2), floatsString(y2), fit2.Slope, fit2.R2, "≈1")

	return []tablefmt.Table{panelA, panelB}
}

func int64GridString(ns []int64) string {
	if len(ns) == 0 {
		return "-"
	}
	return tablefmt.Cell(ns[0]) + ".." + tablefmt.Cell(ns[len(ns)-1])
}

func floatsString(ys []float64) string {
	s := ""
	for i, y := range ys {
		if i > 0 {
			s += ","
		}
		s += tablefmt.Cell(y)
	}
	return s
}

// runThm21 checks Theorem 2.1: from configurations with large initial
// norm γ₀, consensus arrives within O(log n / γ₀) rounds — so the
// normalized time T·γ₀/log n must stay bounded across a γ₀ sweep.
func runThm21(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(20_000)
	k := 256
	trials := 7
	if opts.Scale == Full {
		n = 500_000
		k = 1024
		trials = 9
	}
	logN := math.Log(float64(n))

	// Sweep γ₀ via geometric initial configurations: ratio → γ₀.
	ratios := []float64{0.5, 0.7, 0.85, 0.95, 0.99, 1.0}

	table := tablefmt.Table{
		Title: "Theorem 2.1: consensus time vs initial norm γ0",
		Notes: "T·γ0/log n should be bounded by a constant across the sweep " +
			"(3-Majority needs γ0 >~ log n/√n; 2-Choices γ0 >~ log²n/n).",
		Columns: []string{"init ratio", "γ0", "T(3maj) med", "T·γ0/ln n (3maj)", "T(2ch) med", "T·γ0/ln n (2ch)"},
	}
	for ri, ratio := range ratios {
		v0, err := population.Geometric(n, k, ratio)
		if err != nil {
			panic(err)
		}
		gamma0 := v0.Gamma()
		init := func(int) *population.Vector { return v0.Clone() }

		t3 := medianTimeFromInit(core.ThreeMajority{}, init, trials, opts, 100+uint64(ri))
		t2 := medianTimeFromInit(core.TwoChoices{}, init, trials, opts, 200+uint64(ri))
		table.AddRow(ratio, gamma0, t3, t3*gamma0/logN, t2, t2*gamma0/logN)
	}
	return []tablefmt.Table{table}
}

// runThm22 checks Theorem 2.2 (via Lemma 5.12): starting from the
// fully balanced k = n configuration (γ₀ = 1/n, the hardest case), γ_t
// reaches the Theorem 2.1 threshold within Õ(√n) rounds for 3-Majority
// and Õ(n) rounds for 2-Choices.
func runThm22(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n3 := int64(20_000) // 3-Majority instance size
	n2 := int64(3_000)  // 2-Choices needs Θ̃(n) rounds at O(live)/round, keep smaller
	trials := 5
	if opts.Scale == Full {
		n3, n2, trials = 100_000, 10_000, 7
	}

	table := tablefmt.Table{
		Title: "Theorem 2.2: rounds until γ reaches the large-norm threshold (k = n start)",
		Notes: "normalized hit time should be O(1): 3-Majority vs √n·log²n, 2-Choices vs n·log³n. " +
			"The last columns compare against the explicit Lemma 5.12 expected-time bound " +
			"(64e²/ε·x·n resp. 192e²/ε²·x·n², ε = 1/2): the mean must sit below it.",
		Columns: []string{
			"dynamics", "n", "γ target", "hit rounds med", "shape", "hit/shape",
			"Lem5.12 bound", "mean/bound",
		},
	}

	runOne := func(dyn theory.Dynamics, proto core.Protocol, n int64, salt uint64) {
		target := theory.GammaThreshold(dyn, float64(n))
		times := make([]float64, 0, trials)
		results := sim.RunMany(sim.Spec{
			Protocol:    proto,
			Init:        func(int) *population.Vector { return population.Balanced(n, int(n)) },
			Trials:      trials,
			Seed:        opts.Seed*17 + salt,
			Parallelism: opts.Parallelism,
			Done:        func(v *population.Vector) bool { return v.Gamma() >= target },
		})
		ts, err := sim.ConsensusTimes(results)
		if err != nil {
			panic(err)
		}
		times = append(times, ts...)
		med := stats.Median(times)
		shape := theory.NormGrowthTimeShape(dyn, float64(n))
		bound := theory.GammaHitTimeBound(dyn, 0.5, target, float64(n))
		table.AddRow(
			dyn.String(), n, target, med, shape, med/shape,
			bound, stats.Mean(times)/bound,
		)
	}

	runOne(theory.ThreeMajority, core.ThreeMajority{}, n3, 31)
	runOne(theory.TwoChoices, core.TwoChoices{}, n2, 32)
	return []tablefmt.Table{table}
}

// medianTimeFromInit runs trials from a fixed init and returns the
// median consensus time.
func medianTimeFromInit(p core.Protocol, init func(int) *population.Vector, trials int, opts Options, salt uint64) float64 {
	results := sim.RunMany(sim.Spec{
		Protocol:    p,
		Init:        init,
		Trials:      trials,
		Seed:        opts.Seed*99991 + salt,
		Parallelism: opts.Parallelism,
	})
	times, err := sim.ConsensusTimes(results)
	if err != nil {
		panic(err)
	}
	return stats.Median(times)
}

// geometricGrid returns {lo, 2lo, 4lo, ...} capped at hi (inclusive of
// at least two points).
func geometricGrid(lo, hi int) []int {
	if lo < 2 {
		lo = 2
	}
	grid := []int{}
	for k := lo; k <= hi; k *= 2 {
		grid = append(grid, k)
	}
	if len(grid) < 2 {
		grid = []int{lo, lo * 2}
	}
	return grid
}

// gridString compactly renders a k grid.
func gridString(ks []int) string {
	if len(ks) == 0 {
		return "-"
	}
	return tablefmt.Cell(ks[0]) + ".." + tablefmt.Cell(ks[len(ks)-1])
}
