package experiments

import (
	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/tablefmt"
)

// runZoo compares the consensus times of the full protocol zoo on the
// same balanced instances: the paper's two headliners, the Voter
// baseline, h-Majority for h ∈ {5, 7}, the Median rule of DGMSS11
// (§1.1 — where 2-Choices was first implicitly studied), and the
// k-opinion Undecided-State Dynamics, whose consensus time the paper
// names as the central open question its techniques might settle
// (§2.5).
//
// Expected ordering per round-complexity theory: Median (binary-search
// style, Õ(log k·log n)-ish) and large-h majorities fastest, then
// 3-Majority, then 2-Choices and USD growing with k, with Voter's
// driftless Θ(n) far behind (it is therefore run at a single small k).
func runZoo(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(10_000)
	ks := []int{4, 16, 64, 256}
	trials := 7
	if opts.Scale == Full {
		n = 100_000
		ks = []int{4, 16, 64, 256, 1024}
		trials = 9
	}

	protos := []core.Protocol{
		core.ThreeMajority{},
		core.TwoChoices{},
		core.Median{},
		core.HMajority{H: 5},
		core.HMajority{H: 7},
		core.Undecided{},
	}

	table := tablefmt.Table{
		Title: "Protocol zoo: median consensus time vs k (balanced start)",
		Notes: "USD uses k real opinions plus an initially empty undecided slot, terminating at " +
			"decided consensus (its k-opinion consensus time is the paper's §2.5 open question). " +
			"Voter is excluded from the sweep (driftless Θ(n) regardless of k; see the hmaj experiment).",
		Columns: []string{"k", "3-majority", "2-choices", "median", "majority-h5", "majority-h7", "undecided"},
	}

	for ki, k := range ks {
		row := make([]interface{}, 0, len(protos)+1)
		row = append(row, k)
		for pi, p := range protos {
			spec := sim.Spec{
				Protocol:    p,
				Trials:      trials,
				Seed:        opts.Seed*1511 + uint64(ki*10+pi),
				Parallelism: opts.Parallelism,
			}
			if _, isUSD := p.(core.Undecided); isUSD {
				// k real opinions + one (initially empty) undecided slot.
				spec.Init = func(int) *population.Vector {
					counts := append(population.Balanced(n, k).Counts(), 0)
					return population.MustFromCounts(counts)
				}
				spec.Done = func(v *population.Vector) bool {
					_, ok := core.DecidedConsensus(v)
					return ok
				}
			} else {
				spec.Init = func(int) *population.Vector { return population.Balanced(n, k) }
			}
			results := sim.RunMany(spec)
			times, err := sim.ConsensusTimes(results)
			if err != nil {
				panic(err)
			}
			row = append(row, stats.Median(times))
		}
		table.AddRow(row...)
	}
	return []tablefmt.Table{table}
}
