package experiments

import (
	"math"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sim"
	"plurality/internal/tablefmt"
	"plurality/internal/theory"
)

// runBern validates the paper's concentration machinery empirically:
//
//  1. the centered one-round increment of α(i) satisfies the
//     (1/n, s)-Bernstein condition of Lemma 4.2(i) — the empirical MGF
//     must lie below the Definition 3.3 bound at a grid of λ;
//  2. the probability that γ falls below (1−c↓_γ)·γ₀ within T rounds is
//     dominated by the Lemma 4.7 / Corollary 3.8 Freedman-type bound.
//
// At laptop-scale n the tail bound is loose (it is an inequality, not
// an estimate) — the check is that it is *valid*, never violated.
func runBern(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n := int64(10_000)
	mgfTrials := 40_000
	tailTrials := 400
	if opts.Scale == Full {
		n = 100_000
		mgfTrials = 80_000
		tailTrials = 1000
	}

	v0, err := population.FromFractions(n, leadersFracs(0.3, 0.25, 6))
	if err != nil {
		panic(err)
	}
	opinion := 0

	mgf := tablefmt.Table{
		Title: "Bernstein condition (Lemma 4.2(i)): empirical MGF of α-increment vs bound",
		Notes: "X = α'(i) − E[α'(i)]; bound = exp(λ²s/2/(1−λD/3)) with D = 1/n. " +
			"ok requires empirical ≤ bound·(1+tolerance).",
		Columns: []string{"dynamics", "λ·√s", "λD", "empirical E[e^{λX}]", "Bernstein bound", "ok"},
	}

	dyns := []struct {
		proto core.Protocol
		dyn   theory.Dynamics
	}{
		{core.ThreeMajority{}, theory.ThreeMajority},
		{core.TwoChoices{}, theory.TwoChoices},
	}
	for di, d := range dyns {
		dd, s := theory.BernsteinParamsAlpha(d.dyn, v0.Alpha(opinion), v0.Gamma(), float64(n))
		expNext := theory.ExpAlphaNext(v0.Alpha(opinion), v0.Gamma())
		for li, lamScale := range []float64{0.25, 0.5, 1, 2} {
			lambda := lamScale / math.Sqrt(s)
			emp := empiricalMGF(d.proto, v0, opinion, expNext, lambda, mgfTrials, opts.Seed*37+uint64(di*10+li))
			bound, ok := theory.BernsteinMGFBound(lambda, dd, s)
			pass := ok && emp <= bound*1.02 // 2% Monte Carlo tolerance
			mgf.AddRow(d.proto.Name(), lamScale, lambda*dd, emp, bound, pass)
		}
	}

	tail := tablefmt.Table{
		Title: "Freedman-type bound (Lemma 4.7): γ-drop probability vs bound",
		Notes: "event: γ_t ≤ (1−c↓_γ)·γ₀ for some t ≤ T. The bound T·exp(−h²/2/(Ts+hD/3)) " +
			"uses the Lemma 4.2(iii) Bernstein parameters at (1+c↑_γ)γ₀. empirical ≤ bound required.",
		Columns: []string{"dynamics", "T", "empirical P[drop]", "Freedman bound", "ok"},
	}
	c := theory.Default()
	gamma0 := v0.Gamma()
	hazard := (1 - c.CGammaDown) * gamma0
	for di, d := range dyns {
		dd, s := theory.BernsteinParamsGamma(d.dyn, (1+c.CGammaUp)*gamma0, float64(n))
		for _, T := range []int{5, 20, 80} {
			drops := 0
			results := sim.RunMany(sim.Spec{
				Protocol:    d.proto,
				Init:        func(int) *population.Vector { return v0.Clone() },
				Trials:      tailTrials,
				Seed:        opts.Seed*53 + uint64(di*1000+T),
				Parallelism: opts.Parallelism,
				MaxRounds:   T,
				Done:        func(v *population.Vector) bool { return v.Gamma() <= hazard },
			})
			for _, res := range results {
				if res.Consensus { // Done fired: γ dropped below the hazard
					drops++
				}
			}
			emp := float64(drops) / float64(tailTrials)
			bound := float64(T) * theory.FreedmanTail(c.CGammaDown*gamma0, float64(T), s, dd)
			if bound > 1 {
				bound = 1
			}
			tail.AddRow(d.proto.Name(), T, emp, bound, emp <= bound+0.01)
		}
	}

	return []tablefmt.Table{mgf, tail}
}

// empiricalMGF estimates E[e^{λ(α'(i)−μ)}] over one-round steps.
func empiricalMGF(p core.Protocol, v0 *population.Vector, opinion int, mu, lambda float64, trials int, seed uint64) float64 {
	r := rng.New(seed)
	s := &core.Scratch{}
	v := v0.Clone()
	sum := 0.0
	for i := 0; i < trials; i++ {
		v.CopyFrom(v0)
		p.Step(r, v, s)
		sum += math.Exp(lambda * (v.Alpha(opinion) - mu))
	}
	return sum / float64(trials)
}
