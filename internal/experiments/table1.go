package experiments

import (
	"fmt"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/stats"
	"plurality/internal/tablefmt"
	"plurality/internal/theory"
)

// driftEstimate measures the one-round conditional drift of a scalar
// functional of the configuration by Monte Carlo.
func driftEstimate(p core.Protocol, v0 *population.Vector, trials int, seed uint64, f func(*population.Vector) float64) (mean, sem float64) {
	r := rng.New(seed)
	s := &core.Scratch{}
	base := f(v0)
	var w stats.Welford
	v := v0.Clone()
	for i := 0; i < trials; i++ {
		v.CopyFrom(v0)
		p.Step(r, v, s)
		w.Add(f(v) - base)
	}
	return w.Mean(), w.SEM()
}

// table1Row is one drift inequality of Table 1 instantiated at a
// concrete configuration satisfying its stopping-time condition.
type table1Row struct {
	label     string // paper condition
	fractions []float64
	opinionI  int
	opinionJ  int // -1 when the row concerns α or γ
	quantity  string
	// bound returns (threshold, isLower): the measured drift must be
	// >= threshold when isLower, <= threshold otherwise.
	bound func(v *population.Vector) (float64, bool)
}

// runTable1 reproduces Table 1: each drift inequality is checked by
// Monte Carlo at a configuration satisfying its condition. Both
// dynamics share the conditional means (Lemma 4.1), so each row is
// evaluated for 3-Majority and 2-Choices.
func runTable1(opts Options) []tablefmt.Table {
	opts = opts.normalized()
	n, trials := int64(1000), 20000
	if opts.Scale == Full {
		n, trials = 10_000, 60_000
	}
	c := theory.Default()

	rows := []table1Row{
		{
			label:     "E[Δα(i)] <= C·α(i)²  (t < τ↑_i)",
			fractions: leadersFracs(0.25, 0.25, 8),
			opinionI:  0, opinionJ: -1,
			quantity: "Δα(i)",
			bound: func(v *population.Vector) (float64, bool) {
				a := v.Alpha(0)
				cc := (1 + c.CAlphaUp) * (1 + c.CAlphaUp)
				return cc * a * a, false
			},
		},
		{
			label:     "E[Δα(i)] >= -C·α(i)²  (t < min{τweak_i, τ↑_i})",
			fractions: append([]float64{0.4, 0.2}, repeat(0.05, 8)...),
			opinionI:  1, opinionJ: -1,
			quantity: "Δα(i)",
			bound: func(v *population.Vector) (float64, bool) {
				a := v.Alpha(1)
				cc := c.CWeak * (1 + c.CAlphaUp) * (1 + c.CAlphaUp) / (1 - c.CWeak)
				return -cc * a * a, true
			},
		},
		{
			label:     "E[Δα(i)] <= 0  (t < min{τactive_i, τ↓_γ})",
			fractions: append([]float64{0.5, 0.1}, repeat(0.05, 8)...),
			opinionI:  1, opinionJ: -1,
			quantity: "Δα(i)",
			bound: func(*population.Vector) (float64, bool) {
				return 0, false
			},
		},
		{
			label:     "E[Δδ(i,j)] >= 0  (t < min{τweak_j, τ↓_δ})",
			fractions: leadersFracs(0.27, 0.23, 8),
			opinionI:  0, opinionJ: 1,
			quantity: "Δδ(i,j)",
			bound: func(*population.Vector) (float64, bool) {
				return 0, true
			},
		},
		{
			label:     "E[Δδ(i,j)] >= C·α(i)·δ  (t < min{τweak_j, τ↓_δ, τ↓_i})",
			fractions: leadersFracs(0.27, 0.23, 8),
			opinionI:  0, opinionJ: 1,
			quantity: "Δδ(i,j)",
			bound: func(v *population.Vector) (float64, bool) {
				cc := (1 - 2*c.CWeak) * (1 - c.CAlphaDown) * (1 - c.CDeltaDown) / (1 - c.CWeak)
				return cc * v.Alpha(0) * v.Bias(0, 1), true
			},
		},
		{
			label:     "E[Δγ] >= 0  (always)",
			fractions: repeat(0.1, 10),
			opinionI:  -1, opinionJ: -1,
			quantity: "Δγ",
			bound: func(*population.Vector) (float64, bool) {
				return 0, true
			},
		},
	}

	table := tablefmt.Table{
		Title: "Table 1: one-round drift inequalities (paper constants, Def. 4.4)",
		Notes: fmt.Sprintf("Monte Carlo with n=%d, %d one-round trials per cell; "+
			"'ok' requires the measured drift to satisfy the bound within 3 standard errors.", n, trials),
		Columns: []string{"condition", "dynamics", "measured E[Δ]", "SEM", "bound", "dir", "ok"},
	}

	protos := []core.Protocol{core.ThreeMajority{}, core.TwoChoices{}}
	for ri, row := range rows {
		v0, err := population.FromFractions(n, row.fractions)
		if err != nil {
			panic(err)
		}
		verifyRowPrecondition(row, v0, c)
		f := rowFunctional(row)
		for pi, p := range protos {
			mean, sem := driftEstimate(p, v0, trials, opts.Seed*31+uint64(ri*10+pi), f)
			threshold, isLower := row.bound(v0)
			ok := false
			dir := "<="
			if isLower {
				dir = ">="
				ok = mean >= threshold-3*sem
			} else {
				ok = mean <= threshold+3*sem
			}
			table.AddRow(row.label, p.Name(), mean, sem, threshold, dir, ok)
		}
	}
	return []tablefmt.Table{table}
}

// rowFunctional maps a row to the scalar whose drift it measures.
func rowFunctional(row table1Row) func(*population.Vector) float64 {
	switch {
	case row.quantity == "Δγ":
		return (*population.Vector).Gamma
	case row.opinionJ >= 0:
		i, j := row.opinionI, row.opinionJ
		return func(v *population.Vector) float64 { return v.Bias(i, j) }
	default:
		i := row.opinionI
		return func(v *population.Vector) float64 { return v.Alpha(i) }
	}
}

// verifyRowPrecondition panics if the crafted configuration does not
// satisfy the row's stopping-time condition at round 0 — a programming
// error in the experiment, not a property of the dynamics.
func verifyRowPrecondition(row table1Row, v *population.Vector, c theory.Constants) {
	gamma := v.Gamma()
	if row.opinionJ >= 0 {
		if c.IsWeak(v.Alpha(row.opinionJ), gamma) {
			panic(fmt.Sprintf("experiments: table1 row %q: opinion j is weak at round 0", row.label))
		}
		if v.Bias(row.opinionI, row.opinionJ) < 0 {
			panic(fmt.Sprintf("experiments: table1 row %q: negative initial bias", row.label))
		}
	}
}

// leadersFracs builds fractions with two leaders at a and b and rest
// of the mass split over `others` equal followers.
func leadersFracs(a, b float64, others int) []float64 {
	fr := []float64{a, b}
	rest := (1 - a - b) / float64(others)
	for i := 0; i < others; i++ {
		fr = append(fr, rest)
	}
	return fr
}

// repeat returns x repeated m times.
func repeat(x float64, m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = x
	}
	return out
}
