package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plurality/internal/trace"
)

// updateGolden regenerates testdata fixtures:
//
//	go test ./internal/service -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden fixtures")

// TestUntracedKeysPinned pins the canonical cache keys of untraced
// requests across every mode. These keys were recorded before the
// trace subsystem existed (PR 2/3 era): if this test fails, the
// normalized-request JSON changed shape and every cached and recorded
// Response key silently rotated. Adding a field is only key-compatible
// when it is omitted from untraced requests (pointer + omitempty, as
// Request.Trace is).
func TestUntracedKeysPinned(t *testing.T) {
	pinned := []struct {
		req Request
		key string
	}{
		{Request{Protocol: "3-majority", N: 100_000, K: 100, Seed: 1},
			"be721c080276ca0dacf7088cac1edd6a21d5186e75e830d27f737ef4c1f2f87c"},
		{Request{Protocol: "2-choices", N: 10_000, K: 64, Seed: 7, Trials: 5},
			"97fb50877abfb8133061861dd0e6240aa4ccaa3e22b17ef068c944ebcbbbe409"},
		{Request{Protocol: "3-majority", Mode: "async", N: 20_000, K: 8, Seed: 3, Trials: 2},
			"c3c91bc4b35586502de4ecb9c1eb9a506bf37a2d8c3335fc5559ce3f12c56e05"},
		{Request{Protocol: "voter", Mode: "graph", N: 4096, K: 4, Seed: 9, Topology: "hypercube"},
			"6d74420f23bf93251c46aea9c294311ec8bd681f66026de9e2d6b5641f642355"},
		{Request{Protocol: "3-majority", Mode: "gossip", N: 500, K: 4, Seed: 2, LossProb: 0.1},
			"d0d3f427af46827d1f3a9e8538cf40d409d18fe85364136dd31a60a4b7ae66e7"},
	}
	for _, p := range pinned {
		if got := p.req.Key(); got != p.key {
			t.Errorf("key of %+v rotated:\n got %s\nwant %s", p.req, got, p.key)
		}
	}
}

func TestTraceSpecKeyFolding(t *testing.T) {
	base := Request{Protocol: "3-majority", N: 1000, K: 8, Seed: 1}
	traced := base
	traced.Trace = &trace.Spec{}
	if base.Key() == traced.Key() {
		t.Fatal("trace spec not folded into the config key")
	}
	// A JSON null trace is the absent spec.
	var fromJSON Request
	if err := json.Unmarshal([]byte(`{"protocol":"3-majority","n":1000,"k":8,"seed":1,"trace":null}`), &fromJSON); err != nil {
		t.Fatal(err)
	}
	if fromJSON.Key() != base.Key() {
		t.Fatal("explicit null trace should key like an absent one")
	}
	// Semantically identical specs key identically: the zero spec is
	// the default adaptive spec, and an inert stride is cleared.
	explicit := base
	explicit.Trace = &trace.Spec{Policy: "Adaptive", Every: 9, MaxPoints: trace.DefaultMaxPoints}
	if explicit.Key() != traced.Key() {
		t.Fatal("equivalent trace specs produced different keys")
	}
	// Normalize must not mutate the caller's spec in place.
	spec := trace.Spec{Policy: "ADAPTIVE"}
	req := base
	req.Trace = &spec
	_ = req.Normalize()
	if spec.Policy != "ADAPTIVE" {
		t.Fatalf("Normalize mutated the caller's spec: %+v", spec)
	}
}

func TestTraceShapeCaps(t *testing.T) {
	q := Request{Protocol: "3-majority", N: 1000, K: 8, Seed: 1,
		Trials: MaxTrials, Trace: &trace.Spec{MaxPoints: trace.CapMaxPoints}}
	if err := q.Normalize().Validate(); err == nil {
		t.Fatal("trials x max_points above MaxTracePoints accepted")
	}
	q.Trials = 4
	if err := q.Normalize().Validate(); err != nil {
		t.Fatalf("modest traced request rejected: %v", err)
	}
	q.Trace = &trace.Spec{Policy: "bogus"}
	if err := q.Normalize().Validate(); err == nil {
		t.Fatal("bad trace policy accepted")
	}
}

// traceModeRequests is one small, fast request per execution mode,
// used by the cross-mode trace tests.
func traceModeRequests() []Request {
	return []Request{
		{Protocol: "3-majority", N: 400, K: 4, Seed: 11, Trials: 3},
		{Protocol: "3-majority", Mode: "async", N: 200, K: 4, Seed: 12, Trials: 2},
		{Protocol: "2-choices", Mode: "graph", N: 256, K: 4, Seed: 13, Trials: 2, Topology: "hypercube"},
		{Protocol: "3-majority", Mode: "gossip", N: 64, K: 4, Seed: 14, Trials: 2},
	}
}

// TestTracedSummariesByteIdenticalToUntraced is the acceptance
// contract: tracing must not touch the engines' RNG streams, so the
// Summary and Trials of a traced run are byte-for-byte those of the
// untraced run of the same (config, seed).
func TestTracedSummariesByteIdenticalToUntraced(t *testing.T) {
	for _, q := range traceModeRequests() {
		plain, err := Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Mode, err)
		}
		traced := q
		traced.Trace = &trace.Spec{Every: 1, MaxPoints: trace.CapMaxPoints}
		resp, err := Execute(traced)
		if err != nil {
			t.Fatalf("%s traced: %v", q.Mode, err)
		}
		sumPlain, _ := json.Marshal(plain.Summary)
		sumTraced, _ := json.Marshal(resp.Summary)
		if !bytes.Equal(sumPlain, sumTraced) {
			t.Errorf("mode %s: traced summary differs:\n%s\n%s", plain.Request.Mode, sumPlain, sumTraced)
		}
		trPlain, _ := json.Marshal(plain.Trials)
		trTraced, _ := json.Marshal(resp.Trials)
		if !bytes.Equal(trPlain, trTraced) {
			t.Errorf("mode %s: traced trials differ", plain.Request.Mode)
		}
		if len(plain.Trace) != 0 {
			t.Errorf("mode %s: untraced response carries trace points", plain.Request.Mode)
		}
		// Every trial contributes at least round 0, in trial order.
		seen := map[int]bool{}
		lastTrial, lastRound := -1, int64(-1)
		for _, p := range resp.Trace {
			if p.Trial != lastTrial {
				if p.Trial < lastTrial || p.Round != 0 {
					t.Fatalf("mode %s: trace not in (trial, round) order at %+v", plain.Request.Mode, p)
				}
				lastTrial, lastRound = p.Trial, 0
				seen[p.Trial] = true
				continue
			}
			if p.Round <= lastRound {
				t.Fatalf("mode %s: rounds not increasing at %+v", plain.Request.Mode, p)
			}
			lastRound = p.Round
		}
		for i := 0; i < q.Trials; i++ {
			if !seen[i] {
				t.Errorf("mode %s: trial %d has no trace points", plain.Request.Mode, i)
			}
		}
	}
}

// TestTracedResponseBytesInvariantAcrossParallelism extends the PR 3
// determinism contract to traces: the full traced Response encoding —
// points included — is byte-identical for every parallelism budget.
func TestTracedResponseBytesInvariantAcrossParallelism(t *testing.T) {
	for _, q := range traceModeRequests() {
		q.Trace = &trace.Spec{Policy: trace.PolicyAdaptive, MaxPoints: 64}
		var want []byte
		for _, par := range []int{1, 2, 7} {
			resp, err := ExecuteParallel(q, par)
			if err != nil {
				t.Fatalf("%s par %d: %v", q.Mode, par, err)
			}
			got, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(want, got) {
				t.Errorf("mode %s: traced response differs at parallelism %d", resp.Request.Mode, par)
			}
		}
	}
}

// TestDecimatedTraceSubsequenceAcrossModes is the end-to-end property:
// for every mode, a decimated trace is a strict subsequence of the
// every=1 trace of the same (seed, trial).
func TestDecimatedTraceSubsequenceAcrossModes(t *testing.T) {
	specs := []trace.Spec{
		{Every: 5},
		{Policy: trace.PolicyLog2},
		{Policy: trace.PolicyAdaptive, MaxPoints: 8},
	}
	for _, q := range traceModeRequests() {
		full := q
		full.Trace = &trace.Spec{Every: 1, MaxPoints: trace.CapMaxPoints}
		fullResp, err := Execute(full)
		if err != nil {
			t.Fatalf("%s: %v", q.Mode, err)
		}
		type key struct {
			trial int
			round int64
		}
		byKey := map[key]trace.Point{}
		for _, p := range fullResp.Trace {
			byKey[key{p.Trial, p.Round}] = p
		}
		for _, spec := range specs {
			dec := q
			s := spec
			dec.Trace = &s
			decResp, err := Execute(dec)
			if err != nil {
				t.Fatalf("%s %+v: %v", q.Mode, spec, err)
			}
			if len(decResp.Trace) >= len(fullResp.Trace) {
				t.Errorf("mode %s spec %+v: decimated trace not strictly shorter (%d vs %d)",
					fullResp.Request.Mode, spec, len(decResp.Trace), len(fullResp.Trace))
			}
			for _, p := range decResp.Trace {
				if byKey[key{p.Trial, p.Round}] != p {
					t.Fatalf("mode %s spec %+v: point %+v not in the every=1 trace",
						fullResp.Request.Mode, spec, p)
				}
			}
		}
	}
}

// TestGoldenTraceResponse pins the full canonical traced Response of
// one small sync run. Regenerate with -update-golden after a
// deliberate, documented stream break.
func TestGoldenTraceResponse(t *testing.T) {
	q := Request{Protocol: "3-majority", N: 200, K: 4, Seed: 42,
		Trace: &trace.Spec{Every: 1, MaxPoints: trace.CapMaxPoints}}
	resp, err := Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := EncodeJSONLine(&got, resp); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_trace_response.json")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Fatalf("traced response deviates from golden fixture\n got: %.200s...\nwant: %.200s...", got.Bytes(), want)
	}
}

func TestRunTraceQueryStreamsNDJSON(t *testing.T) {
	rn := NewRunner(Options{Workers: 1})
	defer rn.Close()
	srv := httptest.NewServer(NewServer(rn))
	defer srv.Close()

	body := `{"protocol":"3-majority","n":400,"k":4,"seed":11,"trials":3}`
	res, err := srv.Client().Post(srv.URL+"/run?trace=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("want points + summary, got %d lines", len(lines))
	}
	var p trace.Point
	if err := json.Unmarshal([]byte(lines[0]), &p); err != nil {
		t.Fatalf("first NDJSON line does not parse as a trace point: %v", err)
	}
	if p.Round != 0 || p.Trial != 0 || p.Live != 4 {
		t.Fatalf("unexpected first point %+v", p)
	}
	var resp Response
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &resp); err != nil {
		t.Fatalf("summary line does not parse: %v", err)
	}
	if resp.Request.Trace == nil {
		t.Fatal("?trace=1 did not inject the default trace spec")
	}
	if len(resp.Trace) != 0 {
		t.Fatal("summary line should carry no inline points (they were streamed)")
	}
	if resp.Summary.Trials != 3 {
		t.Fatalf("summary %+v", resp.Summary)
	}

	// The stream is a pure function of the response: a cache hit
	// replays byte-identical lines.
	res2, err := srv.Client().Post(srv.URL+"/run?trace=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if got := res2.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("second request not served from cache: %q", got)
	}
	var buf2 bytes.Buffer
	if _, err := buf2.ReadFrom(res2.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("cached trace stream differs from cold stream")
	}

	// The explicit body form describes the same request: same key,
	// trace inline in the plain JSON response.
	res3, err := srv.Client().Post(srv.URL+"/run", "application/json",
		strings.NewReader(`{"protocol":"3-majority","n":400,"k":4,"seed":11,"trials":3,"trace":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res3.Body.Close()
	if got := res3.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("body-spec form missed the cache: %q", got)
	}
	var inline Response
	if err := json.NewDecoder(res3.Body).Decode(&inline); err != nil {
		t.Fatal(err)
	}
	if inline.Key != resp.Key {
		t.Fatal("query form and body form produced different keys")
	}
	if len(inline.Trace) == 0 {
		t.Fatal("plain /run with a body trace spec should inline the points")
	}
}

// TestSweepPointsShareTraceKeysWithRun verifies a traced sweep's
// points key — and therefore cache — exactly like the equivalent
// traced /run requests, while an untraced sweep's keys are unchanged
// from the pre-trace era.
func TestSweepPointsShareTraceKeysWithRun(t *testing.T) {
	sr := SweepRequest{
		Base:   Request{Protocol: "3-majority", N: 1000, Seed: 5, Trials: 2},
		Sweep:  "k",
		Values: []int64{2, 4},
	}
	plain, err := sr.Points()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plain {
		if p.Trace != nil {
			t.Fatalf("untraced sweep point carries a trace spec: %+v", p)
		}
	}
	sr.Base.Trace = &trace.Spec{Policy: trace.PolicyLog2}
	traced, err := sr.Points()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range traced {
		if p.Trace == nil {
			t.Fatalf("traced sweep point %d lost the trace spec", i)
		}
		manual := plain[i]
		manual.Trace = &trace.Spec{Policy: trace.PolicyLog2}
		if p.Key() != manual.Key() {
			t.Fatalf("sweep point %d keys differently from the equivalent /run request", i)
		}
		if p.Key() == plain[i].Key() {
			t.Fatalf("traced sweep point %d collides with the untraced key", i)
		}
	}
}
