package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"plurality/internal/durable"
)

func openTestStore(t *testing.T, dir string) *durable.Store {
	t.Helper()
	s, err := durable.Open(durable.OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func respBytes(t *testing.T, resp *Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeJSONLine(&buf, resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRestartServesFromDisk: a result computed before a restart is
// served from the durable cache by the next process — byte-identical,
// with zero executions.
func TestRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	req := testRequest(31)
	ctx := context.Background()

	store := openTestStore(t, dir)
	r := NewRunner(Options{Workers: 1, Store: store})
	cold, _, err := r.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	store.Close()

	// "Restart": fresh store, fresh runner, same data dir.
	store2 := openTestStore(t, dir)
	defer store2.Close()
	if rec := store2.Recovered(); rec.CompletedKeys != 1 || len(rec.Interrupted) != 0 {
		t.Fatalf("recovery after clean shutdown: %+v", rec)
	}
	r2 := NewRunner(Options{Workers: 1, Store: store2})
	defer r2.Close()
	warm, cached, err := r2.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("restarted runner re-simulated a completed request")
	}
	m := r2.Metrics()
	if m.Executions != 0 || m.DiskHits != 1 {
		t.Fatalf("metrics after disk hit: %+v", m)
	}
	if !bytes.Equal(respBytes(t, cold), respBytes(t, warm)) {
		t.Fatal("disk-served response differs from the computed one")
	}

	// The second lookup of the same key comes from the LRU, not disk.
	if _, cached, err := r2.Do(ctx, req); err != nil || !cached {
		t.Fatalf("LRU readthrough: cached=%v err=%v", cached, err)
	}
	if m := r2.Metrics(); m.DiskHits != 1 {
		t.Fatalf("DiskHits after LRU hit = %d, want still 1", m.DiskHits)
	}
}

// TestDrainInterruptsAndRestartResumes is the end-to-end durability
// path: a job checkpoints, the runner drains (503 for new work, the
// job interrupted — not failed), and a restarted runner re-queues it,
// resumes from the checkpoint, and completes byte-identical to an
// uninterrupted run.
func TestDrainInterruptsAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	req := Request{Protocol: "3-majority", N: 1000, K: 4, Seed: 77, Trials: 5}
	want, err := ExecuteParallel(req.Normalize(), 1)
	if err != nil {
		t.Fatal(err)
	}

	store := openTestStore(t, dir)
	r := NewRunner(Options{Workers: 1, Store: store})
	running := make(chan struct{})
	r.exec = func(ctx context.Context, q Request, _ int, _ *ResumeState, _ int, onCheckpoint func(ResumeState)) (*Response, error) {
		// Two trials done, then the job parks until drain cancels it.
		onCheckpoint(ResumeState{NextTrial: 2, Trials: want.Trials[:2]})
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	job, _, err := r.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-running

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	go func() {
		// Reject-while-draining is checked from here, with the job
		// still parked.
		for !r.isDraining() {
			time.Sleep(time.Millisecond)
		}
	}()
	if err := r.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, _, err := r.Do(context.Background(), testRequest(1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission after drain: err = %v, want ErrDraining", err)
	}
	if info := job.Snapshot(); info.Status != StatusFailed || !strings.Contains(info.Error, "draining") {
		t.Fatalf("interrupted job snapshot: %+v", info)
	}
	store.Close()

	// Restart. The job must come back, resume at trial 2, and finish.
	store2 := openTestStore(t, dir)
	rec := store2.Recovered()
	if len(rec.Interrupted) != 1 || rec.Interrupted[0].Key != req.Normalize().Key() {
		t.Fatalf("restart recovery: %+v", rec)
	}
	r2 := NewRunner(Options{Workers: 1, Store: store2})
	got, _, err := r2.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if m := r2.Metrics(); m.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", m.Recovered)
	}
	var wantBuf bytes.Buffer
	if err := EncodeJSONLine(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(respBytes(t, got), wantBuf.Bytes()) {
		t.Fatalf("resumed response diverged:\n got %s\nwant %s", respBytes(t, got), wantBuf.Bytes())
	}
	r2.Close()
	store2.Close()

	// The journal must show the resumed attempt continuing the count
	// (attempt 2 after the pre-restart attempt 1) — proof the restart
	// carried the job's state rather than starting a twin.
	_, records, _, err := durable.OpenJournal(durable.OSFS{}, filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	maxAttempt := 0
	for _, rec := range records {
		if rec.Op == durable.OpStarted && rec.Attempt > maxAttempt {
			maxAttempt = rec.Attempt
		}
	}
	if maxAttempt != 2 {
		t.Fatalf("max journaled attempt = %d, want 2", maxAttempt)
	}
}

// TestRetryResumesFromCheckpoint: a failing attempt's checkpoint feeds
// the retry — completed trials are not re-run.
func TestRetryResumesFromCheckpoint(t *testing.T) {
	r := NewRunner(Options{Workers: 1, MaxAttempts: 2, RetryBaseDelay: time.Microsecond})
	defer r.Close()
	var attempt atomic.Int32
	var resumedFrom atomic.Int32
	r.exec = func(ctx context.Context, q Request, p int, resume *ResumeState, every int, onCheckpoint func(ResumeState)) (*Response, error) {
		if attempt.Add(1) == 1 {
			full, err := ExecuteParallel(q, p)
			if err != nil {
				return nil, err
			}
			onCheckpoint(ResumeState{NextTrial: 2, Trials: full.Trials[:2]})
			return nil, fmt.Errorf("transient fault")
		}
		if resume != nil {
			resumedFrom.Store(int32(resume.NextTrial))
		}
		return ExecuteResumable(ctx, q, p, resume, every, onCheckpoint)
	}
	req := Request{Protocol: "3-majority", N: 1000, K: 4, Seed: 9, Trials: 4}
	got, _, err := r.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if n := resumedFrom.Load(); n != 2 {
		t.Fatalf("retry resumed from trial %d, want 2", n)
	}
	if m := r.Metrics(); m.Retries != 1 || m.Executions != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	want, err := ExecuteParallel(req.Normalize(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(respBytes(t, got), respBytes(t, want)) {
		t.Fatal("checkpoint-fed retry diverged from a clean run")
	}
}

// TestTerminalFailureAfterBudget: once the attempt budget is spent the
// job fails terminally — journaled as failed, never re-queued by a
// restart.
func TestTerminalFailureAfterBudget(t *testing.T) {
	dir := t.TempDir()
	store := openTestStore(t, dir)
	r := NewRunner(Options{Workers: 1, Store: store, MaxAttempts: 3, RetryBaseDelay: time.Microsecond})
	var attempts atomic.Int32
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		attempts.Add(1)
		return nil, fmt.Errorf("boom")
	}
	_, _, err := r.Do(context.Background(), testRequest(5))
	if err == nil || err.Error() != "boom" {
		t.Fatalf("terminal error = %v, want boom", err)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("attempts = %d, want 3", n)
	}
	if m := r.Metrics(); m.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", m.Retries)
	}
	r.Close()
	store.Close()

	store2 := openTestStore(t, dir)
	defer store2.Close()
	rec := store2.Recovered()
	if len(rec.Interrupted) != 0 {
		t.Fatalf("terminally failed job re-queued: %+v", rec.Interrupted)
	}
	r2 := NewRunner(Options{Workers: 1, Store: store2})
	defer r2.Close()
	if m := r2.Metrics(); m.Recovered != 0 {
		t.Fatalf("Recovered = %d, want 0", m.Recovered)
	}
}

// TestJobTimeoutFailsTerminally: an attempt that exceeds JobTimeout is
// cancelled and, with no budget left, fails with a timeout error.
func TestJobTimeoutFailsTerminally(t *testing.T) {
	r := NewRunner(Options{Workers: 1, JobTimeout: 20 * time.Millisecond})
	defer r.Close()
	r.exec = func(ctx context.Context, _ Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, _, err := r.Do(context.Background(), testRequest(6))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want a timeout failure", err)
	}
}

// TestWorkerSurvivesExecPanic: a panic escaping the executor fails the
// job (journaled) and the worker keeps serving.
func TestWorkerSurvivesExecPanic(t *testing.T) {
	dir := t.TempDir()
	store := openTestStore(t, dir)
	defer store.Close()
	r := NewRunner(Options{Workers: 1, Store: store})
	defer r.Close()
	real := r.exec
	var calls atomic.Int32
	r.exec = func(ctx context.Context, q Request, p int, rs *ResumeState, every int, cb func(ResumeState)) (*Response, error) {
		if calls.Add(1) == 1 {
			panic("poisoned request")
		}
		return real(ctx, q, p, rs, every, cb)
	}
	_, _, err := r.Do(context.Background(), testRequest(8))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a contained panic", err)
	}
	// The same worker must still be alive for the next job.
	if _, _, err := r.Do(context.Background(), testRequest(9)); err != nil {
		t.Fatalf("worker died after panic: %v", err)
	}
}

// TestCancelledWaiterDetaches is the dedup-waiter regression: a waiter
// that joined an in-flight job and then cancelled its context detaches
// promptly, without failing the shared job or resubmitting it.
func TestCancelledWaiterDetaches(t *testing.T) {
	r := NewRunner(Options{Workers: 1, QueueDepth: 4})
	defer r.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		close(started)
		<-release
		return Execute(q)
	}

	first := make(chan error, 1)
	go func() {
		_, _, err := r.Do(context.Background(), testRequest(3))
		first <- err
	}()
	<-started

	// Second waiter joins the in-flight job, then cancels.
	wctx, wcancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, _, err := r.Do(wctx, testRequest(3))
		second <- err
	}()
	// Let it join before cancelling.
	for r.Metrics().Joined == 0 {
		time.Sleep(time.Millisecond)
	}
	wcancel()
	select {
	case err := <-second:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter: err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not detach")
	}

	// The shared job is unharmed: the original waiter completes.
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("shared job failed after waiter cancel: %v", err)
	}
	m := r.Metrics()
	if m.Executions != 1 {
		t.Fatalf("waiter cancellation re-ran the job: %+v", m)
	}
	if m.JobsInFlight != 0 {
		t.Fatalf("leaked in-flight job: %+v", m)
	}
}

// TestCancelledWaiterDoesNotResubmitAbandonedJob: a waiter whose ctx
// died while it was joined to a job that was then abandoned must not
// admit a fresh job nobody waits for.
func TestCancelledWaiterDoesNotResubmitAbandonedJob(t *testing.T) {
	r := NewRunner(Options{Workers: 1, QueueDepth: 1})
	defer r.Close()
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		started <- struct{}{}
		<-release
		return Execute(q)
	}
	// Fill the worker and the queue.
	go r.Do(context.Background(), testRequest(100))
	<-started
	go r.Do(context.Background(), testRequest(101))

	// A blocking submitter parks on the full queue...
	bctx, bcancel := context.WithCancel(context.Background())
	blockedErr := make(chan error, 1)
	go func() {
		_, _, err := r.DoWait(bctx, testRequest(102))
		blockedErr <- err
	}()
	// ...and a second waiter dedup-joins the parked job.
	wctx, wcancel := context.WithCancel(context.Background())
	joinedErr := make(chan error, 1)
	go func() {
		_, _, err := r.Do(wctx, testRequest(102))
		joinedErr <- err
	}()
	for r.Metrics().Joined == 0 {
		time.Sleep(time.Millisecond)
	}

	// Kill both: the submitter abandons the job; the joined waiter's
	// ctx is already dead when it sees the abandonment.
	wcancel()
	bcancel()
	if err := <-blockedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked submitter: %v", err)
	}
	if err := <-joinedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("joined waiter: %v", err)
	}

	requests := r.Metrics().Requests
	close(release)
	// Drain the two live jobs; no third execution may appear.
	for r.Metrics().JobsInFlight > 0 {
		time.Sleep(time.Millisecond)
	}
	if m := r.Metrics(); m.Requests != requests || m.Executions > 2 {
		t.Fatalf("cancelled waiter resubmitted: %+v", m)
	}
}

// TestBackoffDelayRange pins the retry backoff shape: exponential in
// the attempt, jittered in [d/2, 3d/2), never above the cap.
func TestBackoffDelayRange(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	for next := 2; next <= 10; next++ {
		d := base
		for i := 2; i < next && d < max; i++ {
			d *= 2
		}
		if d > max {
			d = max
		}
		for i := 0; i < 50; i++ {
			got := backoffDelay(next, base, max)
			if got < d/2 || got > max || (d < max && got >= d+d/2) {
				t.Fatalf("attempt %d: delay %v outside [%v, min(%v, %v))", next, got, d/2, d+d/2, max)
			}
		}
	}
}

// TestResumeStateJSONRoundTrip: the checkpoint payload the journal
// stores decodes back to the same state.
func TestResumeStateJSONRoundTrip(t *testing.T) {
	ticks := int64(42)
	rs := ResumeState{NextTrial: 2, Trials: []Trial{
		{Trial: 0, Rounds: 10, Consensus: true, Winner: 1},
		{Trial: 1, Rounds: 3.5, Winner: 2, Ticks: &ticks},
	}}
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeResume(data)
	if got == nil || got.NextTrial != 2 || len(got.Trials) != 2 || *got.Trials[1].Ticks != 42 {
		t.Fatalf("round trip: %+v", got)
	}
	if decodeResume([]byte("{broken")) != nil {
		t.Fatal("corrupt checkpoint not rejected")
	}
	if decodeResume(nil) != nil {
		t.Fatal("empty checkpoint not nil")
	}
}
