package service

import "container/list"

// lru is a small least-recently-used map from canonical config keys to
// cached responses. It is not goroutine-safe; the Runner guards it
// with its own mutex.
type lru struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *Response
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) get(key string) (*Response, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

func (c *lru) add(key string, resp *Response) {
	if c.cap < 1 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int { return c.order.Len() }
