package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"plurality/internal/stop"
)

// TestStopKeyFolding: a stop spec is part of a request's identity —
// folded into the canonical key — while an absent, null, or zero spec
// leaves the key exactly as it was before stop conditions existed.
func TestStopKeyFolding(t *testing.T) {
	base := Request{Protocol: "3-majority", N: 1000, K: 8, Seed: 1}
	stopped := base
	stopped.Stop = &stop.Spec{GammaAtLeast: 0.5}
	if base.Key() == stopped.Key() {
		t.Fatal("stop spec not folded into the config key")
	}
	// A JSON null stop is the absent spec.
	var fromJSON Request
	if err := json.Unmarshal([]byte(`{"protocol":"3-majority","n":1000,"k":8,"seed":1,"stop":null}`), &fromJSON); err != nil {
		t.Fatal(err)
	}
	if fromJSON.Key() != base.Key() {
		t.Fatal("explicit null stop should key like an absent one")
	}
	// The zero spec is the consensus-only default: inert, cleared by
	// Normalize, so it cannot split the cache key.
	inert := base
	inert.Stop = &stop.Spec{}
	if inert.Key() != base.Key() {
		t.Fatal("zero stop spec split the cache key")
	}
	if norm := inert.Normalize(); norm.Stop != nil {
		t.Fatal("zero stop spec survived Normalize")
	}
	// Normalize must not mutate the caller's spec in place.
	spec := stop.Spec{GammaAtLeast: 0.5}
	req := base
	req.Stop = &spec
	_ = req.Normalize()
	if spec.GammaAtLeast != 0.5 {
		t.Fatalf("Normalize mutated the caller's spec: %+v", spec)
	}
	// Different specs are different cache entries.
	other := base
	other.Stop = &stop.Spec{LiveAtMost: 2}
	if other.Key() == stopped.Key() {
		t.Fatal("distinct stop specs share a key")
	}
}

// TestStopValidation: invalid specs are user errors.
func TestStopValidation(t *testing.T) {
	for _, bad := range []stop.Spec{
		{GammaAtLeast: -1},
		{GammaAtLeast: 2},
		{LiveAtMost: -3},
		{AfterRounds: -1},
	} {
		bad := bad
		q := Request{Protocol: "3-majority", N: 1000, K: 8, Seed: 1, Stop: &bad}
		if err := q.Normalize().Validate(); err == nil {
			t.Errorf("stop spec %+v validated", bad)
		}
	}
}

// TestExecuteWithStop: for every mode, a gamma-stopped request ends
// strictly earlier than the full-consensus run of the same request,
// echoes the normalized stop spec, and keeps the per-trial shape.
func TestExecuteWithStop(t *testing.T) {
	reqs := map[string]Request{
		"sync":   {Protocol: "3-majority", N: 20_000, K: 16, Seed: 7, Trials: 2},
		"async":  {Protocol: "3-majority", N: 1_000, K: 16, Seed: 7, Trials: 2, Mode: ModeAsync},
		"graph":  {Protocol: "3-majority", N: 1_500, K: 16, Seed: 7, Trials: 2, Mode: ModeGraph, Topology: "complete"},
		"gossip": {Protocol: "3-majority", N: 256, K: 8, Seed: 7, Trials: 2, Mode: ModeGossip},
	}
	for name, req := range reqs {
		req := req
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			full, err := Execute(req)
			if err != nil {
				t.Fatal(err)
			}
			stopped := req
			stopped.Stop = &stop.Spec{GammaAtLeast: 0.5}
			resp, err := Execute(stopped)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Request.Stop == nil || resp.Request.Stop.GammaAtLeast != 0.5 {
				t.Fatalf("response does not echo the stop spec: %+v", resp.Request.Stop)
			}
			if resp.Key == full.Key {
				t.Fatal("stopped and full requests share a key")
			}
			for i, tr := range resp.Trials {
				ft := full.Trials[i]
				if tr.Rounds >= ft.Rounds {
					t.Fatalf("trial %d: stopped rounds %v not below full %v", i, tr.Rounds, ft.Rounds)
				}
				if tr.Consensus {
					t.Fatalf("trial %d: stopped trial reports consensus", i)
				}
			}
			// The per-trial JSON shape is unchanged: no new fields leak
			// into trials.
			data, err := json.Marshal(resp.Trials[0])
			if err != nil {
				t.Fatal(err)
			}
			fields := map[string]any{}
			if err := json.Unmarshal(data, &fields); err != nil {
				t.Fatal(err)
			}
			for f := range fields {
				switch f {
				case "trial", "rounds", "consensus", "winner", "ticks":
				default:
					t.Fatalf("unexpected trial field %q in %s", f, data)
				}
			}
		})
	}
}

// TestStopResponseBytesInvariantAcrossParallelism extends the
// determinism contract to stopped requests.
func TestStopResponseBytesInvariantAcrossParallelism(t *testing.T) {
	req := Request{Protocol: "3-majority", N: 5_000, K: 16, Seed: 3, Trials: 4,
		Stop: &stop.Spec{GammaAtLeast: 0.5}}
	var want []byte
	for _, parallelism := range []int{1, 3, 0} {
		resp, err := ExecuteParallel(req, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeJSONLine(&buf, resp); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("parallelism %d changed stopped-response bytes", parallelism)
		}
	}
	if !strings.Contains(string(want), `"stop":{"gamma_at_least":0.5}`) {
		t.Fatalf("canonical body lacks the stop spec: %s", want)
	}
}

// TestStopSweep: stop specs ride through sweep points (the base
// request's stop applies to every point, and point keys include it).
func TestStopSweep(t *testing.T) {
	rn := NewRunner(Options{QueueDepth: 16})
	defer rn.Close()
	sr := SweepRequest{
		Base: Request{
			Protocol: "3-majority", N: 5_000, Seed: 2, Trials: 2,
			Stop: &stop.Spec{GammaAtLeast: 0.5},
		},
		Sweep:  "k",
		Values: []int64{8, 16},
	}
	var points []SweepPoint
	if err := rn.Sweep(t.Context(), sr, func(p SweepPoint) error {
		points = append(points, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		q := sr.Base
		q.K = int(p.K)
		if p.Key != q.Key() {
			t.Fatalf("point key %s does not match stopped request key %s", p.Key, q.Key())
		}
		if p.Summary.Converged != 0 {
			t.Fatalf("stopped sweep point converged: %+v", p.Summary)
		}
	}
}
