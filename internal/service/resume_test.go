package service

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"plurality/internal/stop"
	"plurality/internal/trace"
)

// resumeCases covers all four modes, with tracing and a stop condition
// in the mix — the byte-identity property must hold for every request
// shape, not just the easy ones.
var resumeCases = map[string]Request{
	"sync": {Protocol: "3-majority", N: 1000, K: 6, Seed: 11, Trials: 6,
		Trace: &trace.Spec{}},
	"sync-stop": {Protocol: "3-majority", N: 1000, K: 6, Seed: 11, Trials: 6,
		Stop: &stop.Spec{GammaAtLeast: 0.5}},
	"async":  {Protocol: "voter", N: 300, K: 3, Seed: 5, Trials: 5, Mode: ModeAsync},
	"graph":  {Protocol: "3-majority", N: 256, K: 4, Seed: 5, Trials: 4, Mode: ModeGraph, Topology: "random-regular"},
	"gossip": {Protocol: "2-choices", N: 60, K: 3, Seed: 5, Trials: 4, Mode: ModeGossip},
}

func canonicalBytes(t *testing.T, resp *Response) []byte {
	t.Helper()
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// snapshotState deep-copies a ResumeState, as a durable journal append
// would by serializing it — the callback contract says the backing
// slices keep growing.
func snapshotState(rs ResumeState) ResumeState {
	cp := ResumeState{NextTrial: rs.NextTrial}
	cp.Trials = append(cp.Trials, rs.Trials...)
	cp.Trace = append(cp.Trace, rs.Trace...)
	return cp
}

// TestResumeByteIdentical is the checkpoint/resume property: for every
// mode, interrupting an execution at ANY checkpoint and resuming from
// it produces a Response byte-identical to the uninterrupted run.
func TestResumeByteIdentical(t *testing.T) {
	for name, req := range resumeCases {
		t.Run(name, func(t *testing.T) {
			want, err := ExecuteParallel(req, 3)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes := canonicalBytes(t, want)

			// Collect every per-trial checkpoint from a full run.
			var checkpoints []ResumeState
			resp, err := ExecuteResumable(nil, req, 3, nil, 1, func(rs ResumeState) {
				checkpoints = append(checkpoints, snapshotState(rs))
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := canonicalBytes(t, resp); string(got) != string(wantBytes) {
				t.Fatalf("checkpointing perturbed the response:\n got %s\nwant %s", got, wantBytes)
			}
			if len(checkpoints) == 0 {
				t.Fatal("no checkpoints recorded")
			}

			// Resume from every checkpoint; each must complete to the
			// same bytes.
			for _, cp := range checkpoints {
				cp := cp
				// Round-trip through JSON, as the journal does.
				data, err := json.Marshal(cp)
				if err != nil {
					t.Fatal(err)
				}
				var rs ResumeState
				if err := json.Unmarshal(data, &rs); err != nil {
					t.Fatal(err)
				}
				resumed, err := ExecuteResumable(nil, req, 2, &rs, 1, nil)
				if err != nil {
					t.Fatalf("resume from trial %d: %v", rs.NextTrial, err)
				}
				if got := canonicalBytes(t, resumed); string(got) != string(wantBytes) {
					t.Fatalf("resume from trial %d diverged:\n got %s\nwant %s", rs.NextTrial, got, wantBytes)
				}
			}
		})
	}
}

// TestResumeAfterCancellation interrupts an execution with a context —
// the drain/timeout path — and completes it from the last checkpoint.
func TestResumeAfterCancellation(t *testing.T) {
	req := Request{Protocol: "3-majority", N: 800, K: 5, Seed: 21, Trials: 8}
	want, err := ExecuteParallel(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := canonicalBytes(t, want)

	ctx, cancel := context.WithCancel(context.Background())
	var last *ResumeState
	resp, err := ExecuteResumable(ctx, req, 2, nil, 1, func(rs ResumeState) {
		cp := snapshotState(rs)
		last = &cp
		if rs.NextTrial >= 3 {
			cancel()
		}
	})
	if resp != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted execution: resp=%v err=%v", resp, err)
	}
	if last == nil || last.NextTrial < 3 {
		t.Fatalf("checkpoint before cancellation: %+v", last)
	}

	resumed, err := ExecuteResumable(nil, req, 2, last, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalBytes(t, resumed); string(got) != string(wantBytes) {
		t.Fatalf("post-cancel resume diverged:\n got %s\nwant %s", got, wantBytes)
	}
}

// TestResumeIgnoresInvalidCheckpoint: a corrupt checkpoint must not be
// trusted — the request runs from trial 0 and still completes
// correctly.
func TestResumeIgnoresInvalidCheckpoint(t *testing.T) {
	req := Request{Protocol: "voter", N: 200, K: 3, Seed: 4, Trials: 3}
	want, err := ExecuteParallel(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, rs := range map[string]*ResumeState{
		"mismatched-count": {NextTrial: 2, Trials: []Trial{{Trial: 0}}},
		"negative":         {NextTrial: -1},
		"past-the-end":     {NextTrial: 99, Trials: make([]Trial, 99)},
	} {
		got, err := ExecuteResumable(nil, req, 1, rs, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(canonicalBytes(t, got)) != string(canonicalBytes(t, want)) {
			t.Fatalf("%s: diverged", name)
		}
	}
}

// TestResumeCheckpointCadence: every=k checkpoints after every k-th
// completed trial and never after the final one (completion supersedes
// it).
func TestResumeCheckpointCadence(t *testing.T) {
	req := Request{Protocol: "voter", N: 200, K: 3, Seed: 4, Trials: 7}
	var nexts []int
	if _, err := ExecuteResumable(nil, req, 1, nil, 3, func(rs ResumeState) {
		nexts = append(nexts, rs.NextTrial)
	}); err != nil {
		t.Fatal(err)
	}
	if len(nexts) != 2 || nexts[0] != 3 || nexts[1] != 6 {
		t.Fatalf("checkpoints at %v, want [3 6]", nexts)
	}
}
