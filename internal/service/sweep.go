package service

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
)

// SweepRequest is the wire format of POST /sweep and the config layer
// behind consweep: one base request swept along one axis for one or
// more protocols.
type SweepRequest struct {
	// Base is the request template; its K or N (and Protocol) are
	// overridden per point. Base.Trials runs per point.
	Base Request `json:"base"`
	// Sweep names the swept axis: "k" or "n".
	Sweep string `json:"sweep"`
	// Values are the axis values, one point per value per protocol.
	Values []int64 `json:"values"`
	// Protocols are the dynamics to sweep; empty means just
	// Base.Protocol.
	Protocols []string `json:"protocols,omitempty"`
}

// SweepPoint is one NDJSON line of a sweep response: the point's
// coordinates plus the summary of its trials. Point.Key links back to
// the /run request that would produce the full per-trial detail.
type SweepPoint struct {
	// Sweep and Value locate the point on the swept axis.
	Sweep string `json:"sweep"`
	Value int64  `json:"value"`
	// Protocol, N and K are the point's resolved coordinates.
	Protocol string `json:"protocol"`
	N        int64  `json:"n"`
	K        int    `json:"k"`
	// Key is the canonical config key of the point's Request.
	Key string `json:"key"`
	// Summary aggregates the point's trials (median first, per the
	// sweep's purpose).
	Summary Summary `json:"summary"`
}

// Normalize canonicalises the sweep axis, protocols list and base
// request.
func (sr SweepRequest) Normalize() SweepRequest {
	sr.Sweep = strings.ToLower(strings.TrimSpace(sr.Sweep))
	protos := make([]string, 0, len(sr.Protocols))
	for _, p := range sr.Protocols {
		if p = strings.ToLower(strings.TrimSpace(p)); p != "" {
			protos = append(protos, p)
		}
	}
	sr.Protocols = protos
	sr.Base = sr.Base.Normalize()
	return sr
}

// Points expands the normalized sweep into its per-point Requests in
// canonical order (values outer, protocols inner). Every point is a
// plain Request, so sweeps share the runner's cache and dedup with
// /run: re-sweeping, or /run-ing one point of a finished sweep, is a
// cache hit.
func (sr SweepRequest) Points() ([]Request, error) {
	sr = sr.Normalize()
	if sr.Sweep != "k" && sr.Sweep != "n" {
		return nil, fmt.Errorf("service: sweep must be \"k\" or \"n\", got %q", sr.Sweep)
	}
	if len(sr.Values) == 0 {
		return nil, fmt.Errorf("service: sweep needs at least one value")
	}
	protos := sr.Protocols
	if len(protos) == 0 {
		protos = []string{sr.Base.Protocol}
	}
	if n := len(sr.Values) * len(protos); n > MaxSweepPoints {
		return nil, fmt.Errorf("service: sweep has %d points, max %d", n, MaxSweepPoints)
	}
	if sr.Base.Init == "counts" {
		return nil, fmt.Errorf("service: sweeps do not support init \"counts\" (the histogram fixes n and k)")
	}
	points := make([]Request, 0, len(sr.Values)*len(protos))
	for _, val := range sr.Values {
		for _, proto := range protos {
			q := sr.Base
			q.Protocol = proto
			switch sr.Sweep {
			case "k":
				q.K = int(val)
			case "n":
				q.N = val
			}
			q = q.Normalize()
			if err := q.Validate(); err != nil {
				return nil, fmt.Errorf("service: sweep point %s=%d protocol %s: %w", sr.Sweep, val, proto, err)
			}
			points = append(points, q)
		}
	}
	return points, nil
}

// point shapes a finished per-point response into its NDJSON line.
func (sr SweepRequest) point(q Request, resp *Response) SweepPoint {
	val := q.N
	if sr.Sweep == "k" {
		val = int64(q.K)
	}
	return SweepPoint{
		Sweep:    sr.Sweep,
		Value:    val,
		Protocol: q.Protocol,
		N:        q.N,
		K:        q.K,
		Key:      resp.Key,
		Summary:  resp.Summary,
	}
}

// Sweep executes the sweep's points on the runner's worker pool and
// calls emit once per point, in canonical point order, as soon as the
// point (and all points before it) finished. Shards block for queue
// space rather than failing with ErrBusy; ctx cancellation aborts the
// sweep. The emitted lines are byte-identical across server and CLI
// for the same sweep (see EncodeJSONLine).
//
// Fan-out is bounded: at most queue-depth points are submitted, in
// flight, or finished-but-unemitted at once, so a MaxSweepPoints-sized
// sweep neither registers thousands of jobs up front nor parks a
// goroutine per point, and a slow consumer (an NDJSON client reading
// at its own pace) backpressures the pool instead of the sweep racing
// ahead of it. An error — a failing point, emit failure, or ctx
// cancellation — stops the window, so at most a window's worth of
// trailing points ever executes past it.
func (r *Runner) Sweep(ctx context.Context, sr SweepRequest, emit func(SweepPoint) error) error {
	sr = sr.Normalize()
	points, err := sr.Points()
	if err != nil {
		return err
	}
	type outcome struct {
		resp *Response
		err  error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	window := r.opts.QueueDepth
	if window > len(points) {
		window = len(points)
	}
	if window < 1 {
		window = 1
	}
	results := make([]chan outcome, len(points))
	for i := range points {
		results[i] = make(chan outcome, 1)
	}
	// window submitters claim point indices in order, each gated on a
	// token the emit loop returns per consumed point — submission can
	// run at most window points ahead of emission. After a cancel the
	// submitters drain the remaining indices into their buffered slots
	// (DoWait would submit even on a dead ctx when the queue has
	// space), so nothing leaks and nothing more executes.
	var next int64 = -1
	tokens := make(chan struct{}, window)
	for w := 0; w < window; w++ {
		tokens <- struct{}{}
	}
	for w := 0; w < window; w++ {
		go func() {
			gated := true
			for {
				if gated {
					select {
					case <-tokens:
					case <-ctx.Done():
						gated = false
					}
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(points) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] <- outcome{err: err}
					continue
				}
				resp, _, err := r.DoWait(ctx, points[i])
				results[i] <- outcome{resp: resp, err: err}
			}
		}()
	}
	for i, q := range points {
		out := <-results[i]
		if out.err != nil {
			return out.err
		}
		if err := emit(sr.point(q, out.resp)); err != nil {
			return err
		}
		tokens <- struct{}{}
	}
	return nil
}
