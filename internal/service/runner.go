package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBusy is returned when the runner's admission queue is full; the
// server surfaces it as HTTP 429 with a Retry-After hint.
var ErrBusy = errors.New("service: queue full, retry later")

// errClosed is returned for submissions after Close.
var errClosed = errors.New("service: runner is closed")

// errAbandoned marks a job whose submitter gave up (ctx cancel or
// ErrBusy) before the job reached the queue. Callers that dedup-joined
// such a job resubmit instead of inheriting the stranger's failure.
var errAbandoned = errors.New("service: job abandoned before execution")

// Options configures a Runner. The zero value picks sensible defaults.
type Options struct {
	// Workers is the number of simulation workers (default
	// GOMAXPROCS). Each worker runs one request at a time; requests
	// additionally parallelise internally, see Parallelism.
	Workers int
	// Parallelism is the per-request parallelism budget handed to
	// ExecuteParallel (default GOMAXPROCS): every mode fans its trials
	// across up to that many goroutines, and a lone big graph job
	// shards its vertex loop across them instead of pinning one core.
	// Responses are byte-identical for every value — it trades
	// per-request latency against oversubscription when all Workers
	// are busy.
	Parallelism int
	// QueueDepth bounds the admission queue (default 64). A full queue
	// rejects non-blocking submissions with ErrBusy — the server's
	// backpressure signal.
	QueueDepth int
	// CacheSize bounds the LRU result cache in entries (default 256;
	// negative disables caching).
	CacheSize int
	// MaxJobs bounds how many finished jobs stay queryable via Job
	// (default 1024); the oldest finished jobs are evicted first.
	MaxJobs int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.CacheSize < 0 {
		o.CacheSize = 0
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	return o
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states, in order.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Job is one admitted request travelling through the worker pool.
// Submissions that dedupe onto an identical in-flight request share a
// single Job.
type Job struct {
	// ID is the runner-unique job identifier ("j" + counter).
	ID string
	// Key is the request's canonical config key.
	Key string

	req    Request
	runner *Runner
	done   chan struct{} // closed once status is Done or Failed

	// guarded by runner.mu
	status Status
	resp   *Response
	err    error
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info is a point-in-time snapshot of a job, shaped for the
// GET /jobs/{id} response.
type Info struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status Status `json:"status"`
	// Error is set when Status is StatusFailed.
	Error string `json:"error,omitempty"`
	// Result is set when Status is StatusDone.
	Result *Response `json:"result,omitempty"`
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Info {
	j.runner.mu.Lock()
	defer j.runner.mu.Unlock()
	info := Info{ID: j.ID, Key: j.Key, Status: j.status, Result: j.resp}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Metrics is a point-in-time snapshot of a Runner's counters, exposed
// by the server's GET /metrics.
type Metrics struct {
	// Requests counts admissions attempts (Do + Submit, after
	// validation).
	Requests uint64
	// CacheHits / CacheMisses count result-cache lookups.
	CacheHits   uint64
	CacheMisses uint64
	// Joined counts submissions deduped onto an in-flight job.
	Joined uint64
	// Rejected counts ErrBusy rejections (backpressure events).
	Rejected uint64
	// Executions counts simulations actually run by workers; a cache
	// hit serves a request without incrementing it.
	Executions uint64
	// QueueLen / QueueCap describe the admission queue right now.
	QueueLen int
	QueueCap int
	// Workers is the pool size.
	Workers int
	// Parallelism is the per-request parallelism budget.
	Parallelism int
	// CacheLen is the number of cached responses.
	CacheLen int
	// JobsInFlight is the number of queued or running jobs.
	JobsInFlight int
}

// Runner owns a bounded worker pool, the LRU result cache, and the job
// store. It is safe for concurrent use. Close it when done.
type Runner struct {
	opts  Options
	queue chan *Job
	wg    sync.WaitGroup
	// senders tracks in-flight queue sends so Close can safely close
	// the channel: admissions after closed=true are rejected, so once
	// senders drains no new send can race the close.
	senders sync.WaitGroup
	// exec runs one request at a parallelism budget; it is
	// ExecuteParallel except in tests.
	exec func(Request, int) (*Response, error)

	requests    atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	joined      atomic.Uint64
	rejected    atomic.Uint64
	executions  atomic.Uint64
	nextID      atomic.Uint64

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job // by ID, queued/running/finished (bounded)
	byKey    map[string]*Job // queued/running only, for dedup
	finished []string        // finished job IDs, oldest first
	inFlight int
	cache    *lru
}

// NewRunner starts the worker pool.
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	r := &Runner{
		opts:  opts,
		queue: make(chan *Job, opts.QueueDepth),
		exec:  ExecuteParallel,
		jobs:  make(map[string]*Job),
		byKey: make(map[string]*Job),
		cache: newLRU(opts.CacheSize),
	}
	for w := 0; w < opts.Workers; w++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// Close stops admissions, waits for queued and running jobs to finish,
// and releases the workers.
func (r *Runner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.senders.Wait()
	close(r.queue)
	r.wg.Wait()
}

// Do admits the request and blocks until its response is ready,
// served from cache when possible (the second return reports that).
// A full queue fails fast with ErrBusy; ctx cancellation abandons the
// wait (the job keeps running and lands in the cache).
func (r *Runner) Do(ctx context.Context, req Request) (*Response, bool, error) {
	return r.do(ctx, req, false)
}

// DoWait is Do with blocking admission: instead of ErrBusy it waits
// for queue space (or ctx cancellation). Sweeps use it so shards
// backpressure-block rather than fail mid-stream.
func (r *Runner) DoWait(ctx context.Context, req Request) (*Response, bool, error) {
	return r.do(ctx, req, true)
}

func (r *Runner) do(ctx context.Context, req Request, block bool) (*Response, bool, error) {
	for {
		job, cached, err := r.submit(ctx, req, block)
		if err != nil {
			return nil, false, err
		}
		if cached != nil {
			return cached, true, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-job.done:
		}
		r.mu.Lock()
		resp, jobErr := job.resp, job.err
		r.mu.Unlock()
		// We dedup-joined a job whose own submitter bailed out before
		// enqueueing it (their ctx died, or their non-blocking send hit
		// a full queue). That failure is theirs, not ours — resubmit.
		if errors.Is(jobErr, errAbandoned) {
			continue
		}
		return resp, false, jobErr
	}
}

// Submit admits the request without waiting. It returns either the
// cached response (nil job) or the in-flight Job to poll — which may
// be a pre-existing job for an identical request. A full queue returns
// ErrBusy.
func (r *Runner) Submit(req Request) (*Job, *Response, error) {
	return r.submit(context.Background(), req, false)
}

func (r *Runner) submit(ctx context.Context, req Request, block bool) (*Job, *Response, error) {
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	r.requests.Add(1)
	key := req.Key()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, nil, errClosed
	}
	if resp, ok := r.cache.get(key); ok {
		r.cacheHits.Add(1)
		r.mu.Unlock()
		return nil, resp, nil
	}
	if j, ok := r.byKey[key]; ok {
		r.joined.Add(1)
		r.mu.Unlock()
		return j, nil, nil
	}
	r.cacheMisses.Add(1)
	j := &Job{
		ID:     fmt.Sprintf("j%06d", r.nextID.Add(1)),
		Key:    key,
		req:    req,
		runner: r,
		done:   make(chan struct{}),
		status: StatusQueued,
	}
	r.jobs[j.ID] = j
	r.byKey[key] = j
	r.inFlight++
	r.senders.Add(1)
	r.mu.Unlock()
	defer r.senders.Done()

	if block {
		select {
		case r.queue <- j:
			return j, nil, nil
		case <-ctx.Done():
			r.abandon(j, ctx.Err())
			return nil, nil, ctx.Err()
		}
	}
	select {
	case r.queue <- j:
		return j, nil, nil
	default:
		r.rejected.Add(1)
		r.abandon(j, ErrBusy)
		return nil, nil, ErrBusy
	}
}

// abandon fails a job that was never enqueued. Its error wraps
// errAbandoned so dedup-joined waiters know to resubmit rather than
// surface the submitter's cause as their own; the job itself stays in
// the finished ring so a detach client that joined it can still poll
// /jobs/{id} and see the failure instead of a 404.
func (r *Runner) abandon(j *Job, cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byKey, j.Key)
	r.inFlight--
	j.status = StatusFailed
	j.err = fmt.Errorf("%w: %v", errAbandoned, cause)
	r.finish(j)
	close(j.done)
}

// finish moves a job into the bounded finished ring (caller holds mu).
func (r *Runner) finish(j *Job) {
	r.finished = append(r.finished, j.ID)
	for len(r.finished) > r.opts.MaxJobs {
		delete(r.jobs, r.finished[0])
		r.finished = r.finished[1:]
	}
}

// Job returns the job with the given ID, if it is still retained.
func (r *Runner) Job(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

func (r *Runner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.mu.Lock()
		j.status = StatusRunning
		r.mu.Unlock()

		resp, err := r.exec(j.req, r.opts.Parallelism)
		r.executions.Add(1)

		r.mu.Lock()
		j.resp, j.err = resp, err
		if err != nil {
			j.status = StatusFailed
		} else {
			j.status = StatusDone
			r.cache.add(j.Key, resp)
		}
		delete(r.byKey, j.Key)
		r.inFlight--
		r.finish(j)
		r.mu.Unlock()
		close(j.done)
	}
}

// Metrics returns a snapshot of the runner's counters.
func (r *Runner) Metrics() Metrics {
	r.mu.Lock()
	cacheLen, inFlight := r.cache.len(), r.inFlight
	r.mu.Unlock()
	return Metrics{
		Requests:     r.requests.Load(),
		CacheHits:    r.cacheHits.Load(),
		CacheMisses:  r.cacheMisses.Load(),
		Joined:       r.joined.Load(),
		Rejected:     r.rejected.Load(),
		Executions:   r.executions.Load(),
		QueueLen:     len(r.queue),
		QueueCap:     cap(r.queue),
		Workers:      r.opts.Workers,
		Parallelism:  r.opts.Parallelism,
		CacheLen:     cacheLen,
		JobsInFlight: inFlight,
	}
}
