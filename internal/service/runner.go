package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plurality/internal/durable"
)

// ErrBusy is returned when the runner's admission queue is full; the
// server surfaces it as HTTP 429 with a Retry-After hint.
var ErrBusy = errors.New("service: queue full, retry later")

// ErrDraining is returned for submissions while the runner drains for
// shutdown; the server surfaces it as HTTP 503.
var ErrDraining = errors.New("service: draining, not accepting work")

// errClosed is returned for submissions after Close.
var errClosed = errors.New("service: runner is closed")

// errAbandoned marks a job whose submitter gave up (ctx cancel or
// ErrBusy) before the job reached the queue. Callers that dedup-joined
// such a job resubmit instead of inheriting the stranger's failure.
var errAbandoned = errors.New("service: job abandoned before execution")

// ErrNotClustered is returned by a Remote whose cluster declines the
// request (nothing to shard, or the node prefers local execution); the
// runner then executes the job locally, exactly as without a Remote.
var ErrNotClustered = errors.New("service: request not executed on the cluster")

// Remote is the cluster face the runner executes through when
// Options.Remote is set (internal/cluster implements it). Both methods
// must honor ctx. The contract that makes remote and local execution
// interchangeable: a Remote's Response for a request is byte-identical
// (in canonical JSON encoding) to ExecuteParallel's for the same
// request — guaranteed by the frozen (seed, trial) stream contract,
// which makes cross-machine trial shards merge into the exact local
// trial sequence.
type Remote interface {
	// Lookup consults the fleet's shared result cache (consistent-hash
	// read-through) for a finished response under key.
	Lookup(ctx context.Context, key string) (*Response, bool)
	// Run executes the request on the cluster — coordinator shard
	// fan-out, worker execution, in-order merge — and returns the
	// canonical response. ErrNotClustered falls the job back to local
	// execution.
	Run(ctx context.Context, req Request) (*Response, error)
}

// Options configures a Runner. The zero value picks sensible defaults.
type Options struct {
	// Workers is the number of simulation workers (default
	// GOMAXPROCS). Each worker runs one request at a time; requests
	// additionally parallelise internally, see Parallelism.
	Workers int
	// Parallelism is the per-request parallelism budget handed to
	// ExecuteParallel (default GOMAXPROCS): every mode fans its trials
	// across up to that many goroutines, and a lone big graph job
	// shards its vertex loop across them instead of pinning one core.
	// Responses are byte-identical for every value — it trades
	// per-request latency against oversubscription when all Workers
	// are busy.
	Parallelism int
	// QueueDepth bounds the admission queue (default 64). A full queue
	// rejects non-blocking submissions with ErrBusy — the server's
	// backpressure signal.
	QueueDepth int
	// CacheSize bounds the LRU result cache in entries (default 256;
	// negative disables caching).
	CacheSize int
	// MaxJobs bounds how many finished jobs stay queryable via Job
	// (default 1024); the oldest finished jobs are evicted first.
	MaxJobs int
	// Store, when non-nil, makes jobs durable: admissions, attempts,
	// checkpoints, completions and terminal failures are journaled;
	// completed results are served from disk across restarts; jobs the
	// store replayed as interrupted are re-queued at construction and
	// resume from their last checkpoint. A nil Store keeps the runner
	// fully in-memory, byte-identical to the pre-durability behavior.
	Store *durable.Store
	// MaxAttempts bounds execution attempts per job within this process
	// (default 1 — no retries). A failing attempt is retried with
	// capped exponential backoff, resuming from the job's last
	// checkpoint, until the budget is spent; then the job fails
	// terminally (journaled, never re-queued by a restart).
	MaxAttempts int
	// JobTimeout, when positive, bounds each execution attempt. A timed
	// out attempt counts against MaxAttempts; because execution resumes
	// from the last checkpoint, a retried timeout continues rather than
	// starts over.
	JobTimeout time.Duration
	// CheckpointEvery is the checkpoint cadence in completed trials
	// (default 1 — checkpoint after every trial).
	CheckpointEvery int
	// RetryBaseDelay and RetryMaxDelay shape the retry backoff: attempt
	// n sleeps base·2^(n-1) jittered by ±50%, capped at max (defaults
	// 100ms and 5s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// Remote, when non-nil, executes simulation jobs through the
	// cluster instead of the local engines: each job first consults the
	// fleet's shared result cache (Lookup), then runs via coordinated
	// shard fan-out (Run). Waiters — including clients dedup-joined
	// onto the job — observe a cluster-remote completion exactly as a
	// local one: same finishJob path, same cache insertion, same
	// response bytes. Analytic-tier jobs always run locally (closed
	// form, microseconds — not worth a network hop).
	Remote Remote
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.CacheSize < 0 {
		o.CacheSize = 0
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 100 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = 5 * time.Second
	}
	return o
}

// backoffDelay is the sleep before retry attempt next (2-based: the
// sleep after the first failure is backoffDelay(2)): base·2^(next-2)
// jittered uniformly in [½, 1½), capped at max. The jitter decorrelates
// retry storms after a shared fault.
func backoffDelay(next int, base, max time.Duration) time.Duration {
	d := base
	for i := 2; i < next && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jittered := d/2 + time.Duration(rand.Int64N(int64(d)))
	if jittered > max {
		jittered = max
	}
	return jittered
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states, in order.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Job is one admitted request travelling through the worker pool.
// Submissions that dedupe onto an identical in-flight request share a
// single Job.
type Job struct {
	// ID is the runner-unique job identifier ("j" + counter).
	ID string
	// Key is the request's canonical config key.
	Key string

	req    Request
	runner *Runner
	done   chan struct{} // closed once status is Done or Failed

	// guarded by runner.mu
	status Status
	resp   *Response
	err    error
	// attempts is the total started-attempt count, including attempts
	// from before a crash (replayed from the journal).
	attempts int
	// resumeData is the latest checkpoint's JSON (a ResumeState);
	// retries and restarts resume from it instead of re-running
	// completed trials.
	resumeData []byte
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info is a point-in-time snapshot of a job, shaped for the
// GET /jobs/{id} response.
type Info struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status Status `json:"status"`
	// Error is set when Status is StatusFailed.
	Error string `json:"error,omitempty"`
	// Result is set when Status is StatusDone.
	Result *Response `json:"result,omitempty"`
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Info {
	j.runner.mu.Lock()
	defer j.runner.mu.Unlock()
	info := Info{ID: j.ID, Key: j.Key, Status: j.status, Result: j.resp}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Metrics is a point-in-time snapshot of a Runner's counters, exposed
// by the server's GET /metrics.
type Metrics struct {
	// Requests counts admissions attempts (Do + Submit, after
	// validation).
	Requests uint64
	// Analytic counts admissions dispatched to the analytic answer
	// tier (a subset of Requests; cache hits included).
	Analytic uint64
	// CacheHits / CacheMisses count result-cache lookups.
	CacheHits   uint64
	CacheMisses uint64
	// Joined counts submissions deduped onto an in-flight job.
	Joined uint64
	// Rejected counts ErrBusy rejections (backpressure events).
	Rejected uint64
	// Executions counts simulations actually run by workers; a cache
	// hit serves a request without incrementing it.
	Executions uint64
	// Retries counts execution attempts beyond each job's first.
	Retries uint64
	// Recovered counts jobs re-queued from the durable journal at
	// startup.
	Recovered uint64
	// DiskHits counts results served from the durable result cache
	// after an LRU miss.
	DiskHits uint64
	// ReplaySeconds is how long the startup journal replay took (0
	// without a store).
	ReplaySeconds float64
	// QueueLen / QueueCap describe the admission queue right now.
	QueueLen int
	QueueCap int
	// Workers is the pool size.
	Workers int
	// Parallelism is the per-request parallelism budget.
	Parallelism int
	// CacheLen is the number of cached responses.
	CacheLen int
	// JobsInFlight is the number of queued or running jobs.
	JobsInFlight int
	// DrainInFlight is the number of jobs still in flight while the
	// runner drains (0 when not draining).
	DrainInFlight int
}

// Runner owns a bounded worker pool, the LRU result cache, the job
// store and (optionally) the durable journal. It is safe for
// concurrent use. Close (or Drain) it when done.
type Runner struct {
	opts  Options
	queue chan *Job
	wg    sync.WaitGroup
	// senders tracks in-flight queue sends so Close can safely close
	// the channel: admissions after closed=true are rejected, so once
	// senders drains no new send can race the close.
	senders sync.WaitGroup
	// exec runs one request with checkpoint/resume support; it is
	// ExecuteResumable except in tests.
	exec func(ctx context.Context, q Request, parallelism int, resume *ResumeState, every int, onCheckpoint func(ResumeState)) (*Response, error)
	// baseCtx is cancelled by Drain: running jobs observe it at trial
	// boundaries, checkpoint, and stop without a terminal record.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	requests    atomic.Uint64
	analytic    atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	joined      atomic.Uint64
	rejected    atomic.Uint64
	executions  atomic.Uint64
	retries     atomic.Uint64
	recovered   atomic.Uint64
	diskHits    atomic.Uint64
	nextID      atomic.Uint64
	replay      time.Duration

	mu       sync.Mutex
	closed   bool
	draining bool
	jobs     map[string]*Job // by ID, queued/running/finished (bounded)
	byKey    map[string]*Job // queued/running only, for dedup
	finished []string        // finished job IDs, oldest first
	inFlight int
	cache    *lru
}

// NewRunner starts the worker pool. With Options.Store set it also
// re-queues every job the journal replayed as interrupted — each
// resumes from its last checkpoint — before any new admission can
// race them (their dedup entries are registered synchronously, so an
// early client submitting the same key joins the recovered job).
func NewRunner(opts Options) *Runner {
	opts = opts.withDefaults()
	baseCtx, cancelBase := context.WithCancel(context.Background())
	r := &Runner{
		opts:       opts,
		queue:      make(chan *Job, opts.QueueDepth),
		exec:       ExecuteResumable,
		baseCtx:    baseCtx,
		cancelBase: cancelBase,
		jobs:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		cache:      newLRU(opts.CacheSize),
	}
	for w := 0; w < opts.Workers; w++ {
		r.wg.Add(1)
		go r.worker()
	}
	if opts.Store != nil {
		r.requeueRecovered(opts.Store.Recovered())
	}
	return r
}

// requeueRecovered turns the journal's interrupted jobs back into
// queued Jobs. Registration is synchronous (dedup works immediately);
// the queue sends happen on a senders-registered goroutine so a deep
// backlog cannot deadlock construction against a bounded queue.
func (r *Runner) requeueRecovered(rec durable.Recovery) {
	r.replay = rec.Elapsed
	var requeued []*Job
	r.mu.Lock()
	for _, st := range rec.Interrupted {
		var req Request
		if err := json.Unmarshal(st.Request, &req); err != nil {
			r.mu.Unlock()
			r.opts.Store.Failed(st.Key, fmt.Sprintf("service: recovered request unreadable: %v", err))
			r.mu.Lock()
			continue
		}
		req = req.Normalize()
		if err := req.Validate(); err != nil {
			r.mu.Unlock()
			r.opts.Store.Failed(st.Key, fmt.Sprintf("service: recovered request invalid: %v", err))
			r.mu.Lock()
			continue
		}
		j := &Job{
			ID:         fmt.Sprintf("j%06d", r.nextID.Add(1)),
			Key:        st.Key,
			req:        req,
			runner:     r,
			done:       make(chan struct{}),
			status:     StatusQueued,
			attempts:   st.Attempts,
			resumeData: st.Checkpoint,
		}
		r.jobs[j.ID] = j
		r.byKey[j.Key] = j
		r.inFlight++
		requeued = append(requeued, j)
	}
	r.mu.Unlock()
	r.recovered.Add(uint64(len(requeued)))
	if len(requeued) == 0 {
		return
	}
	r.senders.Add(1)
	go func() {
		defer r.senders.Done()
		for _, j := range requeued {
			r.queue <- j
		}
	}()
}

// Close stops admissions, waits for queued and running jobs to finish,
// and releases the workers.
func (r *Runner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.senders.Wait()
	close(r.queue)
	r.wg.Wait()
}

// Drain is the graceful-shutdown path: new submissions fail with
// ErrDraining, running jobs are cancelled cooperatively — they
// checkpoint and stop at the next trial boundary, journaled as
// interrupted (not failed) so a restart re-queues and resumes them —
// and Drain returns once every job has wound down, or with ctx's error
// if the deadline expires first (workers are then abandoned, which is
// safe: the journal already has their checkpoints).
func (r *Runner) Drain(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.draining = true
	r.mu.Unlock()
	r.cancelBase()
	done := make(chan struct{})
	go func() {
		r.senders.Wait()
		close(r.queue)
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runner) isDraining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Do admits the request and blocks until its response is ready,
// served from cache when possible (the second return reports that).
// A full queue fails fast with ErrBusy; ctx cancellation abandons the
// wait (the job keeps running and lands in the cache).
func (r *Runner) Do(ctx context.Context, req Request) (*Response, bool, error) {
	return r.do(ctx, req, false)
}

// DoWait is Do with blocking admission: instead of ErrBusy it waits
// for queue space (or ctx cancellation). Sweeps use it so shards
// backpressure-block rather than fail mid-stream.
func (r *Runner) DoWait(ctx context.Context, req Request) (*Response, bool, error) {
	return r.do(ctx, req, true)
}

func (r *Runner) do(ctx context.Context, req Request, block bool) (*Response, bool, error) {
	for {
		// A dead ctx must not admit fresh work: without this check a
		// waiter that was cancelled while dedup-joined to a job that
		// was then abandoned would resubmit a brand-new job with no one
		// left to consume it.
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		job, cached, err := r.submit(ctx, req, block)
		if err != nil {
			return nil, false, err
		}
		if cached != nil {
			return cached, true, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-job.done:
		}
		r.mu.Lock()
		resp, jobErr := job.resp, job.err
		r.mu.Unlock()
		// We dedup-joined a job whose own submitter bailed out before
		// enqueueing it (their ctx died, or their non-blocking send hit
		// a full queue). That failure is theirs, not ours — resubmit.
		if errors.Is(jobErr, errAbandoned) {
			continue
		}
		return resp, false, jobErr
	}
}

// Submit admits the request without waiting. It returns either the
// cached response (nil job) or the in-flight Job to poll — which may
// be a pre-existing job for an identical request. A full queue returns
// ErrBusy.
func (r *Runner) Submit(req Request) (*Job, *Response, error) {
	return r.submit(context.Background(), req, false)
}

func (r *Runner) submit(ctx context.Context, req Request, block bool) (*Job, *Response, error) {
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	r.requests.Add(1)
	if req.Tier == TierAnalytic {
		r.analytic.Add(1)
	}
	key := req.Key()

	r.mu.Lock()
	if r.closed {
		draining := r.draining
		r.mu.Unlock()
		if draining {
			return nil, nil, ErrDraining
		}
		return nil, nil, errClosed
	}
	if resp, ok := r.cache.get(key); ok {
		r.cacheHits.Add(1)
		r.mu.Unlock()
		return nil, resp, nil
	}
	if j, ok := r.byKey[key]; ok {
		r.joined.Add(1)
		r.mu.Unlock()
		return j, nil, nil
	}
	// LRU miss: the durable result cache may still hold the key from a
	// previous run (or a previous process).
	if r.opts.Store != nil {
		if data, ok := r.opts.Store.Result(key); ok {
			var resp Response
			if err := json.Unmarshal(data, &resp); err == nil {
				r.diskHits.Add(1)
				r.cacheHits.Add(1)
				r.cache.add(key, &resp)
				r.mu.Unlock()
				return nil, &resp, nil
			}
			// An unreadable result file falls through to re-execution.
		}
	}
	r.cacheMisses.Add(1)
	j := &Job{
		ID:     fmt.Sprintf("j%06d", r.nextID.Add(1)),
		Key:    key,
		req:    req,
		runner: r,
		done:   make(chan struct{}),
		status: StatusQueued,
	}
	r.jobs[j.ID] = j
	r.byKey[key] = j
	r.inFlight++
	r.senders.Add(1)
	r.mu.Unlock()
	defer r.senders.Done()

	if r.opts.Store != nil {
		if data, err := json.Marshal(req); err == nil {
			// Best-effort: a failed journal append degrades durability
			// for this job, not availability.
			_ = r.opts.Store.Submitted(key, data)
		}
	}

	if block {
		select {
		case r.queue <- j:
			return j, nil, nil
		case <-ctx.Done():
			r.abandon(j, ctx.Err())
			return nil, nil, ctx.Err()
		}
	}
	select {
	case r.queue <- j:
		return j, nil, nil
	default:
		r.rejected.Add(1)
		r.abandon(j, ErrBusy)
		return nil, nil, ErrBusy
	}
}

// abandon fails a job that was never enqueued. Its error wraps
// errAbandoned so dedup-joined waiters know to resubmit rather than
// surface the submitter's cause as their own; the job itself stays in
// the finished ring so a detach client that joined it can still poll
// /jobs/{id} and see the failure instead of a 404.
func (r *Runner) abandon(j *Job, cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byKey, j.Key)
	r.inFlight--
	j.status = StatusFailed
	j.err = fmt.Errorf("%w: %v", errAbandoned, cause)
	r.finish(j)
	close(j.done)
}

// finish moves a job into the bounded finished ring (caller holds mu).
func (r *Runner) finish(j *Job) {
	r.finished = append(r.finished, j.ID)
	for len(r.finished) > r.opts.MaxJobs {
		delete(r.jobs, r.finished[0])
		r.finished = r.finished[1:]
	}
}

// Job returns the job with the given ID, if it is still retained.
func (r *Runner) Job(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

func (r *Runner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.runJob(j)
	}
}

// runJob executes one job through its attempt budget: each attempt
// resumes from the latest checkpoint, failures back off and retry, a
// drain cancellation ends the job as interrupted (resumable on
// restart), and exhaustion of the budget is a terminal, journaled
// failure.
func (r *Runner) runJob(j *Job) {
	r.mu.Lock()
	j.status = StatusRunning
	attempts := j.attempts
	r.mu.Unlock()

	processAttempts := 0
	for {
		attempts++
		processAttempts++
		r.mu.Lock()
		j.attempts = attempts
		resume := decodeResume(j.resumeData)
		r.mu.Unlock()
		if r.opts.Store != nil {
			_ = r.opts.Store.Started(j.Key, attempts)
		}

		ctx := r.baseCtx
		cancel := context.CancelFunc(func() {})
		if r.opts.JobTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, r.opts.JobTimeout)
		}
		resp, err := func() (resp *Response, err error) {
			// The execution path contains trial panics on its own; this
			// recover is the worker's last line — whatever escapes fails
			// the job, never the process.
			defer func() {
				if p := recover(); p != nil {
					resp, err = nil, fmt.Errorf("service: job %s panicked: %v", j.ID, p)
				}
			}()
			if remote := r.opts.Remote; remote != nil && j.req.Tier != TierAnalytic {
				// A peer may already hold the finished result (computed
				// on another node of the fleet); serving it completes
				// this job — and every dedup-joined waiter — without a
				// recompute.
				if pr, ok := remote.Lookup(ctx, j.Key); ok {
					return pr, nil
				}
				pr, rerr := remote.Run(ctx, j.req)
				if !errors.Is(rerr, ErrNotClustered) {
					return pr, rerr
				}
				// Cluster declined: fall through to local execution.
			}
			r.executions.Add(1)
			return r.exec(ctx, j.req, r.opts.Parallelism, resume,
				r.opts.CheckpointEvery, func(rs ResumeState) { r.checkpoint(j, rs) })
		}()
		cancel()

		switch {
		case err == nil:
			r.finishJob(j, resp, nil, false)
			return
		case errors.Is(err, context.Canceled) && r.isDraining():
			// Interrupted, not failed: the journal keeps the job's
			// submitted/checkpoint records, so a restart re-queues it
			// and resumes from the last checkpoint.
			r.finishJob(j, nil, fmt.Errorf("%w: job interrupted", ErrDraining), false)
			return
		case processAttempts >= r.opts.MaxAttempts:
			if errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("service: job timed out after %s on attempt %d: %w", r.opts.JobTimeout, attempts, err)
			}
			r.finishJob(j, nil, err, true)
			return
		}
		r.retries.Add(1)
		if !r.sleepBackoff(processAttempts + 1) {
			r.finishJob(j, nil, fmt.Errorf("%w: job interrupted", ErrDraining), false)
			return
		}
	}
}

// sleepBackoff sleeps the pre-retry backoff; it returns false if the
// runner started draining mid-sleep (the retry is abandoned so the
// restart can pick the job up instead).
func (r *Runner) sleepBackoff(next int) bool {
	t := time.NewTimer(backoffDelay(next, r.opts.RetryBaseDelay, r.opts.RetryMaxDelay))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.baseCtx.Done():
		return false
	}
}

// checkpoint records resumable progress: in memory for in-process
// retries, and in the journal (when durable) for restarts. Serialized
// here, inside the callback, because the state's backing slices keep
// growing after it returns.
func (r *Runner) checkpoint(j *Job, rs ResumeState) {
	data, err := json.Marshal(rs)
	if err != nil {
		return
	}
	r.mu.Lock()
	j.resumeData = data
	r.mu.Unlock()
	if r.opts.Store != nil {
		_ = r.opts.Store.Checkpoint(j.Key, data)
	}
}

// decodeResume parses a checkpoint payload, nil when absent or
// unreadable (the job then simply runs from trial 0).
func decodeResume(data []byte) *ResumeState {
	if len(data) == 0 {
		return nil
	}
	var rs ResumeState
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil
	}
	return &rs
}

// finishJob settles a job: result durably published (when completed
// and durable — result bytes before the completion record, so a crash
// between the two re-runs the job instead of losing the result),
// terminal failures journaled, waiters released.
func (r *Runner) finishJob(j *Job, resp *Response, err error, terminal bool) {
	if r.opts.Store != nil {
		if err == nil {
			if data, merr := json.Marshal(resp); merr == nil {
				_ = r.opts.Store.Completed(j.Key, data)
			}
		} else if terminal {
			_ = r.opts.Store.Failed(j.Key, err.Error())
		}
	}
	r.mu.Lock()
	j.resp, j.err = resp, err
	if err != nil {
		j.status = StatusFailed
	} else {
		j.status = StatusDone
		r.cache.add(j.Key, resp)
	}
	delete(r.byKey, j.Key)
	r.inFlight--
	r.finish(j)
	r.mu.Unlock()
	close(j.done)
}

// Metrics returns a snapshot of the runner's counters.
func (r *Runner) Metrics() Metrics {
	r.mu.Lock()
	cacheLen, inFlight := r.cache.len(), r.inFlight
	drainInFlight := 0
	if r.draining {
		drainInFlight = inFlight
	}
	r.mu.Unlock()
	return Metrics{
		Requests:      r.requests.Load(),
		Analytic:      r.analytic.Load(),
		CacheHits:     r.cacheHits.Load(),
		CacheMisses:   r.cacheMisses.Load(),
		Joined:        r.joined.Load(),
		Rejected:      r.rejected.Load(),
		Executions:    r.executions.Load(),
		Retries:       r.retries.Load(),
		Recovered:     r.recovered.Load(),
		DiskHits:      r.diskHits.Load(),
		ReplaySeconds: r.replay.Seconds(),
		QueueLen:      len(r.queue),
		QueueCap:      cap(r.queue),
		Workers:       r.opts.Workers,
		Parallelism:   r.opts.Parallelism,
		CacheLen:      cacheLen,
		JobsInFlight:  inFlight,
		DrainInFlight: drainInFlight,
	}
}
