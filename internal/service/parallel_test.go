package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"plurality"
	"plurality/internal/rng"
)

// parallelTestRequests is one representative request per execution
// mode, shaped so every mode crosses its interesting internal
// boundaries (graph n is large enough for several vertex shards).
func parallelTestRequests() map[string]Request {
	return map[string]Request{
		"sync":   {Protocol: "3-majority", N: 2000, K: 8, Seed: 7, Trials: 6},
		"async":  {Protocol: "2-choices", N: 400, K: 3, Seed: 7, Trials: 6, Mode: ModeAsync},
		"graph":  {Protocol: "3-majority", N: 40_000, K: 4, Seed: 7, Trials: 3, Mode: ModeGraph, Topology: "complete"},
		"gossip": {Protocol: "voter", N: 80, K: 3, Seed: 7, Trials: 6, Mode: ModeGossip},
	}
}

// TestResponseBytesInvariantAcrossParallelism pins the tentpole
// determinism contract: for every mode, the canonical Response JSON is
// byte-identical whether a request runs serially, at an awkward
// worker count, or at full GOMAXPROCS — parallelism is an execution
// hint, never an input.
func TestResponseBytesInvariantAcrossParallelism(t *testing.T) {
	for name, req := range parallelTestRequests() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var want []byte
			for _, parallelism := range []int{1, 3, 0} {
				resp, err := ExecuteParallel(req, parallelism)
				if err != nil {
					t.Fatalf("parallelism %d: %v", parallelism, err)
				}
				var buf bytes.Buffer
				if err := EncodeJSONLine(&buf, resp); err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = buf.Bytes()
					continue
				}
				if !bytes.Equal(want, buf.Bytes()) {
					t.Fatalf("parallelism %d changed the response bytes:\n%s\n%s", parallelism, want, buf.Bytes())
				}
			}
		})
	}
}

// TestModeTrialSeedEquivalence pins the structural half of the seed
// contract: trial i of an async/graph/gossip request reproduces the
// legacy façade entry point called directly with the façade seed
// rng.DeriveSeed(Request.Seed, i) — the derivation every recorded
// Response depends on. The legacy configs are built by hand, so this
// cross-checks the unified Request → Experiment mapping against an
// independent construction.
func TestModeTrialSeedEquivalence(t *testing.T) {
	reqs := parallelTestRequests()

	async := reqs["async"]
	asyncResp, err := Execute(async)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range asyncResp.Trials {
		res, err := plurality.RunAsync(plurality.Config{
			N:        async.N,
			Protocol: plurality.TwoChoices(),
			Init:     plurality.Balanced(async.K),
			Seed:     rng.DeriveSeed(async.Seed, uint64(i)),
		}, async.MaxTicks)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Rounds != res.Rounds || tr.Winner != res.Winner || tr.Consensus != res.Consensus || *tr.Ticks != res.Ticks {
			t.Fatalf("async trial %d %+v does not match façade %+v", i, tr, res)
		}
	}

	graph := reqs["graph"]
	graphResp, err := Execute(graph)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range graphResp.Trials {
		res, err := plurality.RunOnGraph(plurality.GraphConfig{
			N:        int(graph.N),
			Topology: plurality.CompleteTopology(),
			Protocol: plurality.ThreeMajority(),
			Init:     plurality.Balanced(graph.K),
			Seed:     rng.DeriveSeed(graph.Seed, uint64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Rounds != float64(res.Rounds) || tr.Winner != res.Winner || tr.Consensus != res.Consensus {
			t.Fatalf("graph trial %d %+v does not match façade %+v", i, tr, res)
		}
	}

	gossip := reqs["gossip"]
	gossipResp, err := Execute(gossip)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range gossipResp.Trials {
		res, err := plurality.RunGossip(plurality.GossipConfig{
			N:        int(gossip.N),
			Protocol: plurality.Voter(),
			Init:     plurality.Balanced(gossip.K),
			Seed:     rng.DeriveSeed(gossip.Seed, uint64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Rounds != float64(res.Rounds) || tr.Winner != res.Winner || tr.Consensus != res.Consensus {
			t.Fatalf("gossip trial %d %+v does not match façade %+v", i, tr, res)
		}
	}
}

// TestGraphTopologyParamBounded: a user-controlled degree cannot push
// the O(n·degree) adjacency past MaxGraphEdges — the request is
// rejected at validation, before any allocation.
func TestGraphTopologyParamBounded(t *testing.T) {
	huge := Request{Protocol: "3-majority", N: MaxGraphN, K: 2, Mode: ModeGraph,
		Topology: "ring", TopologyParam: 7_999_999}
	if err := huge.Normalize().Validate(); err == nil {
		t.Fatal("ring radius implying ~10^14 edge slots validated")
	}
	huge.Topology, huge.TopologyParam = "random-regular", 1_000_000
	if err := huge.Normalize().Validate(); err == nil {
		t.Fatal("random-regular degree 10^6 at MaxGraphN validated")
	}
	// A param near MaxInt64 must be range-rejected before the
	// degree·n product (which would overflow and wrap past the cap).
	overflow := Request{Protocol: "3-majority", N: 1000, K: 2, Mode: ModeGraph,
		Topology: "ring", TopologyParam: 1 << 62}
	if err := overflow.Normalize().Validate(); err == nil {
		t.Fatal("overflowing topology_param validated")
	}
	// Defaults and modest parameters stay valid.
	ok := Request{Protocol: "3-majority", N: MaxGraphN, K: 2, Mode: ModeGraph,
		Topology: "random-regular", TopologyParam: 8}
	if err := ok.Normalize().Validate(); err != nil {
		t.Fatalf("degree-8 regular at MaxGraphN rejected: %v", err)
	}
	ringOK := Request{Protocol: "3-majority", N: 100_000, K: 2, Mode: ModeGraph,
		Topology: "ring", TopologyParam: 100}
	if err := ringOK.Normalize().Validate(); err != nil {
		t.Fatalf("radius-100 ring at n=1e5 rejected: %v", err)
	}
	cube := Request{Protocol: "3-majority", N: 1 << 23, K: 2, Mode: ModeGraph,
		Topology: "hypercube"}
	if err := cube.Normalize().Validate(); err != nil {
		t.Fatalf("dim-23 hypercube (the densest default within the n cap) rejected: %v", err)
	}
}

// TestAsyncTicksUniformShape pins the Ticks JSON fix: every async
// trial carries an explicit "ticks" field — including a run that
// converges at tick 0, which omitempty used to drop, breaking the
// uniform trial shape of the canonical encoding — and no other mode
// emits one.
func TestAsyncTicksUniformShape(t *testing.T) {
	// A single-opinion init is in consensus before the first tick.
	resp, err := Execute(Request{Protocol: "3-majority", N: 50, K: 1, Seed: 1, Mode: ModeAsync})
	if err != nil {
		t.Fatal(err)
	}
	tr := resp.Trials[0]
	if !tr.Consensus || tr.Ticks == nil || *tr.Ticks != 0 {
		t.Fatalf("single-opinion async trial = %+v, want consensus at tick 0", tr)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ticks":0`) {
		t.Fatalf("tick-0 async trial JSON %s lacks explicit \"ticks\":0", data)
	}

	sync, err := Execute(Request{Protocol: "3-majority", N: 50, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(sync.Trials[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "ticks") {
		t.Fatalf("sync trial JSON %s has a ticks field", data)
	}
}
