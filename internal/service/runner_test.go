package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func testRequest(seed uint64) Request {
	return Request{Protocol: "3-majority", N: 1000, K: 4, Seed: seed, Trials: 2}
}

// TestDoCachesResults is the cache-hit acceptance test: a repeated
// request is served from cache (no second execution) with a
// byte-identical body.
func TestDoCachesResults(t *testing.T) {
	r := NewRunner(Options{Workers: 2})
	defer r.Close()
	ctx := context.Background()

	cold, cached, err := r.Do(ctx, testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first request reported as cached")
	}
	if got := r.Metrics().Executions; got != 1 {
		t.Fatalf("executions after cold run = %d", got)
	}

	warm, cached, err := r.Do(ctx, testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("repeat request not served from cache")
	}
	if got := r.Metrics().Executions; got != 1 {
		t.Fatalf("cache hit re-simulated: executions = %d", got)
	}

	var a, b bytes.Buffer
	if err := EncodeJSONLine(&a, cold); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSONLine(&b, warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("cold and cached bodies differ:\n%s\n%s", a.Bytes(), b.Bytes())
	}

	m := r.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.Requests != 2 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestDoDedupesInFlight: two concurrent identical requests run once.
func TestDoDedupesInFlight(t *testing.T) {
	r := NewRunner(Options{Workers: 2, QueueDepth: 4})
	defer r.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		close(started)
		<-release
		return Execute(q)
	}

	ctx := context.Background()
	type out struct {
		resp *Response
		err  error
	}
	results := make(chan out, 2)
	go func() {
		resp, _, err := r.Do(ctx, testRequest(7))
		results <- out{resp, err}
	}()
	<-started // first request is running
	go func() {
		resp, _, err := r.Do(ctx, testRequest(7))
		results <- out{resp, err}
	}()
	// Give the second submission time to join before releasing.
	time.Sleep(10 * time.Millisecond)
	close(release)

	a, b := <-results, <-results
	if a.err != nil || b.err != nil {
		t.Fatal(a.err, b.err)
	}
	if a.resp != b.resp {
		t.Fatal("joined request got a different response object")
	}
	m := r.Metrics()
	if m.Executions != 1 || m.Joined != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestDoQueueFull: with one busy worker and a one-slot queue, a third
// distinct request is rejected with ErrBusy.
func TestDoQueueFull(t *testing.T) {
	r := NewRunner(Options{Workers: 1, QueueDepth: 1})
	defer r.Close()
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		started <- struct{}{}
		<-release
		return &Response{Key: q.Key()}, nil
	}
	defer close(release)

	ctx := context.Background()
	go r.Do(ctx, testRequest(1)) // occupies the worker
	<-started
	if _, _, err := r.Submit(testRequest(2)); err != nil { // fills the queue
		t.Fatal(err)
	}
	_, _, err := r.Do(ctx, testRequest(3))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	if m := r.Metrics(); m.Rejected != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestJoinerSurvivesAbandonedJob: a caller that dedup-joins a job
// whose own submitter bails out (ctx cancel while waiting for queue
// space) must resubmit, not inherit the stranger's cancellation.
func TestJoinerSurvivesAbandonedJob(t *testing.T) {
	r := NewRunner(Options{Workers: 1, QueueDepth: 1})
	defer r.Close()
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		started <- struct{}{}
		<-release
		return Execute(q)
	}

	go r.Do(context.Background(), testRequest(1)) // occupies the worker
	<-started
	if _, _, err := r.Submit(testRequest(2)); err != nil { // fills the queue
		t.Fatal(err)
	}

	// Submitter: DoWait on request X blocks on the queue send.
	subCtx, cancelSub := context.WithCancel(context.Background())
	subErr := make(chan error, 1)
	go func() {
		_, _, err := r.DoWait(subCtx, testRequest(3))
		subErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // X is now in byKey, unenqueued

	// Joiner: joins X's pending job.
	type out struct {
		resp *Response
		err  error
	}
	joiner := make(chan out, 1)
	go func() {
		resp, _, err := r.DoWait(context.Background(), testRequest(3))
		joiner <- out{resp, err}
	}()
	time.Sleep(10 * time.Millisecond)

	cancelSub() // abandons the pending job
	if err := <-subErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("submitter error = %v", err)
	}
	close(release) // drain the worker; the joiner's resubmission runs

	got := <-joiner
	if got.err != nil {
		t.Fatalf("joiner inherited the abandonment: %v", got.err)
	}
	if got.resp == nil || got.resp.Key != testRequest(3).Key() {
		t.Fatalf("joiner response %+v", got.resp)
	}
}

// TestAbandonedJobStaysPollable: a detach client that dedup-joined a
// never-enqueued job must still be able to poll it (status failed),
// not get a 404.
func TestAbandonedJobStaysPollable(t *testing.T) {
	r := NewRunner(Options{Workers: 1, QueueDepth: 1})
	defer r.Close()
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		started <- struct{}{}
		<-release
		return &Response{Key: q.Key()}, nil
	}
	defer close(release)

	go r.Do(context.Background(), testRequest(1)) // occupies the worker
	<-started
	if _, _, err := r.Submit(testRequest(2)); err != nil { // fills the queue
		t.Fatal(err)
	}
	subCtx, cancelSub := context.WithCancel(context.Background())
	subErr := make(chan error, 1)
	go func() {
		_, _, err := r.DoWait(subCtx, testRequest(3))
		subErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // request 3 pending, unenqueued

	joined, resp, err := r.Submit(testRequest(3)) // detach client joins it
	if err != nil || resp != nil || joined == nil {
		t.Fatalf("join: job=%v resp=%v err=%v", joined, resp, err)
	}
	cancelSub()
	if err := <-subErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("submitter error = %v", err)
	}
	<-joined.Done()
	got, ok := r.Job(joined.ID)
	if !ok {
		t.Fatal("abandoned job vanished from the job store")
	}
	if info := got.Snapshot(); info.Status != StatusFailed || info.Error == "" {
		t.Fatalf("snapshot: %+v", info)
	}
}

func TestSubmitJobLifecycle(t *testing.T) {
	r := NewRunner(Options{Workers: 1})
	defer r.Close()
	job, resp, err := r.Submit(testRequest(21))
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil {
		t.Fatal("fresh request served from cache")
	}
	<-job.Done()
	info := job.Snapshot()
	if info.Status != StatusDone || info.Result == nil || info.Error != "" {
		t.Fatalf("snapshot: %+v", info)
	}
	got, ok := r.Job(job.ID)
	if !ok || got != job {
		t.Fatal("job not retrievable by ID")
	}
	if _, ok := r.Job("j999999"); ok {
		t.Fatal("unknown job ID resolved")
	}
	// Submitting again is a cache hit: no job, immediate response.
	job2, resp2, err := r.Submit(testRequest(21))
	if err != nil || job2 != nil || resp2 == nil {
		t.Fatalf("cached submit: job=%v resp=%v err=%v", job2, resp2, err)
	}
}

func TestSubmitInvalidRequest(t *testing.T) {
	r := NewRunner(Options{Workers: 1})
	defer r.Close()
	if _, _, err := r.Submit(Request{Protocol: "nope", N: 10, K: 2}); err == nil {
		t.Fatal("invalid request admitted")
	}
	if _, _, err := r.Do(context.Background(), Request{Protocol: "3-majority"}); err == nil {
		t.Fatal("invalid request admitted by Do")
	}
}

func TestFailedJobSnapshot(t *testing.T) {
	r := NewRunner(Options{Workers: 1})
	defer r.Close()
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		return nil, fmt.Errorf("boom")
	}
	job, _, err := r.Submit(testRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	info := job.Snapshot()
	if info.Status != StatusFailed || info.Error != "boom" || info.Result != nil {
		t.Fatalf("snapshot: %+v", info)
	}
	// Failures are not cached: the next submit executes again.
	if m := r.Metrics(); m.CacheLen != 0 {
		t.Fatalf("failed response cached: %+v", m)
	}
}

func TestFinishedJobEviction(t *testing.T) {
	r := NewRunner(Options{Workers: 1, MaxJobs: 2, CacheSize: -1})
	defer r.Close()
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		return &Response{Key: q.Key()}, nil
	}
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		job, _, err := r.Submit(testRequest(seed))
		if err != nil {
			t.Fatal(err)
		}
		<-job.Done()
		ids = append(ids, job.ID)
	}
	if _, ok := r.Job(ids[0]); ok {
		t.Fatal("oldest finished job not evicted")
	}
	if _, ok := r.Job(ids[2]); !ok {
		t.Fatal("newest finished job evicted")
	}
}

func TestRunnerCloseIdempotentAndRejecting(t *testing.T) {
	r := NewRunner(Options{Workers: 1})
	r.Close()
	r.Close()
	if _, _, err := r.Submit(testRequest(1)); err == nil {
		t.Fatal("closed runner accepted a request")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", &Response{Key: "a"})
	c.add("b", &Response{Key: "b"})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.add("c", &Response{Key: "c"}) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
}
