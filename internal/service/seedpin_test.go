package service

import "testing"

// TestTrialSeedContractPinned pins all four modes' per-trial streams
// with golden values. The per-trial derivations (façade seed
// rng.DeriveSeed(Seed, i); the async/graph/gossip entry points expand
// it once more, see the Request contract) are frozen: every cache key
// maps to a recorded Response computed from these streams, so a
// failure here means cached and freshly computed results no longer
// agree. Do NOT update the constants to make the test pass unless the
// release notes declare a deliberate stream break; the graph mode
// constants were last regenerated when its rounds moved to the
// sharded per-(seed, round, shard) streams.
func TestTrialSeedContractPinned(t *testing.T) {
	type pinned struct {
		rounds    float64
		consensus bool
		winner    int
		ticks     int64 // -1 = field absent (non-async modes)
	}
	cases := []struct {
		name string
		req  Request
		want []pinned
	}{
		{
			name: "sync",
			req:  Request{Protocol: "3-majority", N: 500, K: 4, Seed: 42, Trials: 3},
			want: []pinned{
				{13, true, 3, -1},
				{14, true, 1, -1},
				{17, true, 0, -1},
			},
		},
		{
			name: "async",
			req:  Request{Protocol: "2-choices", N: 300, K: 3, Seed: 42, Trials: 3, Mode: ModeAsync},
			want: []pinned{
				{float64(6852) / 300, true, 2, 6852},
				{float64(4211) / 300, true, 2, 4211},
				{float64(5509) / 300, true, 0, 5509},
			},
		},
		{
			name: "graph",
			req:  Request{Protocol: "voter", N: 200, K: 3, Seed: 42, Trials: 3, Mode: ModeGraph, Topology: "complete"},
			want: []pinned{
				{92, true, 2, -1},
				{103, true, 1, -1},
				{185, true, 0, -1},
			},
		},
		{
			name: "gossip",
			req:  Request{Protocol: "3-majority", N: 80, K: 3, Seed: 42, Trials: 3, Mode: ModeGossip},
			want: []pinned{
				{11, true, 1, -1},
				{13, true, 0, -1},
				{13, true, 0, -1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			resp, err := Execute(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Trials) != len(tc.want) {
				t.Fatalf("got %d trials, want %d", len(resp.Trials), len(tc.want))
			}
			for i, want := range tc.want {
				got := resp.Trials[i]
				ticks := int64(-1)
				if got.Ticks != nil {
					ticks = *got.Ticks
				}
				if got.Rounds != want.rounds || got.Consensus != want.consensus || got.Winner != want.winner || ticks != want.ticks {
					t.Errorf("trial %d = {rounds:%v consensus:%v winner:%d ticks:%d}, pinned {rounds:%v consensus:%v winner:%d ticks:%d}",
						i, got.Rounds, got.Consensus, got.Winner, ticks,
						want.rounds, want.consensus, want.winner, want.ticks)
				}
			}
		})
	}
}
