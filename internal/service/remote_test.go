package service

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"
)

// fakeRemote scripts the cluster side of Options.Remote.
type fakeRemote struct {
	lookups atomic.Int64
	runs    atomic.Int64

	lookup func(key string) (*Response, bool)
	run    func(req Request) (*Response, error)
}

func (f *fakeRemote) Lookup(ctx context.Context, key string) (*Response, bool) {
	f.lookups.Add(1)
	if f.lookup == nil {
		return nil, false
	}
	return f.lookup(key)
}

func (f *fakeRemote) Run(ctx context.Context, req Request) (*Response, error) {
	f.runs.Add(1)
	if f.run == nil {
		return nil, ErrNotClustered
	}
	return f.run(req)
}

// TestRemoteDedupJoinedWaitersObserveClusterCompletion is the
// regression test for the dedup/cluster seam: a second client that
// dedup-joins a key whose computation is running on the cluster must
// observe the remote completion exactly like a local one — same
// response object, no local execution, no recompute.
func TestRemoteDedupJoinedWaitersObserveClusterCompletion(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	remote := &fakeRemote{}
	remote.run = func(req Request) (*Response, error) {
		close(started)
		<-release
		return Execute(req)
	}
	r := NewRunner(Options{Workers: 2, QueueDepth: 4, Remote: remote})
	defer r.Close()

	ctx := context.Background()
	type out struct {
		resp   *Response
		cached bool
		err    error
	}
	results := make(chan out, 2)
	go func() {
		resp, cached, err := r.Do(ctx, testRequest(7))
		results <- out{resp, cached, err}
	}()
	<-started // the cluster is computing the key on another node
	go func() {
		resp, cached, err := r.Do(ctx, testRequest(7))
		results <- out{resp, cached, err}
	}()
	time.Sleep(10 * time.Millisecond) // let the second client join
	close(release)

	a, b := <-results, <-results
	if a.err != nil || b.err != nil {
		t.Fatal(a.err, b.err)
	}
	if a.resp != b.resp {
		t.Fatal("dedup-joined waiter got a different response than the cluster completion")
	}
	m := r.Metrics()
	if m.Joined != 1 {
		t.Fatalf("joined = %d, want 1", m.Joined)
	}
	if m.Executions != 0 {
		t.Fatalf("executions = %d, want 0 (the cluster ran it)", m.Executions)
	}
	if remote.runs.Load() != 1 {
		t.Fatalf("remote runs = %d, want 1", remote.runs.Load())
	}

	// A later identical request is a plain local cache hit — the
	// remote result entered the cache through the normal finish path.
	resp, cached, err := r.Do(ctx, testRequest(7))
	if err != nil || !cached || resp != a.resp {
		t.Fatalf("post-completion request: cached=%v err=%v", cached, err)
	}
}

// TestRemoteLookupServesPeerResult: a key already computed elsewhere in
// the fleet is served from the peer cache read-through — byte-identical
// bytes, zero local executions.
func TestRemoteLookupServesPeerResult(t *testing.T) {
	want, err := Execute(testRequest(9).Normalize())
	if err != nil {
		t.Fatal(err)
	}
	remote := &fakeRemote{}
	remote.lookup = func(key string) (*Response, bool) {
		if key == want.Key {
			return want, true
		}
		return nil, false
	}
	r := NewRunner(Options{Workers: 1, QueueDepth: 2, Remote: remote})
	defer r.Close()

	got, _, err := r.Do(context.Background(), testRequest(9))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("peer-cached bytes differ:\n%s\n%s", a, b)
	}
	if m := r.Metrics(); m.Executions != 0 {
		t.Fatalf("executions = %d, want 0 (served from the fleet cache)", m.Executions)
	}
	if remote.runs.Load() != 0 {
		t.Fatalf("remote runs = %d, want 0", remote.runs.Load())
	}
}

// TestRemoteNotClusteredFallsBackLocally: ErrNotClustered routes the
// job down the ordinary local execution path.
func TestRemoteNotClusteredFallsBackLocally(t *testing.T) {
	remote := &fakeRemote{} // Run returns ErrNotClustered
	r := NewRunner(Options{Workers: 1, QueueDepth: 2, Remote: remote})
	defer r.Close()

	want, err := Execute(testRequest(5).Normalize())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := r.Do(context.Background(), testRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatal("local fallback bytes differ from ground truth")
	}
	if m := r.Metrics(); m.Executions != 1 {
		t.Fatalf("executions = %d, want 1 (local fallback)", m.Executions)
	}
	if remote.runs.Load() != 1 {
		t.Fatalf("remote runs = %d, want 1", remote.runs.Load())
	}
}

// TestRemoteSkipsAnalyticTier: analytic-tier requests are pure local
// computation — the cluster must never see them.
func TestRemoteSkipsAnalyticTier(t *testing.T) {
	remote := &fakeRemote{}
	r := NewRunner(Options{Workers: 1, QueueDepth: 2, Remote: remote})
	defer r.Close()

	req := Request{Protocol: "3-majority", N: 1_000_000_000, K: 100, Tier: TierAnalytic, Seed: 1}
	if _, _, err := r.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if remote.lookups.Load() != 0 || remote.runs.Load() != 0 {
		t.Fatalf("analytic request reached the remote: lookups=%d runs=%d",
			remote.lookups.Load(), remote.runs.Load())
	}
}
