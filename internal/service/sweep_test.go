package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSweepBoundedInFlight pins the fan-out bound: a sweep many times
// larger than the admission queue keeps at most queue-depth jobs
// registered at any moment (instead of one goroutine and one jobs-map
// entry per point up front) while still emitting every point in
// canonical order.
func TestSweepBoundedInFlight(t *testing.T) {
	const queueDepth = 4
	r := NewRunner(Options{Workers: 2, QueueDepth: queueDepth, CacheSize: -1})
	defer r.Close()

	var (
		mu          sync.Mutex
		maxInFlight int
	)
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		m := r.Metrics()
		mu.Lock()
		if m.JobsInFlight > maxInFlight {
			maxInFlight = m.JobsInFlight
		}
		mu.Unlock()
		return &Response{Key: q.Key(), Request: q, Summary: Summary{Trials: q.K}}, nil
	}

	values := make([]int64, 64)
	for i := range values {
		values[i] = int64(i + 2)
	}
	sr := SweepRequest{
		Base:   Request{Protocol: "3-majority", N: 1000, Seed: 1},
		Sweep:  "k",
		Values: values,
	}
	var got []int64
	err := r.Sweep(context.Background(), sr, func(p SweepPoint) error {
		got = append(got, p.Value)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(values) {
		t.Fatalf("emitted %d points, want %d", len(got), len(values))
	}
	for i, v := range values {
		if got[i] != v {
			t.Fatalf("point %d emitted value %d, want %d (order broken)", i, got[i], v)
		}
	}
	// The submitter window (queue depth) bounds in-flight jobs; a small
	// slack covers jobs the metrics snapshot catches between a worker
	// pickup and the next submission.
	if maxInFlight > queueDepth+2 {
		t.Fatalf("max jobs in flight = %d, want <= queue depth %d (+2 slack)", maxInFlight, queueDepth)
	}
}

// TestSweepBoundedErrorAborts: an error on an early point returns
// without waiting for — or submitting — the rest of the sweep.
func TestSweepBoundedErrorAborts(t *testing.T) {
	r := NewRunner(Options{Workers: 2, QueueDepth: 4, CacheSize: -1})
	defer r.Close()

	var executed atomic.Int64
	r.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		executed.Add(1)
		if q.K == 3 {
			return nil, context.DeadlineExceeded
		}
		return &Response{Key: q.Key(), Request: q}, nil
	}

	values := make([]int64, 128)
	for i := range values {
		values[i] = int64(i + 2)
	}
	sr := SweepRequest{
		Base:   Request{Protocol: "3-majority", N: 1000, Seed: 1},
		Sweep:  "k",
		Values: values,
	}
	err := r.Sweep(context.Background(), sr, func(SweepPoint) error { return nil })
	if err == nil {
		t.Fatal("sweep with a failing point returned nil")
	}
	if n := executed.Load(); n > 32 {
		t.Fatalf("%d points executed after an error at point 1; bounded fan-out should abort early", n)
	}
}
