package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"plurality"
	"plurality/internal/population"
	"plurality/internal/stop"
	"plurality/internal/trace"
)

// Execution modes accepted by Request.Mode. The zero value normalizes
// to ModeSync.
const (
	// ModeSync is the exact count-space engine on the complete graph
	// with self-loops — the paper's setting and the default.
	ModeSync = "sync"
	// ModeAsync updates one uniformly random vertex per tick
	// (paper §1.1); Rounds are reported as Ticks/N.
	ModeAsync = "async"
	// ModeGraph runs the per-vertex agent engine on an explicit
	// topology (paper §2.5 open problem).
	ModeGraph = "graph"
	// ModeGossip executes the dynamics as a real message-passing
	// system with optional crash/loss faults.
	ModeGossip = "gossip"
)

// Limits bounding a single request, so one call cannot take down the
// server (the count-space engine is O(k) memory, but the graph engine
// is O(n·degree) and the gossip engine spawns a goroutine per node).
// They cap the request shape, not the simulation length (use
// MaxRounds/MaxTicks for that).
const (
	// MaxTrials bounds Request.Trials.
	MaxTrials = 100_000
	// MaxSweepPoints bounds len(SweepRequest.Values) × protocols.
	MaxSweepPoints = 10_000
	// MaxK bounds the opinion count: dense per-opinion state is O(k).
	MaxK = 1 << 24
	// MaxSyncN bounds N for the count-space modes (sync, async) — the
	// engine's exact-Σc² representation caps it there anyway.
	MaxSyncN = population.MaxN
	// MaxGraphN bounds N for the per-vertex agent engine (mode graph).
	// The engine's rounds are sharded across cores (see
	// internal/graph.StepSharded) so time no longer caps the shape;
	// what remains is the O(n·degree) adjacency memory, bounded by
	// MaxGraphEdges below (~2 GiB of edge storage), with Execute
	// additionally clamping how many trials materialize topologies
	// concurrently.
	MaxGraphN = 16_000_000
	// MaxGraphEdges bounds n·degree for the adjacency-storing graph
	// topologies: the adjacency holds one int32 per directed edge
	// slot, so this cap keeps a single topology build within ~2 GiB no
	// matter what TopologyParam the request asks for (it admits every
	// default topology within the n cap — the densest, a dim-23
	// hypercube, is ~1.9·10⁸ slots).
	MaxGraphEdges = 1 << 29
	// MaxGossipN bounds N for the goroutine-per-node engine (gossip).
	MaxGossipN = 100_000
	// MaxTracePoints bounds trials × trace.MaxPoints for a traced
	// request: the whole trace a request may buffer (and a cached
	// Response may retain). ~56 MiB of points at the cap.
	MaxTracePoints = 1 << 20
)

// Request is the canonical description of one simulation batch. It is
// the wire format of the conserve server's POST /run and the config
// layer the CLIs build on; every field is JSON-serialisable so the
// normalized form can be hashed into a cache key.
//
// Equivalence contract: a Request fully determines its Response,
// independent of worker count, of per-request parallelism, and of
// whether the CLI or the server runs it. Trial i's façade seed is
// rng.DeriveSeed(Seed, i): mode sync consumes it directly as the
// trial's RNG stream — exactly sim.RunMany's per-trial derivation, so
// a 1-trial request reproduces plurality.Run with the same Seed —
// while the async/graph/gossip façade entry points expand it once
// more, rooting their streams at
// rng.DeriveSeed(rng.DeriveSeed(Seed, i), j) for entry-point-specific
// j (0 for the async engine and graph topology/assignment, 1 for the
// sharded graph rounds, the node id for gossip). Both derivations are
// frozen: cache keys and recorded results depend on them.
type Request struct {
	// Protocol names the dynamics: "3-majority", "2-choices", "voter",
	// "median", "undecided", "h<m>" (e.g. "h5"), or "lazy:<beta>:<base>"
	// (e.g. "lazy:0.5:3-majority"). Required.
	Protocol string `json:"protocol"`
	// N is the number of vertices. Required unless Init is "counts",
	// where 0 means "use the counts' sum".
	N int64 `json:"n,omitempty"`
	// K is the number of opinions. Required unless Init is "counts".
	K int `json:"k,omitempty"`
	// Init names the initial-condition generator: "balanced"
	// (default), "zipf", "geometric", "planted", "two-leaders" or
	// "counts".
	Init string `json:"init,omitempty"`
	// InitParam is the generator's first parameter: zipf exponent,
	// geometric ratio, planted extra fraction, or two-leaders topFrac.
	InitParam float64 `json:"init_param,omitempty"`
	// InitParam2 is the generator's second parameter (two-leaders
	// bias).
	InitParam2 float64 `json:"init_param2,omitempty"`
	// Counts is the explicit initial histogram for Init "counts" — the
	// direct interface for density-style workloads where the maximum
	// initial opinion density is the controlled variable.
	Counts []int64 `json:"counts,omitempty"`
	// Seed is the base seed; trial i uses rng.DeriveSeed(Seed, i).
	Seed uint64 `json:"seed"`
	// Trials is the number of independent runs (default 1, max
	// MaxTrials).
	Trials int `json:"trials,omitempty"`
	// MaxRounds bounds each run; 0 uses the engine default. A run that
	// exhausts the bound reports consensus=false, not an error.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Adversary names the per-round corruption strategy: "" (none),
	// "hinder", "help" or "scatter". Sync mode only.
	Adversary string `json:"adversary,omitempty"`
	// AdversaryF is the adversary's per-round vertex budget.
	AdversaryF int64 `json:"adversary_f,omitempty"`
	// Mode selects the execution engine; see the Mode* constants.
	Mode string `json:"mode,omitempty"`
	// Topology names the graph family for ModeGraph: "complete"
	// (default), "ring", "torus", "random-regular" or "hypercube".
	Topology string `json:"topology,omitempty"`
	// TopologyParam is the family parameter: ring radius, torus side,
	// regular degree, hypercube dimension. 0 derives a default (radius
	// 1, side √N, degree 8, dim log₂N).
	TopologyParam int `json:"topology_param,omitempty"`
	// MaxTicks bounds a ModeAsync run (0 = engine default).
	MaxTicks int64 `json:"max_ticks,omitempty"`
	// LossProb is the per-pull loss probability in [0,1) for
	// ModeGossip.
	LossProb float64 `json:"loss_prob,omitempty"`
	// Crashed lists node IDs crashed from the start (ModeGossip).
	Crashed []int `json:"crashed,omitempty"`
	// Trace, if non-nil, asks every trial to record a round trace
	// under the spec's decimation policy (see internal/trace); the
	// points come back in Response.Trace. Tracing is part of the
	// request's identity — the normalized spec is folded into the
	// config key — while an absent spec leaves the key, and the
	// Response bytes, exactly as they were before tracing existed.
	// Works in every mode.
	Trace *trace.Spec `json:"trace,omitempty"`
	// Stop, if non-nil, ends every trial at the first round boundary
	// where the spec's conjunction holds (see internal/stop) —
	// recording hitting times like the Γ >= 1/2 crossing directly
	// instead of simulating to consensus. Stop conditions never touch
	// the engines' RNG streams: a stopped trial is the prefix of the
	// unstopped trial of the same request. The spec is part of the
	// request's identity — folded into the config key — while an
	// absent (or zero, after normalization) spec leaves the key, and
	// the Response bytes, exactly as they were before stop conditions
	// existed. Works in every mode.
	Stop *stop.Spec `json:"stop,omitempty"`
	// Tier selects the answer tier: "" or "simulation" (run the
	// engines; the implicit tier of every pre-tier request) or
	// "analytic" (answer from the calibrated scaling-law model, valid
	// up to MaxAnalyticN). Normalize promotes an eligible sync request
	// whose n exceeds MaxSyncN to the analytic tier automatically, and
	// clears the fields the analytic answer does not depend on (seed,
	// trials, max_rounds) so they cannot split its cache key. An
	// absent tier leaves simulation keys, and their Response bytes,
	// exactly as they were before tiers existed (see
	// TestSimulationTierKeysPinned).
	Tier string `json:"tier,omitempty"`
}

// Normalize returns the request with defaults filled in and names
// canonicalised (trimmed, lower-cased), so that semantically identical
// requests are structurally — and therefore by Key — identical.
func (q Request) Normalize() Request {
	q.Protocol = strings.ToLower(strings.TrimSpace(q.Protocol))
	q.Init = strings.ToLower(strings.TrimSpace(q.Init))
	q.Adversary = strings.ToLower(strings.TrimSpace(q.Adversary))
	q.Mode = strings.ToLower(strings.TrimSpace(q.Mode))
	q.Topology = strings.ToLower(strings.TrimSpace(q.Topology))
	q.Tier = strings.ToLower(strings.TrimSpace(q.Tier))
	if q.Tier == TierSimulation {
		// Naming the default tier is inert: it must not split the
		// cache key of otherwise identical requests.
		q.Tier = ""
	}
	if q.Mode == "" {
		q.Mode = ModeSync
	}
	if q.Init == "" {
		if len(q.Counts) > 0 {
			q.Init = "counts"
		} else {
			q.Init = "balanced"
		}
	}
	if q.Init == "counts" {
		var sum int64
		for _, c := range q.Counts {
			sum += c
		}
		if q.N == 0 {
			q.N = sum
		}
		q.K = len(q.Counts)
	}
	if q.Trials == 0 {
		q.Trials = 1
	}
	if q.Mode == ModeGraph && q.Topology == "" {
		q.Topology = "complete"
	}
	// An adversary is active only when both a strategy and a positive
	// budget are given; an inert half (known name without budget, or
	// budget without name) is cleared so it cannot split the cache key
	// or be echoed as if it had run. Unknown names and negative
	// budgets are kept for Validate to reject.
	if q.Adversary == "" {
		q.AdversaryF = 0
	} else if q.AdversaryF == 0 {
		switch q.Adversary {
		case "hinder", "help", "scatter":
			q.Adversary = ""
		}
	}
	// Clear fields the chosen init/mode does not consume, so an inert
	// parameter (e.g. a CLI's default init-param with a balanced init)
	// cannot split the cache key of otherwise identical requests.
	switch q.Init {
	case "balanced", "counts":
		q.InitParam, q.InitParam2 = 0, 0
	case "zipf", "geometric", "planted":
		q.InitParam2 = 0
	}
	if q.Init != "counts" {
		q.Counts = nil
	}
	if q.Mode != ModeGraph {
		q.Topology, q.TopologyParam = "", 0
	}
	if q.Mode != ModeAsync {
		q.MaxTicks = 0
	}
	if q.Mode != ModeGossip {
		q.LossProb, q.Crashed = 0, nil
	}
	// The trace spec is normalized through its own canonicaliser (and
	// copied, so the caller's spec is never mutated); a nil spec stays
	// nil, keeping untraced keys identical to the pre-trace era.
	if q.Trace != nil {
		t := q.Trace.Normalize()
		q.Trace = &t
	}
	// A zero stop spec is the consensus-only default — inert, so it is
	// cleared to nil rather than splitting the cache key of otherwise
	// identical requests; unstopped keys stay identical to the
	// pre-stop era.
	if q.Stop != nil {
		s := q.Stop.Normalize()
		if s.IsZero() {
			q.Stop = nil
		} else {
			q.Stop = &s
		}
	}
	// Answer-tier dispatch: an eligible sync request whose n exceeds
	// the simulation cap is promoted to the analytic tier instead of
	// being left to 400. The promotion is part of normalization so the
	// promoted and the explicitly-analytic form share one cache key.
	if q.Tier == "" && q.Mode == ModeSync && q.N > MaxSyncN && analyticDynamics(q.Protocol) {
		q.Tier = TierAnalytic
	}
	// The analytic answer is a closed-form function of (protocol, n,
	// initial densities): the per-trial knobs are inert, and clearing
	// them keeps e.g. seed-sweeping clients on one cache entry.
	if q.Tier == TierAnalytic {
		q.Seed = 0
		q.Trials = 1
		q.MaxRounds = 0
	}
	return q
}

// Validate reports whether the normalized request describes a runnable
// simulation. Errors are user errors (the server maps them to 400).
func (q Request) Validate() error {
	if _, err := ParseProtocol(q.Protocol); err != nil {
		return err
	}
	if _, err := buildInit(q); err != nil {
		return err
	}
	switch q.Tier {
	case "":
	case TierAnalytic:
		// The analytic tier has its own caps and rejections; the
		// simulation-shape checks below do not apply to it.
		return q.validateAnalytic()
	default:
		return fmt.Errorf("service: unknown tier %q (want %q or %q)", q.Tier, TierSimulation, TierAnalytic)
	}
	maxN := int64(MaxSyncN)
	switch q.Mode {
	case ModeGraph:
		maxN = MaxGraphN
	case ModeGossip:
		maxN = MaxGossipN
	}
	if q.N < 1 || q.N > maxN {
		return fmt.Errorf("service: n must be in [1, %d] for mode %q, got %d", maxN, q.Mode, q.N)
	}
	if q.Init != "counts" && q.K < 1 {
		return fmt.Errorf("service: k must be >= 1, got %d", q.K)
	}
	if q.K > MaxK {
		return fmt.Errorf("service: k must be <= %d, got %d", MaxK, q.K)
	}
	if q.Trials < 1 || q.Trials > MaxTrials {
		return fmt.Errorf("service: trials must be in [1, %d], got %d", MaxTrials, q.Trials)
	}
	if q.MaxRounds < 0 {
		return fmt.Errorf("service: max_rounds must be >= 0, got %d", q.MaxRounds)
	}
	switch q.Adversary {
	case "", "hinder", "help", "scatter":
	default:
		return fmt.Errorf("service: unknown adversary %q (want hinder, help or scatter)", q.Adversary)
	}
	if q.AdversaryF < 0 {
		return fmt.Errorf("service: adversary_f must be >= 0, got %d", q.AdversaryF)
	}
	switch q.Mode {
	case ModeSync:
	case ModeAsync, ModeGraph, ModeGossip:
		switch q.Protocol {
		case "3-majority", "2-choices", "voter":
		default:
			return fmt.Errorf("service: mode %q supports protocols 3-majority, 2-choices and voter, got %q", q.Mode, q.Protocol)
		}
		if q.Adversary != "" {
			return fmt.Errorf("service: adversaries are supported in mode %q only", ModeSync)
		}
	default:
		return fmt.Errorf("service: unknown mode %q (want sync, async, graph or gossip)", q.Mode)
	}
	if q.Mode == ModeGraph {
		switch q.Topology {
		case "complete", "ring", "torus", "random-regular", "hypercube":
		default:
			return fmt.Errorf("service: unknown topology %q", q.Topology)
		}
		// TopologyParam is user-controlled degree for ring and
		// random-regular, so bound the O(n·degree) adjacency it
		// implies — the shape caps must hold for every valid request,
		// not just default parameters. The range check comes first so
		// the degree·n product below cannot overflow int64.
		if int64(q.TopologyParam) > MaxGraphEdges {
			return fmt.Errorf("service: topology_param must be <= %d, got %d", int64(MaxGraphEdges), q.TopologyParam)
		}
		if slots := q.graphDegree() * q.N; slots > MaxGraphEdges {
			return fmt.Errorf("service: topology %q with param %d on n=%d implies %d edge slots, max %d",
				q.Topology, q.TopologyParam, q.N, slots, int64(MaxGraphEdges))
		}
	}
	if q.LossProb < 0 || q.LossProb >= 1 {
		return fmt.Errorf("service: loss_prob must be in [0,1), got %v", q.LossProb)
	}
	if q.Trace != nil {
		if err := q.Trace.Validate(); err != nil {
			return err
		}
		// Shape cap, like MaxK/MaxGraphN: the whole trace a request
		// may buffer is bounded, whatever its trials × max_points.
		if total := int64(q.Trials) * int64(q.Trace.MaxPoints); total > MaxTracePoints {
			return fmt.Errorf("service: trials (%d) x trace max_points (%d) = %d points exceeds %d; lower one of them",
				q.Trials, q.Trace.MaxPoints, total, int64(MaxTracePoints))
		}
	}
	if q.Stop != nil {
		if err := q.Stop.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Key returns the canonical config key: the hex SHA-256 of the
// normalized request's JSON encoding. Two requests share a key iff
// they describe the same simulation, so the key indexes the result
// cache and deduplicates in-flight work.
func (q Request) Key() string {
	data, err := json.Marshal(q.Normalize())
	if err != nil {
		// Request has no unmarshalable field types; keep the method
		// usable in expressions.
		panic(fmt.Sprintf("service: marshal request: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Experiment translates the (normalized) request into its
// plurality.Experiment — the single Request → engine mapping for all
// four modes, replacing the old Config/GraphConfig/GossipConfig
// triple-bridging. Normalize has already cleared the fields the mode
// does not consume, so the translation is field-for-field; the caller
// sets Parallelism (an execution hint outside the request's identity).
func (q Request) Experiment() (plurality.Experiment, error) {
	proto, err := ParseProtocol(q.Protocol)
	if err != nil {
		return plurality.Experiment{}, err
	}
	init, err := buildInit(q)
	if err != nil {
		return plurality.Experiment{}, err
	}
	e := plurality.Experiment{
		Mode:      plurality.Mode(q.Mode),
		N:         q.N,
		Protocol:  proto,
		Init:      init,
		Seed:      q.Seed,
		NumTrials: q.Trials,
		MaxRounds: q.MaxRounds,
		MaxTicks:  q.MaxTicks,
		Crashed:   q.Crashed,
		LossProb:  q.LossProb,
		Trace:     q.Trace,
	}
	if q.Stop != nil {
		e.Stop = plurality.StopSpec(*q.Stop)
	}
	if q.AdversaryF > 0 {
		switch q.Adversary {
		case "hinder":
			e.Adversary = plurality.HinderAdversary(q.AdversaryF)
		case "help":
			e.Adversary = plurality.HelpAdversary(q.AdversaryF)
		case "scatter":
			e.Adversary = plurality.ScatterAdversary(q.AdversaryF)
		}
	}
	if q.Mode == ModeGraph {
		topo, err := parseTopology(q.Topology, q.TopologyParam, q.N)
		if err != nil {
			return plurality.Experiment{}, err
		}
		e.Topology = topo
	}
	return e, nil
}

// ParseProtocol resolves a protocol name ("3-majority", "2-choices",
// "voter", "median", "undecided", "h<m>", "lazy:<beta>:<base>") to its
// façade constructor. It is the single name→Protocol map shared by the
// server and the CLIs.
func ParseProtocol(name string) (plurality.Protocol, error) {
	switch name {
	case "3-majority":
		return plurality.ThreeMajority(), nil
	case "2-choices":
		return plurality.TwoChoices(), nil
	case "voter":
		return plurality.Voter(), nil
	case "median":
		return plurality.Median(), nil
	case "undecided":
		return plurality.Undecided(), nil
	}
	if rest, ok := strings.CutPrefix(name, "lazy:"); ok {
		betaStr, base, ok := strings.Cut(rest, ":")
		if !ok || strings.HasPrefix(base, "lazy:") {
			return plurality.Protocol{}, fmt.Errorf("service: bad lazy spec %q (want lazy:<beta>:<base>)", name)
		}
		beta, err := strconv.ParseFloat(betaStr, 64)
		if err != nil || beta < 0 || beta >= 1 {
			return plurality.Protocol{}, fmt.Errorf("service: bad lazy beta in %q (want [0,1))", name)
		}
		baseProto, err := ParseProtocol(base)
		if err != nil {
			return plurality.Protocol{}, err
		}
		switch base {
		case "median", "undecided":
			return plurality.Protocol{}, fmt.Errorf("service: lazy variant does not support base %q", base)
		}
		return plurality.LazyVariant(baseProto, beta), nil
	}
	if strings.HasPrefix(name, "h") {
		h, err := strconv.Atoi(name[1:])
		if err != nil || h < 1 {
			return plurality.Protocol{}, fmt.Errorf("service: bad h-majority spec %q", name)
		}
		return plurality.HMajority(h), nil
	}
	return plurality.Protocol{}, fmt.Errorf("service: unknown protocol %q", name)
}

func buildInit(q Request) (plurality.Init, error) {
	switch q.Init {
	case "balanced":
		return plurality.Balanced(q.K), nil
	case "zipf":
		return plurality.Zipf(q.K, q.InitParam), nil
	case "geometric":
		return plurality.Geometric(q.K, q.InitParam), nil
	case "planted":
		return plurality.PlantedBias(q.K, q.InitParam), nil
	case "two-leaders":
		return plurality.TwoLeaders(q.K, q.InitParam, q.InitParam2), nil
	case "counts":
		if len(q.Counts) == 0 {
			return plurality.Init{}, fmt.Errorf("service: init %q requires a non-empty counts array", q.Init)
		}
		return plurality.Counts(q.Counts), nil
	default:
		return plurality.Init{}, fmt.Errorf("service: unknown init %q", q.Init)
	}
}

// graphDegree returns the per-vertex adjacency degree the normalized
// graph-mode request will materialize, with parseTopology's defaults
// applied (0 for complete, which stores no adjacency). It is the
// per-trial memory model shared by Validate's edge-slot cap and the
// executor's concurrency clamp.
func (q Request) graphDegree() int64 {
	switch q.Topology {
	case "ring":
		r := int64(q.TopologyParam)
		if r <= 0 {
			r = 1
		}
		return 2 * r
	case "torus":
		return 4
	case "random-regular":
		d := int64(q.TopologyParam)
		if d <= 0 {
			d = 8
		}
		return d
	case "hypercube":
		if q.TopologyParam > 0 {
			return int64(q.TopologyParam)
		}
		var dim int64
		for n := q.N; n > 1; n >>= 1 {
			dim++
		}
		return dim
	default:
		return 0
	}
}

func parseTopology(name string, param int, n int64) (plurality.Topology, error) {
	switch name {
	case "complete":
		return plurality.CompleteTopology(), nil
	case "ring":
		if param <= 0 {
			param = 1
		}
		return plurality.RingTopology(param), nil
	case "torus":
		if param <= 0 {
			// Division-based perfect-square test: s*s would overflow
			// int64 for n near its max.
			s := int64(math.Sqrt(float64(n)))
			for _, c := range []int64{s - 1, s, s + 1} {
				if c > 0 && n%c == 0 && n/c == c {
					param = int(c)
				}
			}
			if param <= 0 {
				return plurality.Topology{}, fmt.Errorf("service: torus needs a square n or an explicit side, got n=%d", n)
			}
		}
		return plurality.TorusTopology(param), nil
	case "random-regular":
		if param <= 0 {
			param = 8
		}
		return plurality.RandomRegularTopology(param), nil
	case "hypercube":
		if param <= 0 {
			// d < 62 keeps 1<<d positive; beyond it the shift would
			// wrap and the termination condition would never fail.
			for d := 0; d < 62 && int64(1)<<d <= n; d++ {
				if int64(1)<<d == n {
					param = d
				}
			}
			if param <= 0 {
				return plurality.Topology{}, fmt.Errorf("service: hypercube needs a power-of-two n or an explicit dim, got n=%d", n)
			}
		}
		return plurality.HypercubeTopology(param), nil
	default:
		return plurality.Topology{}, fmt.Errorf("service: unknown topology %q", name)
	}
}
