package service

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"plurality"
	"plurality/internal/rng"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/trace"
)

// Trial is one run's outcome inside a Response.
type Trial struct {
	// Trial is the trial index. Trial i's façade seed is
	// rng.DeriveSeed(Request.Seed, i): mode sync consumes it directly
	// as the trial's RNG stream (sim.RunMany's derivation), while the
	// async/graph/gossip façade entry points expand it once more —
	// their root streams are rng.DeriveSeed(rng.DeriveSeed(Seed, i), j)
	// for entry-point-specific j. Both derivations are frozen: changing
	// either would silently invalidate every cached and recorded
	// Response (see TestTrialSeedContractPinned).
	Trial int `json:"trial"`
	// Rounds is the consensus time in synchronous(-equivalent) rounds.
	// It is fractional only in mode async (Ticks/N).
	Rounds float64 `json:"rounds"`
	// Consensus reports whether the run converged within its budget.
	Consensus bool `json:"consensus"`
	// Winner is the consensus opinion, or the plurality at cutoff.
	Winner int `json:"winner"`
	// Ticks is the number of single-vertex updates. It is present on
	// every async-mode trial — including a tick-0 convergence, so all
	// trials of a response share one shape — and absent otherwise.
	Ticks *int64 `json:"ticks,omitempty"`
}

// Summary aggregates the trials of a Response.
type Summary struct {
	// Trials is the number of runs executed.
	Trials int `json:"trials"`
	// Converged is how many reached consensus within their budget.
	Converged int `json:"converged"`
	// MedianRounds/MeanRounds/MinRounds/MaxRounds summarise the round
	// counts over all trials (converged or not).
	MedianRounds float64 `json:"median_rounds"`
	MeanRounds   float64 `json:"mean_rounds"`
	MinRounds    float64 `json:"min_rounds"`
	MaxRounds    float64 `json:"max_rounds"`
	// TopWinner is the opinion winning the most converged trials, and
	// TopWinnerWins its count; TopWinner is -1 when nothing converged.
	TopWinner     int `json:"top_winner"`
	TopWinnerWins int `json:"top_winner_wins"`
}

// Response is the result of executing a Request. Its JSON encoding is
// canonical: the same Request (by Key) always produces the same bytes,
// whether computed by a CLI, a server worker, or replayed from cache.
type Response struct {
	// Key is the canonical config key of the (normalized) Request.
	Key string `json:"key"`
	// Request echoes the normalized request that was executed.
	Request Request `json:"request"`
	// Summary aggregates the trials.
	Summary Summary `json:"summary"`
	// Trials holds the per-trial outcomes, indexed by trial.
	Trials []Trial `json:"trials"`
	// Trace holds the sampled round trace when Request.Trace was set:
	// every trial's kept points, concatenated in trial order (each
	// trial's points in round order). Absent on untraced requests, so
	// their Response bytes are unchanged from the pre-trace era.
	// Tracing never perturbs the engines' RNG streams: Summary and
	// Trials are byte-identical with and without it.
	Trace []trace.Point `json:"trace,omitempty"`
}

// Execute runs the request in the calling goroutine (expanding into
// GOMAXPROCS trial workers) and returns its canonical response. It is
// a pure function of the request: same Request ⇒ same Response,
// regardless of caller. Errors are user errors (invalid
// configuration).
func Execute(q Request) (*Response, error) {
	return ExecuteParallel(q, 0)
}

// ExecuteParallel is Execute with an explicit parallelism budget
// (<= 0 means GOMAXPROCS): every mode fans its trials across up to
// that many workers through sim.ForEachTrial, and mode graph
// additionally spends budget left over by a short trial list on
// sharding each run's vertex loop. Parallelism is an execution hint
// only — the Response (and hence its canonical JSON encoding) is
// byte-identical for every value.
func ExecuteParallel(q Request, parallelism int) (*Response, error) {
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	var (
		trials []Trial
		points []trace.Point
		err    error
	)
	switch q.Mode {
	case ModeSync:
		trials, points, err = executeSync(q, parallelism)
	case ModeAsync:
		trials, points, err = executeAsync(q, parallelism)
	case ModeGraph:
		trials, points, err = executeGraph(q, parallelism)
	case ModeGossip:
		trials, points, err = executeGossip(q, parallelism)
	default:
		err = fmt.Errorf("service: unknown mode %q", q.Mode)
	}
	if err != nil {
		return nil, err
	}
	return &Response{
		Key:     q.Key(),
		Request: q,
		Summary: summarize(trials),
		Trials:  trials,
		Trace:   points,
	}, nil
}

// trialSamplers is the per-trial sampler set of one traced request —
// nil for an untraced request, where forTrial hands the engines nil
// (inert) samplers and flatten returns no points. Each trial's sampler
// is touched only by the worker running that trial, and flatten
// concatenates in trial order, so the merged trace — like the trials —
// is identical for every parallelism value.
type trialSamplers []*trace.Sampler

func newTrialSamplers(q Request) trialSamplers {
	if q.Trace == nil {
		return nil
	}
	ts := make(trialSamplers, q.Trials)
	for i := range ts {
		ts[i] = trace.NewSampler(*q.Trace, i)
	}
	return ts
}

func (ts trialSamplers) forTrial(i int) *trace.Sampler {
	if ts == nil {
		return nil
	}
	return ts[i]
}

func (ts trialSamplers) flatten() []trace.Point {
	if ts == nil {
		return nil
	}
	var buf trace.Buffer
	for _, s := range ts {
		// Buffer.Record never fails, so neither does the flush.
		_ = s.Flush(&buf)
	}
	return buf.Points
}

func executeSync(q Request, parallelism int) ([]Trial, []trace.Point, error) {
	cfg, err := q.Config()
	if err != nil {
		return nil, nil, err
	}
	var (
		results []plurality.Result
		points  []trace.Point
	)
	if q.Trace != nil {
		var traces [][]trace.Point
		results, traces, err = plurality.RunManyTraced(cfg, q.Trials, parallelism, *q.Trace)
		if err == nil {
			var buf trace.Buffer
			for _, tr := range traces {
				_ = trace.Emit(tr, &buf)
			}
			points = buf.Points
		}
	} else {
		results, err = plurality.RunManyParallel(cfg, q.Trials, parallelism)
	}
	if err != nil {
		return nil, nil, err
	}
	trials := make([]Trial, len(results))
	for i, res := range results {
		trials[i] = Trial{
			Trial:     i,
			Rounds:    float64(res.Rounds),
			Consensus: res.Consensus,
			Winner:    res.Winner,
		}
	}
	return trials, points, nil
}

func executeAsync(q Request, parallelism int) ([]Trial, []trace.Point, error) {
	cfg, err := q.Config()
	if err != nil {
		return nil, nil, err
	}
	samplers := newTrialSamplers(q)
	trials := make([]Trial, q.Trials)
	err = sim.ForEachTrial(q.Trials, parallelism, func(i int) error {
		c := cfg
		c.Seed = rng.DeriveSeed(q.Seed, uint64(i))
		c.Trace = samplers.forTrial(i)
		res, err := plurality.RunAsync(c, q.MaxTicks)
		if err != nil {
			return err
		}
		ticks := res.Ticks
		trials[i] = Trial{
			Trial:     i,
			Rounds:    res.Rounds,
			Consensus: res.Consensus,
			Winner:    res.Winner,
			Ticks:     &ticks,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return trials, samplers.flatten(), nil
}

// graphVertexBudget and graphEdgeBudget cap what a single graph
// request may have materialized at once across its concurrent trials
// (each live trial holds its own topology and two opinion arrays):
// total vertices, and total adjacency edge slots — the dominant cost
// for dense topologies, which the vertex count alone would miss.
// MaxGraphN/MaxGraphEdges were sized for one run at a time; the clamp
// keeps a maximal request from multiplying that peak by the core
// count (a full-size adjacency caps at two concurrent builds).
const (
	graphVertexBudget = 1 << 25
	graphEdgeBudget   = 2 * MaxGraphEdges
)

// graphTrialWorkers bounds a graph request's trial fan-out to the
// vertex and edge budgets (always allowing one trial). degree is the
// request's per-vertex adjacency degree (Request.graphDegree).
func graphTrialWorkers(parallelism, trials int, n, degree int64) int {
	workers := parallelism
	if workers > trials {
		workers = trials
	}
	if byMem := int(graphVertexBudget / n); byMem < workers {
		workers = byMem
	}
	if degree > 0 {
		if byEdges := int(graphEdgeBudget / (n * degree)); byEdges < workers {
			workers = byEdges
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

func executeGraph(q Request, parallelism int) ([]Trial, []trace.Point, error) {
	cfg, err := q.GraphConfig()
	if err != nil {
		return nil, nil, err
	}
	// Split the budget: one worker per trial first (memory-clamped),
	// and when the trial fan-out is narrower than the budget (the
	// lone-big-job case), the remainder shards each run's vertex loop.
	// The per-run share rounds up — transient mild oversubscription
	// beats budgeted cores idling whenever parallelism doesn't divide
	// evenly. Both levels are deterministic, so the split affects
	// wall-clock only.
	trialWorkers := graphTrialWorkers(parallelism, q.Trials, q.N, q.graphDegree())
	perRun := (parallelism + trialWorkers - 1) / trialWorkers
	samplers := newTrialSamplers(q)
	trials := make([]Trial, q.Trials)
	err = sim.ForEachTrial(q.Trials, trialWorkers, func(i int) error {
		c := cfg
		c.Seed = rng.DeriveSeed(q.Seed, uint64(i))
		c.Parallelism = perRun
		c.Trace = samplers.forTrial(i)
		res, err := plurality.RunOnGraph(c)
		if err != nil {
			return err
		}
		trials[i] = Trial{
			Trial:     i,
			Rounds:    float64(res.Rounds),
			Consensus: res.Consensus,
			Winner:    res.Winner,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return trials, samplers.flatten(), nil
}

// gossipNodeBudget caps the node goroutines a single gossip request
// may have alive at once across its concurrent trials. MaxGossipN was
// sized for one network at a time; without this clamp a
// {n: MaxGossipN, trials: many} request on a many-core server would
// multiply that peak by the parallelism budget and could OOM the
// process on goroutine stacks alone.
const gossipNodeBudget = 1 << 18

// gossipTrialWorkers bounds a gossip request's trial fan-out so that
// concurrent networks stay within gossipNodeBudget total nodes (always
// allowing one trial).
func gossipTrialWorkers(parallelism int, n int64) int {
	workers := int(gossipNodeBudget / n)
	if workers < 1 {
		workers = 1
	}
	if workers > parallelism {
		workers = parallelism
	}
	return workers
}

func executeGossip(q Request, parallelism int) ([]Trial, []trace.Point, error) {
	cfg, err := q.GossipConfig()
	if err != nil {
		return nil, nil, err
	}
	samplers := newTrialSamplers(q)
	trials := make([]Trial, q.Trials)
	err = sim.ForEachTrial(q.Trials, gossipTrialWorkers(parallelism, q.N), func(i int) error {
		c := cfg
		c.Seed = rng.DeriveSeed(q.Seed, uint64(i))
		c.Trace = samplers.forTrial(i)
		res, err := plurality.RunGossip(c)
		if err != nil {
			return err
		}
		trials[i] = Trial{
			Trial:     i,
			Rounds:    float64(res.Rounds),
			Consensus: res.Consensus,
			Winner:    res.Winner,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return trials, samplers.flatten(), nil
}

func summarize(trials []Trial) Summary {
	s := Summary{Trials: len(trials), TopWinner: -1}
	rounds := make([]float64, len(trials))
	wins := make(map[int]int)
	for i, t := range trials {
		rounds[i] = t.Rounds
		if t.Consensus {
			s.Converged++
			wins[t.Winner]++
		}
	}
	if len(rounds) > 0 {
		s.MedianRounds = stats.Median(rounds)
		s.MeanRounds = stats.Mean(rounds)
		s.MinRounds, s.MaxRounds = rounds[0], rounds[0]
		for _, r := range rounds[1:] {
			s.MinRounds = min(s.MinRounds, r)
			s.MaxRounds = max(s.MaxRounds, r)
		}
	}
	for op, w := range wins {
		if w > s.TopWinnerWins || (w == s.TopWinnerWins && (s.TopWinner == -1 || op < s.TopWinner)) {
			s.TopWinner, s.TopWinnerWins = op, w
		}
	}
	return s
}

// EncodeJSONLine writes v's JSON encoding followed by a newline — the
// one serialisation used for /run bodies, /sweep NDJSON lines, and the
// CLIs' -json/-ndjson output, so all of them are byte-identical for
// the same work.
func EncodeJSONLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
