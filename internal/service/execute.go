package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"

	"plurality"
	"plurality/internal/analytic"
	"plurality/internal/stats"
	"plurality/internal/trace"
)

// Trial is one run's outcome inside a Response.
type Trial struct {
	// Trial is the trial index. Trial i's façade seed is
	// rng.DeriveSeed(Request.Seed, i): mode sync consumes it directly
	// as the trial's RNG stream (sim.RunMany's derivation), while the
	// async/graph/gossip engines expand it once more —
	// their root streams are rng.DeriveSeed(rng.DeriveSeed(Seed, i), j)
	// for engine-specific j. Both derivations are frozen: changing
	// either would silently invalidate every cached and recorded
	// Response (see TestTrialSeedContractPinned).
	Trial int `json:"trial"`
	// Rounds is the consensus (or stopping) time in
	// synchronous(-equivalent) rounds. It is fractional only in mode
	// async (Ticks/N).
	Rounds float64 `json:"rounds"`
	// Consensus reports whether the run converged within its budget.
	// A trial ended by a stop condition reports the consensus state at
	// the stopping round (almost always false — that is the point).
	Consensus bool `json:"consensus"`
	// Winner is the consensus opinion, or the plurality at cutoff.
	Winner int `json:"winner"`
	// Ticks is the number of single-vertex updates. It is present on
	// every async-mode trial — including a tick-0 convergence, so all
	// trials of a response share one shape — and absent otherwise.
	Ticks *int64 `json:"ticks,omitempty"`
}

// Summary aggregates the trials of a Response.
type Summary struct {
	// Trials is the number of runs executed.
	Trials int `json:"trials"`
	// Converged is how many reached consensus within their budget.
	Converged int `json:"converged"`
	// MedianRounds/MeanRounds/MinRounds/MaxRounds summarise the round
	// counts over all trials (converged or not).
	MedianRounds float64 `json:"median_rounds"`
	MeanRounds   float64 `json:"mean_rounds"`
	MinRounds    float64 `json:"min_rounds"`
	MaxRounds    float64 `json:"max_rounds"`
	// TopWinner is the opinion winning the most converged trials, and
	// TopWinnerWins its count; TopWinner is -1 when nothing converged.
	TopWinner     int `json:"top_winner"`
	TopWinnerWins int `json:"top_winner_wins"`
}

// Response is the result of executing a Request. Its JSON encoding is
// canonical: the same Request (by Key) always produces the same bytes,
// whether computed by a CLI, a server worker, or replayed from cache.
type Response struct {
	// Key is the canonical config key of the (normalized) Request.
	Key string `json:"key"`
	// Request echoes the normalized request that was executed.
	Request Request `json:"request"`
	// Summary aggregates the trials.
	Summary Summary `json:"summary"`
	// Trials holds the per-trial outcomes, indexed by trial.
	Trials []Trial `json:"trials"`
	// Trace holds the sampled round trace when Request.Trace was set:
	// every trial's kept points, concatenated in trial order (each
	// trial's points in round order). Absent on untraced requests, so
	// their Response bytes are unchanged from the pre-trace era.
	// Tracing never perturbs the engines' RNG streams: Summary and
	// Trials are byte-identical with and without it.
	Trace []trace.Point `json:"trace,omitempty"`
	// Method identifies the answer tier that produced the response:
	// "analytic" for the calibrated-model tier, absent for simulation
	// — so simulation Response bytes stay pinned to the pre-tier era.
	Method string `json:"method,omitempty"`
	// Analytic carries the analytic tier's full prediction (point
	// estimate, prediction interval, model version and confidence);
	// absent on simulated responses.
	Analytic *analytic.Prediction `json:"analytic,omitempty"`
}

// Execute runs the request in the calling goroutine (expanding into
// GOMAXPROCS trial workers) and returns its canonical response. It is
// a pure function of the request: same Request ⇒ same Response,
// regardless of caller. Errors are user errors (invalid
// configuration).
func Execute(q Request) (*Response, error) {
	return ExecuteParallel(q, 0)
}

// ExecuteParallel is Execute with an explicit parallelism budget
// (<= 0 means GOMAXPROCS). The request maps to one
// plurality.Experiment — the single execution path for all four modes
// — whose scheduler fans trials across up to that many workers
// (memory-clamped for the graph and gossip engines, with mode graph
// spending leftover budget on sharding each run's vertex loop).
// Parallelism is an execution hint only — the Response (and hence its
// canonical JSON encoding) is byte-identical for every value.
func ExecuteParallel(q Request, parallelism int) (*Response, error) {
	return ExecuteResumable(nil, q, parallelism, nil, 0, nil)
}

// ResumeState is a request's durable checkpoint: the trials completed
// so far plus where to pick back up. It is the opaque payload the
// durable journal stores under checkpoint records. Trials are
// independent in their index (the frozen per-trial seed contract), so
// executing trials NextTrial..NumTrials-1 and appending them to Trials
// yields bytes identical to an uninterrupted run — which is what makes
// the checkpoint exact rather than approximate.
type ResumeState struct {
	// NextTrial is the first trial index not yet executed; always
	// len(Trials).
	NextTrial int `json:"next_trial"`
	// Trials holds the completed per-trial outcomes, indexed by trial.
	Trials []Trial `json:"trials"`
	// Trace holds the completed trials' sampled points in trial order
	// (only when the request traces).
	Trace []trace.Point `json:"trace,omitempty"`
}

// valid reports whether the state can resume a q with the given trial
// count. A corrupt or mismatched checkpoint is discarded (run from
// trial 0) rather than trusted.
func (rs *ResumeState) valid(numTrials int) bool {
	return rs != nil && rs.NextTrial == len(rs.Trials) &&
		rs.NextTrial >= 0 && rs.NextTrial <= numTrials
}

// ExecuteResumable is the checkpointing execution path behind
// ExecuteParallel and the durable runner. It streams the request's
// trials in deterministic index order and:
//
//   - starts from resume.NextTrial when resume is a valid checkpoint
//     of this request (invalid or nil checkpoints are ignored and the
//     request runs from trial 0);
//   - after each `every`-th completed trial (every <= 1 means each
//     one), calls onCheckpoint with the progress so far — the callback
//     must copy or serialize the state before returning, as the
//     backing slices keep growing;
//   - stops claiming new trials once ctx is cancelled (nil ctx never
//     cancels), finishing in-flight trials and returning ctx.Err();
//     the last onCheckpoint then bounds the lost work to under
//     `every` trials.
//
// The completed Response is byte-identical to ExecuteParallel's for
// every (resume, every, parallelism): checkpointing observes the trial
// stream, never perturbs it.
func ExecuteResumable(ctx context.Context, q Request, parallelism int, resume *ResumeState, every int, onCheckpoint func(ResumeState)) (*Response, error) {
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Analytic-tier requests are answered in closed form: nothing to
	// stream, checkpoint or resume. They still flow through the
	// runner's cache and job machinery above this call unchanged.
	if q.Tier == TierAnalytic {
		return executeAnalytic(q)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	exp, err := q.Experiment()
	if err != nil {
		return nil, err
	}
	exp.Parallelism = parallelism
	numTrials := exp.NumTrials
	if numTrials == 0 {
		numTrials = 1 // Experiment normalizes 0 to 1
	}

	var trials []Trial
	var points []trace.Point
	if resume.valid(numTrials) {
		exp.FirstTrial = resume.NextTrial
		trials = append(trials, resume.Trials...)
		points = append(points, resume.Trace...)
	}
	if every < 1 {
		every = 1
	}
	sinceCheckpoint := 0
	streamErr := exp.Stream(ctx, func(i int, tr plurality.TrialResult) bool {
		t := Trial{
			Trial:     i,
			Rounds:    tr.Rounds,
			Consensus: tr.Consensus,
			Winner:    tr.Winner,
		}
		if q.Mode == ModeAsync {
			ticks := tr.Ticks
			t.Ticks = &ticks
		}
		trials = append(trials, t)
		if q.Trace != nil {
			// Points are concatenated in trial order, so the merged
			// trace is parallelism- and resume-independent.
			points = append(points, tr.Trace...)
		}
		sinceCheckpoint++
		if onCheckpoint != nil && sinceCheckpoint >= every && len(trials) < numTrials {
			onCheckpoint(ResumeState{NextTrial: len(trials), Trials: trials, Trace: points})
			sinceCheckpoint = 0
		}
		return true
	})
	if streamErr != nil {
		return nil, streamErr
	}
	if len(points) == 0 {
		points = nil
	}
	return &Response{
		Key:     q.Key(),
		Request: q,
		Summary: summarize(trials),
		Trials:  trials,
		Trace:   points,
	}, nil
}

// ShardResult is the outcome of executing one index-contiguous trial
// range of a request — the unit a cluster worker computes and ships
// back to its coordinator. Concatenating the shards of a request in
// range order reproduces exactly the trial (and trace) sequence of a
// single-process run: trial i's RNG stream is rng.DeriveSeed(Seed, i),
// independent of which process executes it, so sharding is an
// execution detail outside the response's identity.
type ShardResult struct {
	// Lo and Hi delimit the executed trial range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Trials holds the per-trial outcomes for trials Lo..Hi-1, in
	// trial-index order.
	Trials []Trial `json:"trials"`
	// Trace holds the range's sampled points in trial order (only when
	// the request traces).
	Trace []trace.Point `json:"trace,omitempty"`
}

// ExecuteShard runs only trials [lo, hi) of the request — the worker
// half of distributed execution. It is not a tier dispatcher: analytic
// requests have no trials to shard and must be answered by Execute.
// The shard's trials are byte-identical to the same index range of a
// local ExecuteParallel run (see the Request equivalence contract).
func ExecuteShard(ctx context.Context, q Request, parallelism int, lo, hi int) (*ShardResult, error) {
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Tier == TierAnalytic {
		return nil, fmt.Errorf("service: analytic-tier requests have no trial shards")
	}
	if lo < 0 || hi > q.Trials || lo >= hi {
		return nil, fmt.Errorf("service: shard [%d, %d) out of range for %d trials", lo, hi, q.Trials)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	exp, err := q.Experiment()
	if err != nil {
		return nil, err
	}
	exp.Parallelism = parallelism
	exp.FirstTrial = lo
	exp.NumTrials = hi
	sr := &ShardResult{Lo: lo, Hi: hi}
	streamErr := exp.Stream(ctx, func(i int, tr plurality.TrialResult) bool {
		t := Trial{
			Trial:     i,
			Rounds:    tr.Rounds,
			Consensus: tr.Consensus,
			Winner:    tr.Winner,
		}
		if q.Mode == ModeAsync {
			ticks := tr.Ticks
			t.Ticks = &ticks
		}
		sr.Trials = append(sr.Trials, t)
		if q.Trace != nil {
			sr.Trace = append(sr.Trace, tr.Trace...)
		}
		return true
	})
	if streamErr != nil {
		return nil, streamErr
	}
	return sr, nil
}

// MergeShards assembles the canonical Response from a request's shard
// results. The shards must exactly tile [0, q.Trials) — any gap,
// overlap, or out-of-range shard is an error, because a merged
// response with missing or duplicated trials would silently poison the
// result cache. The returned bytes-level encoding is identical to a
// single-process ExecuteParallel run of the same request: trials and
// trace points concatenate in trial-index order and the summary is
// recomputed from the full set.
func MergeShards(q Request, shards []*ShardResult) (*Response, error) {
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ordered := make([]*ShardResult, len(shards))
	copy(ordered, shards)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Lo < ordered[j].Lo })
	var trials []Trial
	var points []trace.Point
	next := 0
	for _, s := range ordered {
		if s == nil || s.Lo != next || s.Hi <= s.Lo || len(s.Trials) != s.Hi-s.Lo {
			return nil, fmt.Errorf("service: shard results do not tile [0, %d) (next=%d)", q.Trials, next)
		}
		trials = append(trials, s.Trials...)
		points = append(points, s.Trace...)
		next = s.Hi
	}
	if next != q.Trials {
		return nil, fmt.Errorf("service: shard results cover [0, %d) of %d trials", next, q.Trials)
	}
	if len(points) == 0 {
		points = nil
	}
	return &Response{
		Key:     q.Key(),
		Request: q,
		Summary: summarize(trials),
		Trials:  trials,
		Trace:   points,
	}, nil
}

func summarize(trials []Trial) Summary {
	s := Summary{Trials: len(trials), TopWinner: -1}
	rounds := make([]float64, len(trials))
	wins := make(map[int]int)
	for i, t := range trials {
		rounds[i] = t.Rounds
		if t.Consensus {
			s.Converged++
			wins[t.Winner]++
		}
	}
	if len(rounds) > 0 {
		s.MedianRounds = stats.Median(rounds)
		s.MeanRounds = stats.Mean(rounds)
		s.MinRounds, s.MaxRounds = rounds[0], rounds[0]
		for _, r := range rounds[1:] {
			s.MinRounds = min(s.MinRounds, r)
			s.MaxRounds = max(s.MaxRounds, r)
		}
	}
	for op, w := range wins {
		if w > s.TopWinnerWins || (w == s.TopWinnerWins && (s.TopWinner == -1 || op < s.TopWinner)) {
			s.TopWinner, s.TopWinnerWins = op, w
		}
	}
	return s
}

// EncodeJSONLine writes v's JSON encoding followed by a newline — the
// one serialisation used for /run bodies, /sweep NDJSON lines, and the
// CLIs' -json/-ndjson output, so all of them are byte-identical for
// the same work.
func EncodeJSONLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
