package service

import (
	"encoding/json"
	"fmt"
	"io"

	"plurality"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

// Trial is one run's outcome inside a Response.
type Trial struct {
	// Trial is the trial index; the run uses the derived seed
	// rng.DeriveSeed(Request.Seed, Trial) (see the Request contract).
	Trial int `json:"trial"`
	// Rounds is the consensus time in synchronous(-equivalent) rounds.
	// It is fractional only in mode async (Ticks/N).
	Rounds float64 `json:"rounds"`
	// Consensus reports whether the run converged within its budget.
	Consensus bool `json:"consensus"`
	// Winner is the consensus opinion, or the plurality at cutoff.
	Winner int `json:"winner"`
	// Ticks is the number of single-vertex updates (mode async only).
	Ticks int64 `json:"ticks,omitempty"`
}

// Summary aggregates the trials of a Response.
type Summary struct {
	// Trials is the number of runs executed.
	Trials int `json:"trials"`
	// Converged is how many reached consensus within their budget.
	Converged int `json:"converged"`
	// MedianRounds/MeanRounds/MinRounds/MaxRounds summarise the round
	// counts over all trials (converged or not).
	MedianRounds float64 `json:"median_rounds"`
	MeanRounds   float64 `json:"mean_rounds"`
	MinRounds    float64 `json:"min_rounds"`
	MaxRounds    float64 `json:"max_rounds"`
	// TopWinner is the opinion winning the most converged trials, and
	// TopWinnerWins its count; TopWinner is -1 when nothing converged.
	TopWinner     int `json:"top_winner"`
	TopWinnerWins int `json:"top_winner_wins"`
}

// Response is the result of executing a Request. Its JSON encoding is
// canonical: the same Request (by Key) always produces the same bytes,
// whether computed by a CLI, a server worker, or replayed from cache.
type Response struct {
	// Key is the canonical config key of the (normalized) Request.
	Key string `json:"key"`
	// Request echoes the normalized request that was executed.
	Request Request `json:"request"`
	// Summary aggregates the trials.
	Summary Summary `json:"summary"`
	// Trials holds the per-trial outcomes, indexed by trial.
	Trials []Trial `json:"trials"`
}

// Execute runs the request synchronously in the calling goroutine and
// returns its canonical response. It is a pure function of the
// request: same Request ⇒ same Response, regardless of caller. Errors
// are user errors (invalid configuration).
func Execute(q Request) (*Response, error) {
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var (
		trials []Trial
		err    error
	)
	switch q.Mode {
	case ModeSync:
		trials, err = executeSync(q)
	case ModeAsync:
		trials, err = executeAsync(q)
	case ModeGraph:
		trials, err = executeGraph(q)
	case ModeGossip:
		trials, err = executeGossip(q)
	default:
		err = fmt.Errorf("service: unknown mode %q", q.Mode)
	}
	if err != nil {
		return nil, err
	}
	return &Response{
		Key:     q.Key(),
		Request: q,
		Summary: summarize(trials),
		Trials:  trials,
	}, nil
}

func executeSync(q Request) ([]Trial, error) {
	cfg, err := q.Config()
	if err != nil {
		return nil, err
	}
	results, err := plurality.RunMany(cfg, q.Trials)
	if err != nil {
		return nil, err
	}
	trials := make([]Trial, len(results))
	for i, res := range results {
		trials[i] = Trial{
			Trial:     i,
			Rounds:    float64(res.Rounds),
			Consensus: res.Consensus,
			Winner:    res.Winner,
		}
	}
	return trials, nil
}

func executeAsync(q Request) ([]Trial, error) {
	cfg, err := q.Config()
	if err != nil {
		return nil, err
	}
	trials := make([]Trial, q.Trials)
	for i := range trials {
		cfg.Seed = rng.DeriveSeed(q.Seed, uint64(i))
		res, err := plurality.RunAsync(cfg, q.MaxTicks)
		if err != nil {
			return nil, err
		}
		trials[i] = Trial{
			Trial:     i,
			Rounds:    res.Rounds,
			Consensus: res.Consensus,
			Winner:    res.Winner,
			Ticks:     res.Ticks,
		}
	}
	return trials, nil
}

func executeGraph(q Request) ([]Trial, error) {
	cfg, err := q.GraphConfig()
	if err != nil {
		return nil, err
	}
	trials := make([]Trial, q.Trials)
	for i := range trials {
		cfg.Seed = rng.DeriveSeed(q.Seed, uint64(i))
		res, err := plurality.RunOnGraph(cfg)
		if err != nil {
			return nil, err
		}
		trials[i] = Trial{
			Trial:     i,
			Rounds:    float64(res.Rounds),
			Consensus: res.Consensus,
			Winner:    res.Winner,
		}
	}
	return trials, nil
}

func executeGossip(q Request) ([]Trial, error) {
	cfg, err := q.GossipConfig()
	if err != nil {
		return nil, err
	}
	trials := make([]Trial, q.Trials)
	for i := range trials {
		cfg.Seed = rng.DeriveSeed(q.Seed, uint64(i))
		res, err := plurality.RunGossip(cfg)
		if err != nil {
			return nil, err
		}
		trials[i] = Trial{
			Trial:     i,
			Rounds:    float64(res.Rounds),
			Consensus: res.Consensus,
			Winner:    res.Winner,
		}
	}
	return trials, nil
}

func summarize(trials []Trial) Summary {
	s := Summary{Trials: len(trials), TopWinner: -1}
	rounds := make([]float64, len(trials))
	wins := make(map[int]int)
	for i, t := range trials {
		rounds[i] = t.Rounds
		if t.Consensus {
			s.Converged++
			wins[t.Winner]++
		}
	}
	if len(rounds) > 0 {
		s.MedianRounds = stats.Median(rounds)
		s.MeanRounds = stats.Mean(rounds)
		s.MinRounds, s.MaxRounds = rounds[0], rounds[0]
		for _, r := range rounds[1:] {
			s.MinRounds = min(s.MinRounds, r)
			s.MaxRounds = max(s.MaxRounds, r)
		}
	}
	for op, w := range wins {
		if w > s.TopWinnerWins || (w == s.TopWinnerWins && (s.TopWinner == -1 || op < s.TopWinner)) {
			s.TopWinner, s.TopWinnerWins = op, w
		}
	}
	return s
}

// EncodeJSONLine writes v's JSON encoding followed by a newline — the
// one serialisation used for /run bodies, /sweep NDJSON lines, and the
// CLIs' -json/-ndjson output, so all of them are byte-identical for
// the same work.
func EncodeJSONLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
