package service

import (
	"strings"
	"testing"
)

func TestNormalizeDefaults(t *testing.T) {
	q := Request{Protocol: " 3-Majority ", N: 100, K: 4}.Normalize()
	if q.Protocol != "3-majority" || q.Init != "balanced" || q.Mode != ModeSync || q.Trials != 1 {
		t.Fatalf("normalize: %+v", q)
	}
}

func TestNormalizeCounts(t *testing.T) {
	q := Request{Protocol: "voter", Counts: []int64{3, 2, 1}}.Normalize()
	if q.Init != "counts" || q.N != 6 || q.K != 3 {
		t.Fatalf("counts normalize: %+v", q)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Request{Protocol: "3-Majority", N: 100, K: 4, Trials: 0}
	b := Request{Protocol: "3-majority", N: 100, K: 4, Trials: 1, Init: "balanced", Mode: "sync"}
	if a.Key() != b.Key() {
		t.Fatal("semantically identical requests hash differently")
	}
	c := b
	c.Seed = 99
	if c.Key() == b.Key() {
		t.Fatal("different seeds share a key")
	}
	d := b
	d.Protocol = "2-choices"
	if d.Key() == b.Key() {
		t.Fatal("different protocols share a key")
	}
	// Inert fields must not split the key: balanced ignores init_param
	// (the CLIs always populate it from a flag default), sync mode
	// ignores topology/ticks/loss parameters.
	e := b
	e.InitParam = 1
	e.InitParam2 = 2
	e.TopologyParam = 3
	e.MaxTicks = 4
	if e.Key() != b.Key() {
		t.Fatal("inert parameters split the cache key")
	}
	f := b
	f.Init = "zipf"
	f.InitParam = 1.5
	if f.Key() == b.Key() {
		t.Fatal("consumed init_param ignored by the key")
	}
	// An adversary half-specified (name without budget, or budget
	// without name) never runs, so it must not split the key either.
	g := b
	g.Adversary = "hinder" // adversary_f 0 => inert
	h := b
	h.AdversaryF = 7 // no strategy => inert
	if g.Key() != b.Key() || h.Key() != b.Key() {
		t.Fatal("inert adversary halves split the cache key")
	}
	if g.Normalize().Adversary != "" || h.Normalize().AdversaryF != 0 {
		t.Fatal("inert adversary halves survive normalization")
	}
	i := b
	i.Adversary = "hinder"
	i.AdversaryF = 7
	if i.Key() == b.Key() {
		t.Fatal("active adversary ignored by the key")
	}
}

func TestValidateResourceCaps(t *testing.T) {
	cases := map[string]Request{
		"sync n":   {Protocol: "voter", N: MaxSyncN + 1, K: 2},
		"graph n":  {Protocol: "voter", N: MaxGraphN + 1, K: 2, Mode: ModeGraph},
		"gossip n": {Protocol: "voter", N: MaxGossipN + 1, K: 2, Mode: ModeGossip},
		"k":        {Protocol: "voter", N: MaxSyncN, K: MaxK + 1},
		// The original hang repro: a graph-mode hypercube with n near
		// 2^62 must be rejected upfront, never reaching a worker.
		"hypercube": {Protocol: "voter", N: 4611686018427387905, K: 2, Mode: ModeGraph, Topology: "hypercube"},
	}
	for name, q := range cases {
		if err := q.Normalize().Validate(); err == nil {
			t.Errorf("%s: oversized request accepted", name)
		}
	}
}

func TestParseTopologyHugeNTerminates(t *testing.T) {
	// Defense in depth below the Validate caps: the side/dimension
	// derivation loops must terminate (rejecting) even for n values
	// whose squares or shifted powers overflow int64.
	if _, err := parseTopology("hypercube", 0, 1<<62+1); err == nil {
		t.Error("huge non-power-of-two hypercube accepted")
	}
	if _, err := parseTopology("torus", 0, 1<<62+1); err == nil {
		t.Error("huge non-square torus accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	base := Request{Protocol: "3-majority", N: 100, K: 4}
	cases := []struct {
		name   string
		mutate func(*Request)
		want   string
	}{
		{"protocol", func(q *Request) { q.Protocol = "nope" }, "unknown protocol"},
		{"init", func(q *Request) { q.Init = "nope" }, "unknown init"},
		{"n", func(q *Request) { q.N = 0 }, "n must be"},
		{"k", func(q *Request) { q.K = 0 }, "k must be"},
		{"trials", func(q *Request) { q.Trials = MaxTrials + 1 }, "trials must be"},
		{"max_rounds", func(q *Request) { q.MaxRounds = -1 }, "max_rounds"},
		{"adversary", func(q *Request) { q.Adversary = "evil" }, "unknown adversary"},
		{"adversary_f", func(q *Request) { q.Adversary = "hinder"; q.AdversaryF = -1 }, "adversary_f"},
		{"mode", func(q *Request) { q.Mode = "warp" }, "unknown mode"},
		{"mode-protocol", func(q *Request) { q.Mode = ModeAsync; q.Protocol = "median" }, "supports protocols"},
		{"mode-adversary", func(q *Request) { q.Mode = ModeGossip; q.Adversary = "hinder"; q.AdversaryF = 1 }, "adversaries are supported"},
		{"topology", func(q *Request) { q.Mode = ModeGraph; q.Topology = "klein-bottle" }, "unknown topology"},
		{"loss_prob", func(q *Request) { q.Mode = ModeGossip; q.LossProb = 1 }, "loss_prob"},
	}
	for _, c := range cases {
		q := base
		c.mutate(&q)
		q = q.Normalize()
		err := q.Validate()
		if err == nil {
			t.Errorf("%s: invalid request accepted: %+v", c.name, q)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := base.Normalize().Validate(); err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
}

func TestParseProtocol(t *testing.T) {
	for name, want := range map[string]string{
		"3-majority":        "3-majority",
		"2-choices":         "2-choices",
		"voter":             "voter",
		"median":            "median",
		"undecided":         "undecided",
		"h5":                "majority-h5",
		"lazy:0.5:voter":    "lazy0.50-voter",
		"lazy:0:3-majority": "lazy0.00-3-majority",
	} {
		p, err := ParseProtocol(name)
		if err != nil {
			t.Errorf("ParseProtocol(%q): %v", name, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("ParseProtocol(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	for _, name := range []string{"", "h0", "hx", "quantum", "lazy:2:voter", "lazy:0.5", "lazy:0.5:median", "lazy:0.5:lazy:0.5:voter"} {
		if _, err := ParseProtocol(name); err == nil {
			t.Errorf("ParseProtocol(%q) should fail", name)
		}
	}
}

func TestBuildInit(t *testing.T) {
	for _, name := range []string{"balanced", "zipf", "geometric", "planted", "two-leaders"} {
		if _, err := buildInit(Request{Init: name, K: 4, InitParam: 0.5, InitParam2: 0.1}); err != nil {
			t.Errorf("buildInit(%q): %v", name, err)
		}
	}
	if _, err := buildInit(Request{Init: "weird", K: 4}); err == nil {
		t.Error("buildInit(weird) should fail")
	}
	if _, err := buildInit(Request{Init: "counts"}); err == nil {
		t.Error("counts init without counts should fail")
	}
}

func TestParseTopologyDerivedParams(t *testing.T) {
	if _, err := parseTopology("torus", 0, 49); err != nil {
		t.Errorf("square torus rejected: %v", err)
	}
	if _, err := parseTopology("torus", 0, 50); err == nil {
		t.Error("non-square torus accepted without side")
	}
	if _, err := parseTopology("hypercube", 0, 64); err != nil {
		t.Errorf("power-of-two hypercube rejected: %v", err)
	}
	if _, err := parseTopology("hypercube", 0, 65); err == nil {
		t.Error("non-power-of-two hypercube accepted without dim")
	}
}
