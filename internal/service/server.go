package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"

	"plurality/internal/trace"
)

// HTTP conventions of the conserve API, shared by server and clients.
const (
	// CacheHeader reports whether a /run response was served from the
	// result cache ("hit") or computed ("miss"). It is a header — not
	// a body field — so cold and cached bodies stay byte-identical.
	CacheHeader = "X-Conserve-Cache"
	// RetryAfterMinSeconds and RetryAfterMaxSeconds bound the
	// Retry-After hint sent with 429. The value is jittered uniformly
	// in [min, max] so a burst of rejected clients does not retry in
	// lockstep and re-create the very overload that rejected them.
	RetryAfterMinSeconds = 1
	RetryAfterMaxSeconds = 3
)

// NewServer wraps a Runner into the conserve HTTP handler:
//
//	POST /run          execute a Request; ?detach=1 returns 202 + job;
//	                   ?trace=1 requests a round trace (default spec if
//	                   the body has none) and streams it as NDJSON
//	POST /sweep        execute a SweepRequest, streaming NDJSON points
//	GET  /jobs/{id}    poll a detached job
//	GET  /healthz      liveness probe
//	GET  /metrics      Prometheus-style counters
//
// Invalid requests get 400, a full queue 429 with Retry-After, and
// /run bodies are canonical: byte-identical cold, cached, or via the
// CLIs' -json/-ndjson modes.
func NewServer(rn *Runner) http.Handler {
	return NewServerWith(rn, Extra{})
}

// Extra extends the conserve handler for cluster mode without the
// service layer importing the cluster package: extra route prefixes
// (the /cluster/* replication and shard endpoints) and extra /metrics
// lines (cluster leadership, shard requeues, peer-cache hits) appended
// after the runner's own counters.
type Extra struct {
	// Routes maps mux patterns (e.g. "/cluster/") to their handlers.
	Routes map[string]http.Handler
	// Metrics, when non-nil, writes additional Prometheus-style lines
	// after the runner metrics.
	Metrics func(w io.Writer)
}

// NewServerWith is NewServer plus cluster extensions.
func NewServerWith(rn *Runner, extra Extra) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		handleRun(rn, w, r)
	})
	mux.HandleFunc("POST /sweep", func(w http.ResponseWriter, r *http.Request) {
		handleSweep(rn, w, r)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleJob(rn, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeMetrics(w, rn.Metrics())
		if extra.Metrics != nil {
			extra.Metrics(w)
		}
	})
	for pattern, h := range extra.Routes {
		mux.Handle(pattern, h)
	}
	return mux
}

func handleRun(rn *Runner, w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// ?trace=1 asks for a round trace and NDJSON output. A body that
	// already names a trace spec keeps it; otherwise the default
	// (adaptive) spec is injected — so the query form and the explicit
	// body form describe, and cache as, the same request.
	traceNDJSON := r.URL.Query().Get("trace") != ""
	if traceNDJSON && req.Trace == nil {
		req.Trace = &trace.Spec{}
	}
	if r.URL.Query().Get("detach") != "" {
		job, resp, err := rn.Submit(req)
		switch {
		case errors.Is(err, ErrBusy):
			writeBusy(w)
		case errors.Is(err, ErrDraining):
			writeDraining(w)
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
		case resp != nil: // already cached; no job needed
			w.Header().Set(CacheHeader, "hit")
			writeResponse(w, resp)
		default:
			w.Header().Set("Location", "/jobs/"+job.ID)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			EncodeJSONLine(w, job.Snapshot())
		}
		return
	}
	resp, cached, err := rn.Do(r.Context(), req)
	switch {
	case errors.Is(err, ErrBusy):
		writeBusy(w)
	case errors.Is(err, ErrDraining):
		writeDraining(w)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		if cached {
			w.Header().Set(CacheHeader, "hit")
		} else {
			w.Header().Set(CacheHeader, "miss")
		}
		if traceNDJSON {
			w.Header().Set("Content-Type", "application/x-ndjson")
			flusher, _ := w.(http.Flusher)
			WriteTraceNDJSON(w, resp, func() {
				if flusher != nil {
					flusher.Flush()
				}
			})
		} else {
			writeResponse(w, resp)
		}
	}
}

// WriteTraceNDJSON writes a traced response in the NDJSON trace
// format: one line per trace point, then the canonical Response line
// with the trace stripped (its points were already streamed). The
// bytes are a pure function of the response — consim -trace emits the
// same stream the server does. onLine, if non-nil, runs after every
// line (the server flushes there).
func WriteTraceNDJSON(w io.Writer, resp *Response, onLine func()) error {
	for _, p := range resp.Trace {
		if err := EncodeJSONLine(w, p); err != nil {
			return err
		}
		if onLine != nil {
			onLine()
		}
	}
	stripped := *resp
	stripped.Trace = nil
	if err := EncodeJSONLine(w, &stripped); err != nil {
		return err
	}
	if onLine != nil {
		onLine()
	}
	return nil
}

func handleSweep(rn *Runner, w http.ResponseWriter, r *http.Request) {
	var sr SweepRequest
	if err := decodeJSON(r, &sr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Headers are committed lazily on the first emitted line, so Sweep's
	// upfront point validation can still produce a 400; once streaming
	// has begun, an error (client gone, runner closing) just ends the
	// NDJSON short — detectable by the client as line count < points.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	emitted := false
	err := rn.Sweep(r.Context(), sr, func(p SweepPoint) error {
		emitted = true
		if err := EncodeJSONLine(w, p); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil && !emitted {
		switch {
		case errors.Is(err, ErrBusy):
			writeBusy(w)
		case errors.Is(err, ErrDraining):
			writeDraining(w)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
	}
}

func handleJob(rn *Runner, w http.ResponseWriter, r *http.Request) {
	job, ok := rn.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	EncodeJSONLine(w, job.Snapshot())
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	return nil
}

func writeResponse(w http.ResponseWriter, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	EncodeJSONLine(w, resp)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	EncodeJSONLine(w, map[string]string{"error": err.Error()})
}

func writeBusy(w http.ResponseWriter) {
	after := RetryAfterMinSeconds + rand.IntN(RetryAfterMaxSeconds-RetryAfterMinSeconds+1)
	w.Header().Set("Retry-After", fmt.Sprint(after))
	writeError(w, http.StatusTooManyRequests, ErrBusy)
}

// writeDraining answers a submission rejected because the server is
// shutting down: 503 tells load balancers (unlike 429) to take the
// instance out of rotation rather than retry against it.
func writeDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", fmt.Sprint(RetryAfterMaxSeconds))
	writeError(w, http.StatusServiceUnavailable, ErrDraining)
}

func writeMetrics(w http.ResponseWriter, m Metrics) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP conserve_requests_total Admission attempts (run + sweep points).\n")
	fmt.Fprintf(w, "conserve_requests_total %d\n", m.Requests)
	fmt.Fprintf(w, "# HELP conserve_analytic_requests_total Admissions dispatched to the analytic answer tier.\n")
	fmt.Fprintf(w, "conserve_analytic_requests_total %d\n", m.Analytic)
	fmt.Fprintf(w, "# HELP conserve_cache_hits_total Requests served from the result cache.\n")
	fmt.Fprintf(w, "conserve_cache_hits_total %d\n", m.CacheHits)
	fmt.Fprintf(w, "conserve_cache_misses_total %d\n", m.CacheMisses)
	fmt.Fprintf(w, "# HELP conserve_joined_total Requests deduped onto an in-flight identical job.\n")
	fmt.Fprintf(w, "conserve_joined_total %d\n", m.Joined)
	fmt.Fprintf(w, "# HELP conserve_rejected_total Backpressure rejections (HTTP 429).\n")
	fmt.Fprintf(w, "conserve_rejected_total %d\n", m.Rejected)
	fmt.Fprintf(w, "# HELP conserve_executions_total Simulations actually run by workers.\n")
	fmt.Fprintf(w, "conserve_executions_total %d\n", m.Executions)
	fmt.Fprintf(w, "conserve_queue_len %d\n", m.QueueLen)
	fmt.Fprintf(w, "conserve_queue_cap %d\n", m.QueueCap)
	fmt.Fprintf(w, "conserve_workers %d\n", m.Workers)
	fmt.Fprintf(w, "conserve_parallelism %d\n", m.Parallelism)
	fmt.Fprintf(w, "conserve_cache_len %d\n", m.CacheLen)
	fmt.Fprintf(w, "conserve_jobs_in_flight %d\n", m.JobsInFlight)
	fmt.Fprintf(w, "# HELP conserve_job_retries_total Execution attempts beyond each job's first.\n")
	fmt.Fprintf(w, "conserve_job_retries_total %d\n", m.Retries)
	fmt.Fprintf(w, "# HELP conserve_jobs_recovered_total Interrupted jobs re-queued from the journal at startup.\n")
	fmt.Fprintf(w, "conserve_jobs_recovered_total %d\n", m.Recovered)
	fmt.Fprintf(w, "# HELP conserve_disk_hits_total Results served from the durable result cache after an LRU miss.\n")
	fmt.Fprintf(w, "conserve_disk_hits_total %d\n", m.DiskHits)
	fmt.Fprintf(w, "# HELP conserve_journal_replay_seconds Startup journal replay duration.\n")
	fmt.Fprintf(w, "conserve_journal_replay_seconds %g\n", m.ReplaySeconds)
	fmt.Fprintf(w, "# HELP conserve_drain_inflight Jobs still in flight while draining (0 when not draining).\n")
	fmt.Fprintf(w, "conserve_drain_inflight %d\n", m.DrainInFlight)
}
