package service

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"plurality/internal/analytic"
	"plurality/internal/population"
	"plurality/internal/stop"
	"plurality/internal/trace"
)

// TestSimulationTierKeysPinned is the tier twin of
// TestUntracedKeysPinned: adding the tier field must leave every
// simulation-tier key byte-identical (absent field, omitempty), the
// explicit default tier must key like the absent one, and the
// analytic keys themselves are pinned — with the per-trial knobs
// cleared as inert, so seed-sweeping clients land on one cache entry.
func TestSimulationTierKeysPinned(t *testing.T) {
	// The first TestUntracedKeysPinned request, with its pre-tier key.
	base := Request{Protocol: "3-majority", N: 100_000, K: 100, Seed: 1}
	const baseKey = "be721c080276ca0dacf7088cac1edd6a21d5186e75e830d27f737ef4c1f2f87c"
	if got := base.Key(); got != baseKey {
		t.Errorf("simulation key rotated:\n got %s\nwant %s", got, baseKey)
	}
	explicit := base
	explicit.Tier = "simulation"
	if explicit.Key() != baseKey {
		t.Error("explicit tier \"simulation\" split the cache key of the default tier")
	}

	pinned := []struct {
		req Request
		key string
	}{
		{Request{Protocol: "3-majority", N: 1_000_000_000, K: 100, Tier: "analytic"},
			"d72603934ffa7d995c2cd056069e00c3e4b2c6ac6f23bfb7ed22d4539eb44749"},
		// Auto-promoted (n > MaxSyncN, no explicit tier).
		{Request{Protocol: "2-choices", N: 10_000_000_000, K: 64},
			"35cb269bfafb59d4ec41df1a0269dd93f0949ce11a00198350de8ed6eb6198b6"},
	}
	for _, p := range pinned {
		if got := p.req.Key(); got != p.key {
			t.Errorf("analytic key of %+v rotated:\n got %s\nwant %s", p.req, got, p.key)
		}
	}

	// The promoted form and the explicit analytic form are one key.
	promoted := Request{Protocol: "2-choices", N: 10_000_000_000, K: 64}
	explicitA := promoted
	explicitA.Tier = TierAnalytic
	if promoted.Key() != explicitA.Key() {
		t.Error("auto-promoted and explicit analytic requests key differently")
	}

	// Seed, trials and max_rounds are inert under the analytic tier.
	varied := Request{Protocol: "3-majority", N: 1_000_000_000, K: 100, Tier: "analytic",
		Seed: 99, Trials: 7, MaxRounds: 5000}
	if varied.Key() != pinned[0].key {
		t.Error("inert per-trial knobs split the analytic cache key")
	}
}

func TestAnalyticExecuteEndToEnd(t *testing.T) {
	q := Request{Protocol: "3-majority", N: 1_000_000_000, K: 100, Tier: "analytic"}
	resp, err := Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != MethodAnalytic {
		t.Errorf("method = %q, want %q", resp.Method, MethodAnalytic)
	}
	p := resp.Analytic
	if p == nil {
		t.Fatal("no analytic prediction on the response")
	}
	if !(p.RoundsLo < p.Rounds && p.Rounds < p.RoundsHi) {
		t.Errorf("prediction interval not ordered: %+v", p)
	}
	if p.ModelVersion != analytic.ModelVersion || p.Confidence <= 0 {
		t.Errorf("prediction metadata: %+v", p)
	}
	if resp.Summary.MedianRounds != p.Rounds || resp.Summary.MinRounds != p.RoundsLo ||
		resp.Summary.MaxRounds != p.RoundsHi || resp.Summary.Trials != 0 {
		t.Errorf("summary does not mirror the prediction: %+v", resp.Summary)
	}
	if resp.Key != q.Key() {
		t.Errorf("key mismatch: %s vs %s", resp.Key, q.Key())
	}
	// Canonical bytes: same request ⇒ same bytes, and the trials field
	// is an empty array, not null.
	first, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), `"trials":[]`) {
		t.Errorf("analytic response should carry an empty trials array: %s", first)
	}
	again, err := Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := json.Marshal(again)
	if string(first) != string(second) {
		t.Error("analytic responses are not byte-identical across executions")
	}
}

func TestAnalyticAutoPromotion(t *testing.T) {
	// n beyond MaxSyncN used to be a hard 400; an eligible request is
	// now promoted and answered analytically.
	q := Request{Protocol: "2-choices", N: 10_000_000_000, K: 64}
	resp, err := Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Request.Tier != TierAnalytic || resp.Method != MethodAnalytic {
		t.Errorf("request not promoted: tier %q method %q", resp.Request.Tier, resp.Method)
	}
	// Ineligible protocols keep the old rejection.
	if _, err := Execute(Request{Protocol: "voter", N: 10_000_000_000, K: 64}); err == nil {
		t.Error("voter beyond MaxSyncN should still be rejected")
	}
	// Non-sync modes keep their own caps.
	if _, err := Execute(Request{Protocol: "3-majority", Mode: "graph", N: 10_000_000_000, K: 8}); err == nil {
		t.Error("graph mode beyond MaxGraphN should still be rejected")
	}
}

func TestAnalyticValidation(t *testing.T) {
	bad := []Request{
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "oracle"},
		{Protocol: "voter", N: 1000, K: 8, Tier: "analytic"},
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "analytic", Mode: "async"},
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "analytic", Adversary: "hinder", AdversaryF: 5},
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "analytic", Trace: &trace.Spec{}},
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "analytic", Stop: &stop.Spec{GammaAtLeast: 0.5}},
		{Protocol: "3-majority", N: 1, K: 1, Tier: "analytic"},
		{Protocol: "3-majority", N: MaxAnalyticN + 1, K: 8, Tier: "analytic"},
		{Protocol: "3-majority", N: 1000, K: 2000, Tier: "analytic"}, // k > n
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "analytic", Init: "zipf", InitParam: math.Inf(1)},
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "analytic", Init: "geometric", InitParam: 1.5},
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "analytic", Init: "planted", InitParam: 0.99},
		{Protocol: "3-majority", N: 1000, K: 8, Tier: "analytic", Init: "two-leaders", InitParam: 1.4},
		{Protocol: "3-majority", Tier: "analytic", Counts: []int64{10, -1}},
	}
	for _, q := range bad {
		if err := q.Normalize().Validate(); err == nil {
			t.Errorf("accepted %+v", q)
		}
	}
	good := []Request{
		{Protocol: "3-majority", N: 1_000_000_000, K: 100, Tier: "analytic"},
		{Protocol: "2-choices", N: MaxAnalyticN, K: 1 << 20, Tier: "analytic", Init: "zipf", InitParam: 1.1},
		{Protocol: "3-majority", Tier: "analytic", Counts: []int64{500_000, 250_000, 250_000}},
		{Protocol: "3-majority", N: 1_000_000_000, K: 50, Tier: "analytic", Init: "planted", InitParam: 0.2},
		{Protocol: "2-choices", N: 1_000_000_000, K: 2, Tier: "analytic", Init: "two-leaders", InitParam: 0.6, InitParam2: 0.2},
	}
	for _, q := range good {
		if err := q.Normalize().Validate(); err != nil {
			t.Errorf("rejected %+v: %v", q, err)
		}
	}
}

// TestInitProfileMatchesGenerators pins the closed-form init profiles
// to the generators they model: the analytic tier's (γ₀, δ) must
// agree with the exact profile of the materialized configuration up
// to the O(1/n) largest-remainder rounding.
func TestInitProfileMatchesGenerators(t *testing.T) {
	const n = int64(1_000_000)
	cases := []struct {
		name string
		req  Request
		vec  *population.Vector
	}{
		{"balanced", Request{Init: "balanced", K: 97}, population.Balanced(n, 97)},
		{"planted", Request{Init: "planted", K: 50, InitParam: 0.2}, population.PlantedBias(n, 50, int64(0.2*float64(n)))},
		{"zipf", Request{Init: "zipf", K: 100, InitParam: 1.2}, mustVec(population.Zipf(n, 100, 1.2))},
		{"zipf-flat", Request{Init: "zipf", K: 50, InitParam: 0}, mustVec(population.Zipf(n, 50, 0))},
		{"geometric", Request{Init: "geometric", K: 40, InitParam: 0.7}, mustVec(population.Geometric(n, 40, 0.7))},
		{"geometric-flat", Request{Init: "geometric", K: 10, InitParam: 1}, mustVec(population.Geometric(n, 10, 1))},
		{"two-leaders", Request{Init: "two-leaders", K: 30, InitParam: 0.5, InitParam2: 0.1}, mustVec(population.TwoLeaders(n, 30, 0.5, 0.1))},
		{"two-leaders-k2", Request{Init: "two-leaders", K: 2, InitParam: 0.6, InitParam2: 0.2}, mustVec(population.TwoLeaders(n, 2, 0.6, 0.2))},
	}
	for _, c := range cases {
		c.req.Protocol = "3-majority"
		c.req.N = n
		c.req.Tier = TierAnalytic
		q := c.req.Normalize()
		gamma0, delta, err := q.initProfile()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		wantG, wantD := analytic.Profile(c.vec.Counts())
		if relDiff(gamma0, wantG) > 1e-2 || relDiff(delta, wantD) > 1e-2 {
			t.Errorf("%s: profile (%v, %v) vs materialized (%v, %v)", c.name, gamma0, delta, wantG, wantD)
		}
	}
}

func mustVec(v *population.Vector, err error) *population.Vector {
	if err != nil {
		panic(err)
	}
	return v
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestAnalyticTierThroughServer drives the tier through the full HTTP
// stack: POST /run with n=10⁹ answers 200 with method "analytic", a
// second POST is a cache hit, and /metrics exposes the tier counter.
func TestAnalyticTierThroughServer(t *testing.T) {
	rn := NewRunner(Options{Workers: 1})
	defer rn.Close()
	srv := httptest.NewServer(NewServer(rn))
	defer srv.Close()

	body := `{"protocol":"3-majority","n":1000000000,"k":100,"tier":"analytic"}`
	var bodies []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /run: %d: %s", resp.StatusCode, data)
		}
		wantCache := "miss"
		if i > 0 {
			wantCache = "hit"
		}
		if got := resp.Header.Get(CacheHeader); got != wantCache {
			t.Errorf("request %d: cache header %q, want %q", i, got, wantCache)
		}
		bodies = append(bodies, string(data))
		var r Response
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		if r.Method != MethodAnalytic || r.Analytic == nil {
			t.Errorf("request %d: method %q analytic %v", i, r.Method, r.Analytic)
		}
	}
	if bodies[0] != bodies[1] {
		t.Error("cold and cached analytic bodies differ")
	}

	m, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(m.Body)
	m.Body.Close()
	if !strings.Contains(string(metrics), "conserve_analytic_requests_total 2") {
		t.Errorf("metrics missing analytic counter:\n%s", metrics)
	}
}
