package service

import (
	"fmt"
	"math"

	"plurality/internal/analytic"
)

// Answer tiers accepted by Request.Tier. The zero value means
// simulation — the tier every pre-tier request implicitly ran on.
const (
	// TierSimulation is the explicit name for the default tier;
	// Normalize clears it to "" so naming the default cannot split the
	// cache key of otherwise identical requests.
	TierSimulation = "simulation"
	// TierAnalytic answers from the calibrated scaling-law model
	// (internal/analytic) without simulating: microseconds and O(k)
	// memory at any n up to MaxAnalyticN. Requests whose n exceeds
	// MaxSyncN are promoted to it automatically when eligible.
	TierAnalytic = "analytic"
)

// MethodAnalytic is Response.Method for analytic-tier answers. The
// simulation tier leaves Method empty — its Response bytes (and cache
// keys) are pinned byte-identical to the pre-tier era.
const MethodAnalytic = "analytic"

// MaxAnalyticN bounds N for the analytic tier. The model evaluates in
// float64 and extrapolates in ln n beyond its calibrated range
// (population.MaxN ≈ 3·10⁹), so the cap is about honesty, not memory:
// 10¹⁵ already stretches the fitted constants six decades past
// calibration, and the prediction interval does not widen to say so.
const MaxAnalyticN = 1_000_000_000_000_000

// analyticDynamics reports whether the protocol has a fitted analytic
// law (the paper's two dynamics).
func analyticDynamics(protocol string) bool {
	_, ok := analytic.DynamicsByName(protocol)
	return ok
}

// validateAnalytic is Validate's tier-analytic arm. The analytic
// answer is a closed-form function of (protocol, n, initial densities)
// — anything that only makes sense trial-by-trial (adversaries,
// traces, stop conditions, non-sync engines) is rejected rather than
// silently ignored, and the init profile is computed here so a bad
// generator parameter is a 400 at admission, not a failed job.
func (q Request) validateAnalytic() error {
	if q.Mode != ModeSync {
		return fmt.Errorf("service: tier %q supports mode %q only, got %q", TierAnalytic, ModeSync, q.Mode)
	}
	if !analyticDynamics(q.Protocol) {
		return fmt.Errorf("service: tier %q covers protocols 3-majority and 2-choices, got %q", TierAnalytic, q.Protocol)
	}
	if q.N < 2 || q.N > MaxAnalyticN {
		return fmt.Errorf("service: n must be in [2, %d] for tier %q, got %d", int64(MaxAnalyticN), TierAnalytic, q.N)
	}
	if q.Init != "counts" && q.K < 1 {
		return fmt.Errorf("service: k must be >= 1, got %d", q.K)
	}
	if q.K > MaxK {
		return fmt.Errorf("service: k must be <= %d, got %d", MaxK, q.K)
	}
	if q.Adversary != "" {
		return fmt.Errorf("service: tier %q cannot model adversaries; drop the adversary or the tier", TierAnalytic)
	}
	if q.Trace != nil {
		return fmt.Errorf("service: tier %q produces no rounds to trace; drop the trace or the tier", TierAnalytic)
	}
	if q.Stop != nil {
		return fmt.Errorf("service: tier %q predicts consensus times only; drop the stop condition or the tier", TierAnalytic)
	}
	_, _, err := q.initProfile()
	return err
}

// initProfile reduces the normalized request's initial condition to
// the densities the analytic model consumes: γ₀ = Σα_i² and
// δ = max α_i. Counts and balanced are exact; the parametric
// generators use their continuum fractions, whose largest-remainder
// rounding the simulation applies is O(1/n) — far inside the model's
// prediction interval (TestInitProfileMatchesGenerators pins the
// agreement). Cost is O(1) for balanced/geometric/planted/two-leaders
// and O(k) for zipf and counts; nothing depends on n.
func (q Request) initProfile() (gamma0, delta float64, err error) {
	n := float64(q.N)
	k := float64(q.K)
	switch q.Init {
	case "counts":
		for i, c := range q.Counts {
			if c < 0 {
				return 0, 0, fmt.Errorf("service: counts[%d] = %d is negative", i, c)
			}
		}
		gamma0, delta = analytic.Profile(q.Counts)
		if delta == 0 {
			return 0, 0, fmt.Errorf("service: counts are all zero")
		}
		return gamma0, delta, nil
	case "balanced":
		if int64(q.K) > q.N {
			return 0, 0, fmt.Errorf("service: balanced init needs k <= n, got k=%d n=%d", q.K, q.N)
		}
		base := q.N / int64(q.K)
		extra := q.N % int64(q.K)
		bf, ef := float64(base), float64(extra)
		gamma0 = (ef*(bf+1)*(bf+1) + (k-ef)*bf*bf) / (n * n)
		delta = bf / n
		if extra > 0 {
			delta = (bf + 1) / n
		}
		return gamma0, delta, nil
	case "planted":
		if q.K < 2 || int64(q.K) > q.N {
			return 0, 0, fmt.Errorf("service: planted init needs 2 <= k <= n, got k=%d n=%d", q.K, q.N)
		}
		f := q.InitParam
		if f < 0 || math.IsNaN(f) {
			return 0, 0, fmt.Errorf("service: planted extra fraction %v is negative", f)
		}
		other := 1/k - f/(k-1)
		if other < 0 {
			return 0, 0, fmt.Errorf("service: planted extra fraction %v exceeds the donors' supply", f)
		}
		leader := 1/k + f
		return leader*leader + (k-1)*other*other, leader, nil
	case "zipf":
		if int64(q.K) > q.N {
			return 0, 0, fmt.Errorf("service: zipf init needs k <= n, got k=%d n=%d", q.K, q.N)
		}
		s := q.InitParam
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return 0, 0, fmt.Errorf("service: zipf exponent %v is not finite", s)
		}
		var sum, sumSq, maxW float64
		for i := 0; i < q.K; i++ {
			w := math.Pow(float64(i+1), -s)
			sum += w
			sumSq += w * w
			maxW = math.Max(maxW, w)
		}
		return sumSq / (sum * sum), maxW / sum, nil
	case "geometric":
		if int64(q.K) > q.N {
			return 0, 0, fmt.Errorf("service: geometric init needs k <= n, got k=%d n=%d", q.K, q.N)
		}
		r := q.InitParam
		if r <= 0 || r > 1 || math.IsNaN(r) {
			return 0, 0, fmt.Errorf("service: geometric ratio %v out of (0, 1]", r)
		}
		if r == 1 {
			return 1 / k, 1 / k, nil
		}
		sum := (1 - math.Pow(r, k)) / (1 - r)
		sumSq := (1 - math.Pow(r, 2*k)) / (1 - r*r)
		return sumSq / (sum * sum), 1 / sum, nil
	case "two-leaders":
		if q.K < 2 || int64(q.K) > q.N {
			return 0, 0, fmt.Errorf("service: two-leaders init needs 2 <= k <= n, got k=%d n=%d", q.K, q.N)
		}
		topFrac, bias := q.InitParam, q.InitParam2
		if topFrac <= 0 || topFrac > 1 || bias < 0 || bias > topFrac ||
			math.IsNaN(topFrac) || math.IsNaN(bias) {
			return 0, 0, fmt.Errorf("service: two-leaders top_frac=%v bias=%v out of range", topFrac, bias)
		}
		f0 := topFrac/2 + bias/2
		f1 := topFrac/2 - bias/2
		rest := 0.0
		if q.K > 2 {
			rest = (1 - topFrac) / (k - 2)
		} else {
			// With k == 2 all mass is on the two leaders.
			f0 /= topFrac
			f1 /= topFrac
		}
		gamma0 = f0*f0 + f1*f1 + (k-2)*rest*rest
		return gamma0, math.Max(f0, rest), nil
	default:
		return 0, 0, fmt.Errorf("service: unknown init %q", q.Init)
	}
}

// executeAnalytic answers a validated tier-analytic request from the
// embedded calibrated model. The Summary reuses the simulation tier's
// vocabulary for the prediction — Median/Mean carry the point
// estimate, Min/Max the prediction-interval bounds, Trials 0 because
// nothing ran — and the full prediction (with model version and
// confidence) rides in Response.Analytic.
func executeAnalytic(q Request) (*Response, error) {
	m, err := analytic.Default()
	if err != nil {
		return nil, err
	}
	gamma0, delta, err := q.initProfile()
	if err != nil {
		return nil, err
	}
	pred, err := m.Predict(q.Protocol, float64(q.N), gamma0, delta)
	if err != nil {
		return nil, err
	}
	return &Response{
		Key:      q.Key(),
		Request:  q,
		Method:   MethodAnalytic,
		Analytic: &pred,
		Summary: Summary{
			MedianRounds: pred.Rounds,
			MeanRounds:   pred.Rounds,
			MinRounds:    pred.RoundsLo,
			MaxRounds:    pred.RoundsHi,
			TopWinner:    -1,
		},
		Trials: []Trial{},
	}, nil
}
