// Package service is the canonical request/config layer and shared
// job runner behind every entry point of the repository: the conserve
// HTTP server and the consim, consweep and conbench CLIs are all thin
// shells over this package, so a simulation described once — as a
// JSON body, a flag set, or a literal — produces byte-identical
// results everywhere.
//
// The package has three layers:
//
//   - Request / SweepRequest: a flat, JSON-serialisable description of
//     a simulation (protocol, population, initial condition,
//     adversary, execution mode — count-space, asynchronous,
//     agent-on-graph, or gossip — plus optional trace and stop specs).
//     Normalize fills defaults so that semantically identical requests
//     are structurally identical, and Key hashes the normalized form
//     into the canonical config key used for caching and
//     deduplication.
//   - Execute / ExecuteParallel: a pure function from a Request to a
//     Response. The request maps one-to-one onto a
//     plurality.Experiment (Request.Experiment), the unified execution
//     path for all four modes: trial i of any request gets the façade
//     seed rng.DeriveSeed(Seed, i) (which the non-sync engines expand
//     once more), and trials fan across workers via sim.ForEachTrial —
//     with mode graph also sharding each run's vertex loop — so
//     results are reproducible and independent of the parallelism
//     budget; see DESIGN.md §Simulation service for the full
//     determinism contract.
//   - Runner: a bounded worker pool with an LRU result cache keyed by
//     Request.Key, in-flight deduplication, a job store for detached
//     submissions, and backpressure (ErrBusy when the queue is full,
//     surfaced as HTTP 429 by the server). NewServer wraps a Runner
//     into the conserve HTTP handler.
package service
