package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Runner) {
	t.Helper()
	rn := NewRunner(opts)
	srv := httptest.NewServer(NewServer(rn))
	t.Cleanup(func() {
		srv.Close()
		rn.Close()
	})
	return srv, rn
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

const runBody = `{"protocol":"3-majority","n":1000,"k":4,"seed":9,"trials":2}`

// TestRunColdCacheAndCLIByteIdentical is the acceptance test: the same
// request+seed yields byte-identical bodies served cold, from cache,
// and via the CLI path (service.Execute + EncodeJSONLine, what
// consim -json prints).
func TestRunColdCacheAndCLIByteIdentical(t *testing.T) {
	srv, rn := newTestServer(t, Options{Workers: 2})

	cold := postJSON(t, srv.URL+"/run", runBody)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", cold.StatusCode)
	}
	if got := cold.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("cold cache header %q", got)
	}
	coldData := readAll(t, cold)

	warm := postJSON(t, srv.URL+"/run", runBody)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", warm.StatusCode)
	}
	if got := warm.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("warm cache header %q", got)
	}
	warmData := readAll(t, warm)

	if !bytes.Equal(coldData, warmData) {
		t.Fatalf("cold and cached bodies differ:\n%s\n%s", coldData, warmData)
	}
	if m := rn.Metrics(); m.Executions != 1 {
		t.Fatalf("cache hit re-simulated: %+v", m)
	}

	// The CLI path: decode the posted JSON exactly as the server does,
	// execute directly, encode with the shared serialisation.
	var req Request
	if err := json.Unmarshal([]byte(runBody), &req); err != nil {
		t.Fatal(err)
	}
	cli, err := Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeJSONLine(&buf, cli); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldData, buf.Bytes()) {
		t.Fatalf("server and CLI bodies differ:\nserver: %s\ncli:    %s", coldData, buf.Bytes())
	}
}

func TestRunBadConfig(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	for name, body := range map[string]string{
		"unknown protocol": `{"protocol":"nope","n":1000,"k":4}`,
		"missing n":        `{"protocol":"voter","k":4}`,
		"unknown field":    `{"protocol":"voter","n":100,"k":4,"sneed":1}`,
		"malformed json":   `{"protocol":`,
	} {
		resp := postJSON(t, srv.URL+"/run", body)
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", name, resp.StatusCode, data)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %s", name, data)
		}
	}
}

func TestRunQueueFull(t *testing.T) {
	srv, rn := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	rn.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		started <- struct{}{}
		<-release
		return &Response{Key: q.Key()}, nil
	}
	defer close(release)

	// Occupy the worker, then fill the one queue slot.
	go func() {
		resp, err := http.Post(srv.URL+"/run", "application/json",
			strings.NewReader(`{"protocol":"voter","n":100,"k":2,"seed":1}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	if _, _, err := rn.Submit(Request{Protocol: "voter", N: 100, K: 2, Seed: 2}); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, srv.URL+"/run", `{"protocol":"voter","n":100,"k":2,"seed":3}`)
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestBusyRetryAfterJitterRange: the 429 Retry-After hint is jittered
// per response, always inside [RetryAfterMinSeconds,
// RetryAfterMaxSeconds] — never a fixed value that would synchronise
// rejected clients into a retry stampede.
func TestBusyRetryAfterJitterRange(t *testing.T) {
	for i := 0; i < 100; i++ {
		rec := httptest.NewRecorder()
		writeBusy(rec)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("status %d", rec.Code)
		}
		after, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q: %v", rec.Header().Get("Retry-After"), err)
		}
		if after < RetryAfterMinSeconds || after > RetryAfterMaxSeconds {
			t.Fatalf("Retry-After %d outside [%d, %d]", after, RetryAfterMinSeconds, RetryAfterMaxSeconds)
		}
	}
}

// TestDrainingReturns503: while the runner drains for shutdown, /run
// answers 503 (load balancers stop routing here) rather than 429
// (which invites retries against a dying instance).
func TestDrainingReturns503(t *testing.T) {
	rn := NewRunner(Options{Workers: 1, QueueDepth: 4})
	srv := httptest.NewServer(NewServer(rn))
	defer srv.Close()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	rn.exec = func(_ context.Context, q Request, _ int, _ *ResumeState, _ int, _ func(ResumeState)) (*Response, error) {
		started <- struct{}{}
		<-release
		return &Response{Key: q.Key()}, nil
	}

	if _, _, err := rn.Submit(Request{Protocol: "voter", N: 100, K: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-started // a job is running; Drain will block on it

	drained := make(chan error, 1)
	go func() { drained <- rn.Drain(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !rn.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("runner never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, srv.URL+"/run", `{"protocol":"voter","n":100,"k":2,"seed":2}`)
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	sweep := postJSON(t, srv.URL+"/sweep", sweepBody)
	if readAll(t, sweep); sweep.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep status %d", sweep.StatusCode)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestRunDetachAndJobs(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	resp := postJSON(t, srv.URL+"/run?detach=1", runBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("detach status %d", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	var info Info
	if err := json.Unmarshal(readAll(t, resp), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || loc != "/jobs/"+info.ID {
		t.Fatalf("info %+v location %q", info, loc)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(readAll(t, r), &info); err != nil {
			t.Fatal(err)
		}
		if info.Status == StatusDone {
			break
		}
		if info.Status == StatusFailed || time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info.Result == nil || info.Result.Summary.Trials != 2 {
		t.Fatalf("job result %+v", info.Result)
	}

	// Detaching the same request again is now a cache hit: 200 + body.
	again := postJSON(t, srv.URL+"/run?detach=1", runBody)
	if again.StatusCode != http.StatusOK || again.Header.Get(CacheHeader) != "hit" {
		t.Fatalf("cached detach: status %d header %q", again.StatusCode, again.Header.Get(CacheHeader))
	}
	readAll(t, again)

	missing, err := http.Get(srv.URL + "/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, missing); missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", missing.StatusCode)
	}
}

const sweepBody = `{"base":{"protocol":"3-majority","n":800,"seed":4,"trials":2},"sweep":"k","values":[2,4],"protocols":["3-majority","voter"]}`

// TestSweepStreamsNDJSONIdenticalToRunner: the HTTP stream equals the
// shared runner's emission (what consweep -ndjson prints), point for
// point, byte for byte.
func TestSweepStreamsNDJSONIdenticalToRunner(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 2})
	resp := postJSON(t, srv.URL+"/sweep", sweepBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	streamed := readAll(t, resp)

	var sr SweepRequest
	if err := json.Unmarshal([]byte(sweepBody), &sr); err != nil {
		t.Fatal(err)
	}
	rn2 := NewRunner(Options{Workers: 2})
	defer rn2.Close()
	var cli bytes.Buffer
	if err := rn2.Sweep(context.Background(), sr, func(p SweepPoint) error {
		return EncodeJSONLine(&cli, p)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, cli.Bytes()) {
		t.Fatalf("server and CLI sweeps differ:\nserver:\n%s\ncli:\n%s", streamed, cli.Bytes())
	}
	if lines := bytes.Count(streamed, []byte("\n")); lines != 4 {
		t.Fatalf("want 4 NDJSON lines, got %d", lines)
	}
}

func TestSweepBadRequest(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	for name, body := range map[string]string{
		"bad axis":     `{"base":{"protocol":"voter","n":100},"sweep":"q","values":[2]}`,
		"no values":    `{"base":{"protocol":"voter","n":100},"sweep":"k","values":[]}`,
		"bad protocol": `{"base":{"protocol":"voter","n":100},"sweep":"k","values":[2],"protocols":["nope"]}`,
		"bad point":    `{"base":{"protocol":"voter","n":100},"sweep":"k","values":[0]}`,
	} {
		resp := postJSON(t, srv.URL+"/sweep", body)
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s", name, resp.StatusCode, data)
		}
	}
}

// TestSweepPointsShareRunCache: a /run of one sweep point is a cache
// hit after the sweep, because points are plain Requests.
func TestSweepPointsShareRunCache(t *testing.T) {
	srv, rn := newTestServer(t, Options{Workers: 2})
	readAll(t, postJSON(t, srv.URL+"/sweep", sweepBody))
	execs := rn.Metrics().Executions
	resp := postJSON(t, srv.URL+"/run", `{"protocol":"voter","n":800,"k":2,"seed":4,"trials":2}`)
	readAll(t, resp)
	if resp.Header.Get(CacheHeader) != "hit" {
		t.Fatal("sweep point not served from cache via /run")
	}
	if rn.Metrics().Executions != execs {
		t.Fatal("sweep point re-simulated")
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	readAll(t, postJSON(t, srv.URL+"/run", runBody))
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	for _, metric := range []string{
		"conserve_requests_total 1",
		"conserve_executions_total 1",
		"conserve_cache_misses_total 1",
		"conserve_queue_cap",
		"conserve_workers 1",
		"conserve_job_retries_total 0",
		"conserve_jobs_recovered_total 0",
		"conserve_disk_hits_total 0",
		"conserve_journal_replay_seconds 0",
		"conserve_drain_inflight 0",
	} {
		if !bytes.Contains(data, []byte(metric)) {
			t.Errorf("metrics missing %q in:\n%s", metric, data)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(srv.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run status %d", resp.StatusCode)
	}
}
