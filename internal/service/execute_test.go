package service

import (
	"bytes"
	"testing"

	"plurality"
)

// TestExecuteMatchesFacade pins the CLI⇄service equivalence contract:
// trial i of a sync request reproduces plurality.Run with the same
// seed derivation, so a consim invocation and a served request agree.
func TestExecuteMatchesFacade(t *testing.T) {
	req := Request{Protocol: "3-majority", N: 2000, K: 8, Seed: 11, Trials: 3}
	resp, err := Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	// Trial 0 must equal a single plurality.Run with the same config
	// (both draw from rng.DeriveSeed(seed, 0)).
	single, err := plurality.Run(plurality.Config{
		N: 2000, Protocol: plurality.ThreeMajority(), Init: plurality.Balanced(8), Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Trials[0]
	if got.Rounds != float64(single.Rounds) || got.Winner != single.Winner || got.Consensus != single.Consensus {
		t.Fatalf("trial 0 %+v does not match plurality.Run %+v", got, single)
	}
	// And the whole batch must equal plurality.RunMany.
	many, err := plurality.RunMany(plurality.Config{
		N: 2000, Protocol: plurality.ThreeMajority(), Init: plurality.Balanced(8), Seed: 11,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range many {
		tr := resp.Trials[i]
		if tr.Rounds != float64(m.Rounds) || tr.Winner != m.Winner {
			t.Fatalf("trial %d %+v does not match RunMany %+v", i, tr, m)
		}
	}
}

func TestExecuteDeterministicBytes(t *testing.T) {
	req := Request{Protocol: "2-choices", N: 1500, K: 6, Seed: 3, Trials: 4}
	var a, b bytes.Buffer
	r1, err := Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSONLine(&a, r1); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSONLine(&b, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("repeated Execute bodies differ:\n%s\n%s", a.Bytes(), b.Bytes())
	}
}

func TestExecuteModes(t *testing.T) {
	cases := map[string]Request{
		"async":  {Protocol: "voter", N: 300, K: 3, Seed: 5, Trials: 2, Mode: ModeAsync},
		"graph":  {Protocol: "3-majority", N: 256, K: 4, Seed: 5, Trials: 2, Mode: ModeGraph, Topology: "random-regular"},
		"gossip": {Protocol: "2-choices", N: 60, K: 3, Seed: 5, Mode: ModeGossip},
		// Note: bipartite topologies (hypercube, even torus/ring) have
		// absorbing two-sided states under synchronous updates, so only
		// non-bipartite graphs are safe to assert convergence on.
		"graph2": {Protocol: "voter", N: 200, K: 3, Seed: 5, Mode: ModeGraph, Topology: "complete"},
		"counts": {Protocol: "3-majority", Counts: []int64{500, 300, 200}, Seed: 5, Trials: 2},
		"lazy":   {Protocol: "lazy:0.3:3-majority", N: 800, K: 4, Seed: 5},
		"advers": {Protocol: "3-majority", N: 800, K: 4, Seed: 5, Adversary: "hinder", AdversaryF: 2},
	}
	for name, req := range cases {
		resp, err := Execute(req)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if resp.Summary.Trials != len(resp.Trials) || resp.Summary.Converged == 0 {
			t.Errorf("%s: implausible summary %+v", name, resp.Summary)
		}
		if resp.Key != req.Key() {
			t.Errorf("%s: response key mismatch", name)
		}
	}
}

func TestExecuteRejectsInvalid(t *testing.T) {
	if _, err := Execute(Request{Protocol: "nope", N: 10, K: 2}); err == nil {
		t.Fatal("invalid request executed")
	}
	// Graph-engine config errors surface as Execute errors too.
	if _, err := Execute(Request{Protocol: "voter", N: 50, K: 2, Mode: ModeGraph, Topology: "hypercube"}); err == nil {
		t.Fatal("non-power-of-two hypercube executed")
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]Trial{
		{Trial: 0, Rounds: 10, Consensus: true, Winner: 2},
		{Trial: 1, Rounds: 20, Consensus: true, Winner: 2},
		{Trial: 2, Rounds: 30, Consensus: true, Winner: 1},
		{Trial: 3, Rounds: 40, Consensus: false, Winner: 0},
	})
	if s.Trials != 4 || s.Converged != 3 {
		t.Fatalf("counts: %+v", s)
	}
	if s.MedianRounds != 25 || s.MeanRounds != 25 || s.MinRounds != 10 || s.MaxRounds != 40 {
		t.Fatalf("rounds: %+v", s)
	}
	if s.TopWinner != 2 || s.TopWinnerWins != 2 {
		t.Fatalf("winner: %+v", s)
	}
	empty := summarize(nil)
	if empty.TopWinner != -1 || empty.Trials != 0 {
		t.Fatalf("empty: %+v", empty)
	}
}
