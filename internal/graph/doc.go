// Package graph provides the topology substrate for running the
// consensus dynamics beyond the complete graph — the paper's §2.5 open
// problem ("analyze 3-Majority or 2-Choices with many opinions on
// graphs other than the complete graph"). It defines a minimal Graph
// interface sufficient for pull-based dynamics (sampling a uniformly
// random neighbor), a set of standard topologies, and an agent-based
// synchronous engine that runs any of the core update rules on any
// Graph.
//
// The contract above is owned by DESIGN.md §"The unified Experiment
// API".
package graph
