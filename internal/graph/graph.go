package graph

import (
	"errors"
	"fmt"

	"plurality/internal/rng"
)

// Graph is a topology on vertices 0..N()-1 supporting uniform random
// neighbor sampling, which is all the pull-based dynamics need.
// Implementations must be safe for concurrent reads.
type Graph interface {
	// Name identifies the topology family.
	Name() string
	// N returns the number of vertices.
	N() int
	// Degree returns vertex v's degree (counting a self-loop once).
	Degree(v int) int
	// RandNeighbor returns a uniformly random neighbor of v.
	RandNeighbor(v int, r *rng.Rand) int
}

// ErrGraph reports invalid graph construction parameters.
var ErrGraph = errors.New("graph: invalid parameters")

// Complete is the n-vertex complete graph with self-loops — the
// paper's underlying graph, on which a random neighbor is a uniformly
// random vertex.
type Complete struct {
	n int
}

var _ Graph = Complete{}

// NewComplete returns the complete graph with self-loops on n vertices.
func NewComplete(n int) (Complete, error) {
	if n < 1 {
		return Complete{}, fmt.Errorf("%w: Complete needs n >= 1, got %d", ErrGraph, n)
	}
	return Complete{n: n}, nil
}

// Name implements Graph.
func (Complete) Name() string { return "complete" }

// N implements Graph.
func (g Complete) N() int { return g.n }

// Degree implements Graph.
func (g Complete) Degree(int) int { return g.n }

// RandNeighbor implements Graph.
func (g Complete) RandNeighbor(_ int, r *rng.Rand) int { return r.Intn(g.n) }

// Adj is an explicit adjacency-list graph; the constructors below
// build the standard topologies as Adj values.
type Adj struct {
	name string
	adj  [][]int32
}

var _ Graph = (*Adj)(nil)

// Name implements Graph.
func (g *Adj) Name() string { return g.name }

// N implements Graph.
func (g *Adj) N() int { return len(g.adj) }

// Degree implements Graph.
func (g *Adj) Degree(v int) int { return len(g.adj[v]) }

// RandNeighbor implements Graph.
func (g *Adj) RandNeighbor(v int, r *rng.Rand) int {
	nbrs := g.adj[v]
	return int(nbrs[r.Intn(len(nbrs))])
}

// Neighbors returns v's adjacency list (shared storage; read-only).
func (g *Adj) Neighbors(v int) []int32 { return g.adj[v] }

// NewRing returns the cycle on n vertices where each vertex is
// adjacent to the radius nearest vertices on each side (a circulant
// graph; radius = 1 is the plain cycle). Rings have constant
// conductance ~radius/n, the slow extreme for consensus.
func NewRing(n, radius int) (*Adj, error) {
	// radius >= (n+1)/2 is the overflow-safe form of 2*radius >= n.
	if n < 3 || radius < 1 || radius >= (n+1)/2 {
		return nil, fmt.Errorf("%w: Ring needs n >= 3, 1 <= radius < n/2, got n=%d radius=%d", ErrGraph, n, radius)
	}
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		nbrs := make([]int32, 0, 2*radius)
		for d := 1; d <= radius; d++ {
			nbrs = append(nbrs, int32((v+d)%n), int32((v-d+n)%n))
		}
		adj[v] = nbrs
	}
	return &Adj{name: fmt.Sprintf("ring-r%d", radius), adj: adj}, nil
}

// NewTorus returns the w×h two-dimensional torus (4-regular).
func NewTorus(w, h int) (*Adj, error) {
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("%w: Torus needs w, h >= 3, got %dx%d", ErrGraph, w, h)
	}
	n := w * h
	adj := make([][]int32, n)
	idx := func(x, y int) int32 { return int32(((y+h)%h)*w + (x+w)%w) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			adj[y*w+x] = []int32{idx(x+1, y), idx(x-1, y), idx(x, y+1), idx(x, y-1)}
		}
	}
	return &Adj{name: "torus", adj: adj}, nil
}

// NewHypercube returns the dim-dimensional hypercube on 2^dim vertices.
func NewHypercube(dim int) (*Adj, error) {
	if dim < 1 || dim > 30 {
		return nil, fmt.Errorf("%w: Hypercube needs 1 <= dim <= 30, got %d", ErrGraph, dim)
	}
	n := 1 << dim
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		nbrs := make([]int32, dim)
		for b := 0; b < dim; b++ {
			nbrs[b] = int32(v ^ (1 << b))
		}
		adj[v] = nbrs
	}
	return &Adj{name: "hypercube", adj: adj}, nil
}

// NewRandomRegular returns a random d-regular simple graph on n
// vertices via Steger–Wormald stub pairing: stubs are matched one edge
// at a time, re-drawing pairs that would create a self-loop or
// parallel edge, with a full restart when the remaining stubs admit no
// valid pair. n·d must be even. Random regular graphs are expanders
// with high probability, the fast extreme for consensus beyond the
// complete graph.
func NewRandomRegular(n, d int, r *rng.Rand) (*Adj, error) {
	if n < 4 || d < 3 || d >= n || n*d%2 != 0 {
		return nil, fmt.Errorf("%w: RandomRegular needs n >= 4, 3 <= d < n, n·d even; got n=%d d=%d", ErrGraph, n, d)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if adj, ok := pairStubsStegerWormald(n, d, r); ok {
			return &Adj{name: fmt.Sprintf("random-%d-regular", d), adj: adj}, nil
		}
	}
	return nil, fmt.Errorf("%w: RandomRegular(n=%d, d=%d) failed to produce a simple graph after %d attempts", ErrGraph, n, d, maxAttempts)
}

// pairStubsStegerWormald performs one pairing attempt: pick two random
// unmatched stubs, accept unless they form a self-loop or duplicate
// edge, and restart the whole attempt when a valid pair cannot be
// found among the remaining stubs.
func pairStubsStegerWormald(n, d int, r *rng.Rand) ([][]int32, bool) {
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			stubs = append(stubs, int32(v))
		}
	}
	adj := make([][]int32, n)
	for v := range adj {
		adj[v] = make([]int32, 0, d)
	}
	seen := make(map[int64]bool, len(stubs)/2)
	edgeKey := func(a, b int32) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)<<32 | int64(b)
	}
	for len(stubs) > 0 {
		// The retry budget is per edge; when the tail of the pairing
		// gets stuck (e.g. all remaining stubs belong to one vertex)
		// the whole attempt restarts.
		const triesPerEdge = 200
		placed := false
		for try := 0; try < triesPerEdge; try++ {
			i := r.Intn(len(stubs))
			j := r.Intn(len(stubs))
			if i == j {
				continue
			}
			a, b := stubs[i], stubs[j]
			if a == b || seen[edgeKey(a, b)] {
				continue
			}
			seen[edgeKey(a, b)] = true
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
			// Remove both stubs (higher index first).
			if i < j {
				i, j = j, i
			}
			stubs[i] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return adj, true
}

// NewGNP returns an Erdős–Rényi G(n, p) graph. Vertices that end up
// isolated receive a self-loop so that RandNeighbor remains total.
func NewGNP(n int, p float64, r *rng.Rand) (*Adj, error) {
	if n < 2 || p < 0 || p > 1 {
		return nil, fmt.Errorf("%w: GNP needs n >= 2 and p in [0,1], got n=%d p=%v", ErrGraph, n, p)
	}
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bernoulli(p) {
				adj[u] = append(adj[u], int32(v))
				adj[v] = append(adj[v], int32(u))
			}
		}
	}
	for v := range adj {
		if len(adj[v]) == 0 {
			adj[v] = append(adj[v], int32(v))
		}
	}
	return &Adj{name: "gnp", adj: adj}, nil
}

// NewSBM returns a two-block stochastic block model: vertices split
// into two halves, intra-block edges with probability pIn and
// inter-block with pOut. Used for the community-sensitivity extension
// experiments (cf. the 2-Choices metastability literature in §1.1).
func NewSBM(n int, pIn, pOut float64, r *rng.Rand) (*Adj, error) {
	if n < 4 || pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, fmt.Errorf("%w: SBM needs n >= 4 and probabilities in [0,1]", ErrGraph)
	}
	half := n / 2
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if (u < half) == (v < half) {
				p = pIn
			}
			if r.Bernoulli(p) {
				adj[u] = append(adj[u], int32(v))
				adj[v] = append(adj[v], int32(u))
			}
		}
	}
	for v := range adj {
		if len(adj[v]) == 0 {
			adj[v] = append(adj[v], int32(v))
		}
	}
	return &Adj{name: "sbm", adj: adj}, nil
}

// IsConnected reports whether g is connected (BFS from vertex 0).
func IsConnected(g Graph) bool {
	n := g.N()
	if n == 0 {
		return false
	}
	adjg, ok := g.(*Adj)
	if !ok {
		// Complete graphs (the only non-Adj implementation) are
		// connected by construction.
		return true
	}
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, 0)
	visited[0] = true
	seen := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adjg.adj[v] {
			if !visited[w] {
				visited[w] = true
				seen++
				queue = append(queue, w)
			}
		}
	}
	return seen == n
}
