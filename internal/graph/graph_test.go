package graph

import (
	"errors"
	"math"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

func TestCompleteBasics(t *testing.T) {
	g, err := NewComplete(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.Degree(3) != 10 || g.Name() != "complete" {
		t.Fatalf("unexpected complete graph %+v", g)
	}
	r := rng.New(1)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		w := g.RandNeighbor(0, r)
		if w < 0 || w >= 10 {
			t.Fatalf("neighbor %d out of range", w)
		}
		seen[w] = true
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d never sampled (self-loops included?)", v)
		}
	}
	if _, err := NewComplete(0); !errors.Is(err, ErrGraph) {
		t.Error("NewComplete(0) should fail with ErrGraph")
	}
}

func TestRing(t *testing.T) {
	g, err := NewRing(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.Degree(0) != 4 {
		t.Fatalf("ring: N=%d deg=%d", g.N(), g.Degree(0))
	}
	// Vertex 0's neighbors are {1, 9, 2, 8}.
	want := map[int32]bool{1: true, 9: true, 2: true, 8: true}
	for _, w := range g.Neighbors(0) {
		if !want[w] {
			t.Fatalf("unexpected neighbor %d", w)
		}
	}
	if !IsConnected(g) {
		t.Error("ring should be connected")
	}
	for _, bad := range [][2]int{{2, 1}, {10, 0}, {10, 5}} {
		if _, err := NewRing(bad[0], bad[1]); err == nil {
			t.Errorf("NewRing(%d,%d) should fail", bad[0], bad[1])
		}
	}
}

func TestTorus(t *testing.T) {
	g, err := NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d", v, g.Degree(v))
		}
	}
	if !IsConnected(g) {
		t.Error("torus should be connected")
	}
	if _, err := NewTorus(2, 5); err == nil {
		t.Error("NewTorus(2,5) should fail")
	}
}

func TestHypercube(t *testing.T) {
	g, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatalf("N = %d", g.N())
	}
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree %d", g.Degree(v))
		}
		for _, w := range g.Neighbors(v) {
			if popcount(uint32(v)^uint32(w)) != 1 {
				t.Fatalf("%d-%d not a hypercube edge", v, w)
			}
		}
	}
	if !IsConnected(g) {
		t.Error("hypercube should be connected")
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := NewHypercube(31); err == nil {
		t.Error("dim 31 should fail")
	}
}

func popcount(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(7)
	g, err := NewRandomRegular(100, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	for v := 0; v < 100; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d", v, g.Degree(v))
		}
		seen := map[int32]bool{}
		for _, w := range g.Neighbors(v) {
			if int(w) == v {
				t.Fatalf("self-loop at %d", v)
			}
			if seen[w] {
				t.Fatalf("parallel edge %d-%d", v, w)
			}
			seen[w] = true
		}
	}
	// Symmetry: each edge appears in both lists.
	for v := 0; v < 100; v++ {
		for _, w := range g.Neighbors(v) {
			found := false
			for _, u := range g.Neighbors(int(w)) {
				if int(u) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", v, w)
			}
		}
	}
	if _, err := NewRandomRegular(5, 3, r); err == nil {
		t.Error("odd n·d should fail")
	}
	if _, err := NewRandomRegular(4, 1, r); err == nil {
		t.Error("d < 3 should fail")
	}
}

func TestGNPAndSBM(t *testing.T) {
	r := rng.New(9)
	g, err := NewGNP(200, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	// Expected degree ~10; check the average is in a generous band.
	total := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			t.Fatalf("vertex %d isolated (self-loop fallback failed)", v)
		}
		total += g.Degree(v)
	}
	avg := float64(total) / float64(g.N())
	if math.Abs(avg-10) > 3 {
		t.Errorf("GNP average degree %v, want about 10", avg)
	}
	if _, err := NewGNP(1, 0.5, r); err == nil {
		t.Error("n=1 should fail")
	}

	sbm, err := NewSBM(200, 0.2, 0.01, r)
	if err != nil {
		t.Fatal(err)
	}
	// Count intra vs inter edges from vertex 0's perspective block.
	intra, inter := 0, 0
	for v := 0; v < 100; v++ {
		for _, w := range sbm.Neighbors(v) {
			if int(w) < 100 {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra <= inter {
		t.Errorf("SBM structure missing: intra=%d inter=%d", intra, inter)
	}
	if _, err := NewSBM(2, 0.5, 0.5, r); err == nil {
		t.Error("n < 4 should fail")
	}
}

func TestGNPZeroProbabilitySelfLoops(t *testing.T) {
	r := rng.New(10)
	g, err := NewGNP(5, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 1 || int(g.Neighbors(v)[0]) != v {
			t.Fatalf("vertex %d should have only a self-loop", v)
		}
	}
	if IsConnected(g) {
		t.Error("edgeless graph reported connected")
	}
}

func TestStateValidation(t *testing.T) {
	g, _ := NewComplete(4)
	if _, err := NewState(g, 2, []int32{0, 1, 0}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := NewState(g, 2, []int32{0, 1, 2, 0}); err == nil {
		t.Error("out-of-range opinion accepted")
	}
	st, err := NewState(g, 2, []int32{0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.K() != 2 || st.Graph().N() != 4 {
		t.Fatalf("state metadata wrong")
	}
	v := st.Counts()
	if v.Count(0) != 2 || v.Count(1) != 2 {
		t.Fatalf("counts = %v", v.Counts())
	}
}

func TestAssignments(t *testing.T) {
	v := population.MustFromCounts([]int64{3, 2})
	block := BlockAssignment(v)
	want := []int32{0, 0, 0, 1, 1}
	for i := range want {
		if block[i] != want[i] {
			t.Fatalf("BlockAssignment = %v", block)
		}
	}
	r := rng.New(3)
	shuffled := ShuffledAssignment(v, r)
	counts := map[int32]int{}
	for _, o := range shuffled {
		counts[o]++
	}
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("ShuffledAssignment counts = %v", counts)
	}
}

func TestRunReachesConsensusOnGraphs(t *testing.T) {
	r := rng.New(11)
	v := population.Balanced(256, 4)

	graphs := []Graph{}
	if c, err := NewComplete(256); err == nil {
		graphs = append(graphs, c)
	}
	if rr, err := NewRandomRegular(256, 8, r); err == nil {
		graphs = append(graphs, rr)
	} else {
		t.Fatal(err)
	}
	if hc, err := NewHypercube(8); err == nil {
		graphs = append(graphs, hc)
	}

	for _, g := range graphs {
		g := g
		for _, rule := range []Rule{ThreeMajorityRule{}, TwoChoicesRule{}} {
			rule := rule
			t.Run(g.Name()+"/"+rule.Name(), func(t *testing.T) {
				st, err := NewState(g, 4, ShuffledAssignment(v, r))
				if err != nil {
					t.Fatal(err)
				}
				res := Run(r, st, rule, 100000)
				if !res.Consensus {
					t.Fatalf("no consensus after %d rounds", res.Rounds)
				}
				if op, ok := st.Consensus(); !ok || op != res.Winner {
					t.Fatalf("winner %d inconsistent", res.Winner)
				}
			})
		}
	}
}

func TestRunImmediateConsensus(t *testing.T) {
	g, _ := NewComplete(5)
	st, err := NewState(g, 3, []int32{2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(rng.New(1), st, VoterRule{}, 100)
	if !res.Consensus || res.Rounds != 0 || res.Winner != 2 {
		t.Fatalf("result %+v", res)
	}
}

// TestAgentEngineMatchesCountsEngineOnComplete is the cross-validation
// bridge between the two engines: on the complete graph with
// self-loops the agent rule and the counts-space protocol are the same
// process, so their one-round count means must agree.
func TestAgentEngineMatchesCountsEngineOnComplete(t *testing.T) {
	const n, trials = 600, 8000
	init := population.MustFromCounts([]int64{300, 200, 100})
	g, _ := NewComplete(n)
	r := rng.New(21)

	sumAgent := make([]float64, 3)
	assign := BlockAssignment(init)
	for i := 0; i < trials; i++ {
		st, err := NewState(g, 3, assign)
		if err != nil {
			t.Fatal(err)
		}
		st.Step(r, ThreeMajorityRule{})
		counts := st.Counts()
		for j := 0; j < 3; j++ {
			sumAgent[j] += float64(counts.Count(j))
		}
	}
	for j := 0; j < 3; j++ {
		a := init.Alpha(j)
		want := float64(n) * a * (1 + a - init.Gamma())
		got := sumAgent[j] / trials
		se := math.Sqrt(float64(n) * a / float64(trials) * float64(n)) // coarse bound n·sqrt(a/trials·n)... generous
		_ = se
		if math.Abs(got-want) > 0.05*want+2 {
			t.Errorf("opinion %d: agent mean %v, counts-law mean %v", j, got, want)
		}
	}
}

func BenchmarkAgentThreeMajorityRoundComplete(b *testing.B) {
	g, _ := NewComplete(10000)
	v := population.Balanced(10000, 16)
	r := rng.New(1)
	st, err := NewState(g, 16, ShuffledAssignment(v, r))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(r, ThreeMajorityRule{})
	}
}
