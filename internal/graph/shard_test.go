package graph

import (
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

func TestShardsIsPureAndBounded(t *testing.T) {
	if got := Shards(1); got != 1 {
		t.Fatalf("Shards(1) = %d", got)
	}
	if got := Shards(shardTargetSize); got != 1 {
		t.Fatalf("Shards(%d) = %d, want 1", shardTargetSize, got)
	}
	if got := Shards(shardTargetSize + 1); got != 2 {
		t.Fatalf("Shards(%d) = %d, want 2", shardTargetSize+1, got)
	}
	if got := Shards(1 << 30); got != maxShards {
		t.Fatalf("Shards(1<<30) = %d, want cap %d", got, maxShards)
	}
	prev := 0
	for n := 1; n < 1<<22; n = n*2 + 1 {
		s := Shards(n)
		if s < prev {
			t.Fatalf("Shards not monotone: Shards(%d) = %d after %d", n, s, prev)
		}
		prev = s
	}
}

// shardedState builds a multi-shard test state on a ring.
func shardedState(t *testing.T, n, k int, seed uint64) *State {
	t.Helper()
	g, err := NewRing(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := population.Balanced(int64(n), k)
	st, err := NewState(g, k, ShuffledAssignment(v, rng.New(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStepShardedWorkerCountInvariance is the tentpole determinism
// property at the engine level: the same (state, seed, round) sequence
// produces identical opinions for 1 worker and for more workers than
// shards, on a state large enough for several shards.
func TestStepShardedWorkerCountInvariance(t *testing.T) {
	n := 3*shardTargetSize + 17 // 4 shards, last one ragged
	if Shards(n) != 4 {
		t.Fatalf("test state has %d shards, want 4", Shards(n))
	}
	const seed = 99
	serial := shardedState(t, n, 5, 1)
	parallel := shardedState(t, n, 5, 1)
	var sa, sb ShardScratch
	for round := 1; round <= 5; round++ {
		serial.StepSharded(ThreeMajorityRule{}, seed, round, 1, &sa)
		parallel.StepSharded(ThreeMajorityRule{}, seed, round, 8, &sb)
		a, b := serial.Opinions(), parallel.Opinions()
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("round %d vertex %d: serial %d vs parallel %d", round, v, a[v], b[v])
			}
		}
	}
}

// TestStepShardedConsensusReport: the folded-in consensus check agrees
// with the exhaustive Consensus scan, on both uniform and mixed states.
func TestStepShardedConsensusReport(t *testing.T) {
	n := 2*shardTargetSize + 5
	g, err := NewRing(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	uniform := make([]int32, n)
	for i := range uniform {
		uniform[i] = 2
	}
	st, err := NewState(g, 3, uniform)
	if err != nil {
		t.Fatal(err)
	}
	var scratch ShardScratch
	// From consensus, every rule fixes the state: the step must report
	// consensus on opinion 2 and Consensus must agree.
	op, ok := st.StepSharded(TwoChoicesRule{}, 7, 1, 4, &scratch)
	if !ok || op != 2 {
		t.Fatalf("step on uniform state reported (%d, %v), want (2, true)", op, ok)
	}
	if got, ok := st.Consensus(); !ok || got != 2 {
		t.Fatalf("Consensus() = (%d, %v) after uniform step", got, ok)
	}

	mixed := shardedState(t, n, 4, 3)
	op, ok = mixed.StepSharded(TwoChoicesRule{}, 7, 1, 4, &scratch)
	if gotOp, gotOK := mixed.Consensus(); ok != gotOK || (ok && op != gotOp) {
		t.Fatalf("step reported (%d, %v) but Consensus() = (%d, %v)", op, ok, gotOp, gotOK)
	}
	if ok {
		t.Fatal("one 2-choices round on a shuffled 4-opinion ring cannot reach consensus")
	}
}

// TestRunShardedWorkerCountInvariance: full runs agree end to end
// across worker counts, including the consensus round and winner.
func TestRunShardedWorkerCountInvariance(t *testing.T) {
	n := 2 * shardTargetSize
	g, err := NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	v := population.Balanced(int64(n), 4)
	build := func() *State {
		st, err := NewState(g, 4, ShuffledAssignment(v, rng.New(5)))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := RunSharded(123, build(), ThreeMajorityRule{}, 2000, 1)
	b := RunSharded(123, build(), ThreeMajorityRule{}, 2000, 16)
	if a != b {
		t.Fatalf("worker counts diverge: 1 worker %+v vs 16 workers %+v", a, b)
	}
	if !a.Consensus {
		t.Fatalf("3-majority on the complete graph did not converge: %+v", a)
	}
	// And a different seed gives a different trajectory (streams are
	// actually consumed).
	c := RunSharded(124, build(), ThreeMajorityRule{}, 2000, 1)
	if c == a {
		t.Fatalf("seeds 123 and 124 produced identical runs %+v", a)
	}
}
