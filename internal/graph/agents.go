package graph

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/trace"
)

// Rule is a per-vertex synchronous update rule: given the current
// opinion assignment, it returns vertex v's next opinion. Rules must
// not mutate opinions.
type Rule interface {
	// Name identifies the rule.
	Name() string
	// Update returns the next opinion of vertex v.
	Update(r *rng.Rand, g Graph, opinions []int32, v int) int32
}

// ThreeMajorityRule is Definition 3.1's 3-Majority on an arbitrary
// graph: sample three random neighbors w1, w2, w3; adopt opn(w1) if
// opn(w1) = opn(w2), else opn(w3).
type ThreeMajorityRule struct{}

var _ Rule = ThreeMajorityRule{}

// Name implements Rule.
func (ThreeMajorityRule) Name() string { return "3-majority" }

// Update implements Rule.
func (ThreeMajorityRule) Update(r *rng.Rand, g Graph, opinions []int32, v int) int32 {
	w1 := opinions[g.RandNeighbor(v, r)]
	w2 := opinions[g.RandNeighbor(v, r)]
	if w1 == w2 {
		return w1
	}
	return opinions[g.RandNeighbor(v, r)]
}

// TwoChoicesRule is Definition 3.1's 2-Choices on an arbitrary graph:
// sample two random neighbors; adopt their opinion if they agree, else
// keep your own.
type TwoChoicesRule struct{}

var _ Rule = TwoChoicesRule{}

// Name implements Rule.
func (TwoChoicesRule) Name() string { return "2-choices" }

// Update implements Rule.
func (TwoChoicesRule) Update(r *rng.Rand, g Graph, opinions []int32, v int) int32 {
	w1 := opinions[g.RandNeighbor(v, r)]
	w2 := opinions[g.RandNeighbor(v, r)]
	if w1 == w2 {
		return w1
	}
	return opinions[v]
}

// VoterRule adopts the opinion of one random neighbor.
type VoterRule struct{}

var _ Rule = VoterRule{}

// Name implements Rule.
func (VoterRule) Name() string { return "voter" }

// Update implements Rule.
func (VoterRule) Update(r *rng.Rand, g Graph, opinions []int32, v int) int32 {
	return opinions[g.RandNeighbor(v, r)]
}

// State is a per-vertex opinion assignment on a graph, evolved
// synchronously by a Rule.
type State struct {
	g        Graph
	k        int
	opinions []int32
	next     []int32
}

// NewState builds a State over g with k opinion labels and the given
// initial assignment (copied; len(assign) must equal g.N(), labels in
// [0, k)).
func NewState(g Graph, k int, assign []int32) (*State, error) {
	if len(assign) != g.N() {
		return nil, fmt.Errorf("%w: assignment length %d != n %d", ErrGraph, len(assign), g.N())
	}
	for v, o := range assign {
		if o < 0 || int(o) >= k {
			return nil, fmt.Errorf("%w: opinion %d at vertex %d out of [0,%d)", ErrGraph, o, v, k)
		}
	}
	return &State{
		g:        g,
		k:        k,
		opinions: append([]int32(nil), assign...),
		next:     make([]int32, len(assign)),
	}, nil
}

// BlockAssignment assigns opinions to vertices in contiguous blocks
// matching the counts of v — vertex order is topology-correlated,
// which models geographically clustered opinions on structured graphs.
func BlockAssignment(v *population.Vector) []int32 {
	assign := make([]int32, 0, v.N())
	for op := 0; op < v.K(); op++ {
		for j := int64(0); j < v.Count(op); j++ {
			assign = append(assign, int32(op))
		}
	}
	return assign
}

// ShuffledAssignment assigns opinions matching the counts of v in
// uniformly random vertex order (well-mixed initial conditions).
func ShuffledAssignment(v *population.Vector, r *rng.Rand) []int32 {
	assign := BlockAssignment(v)
	r.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
	return assign
}

// Graph returns the underlying topology.
func (st *State) Graph() Graph { return st.g }

// K returns the number of opinion labels.
func (st *State) K() int { return st.k }

// Opinions returns the current assignment (shared storage; read-only).
func (st *State) Opinions() []int32 { return st.opinions }

// Counts materializes the current opinion counts as a Vector.
func (st *State) Counts() *population.Vector {
	counts := make([]int64, st.k)
	for _, o := range st.opinions {
		counts[o]++
	}
	v, err := population.FromCounts(counts)
	if err != nil {
		panic(fmt.Sprintf("graph: invalid state counts: %v", err))
	}
	return v
}

// Consensus reports whether all vertices agree, and on what.
func (st *State) Consensus() (opinion int32, ok bool) {
	first := st.opinions[0]
	for _, o := range st.opinions[1:] {
		if o != first {
			return 0, false
		}
	}
	return first, true
}

// Step advances the state by one synchronous round of rule, drawing
// every vertex's randomness sequentially from r. It is the simple
// single-stream engine; the sharded engine below is the multi-core
// variant with hardware-independent streams.
func (st *State) Step(r *rng.Rand, rule Rule) {
	for v := range st.opinions {
		st.next[v] = rule.Update(r, st.g, st.opinions, v)
	}
	st.opinions, st.next = st.next, st.opinions
}

// Sharding of the synchronous vertex loop. The vertex range is cut
// into a fixed number of contiguous shards derived from n alone —
// never from the worker count — and every (seed, round, shard) triple
// gets its own RNG stream, so a round's outcome is a pure function of
// the trial seed no matter how many workers execute the shards or in
// what order.
const (
	// shardTargetSize is the vertex count one shard aims for. Small
	// enough that mid-size states (n ≥ ~3·10⁴) split across cores,
	// large enough that per-shard stream setup is noise.
	shardTargetSize = 1 << 14
	// maxShards caps the shard count; with shardTargetSize it is
	// reached at n ≈ 4·10⁶ and bounds per-round scheduling overhead.
	maxShards = 256
)

// Shards returns the fixed shard count for an n-vertex state: a pure
// function of n, so sharded results never depend on hardware or
// worker count.
func Shards(n int) int {
	s := (n + shardTargetSize - 1) / shardTargetSize
	if s < 1 {
		s = 1
	}
	if s > maxShards {
		s = maxShards
	}
	return s
}

// shardSeed is the RNG stream of one (seed, round, shard) cell.
func shardSeed(seed uint64, round, shard int) uint64 {
	return rng.DeriveSeed(rng.DeriveSeed(seed, uint64(round)), uint64(shard))
}

// StepSharded advances the state by one synchronous round of rule,
// drawing vertex v's randomness from the stream of v's shard (see
// Shards). workers bounds the goroutines used (<= 0 means GOMAXPROCS,
// clamped to the shard count); the result is identical for every
// workers value, including 1. It returns the post-round consensus
// check for free: uniform is the agreed opinion when ok is true.
//
// The round index is part of the stream derivation, so repeated calls
// must pass strictly increasing rounds (Run passes 1, 2, ...).
func (st *State) StepSharded(rule Rule, seed uint64, round, workers int, scratch *ShardScratch) (uniform int32, ok bool) {
	n := len(st.opinions)
	shards := Shards(n)
	size := (n + shards - 1) / shards
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	scratch.grow(shards)
	runShard := func(shard int, r *rng.Rand) {
		r.Reseed(shardSeed(seed, round, shard))
		lo := shard * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		first := rule.Update(r, st.g, st.opinions, lo)
		st.next[lo] = first
		same := true
		for v := lo + 1; v < hi; v++ {
			o := rule.Update(r, st.g, st.opinions, v)
			st.next[v] = o
			same = same && o == first
		}
		scratch.first[shard] = first
		scratch.same[shard] = same
	}
	if workers == 1 {
		r := &scratch.serial
		for shard := 0; shard < shards; shard++ {
			runShard(shard, r)
		}
	} else {
		var (
			next int64 = -1
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var r rng.Rand
				for {
					shard := int(atomic.AddInt64(&next, 1))
					if shard >= shards {
						return
					}
					runShard(shard, &r)
				}
			}()
		}
		wg.Wait()
	}
	st.opinions, st.next = st.next, st.opinions
	uniform = scratch.first[0]
	for shard := 0; shard < shards; shard++ {
		if !scratch.same[shard] || scratch.first[shard] != uniform {
			return 0, false
		}
	}
	return uniform, true
}

// ShardScratch holds StepSharded's reusable per-shard buffers so a
// multi-round run allocates once. The zero value is ready to use; a
// scratch must not be shared between concurrent runs.
type ShardScratch struct {
	first  []int32
	same   []bool
	serial rng.Rand
}

func (s *ShardScratch) grow(shards int) {
	if cap(s.first) < shards {
		s.first = make([]int32, shards)
		s.same = make([]bool, shards)
	}
	s.first = s.first[:shards]
	s.same = s.same[:shards]
}

// RunResult reports how an agent-based run ended. Gamma and Live are
// the final configuration's potential Γ = Σ α² and live-opinion count
// (1 and 1 at consensus).
type RunResult struct {
	Rounds    int
	Consensus bool
	Winner    int32
	Gamma     float64
	Live      int
}

// consensusResult is the RunResult of a run that ended in an actual
// single-opinion state (Γ = 1, one live opinion, no count scan needed).
func consensusResult(rounds int, winner int32) RunResult {
	return RunResult{Rounds: rounds, Consensus: true, Winner: winner, Gamma: 1, Live: 1}
}

// cutoffResult is the RunResult of a run stopped short of consensus
// (stop hook or round budget) on already-materialised counts.
func cutoffResult(rounds int, v *population.Vector) RunResult {
	op, _ := v.MaxOpinion()
	return RunResult{Rounds: rounds, Consensus: false, Winner: int32(op), Gamma: v.Gamma(), Live: v.Live()}
}

// Run executes rule on st until consensus or maxRounds, drawing all
// randomness sequentially from r (single-stream engine).
func Run(r *rng.Rand, st *State, rule Rule, maxRounds int) RunResult {
	if op, ok := st.Consensus(); ok {
		return consensusResult(0, op)
	}
	for t := 1; t <= maxRounds; t++ {
		st.Step(r, rule)
		if op, ok := st.Consensus(); ok {
			return consensusResult(t, op)
		}
	}
	return cutoffResult(maxRounds, st.Counts())
}

// RunSharded executes rule on st until consensus or maxRounds using
// the sharded round engine: round t draws vertex randomness from the
// (seed, t, shard) streams of StepSharded, split across up to workers
// goroutines. The result is a pure function of (st, rule, seed,
// maxRounds) — identical for every workers value.
func RunSharded(seed uint64, st *State, rule Rule, maxRounds, workers int) RunResult {
	return RunShardedTraced(seed, st, rule, maxRounds, workers, nil)
}

// RunShardedTraced is RunSharded with an optional round tracer: tr
// samples the opinion counts between rounds — from the coordinating
// goroutine, after StepSharded's barrier, never from inside a shard
// worker — so the trace, like the result, is identical for every
// workers value. A nil tr costs one pointer test per round; the O(n)
// count materialisation is paid only for rounds the tracer's
// decimation policy keeps.
func RunShardedTraced(seed uint64, st *State, rule Rule, maxRounds, workers int, tr *trace.Sampler) RunResult {
	return RunShardedHooked(seed, st, rule, maxRounds, workers, tr, nil)
}

// RunShardedHooked is RunShardedTraced with an optional stop
// condition: stop, if non-nil, is evaluated on the materialised counts
// between rounds (after the shard barrier, like tracing, and at round
// 0 before any step), and a true return ends the run there. The hook
// draws no randomness from the round streams — a stopped run is
// byte-for-byte the prefix of the unstopped run of the same seed, for
// every workers value — and a nil stop costs one comparison per round.
func RunShardedHooked(seed uint64, st *State, rule Rule, maxRounds, workers int, tr *trace.Sampler, stop func(round int64, v *population.Vector) bool) RunResult {
	// observe materializes the counts at most once per round, shared
	// by the sampler and the stop hook; stopped reports whether the
	// hook fired (v is then the materialized counts).
	observe := func(round int64) (v *population.Vector, stopped bool) {
		if stop == nil && !tr.Wants(round) {
			return nil, false
		}
		v = st.Counts()
		tr.Observe(round, v)
		return v, stop != nil && stop(round, v)
	}
	if v, stopped := observe(0); stopped {
		if op, ok := st.Consensus(); ok {
			return consensusResult(0, op)
		}
		return cutoffResult(0, v)
	}
	if op, ok := st.Consensus(); ok {
		return consensusResult(0, op)
	}
	var scratch ShardScratch
	for t := 1; t <= maxRounds; t++ {
		op, ok := st.StepSharded(rule, seed, t, workers, &scratch)
		// The stop hook is evaluated before the consensus test — the
		// same order every engine uses — so a condition that first
		// holds at the consensus round itself still observes (and
		// reports) the stop, while the result remains the consensus
		// result.
		if v, stopped := observe(int64(t)); stopped {
			if ok {
				return consensusResult(t, op)
			}
			return cutoffResult(t, v)
		}
		if ok {
			return consensusResult(t, op)
		}
	}
	return cutoffResult(maxRounds, st.Counts())
}
