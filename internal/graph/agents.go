package graph

import (
	"fmt"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// Rule is a per-vertex synchronous update rule: given the current
// opinion assignment, it returns vertex v's next opinion. Rules must
// not mutate opinions.
type Rule interface {
	// Name identifies the rule.
	Name() string
	// Update returns the next opinion of vertex v.
	Update(r *rng.Rand, g Graph, opinions []int32, v int) int32
}

// ThreeMajorityRule is Definition 3.1's 3-Majority on an arbitrary
// graph: sample three random neighbors w1, w2, w3; adopt opn(w1) if
// opn(w1) = opn(w2), else opn(w3).
type ThreeMajorityRule struct{}

var _ Rule = ThreeMajorityRule{}

// Name implements Rule.
func (ThreeMajorityRule) Name() string { return "3-majority" }

// Update implements Rule.
func (ThreeMajorityRule) Update(r *rng.Rand, g Graph, opinions []int32, v int) int32 {
	w1 := opinions[g.RandNeighbor(v, r)]
	w2 := opinions[g.RandNeighbor(v, r)]
	if w1 == w2 {
		return w1
	}
	return opinions[g.RandNeighbor(v, r)]
}

// TwoChoicesRule is Definition 3.1's 2-Choices on an arbitrary graph:
// sample two random neighbors; adopt their opinion if they agree, else
// keep your own.
type TwoChoicesRule struct{}

var _ Rule = TwoChoicesRule{}

// Name implements Rule.
func (TwoChoicesRule) Name() string { return "2-choices" }

// Update implements Rule.
func (TwoChoicesRule) Update(r *rng.Rand, g Graph, opinions []int32, v int) int32 {
	w1 := opinions[g.RandNeighbor(v, r)]
	w2 := opinions[g.RandNeighbor(v, r)]
	if w1 == w2 {
		return w1
	}
	return opinions[v]
}

// VoterRule adopts the opinion of one random neighbor.
type VoterRule struct{}

var _ Rule = VoterRule{}

// Name implements Rule.
func (VoterRule) Name() string { return "voter" }

// Update implements Rule.
func (VoterRule) Update(r *rng.Rand, g Graph, opinions []int32, v int) int32 {
	return opinions[g.RandNeighbor(v, r)]
}

// State is a per-vertex opinion assignment on a graph, evolved
// synchronously by a Rule.
type State struct {
	g        Graph
	k        int
	opinions []int32
	next     []int32
}

// NewState builds a State over g with k opinion labels and the given
// initial assignment (copied; len(assign) must equal g.N(), labels in
// [0, k)).
func NewState(g Graph, k int, assign []int32) (*State, error) {
	if len(assign) != g.N() {
		return nil, fmt.Errorf("%w: assignment length %d != n %d", ErrGraph, len(assign), g.N())
	}
	for v, o := range assign {
		if o < 0 || int(o) >= k {
			return nil, fmt.Errorf("%w: opinion %d at vertex %d out of [0,%d)", ErrGraph, o, v, k)
		}
	}
	return &State{
		g:        g,
		k:        k,
		opinions: append([]int32(nil), assign...),
		next:     make([]int32, len(assign)),
	}, nil
}

// BlockAssignment assigns opinions to vertices in contiguous blocks
// matching the counts of v — vertex order is topology-correlated,
// which models geographically clustered opinions on structured graphs.
func BlockAssignment(v *population.Vector) []int32 {
	assign := make([]int32, 0, v.N())
	for op := 0; op < v.K(); op++ {
		for j := int64(0); j < v.Count(op); j++ {
			assign = append(assign, int32(op))
		}
	}
	return assign
}

// ShuffledAssignment assigns opinions matching the counts of v in
// uniformly random vertex order (well-mixed initial conditions).
func ShuffledAssignment(v *population.Vector, r *rng.Rand) []int32 {
	assign := BlockAssignment(v)
	r.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })
	return assign
}

// Graph returns the underlying topology.
func (st *State) Graph() Graph { return st.g }

// K returns the number of opinion labels.
func (st *State) K() int { return st.k }

// Opinions returns the current assignment (shared storage; read-only).
func (st *State) Opinions() []int32 { return st.opinions }

// Counts materializes the current opinion counts as a Vector.
func (st *State) Counts() *population.Vector {
	counts := make([]int64, st.k)
	for _, o := range st.opinions {
		counts[o]++
	}
	v, err := population.FromCounts(counts)
	if err != nil {
		panic(fmt.Sprintf("graph: invalid state counts: %v", err))
	}
	return v
}

// Consensus reports whether all vertices agree, and on what.
func (st *State) Consensus() (opinion int32, ok bool) {
	first := st.opinions[0]
	for _, o := range st.opinions[1:] {
		if o != first {
			return 0, false
		}
	}
	return first, true
}

// Step advances the state by one synchronous round of rule.
func (st *State) Step(r *rng.Rand, rule Rule) {
	for v := range st.opinions {
		st.next[v] = rule.Update(r, st.g, st.opinions, v)
	}
	st.opinions, st.next = st.next, st.opinions
}

// RunResult reports how an agent-based run ended.
type RunResult struct {
	Rounds    int
	Consensus bool
	Winner    int32
}

// Run executes rule on st until consensus or maxRounds.
func Run(r *rng.Rand, st *State, rule Rule, maxRounds int) RunResult {
	if op, ok := st.Consensus(); ok {
		return RunResult{Rounds: 0, Consensus: true, Winner: op}
	}
	for t := 1; t <= maxRounds; t++ {
		st.Step(r, rule)
		if op, ok := st.Consensus(); ok {
			return RunResult{Rounds: t, Consensus: true, Winner: op}
		}
	}
	op, _ := st.Counts().MaxOpinion()
	return RunResult{Rounds: maxRounds, Consensus: false, Winner: int32(op)}
}
