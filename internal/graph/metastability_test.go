package graph

import (
	"math"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// TestTwoChoicesAgentMatchesCountsLaw cross-validates the 2-Choices
// agent rule on the complete graph against the Eq. (6) law: the
// one-round mean of each opinion's count must match
// n·α(i)(1 + α(i) − γ).
func TestTwoChoicesAgentMatchesCountsLaw(t *testing.T) {
	const n, trials = 500, 8000
	init := population.MustFromCounts([]int64{250, 150, 100})
	g, err := NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	assign := BlockAssignment(init)
	sums := make([]float64, 3)
	for i := 0; i < trials; i++ {
		st, err := NewState(g, 3, assign)
		if err != nil {
			t.Fatal(err)
		}
		st.Step(r, TwoChoicesRule{})
		counts := st.Counts()
		for j := 0; j < 3; j++ {
			sums[j] += float64(counts.Count(j))
		}
	}
	for j := 0; j < 3; j++ {
		a := init.Alpha(j)
		want := float64(n) * a * (1 + a - init.Gamma())
		got := sums[j] / trials
		if math.Abs(got-want) > 0.05*want+2 {
			t.Errorf("opinion %d: agent mean %v, Eq.(6) mean %v", j, got, want)
		}
	}
}

// TestVoterAgentMatchesCountsLaw: the voter agent rule's one-round
// mean is n·α(i) on any vertex-transitive graph.
func TestVoterAgentMatchesCountsLaw(t *testing.T) {
	const n, trials = 512, 6000
	init := population.MustFromCounts([]int64{320, 192})
	g, err := NewHypercube(9)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(33)
	assign := ShuffledAssignment(init, r)
	sum := 0.0
	for i := 0; i < trials; i++ {
		st, err := NewState(g, 2, assign)
		if err != nil {
			t.Fatal(err)
		}
		st.Step(r, VoterRule{})
		sum += float64(st.Counts().Count(0))
	}
	got := sum / trials
	// On a regular graph with a fixed assignment, E[count'(0)] equals
	// the sum over vertices of the fraction of their neighbors holding
	// opinion 0; for a shuffled assignment this concentrates near n·α.
	want := 320.0
	if math.Abs(got-want) > 12 {
		t.Errorf("voter agent mean %v, want about %v", got, want)
	}
}

// TestSBMMetastability reproduces the community-detection phenomenon
// of Cruciani et al. (cited in the paper's §1.1): with 2-Choices on a
// strongly two-block SBM and block-aligned initial opinions, both
// communities keep their internal consensus far beyond the time the
// complete graph would need to decide — the configuration is
// metastable.
func TestSBMMetastability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round agent simulation")
	}
	const n = 300
	r := rng.New(35)
	g, err := NewSBM(n, 0.25, 0.005, r)
	if err != nil {
		t.Fatal(err)
	}
	// Block-aligned start: community 0 holds opinion 0, community 1
	// holds opinion 1.
	assign := make([]int32, n)
	for v := n / 2; v < n; v++ {
		assign[v] = 1
	}
	st, err := NewState(g, 2, assign)
	if err != nil {
		t.Fatal(err)
	}

	// The complete graph decides a 50:50 two-opinion race in ~O(log n)
	// rounds; run the SBM for far longer and require both opinions to
	// survive with substantial support.
	const rounds = 200
	for i := 0; i < rounds; i++ {
		st.Step(r, TwoChoicesRule{})
	}
	counts := st.Counts()
	if counts.Live() != 2 {
		t.Fatalf("an opinion died on the SBM after %d rounds: %v", rounds, counts.Counts())
	}
	if counts.Count(0) < n/5 || counts.Count(1) < n/5 {
		t.Fatalf("community structure not preserved: %v", counts.Counts())
	}

	// Control: the same race on the complete graph decides quickly.
	cg, err := NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := NewState(cg, 2, assign)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(r, cst, TwoChoicesRule{}, rounds)
	if !res.Consensus {
		t.Fatalf("complete graph did not decide within %d rounds", rounds)
	}
}

// TestRingCoarsening: on the plain ring, 2-Choices from a block
// assignment performs interface-driven coarsening — after a few
// rounds the number of opinion boundaries must not grow.
func TestRingCoarsening(t *testing.T) {
	const n = 200
	r := rng.New(37)
	g, err := NewRing(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := population.MustFromCounts([]int64{100, 100})
	st, err := NewState(g, 2, BlockAssignment(v))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := func() int {
		ops := st.Opinions()
		b := 0
		for i := 0; i < n; i++ {
			if ops[i] != ops[(i+1)%n] {
				b++
			}
		}
		return b
	}
	if got := boundaries(); got != 2 {
		t.Fatalf("block assignment should have 2 boundaries, got %d", got)
	}
	for i := 0; i < 50; i++ {
		st.Step(r, TwoChoicesRule{})
		// 2-Choices on a ring flips only vertices within distance 1 of
		// an interface (a flip needs both sampled neighbors to agree
		// against the current opinion), so the two initial interfaces
		// can split transiently under the synchronous update but the
		// boundary count stays a small constant — no bulk nucleation.
		if b := boundaries(); b > 16 {
			t.Fatalf("round %d: %d boundaries — bulk nucleation should be impossible", i, b)
		}
	}
}
