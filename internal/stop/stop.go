package stop

import (
	"fmt"
	"strconv"
	"strings"
)

// State is the configuration surface a Spec reads: the O(1)
// incremental aggregates, nothing else. Both *population.Vector and
// the batch engine's flat kernel satisfy it, so stop conditions run
// identically on either executor.
type State interface {
	// Gamma returns Γ = Σ α(i)².
	Gamma() float64
	// Live returns the number of opinions with surviving supporters.
	Live() int
}

// Spec is a conjunction of stop clauses; zero-valued clauses are
// unset. The zero Spec never fires.
type Spec struct {
	// GammaAtLeast stops once Γ = Σ α(i)² has reached the threshold
	// (in (0, 1]; 0 = unset). Γ ≥ 1/2 is the paper's two-opinion
	// endgame boundary.
	GammaAtLeast float64 `json:"gamma_at_least,omitempty"`
	// LiveAtMost stops once at most this many opinions have surviving
	// supporters (>= 1; 0 = unset).
	LiveAtMost int `json:"live_at_most,omitempty"`
	// AfterRounds stops at the end of this round (>= 1; 0 = unset) —
	// like MaxRounds, but composable with the other clauses: combined,
	// the run stops at the first round >= AfterRounds where the rest of
	// the conjunction also holds.
	AfterRounds int64 `json:"after_rounds,omitempty"`
}

// IsZero reports whether no clause is set (the consensus-only default).
func (s Spec) IsZero() bool { return s == Spec{} }

// Normalize returns the canonical form of the spec. All fields are
// already canonical scalars, so this is the identity today; it exists
// so the request layer can treat stop specs and trace specs uniformly.
func (s Spec) Normalize() Spec { return s }

// Validate reports whether the spec describes evaluable clauses.
// Errors are user errors (the service maps them to 400). The zero spec
// is valid: it simply never fires.
func (s Spec) Validate() error {
	// The positive-form range test rejects NaN too (every comparison
	// with NaN is false), which would otherwise turn the conjunction
	// in Done into an unconditional stop.
	if s.GammaAtLeast != 0 && !(s.GammaAtLeast > 0 && s.GammaAtLeast <= 1) {
		return fmt.Errorf("stop: gamma_at_least must be in (0, 1], got %v", s.GammaAtLeast)
	}
	if s.LiveAtMost < 0 {
		return fmt.Errorf("stop: live_at_most must be >= 1, got %d", s.LiveAtMost)
	}
	if s.AfterRounds < 0 {
		return fmt.Errorf("stop: after_rounds must be >= 1, got %d", s.AfterRounds)
	}
	return nil
}

// Done reports whether every set clause holds for the configuration at
// the end of the given round. It reads only the state's O(1)
// incremental aggregates and draws no randomness. The zero spec
// returns false forever.
func (s Spec) Done(round int64, v State) bool {
	if s.IsZero() {
		return false
	}
	if s.GammaAtLeast > 0 && v.Gamma() < s.GammaAtLeast {
		return false
	}
	if s.LiveAtMost > 0 && v.Live() > s.LiveAtMost {
		return false
	}
	if s.AfterRounds > 0 && round < s.AfterRounds {
		return false
	}
	return true
}

// And returns the conjunction of two specs: the result fires only when
// both would. Same-clause merges keep the stricter threshold (the
// larger Γ, the smaller live count, the later round).
func (s Spec) And(t Spec) Spec {
	out := s
	if t.GammaAtLeast > out.GammaAtLeast {
		out.GammaAtLeast = t.GammaAtLeast
	}
	if t.LiveAtMost > 0 && (out.LiveAtMost == 0 || t.LiveAtMost < out.LiveAtMost) {
		out.LiveAtMost = t.LiveAtMost
	}
	if t.AfterRounds > out.AfterRounds {
		out.AfterRounds = t.AfterRounds
	}
	return out
}

// String renders the spec in the ParseSpec syntax ("" for the zero
// spec).
func (s Spec) String() string {
	var parts []string
	if s.GammaAtLeast > 0 {
		parts = append(parts, "gamma>="+strconv.FormatFloat(s.GammaAtLeast, 'g', -1, 64))
	}
	if s.LiveAtMost > 0 {
		parts = append(parts, "live<="+strconv.Itoa(s.LiveAtMost))
	}
	if s.AfterRounds > 0 {
		parts = append(parts, "round>="+strconv.FormatInt(s.AfterRounds, 10))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the CLI shorthand for a spec: comma-separated
// clauses "gamma>=G", "live<=M", "round>=R" (conjunction), e.g.
// "gamma>=0.5" or "gamma>=0.5,live<=2". The result is validated.
func ParseSpec(text string) (Spec, error) {
	var spec Spec
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return Spec{}, fmt.Errorf("stop: empty spec (want gamma>=G, live<=M and/or round>=R)")
	}
	for _, part := range strings.Split(trimmed, ",") {
		part = strings.TrimSpace(part)
		switch {
		case strings.HasPrefix(part, "gamma>="):
			g, err := strconv.ParseFloat(part[len("gamma>="):], 64)
			if err != nil || g <= 0 || g > 1 {
				return Spec{}, fmt.Errorf("stop: bad clause %q (want gamma>=G with G in (0,1])", part)
			}
			spec = spec.And(Spec{GammaAtLeast: g})
		case strings.HasPrefix(part, "live<="):
			m, err := strconv.Atoi(part[len("live<="):])
			if err != nil || m < 1 {
				return Spec{}, fmt.Errorf("stop: bad clause %q (want live<=M with M >= 1)", part)
			}
			spec = spec.And(Spec{LiveAtMost: m})
		case strings.HasPrefix(part, "round>="):
			r, err := strconv.ParseInt(part[len("round>="):], 10, 64)
			if err != nil || r < 1 {
				return Spec{}, fmt.Errorf("stop: bad clause %q (want round>=R with R >= 1)", part)
			}
			spec = spec.And(Spec{AfterRounds: r})
		default:
			return Spec{}, fmt.Errorf("stop: bad clause %q (want gamma>=G, live<=M or round>=R)", part)
		}
	}
	return spec, spec.Validate()
}
