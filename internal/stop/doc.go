// Package stop defines declarative stop conditions for dynamics runs:
// when, short of full consensus, a trial should end. The paper's
// headline results are statements about *hitting times* — the round Γ
// crosses 1/2, the round the live-opinion count halves, a fixed round
// budget — and D'Archivio et al.'s follow-up ties consensus time to
// phase boundaries that occur long before consensus. A Spec lets a
// caller run every trial exactly to such a boundary instead of
// simulating to consensus and reading the boundary off a trace.
//
// # Contract
//
// A Spec is evaluated by the engines at round boundaries only, on the
// same between-rounds state the trace subsystem samples, and it never
// draws from an engine's RNG stream: up to the round it fires, a
// stopped run is byte-for-byte the prefix of the unstopped run of the
// same seed. Consensus always ends a run, whatever the Spec — a stop
// condition can only shorten a trial, never extend one.
//
// A Spec with several clauses set is a conjunction: the run stops at
// the first round where every set clause holds simultaneously. The
// zero Spec has no clauses and never fires (consensus-only — the
// default). Spec is JSON-serialisable and is folded into the service
// layer's canonical config key; an absent Spec leaves the key exactly
// as it was before stop conditions existed.
//
// The contract above is owned by DESIGN.md §"Stop conditions and the
// RNG-independence contract".
package stop
