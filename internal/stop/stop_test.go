package stop

import (
	"encoding/json"
	"math"
	"testing"

	"plurality/internal/population"
)

func vec(t *testing.T, counts ...int64) *population.Vector {
	t.Helper()
	v, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestZeroSpecNeverFires(t *testing.T) {
	var s Spec
	if !s.IsZero() {
		t.Fatal("zero spec not IsZero")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	v := vec(t, 1000) // consensus state, Γ = 1, live = 1
	if s.Done(1_000_000, v) {
		t.Fatal("zero spec fired")
	}
	if s.String() != "" {
		t.Fatalf("zero spec renders %q", s.String())
	}
}

func TestDoneClauses(t *testing.T) {
	balanced := vec(t, 250, 250, 250, 250) // Γ = 0.25, live = 4
	skewed := vec(t, 900, 100)             // Γ = 0.82, live = 2
	cases := []struct {
		name  string
		spec  Spec
		round int64
		v     *population.Vector
		want  bool
	}{
		{"gamma below", Spec{GammaAtLeast: 0.5}, 3, balanced, false},
		{"gamma reached", Spec{GammaAtLeast: 0.5}, 3, skewed, true},
		{"gamma exact", Spec{GammaAtLeast: 0.25}, 3, balanced, true},
		{"live above", Spec{LiveAtMost: 2}, 3, balanced, false},
		{"live reached", Spec{LiveAtMost: 2}, 3, skewed, true},
		{"rounds early", Spec{AfterRounds: 10}, 9, skewed, false},
		{"rounds reached", Spec{AfterRounds: 10}, 10, skewed, true},
		{"conjunction half", Spec{GammaAtLeast: 0.5, AfterRounds: 10}, 3, skewed, false},
		{"conjunction full", Spec{GammaAtLeast: 0.5, AfterRounds: 10}, 12, skewed, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.spec.Done(tc.round, tc.v); got != tc.want {
				t.Fatalf("Done(%d) = %v, want %v", tc.round, got, tc.want)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	for _, bad := range []Spec{
		{GammaAtLeast: -0.1},
		{GammaAtLeast: 1.5},
		{GammaAtLeast: math.NaN()}, // would make Done() an unconditional stop
		{LiveAtMost: -1},
		{AfterRounds: -7},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	for _, good := range []Spec{
		{},
		{GammaAtLeast: 1},
		{GammaAtLeast: 0.5, LiveAtMost: 2, AfterRounds: 100},
	} {
		if err := good.Validate(); err != nil {
			t.Errorf("spec %+v rejected: %v", good, err)
		}
	}
}

func TestAndKeepsStricter(t *testing.T) {
	a := Spec{GammaAtLeast: 0.3, LiveAtMost: 8}
	b := Spec{GammaAtLeast: 0.5, LiveAtMost: 16, AfterRounds: 40}
	got := a.And(b)
	want := Spec{GammaAtLeast: 0.5, LiveAtMost: 8, AfterRounds: 40}
	if got != want {
		t.Fatalf("And = %+v, want %+v", got, want)
	}
	if r := b.And(a); r != want {
		t.Fatalf("And not symmetric: %+v vs %+v", r, want)
	}
	if r := a.And(Spec{}); r != a {
		t.Fatalf("And with zero spec changed %+v to %+v", a, r)
	}
}

func TestParseSpecRoundTrips(t *testing.T) {
	cases := map[string]Spec{
		"gamma>=0.5":              {GammaAtLeast: 0.5},
		"live<=2":                 {LiveAtMost: 2},
		"round>=100":              {AfterRounds: 100},
		"gamma>=0.5,live<=2":      {GammaAtLeast: 0.5, LiveAtMost: 2},
		" gamma>=0.25 , round>=7": {GammaAtLeast: 0.25, AfterRounds: 7},
	}
	for text, want := range cases {
		got, err := ParseSpec(text)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", text, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", text, got, want)
			continue
		}
		again, err := ParseSpec(got.String())
		if err != nil || again != got {
			t.Errorf("String round-trip of %q failed: %q -> %+v, %v", text, got.String(), again, err)
		}
	}
	for _, bad := range []string{"", "gamma>=0", "gamma>=2", "live<=0", "round>=0", "gamma=0.5", "nonsense", "gamma>=0.5;live<=2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestJSONShape(t *testing.T) {
	data, err := json.Marshal(Spec{GammaAtLeast: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"gamma_at_least":0.5}` {
		t.Fatalf("marshal = %s", data)
	}
	// Unset clauses must be omitted so the service's canonical keys do
	// not depend on clause count.
	data, err = json.Marshal(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{}` {
		t.Fatalf("zero spec marshal = %s", data)
	}
}
