package cluster

import (
	"encoding/json"
	"testing"
)

// TestLedgerLifecycle walks one job through submit → lease → done →
// decide and checks each guarded transition.
func TestLedgerLifecycle(t *testing.T) {
	l := NewLedger()
	shards := []ShardRange{{Lo: 0, Hi: 5}, {Lo: 5, Hi: 10}}
	l.Apply(1, LedgerRecord{Op: OpSubmit, Key: "k", Request: json.RawMessage(`{}`), Shards: shards})

	// Duplicate submit is the cluster-wide dedup no-op.
	l.Apply(2, LedgerRecord{Op: OpSubmit, Key: "k", Shards: []ShardRange{{Lo: 0, Hi: 10}}})
	jv, ok := l.Job("k")
	if !ok || len(jv.Shards) != 2 {
		t.Fatalf("after duplicate submit: shards = %+v, want the first plan", jv.Shards)
	}

	l.Apply(3, LedgerRecord{Op: OpLease, Key: "k", Shard: 0, Worker: "w1"})
	jv, _ = l.Job("k")
	if jv.Shards[0].Status != ShardLeased || jv.Shards[0].Worker != "w1" || jv.Shards[0].LeaseIndex != 3 {
		t.Fatalf("lease not applied: %+v", jv.Shards[0])
	}
	// Leasing a leased shard is a no-op.
	l.Apply(4, LedgerRecord{Op: OpLease, Key: "k", Shard: 0, Worker: "w2"})
	jv, _ = l.Job("k")
	if jv.Shards[0].Worker != "w1" {
		t.Fatalf("second lease overwrote the first: %+v", jv.Shards[0])
	}

	// Requeue returns the shard to pending and counts.
	l.Apply(5, LedgerRecord{Op: OpRequeue, Key: "k", Shard: 0, Reason: "lost"})
	jv, _ = l.Job("k")
	if jv.Shards[0].Status != ShardPending || l.Requeues() != 1 {
		t.Fatalf("requeue not applied: %+v requeues=%d", jv.Shards[0], l.Requeues())
	}
	// Requeueing a pending shard is a no-op.
	l.Apply(6, LedgerRecord{Op: OpRequeue, Key: "k", Shard: 0})
	if l.Requeues() != 1 {
		t.Fatalf("stale requeue counted: %d", l.Requeues())
	}

	// First completion wins; a raced duplicate is a no-op.
	l.Apply(7, LedgerRecord{Op: OpShardDone, Key: "k", Shard: 0, Worker: "w2", Result: json.RawMessage(`"r1"`)})
	l.Apply(8, LedgerRecord{Op: OpShardDone, Key: "k", Shard: 0, Worker: "w3", Result: json.RawMessage(`"r2"`)})
	jv, _ = l.Job("k")
	if string(jv.Shards[0].Result) != `"r1"` || jv.DoneShards != 1 {
		t.Fatalf("first-wins violated: %+v done=%d", jv.Shards[0], jv.DoneShards)
	}
	// A requeue against a done shard is a no-op.
	l.Apply(9, LedgerRecord{Op: OpRequeue, Key: "k", Shard: 0})
	jv, _ = l.Job("k")
	if jv.Shards[0].Status != ShardDone {
		t.Fatalf("requeue clobbered a done shard: %+v", jv.Shards[0])
	}

	l.Apply(10, LedgerRecord{Op: OpShardDone, Key: "k", Shard: 1, Worker: "w1", Result: json.RawMessage(`"r3"`)})

	// Exactly one decide per key.
	l.Apply(11, LedgerRecord{Op: OpDecide, Key: "k", MergedSHA: "aaa"})
	l.Apply(12, LedgerRecord{Op: OpDecide, Key: "k", MergedSHA: "bbb"})
	jv, _ = l.Job("k")
	if !jv.Decided || jv.MergedSHA != "aaa" {
		t.Fatalf("decide not first-wins: %+v", jv)
	}

	// Unknown ops and unknown keys must be harmless no-ops.
	l.Apply(13, LedgerRecord{Op: "noop"})
	l.Apply(14, LedgerRecord{Op: OpLease, Key: "missing", Shard: 0})
	l.Apply(15, LedgerRecord{Op: OpLease, Key: "k", Shard: 99})
}

// TestLedgerDeterminism applies the same record sequence to two
// ledgers and expects identical snapshots — the property that keeps
// replicas converged.
func TestLedgerDeterminism(t *testing.T) {
	seq := []LedgerRecord{
		{Op: OpSubmit, Key: "a", Shards: []ShardRange{{0, 3}, {3, 6}}},
		{Op: OpSubmit, Key: "b", Shards: []ShardRange{{0, 10}}},
		{Op: OpLease, Key: "a", Shard: 0, Worker: "w1"},
		{Op: OpLease, Key: "a", Shard: 1, Worker: "w2"},
		{Op: OpRequeue, Key: "a", Shard: 0},
		{Op: OpLease, Key: "a", Shard: 0, Worker: "w2"},
		{Op: OpShardDone, Key: "a", Shard: 0, Worker: "w2", Result: json.RawMessage(`1`)},
		{Op: OpShardDone, Key: "a", Shard: 1, Worker: "w2", Result: json.RawMessage(`2`)},
		{Op: OpDecide, Key: "a", MergedSHA: "s"},
	}
	l1, l2 := NewLedger(), NewLedger()
	for i, rec := range seq {
		l1.Apply(uint64(i+1), rec)
		l2.Apply(uint64(i+1), rec)
	}
	j1, _ := json.Marshal(l1.Jobs())
	j2, _ := json.Marshal(l2.Jobs())
	if string(j1) != string(j2) {
		t.Fatalf("replicas diverged:\n%s\n%s", j1, j2)
	}
	if l1.Requeues() != l2.Requeues() {
		t.Fatalf("requeue counters diverged: %d vs %d", l1.Requeues(), l2.Requeues())
	}
}

// TestPlanShards checks the plan tiles [0, trials) contiguously with
// near-equal sizes for assorted shapes.
func TestPlanShards(t *testing.T) {
	for _, tc := range []struct{ trials, parts, want int }{
		{10, 3, 3}, {10, 1, 1}, {3, 5, 3}, {1, 1, 1}, {100, 7, 7}, {5, 0, 1},
	} {
		plan := PlanShards(tc.trials, tc.parts)
		if len(plan) != tc.want {
			t.Errorf("PlanShards(%d, %d) = %d shards, want %d", tc.trials, tc.parts, len(plan), tc.want)
			continue
		}
		lo := 0
		minSz, maxSz := tc.trials, 0
		for _, s := range plan {
			if s.Lo != lo {
				t.Fatalf("PlanShards(%d, %d): gap/overlap at %d (plan %v)", tc.trials, tc.parts, lo, plan)
			}
			if sz := s.Hi - s.Lo; sz > 0 {
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
			} else {
				t.Fatalf("PlanShards(%d, %d): empty shard %v", tc.trials, tc.parts, s)
			}
			lo = s.Hi
		}
		if lo != tc.trials {
			t.Fatalf("PlanShards(%d, %d) tiles to %d, want %d", tc.trials, tc.parts, lo, tc.trials)
		}
		if maxSz-minSz > 1 {
			t.Errorf("PlanShards(%d, %d) sizes range [%d, %d], want near-equal", tc.trials, tc.parts, minSz, maxSz)
		}
	}
}
