package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"plurality/internal/service"
)

// lateHandler lets the httptest server exist before the node whose
// Handler it serves (the node needs every peer URL at construction).
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testCluster struct {
	nodes    map[string]*Node
	servers  map[string]*httptest.Server
	handlers map[string]*lateHandler
}

// newTestCluster stands up an in-process fleet over loopback HTTP:
// 2 coordinators (c1, c2) + 3 workers (w1..w3), no journals.
func newTestCluster(t *testing.T) *testCluster {
	t.Helper()
	ids := []string{"c1", "c2", "w1", "w2", "w3"}
	tc := &testCluster{
		nodes:    make(map[string]*Node),
		servers:  make(map[string]*httptest.Server),
		handlers: make(map[string]*lateHandler),
	}
	peers := make(map[string]string)
	for _, id := range ids {
		lh := &lateHandler{}
		srv := httptest.NewServer(lh)
		tc.handlers[id] = lh
		tc.servers[id] = srv
		peers[id] = srv.URL
	}
	for _, id := range ids {
		role := RoleWorker
		if id[0] == 'c' {
			role = RoleCoordinator
		}
		n, err := NewNode(NodeConfig{
			ID:            id,
			Role:          role,
			Peers:         peers,
			Coordinators:  []string{"c1", "c2"},
			Parallelism:   2,
			Heartbeat:     10 * time.Millisecond,
			ElectionTicks: 4,
			LeaseTimeout:  30 * time.Second,
			Logf:          t.Logf,
		})
		if err != nil {
			t.Fatalf("node %s: %v", id, err)
		}
		tc.nodes[id] = n
		tc.handlers[id].set(n.Handler())
	}
	t.Cleanup(tc.close)
	if _, ok := tc.nodes["c1"].WaitLeader(10 * time.Second); !ok {
		t.Fatal("no leader elected")
	}
	return tc
}

func (tc *testCluster) close() {
	for _, n := range tc.nodes {
		n.Close()
	}
	for _, s := range tc.servers {
		s.Close()
	}
}

// follower returns a coordinator that does not currently lead —
// exercising the submit-forwarding path.
func (tc *testCluster) follower() *Node {
	if tc.nodes["c1"].Replica().IsLeader() {
		return tc.nodes["c2"]
	}
	return tc.nodes["c1"]
}

// TestNodeClusterByteIdentity runs a request through the cluster from
// a follower coordinator and expects the exact bytes of a
// single-process run, a sharded ledger, exactly one decision, and a
// peer-cache hit afterwards.
func TestNodeClusterByteIdentity(t *testing.T) {
	tc := newTestCluster(t)
	req := service.Request{Protocol: "3-majority", N: 600, K: 5, Seed: 42, Trials: 7}

	want, err := service.ExecuteParallel(req, 4)
	if err != nil {
		t.Fatalf("local ground truth: %v", err)
	}
	wantJSON, _ := json.Marshal(want)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	co := tc.follower()
	got, err := co.Run(ctx, req)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("cluster response differs from single-process run:\n%s\n%s", gotJSON, wantJSON)
	}

	key := req.Normalize().Key()
	jv, ok := co.Ledger().Job(key)
	if !ok {
		t.Fatal("job missing from ledger")
	}
	if len(jv.Shards) != 3 {
		t.Fatalf("plan has %d shards, want one per worker (3)", len(jv.Shards))
	}
	if !jv.Decided {
		t.Fatal("job not decided")
	}
	for i, s := range jv.Shards {
		if s.Status != ShardDone {
			t.Fatalf("shard %d not done: %+v", i, s)
		}
	}

	// Read-through: any coordinator finds the cached canonical bytes.
	for _, id := range []string{"c1", "c2"} {
		cached, ok := tc.nodes[id].Lookup(ctx, key)
		if !ok {
			t.Fatalf("%s: peer-cache lookup missed after completion", id)
		}
		cachedJSON, _ := json.Marshal(cached)
		if string(cachedJSON) != string(wantJSON) {
			t.Fatalf("%s: cached bytes differ from ground truth", id)
		}
	}
	if tc.nodes["c1"].Metrics().PeerCacheHits+tc.nodes["c2"].Metrics().PeerCacheHits == 0 {
		t.Fatal("peer cache hits not counted")
	}
}

// TestNodeClusterDedup submits the same request from both coordinators
// concurrently: the ledger admits one job, both callers get identical
// bytes.
func TestNodeClusterDedup(t *testing.T) {
	tc := newTestCluster(t)
	req := service.Request{Protocol: "2-choices", N: 400, K: 4, Seed: 7, Trials: 6}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make([]*service.Response, 2)
	errs := make([]error, 2)
	for i, id := range []string{"c1", "c2"} {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			results[i], errs[i] = n.Run(ctx, req)
		}(i, tc.nodes[id])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	a, _ := json.Marshal(results[0])
	b, _ := json.Marshal(results[1])
	if string(a) != string(b) {
		t.Fatalf("concurrent submitters saw different bytes:\n%s\n%s", a, b)
	}
	if jobs := tc.nodes["c1"].Ledger().Jobs(); len(jobs) != 1 {
		t.Fatalf("ledger admitted %d jobs, want 1 (cluster-wide dedup)", len(jobs))
	}
}

// TestNodeWorkerFailureRequeues kills one worker's HTTP surface before
// the run: its shard leases fail, requeue, and rotate to live workers;
// the run still completes with the single-process bytes.
func TestNodeWorkerFailureRequeues(t *testing.T) {
	tc := newTestCluster(t)
	// Dead worker: still a registered peer (quorum math unchanged at
	// 4/5 live) but refuses every request.
	tc.handlers["w2"].set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "killed", http.StatusBadGateway)
	}))
	tc.nodes["w2"].Close()

	// Pick a seed whose first-attempt shard placement hits the dead
	// worker (placement is a pure function of key and worker set).
	ring := NewRing([]string{"w1", "w2", "w3"})
	var req service.Request
	for seed := uint64(1); ; seed++ {
		req = service.Request{Protocol: "3-majority", N: 500, K: 4, Seed: seed, Trials: 6}
		key := req.Normalize().Key()
		hit := false
		for i := 0; i < 3; i++ {
			if ring.Owner(shardID(key, i)) == "w2" {
				hit = true
			}
		}
		if hit {
			break
		}
	}
	want, err := service.ExecuteParallel(req, 4)
	if err != nil {
		t.Fatalf("local ground truth: %v", err)
	}
	wantJSON, _ := json.Marshal(want)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	got, err := tc.follower().Run(ctx, req)
	if err != nil {
		t.Fatalf("cluster run with dead worker: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("bytes diverged after worker failure")
	}
	if tc.follower().Ledger().Requeues() == 0 {
		t.Fatal("dead worker's shard was never requeued")
	}
}
