package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"maps"
	"slices"
	"sort"
)

// ringVnodes is the number of virtual points each peer contributes to
// the ring. 128 keeps the peer-to-peer load imbalance within a few
// percent for small fleets (see TestRingBalance) at negligible lookup
// cost (binary search over peers×128 points).
const ringVnodes = 128

// Ring is a consistent-hash ring mapping SHA-256 request keys to peer
// IDs. Ownership is a pure function of the sorted peer set: every node
// that knows the same peers computes the same owner for every key, with
// no coordination — which is what lets any coordinator route a cache
// read-through or write-back without asking the leader. Adding or
// removing one peer moves only the keys that land on that peer's arcs
// (~1/|peers| of the space); everything else keeps its owner.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds the ring over the given peer IDs (order-insensitive,
// duplicates ignored). An empty peer set yields a ring whose Owner
// returns "".
func NewRing(peers []string) *Ring {
	uniq := make(map[string]bool, len(peers))
	for _, p := range peers {
		uniq[p] = true
	}
	sorted := slices.Sorted(maps.Keys(uniq))
	r := &Ring{peers: sorted}
	for _, p := range sorted {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", p, v)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by peer ID so the ring
		// is a pure function of the peer set.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// ringHash is the ring's placement hash: the first 8 bytes of SHA-256,
// big-endian. SHA-256 keeps placement aligned with the request-key
// hash family and is stable across Go versions and architectures.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the ring's peer IDs, sorted.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning key: the first ring point at or after
// the key's hash, wrapping at the top. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct peers for key, in ring order
// starting at the key's successor point — the owner first, then the
// replicas a read-through may fall back to.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var owners []string
	seen := make(map[string]bool, n)
	for i := 0; len(owners) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			owners = append(owners, p)
		}
	}
	return owners
}
