package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"plurality/internal/durable"
)

// Replica roles. Coordinators are the preferred candidates; other
// replicas campaign only after a long fallback silence (see
// fallbackCandidateSlack).
const (
	roleFollower = iota
	roleCandidate
	roleLeader
)

// Entry is one slot of the replicated log: a ledger record stamped
// with its index and the term of the leader that proposed it.
type Entry struct {
	Index uint64       `json:"index"`
	Term  uint64       `json:"term"`
	Rec   LedgerRecord `json:"rec"`
}

// VoteRequest asks a peer for its vote in an election.
type VoteRequest struct {
	Term      uint64 `json:"term"`
	Candidate string `json:"candidate"`
	LastIndex uint64 `json:"last_index"`
	LastTerm  uint64 `json:"last_term"`
}

// VoteResponse is a peer's answer.
type VoteResponse struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
}

// AppendRequest replicates log entries (empty Entries = heartbeat).
type AppendRequest struct {
	Term      uint64  `json:"term"`
	Leader    string  `json:"leader"`
	PrevIndex uint64  `json:"prev_index"`
	PrevTerm  uint64  `json:"prev_term"`
	Entries   []Entry `json:"entries,omitempty"`
	Commit    uint64  `json:"commit"`
}

// AppendResponse acknowledges replication up to MatchIndex.
type AppendResponse struct {
	Term       uint64 `json:"term"`
	Success    bool   `json:"success"`
	MatchIndex uint64 `json:"match_index"`
}

// Transport carries replica RPCs to a peer by ID. Implementations must
// bound each call (the HTTP transport uses a per-RPC timeout); an
// unreachable peer returns an error, never blocks forever.
type Transport interface {
	Vote(ctx context.Context, peer string, req VoteRequest) (VoteResponse, error)
	Append(ctx context.Context, peer string, req AppendRequest) (AppendResponse, error)
}

// Journal record ops for replica persistence, layered on the
// internal/durable journal (CRC-framed, fsync'd appends, valid-prefix
// replay). The ledger needs no snapshotting at this scale: restart
// replays the log and refolds the state machine.
const (
	// opClusterTerm persists a term/vote change — the double-vote
	// guard must survive a crash.
	opClusterTerm = "cluster-term"
	// opClusterEntry persists one appended log entry.
	opClusterEntry = "cluster-entry"
	// opClusterTruncate persists a conflict truncation: every entry
	// with Index >= the payload index is discarded.
	opClusterTruncate = "cluster-truncate"
)

type termRecord struct {
	Term     uint64 `json:"term"`
	VotedFor string `json:"voted_for"`
}

type truncateRecord struct {
	Index uint64 `json:"index"`
}

// ReplicaConfig configures one ledger replica.
type ReplicaConfig struct {
	// ID is this node's cluster ID.
	ID string
	// Peers lists every replica ID, self included.
	Peers []string
	// Candidates lists the IDs allowed to campaign (the coordinators).
	Candidates []string
	// Transport reaches the other replicas.
	Transport Transport
	// Journal, when non-nil, persists terms, votes and entries; pass
	// the records OpenJournal replayed in Records to recover state.
	Journal *durable.Journal
	// Records are the replayed journal records (nil on first boot).
	Records []durable.Record
	// Heartbeat is the tick interval: leaders broadcast every tick,
	// non-leaders count ticks toward an election (default 150ms).
	Heartbeat time.Duration
	// ElectionTicks is the base number of silent ticks before a
	// candidate campaigns (default 10). The effective timeout adds a
	// deterministic per-(node, term) jitter in [0, ElectionTicks) so
	// candidates decorrelate without consuming entropy.
	ElectionTicks int
	// Apply consumes committed entries, in index order, exactly once
	// per index per process.
	Apply func(index uint64, rec LedgerRecord)
	// OnLeader, when non-nil, runs on its own goroutine each time
	// this replica wins an election. barrier is the index of the
	// no-op entry the new leader proposed: once it is applied, every
	// entry inherited from earlier terms is too. The node uses it to
	// requeue leases granted by deposed leaders.
	OnLeader func(term, barrier uint64)
	// Logf, when non-nil, receives replica lifecycle logs.
	Logf func(format string, args ...any)
}

// Replica is one node's view of the replicated ledger log: an
// election-capable (for coordinators) quorum-replicated log in the
// Raft mold, with tick-driven timeouts — no wall-clock reads — and
// persistence through the durable journal. Committed entries flow to
// cfg.Apply in index order on every replica, which is what makes the
// ledger state machine identical fleet-wide.
type Replica struct {
	cfg      ReplicaConfig
	majority int

	mu       sync.Mutex
	term     uint64
	votedFor string
	log      []Entry // log[i] has Index i+1
	commit   uint64
	applied  uint64
	role     int
	leader   string // leader known for the current term ("" if none)

	// Leader bookkeeping, rebuilt on each election win.
	nextIndex  map[string]uint64
	matchIndex map[string]uint64

	electionElapsed int
	notify          chan struct{} // closed+replaced on commit/role change

	applyCh   chan struct{}
	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// NewReplica builds the replica, recovers persisted state from
// cfg.Records, and starts its ticker and apply loops.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 150 * time.Millisecond
	}
	if cfg.ElectionTicks <= 0 {
		cfg.ElectionTicks = 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Replica{
		cfg:      cfg,
		majority: len(cfg.Peers)/2 + 1,
		notify:   make(chan struct{}),
		applyCh:  make(chan struct{}, 1),
		closed:   make(chan struct{}),
	}
	r.recover(cfg.Records)
	r.wg.Add(2)
	go r.tickLoop()
	go r.applyLoop()
	return r
}

// recover folds replayed journal records back into term/vote/log.
func (r *Replica) recover(records []durable.Record) {
	for _, rec := range records {
		switch rec.Op {
		case opClusterTerm:
			var tr termRecord
			if json.Unmarshal(rec.State, &tr) == nil {
				r.term, r.votedFor = tr.Term, tr.VotedFor
			}
		case opClusterEntry:
			var e Entry
			if json.Unmarshal(rec.State, &e) == nil && e.Index == uint64(len(r.log))+1 {
				r.log = append(r.log, e)
			}
		case opClusterTruncate:
			var tr truncateRecord
			if json.Unmarshal(rec.State, &tr) == nil && tr.Index >= 1 && tr.Index <= uint64(len(r.log)) {
				r.log = r.log[:tr.Index-1]
			}
		}
	}
	if len(r.log) > 0 {
		r.cfg.Logf("cluster: replica %s recovered term=%d log=%d entries", r.cfg.ID, r.term, len(r.log))
	}
}

// Close stops the replica's loops. In-flight RPC handlers finish.
func (r *Replica) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.wg.Wait()
	})
}

// persistTerm journals a term/vote change (caller holds mu). A failed
// append degrades durability, not availability: the in-memory protocol
// stays correct for this process's lifetime.
func (r *Replica) persistTerm() {
	if r.cfg.Journal == nil {
		return
	}
	data, _ := json.Marshal(termRecord{Term: r.term, VotedFor: r.votedFor})
	_ = r.cfg.Journal.Append(durable.Record{Op: opClusterTerm, State: data})
}

func (r *Replica) persistEntry(e Entry) {
	if r.cfg.Journal == nil {
		return
	}
	data, _ := json.Marshal(e)
	_ = r.cfg.Journal.Append(durable.Record{Op: opClusterEntry, Key: e.Rec.Key, State: data})
}

func (r *Replica) persistTruncate(index uint64) {
	if r.cfg.Journal == nil {
		return
	}
	data, _ := json.Marshal(truncateRecord{Index: index})
	_ = r.cfg.Journal.Append(durable.Record{Op: opClusterTruncate, State: data})
}

func (r *Replica) lastIndexLocked() uint64 { return uint64(len(r.log)) }

func (r *Replica) termAtLocked(index uint64) uint64 {
	if index == 0 || index > uint64(len(r.log)) {
		return 0
	}
	return r.log[index-1].Term
}

func (r *Replica) wakeLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// isCandidate reports whether id is a preferred candidate (a
// coordinator).
func (r *Replica) isCandidate(id string) bool {
	for _, c := range r.cfg.Candidates {
		if c == id {
			return true
		}
	}
	return false
}

// fallbackCandidateSlack stretches a non-coordinator's election
// timeout. Coordinators are the preferred leaders, but restricting
// candidacy to them outright opens a liveness hole: an entry can
// commit on a quorum that contains the leader and only workers, and if
// that leader then dies the surviving coordinator — missing the
// committed entry — is rightly refused every vote, forever. Any
// replica may therefore stand, but workers wait ~8 election timeouts
// of silence first, so they only ever lead when no coordinator can.
const fallbackCandidateSlack = 8

// electionTimeoutTicks derives this node's effective timeout for the
// current term: base + hash(id, term) % base, with base stretched by
// fallbackCandidateSlack for non-coordinators. Deterministic — no
// entropy — yet different per node and per term, which is all the
// decorrelation leader election needs.
func (r *Replica) electionTimeoutTicks() int {
	base := r.cfg.ElectionTicks
	if !r.isCandidate(r.cfg.ID) {
		base *= fallbackCandidateSlack
	}
	return base + int(ringHash(fmt.Sprintf("%s/election/%d", r.cfg.ID, r.term))%uint64(base))
}

// tickLoop drives time-dependent behavior off one ticker: leaders
// broadcast, would-be candidates count silence toward an election.
func (r *Replica) tickLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		role := r.role
		var campaign bool
		if role != roleLeader {
			r.electionElapsed++
			if r.electionElapsed >= r.electionTimeoutTicks() {
				r.electionElapsed = 0
				campaign = true
			}
		}
		r.mu.Unlock()
		switch {
		case campaign:
			r.campaign()
		case role == roleLeader:
			r.broadcast()
		}
	}
}

// campaign runs one election round: bump term, vote self, solicit the
// fleet, and take leadership on a majority.
func (r *Replica) campaign() {
	r.mu.Lock()
	r.term++
	r.role = roleCandidate
	r.votedFor = r.cfg.ID
	r.leader = ""
	term := r.term
	req := VoteRequest{
		Term:      term,
		Candidate: r.cfg.ID,
		LastIndex: r.lastIndexLocked(),
		LastTerm:  r.termAtLocked(r.lastIndexLocked()),
	}
	r.persistTerm()
	r.wakeLocked()
	r.mu.Unlock()
	r.cfg.Logf("cluster: %s campaigning in term %d", r.cfg.ID, term)

	votes := make(chan bool, len(r.cfg.Peers))
	votes <- true // self
	for _, p := range r.cfg.Peers {
		if p == r.cfg.ID {
			continue
		}
		go func(peer string) {
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Heartbeat*time.Duration(r.cfg.ElectionTicks))
			defer cancel()
			resp, err := r.cfg.Transport.Vote(ctx, peer, req)
			if err != nil {
				votes <- false
				return
			}
			if resp.Term > term {
				r.stepDown(resp.Term)
			}
			votes <- resp.Granted
		}(p)
	}
	granted := 0
	for i := 0; i < len(r.cfg.Peers); i++ {
		var ok bool
		select {
		case ok = <-votes:
		case <-r.closed:
			return
		}
		if !ok {
			continue
		}
		granted++
		if granted < r.majority {
			continue
		}
		// Majority: take leadership if the term still stands.
		r.mu.Lock()
		if r.term != term || r.role != roleCandidate {
			r.mu.Unlock()
			return
		}
		r.role = roleLeader
		r.leader = r.cfg.ID
		r.nextIndex = make(map[string]uint64, len(r.cfg.Peers))
		r.matchIndex = make(map[string]uint64, len(r.cfg.Peers))
		for _, p := range r.cfg.Peers {
			r.nextIndex[p] = r.lastIndexLocked() + 1
			r.matchIndex[p] = 0
		}
		// Barrier entry: the commit rule only commits entries of the
		// current term, so a fresh leader proposes a no-op to unlock
		// commitment of any older-term tail it inherited.
		e := Entry{Index: r.lastIndexLocked() + 1, Term: term, Rec: LedgerRecord{Op: "noop"}}
		r.log = append(r.log, e)
		r.persistEntry(e)
		r.wakeLocked()
		r.mu.Unlock()
		r.cfg.Logf("cluster: %s leads term %d", r.cfg.ID, term)
		r.broadcast()
		if r.cfg.OnLeader != nil {
			// Own goroutine: OnLeader may block on commit/apply, and
			// this goroutine must return to the tick loop to drive the
			// heartbeats that make commits happen.
			go r.cfg.OnLeader(term, e.Index)
		}
		return
	}
}

// stepDown adopts a higher term observed in any RPC.
func (r *Replica) stepDown(term uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if term <= r.term {
		return
	}
	r.term = term
	r.votedFor = ""
	r.role = roleFollower
	r.leader = ""
	r.persistTerm()
	r.wakeLocked()
}

// broadcast pushes log state to every peer: entries from nextIndex for
// the laggards, a bare heartbeat for the caught-up. Runs on the ticker
// goroutine and after Propose.
func (r *Replica) broadcast() {
	r.mu.Lock()
	if r.role != roleLeader {
		r.mu.Unlock()
		return
	}
	term := r.term
	type out struct {
		peer string
		req  AppendRequest
	}
	var outs []out
	for _, p := range r.cfg.Peers {
		if p == r.cfg.ID {
			continue
		}
		next := r.nextIndex[p]
		if next < 1 {
			next = 1
		}
		req := AppendRequest{
			Term:      term,
			Leader:    r.cfg.ID,
			PrevIndex: next - 1,
			PrevTerm:  r.termAtLocked(next - 1),
			Commit:    r.commit,
		}
		if last := r.lastIndexLocked(); next <= last {
			req.Entries = append([]Entry(nil), r.log[next-1:last]...)
		}
		outs = append(outs, out{peer: p, req: req})
	}
	r.mu.Unlock()

	for _, o := range outs {
		go func(peer string, req AppendRequest) {
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Heartbeat*time.Duration(r.cfg.ElectionTicks))
			defer cancel()
			resp, err := r.cfg.Transport.Append(ctx, peer, req)
			if err != nil {
				return
			}
			if resp.Term > req.Term {
				r.stepDown(resp.Term)
				return
			}
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.role != roleLeader || r.term != req.Term {
				return
			}
			if resp.Success {
				if resp.MatchIndex > r.matchIndex[peer] {
					r.matchIndex[peer] = resp.MatchIndex
					r.nextIndex[peer] = resp.MatchIndex + 1
					r.advanceCommitLocked()
				}
			} else if r.nextIndex[peer] > 1 {
				r.nextIndex[peer]--
			}
		}(o.peer, o.req)
	}
}

// advanceCommitLocked commits the largest current-term index a
// majority has replicated (caller holds mu).
func (r *Replica) advanceCommitLocked() {
	for n := r.lastIndexLocked(); n > r.commit; n-- {
		if r.termAtLocked(n) != r.term {
			// The commit rule: only entries of the leader's own term
			// commit by counting — older entries commit transitively.
			break
		}
		count := 1 // self
		for _, p := range r.cfg.Peers {
			if p != r.cfg.ID && r.matchIndex[p] >= n {
				count++
			}
		}
		if count >= r.majority {
			r.commit = n
			r.wakeLocked()
			select {
			case r.applyCh <- struct{}{}:
			default:
			}
			break
		}
	}
}

// applyLoop feeds committed entries to cfg.Apply in index order.
func (r *Replica) applyLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.closed:
			return
		case <-r.applyCh:
		}
		for {
			r.mu.Lock()
			if r.applied >= r.commit {
				r.mu.Unlock()
				break
			}
			r.applied++
			e := r.log[r.applied-1]
			r.mu.Unlock()
			if r.cfg.Apply != nil {
				r.cfg.Apply(e.Index, e.Rec)
			}
		}
	}
}

// HandleVote answers a peer's vote solicitation.
func (r *Replica) HandleVote(req VoteRequest) VoteResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	if req.Term < r.term {
		return VoteResponse{Term: r.term, Granted: false}
	}
	if req.Term > r.term {
		r.term = req.Term
		r.votedFor = ""
		r.role = roleFollower
		r.leader = ""
		r.persistTerm()
		r.wakeLocked()
	}
	upToDate := req.LastTerm > r.termAtLocked(r.lastIndexLocked()) ||
		(req.LastTerm == r.termAtLocked(r.lastIndexLocked()) && req.LastIndex >= r.lastIndexLocked())
	if (r.votedFor == "" || r.votedFor == req.Candidate) && upToDate {
		r.votedFor = req.Candidate
		r.electionElapsed = 0
		r.persistTerm()
		return VoteResponse{Term: r.term, Granted: true}
	}
	return VoteResponse{Term: r.term, Granted: false}
}

// HandleAppend answers a leader's replication push.
func (r *Replica) HandleAppend(req AppendRequest) AppendResponse {
	r.mu.Lock()
	if req.Term < r.term {
		defer r.mu.Unlock()
		return AppendResponse{Term: r.term, Success: false}
	}
	if req.Term > r.term {
		r.term = req.Term
		r.votedFor = ""
		r.persistTerm()
	}
	r.role = roleFollower
	if r.leader != req.Leader {
		r.leader = req.Leader
		r.wakeLocked()
	}
	r.electionElapsed = 0

	// Log-matching check.
	if req.PrevIndex > r.lastIndexLocked() || r.termAtLocked(req.PrevIndex) != req.PrevTerm {
		defer r.mu.Unlock()
		return AppendResponse{Term: r.term, Success: false}
	}
	// Append, truncating a conflicting suffix exactly once.
	for _, e := range req.Entries {
		if e.Index <= r.lastIndexLocked() {
			if r.termAtLocked(e.Index) == e.Term {
				continue // already have it
			}
			r.log = r.log[:e.Index-1]
			r.persistTruncate(e.Index)
		}
		r.log = append(r.log, e)
		r.persistEntry(e)
	}
	match := req.PrevIndex + uint64(len(req.Entries))
	if req.Commit > r.commit {
		c := req.Commit
		if last := r.lastIndexLocked(); c > last {
			c = last
		}
		if c > r.commit {
			r.commit = c
			r.wakeLocked()
			select {
			case r.applyCh <- struct{}{}:
			default:
			}
		}
	}
	term := r.term
	r.mu.Unlock()
	return AppendResponse{Term: term, Success: true, MatchIndex: match}
}

// Propose appends a record to the log if this replica currently leads.
// It returns the entry's (index, term) for WaitCommitted; followers
// get ErrNotLeader and should redirect to Leader().
func (r *Replica) Propose(rec LedgerRecord) (uint64, uint64, error) {
	r.mu.Lock()
	if r.role != roleLeader {
		r.mu.Unlock()
		return 0, 0, ErrNotLeader
	}
	e := Entry{Index: r.lastIndexLocked() + 1, Term: r.term, Rec: rec}
	r.log = append(r.log, e)
	r.persistEntry(e)
	r.mu.Unlock()
	r.broadcast()
	return e.Index, e.Term, nil
}

// ErrNotLeader rejects proposals on a non-leader replica.
var ErrNotLeader = fmt.Errorf("cluster: not the leader")

// WaitCommitted blocks until the entry at (index, term) commits, or
// fails if the entry was overwritten by a different term (the proposal
// was lost to a leader change) or done closes.
func (r *Replica) WaitCommitted(done <-chan struct{}, index, term uint64) error {
	for {
		r.mu.Lock()
		committed := r.commit >= index
		entryTerm := r.termAtLocked(index)
		// If the slot now holds a different term's entry, a competing
		// leader overwrote the proposal; it will never commit as ours.
		lost := r.lastIndexLocked() >= index && entryTerm != term
		ch := r.notify
		r.mu.Unlock()
		if committed && entryTerm == term {
			return nil
		}
		if lost {
			return fmt.Errorf("cluster: proposal at index %d lost to term change", index)
		}
		select {
		case <-ch:
		case <-done:
			return fmt.Errorf("cluster: wait for commit %d cancelled", index)
		}
	}
}

// Status is a point-in-time replica snapshot for /cluster/status and
// the metrics lines.
type Status struct {
	ID        string `json:"id"`
	Term      uint64 `json:"term"`
	Leader    string `json:"leader"`
	IsLeader  bool   `json:"is_leader"`
	Commit    uint64 `json:"commit"`
	Applied   uint64 `json:"applied"`
	LastIndex uint64 `json:"last_index"`
}

// Status returns the replica's current view.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Status{
		ID:        r.cfg.ID,
		Term:      r.term,
		Leader:    r.leader,
		IsLeader:  r.role == roleLeader,
		Commit:    r.commit,
		Applied:   r.applied,
		LastIndex: r.lastIndexLocked(),
	}
}

// Leader returns the leader this replica currently believes in ("" if
// none known).
func (r *Replica) Leader() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leader
}

// IsLeader reports whether this replica currently leads.
func (r *Replica) IsLeader() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role == roleLeader
}

// LeaderChanged returns a channel closed at the next role/term/commit
// transition — a cheap way for Run loops to re-check leadership.
func (r *Replica) LeaderChanged() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notify
}
