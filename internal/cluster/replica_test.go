package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"plurality/internal/durable"
)

// memTransport wires replicas together in-process, with a down set to
// simulate killed or partitioned nodes.
type memTransport struct {
	mu       sync.Mutex
	replicas map[string]*Replica
	down     map[string]bool
}

func newMemTransport() *memTransport {
	return &memTransport{replicas: make(map[string]*Replica), down: make(map[string]bool)}
}

func (m *memTransport) register(id string, r *Replica) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replicas[id] = r
}

func (m *memTransport) setDown(id string, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[id] = down
}

func (m *memTransport) get(from, to string) (*Replica, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down[from] || m.down[to] {
		return nil, fmt.Errorf("memtransport: %s -> %s unreachable", from, to)
	}
	r, ok := m.replicas[to]
	if !ok {
		return nil, fmt.Errorf("memtransport: unknown peer %s", to)
	}
	return r, nil
}

// peerTransport is one node's view of the mesh (so the transport knows
// who is calling and can cut a down node's outbound RPCs too).
type peerTransport struct {
	id string
	m  *memTransport
}

func (p *peerTransport) Vote(ctx context.Context, peer string, req VoteRequest) (VoteResponse, error) {
	r, err := p.m.get(p.id, peer)
	if err != nil {
		return VoteResponse{}, err
	}
	return r.HandleVote(req), nil
}

func (p *peerTransport) Append(ctx context.Context, peer string, req AppendRequest) (AppendResponse, error) {
	r, err := p.m.get(p.id, peer)
	if err != nil {
		return AppendResponse{}, err
	}
	return r.HandleAppend(req), nil
}

// applyLog collects each replica's applied sequence for convergence
// checks.
type applyLog struct {
	mu   sync.Mutex
	recs []LedgerRecord
}

func (a *applyLog) apply(index uint64, rec LedgerRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recs = append(a.recs, rec)
}

func (a *applyLog) snapshot() []LedgerRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]LedgerRecord(nil), a.recs...)
}

type testFleet struct {
	ids        []string
	candidates []string
	transport  *memTransport
	replicas   map[string]*Replica
	applied    map[string]*applyLog
}

func newTestFleet(t *testing.T, journalDir string) *testFleet {
	t.Helper()
	f := &testFleet{
		ids:        []string{"c1", "c2", "w1", "w2", "w3"},
		candidates: []string{"c1", "c2"},
		transport:  newMemTransport(),
		replicas:   make(map[string]*Replica),
		applied:    make(map[string]*applyLog),
	}
	for _, id := range f.ids {
		f.start(t, id, journalDir)
	}
	return f
}

func (f *testFleet) start(t *testing.T, id, journalDir string) {
	t.Helper()
	var j *durable.Journal
	var recs []durable.Record
	if journalDir != "" {
		var err error
		j, recs, _, err = durable.OpenJournal(durable.OSFS{}, filepath.Join(journalDir, id+".journal"))
		if err != nil {
			t.Fatalf("open journal for %s: %v", id, err)
		}
	}
	al := &applyLog{}
	f.applied[id] = al
	r := NewReplica(ReplicaConfig{
		ID:            id,
		Peers:         f.ids,
		Candidates:    f.candidates,
		Transport:     &peerTransport{id: id, m: f.transport},
		Journal:       j,
		Records:       recs,
		Heartbeat:     5 * time.Millisecond,
		ElectionTicks: 4,
		Apply:         al.apply,
	})
	f.replicas[id] = r
	f.transport.register(id, r)
	f.transport.setDown(id, false)
}

func (f *testFleet) close() {
	for _, r := range f.replicas {
		if r != nil {
			r.Close()
		}
	}
}

// leader returns the live replica that currently leads, if any (any
// node may lead — workers are fallback candidates).
func (f *testFleet) leader() *Replica {
	for _, id := range f.ids {
		r := f.replicas[id]
		if r != nil && r.IsLeader() {
			return r
		}
	}
	return nil
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if cond() {
			return
		}
		select {
		case <-deadline.C:
			t.Fatalf("timed out waiting for %s", what)
		case <-tick.C:
		}
	}
}

func propose(t *testing.T, f *testFleet, rec LedgerRecord) {
	t.Helper()
	waitFor(t, 5*time.Second, "a leader", func() bool { return f.leader() != nil })
	waitFor(t, 5*time.Second, "proposal to commit", func() bool {
		l := f.leader()
		if l == nil {
			return false
		}
		idx, term, err := l.Propose(rec)
		if err != nil {
			return false
		}
		done := make(chan struct{})
		time.AfterFunc(time.Second, func() { close(done) })
		return l.WaitCommitted(done, idx, term) == nil
	})
}

// nonNoop filters the barrier entries leaders insert on election.
func nonNoop(recs []LedgerRecord) []LedgerRecord {
	var out []LedgerRecord
	for _, r := range recs {
		if r.Op != "noop" {
			out = append(out, r)
		}
	}
	return out
}

// TestReplicaElectsAndReplicates: the fleet elects exactly one of the
// candidates, and committed records reach every replica in order.
func TestReplicaElectsAndReplicates(t *testing.T) {
	f := newTestFleet(t, "")
	defer f.close()

	waitFor(t, 5*time.Second, "leader election", func() bool { return f.leader() != nil })
	for _, id := range []string{"w1", "w2", "w3"} {
		if f.replicas[id].IsLeader() {
			t.Fatalf("worker %s became leader", id)
		}
	}

	want := []LedgerRecord{
		{Op: OpSubmit, Key: "j1", Shards: []ShardRange{{0, 4}, {4, 8}}},
		{Op: OpLease, Key: "j1", Shard: 0, Worker: "w1"},
		{Op: OpShardDone, Key: "j1", Shard: 0, Worker: "w1", Result: json.RawMessage(`7`)},
	}
	for _, rec := range want {
		propose(t, f, rec)
	}
	for _, id := range f.ids {
		id := id
		waitFor(t, 5*time.Second, "replica "+id+" to apply all records", func() bool {
			return len(nonNoop(f.applied[id].snapshot())) >= len(want)
		})
		got, _ := json.Marshal(nonNoop(f.applied[id].snapshot())[:len(want)])
		exp, _ := json.Marshal(want)
		if string(got) != string(exp) {
			t.Fatalf("replica %s applied %s, want %s", id, got, exp)
		}
	}
}

// TestReplicaLeaderFailover kills the leader (plus one worker — the
// e2e fleet shape) and expects the surviving candidate to take over
// and keep committing.
func TestReplicaLeaderFailover(t *testing.T) {
	f := newTestFleet(t, "")
	defer f.close()

	propose(t, f, LedgerRecord{Op: OpSubmit, Key: "j1", Shards: []ShardRange{{0, 8}}})
	old := f.leader()
	if old == nil {
		t.Fatal("no leader after first commit")
	}
	oldID := old.cfg.ID

	// SIGKILL equivalents: unreachable and stopped.
	f.transport.setDown(oldID, true)
	f.transport.setDown("w3", true)
	old.Close()
	f.replicas[oldID] = nil
	f.replicas["w3"].Close()
	f.replicas["w3"] = nil

	waitFor(t, 10*time.Second, "failover to the surviving candidate", func() bool {
		l := f.leader()
		return l != nil && l.cfg.ID != oldID
	})

	propose(t, f, LedgerRecord{Op: OpShardDone, Key: "j1", Shard: 0, Worker: "w1", Result: json.RawMessage(`1`)})
	propose(t, f, LedgerRecord{Op: OpDecide, Key: "j1", MergedSHA: "s"})

	// All survivors converge on the same applied sequence.
	survivors := []string{}
	for _, id := range f.ids {
		if f.replicas[id] != nil {
			survivors = append(survivors, id)
		}
	}
	for _, id := range survivors {
		id := id
		waitFor(t, 5*time.Second, "survivor "+id+" to apply the decide", func() bool {
			recs := nonNoop(f.applied[id].snapshot())
			return len(recs) >= 3 && recs[len(recs)-1].Op == OpDecide
		})
	}
	base, _ := json.Marshal(nonNoop(f.applied[survivors[0]].snapshot()))
	for _, id := range survivors[1:] {
		got, _ := json.Marshal(nonNoop(f.applied[id].snapshot()))
		if string(got) != string(base) {
			t.Fatalf("survivors diverged:\n%s: %s\n%s: %s", survivors[0], base, id, got)
		}
	}
}

// TestReplicaJournalRecovery restarts a journal-backed replica and
// expects its term and log to survive.
func TestReplicaJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	f := newTestFleet(t, dir)

	propose(t, f, LedgerRecord{Op: OpSubmit, Key: "j1", Shards: []ShardRange{{0, 2}}})
	propose(t, f, LedgerRecord{Op: OpLease, Key: "j1", Shard: 0, Worker: "w1"})

	// Wait for w1 to hold the whole log, then stop it.
	waitFor(t, 5*time.Second, "w1 to apply both records", func() bool {
		return len(nonNoop(f.applied["w1"].snapshot())) >= 2
	})
	stBefore := f.replicas["w1"].Status()
	f.transport.setDown("w1", true)
	f.replicas["w1"].Close()

	// Restart from the same journal.
	f.start(t, "w1", dir)
	stAfter := f.replicas["w1"].Status()
	if stAfter.LastIndex < stBefore.LastIndex {
		t.Fatalf("restart lost log entries: %d < %d", stAfter.LastIndex, stBefore.LastIndex)
	}
	if stAfter.Term < stBefore.Term {
		t.Fatalf("restart lost term: %d < %d", stAfter.Term, stBefore.Term)
	}

	// The restarted replica re-applies the same sequence (its applyLog
	// was replaced by start) once the leader re-advances its commit.
	waitFor(t, 10*time.Second, "restarted w1 to re-apply the log", func() bool {
		return len(nonNoop(f.applied["w1"].snapshot())) >= 2
	})
	recs := nonNoop(f.applied["w1"].snapshot())
	if recs[0].Op != OpSubmit || recs[1].Op != OpLease {
		t.Fatalf("restarted w1 applied %+v, want submit then lease", recs[:2])
	}
	f.close()
}
