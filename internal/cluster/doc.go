// Package cluster distributes conserve across a fleet: coordinators
// split a request's trial range into index-contiguous shards, dispatch
// them to workers over HTTP, and merge the results into the same
// canonical Response a single process would have produced.
//
// # Replication contract
//
// Every node — coordinators and workers alike — is a replica of one
// job ledger: a quorum-replicated log in the Raft mold (terms, votes,
// append with a prev-index/term match check, majority commit), with
// coordinators as the preferred election candidates (workers campaign
// only after a long fallback silence, closing the liveness hole where
// every up-to-date coordinator is dead). A record is durable once a
// majority of the fleet holds it, and every replica applies committed
// records in the same order through a deterministic state machine, so
// all nodes converge on identical job states. Terms, votes and log
// entries persist through the internal/durable journal (CRC-framed,
// fsync'd, valid-prefix replay), so a restarted node rejoins with its
// promises intact.
//
// # Lease contract
//
// A shard's lifecycle is pending → leased → done, every transition a
// replicated record. The leader leases a shard to one worker and holds
// the execution connection open; a connection error or lease timeout
// proposes a requeue (leased → pending) and the shard rotates to the
// next worker in ring order. A new leader requeues every lease it
// inherits — the deposed leader's dispatchers are gone. Transitions
// are state-guarded and first-wins (a duplicate completion or stale
// requeue applies as a no-op), so crashes and races never lose or
// double-count a shard, and exactly one decision commits per key.
//
// # Byte identity
//
// Workers execute shards through service.ExecuteShard, which derives
// each trial's seed from (request seed, trial index) alone; the merge
// validates that the shards tile [0, trials) exactly and reassembles
// the response precisely as the single-process path does. Shard
// results ride inside the replicated log, so any coordinator — not
// just the leader that dispatched them — can merge and answer the
// client, including after a failover.
//
// The DESIGN.md "Cluster" section documents the ledger record format,
// the lease/requeue state machine, quorum rules, and the byte-identity
// argument in full.
package cluster
