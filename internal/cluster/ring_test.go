package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// TestRingBalance bounds the load imbalance: with 128 vnodes per peer,
// every peer's share of 20k keys stays within a factor of two of fair.
func TestRingBalance(t *testing.T) {
	peers := []string{"a", "b", "c", "d", "e"}
	r := NewRing(peers)
	counts := make(map[string]int)
	keys := ringKeys(20000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(peers)
	for _, p := range peers {
		if counts[p] < fair/2 || counts[p] > fair*2 {
			t.Errorf("peer %s owns %d keys, want within [%d, %d]", p, counts[p], fair/2, fair*2)
		}
	}
}

// TestRingMinimalMovement checks the consistent-hashing property:
// adding one peer only moves keys onto the new peer (nothing shuffles
// between survivors), and the moved fraction is near 1/(n+1).
func TestRingMinimalMovement(t *testing.T) {
	before := NewRing([]string{"a", "b", "c", "d"})
	after := NewRing([]string{"a", "b", "c", "d", "e"})
	keys := ringKeys(20000)
	moved := 0
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		moved++
		if oa != "e" {
			t.Fatalf("key %s moved %s -> %s, not to the new peer", k, ob, oa)
		}
	}
	// Expect ~1/5 of keys to move; allow generous slack either way.
	if lo, hi := len(keys)/10, len(keys)*2/5; moved < lo || moved > hi {
		t.Errorf("moved %d keys on join, want within [%d, %d]", moved, lo, hi)
	}

	// Leaving is symmetric: removing "e" restores every original owner.
	restored := NewRing([]string{"a", "b", "c", "d"})
	for _, k := range keys {
		if before.Owner(k) != restored.Owner(k) {
			t.Fatalf("key %s changed owner after a join/leave round trip", k)
		}
	}
}

// TestRingDeterministicOwnership checks the ring is a pure function of
// the peer set: order and duplicates do not matter, and Owners returns
// distinct peers with the owner first.
func TestRingDeterministicOwnership(t *testing.T) {
	r1 := NewRing([]string{"a", "b", "c"})
	r2 := NewRing([]string{"c", "a", "b", "a", "c"})
	for _, k := range ringKeys(1000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("ownership of %s depends on peer order: %s vs %s", k, r1.Owner(k), r2.Owner(k))
		}
		owners := r1.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) = %v, want 3 distinct peers", k, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s, 3) repeats %s: %v", k, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r1.Owner(k) {
			t.Fatalf("Owners(%s)[0] = %s, want the owner %s", k, owners[0], r1.Owner(k))
		}
	}
}

// TestRingEmptyAndOversized covers the degenerate shapes.
func TestRingEmptyAndOversized(t *testing.T) {
	if got := NewRing(nil).Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	r := NewRing([]string{"a", "b"})
	if got := r.Owners("k", 10); len(got) != 2 {
		t.Errorf("Owners(k, 10) over 2 peers = %v, want both peers", got)
	}
}
