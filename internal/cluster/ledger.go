package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Ledger record operations, in job-lifecycle order. Every record is
// proposed by the coordinator leader, replicated through the quorum
// log, and applied — in commit order, deterministically — by every
// replica, so all nodes converge on the same job/shard states.
const (
	// OpSubmit admits a job: the request, its canonical key, and the
	// index-contiguous shard plan. A submit for a key that is already
	// active or decided applies as a no-op — cluster-wide dedup.
	OpSubmit = "submit"
	// OpLease grants one shard to one worker. Applies only to a
	// pending shard; anything else is a no-op (e.g. a stale lease
	// proposed by a deposed leader racing a completed shard).
	OpLease = "lease"
	// OpRequeue returns a leased shard to pending — the worker died,
	// timed out, or the lease belonged to a deposed leader. Applies
	// only to a leased shard.
	OpRequeue = "requeue"
	// OpShardDone records a shard's result payload. The first
	// completion wins: a duplicate (two workers raced after a spurious
	// requeue) applies as a no-op, so every replica keeps the same
	// bytes for the shard.
	OpShardDone = "shard_done"
	// OpDecide marks the job decided and pins the SHA-256 of the
	// merged canonical response. Exactly one decide applies per key
	// (first wins); the convergence tests' ndecided check counts these.
	OpDecide = "decide"
)

// LedgerRecord is one replicated ledger entry's payload.
type LedgerRecord struct {
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Key is the canonical SHA-256 request key the record is about.
	Key string `json:"key"`
	// Request is the normalized request JSON (OpSubmit).
	Request json.RawMessage `json:"request,omitempty"`
	// Shards is the job's shard plan (OpSubmit): index-contiguous
	// trial ranges tiling [0, trials).
	Shards []ShardRange `json:"shards,omitempty"`
	// Shard indexes into the plan (OpLease/OpRequeue/OpShardDone).
	Shard int `json:"shard,omitempty"`
	// Worker is the executing node ID (OpLease/OpShardDone).
	Worker string `json:"worker,omitempty"`
	// Result is the shard's service.ShardResult JSON (OpShardDone).
	Result json.RawMessage `json:"result,omitempty"`
	// Reason explains a requeue (for logs and tests).
	Reason string `json:"reason,omitempty"`
	// MergedSHA is the hex SHA-256 of the merged canonical response
	// bytes (OpDecide) — what the ndecided convergence check compares.
	MergedSHA string `json:"merged_sha,omitempty"`
}

// ShardRange is one index-contiguous trial range [Lo, Hi).
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Shard lifecycle states.
const (
	ShardPending = "pending"
	ShardLeased  = "leased"
	ShardDone    = "done"
)

// ShardState is one shard's current state in the ledger's view.
type ShardState struct {
	Range  ShardRange `json:"range"`
	Status string     `json:"status"`
	// Worker holds the lease (leased) or computed the result (done).
	Worker string `json:"worker,omitempty"`
	// LeaseIndex is the ledger index of the granting lease record; a
	// requeue for an older lease than the current one is stale and
	// applies as a no-op.
	LeaseIndex uint64 `json:"lease_index,omitempty"`
	// Result is the shard's result payload (done only).
	Result json.RawMessage `json:"result,omitempty"`
}

// JobView is a snapshot of one job's ledger state.
type JobView struct {
	Key     string          `json:"key"`
	Request json.RawMessage `json:"request"`
	Shards  []ShardState    `json:"shards"`
	// Decided reports an applied OpDecide; MergedSHA is its pinned
	// response hash.
	Decided   bool   `json:"decided"`
	MergedSHA string `json:"merged_sha,omitempty"`
	// DoneShards counts shards in state done.
	DoneShards int `json:"done_shards"`
}

type jobState struct {
	key       string
	request   json.RawMessage
	shards    []ShardState
	decided   bool
	mergedSHA string
	done      int
}

// Ledger is the replicated job ledger's state machine: the fold of the
// committed log, identical on every replica because Apply is a pure
// function of (state, record) applied in commit order. It is the
// coordinator's source of truth for dispatch (which shards are
// pending), completion (all shards done), and the fleet-wide dedup and
// exactly-one-decision guarantees. Safe for concurrent use.
type Ledger struct {
	mu    sync.Mutex
	jobs  map[string]*jobState
	order []string // submission order, for deterministic scans

	requeues uint64 // applied OpRequeue count (metrics)
	applied  uint64 // highest applied log index

	// notify is closed and replaced on every applied record, waking
	// WaitDecided pollers.
	notify chan struct{}
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{jobs: make(map[string]*jobState), notify: make(chan struct{})}
}

// Apply folds one committed record into the state machine. It is
// called by the replica in commit order, exactly once per index, on
// every node. Unknown ops and records that do not fit the current
// state apply as no-ops: replicas must never diverge or crash on a
// record a different leader legitimately raced in.
func (l *Ledger) Apply(index uint64, rec LedgerRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	defer l.wakeLocked()
	if index > l.applied {
		l.applied = index
	}
	j := l.jobs[rec.Key]
	switch rec.Op {
	case OpSubmit:
		if j != nil {
			return // cluster-wide dedup: first submission wins
		}
		j = &jobState{key: rec.Key, request: rec.Request}
		for _, sr := range rec.Shards {
			j.shards = append(j.shards, ShardState{Range: sr, Status: ShardPending})
		}
		l.jobs[rec.Key] = j
		l.order = append(l.order, rec.Key)
	case OpLease:
		if j == nil || rec.Shard < 0 || rec.Shard >= len(j.shards) {
			return
		}
		s := &j.shards[rec.Shard]
		if s.Status != ShardPending {
			return
		}
		s.Status, s.Worker, s.LeaseIndex = ShardLeased, rec.Worker, index
	case OpRequeue:
		if j == nil || rec.Shard < 0 || rec.Shard >= len(j.shards) {
			return
		}
		s := &j.shards[rec.Shard]
		if s.Status != ShardLeased {
			return
		}
		s.Status, s.Worker, s.LeaseIndex = ShardPending, "", 0
		l.requeues++
	case OpShardDone:
		if j == nil || rec.Shard < 0 || rec.Shard >= len(j.shards) {
			return
		}
		s := &j.shards[rec.Shard]
		if s.Status == ShardDone {
			return // first completion wins
		}
		s.Status, s.Worker, s.Result = ShardDone, rec.Worker, rec.Result
		j.done++
	case OpDecide:
		if j == nil || j.decided {
			return // exactly one decision per key
		}
		j.decided, j.mergedSHA = true, rec.MergedSHA
	}
}

func (l *Ledger) wakeLocked() {
	close(l.notify)
	l.notify = make(chan struct{})
}

// changed returns a channel closed at the next applied record.
func (l *Ledger) changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notify
}

// Job returns a deep-enough snapshot of one job's state (shard slice
// copied; raw payloads shared read-only).
func (l *Ledger) Job(key string) (JobView, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.jobLocked(key)
}

func (l *Ledger) jobLocked(key string) (JobView, bool) {
	j, ok := l.jobs[key]
	if !ok {
		return JobView{}, false
	}
	v := JobView{
		Key:        j.key,
		Request:    j.request,
		Shards:     append([]ShardState(nil), j.shards...),
		Decided:    j.decided,
		MergedSHA:  j.mergedSHA,
		DoneShards: j.done,
	}
	return v, true
}

// Jobs returns snapshots of every job, in submission order.
func (l *Ledger) Jobs() []JobView {
	l.mu.Lock()
	defer l.mu.Unlock()
	views := make([]JobView, 0, len(l.order))
	for _, key := range l.order {
		v, _ := l.jobLocked(key)
		views = append(views, v)
	}
	return views
}

// WaitApplied blocks until the ledger has applied the log entry at
// index. Commit and apply are asynchronous: a proposer that saw its
// record commit must wait for the local apply before reading the
// ledger's view of it.
func (l *Ledger) WaitApplied(done <-chan struct{}, index uint64) error {
	for {
		l.mu.Lock()
		ok := l.applied >= index
		ch := l.notify
		l.mu.Unlock()
		if ok {
			return nil
		}
		select {
		case <-ch:
		case <-done:
			return fmt.Errorf("cluster: wait for apply %d cancelled", index)
		}
	}
}

// WaitDecided blocks until key's job has an applied decision.
func (l *Ledger) WaitDecided(done <-chan struct{}, key string) (JobView, error) {
	for {
		l.mu.Lock()
		v, ok := l.jobLocked(key)
		ch := l.notify
		l.mu.Unlock()
		if ok && v.Decided {
			return v, nil
		}
		select {
		case <-ch:
		case <-done:
			return JobView{}, fmt.Errorf("cluster: wait for decision on %s cancelled", key)
		}
	}
}

// Requeues returns the applied requeue count.
func (l *Ledger) Requeues() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.requeues
}

// WaitAllDone blocks until every shard of key is done (returning the
// job view) or ctx-style cancellation via done.
func (l *Ledger) WaitAllDone(done <-chan struct{}, key string) (JobView, error) {
	for {
		l.mu.Lock()
		j, ok := l.jobs[key]
		var v JobView
		complete := false
		if ok && j.done == len(j.shards) && len(j.shards) > 0 {
			v, _ = l.jobLocked(key)
			complete = true
		}
		ch := l.notify
		l.mu.Unlock()
		if complete {
			return v, nil
		}
		select {
		case <-ch:
		case <-done:
			return JobView{}, fmt.Errorf("cluster: wait for job %s cancelled", key)
		}
	}
}

// PlanShards splits trials into at most parts index-contiguous ranges
// of near-equal size (the first trials%parts ranges get one extra).
// The plan is recorded in the submit entry, so every replica sees the
// same tiling whatever the fleet looked like to other coordinators.
func PlanShards(trials, parts int) []ShardRange {
	if parts < 1 {
		parts = 1
	}
	if parts > trials {
		parts = trials
	}
	base, extra := trials/parts, trials%parts
	var out []ShardRange
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, ShardRange{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}
