package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"plurality/internal/durable"
	"plurality/internal/service"
)

// Node roles.
type Role string

const (
	// RoleCoordinator nodes accept client requests, may lead the
	// ledger, plan and dispatch shards, and merge results.
	RoleCoordinator Role = "coordinator"
	// RoleWorker nodes replicate the ledger, vote, execute shards, and
	// host their slice of the peer cache. They lead only as a last
	// resort, when no coordinator can win an election (see
	// fallbackCandidateSlack).
	RoleWorker Role = "worker"
)

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// ID is this node's unique cluster ID.
	ID string
	// Role is coordinator or worker.
	Role Role
	// Peers maps every node ID (self included) to its base URL
	// (e.g. "http://127.0.0.1:8081"). The set must agree fleet-wide:
	// the consistent-hash ring and shard plans derive from it.
	Peers map[string]string
	// Coordinators lists the coordinator IDs — the election candidates.
	Coordinators []string
	// Parallelism bounds trial parallelism for shards executed here.
	Parallelism int
	// Heartbeat is the replication tick (default 150ms).
	Heartbeat time.Duration
	// ElectionTicks is the base election timeout in ticks (default 10).
	ElectionTicks int
	// LeaseTimeout bounds one shard execution on a worker; past it the
	// dispatch cancels and the shard is requeued (default 2m).
	LeaseTimeout time.Duration
	// Journal and Records persist/recover the replica log (optional).
	Journal *durable.Journal
	Records []durable.Record
	// Client issues intra-cluster HTTP (default: a pooled client).
	Client HTTPDoer
	// Logf, when non-nil, receives node lifecycle logs.
	Logf func(format string, args ...any)
}

// Node is one member of a conserve cluster: a ledger replica plus the
// role-dependent machinery — coordinators submit, dispatch, and merge;
// workers execute shards. Every node hosts a slice of the fleet-wide
// result cache keyed by the consistent-hash ring. Coordinator nodes
// implement service.Remote, which is how the local Runner routes jobs
// through the cluster.
type Node struct {
	cfg     NodeConfig
	ledger  *Ledger
	replica *Replica
	ring    *Ring
	workers []string // sorted worker IDs (peers minus coordinators)

	mu       sync.Mutex
	inflight map[string]bool // shard dispatches owned by this process
	attempts map[string]int  // per-shard dispatch count, rotates workers
	cache    map[string][]byte

	peerCacheHits atomic.Uint64

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// NewNode builds the node and starts its replica (and, on
// coordinators, the dispatch loop).
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" || cfg.Peers[cfg.ID] == "" {
		return nil, fmt.Errorf("cluster: node ID %q missing from peer set", cfg.ID)
	}
	if len(cfg.Coordinators) == 0 {
		return nil, fmt.Errorf("cluster: no coordinators configured")
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		cfg:      cfg,
		ledger:   NewLedger(),
		inflight: make(map[string]bool),
		attempts: make(map[string]int),
		cache:    make(map[string][]byte),
		closed:   make(chan struct{}),
	}
	isCoord := make(map[string]bool, len(cfg.Coordinators))
	for _, c := range cfg.Coordinators {
		if cfg.Peers[c] == "" {
			return nil, fmt.Errorf("cluster: coordinator %q missing from peer set", c)
		}
		isCoord[c] = true
	}
	ring := NewRing(peerIDs(cfg.Peers))
	n.ring = ring
	for _, p := range ring.Peers() {
		if !isCoord[p] {
			n.workers = append(n.workers, p)
		}
	}
	transport := cfg.Client
	if transport == nil {
		transport = defaultHTTPClient()
	}
	n.replica = NewReplica(ReplicaConfig{
		ID:            cfg.ID,
		Peers:         ring.Peers(),
		Candidates:    cfg.Coordinators,
		Transport:     &httpTransport{peers: cfg.Peers, client: transport},
		Journal:       cfg.Journal,
		Records:       cfg.Records,
		Heartbeat:     cfg.Heartbeat,
		ElectionTicks: cfg.ElectionTicks,
		Apply:         n.ledger.Apply,
		OnLeader:      n.requeueStaleLeases,
		Logf:          cfg.Logf,
	})
	// Every node runs the dispatch loop — it only acts while this
	// replica leads, and a worker can lead as the election fallback.
	n.wg.Add(1)
	go n.dispatchLoop()
	return n, nil
}

// peerIDs extracts the sorted ID set.
func peerIDs(peers map[string]string) []string {
	return slices.Sorted(maps.Keys(peers))
}

// Close stops the node's loops and its replica. Idempotent.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.replica.Close()
		n.wg.Wait()
	})
}

// Ledger exposes the applied ledger (for tests and /cluster/jobs).
func (n *Node) Ledger() *Ledger { return n.ledger }

// Replica exposes the underlying replica (for tests and status).
func (n *Node) Replica() *Replica { return n.replica }

// requeueStaleLeases runs when this node wins an election: every lease
// in the applied ledger was granted by a deposed leader whose dispatch
// goroutines are gone (or dead with its process), so the shards are
// returned to pending for this leader to re-dispatch. Requeue is
// state-guarded, so a shard that completes concurrently is untouched.
// The scan waits for the election's barrier entry to apply locally
// first — that guarantees every lease inherited from earlier terms is
// visible to it.
func (n *Node) requeueStaleLeases(term, barrier uint64) {
	if n.ledger.WaitApplied(n.closed, barrier) != nil {
		return
	}
	for _, job := range n.ledger.Jobs() {
		if job.Decided {
			continue
		}
		for i, s := range job.Shards {
			if s.Status != ShardLeased {
				continue
			}
			idx, t, err := n.replica.Propose(LedgerRecord{
				Op: OpRequeue, Key: job.Key, Shard: i, Reason: "leader-change",
			})
			if err != nil {
				return // lost leadership already
			}
			_ = n.replica.WaitCommitted(n.closed, idx, t)
		}
	}
}

// dispatchLoop scans the applied ledger whenever it changes and, while
// this node leads, leases pending shards to workers and drives their
// execution.
func (n *Node) dispatchLoop() {
	defer n.wg.Done()
	for {
		if n.replica.IsLeader() {
			n.scanAndDispatch()
		}
		select {
		case <-n.closed:
			return
		case <-n.ledger.changed():
		case <-n.replica.LeaderChanged():
		case <-time.After(n.replica.cfg.Heartbeat):
			// Fallback tick: retry after transient dispatch failures.
		}
	}
}

func (n *Node) scanAndDispatch() {
	for _, job := range n.ledger.Jobs() {
		if job.Decided {
			continue
		}
		for i, s := range job.Shards {
			if s.Status != ShardPending {
				continue
			}
			id := shardID(job.Key, i)
			n.mu.Lock()
			busy := n.inflight[id]
			if !busy {
				n.inflight[id] = true
			}
			n.mu.Unlock()
			if busy {
				continue
			}
			n.wg.Add(1)
			go n.dispatchShard(job, i)
		}
	}
}

func shardID(key string, shard int) string { return fmt.Sprintf("%s#%d", key, shard) }

// dispatchShard drives one shard: lease it through the ledger, execute
// it synchronously on the chosen worker, and record the result — or a
// requeue, if the worker failed or timed out. Every transition goes
// through the replicated log, so a coordinator crash at any point
// leaves a state a new leader recovers from (lease → requeue).
func (n *Node) dispatchShard(job JobView, shard int) {
	defer n.wg.Done()
	id := shardID(job.Key, shard)
	defer func() {
		n.mu.Lock()
		delete(n.inflight, id)
		n.mu.Unlock()
	}()

	n.mu.Lock()
	attempt := n.attempts[id]
	n.attempts[id]++
	n.mu.Unlock()
	worker := n.workerFor(id, attempt)
	if worker == "" {
		return
	}

	idx, term, err := n.replica.Propose(LedgerRecord{
		Op: OpLease, Key: job.Key, Shard: shard, Worker: worker,
	})
	if err != nil || n.replica.WaitCommitted(n.closed, idx, term) != nil {
		return // lost leadership; the next leader requeues
	}
	// Commit and local apply are asynchronous: wait for the lease to
	// reach this node's ledger before reading its view of the shard.
	if n.ledger.WaitApplied(n.closed, idx) != nil {
		return
	}
	jv, ok := n.ledger.Job(job.Key)
	if !ok || jv.Shards[shard].Status != ShardLeased || jv.Shards[shard].LeaseIndex != idx {
		return // lease lost the race (shard already done or re-leased)
	}

	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.LeaseTimeout)
	defer cancel()
	result, execErr := n.executeOn(ctx, worker, jv.Request, jv.Shards[shard].Range)
	if execErr != nil {
		n.cfg.Logf("cluster: shard %s on %s failed: %v", id, worker, execErr)
		if idx, term, err = n.replica.Propose(LedgerRecord{
			Op: OpRequeue, Key: job.Key, Shard: shard, Reason: execErr.Error(),
		}); err == nil {
			_ = n.replica.WaitCommitted(n.closed, idx, term)
		}
		return
	}
	if idx, term, err = n.replica.Propose(LedgerRecord{
		Op: OpShardDone, Key: job.Key, Shard: shard, Worker: worker, Result: result,
	}); err == nil {
		_ = n.replica.WaitCommitted(n.closed, idx, term)
	}
}

// workerFor picks the executing worker for a shard: consistent-hash
// placement for attempt 0, then rotation through the ring order on
// each requeue so a dead worker cannot pin its shards forever.
func (n *Node) workerFor(id string, attempt int) string {
	if len(n.workers) == 0 {
		return ""
	}
	ring := NewRing(n.workers)
	owners := ring.Owners(id, len(n.workers))
	return owners[attempt%len(owners)]
}

// ExecuteShardLocal runs one shard on this node via the deterministic
// service shard path. The result is byte-identical to the same trial
// range of a single-process run by the (seed, trial) stream contract.
func (n *Node) ExecuteShardLocal(ctx context.Context, q service.Request, lo, hi int) (*service.ShardResult, error) {
	return service.ExecuteShard(ctx, q, n.cfg.Parallelism, lo, hi)
}

// Run implements service.Remote for coordinator nodes: submit the job
// to the ledger (through whichever coordinator currently leads), wait
// for every shard to commit as done, merge locally, and record the
// decision. It survives leader failover mid-job because completion is
// observed on the local applied ledger — shard results travel inside
// the replicated log, not in any leader's memory.
func (n *Node) Run(ctx context.Context, req service.Request) (*service.Response, error) {
	if n.cfg.Role != RoleCoordinator || len(n.workers) == 0 {
		return nil, service.ErrNotClustered
	}
	q := req.Normalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Tier == service.TierAnalytic || q.Trials < 1 {
		return nil, service.ErrNotClustered
	}
	key := q.Key()
	reqJSON, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	submit := LedgerRecord{
		Op:      OpSubmit,
		Key:     key,
		Request: reqJSON,
		Shards:  PlanShards(q.Trials, len(n.workers)),
	}
	if err := n.proposeRouted(ctx, submit); err != nil {
		return nil, fmt.Errorf("cluster: submit %s: %w", key, err)
	}
	jv, err := n.ledger.WaitAllDone(ctx.Done(), key)
	if err != nil {
		return nil, err
	}
	shards := make([]*service.ShardResult, 0, len(jv.Shards))
	for i, s := range jv.Shards {
		var sr service.ShardResult
		if err := json.Unmarshal(s.Result, &sr); err != nil {
			return nil, fmt.Errorf("cluster: shard %d result: %w", i, err)
		}
		shards = append(shards, &sr)
	}
	resp, err := service.MergeShards(q, shards)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(body)
	decide := LedgerRecord{Op: OpDecide, Key: key, MergedSHA: hex.EncodeToString(sum[:])}
	if err := n.proposeRouted(ctx, decide); err != nil {
		return nil, fmt.Errorf("cluster: decide %s: %w", key, err)
	}
	// The decision committed; wait for the local apply so callers that
	// read this node's ledger right after Run observe it.
	if _, err := n.ledger.WaitDecided(ctx.Done(), key); err != nil {
		return nil, err
	}
	n.cachePut(ctx, key, body)
	return resp, nil
}

// Lookup implements service.Remote's read-through against the
// fleet-wide peer cache: ask the key's consistent-hash owner (then its
// successor) for cached canonical bytes.
func (n *Node) Lookup(ctx context.Context, key string) (*service.Response, bool) {
	for _, owner := range n.ring.Owners(key, 2) {
		var body []byte
		var ok bool
		if owner == n.cfg.ID {
			body, ok = n.cacheGetLocal(key)
		} else {
			body, ok = n.cacheGetRemote(ctx, owner, key)
		}
		if !ok {
			continue
		}
		var resp service.Response
		if json.Unmarshal(body, &resp) != nil {
			continue
		}
		n.peerCacheHits.Add(1)
		return &resp, true
	}
	return nil, false
}

// proposeRouted lands a record in the replicated log from any node:
// propose directly while leading, otherwise forward to the leader this
// replica currently believes in, retrying across elections until the
// record commits or ctx ends. Safe to retry: every ledger op is
// idempotent under re-application (first-wins / state-guarded).
func (n *Node) proposeRouted(ctx context.Context, rec LedgerRecord) error {
	var lastErr error = ErrNotLeader
	for {
		if n.replica.IsLeader() {
			idx, term, err := n.replica.Propose(rec)
			if err == nil {
				if err = n.replica.WaitCommitted(ctx.Done(), idx, term); err == nil {
					return nil
				}
			}
			lastErr = err
		} else if leader := n.replica.Leader(); leader != "" && leader != n.cfg.ID {
			if err := n.forwardPropose(ctx, leader, rec); err == nil {
				return nil
			} else {
				lastErr = err
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (last: %v)", ctx.Err(), lastErr)
		case <-n.closed:
			return fmt.Errorf("cluster: node closing (last: %v)", lastErr)
		case <-time.After(n.replica.cfg.Heartbeat):
		}
	}
}

// cachePut writes canonical response bytes to the key's ring owners
// (self included when owning). Best-effort: the cache is an
// optimization layered over the deterministic recompute path.
func (n *Node) cachePut(ctx context.Context, key string, body []byte) {
	for _, owner := range n.ring.Owners(key, 2) {
		if owner == n.cfg.ID {
			n.cacheSetLocal(key, body)
		} else {
			n.cachePutRemote(ctx, owner, key, body)
		}
	}
}

func (n *Node) cacheGetLocal(key string) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	body, ok := n.cache[key]
	return body, ok
}

func (n *Node) cacheSetLocal(key string, body []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cache[key] = body
}

// Metrics is the node's metric snapshot.
type NodeMetrics struct {
	Leader        bool
	Term          uint64
	Requeues      uint64
	PeerCacheHits uint64
}

// Metrics returns current cluster counters.
func (n *Node) Metrics() NodeMetrics {
	st := n.replica.Status()
	return NodeMetrics{
		Leader:        st.IsLeader,
		Term:          st.Term,
		Requeues:      n.ledger.Requeues(),
		PeerCacheHits: n.peerCacheHits.Load(),
	}
}

// WriteMetrics appends the cluster's Prometheus-style lines; wired into
// /metrics via service.Extra.
func (n *Node) WriteMetrics(w io.Writer) {
	m := n.Metrics()
	leader := 0
	if m.Leader {
		leader = 1
	}
	fmt.Fprintf(w, "# HELP conserve_cluster_leader Whether this node currently leads the job ledger (0/1).\n")
	fmt.Fprintf(w, "conserve_cluster_leader %d\n", leader)
	fmt.Fprintf(w, "conserve_cluster_term %d\n", m.Term)
	fmt.Fprintf(w, "# HELP conserve_shard_requeues_total Shard leases expired or revoked and returned to pending.\n")
	fmt.Fprintf(w, "conserve_shard_requeues_total %d\n", m.Requeues)
	fmt.Fprintf(w, "# HELP conserve_peer_cache_hits_total Requests served from another replica's slice of the fleet cache.\n")
	fmt.Fprintf(w, "conserve_peer_cache_hits_total %d\n", m.PeerCacheHits)
}
