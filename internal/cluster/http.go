package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"plurality/internal/service"
)

// HTTPDoer is the client-side HTTP surface the node needs; *http.Client
// satisfies it, tests may substitute an in-process doer.
type HTTPDoer interface {
	Do(req *http.Request) (*http.Response, error)
}

func defaultHTTPClient() HTTPDoer {
	return &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
}

// maxClusterBody bounds intra-cluster request bodies. Shard results
// carry full trial arrays, so this is far above the client-facing 1MB.
const maxClusterBody = 64 << 20

// httpTransport carries replica RPCs over the peers' /cluster/vote and
// /cluster/append endpoints.
type httpTransport struct {
	peers  map[string]string
	client HTTPDoer
}

func (t *httpTransport) roundTrip(ctx context.Context, peer, path string, in, out any) error {
	addr, ok := t.peers[peer]
	if !ok {
		return fmt.Errorf("cluster: unknown peer %q", peer)
	}
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("cluster: %s %s: %s: %s", peer, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxClusterBody)).Decode(out)
}

func (t *httpTransport) Vote(ctx context.Context, peer string, req VoteRequest) (VoteResponse, error) {
	var resp VoteResponse
	err := t.roundTrip(ctx, peer, "/cluster/vote", req, &resp)
	return resp, err
}

func (t *httpTransport) Append(ctx context.Context, peer string, req AppendRequest) (AppendResponse, error) {
	var resp AppendResponse
	err := t.roundTrip(ctx, peer, "/cluster/append", req, &resp)
	return resp, err
}

// executeRequest is the worker shard-execution RPC body.
type executeRequest struct {
	Request json.RawMessage `json:"request"`
	Lo      int             `json:"lo"`
	Hi      int             `json:"hi"`
}

// client reaches a peer for the node's own RPCs.
func (n *Node) client() *httpTransport {
	t, _ := n.replica.cfg.Transport.(*httpTransport)
	return t
}

// executeOn runs one shard synchronously on worker: the connection is
// the lease — a dropped or timed-out call requeues the shard.
func (n *Node) executeOn(ctx context.Context, worker string, reqJSON json.RawMessage, rng ShardRange) (json.RawMessage, error) {
	var out json.RawMessage
	err := n.client().roundTrip(ctx, worker, "/cluster/execute",
		executeRequest{Request: reqJSON, Lo: rng.Lo, Hi: rng.Hi}, &out)
	return out, err
}

// forwardPropose routes a ledger record to the current leader, which
// proposes it and waits for commit before answering 200.
func (n *Node) forwardPropose(ctx context.Context, leader string, rec LedgerRecord) error {
	return n.client().roundTrip(ctx, leader, "/cluster/propose", rec, nil)
}

func (n *Node) cacheGetRemote(ctx context.Context, owner, key string) ([]byte, bool) {
	t := n.client()
	addr, ok := t.peers[owner]
	if !ok {
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/cluster/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxClusterBody))
	if err != nil {
		return nil, false
	}
	return body, true
}

func (n *Node) cachePutRemote(ctx context.Context, owner, key string, body []byte) {
	t := n.client()
	addr, ok := t.peers[owner]
	if !ok {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, addr+"/cluster/cache/"+key, bytes.NewReader(body))
	if err != nil {
		return
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// Handler returns the node's /cluster/* HTTP surface, mounted into the
// conserve server via service.Extra.Routes:
//
//	POST /cluster/vote        replica vote RPC
//	POST /cluster/append      replica append/heartbeat RPC
//	POST /cluster/propose     leader-only: commit a ledger record
//	POST /cluster/execute     run one shard here (workers)
//	GET  /cluster/cache/{key} read this node's peer-cache slice
//	PUT  /cluster/cache/{key} write this node's peer-cache slice
//	GET  /cluster/status      replica status snapshot
//	GET  /cluster/jobs        applied ledger job views
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/vote", func(w http.ResponseWriter, r *http.Request) {
		var req VoteRequest
		if !decodeClusterJSON(w, r, &req) {
			return
		}
		writeClusterJSON(w, n.replica.HandleVote(req))
	})
	mux.HandleFunc("POST /cluster/append", func(w http.ResponseWriter, r *http.Request) {
		var req AppendRequest
		if !decodeClusterJSON(w, r, &req) {
			return
		}
		writeClusterJSON(w, n.replica.HandleAppend(req))
	})
	mux.HandleFunc("POST /cluster/propose", func(w http.ResponseWriter, r *http.Request) {
		var rec LedgerRecord
		if !decodeClusterJSON(w, r, &rec) {
			return
		}
		idx, term, err := n.replica.Propose(rec)
		if err != nil {
			http.Error(w, fmt.Sprintf("not leader (leader=%s)", n.replica.Leader()), http.StatusConflict)
			return
		}
		if err := n.replica.WaitCommitted(r.Context().Done(), idx, term); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeClusterJSON(w, map[string]uint64{"index": idx, "term": term})
	})
	mux.HandleFunc("POST /cluster/execute", func(w http.ResponseWriter, r *http.Request) {
		var req executeRequest
		if !decodeClusterJSON(w, r, &req) {
			return
		}
		var q service.Request
		if err := json.Unmarshal(req.Request, &q); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := n.ExecuteShardLocal(r.Context(), q, req.Lo, req.Hi)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeClusterJSON(w, res)
	})
	mux.HandleFunc("GET /cluster/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		body, ok := n.cacheGetLocal(r.PathValue("key"))
		if !ok {
			http.Error(w, "not cached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("PUT /cluster/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxClusterBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n.cacheSetLocal(r.PathValue("key"), body)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /cluster/status", func(w http.ResponseWriter, r *http.Request) {
		st := n.replica.Status()
		writeClusterJSON(w, struct {
			Status
			Role Role `json:"role"`
		}{Status: st, Role: n.cfg.Role})
	})
	mux.HandleFunc("GET /cluster/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeClusterJSON(w, n.ledger.Jobs())
	})
	return mux
}

func decodeClusterJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, maxClusterBody)).Decode(v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeClusterJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// WaitLeader blocks until some coordinator leads (as seen from this
// replica) or the timeout lapses; a convenience for tests and startup.
func (n *Node) WaitLeader(timeout time.Duration) (string, bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if l := n.replica.Leader(); l != "" {
			return l, true
		}
		select {
		case <-deadline.C:
			return "", false
		case <-n.replica.LeaderChanged():
		case <-time.After(10 * time.Millisecond):
		}
	}
}
