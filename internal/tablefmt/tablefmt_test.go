package tablefmt

import (
	"strings"
	"testing"
)

func TestCellFormats(t *testing.T) {
	cases := []struct {
		in   interface{}
		want string
	}{
		{3.14159265, "3.142"},
		{float32(2.5), "2.5"},
		{"abc", "abc"},
		{42, "42"},
		{int64(7), "7"},
		{true, "true"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAddRowAndRender(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Notes:   "a note",
		Columns: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("longer-name", 20)
	out := tb.String()
	for _, want := range []string{"== demo ==", "a note", "name", "value", "alpha", "longer-name", "20"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Header must come before rows.
	if strings.Index(out, "name") > strings.Index(out, "alpha") {
		t.Error("header after data row")
	}
}

func TestRenderAlignment(t *testing.T) {
	tb := Table{Columns: []string{"a", "b"}}
	tb.AddRow("xx", "y")
	tb.AddRow("x", "yy")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d: %q", len(lines), lines)
	}
	// Column b must start at the same offset in each data line.
	off1 := strings.Index(lines[2], "y")
	off2 := strings.Index(lines[3], "yy")
	if off1 != off2 {
		t.Errorf("misaligned columns: %q vs %q", lines[2], lines[3])
	}
}

func TestWriteCSV(t *testing.T) {
	tb := Table{Columns: []string{"x", "y"}}
	tb.AddRow(1, "a,b")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "x,y\n") {
		t.Errorf("csv header missing: %q", got)
	}
	if !strings.Contains(got, `"a,b"`) {
		t.Errorf("csv quoting missing: %q", got)
	}
}

// failWriter errors after a fixed number of bytes to exercise the
// error-propagation paths.
type failWriter struct{ remaining int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errWriterFull
	}
	n := len(p)
	if n > w.remaining {
		n = w.remaining
	}
	w.remaining -= n
	if n < len(p) {
		return n, errWriterFull
	}
	return n, nil
}

var errWriterFull = &writerFullError{}

type writerFullError struct{}

func (*writerFullError) Error() string { return "writer full" }

func TestRenderPropagatesWriteErrors(t *testing.T) {
	tb := Table{Title: "t", Notes: "n", Columns: []string{"a"}}
	tb.AddRow("x")
	// The full render is 17 bytes; fail at truncation points covering
	// title, notes, header, rule, row, and the trailing newline.
	for _, budget := range []int{0, 3, 10, 12, 14, 16} {
		if err := tb.Render(&failWriter{remaining: budget}); err == nil {
			t.Errorf("budget %d: expected write error", budget)
		}
	}
	if err := tb.Render(&failWriter{remaining: 17}); err != nil {
		t.Errorf("full budget should succeed, got %v", err)
	}
}

func TestWriteCSVPropagatesErrors(t *testing.T) {
	tb := Table{Columns: []string{"a", "b"}}
	tb.AddRow(1, 2)
	if err := tb.WriteCSV(&failWriter{remaining: 2}); err == nil {
		t.Error("expected csv write error")
	}
}

func TestRenderAllPropagatesErrors(t *testing.T) {
	tables := []Table{{Title: "one", Columns: []string{"c"}}}
	if err := RenderAll(&failWriter{remaining: 1}, tables); err == nil {
		t.Error("expected error from RenderAll")
	}
}

func TestRenderAll(t *testing.T) {
	tables := []Table{
		{Title: "one", Columns: []string{"c"}},
		{Title: "two", Columns: []string{"c"}},
	}
	var sb strings.Builder
	if err := RenderAll(&sb, tables); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "one") || !strings.Contains(out, "two") {
		t.Errorf("RenderAll output %q", out)
	}
}
