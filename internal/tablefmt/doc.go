// Package tablefmt renders the experiment tables as aligned text and
// CSV. Every experiment driver in internal/experiments produces
// []Table, which cmd/conbench prints and EXPERIMENTS.md records.
//
// The contract above is owned by DESIGN.md §"Experiment / artifact
// index".
package tablefmt
