package tablefmt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with one header row.
type Table struct {
	Title   string
	Notes   string // free-form commentary printed under the title
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, converting each cell with Cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Cell formats a single value compactly: floats with %.4g, everything
// else with %v.
func Cell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', 4, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', 4, 32)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	if t.Notes != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Notes); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	rules := make([]string, len(t.Columns))
	for i := range rules {
		rules[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rules); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b) // strings.Builder never errors
	return b.String()
}

// WriteCSV writes the table (header + rows) in CSV form.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderAll renders a sequence of tables.
func RenderAll(w io.Writer, tables []Table) error {
	for i := range tables {
		if err := tables[i].Render(w); err != nil {
			return err
		}
	}
	return nil
}
