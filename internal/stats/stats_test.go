package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.SEM() != 0 {
		t.Fatal("zero Welford not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if !almostEqual(w.Var(), 32.0/7, 1e-12) {
		t.Errorf("Var = %v, want %v", w.Var(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		direct := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(direct))
		return almostEqual(w.Mean(), mean, 1e-6*math.Max(1, math.Abs(mean))) &&
			almostEqual(w.Var(), direct, 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.Q25, 2, 1e-12) || !almostEqual(s.Q75, 4, 1e-12) {
		t.Errorf("quartiles = %v, %v", s.Q25, s.Q75)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary N = %d", empty.N)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
		{-0.5, 10}, {1.5, 40},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
	// Input must not be reordered.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedianAndMean(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4, 100}); got != 3 {
		t.Errorf("Median = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit := FitLine(xs, ys)
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if fit := FitLine([]float64{1}, []float64{2}); fit != (LinearFit{}) {
		t.Errorf("single-point fit = %+v", fit)
	}
	if fit := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); fit != (LinearFit{}) {
		t.Errorf("vertical fit = %+v", fit)
	}
	if fit := FitLine([]float64{1, 2}, []float64{5}); fit != (LinearFit{}) {
		t.Errorf("mismatched lengths fit = %+v", fit)
	}
	// Constant y: slope 0, perfect fit.
	fit := FitLine([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !almostEqual(fit.Slope, 0, 1e-12) || !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("constant-y fit = %+v", fit)
	}
}

func TestLogLogSlopePowerLaw(t *testing.T) {
	// y = 3 x^2 should give slope 2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	fit := LogLogSlope(xs, ys)
	if !almostEqual(fit.Slope, 2, 1e-9) {
		t.Fatalf("slope = %v, want 2", fit.Slope)
	}
}

func TestLogLogSlopeDropsNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 1, 2, 4}
	ys := []float64{5, 5, 1, 2, 4} // usable points are exactly y = x
	fit := LogLogSlope(xs, ys)
	if !almostEqual(fit.Slope, 1, 1e-9) {
		t.Fatalf("slope = %v, want 1", fit.Slope)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v, %v] should contain 0.5", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Errorf("interval [%v, %v] too wide for n=100", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 1-1e-9 {
		t.Errorf("all-success hi = %v, want about 1", hi)
	}
	if lo < 0.95 {
		t.Errorf("all-success lo = %v too low", lo)
	}
	lo, hi = WilsonInterval(0, 100, 1.96)
	if lo != 0 || hi > 0.05 {
		t.Errorf("no-success interval = [%v, %v]", lo, hi)
	}
}

func TestWilsonIntervalOrderingProperty(t *testing.T) {
	f := func(s, n uint8) bool {
		trials := int(n)
		succ := int(s)
		if succ > trials {
			succ = trials
		}
		lo, hi := WilsonInterval(succ, trials, 1.96)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		if trials == 0 {
			return true
		}
		p := float64(succ) / float64(trials)
		return lo <= p+1e-12 && hi >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.1, 0.9, 1.5, 3.9, -5, 99}, 0, 4, 4)
	want := []int{3, 1, 0, 2} // -5 clamps into bin 0, 99 into bin 3
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("zero-bin histogram should be nil")
	}
	if Histogram(nil, 1, 1, 5) != nil {
		t.Error("empty-range histogram should be nil")
	}
}
