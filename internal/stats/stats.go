package stats

import (
	"math"
	"sort"
)

// Welford accumulates a running mean and variance in a numerically
// stable way. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }

// SEM returns the standard error of the mean.
func (w *Welford) SEM() float64 {
	if w.n < 2 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// Summary holds descriptive statistics for a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes descriptive statistics. It returns the zero
// Summary for an empty sample. The input is not modified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var w Welford
	for _, x := range sorted {
		w.Add(x)
	}
	return Summary{
		N:      len(sorted),
		Mean:   w.Mean(),
		Std:    w.Std(),
		Min:    sorted[0],
		Q25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q75:    quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation. It returns NaN for an empty sample. The input is not
// modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the sample median (NaN for an empty sample).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit holds the result of an ordinary least-squares line fit
// y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits y = a*x + b by ordinary least squares. It returns the
// zero fit when fewer than two distinct x values are supplied.
func FitLine(xs, ys []float64) LinearFit {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinearFit{}
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
	}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}

// LogLogSlope fits log(y) = s*log(x) + c and returns the fit; points
// with non-positive coordinates are dropped. This is how the
// experiments extract empirical scaling exponents (e.g. consensus time
// ~ k^s in Theorem 1.1).
func LogLogSlope(xs, ys []float64) LinearFit {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return FitLine(lx, ly)
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with successes out of n trials at z standard normal
// quantiles of confidence (z = 1.96 for 95%).
func WilsonInterval(successes, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Histogram counts xs into nbins equal-width bins on [lo, hi].
// Out-of-range values are clamped into the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		bins[idx]++
	}
	return bins
}
