// Package stats provides the small statistics toolkit used by the
// experiment harness: streaming moments, quantiles, least-squares and
// log-log slope fits, and binomial confidence intervals.
//
// The contract above is owned by DESIGN.md §"Experiment / artifact
// index".
package stats
