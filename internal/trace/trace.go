package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// State is the configuration surface a trace point reads. Both
// *population.Vector and the batch engine's flat kernel satisfy it, so
// sampling works identically on either executor.
type State interface {
	// N returns the number of vertices.
	N() int64
	// Gamma returns Γ = Σ α(i)².
	Gamma() float64
	// Live returns the number of opinions with at least one supporter.
	Live() int
	// MaxOpinion returns the plurality opinion and its count.
	MaxOpinion() (opinion int, count int64)
	// SumCubes returns Σ α(i)³.
	SumCubes() float64
}

// encodeJSONLine writes v's JSON encoding followed by a newline — the
// same one-line serialisation the service layer uses, so a
// WriterRecorder's output is byte-identical to conserve's trace lines.
func encodeJSONLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Point is one sampled observation of a run: the state of one trial's
// configuration at the end of the given round (round 0 is the initial
// configuration). Its JSON encoding is the wire format of conserve's
// NDJSON trace lines and of Response.Trace entries.
type Point struct {
	// Trial is the trial index within the request.
	Trial int `json:"trial"`
	// Round is the synchronous round index; in async mode a round is n
	// ticks, and points are sampled at full-round boundaries only.
	Round int64 `json:"round"`
	// Gamma is Γ = Σ α(i)², the paper's central potential function.
	Gamma float64 `json:"gamma"`
	// Live is the number of opinions with at least one supporter.
	Live int `json:"live"`
	// MaxAlpha is the max-opinion density max_i α(i) — the quantity
	// that governs consensus time per D'Archivio et al.
	MaxAlpha float64 `json:"max_alpha"`
	// SumCubes is Σ α(i)³, the Lemma 4.1 variance-bound norm.
	SumCubes float64 `json:"sum_cubes"`
}

// PointOf reads v's observables into a Point. Gamma and Live are O(1)
// (the engines maintain incremental aggregates); MaxOpinion and
// SumCubes scan the live set, O(live).
func PointOf(trial int, round int64, v State) Point {
	_, c := v.MaxOpinion()
	return Point{
		Trial:    trial,
		Round:    round,
		Gamma:    v.Gamma(),
		Live:     v.Live(),
		MaxAlpha: float64(c) / float64(v.N()),
		SumCubes: v.SumCubes(),
	}
}

// Decimation policies accepted by Spec.Policy.
const (
	// PolicyEvery records rounds that are multiples of Spec.Every and
	// stops recording once MaxPoints is reached (truncating the tail).
	PolicyEvery = "every"
	// PolicyLog2 records round 0 and every power-of-two round —
	// ≤ 64 points however long the run, dense early where the phase
	// transitions happen.
	PolicyLog2 = "log2"
	// PolicyAdaptive records every stride-th round, doubling the stride
	// (and thinning the kept points to the new stride) whenever the
	// buffer reaches MaxPoints: full-run coverage in ≤ MaxPoints points
	// without knowing the run length in advance. The default.
	PolicyAdaptive = "adaptive"
)

// Point-budget bounds for Spec.MaxPoints.
const (
	// DefaultMaxPoints is the per-trial point budget when the spec
	// leaves MaxPoints zero.
	DefaultMaxPoints = 1024
	// CapMaxPoints is the largest accepted per-trial point budget.
	CapMaxPoints = 1 << 16
	// MinMaxPoints is the smallest accepted budget: adaptive thinning
	// needs at least two slots to make progress.
	MinMaxPoints = 2
)

// Spec selects what a traced run records: the decimation policy and
// the per-trial point budget. The zero value normalizes to the
// adaptive policy with DefaultMaxPoints. Spec is JSON-serialisable and
// is folded into the service layer's canonical config key, so two
// requests differing only in trace spec are distinct cache entries —
// while an absent spec leaves the key exactly as it was before tracing
// existed.
type Spec struct {
	// Policy names the decimation policy: "every", "log2" or
	// "adaptive". Empty defaults to "adaptive" — or to "every" when
	// Every is set, so {"every": 10} means what it looks like.
	Policy string `json:"policy,omitempty"`
	// Every is the recording stride for PolicyEvery (rounds with
	// round % Every == 0 are kept; 0 defaults to 1). Inert — and
	// cleared by Normalize — under the other policies.
	Every int `json:"every,omitempty"`
	// MaxPoints is the per-trial point budget (0 = DefaultMaxPoints,
	// max CapMaxPoints).
	MaxPoints int `json:"max_points,omitempty"`
}

// Normalize returns the spec with defaults filled in, names
// canonicalised and inert fields cleared, so semantically identical
// specs are structurally — and therefore by config key — identical.
func (s Spec) Normalize() Spec {
	s.Policy = strings.ToLower(strings.TrimSpace(s.Policy))
	if s.Policy == "" {
		if s.Every > 0 {
			s.Policy = PolicyEvery
		} else {
			s.Policy = PolicyAdaptive
		}
	}
	if s.MaxPoints == 0 {
		s.MaxPoints = DefaultMaxPoints
	}
	if s.Policy == PolicyEvery {
		if s.Every == 0 {
			s.Every = 1
		}
	} else {
		// Every is consumed by PolicyEvery only; an inert stride must
		// not split the cache key of otherwise identical specs.
		s.Every = 0
	}
	return s
}

// Validate reports whether the normalized spec is recordable. Errors
// are user errors.
func (s Spec) Validate() error {
	s = s.Normalize()
	switch s.Policy {
	case PolicyEvery, PolicyLog2, PolicyAdaptive:
	default:
		return fmt.Errorf("trace: unknown policy %q (want every, log2 or adaptive)", s.Policy)
	}
	if s.Policy == PolicyEvery && s.Every < 1 {
		return fmt.Errorf("trace: every must be >= 1, got %d", s.Every)
	}
	if s.MaxPoints < MinMaxPoints || s.MaxPoints > CapMaxPoints {
		return fmt.Errorf("trace: max_points must be in [%d, %d], got %d", MinMaxPoints, CapMaxPoints, s.MaxPoints)
	}
	return nil
}

// ParseSpec parses the CLI shorthand for a spec: "adaptive", "log2",
// "every", "every:10" (stride 10), or a bare integer "10" meaning
// "every:10". An optional ":points=N" suffix overrides MaxPoints, e.g.
// "adaptive:points=256". The result is normalized and validated.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for i, part := range strings.Split(strings.TrimSpace(s), ":") {
		part = strings.TrimSpace(part)
		if v, ok := strings.CutPrefix(part, "points="); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return Spec{}, fmt.Errorf("trace: bad points in spec %q", s)
			}
			spec.MaxPoints = n
			continue
		}
		if n, err := strconv.Atoi(part); err == nil {
			// A stride is only meaningful for the every policy; after
			// an explicit log2/adaptive it is a user error, not a
			// silent policy rewrite.
			if spec.Policy != "" && spec.Policy != PolicyEvery {
				return Spec{}, fmt.Errorf("trace: policy %q takes no stride in spec %q", spec.Policy, s)
			}
			spec.Policy, spec.Every = PolicyEvery, n
			continue
		}
		if i != 0 {
			return Spec{}, fmt.Errorf("trace: bad spec %q (want policy[:stride][:points=N])", s)
		}
		spec.Policy = part
	}
	spec = spec.Normalize()
	return spec, spec.Validate()
}

// Recorder consumes sampled trace points. The orchestrators deliver
// points in (trial, round) order; implementations are driven from a
// single goroutine at a time.
type Recorder interface {
	Record(Point) error
}

// Buffer is the in-memory Recorder: it appends every point to Points.
type Buffer struct {
	Points []Point
}

// Record implements Recorder.
func (b *Buffer) Record(p Point) error {
	b.Points = append(b.Points, p)
	return nil
}

// WriterRecorder streams each point as one NDJSON line — the same
// line format conserve's POST /run?trace=1 emits.
type WriterRecorder struct {
	W io.Writer
}

// Record implements Recorder.
func (wr WriterRecorder) Record(p Point) error {
	return encodeJSONLine(wr.W, p)
}

// Emit replays points through rec, stopping on the first error.
func Emit(points []Point, rec Recorder) error {
	for _, p := range points {
		if err := rec.Record(p); err != nil {
			return err
		}
	}
	return nil
}

// Sampler applies one trial's decimation policy and buffers the kept
// points. Create one per trial with NewSampler and thread it into an
// engine; a nil *Sampler is inert (all methods are nil-safe no-ops),
// which is the zero-cost-when-untraced contract.
//
// A Sampler must only be used from the goroutine running its trial.
type Sampler struct {
	trial     int
	policy    string
	every     int64
	maxPoints int
	stride    int64 // adaptive: current recording stride
	truncated bool  // every/log2: budget exhausted
	points    []Point
}

// NewSampler returns a sampler for the given trial under the
// (normalized) spec. Callers should Validate the spec first; NewSampler
// normalizes again so a zero spec is usable directly.
func NewSampler(spec Spec, trial int) *Sampler {
	spec = spec.Normalize()
	return &Sampler{
		trial:     trial,
		policy:    spec.Policy,
		every:     int64(spec.Every),
		maxPoints: spec.MaxPoints,
		stride:    1,
	}
}

// Trial returns the sampler's trial index.
func (s *Sampler) Trial() int {
	if s == nil {
		return 0
	}
	return s.trial
}

// Wants reports whether the policy keeps the given round. It is the
// engines' cheap pre-check: observables (and any state
// materialisation, e.g. the graph engine's O(n) count scan) are only
// computed for rounds Wants accepts. Nil-safe: a nil sampler wants
// nothing.
func (s *Sampler) Wants(round int64) bool {
	if s == nil || s.truncated {
		return false
	}
	switch s.policy {
	case PolicyEvery:
		return round%s.every == 0
	case PolicyLog2:
		return round == 0 || round&(round-1) == 0
	default: // PolicyAdaptive
		return round%s.stride == 0
	}
}

// Observe samples v at the end of the given round if the policy keeps
// it. Rounds must be passed in strictly increasing order. Nil-safe.
func (s *Sampler) Observe(round int64, v State) {
	if !s.Wants(round) {
		return
	}
	s.add(PointOf(s.trial, round, v))
}

// add appends a kept point and applies the policy's budget rule.
func (s *Sampler) add(p Point) {
	s.points = append(s.points, p)
	if len(s.points) < s.maxPoints {
		return
	}
	if s.policy != PolicyAdaptive {
		s.truncated = true
		return
	}
	// Adaptive: double the stride and thin the buffer to it. Round 0 is
	// always a multiple, so the thinned buffer is never empty, and every
	// kept round stays a round the every=1 trace also contains.
	for len(s.points) >= s.maxPoints {
		s.stride *= 2
		kept := s.points[:0]
		for _, q := range s.points {
			if q.Round%s.stride == 0 {
				kept = append(kept, q)
			}
		}
		s.points = kept
	}
}

// Points returns the kept points in round order. The slice is owned by
// the sampler; read it only after the run finished. Nil-safe.
func (s *Sampler) Points() []Point {
	if s == nil {
		return nil
	}
	return s.points
}

// Truncated reports whether an every/log2 trace hit its MaxPoints
// budget and dropped the tail of the run. Adaptive traces never
// truncate — they coarsen instead. Nil-safe.
func (s *Sampler) Truncated() bool {
	return s != nil && s.truncated
}

// Flush delivers the sampler's points to rec in round order. Nil-safe.
func (s *Sampler) Flush(rec Recorder) error {
	return Emit(s.Points(), rec)
}
