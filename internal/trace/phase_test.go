package trace

import (
	"math"
	"reflect"
	"testing"

	"plurality/internal/theory"
)

func TestSplitTrials(t *testing.T) {
	pts := []Point{
		{Trial: 0, Round: 0}, {Trial: 0, Round: 1},
		{Trial: 1, Round: 0},
		{Trial: 3, Round: 0}, {Trial: 3, Round: 2}, {Trial: 3, Round: 4},
	}
	got := SplitTrials(pts)
	if len(got) != 3 || len(got[0]) != 2 || len(got[1]) != 1 || len(got[2]) != 3 {
		t.Fatalf("SplitTrials shape = %v", got)
	}
	if got[2][1].Round != 2 || got[2][1].Trial != 3 {
		t.Fatalf("SplitTrials content = %v", got)
	}
	if s := SplitTrials(nil); s != nil {
		t.Fatalf("SplitTrials(nil) = %v, want nil", s)
	}
}

func TestAnalyzeTrial(t *testing.T) {
	if _, err := AnalyzeTrial(nil); err == nil {
		t.Fatal("AnalyzeTrial(nil) should error")
	}
	pts := []Point{
		{Trial: 2, Round: 0, Gamma: 0.1, Live: 16, MaxAlpha: 0.2},
		{Trial: 2, Round: 5, Gamma: 0.3, Live: 9, MaxAlpha: 0.4},
		{Trial: 2, Round: 10, Gamma: 0.55, Live: 8, MaxAlpha: 0.45},
		{Trial: 2, Round: 15, Gamma: 0.8, Live: 3, MaxAlpha: 0.8},
		{Trial: 2, Round: 20, Gamma: 1, Live: 1, MaxAlpha: 1},
	}
	ph, err := AnalyzeTrial(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Trial != 2 || ph.FirstRound != 0 || ph.LastRound != 20 {
		t.Fatalf("bounds: %+v", ph)
	}
	if ph.Gamma0 != 0.1 || ph.GammaEnd != 1 || ph.Live0 != 16 || ph.LiveEnd != 1 || ph.MaxAlpha0 != 0.2 {
		t.Fatalf("endpoints: %+v", ph)
	}
	if ph.GammaHalfRound != 10 {
		t.Fatalf("GammaHalfRound = %d, want 10", ph.GammaHalfRound)
	}
	if ph.MajorityRound != 15 {
		t.Fatalf("MajorityRound = %d, want 15", ph.MajorityRound)
	}
	// Halvings of live0 = 16: ≤8 at round 10, ≤4 at 15 (live 3 also
	// covers ≤4? no: 3 ≤ 4 at round 15), ≤2 at 20 (live 1 covers ≤2
	// and ≤1).
	if want := []int64{10, 15, 20, 20}; !reflect.DeepEqual(ph.LiveHalvings, want) {
		t.Fatalf("LiveHalvings = %v, want %v", ph.LiveHalvings, want)
	}
}

func TestAnalyzeTrialNeverCrossing(t *testing.T) {
	pts := []Point{
		{Round: 0, Gamma: 0.01, Live: 100, MaxAlpha: 0.02},
		{Round: 4, Gamma: 0.02, Live: 90, MaxAlpha: 0.03},
	}
	ph, err := AnalyzeTrial(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ph.GammaHalfRound != -1 || ph.MajorityRound != -1 || len(ph.LiveHalvings) != 0 {
		t.Fatalf("expected no crossings: %+v", ph)
	}
}

func TestCompare(t *testing.T) {
	ph := Phases{
		Gamma0:         0.1,
		GammaHalfRound: 50,
		LastRound:      100,
		LiveEnd:        3,
	}
	n := 10_000.0
	tc := Compare(ph, n)
	if want := theory.ConsensusTimeFromGamma(n, 0.1); tc.GammaHalfShape != want {
		t.Fatalf("GammaHalfShape = %v, want %v", tc.GammaHalfShape, want)
	}
	if want := 50 / theory.ConsensusTimeFromGamma(n, 0.1); !approxEq(tc.GammaHalfRatio, want) {
		t.Fatalf("GammaHalfRatio = %v, want %v", tc.GammaHalfRatio, want)
	}
	if want := theory.RemainingOpinionsBound(n, 100); tc.RemainingBound != want {
		t.Fatalf("RemainingBound = %v, want %v", tc.RemainingBound, want)
	}
	if !tc.LiveWithinBound {
		t.Fatal("3 live opinions should sit within the Remark 2.5 bound")
	}

	ph.GammaHalfRound = -1
	if tc := Compare(ph, n); !math.IsNaN(tc.GammaHalfRatio) {
		t.Fatalf("unreached crossing should give NaN ratio, got %v", tc.GammaHalfRatio)
	}
}
