package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"plurality/internal/population"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	cases := []struct {
		in   Spec
		want Spec
	}{
		{Spec{}, Spec{Policy: PolicyAdaptive, MaxPoints: DefaultMaxPoints}},
		{Spec{Every: 10}, Spec{Policy: PolicyEvery, Every: 10, MaxPoints: DefaultMaxPoints}},
		{Spec{Policy: "EVERY "}, Spec{Policy: PolicyEvery, Every: 1, MaxPoints: DefaultMaxPoints}},
		// An inert stride under log2/adaptive is cleared, so it cannot
		// split the cache key of otherwise identical specs.
		{Spec{Policy: "log2", Every: 7}, Spec{Policy: PolicyLog2, MaxPoints: DefaultMaxPoints}},
		{Spec{Policy: "adaptive", Every: 3, MaxPoints: 64}, Spec{Policy: PolicyAdaptive, MaxPoints: 64}},
	}
	for _, c := range cases {
		if got := c.in.Normalize(); got != c.want {
			t.Errorf("Normalize(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	valid := []Spec{{}, {Policy: "log2"}, {Every: 5}, {Policy: "adaptive", MaxPoints: CapMaxPoints}}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	invalid := []Spec{
		{Policy: "nope"},
		{Policy: PolicyEvery, Every: -1},
		{MaxPoints: 1},
		{MaxPoints: CapMaxPoints + 1},
		{MaxPoints: -5},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := map[string]Spec{
		"adaptive":            {Policy: PolicyAdaptive, MaxPoints: DefaultMaxPoints},
		"log2":                {Policy: PolicyLog2, MaxPoints: DefaultMaxPoints},
		"every":               {Policy: PolicyEvery, Every: 1, MaxPoints: DefaultMaxPoints},
		"every:10":            {Policy: PolicyEvery, Every: 10, MaxPoints: DefaultMaxPoints},
		"10":                  {Policy: PolicyEvery, Every: 10, MaxPoints: DefaultMaxPoints},
		"adaptive:points=256": {Policy: PolicyAdaptive, MaxPoints: 256},
		"every:4:points=64":   {Policy: PolicyEvery, Every: 4, MaxPoints: 64},
	}
	for in, want := range cases {
		got, err := ParseSpec(in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", in, got, want)
		}
	}
	// A stride after an explicit non-every policy must be rejected, not
	// silently rewritten to the every policy.
	for _, in := range []string{"bogus", "every:x", "adaptive:points=", "log2:junk:more", "log2:4", "adaptive:8"} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want error", in)
		}
	}
}

// vecOf builds a test Vector from counts.
func vecOf(t *testing.T, counts ...int64) *population.Vector {
	t.Helper()
	v, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPointOf(t *testing.T) {
	v := vecOf(t, 6, 2, 0, 2)
	p := PointOf(3, 7, v)
	want := Point{Trial: 3, Round: 7, Gamma: 0.44, Live: 3, MaxAlpha: 0.6, SumCubes: 0.232}
	if p.Trial != want.Trial || p.Round != want.Round || p.Live != want.Live ||
		p.MaxAlpha != want.MaxAlpha ||
		!approxEq(p.Gamma, want.Gamma) || !approxEq(p.SumCubes, want.SumCubes) {
		t.Fatalf("PointOf = %+v, want %+v", p, want)
	}
}

func approxEq(a, b float64) bool { d := a - b; return d < 1e-12 && d > -1e-12 }

func TestNilSamplerIsInert(t *testing.T) {
	var s *Sampler
	if s.Wants(0) || s.Wants(1) {
		t.Fatal("nil sampler wants rounds")
	}
	s.Observe(0, vecOf(t, 1, 1)) // must not panic
	if got := s.Points(); got != nil {
		t.Fatalf("nil sampler has points: %v", got)
	}
	if s.Truncated() {
		t.Fatal("nil sampler reports truncation")
	}
	if err := s.Flush(&Buffer{}); err != nil {
		t.Fatalf("nil flush: %v", err)
	}
}

func TestEveryPolicyStrideAndTruncation(t *testing.T) {
	s := NewSampler(Spec{Every: 3, MaxPoints: 4}, 0)
	v := vecOf(t, 2, 2)
	for round := int64(0); round <= 30; round++ {
		s.Observe(round, v)
	}
	var rounds []int64
	for _, p := range s.Points() {
		rounds = append(rounds, p.Round)
	}
	// Stride 3, budget 4: rounds 0,3,6,9 then the tail is dropped.
	if want := []int64{0, 3, 6, 9}; !reflect.DeepEqual(rounds, want) {
		t.Fatalf("rounds = %v, want %v", rounds, want)
	}
	if !s.Truncated() {
		t.Fatal("expected truncation")
	}
}

func TestLog2PolicyRounds(t *testing.T) {
	s := NewSampler(Spec{Policy: PolicyLog2}, 0)
	v := vecOf(t, 2, 2)
	for round := int64(0); round <= 100; round++ {
		s.Observe(round, v)
	}
	var rounds []int64
	for _, p := range s.Points() {
		rounds = append(rounds, p.Round)
	}
	if want := []int64{0, 1, 2, 4, 8, 16, 32, 64}; !reflect.DeepEqual(rounds, want) {
		t.Fatalf("rounds = %v, want %v", rounds, want)
	}
}

func TestAdaptivePolicyBoundedAndCovering(t *testing.T) {
	const maxPoints = 16
	s := NewSampler(Spec{Policy: PolicyAdaptive, MaxPoints: maxPoints}, 0)
	v := vecOf(t, 2, 2)
	const last = 1000
	for round := int64(0); round <= last; round++ {
		s.Observe(round, v)
	}
	pts := s.Points()
	if len(pts) == 0 || len(pts) >= maxPoints {
		t.Fatalf("adaptive kept %d points, want in [1, %d)", len(pts), maxPoints)
	}
	if s.Truncated() {
		t.Fatal("adaptive must coarsen, not truncate")
	}
	if pts[0].Round != 0 {
		t.Fatalf("first point round = %d, want 0", pts[0].Round)
	}
	// All kept rounds are multiples of one final stride, i.e. the trace
	// still covers the whole run at uniform resolution.
	stride := pts[1].Round - pts[0].Round
	for i := 1; i < len(pts); i++ {
		if pts[i].Round-pts[i-1].Round != stride {
			t.Fatalf("non-uniform stride at %d: %v", i, pts)
		}
	}
	if tail := last - pts[len(pts)-1].Round; tail >= 2*stride {
		t.Fatalf("coverage gap at the tail: last kept %d, run end %d, stride %d",
			pts[len(pts)-1].Round, last, stride)
	}
}

// TestDecimatedTracesAreSubsequences is the package-level property: any
// policy's trace, over any (random) observation run, is a strict
// subsequence of the every=1 trace of the same run.
func TestDecimatedTracesAreSubsequences(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		last := int64(rnd.Intn(2000) + 50)
		vs := make([]*population.Vector, last+1)
		for r := range vs {
			vs[r] = vecOf(t, int64(rnd.Intn(50)+1), int64(rnd.Intn(50)), int64(rnd.Intn(50)))
		}
		observe := func(s *Sampler) []Point {
			for r := int64(0); r <= last; r++ {
				s.Observe(r, vs[r])
			}
			return s.Points()
		}
		full := observe(NewSampler(Spec{Every: 1, MaxPoints: CapMaxPoints}, 0))
		byRound := map[int64]Point{}
		for _, p := range full {
			byRound[p.Round] = p
		}
		for _, spec := range []Spec{
			{Every: 7},
			{Policy: PolicyLog2},
			{Policy: PolicyAdaptive, MaxPoints: 8},
			{Every: 1, MaxPoints: 16},
		} {
			dec := observe(NewSampler(spec, 0))
			if len(dec) >= len(full) {
				t.Fatalf("spec %+v: decimated trace not strictly shorter (%d vs %d)", spec, len(dec), len(full))
			}
			prev := int64(-1)
			for _, p := range dec {
				if p.Round <= prev {
					t.Fatalf("spec %+v: rounds not increasing: %v", spec, dec)
				}
				prev = p.Round
				if byRound[p.Round] != p {
					t.Fatalf("spec %+v: point %+v differs from every=1 trace point %+v", spec, p, byRound[p.Round])
				}
			}
		}
	}
}

func TestBufferAndWriterRecorder(t *testing.T) {
	pts := []Point{
		{Trial: 0, Round: 0, Gamma: 0.5, Live: 2, MaxAlpha: 0.5, SumCubes: 0.25},
		{Trial: 0, Round: 1, Gamma: 1, Live: 1, MaxAlpha: 1, SumCubes: 1},
	}
	var buf Buffer
	if err := Emit(pts, &buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(buf.Points, pts) {
		t.Fatalf("buffer = %v, want %v", buf.Points, pts)
	}
	var out bytes.Buffer
	if err := Emit(pts, WriterRecorder{W: &out}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2:\n%s", len(lines), out.String())
	}
	if want := `{"trial":0,"round":1,"gamma":1,"live":1,"max_alpha":1,"sum_cubes":1}`; lines[1] != want {
		t.Fatalf("line = %s, want %s", lines[1], want)
	}
}
