// Package trace is the round-trace observability subsystem: sampled
// per-round observables of a single dynamics run — round index, the
// potential Γ = Σα², the live-opinion count, the max-opinion density
// and Σα³ — recorded under a decimation policy so that even a
// k = n = 10⁵ trajectory stays bounded in memory.
//
// The paper's whole analysis is about per-round trajectories (the
// drift of Γ, the decay of the live count, the phase transitions
// behind the Θ̃(k) consensus-time bounds), and the follow-up work of
// D'Archivio et al. ties consensus time to the maximum initial opinion
// density — claims only testable from round-level data. The engines
// compute every observable in O(1)–O(live) per round anyway; this
// package is how they stop throwing that data away.
//
// # Contract
//
// A *Sampler is threaded through all four execution engines (the
// count-space sync engine, the asynchronous ticker, the sharded graph
// engine and the gossip network) behind a nil-check: a nil sampler is
// inert, every method is a nil-safe no-op, and an untraced run pays
// exactly one pointer comparison per round. Tracing never draws from
// an engine's RNG stream, so a traced and an untraced run of the same
// (config, seed) produce identical results.
//
// Per-trial determinism: each trial owns its own Sampler, observables
// are read between rounds (after the sharded-round barrier, never from
// inside a shard worker), and the orchestrators flush samplers in
// trial order — so the merged point stream is byte-identical for any
// worker count.
//
// The contract above is owned by DESIGN.md §"Round-trace
// observability".
package trace
