package trace

import (
	"fmt"
	"math"

	"plurality/internal/theory"
)

// Phases summarises the phase structure of one trial's trace: the
// boundaries the paper's analysis pivots on. All round fields are the
// first *recorded* round past the boundary (decimated traces can only
// bracket a crossing at their sampling resolution); -1 means the trace
// never crossed it.
type Phases struct {
	// Trial is the trial the trace belongs to.
	Trial int
	// FirstRound/LastRound delimit the recorded rounds.
	FirstRound, LastRound int64
	// Gamma0/GammaEnd are Γ at the first and last recorded points.
	Gamma0, GammaEnd float64
	// Live0/LiveEnd are the live-opinion counts at the first and last
	// recorded points.
	Live0, LiveEnd int
	// MaxAlpha0 is the maximum initial opinion density — the control
	// variable of the D'Archivio et al. scaling law.
	MaxAlpha0 float64
	// GammaHalfRound is the first recorded round with Γ ≥ 1/2: past
	// it the process is in the two-opinion endgame (Γ ≥ 1/2 forces a
	// near-majority opinion).
	GammaHalfRound int64
	// MajorityRound is the first recorded round where some opinion
	// holds at least half the population.
	MajorityRound int64
	// LiveHalvings[i] is the first recorded round with
	// live ≤ Live0 / 2^(i+1): the live-opinion decay curve, the
	// paper's Remark 2.5 observable.
	LiveHalvings []int64
}

// SplitTrials groups a merged (trial, round)-ordered point stream —
// e.g. a Response.Trace — into per-trial traces. Points of one trial
// must be contiguous, which the orchestrators' trial-order flush
// guarantees.
func SplitTrials(points []Point) [][]Point {
	var out [][]Point
	start := 0
	for i := 1; i <= len(points); i++ {
		if i == len(points) || points[i].Trial != points[start].Trial {
			out = append(out, points[start:i])
			start = i
		}
	}
	return out
}

// AnalyzeTrial extracts the phase boundaries from one trial's trace
// (points in increasing round order, as a Sampler produces them).
func AnalyzeTrial(points []Point) (Phases, error) {
	if len(points) == 0 {
		return Phases{}, fmt.Errorf("trace: cannot analyze an empty trace")
	}
	first, last := points[0], points[len(points)-1]
	ph := Phases{
		Trial:          first.Trial,
		FirstRound:     first.Round,
		LastRound:      last.Round,
		Gamma0:         first.Gamma,
		GammaEnd:       last.Gamma,
		Live0:          first.Live,
		LiveEnd:        last.Live,
		MaxAlpha0:      first.MaxAlpha,
		GammaHalfRound: -1,
		MajorityRound:  -1,
	}
	nextHalf := ph.Live0 / 2
	for _, p := range points {
		if ph.GammaHalfRound == -1 && p.Gamma >= 0.5 {
			ph.GammaHalfRound = p.Round
		}
		if ph.MajorityRound == -1 && p.MaxAlpha >= 0.5 {
			ph.MajorityRound = p.Round
		}
		for nextHalf >= 1 && p.Live <= nextHalf {
			ph.LiveHalvings = append(ph.LiveHalvings, p.Round)
			nextHalf /= 2
		}
	}
	return ph, nil
}

// TheoryCheck compares a trial's observed phase boundaries with the
// internal/theory predictors.
type TheoryCheck struct {
	// GammaHalfRound echoes the observed Γ ≥ 1/2 crossing (-1 when the
	// trace never got there).
	GammaHalfRound int64
	// GammaHalfShape is the Theorem 2.1 consensus-time shape
	// ln(n)/γ₀ from the trace's initial norm; the observed crossing
	// should be O(shape).
	GammaHalfShape float64
	// GammaHalfRatio is observed / shape (NaN when unobserved) — the
	// quantity the scaling-law experiments plot; it should be O(1)
	// across n, k and the initial density.
	GammaHalfRatio float64
	// RemainingBound is the Remark 2.5 bound n·ln(n)/T on the live
	// opinions after T = LastRound rounds (3-Majority).
	RemainingBound float64
	// LiveWithinBound reports LiveEnd ≤ RemainingBound.
	LiveWithinBound bool
}

// Compare evaluates the trace-observed phases of one trial against the
// theory predictors for an n-vertex process.
func Compare(ph Phases, n float64) TheoryCheck {
	tc := TheoryCheck{
		GammaHalfRound: ph.GammaHalfRound,
		GammaHalfShape: theory.ConsensusTimeFromGamma(n, ph.Gamma0),
		RemainingBound: theory.RemainingOpinionsBound(n, float64(ph.LastRound)),
	}
	if ph.GammaHalfRound >= 0 && tc.GammaHalfShape > 0 {
		tc.GammaHalfRatio = float64(ph.GammaHalfRound) / tc.GammaHalfShape
	} else {
		tc.GammaHalfRatio = math.NaN()
	}
	tc.LiveWithinBound = float64(ph.LiveEnd) <= tc.RemainingBound
	return tc
}
