package gossip

import (
	"errors"
	"fmt"
	"sync"

	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/trace"
)

// Rule selects the update rule (Definition 3.1 forms).
type Rule int

// Supported rules.
const (
	ThreeMajority Rule = iota + 1
	TwoChoices
	Voter
)

// samples returns how many pulls the rule needs per round.
func (r Rule) samples() int {
	switch r {
	case ThreeMajority:
		return 3
	case TwoChoices:
		return 2
	case Voter:
		return 1
	default:
		return 0
	}
}

// Name identifies the rule.
func (r Rule) Name() string {
	switch r {
	case ThreeMajority:
		return "gossip-3-majority"
	case TwoChoices:
		return "gossip-2-choices"
	case Voter:
		return "gossip-voter"
	default:
		return "gossip-unknown"
	}
}

// pullRequest asks a peer for its current opinion. The reply channel
// is buffered so servers never block.
type pullRequest struct {
	reply chan pullReply
}

type pullReply struct {
	opinion int32
	failed  bool
}

// command drives a node's state machine.
type commandKind int

const (
	cmdSample commandKind = iota + 1
	cmdCommit
	cmdStop
)

type command struct {
	kind commandKind
}

// doneMsg reports a node's tentative next opinion to the coordinator.
type doneMsg struct {
	id      int
	opinion int32
}

// node is one participant; its goroutine owns all mutable state.
type node struct {
	id      int
	rule    Rule
	crashed bool
	loss    float64
	r       *rng.Rand

	cur  int32
	next int32

	ctrl  chan command
	inbox chan pullRequest
	done  chan<- doneMsg

	peers []*node // shared read-only topology (complete graph)
}

// Config describes a gossip network.
type Config struct {
	// N is the number of nodes; required.
	N int
	// Rule is the update rule; required.
	Rule Rule
	// Init supplies the initial opinion counts; required, with
	// Init.N() == N.
	Init *population.Vector
	// Seed makes executions reproducible given a fixed scheduler-
	// independent protocol (all randomness is per-node PRNG).
	Seed uint64
	// Crashed lists node IDs that are crashed from the start.
	Crashed []int
	// LossProb is the per-pull loss probability in [0, 1).
	LossProb float64
}

// ErrConfig reports invalid gossip configuration.
var ErrConfig = errors.New("gossip: invalid config")

// Network is a running gossip system. Create with New, drive with
// Round or Run, and always Close it to stop the node goroutines.
type Network struct {
	nodes    []*node
	done     chan doneMsg
	opinions []int32 // coordinator's authoritative copy
	crashed  []bool
	k        int
	wg       sync.WaitGroup
	closed   bool
}

// New builds and starts a gossip network; the caller must Close it.
func New(cfg Config) (*Network, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: N = %d", ErrConfig, cfg.N)
	}
	if cfg.Rule.samples() == 0 {
		return nil, fmt.Errorf("%w: unknown rule", ErrConfig)
	}
	if cfg.Init == nil || cfg.Init.N() != int64(cfg.N) {
		return nil, fmt.Errorf("%w: Init must cover exactly N=%d nodes", ErrConfig, cfg.N)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return nil, fmt.Errorf("%w: LossProb = %v", ErrConfig, cfg.LossProb)
	}
	crashed := make([]bool, cfg.N)
	for _, id := range cfg.Crashed {
		if id < 0 || id >= cfg.N {
			return nil, fmt.Errorf("%w: crashed id %d out of range", ErrConfig, id)
		}
		crashed[id] = true
	}

	nw := &Network{
		done:     make(chan doneMsg, cfg.N),
		opinions: make([]int32, 0, cfg.N),
		crashed:  crashed,
		k:        cfg.Init.K(),
	}
	for op := 0; op < cfg.Init.K(); op++ {
		for j := int64(0); j < cfg.Init.Count(op); j++ {
			nw.opinions = append(nw.opinions, int32(op))
		}
	}

	nw.nodes = make([]*node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nw.nodes[i] = &node{
			id:      i,
			rule:    cfg.Rule,
			crashed: crashed[i],
			loss:    cfg.LossProb,
			r:       rng.New(rng.DeriveSeed(cfg.Seed, uint64(i))),
			cur:     nw.opinions[i],
			ctrl:    make(chan command),
			inbox:   make(chan pullRequest, 8),
			done:    nw.done,
		}
	}
	for _, n := range nw.nodes {
		n.peers = nw.nodes
	}
	nw.wg.Add(cfg.N)
	for _, n := range nw.nodes {
		go func(n *node) {
			defer nw.wg.Done()
			n.run()
		}(n)
	}
	return nw, nil
}

// run is the node goroutine's state machine.
func (n *node) run() {
	for {
		select {
		case req := <-n.inbox:
			n.serve(req)
		case cmd := <-n.ctrl:
			switch cmd.kind {
			case cmdSample:
				n.sample()
				n.done <- doneMsg{id: n.id, opinion: n.next}
				// Keep serving round-(t-1) opinions until commit.
				if !n.serveUntilCommit() {
					return
				}
			case cmdCommit:
				// Commit without a preceding sample only happens on
				// protocol misuse; adopt next defensively.
				n.cur = n.next
			case cmdStop:
				return
			}
		}
	}
}

// serveUntilCommit keeps answering pulls until the commit command,
// then adopts the tentative opinion. It returns false on stop.
func (n *node) serveUntilCommit() bool {
	for {
		select {
		case req := <-n.inbox:
			n.serve(req)
		case cmd := <-n.ctrl:
			switch cmd.kind {
			case cmdCommit:
				n.cur = n.next
				return true
			case cmdStop:
				return false
			case cmdSample:
				panic("gossip: sample during commit wait")
			}
		}
	}
}

// serve answers one pull request.
func (n *node) serve(req pullRequest) {
	if n.crashed {
		req.reply <- pullReply{failed: true}
		return
	}
	req.reply <- pullReply{opinion: n.cur}
}

// sample executes one round's pulls and computes the tentative next
// opinion. Crashed nodes never update.
func (n *node) sample() {
	if n.crashed {
		n.next = n.cur
		return
	}
	count := n.rule.samples()
	got := make([]int32, 0, 3)
	failed := false
	for s := 0; s < count; s++ {
		op, ok := n.pullOne()
		if !ok {
			failed = true
			break
		}
		got = append(got, op)
	}
	if failed {
		// Omission: keep the current opinion for this round.
		n.next = n.cur
		return
	}
	switch n.rule {
	case ThreeMajority:
		if got[0] == got[1] {
			n.next = got[0]
		} else {
			n.next = got[2]
		}
	case TwoChoices:
		if got[0] == got[1] {
			n.next = got[0]
		} else {
			n.next = n.cur
		}
	case Voter:
		n.next = got[0]
	}
}

// pullOne samples one uniformly random peer (self-loops included) and
// returns its opinion, or ok = false on loss/crash.
func (n *node) pullOne() (int32, bool) {
	if n.loss > 0 && n.r.Bernoulli(n.loss) {
		return 0, false
	}
	peer := n.r.Intn(len(n.peers))
	if peer == n.id {
		return n.cur, true // self-loop: local read
	}
	target := n.peers[peer]
	req := pullRequest{reply: make(chan pullReply, 1)}
	sent := false
	for {
		if !sent {
			select {
			case target.inbox <- req:
				sent = true
			case incoming := <-n.inbox:
				// Serve while waiting so mutually pulling nodes
				// cannot deadlock on full inboxes.
				n.serve(incoming)
			}
			continue
		}
		select {
		case rep := <-req.reply:
			if rep.failed {
				return 0, false
			}
			return rep.opinion, true
		case incoming := <-n.inbox:
			// Serve while awaiting the reply, or a requester cycle
			// (A waits on B waits on C waits on A) would deadlock.
			n.serve(incoming)
		}
	}
}

// Round executes one synchronous round and returns the updated counts.
func (nw *Network) Round() *population.Vector {
	if nw.closed {
		panic("gossip: Round after Close")
	}
	// Phase 1: everyone samples.
	for _, n := range nw.nodes {
		n.ctrl <- command{kind: cmdSample}
	}
	for range nw.nodes {
		msg := <-nw.done
		nw.opinions[msg.id] = msg.opinion
	}
	// Phase 2: everyone commits.
	for _, n := range nw.nodes {
		n.ctrl <- command{kind: cmdCommit}
	}
	return nw.Counts()
}

// Counts returns the coordinator's view of the opinion counts (valid
// between rounds).
func (nw *Network) Counts() *population.Vector {
	counts := make([]int64, nw.k)
	for _, op := range nw.opinions {
		counts[op]++
	}
	v, err := population.FromCounts(counts)
	if err != nil {
		panic(fmt.Sprintf("gossip: invalid counts: %v", err))
	}
	return v
}

// AliveConsensus reports whether all non-crashed nodes agree, and on
// what. Crashed nodes are frozen and excluded.
func (nw *Network) AliveConsensus() (opinion int32, ok bool) {
	first := int32(-1)
	for id, op := range nw.opinions {
		if nw.crashed[id] {
			continue
		}
		if first == -1 {
			first = op
			continue
		}
		if op != first {
			return 0, false
		}
	}
	if first == -1 {
		return 0, false // everyone crashed
	}
	return first, true
}

// Result reports how a gossip run ended. Gamma and Live are the final
// potential Γ = Σ α² and live-opinion count over the full population,
// crashed (frozen) nodes included — so they can stay below 1 and
// above 1 respectively even at alive-consensus.
type Result struct {
	Rounds    int
	Consensus bool
	Winner    int32
	Gamma     float64
	Live      int
}

// Run executes rounds until all alive nodes agree or maxRounds.
func (nw *Network) Run(maxRounds int) Result {
	return nw.RunHooked(maxRounds, nil, nil)
}

// RunTraced is Run with an optional round tracer: tr samples the
// coordinator's authoritative opinion counts between rounds — after
// the commit barrier, when no node goroutine is mutating state — so
// the trace is deterministic in the network's seed regardless of
// goroutine scheduling. A nil tr costs one pointer test per round;
// kept rounds reuse the counts Round materializes anyway, so tracing
// adds only the O(live) observable reads.
func (nw *Network) RunTraced(maxRounds int, tr *trace.Sampler) Result {
	return nw.RunHooked(maxRounds, tr, nil)
}

// RunHooked is RunTraced with an optional stop condition: stop, if
// non-nil, is evaluated on the coordinator's counts between rounds
// (after the commit barrier, like tracing, and at round 0 before any
// pull) and a true return ends the run there. The hook reads only the
// coordinator's state — node PRNG streams are untouched — so a stopped
// run is byte-for-byte the prefix of the unstopped run of the same
// seed.
func (nw *Network) RunHooked(maxRounds int, tr *trace.Sampler, stop func(round int64, v *population.Vector) bool) Result {
	finish := func(rounds int, consensus bool, winner int32, v *population.Vector) Result {
		if v == nil {
			v = nw.Counts()
		}
		return Result{Rounds: rounds, Consensus: consensus, Winner: winner, Gamma: v.Gamma(), Live: v.Live()}
	}
	if stop != nil || tr.Wants(0) {
		// One shared materialisation for the sampler and the stop hook.
		v := nw.Counts()
		tr.Observe(0, v)
		if stop != nil && stop(0, v) {
			if op, ok := nw.AliveConsensus(); ok {
				return finish(0, true, op, v)
			}
			op, _ := v.MaxOpinion()
			return finish(0, false, int32(op), v)
		}
	}
	if op, ok := nw.AliveConsensus(); ok {
		return finish(0, true, op, nil)
	}
	for t := 1; t <= maxRounds; t++ {
		// Round already materializes the post-commit counts; reuse them
		// rather than paying the O(n + k) scan twice on kept rounds.
		v := nw.Round()
		if tr.Wants(int64(t)) {
			tr.Observe(int64(t), v)
		}
		// Stop hook before the consensus test, like every engine: a
		// condition first holding at the consensus round still
		// observes the stop, and the result stays the consensus one.
		if stop != nil && stop(int64(t), v) {
			if op, ok := nw.AliveConsensus(); ok {
				return finish(t, true, op, v)
			}
			op, _ := v.MaxOpinion()
			return finish(t, false, int32(op), v)
		}
		if op, ok := nw.AliveConsensus(); ok {
			return finish(t, true, op, v)
		}
	}
	v := nw.Counts()
	op, _ := v.MaxOpinion()
	return finish(maxRounds, false, int32(op), v)
}

// Close stops all node goroutines and waits for them to exit. It is
// idempotent. Between rounds every node is parked on its control
// channel, so delivery cannot block.
func (nw *Network) Close() {
	if nw.closed {
		return
	}
	nw.closed = true
	for _, n := range nw.nodes {
		n.ctrl <- command{kind: cmdStop}
	}
	nw.wg.Wait()
}
