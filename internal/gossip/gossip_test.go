package gossip

import (
	"math"
	"testing"

	"plurality/internal/population"
)

func mustNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	return nw
}

func TestConfigValidation(t *testing.T) {
	init := population.MustFromCounts([]int64{5, 5})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero N", Config{N: 0, Rule: Voter, Init: init}},
		{"bad rule", Config{N: 10, Rule: Rule(0), Init: init}},
		{"nil init", Config{N: 10, Rule: Voter}},
		{"mismatched init", Config{N: 11, Rule: Voter, Init: init}},
		{"bad loss", Config{N: 10, Rule: Voter, Init: init, LossProb: 1}},
		{"bad crash id", Config{N: 10, Rule: Voter, Init: init, Crashed: []int{10}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestRuleNames(t *testing.T) {
	if ThreeMajority.Name() != "gossip-3-majority" ||
		TwoChoices.Name() != "gossip-2-choices" ||
		Voter.Name() != "gossip-voter" ||
		Rule(0).Name() != "gossip-unknown" {
		t.Fatal("rule names wrong")
	}
}

func TestRoundConservesPopulation(t *testing.T) {
	nw := mustNetwork(t, Config{
		N:    60,
		Rule: ThreeMajority,
		Init: population.MustFromCounts([]int64{20, 20, 20}),
		Seed: 1,
	})
	for i := 0; i < 10; i++ {
		v := nw.Round()
		if v.N() != 60 {
			t.Fatalf("round %d: population %d", i, v.N())
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}

func TestRunReachesConsensus(t *testing.T) {
	for _, rule := range []Rule{ThreeMajority, TwoChoices} {
		rule := rule
		t.Run(rule.Name(), func(t *testing.T) {
			nw := mustNetwork(t, Config{
				N:    120,
				Rule: rule,
				Init: population.Balanced(120, 4),
				Seed: 2,
			})
			res := nw.Run(20000)
			if !res.Consensus {
				t.Fatalf("no consensus in %d rounds", res.Rounds)
			}
			v := nw.Counts()
			if op, ok := v.Consensus(); !ok || int32(op) != res.Winner {
				t.Fatalf("winner %d inconsistent with counts %v", res.Winner, v.Counts())
			}
		})
	}
}

func TestImmediateConsensus(t *testing.T) {
	nw := mustNetwork(t, Config{
		N:    10,
		Rule: Voter,
		Init: population.MustFromCounts([]int64{0, 10}),
		Seed: 3,
	})
	res := nw.Run(100)
	if !res.Consensus || res.Rounds != 0 || res.Winner != 1 {
		t.Fatalf("result %+v", res)
	}
}

// TestGossipMatchesCountsEngineLaw is the bridge between the real
// message-passing execution and the abstract Markov chain: the
// one-round mean counts of the gossip network must match the Eq. (5)
// law n·α(i)(1 + α(i) − γ) that internal/core samples directly.
func TestGossipMatchesCountsEngineLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("many network restarts")
	}
	init := population.MustFromCounts([]int64{60, 30, 10})
	const n, trials = 100, 600
	sums := make([]float64, 3)
	for trial := 0; trial < trials; trial++ {
		nw, err := New(Config{
			N:    n,
			Rule: ThreeMajority,
			Init: init,
			Seed: uint64(1000 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		v := nw.Round()
		nw.Close()
		for j := 0; j < 3; j++ {
			sums[j] += float64(v.Count(j))
		}
	}
	gamma := init.Gamma()
	for j := 0; j < 3; j++ {
		a := init.Alpha(j)
		want := float64(n) * a * (1 + a - gamma)
		got := sums[j] / trials
		se := math.Sqrt(float64(n) * a / float64(trials) * float64(n))
		_ = se
		if math.Abs(got-want) > 0.08*want+2 {
			t.Errorf("opinion %d: gossip mean %v, Eq.(5) mean %v", j, got, want)
		}
	}
}

// TestCrashedNodesFrozen: crashed nodes never change opinion, and the
// alive nodes still reach consensus among themselves.
func TestCrashedNodesFrozen(t *testing.T) {
	init := population.MustFromCounts([]int64{50, 50})
	crashed := []int{0, 1, 2, 99} // ids 0..49 hold opinion 0, 50..99 opinion 1
	nw := mustNetwork(t, Config{
		N:       100,
		Rule:    ThreeMajority,
		Init:    init,
		Seed:    4,
		Crashed: crashed,
	})
	res := nw.Run(20000)
	if !res.Consensus {
		t.Fatalf("alive nodes did not converge in %d rounds", res.Rounds)
	}
	// Crashed nodes keep their initial opinions.
	if nw.opinions[0] != 0 || nw.opinions[1] != 0 || nw.opinions[2] != 0 || nw.opinions[99] != 1 {
		t.Fatalf("crashed nodes changed opinion: %v %v %v %v",
			nw.opinions[0], nw.opinions[1], nw.opinions[2], nw.opinions[99])
	}
	// Counts show both opinions because the frozen minority remains.
	v := nw.Counts()
	if _, full := v.Consensus(); full && res.Winner == 0 {
		t.Fatal("full consensus impossible with a frozen crashed node on each side")
	}
}

// TestAllCrashedNoConsensus: with every node crashed nothing moves and
// AliveConsensus is vacuously false.
func TestAllCrashedNoConsensus(t *testing.T) {
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	nw := mustNetwork(t, Config{
		N:       10,
		Rule:    Voter,
		Init:    population.MustFromCounts([]int64{5, 5}),
		Seed:    5,
		Crashed: all,
	})
	res := nw.Run(5)
	if res.Consensus {
		t.Fatal("consensus among zero alive nodes")
	}
}

// TestLossSlowsButPreservesConsensus: pull loss turns rounds lazy but
// the dynamics still converge; heavy loss takes visibly longer.
func TestLossSlowsButPreservesConsensus(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	run := func(loss float64, seed uint64) int {
		total := 0
		const trials = 3
		for i := uint64(0); i < trials; i++ {
			nw, err := New(Config{
				N:        150,
				Rule:     TwoChoices,
				Init:     population.Balanced(150, 2),
				Seed:     seed + i,
				LossProb: loss,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := nw.Run(50000)
			nw.Close()
			if !res.Consensus {
				t.Fatalf("no consensus at loss %v", loss)
			}
			total += res.Rounds
		}
		return total
	}
	clean := run(0, 10)
	lossy := run(0.6, 20)
	if lossy <= clean {
		t.Errorf("60%% loss (%d rounds) not slower than clean (%d rounds)", lossy, clean)
	}
}

// TestValidityUnderGossip: extinct opinions never reappear in the
// concurrent execution either.
func TestValidityUnderGossip(t *testing.T) {
	nw := mustNetwork(t, Config{
		N:    80,
		Rule: ThreeMajority,
		Init: population.MustFromCounts([]int64{40, 0, 40}),
		Seed: 6,
	})
	for i := 0; i < 30; i++ {
		v := nw.Round()
		if v.Count(1) != 0 {
			t.Fatalf("round %d: extinct opinion resurrected", i)
		}
	}
}

// TestCloseIdempotent exercises shutdown paths.
func TestCloseIdempotent(t *testing.T) {
	nw, err := New(Config{
		N:    20,
		Rule: Voter,
		Init: population.Balanced(20, 2),
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	nw.Close() // second close must be a no-op
}

func TestRoundAfterClosePanics(t *testing.T) {
	nw, err := New(Config{
		N:    10,
		Rule: Voter,
		Init: population.Balanced(10, 2),
		Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Round after Close did not panic")
		}
	}()
	nw.Round()
}

func BenchmarkGossipRoundN500(b *testing.B) {
	nw, err := New(Config{
		N:    500,
		Rule: ThreeMajority,
		Init: population.Balanced(500, 8),
		Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer nw.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Round()
	}
}
