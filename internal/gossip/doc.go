// Package gossip executes the consensus dynamics as an actual
// message-passing distributed system: one goroutine per node,
// pull-based opinion exchange over channels, and a two-phase barrier
// that realizes the paper's synchronous rounds. It exists to
// demonstrate that the abstract count-space Markov chain of
// internal/core corresponds to a real concurrent execution (the tests
// cross-validate the two), and to study fault models the abstract
// chain cannot express: crashed nodes and lossy pulls.
//
// # Synchronous round protocol
//
// Each round has two phases, coordinated by the Network:
//
//  1. Sample: every alive node sends pull requests to uniformly random
//     peers (self-loops answered locally), serves incoming requests
//     with its round-(t−1) opinion, and computes its tentative next
//     opinion from the replies. It reports done but keeps serving.
//  2. Commit: once every node has sampled, the coordinator broadcasts
//     commit; nodes atomically adopt their next opinion. No node can
//     observe a round-t opinion while any node is still sampling
//     round t, which is exactly Definition 3.1's synchronous update.
//
// # Fault model
//
// Crashed nodes answer every pull with a failure (an RPC-error model)
// and never change their own opinion. A pull is also lost
// independently with probability LossProb. A node any of whose pulls
// fail keeps its opinion for that round (omission degrades the
// dynamics toward laziness but preserves safety; the tests quantify
// the slowdown).
//
// The contract above is owned by DESIGN.md §"The unified Experiment
// API".
package gossip
