package async

import (
	"fmt"

	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/trace"
)

// Dynamics is a single-vertex-update rule applied at every tick.
type Dynamics int

// Supported asynchronous dynamics.
const (
	ThreeMajority Dynamics = iota + 1
	TwoChoices
	Voter
)

// Name returns a short identifier.
func (d Dynamics) Name() string {
	switch d {
	case ThreeMajority:
		return "async-3-majority"
	case TwoChoices:
		return "async-2-choices"
	case Voter:
		return "async-voter"
	default:
		return "async-unknown"
	}
}

// Tick applies one asynchronous update to the configuration held in f:
// a uniformly random vertex re-samples its opinion by the rule. It
// returns the opinion the updating vertex ended the tick with.
func (d Dynamics) Tick(r *rng.Rand, f *population.Fenwick) int {
	// The updating vertex is uniform, so its current opinion has law
	// count/total; sampled neighbors are uniform vertices too (the
	// complete graph has self-loops).
	own := f.Sample(r)
	var next int
	switch d {
	case ThreeMajority:
		w1 := f.Sample(r)
		w2 := f.Sample(r)
		if w1 == w2 {
			next = w1
		} else {
			next = f.Sample(r)
		}
	case TwoChoices:
		w1 := f.Sample(r)
		w2 := f.Sample(r)
		if w1 == w2 {
			next = w1
		} else {
			next = own
		}
	case Voter:
		next = f.Sample(r)
	default:
		panic(fmt.Sprintf("async: unknown dynamics %d", d))
	}
	if next != own {
		f.Move(own, next)
	}
	return next
}

// RunResult reports how an asynchronous run ended.
type RunResult struct {
	// Ticks is the number of single-vertex updates executed.
	Ticks int64
	// Rounds is Ticks/n, the synchronous-equivalent round count.
	Rounds float64
	// Consensus reports whether all vertices agree.
	Consensus bool
	// Winner is the final plurality opinion.
	Winner int
	// Gamma and Live are the final configuration's potential Γ = Σ α²
	// and live-opinion count.
	Gamma float64
	Live  int
}

// Run executes d from configuration v until consensus or maxTicks
// updates. v is not modified.
func Run(r *rng.Rand, d Dynamics, v *population.Vector, maxTicks int64) RunResult {
	return RunHooked(r, d, v, maxTicks, nil, nil)
}

// RunTraced is Run with an optional round tracer: tr samples the
// configuration at full synchronous-equivalent round boundaries (every
// n ticks; round 0 is the initial configuration). A nil tr is inert —
// the per-tick cost is one modulus — and the O(k) count
// materialisation is paid only for rounds the tracer's decimation
// policy actually keeps.
func RunTraced(r *rng.Rand, d Dynamics, v *population.Vector, maxTicks int64, tr *trace.Sampler) RunResult {
	return RunHooked(r, d, v, maxTicks, tr, nil)
}

// RunHooked is RunTraced with an optional stop condition: stop, if
// non-nil, is evaluated on the materialised configuration at full
// synchronous-equivalent round boundaries only (every n ticks, and at
// round 0 before any tick), and a true return ends the run there.
// Like tracing, the hook draws no randomness from the run's stream —
// a stopped run is byte-for-byte the prefix of the unstopped run of
// the same seed — and a nil stop costs one comparison per tick.
func RunHooked(r *rng.Rand, d Dynamics, v *population.Vector, maxTicks int64, tr *trace.Sampler, stop func(round int64, v *population.Vector) bool) RunResult {
	f := population.NewFenwick(v.Counts())
	n := f.Total()
	finish := func(ticks int64, consensus bool, winner int, gamma float64, live int) RunResult {
		return RunResult{
			Ticks:     ticks,
			Rounds:    float64(ticks) / float64(n),
			Consensus: consensus,
			Winner:    winner,
			Gamma:     gamma,
			Live:      live,
		}
	}
	// cutoff finishes a run stopped short of consensus (stop hook or
	// tick budget) on an already-materialised configuration.
	cutoff := func(ticks int64, vec *population.Vector) RunResult {
		op, ok := vec.Consensus()
		if !ok {
			op, _ = vec.MaxOpinion()
		}
		return finish(ticks, ok, op, vec.Gamma(), vec.Live())
	}
	// observe materializes the counts at most once per round boundary,
	// shared by the sampler and the stop hook.
	observe := func(round int64) (vec *population.Vector, stopped bool) {
		if stop == nil && !tr.Wants(round) {
			return nil, false
		}
		vec = f.Vector()
		tr.Observe(round, vec)
		return vec, stop != nil && stop(round, vec)
	}
	if vec, stopped := observe(0); stopped {
		return cutoff(0, vec)
	}
	if op, ok := consensusOf(f); ok {
		return finish(0, true, op, 1, 1)
	}
	for t := int64(1); t <= maxTicks; t++ {
		next := d.Tick(r, f)
		if (tr != nil || stop != nil) && t%n == 0 {
			if vec, stopped := observe(t / n); stopped {
				return cutoff(t, vec)
			}
		}
		// Only the opinion that just gained a vertex can have reached
		// consensus, so the check is O(1) per tick.
		if f.Count(next) == n {
			return finish(t, true, next, 1, 1)
		}
	}
	return cutoff(maxTicks, f.Vector())
}

func consensusOf(f *population.Fenwick) (int, bool) {
	for i := 0; i < f.K(); i++ {
		if f.Count(i) == f.Total() {
			return i, true
		}
	}
	return 0, false
}
