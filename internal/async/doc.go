// Package async implements the asynchronous variants of the consensus
// dynamics (paper §1.1): at each tick a single uniformly random vertex
// updates its opinion by the protocol's rule. Cooper, Mallmann-Trenn,
// Radzik, Shimizu and Shiraga (SODA 2025) proved the asynchronous
// 3-Majority consensus time is Õ(min(kn, n^{3/2})) — one synchronous
// round corresponding to n asynchronous ticks — and the paper notes
// its techniques give an alternative proof. The async experiment
// (`conbench -run async`) checks that correspondence empirically.
//
// On the complete graph with self-loops the asynchronous process is a
// function of the count vector alone; package async evolves the counts
// through a Fenwick tree, so one tick costs O(log k).
//
// The contract above is owned by DESIGN.md §"The unified Experiment
// API".
package async
