package async

import (
	"math"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

func TestDynamicsNames(t *testing.T) {
	if ThreeMajority.Name() != "async-3-majority" ||
		TwoChoices.Name() != "async-2-choices" ||
		Voter.Name() != "async-voter" {
		t.Fatal("names wrong")
	}
	if Dynamics(0).Name() != "async-unknown" {
		t.Fatal("zero value name wrong")
	}
}

func TestTickPreservesTotal(t *testing.T) {
	r := rng.New(1)
	for _, d := range []Dynamics{ThreeMajority, TwoChoices, Voter} {
		f := population.NewFenwick([]int64{30, 20, 10})
		for i := 0; i < 5000; i++ {
			d.Tick(r, f)
			if f.Total() != 60 {
				t.Fatalf("%v: total drifted to %d", d, f.Total())
			}
		}
		for i := 0; i < f.K(); i++ {
			if f.Count(i) < 0 {
				t.Fatalf("%v: negative count", d)
			}
		}
	}
}

func TestTickPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dynamics did not panic")
		}
	}()
	Dynamics(99).Tick(rng.New(1), population.NewFenwick([]int64{1, 1}))
}

func TestRunReachesConsensus(t *testing.T) {
	for _, d := range []Dynamics{ThreeMajority, TwoChoices} {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			r := rng.New(2)
			v := population.Balanced(300, 4)
			res := Run(r, d, v, 50_000_000)
			if !res.Consensus {
				t.Fatalf("no consensus in %d ticks", res.Ticks)
			}
			if res.Rounds != float64(res.Ticks)/300 {
				t.Fatalf("rounds %v inconsistent with ticks %d", res.Rounds, res.Ticks)
			}
			// The input vector must be untouched.
			if v.Count(0) == 300 || v.Live() != 4 {
				t.Fatal("Run mutated its input vector")
			}
		})
	}
}

func TestRunImmediateConsensus(t *testing.T) {
	r := rng.New(3)
	v := population.MustFromCounts([]int64{0, 50})
	res := Run(r, ThreeMajority, v, 1000)
	if !res.Consensus || res.Ticks != 0 || res.Winner != 1 {
		t.Fatalf("result %+v", res)
	}
}

func TestRunTickCap(t *testing.T) {
	r := rng.New(4)
	v := population.Balanced(10000, 100)
	res := Run(r, TwoChoices, v, 50)
	if res.Consensus {
		t.Fatal("consensus impossible in 50 ticks")
	}
	if res.Ticks != 50 {
		t.Fatalf("ticks = %d", res.Ticks)
	}
}

// TestExtinctStaysExtinct: validity holds for async dynamics too.
func TestExtinctStaysExtinct(t *testing.T) {
	r := rng.New(5)
	for _, d := range []Dynamics{ThreeMajority, TwoChoices, Voter} {
		f := population.NewFenwick([]int64{40, 0, 60})
		for i := 0; i < 20000; i++ {
			d.Tick(r, f)
			if f.Count(1) != 0 {
				t.Fatalf("%v: extinct opinion revived", d)
			}
		}
	}
}

// TestAsyncMatchesSyncRoundEquivalence: async 3-Majority consensus in
// synchronous-equivalent rounds (ticks/n) should be within a small
// constant factor of the synchronous consensus time for the same
// configuration (§1.1: one synchronous round ≈ n asynchronous ticks).
// Checked loosely over several trials.
func TestAsyncMatchesSyncRoundEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	const n, k, trials = 500, 4, 20
	var asyncRounds float64
	r := rng.New(6)
	for i := 0; i < trials; i++ {
		v := population.Balanced(n, k)
		res := Run(r, ThreeMajority, v, 100_000_000)
		if !res.Consensus {
			t.Fatal("async did not converge")
		}
		asyncRounds += res.Rounds
	}
	asyncRounds /= trials
	// Sync consensus from balanced n=500,k=4 takes ~15-40 rounds; the
	// async equivalent should land in the same order of magnitude.
	if asyncRounds < 2 || asyncRounds > 500 {
		t.Fatalf("async equivalent rounds = %v, far from sync scale", asyncRounds)
	}
	if math.IsNaN(asyncRounds) {
		t.Fatal("NaN rounds")
	}
}

func BenchmarkAsyncThreeMajorityTick(b *testing.B) {
	r := rng.New(1)
	f := population.NewFenwick(population.Balanced(1_000_000, 1024).Counts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ThreeMajority.Tick(r, f)
	}
}
