package async

import (
	"math"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// TestTickLawThreeMajority pins the single-tick transition law: the
// updating vertex ends the tick with opinion i with probability
// α(i)(1 + α(i) − γ) — the same Eq. (5) law as one synchronous
// per-vertex update.
func TestTickLawThreeMajority(t *testing.T) {
	counts := []int64{50, 30, 20}
	v := population.MustFromCounts(counts)
	gamma := v.Gamma()
	r := rng.New(11)
	const trials = 300000
	hist := make([]int, 3)
	for i := 0; i < trials; i++ {
		f := population.NewFenwick(counts)
		hist[ThreeMajority.Tick(r, f)]++
	}
	for i := 0; i < 3; i++ {
		a := v.Alpha(i)
		want := a * (1 + a - gamma)
		got := float64(hist[i]) / trials
		se := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 6*se {
			t.Errorf("opinion %d: tick frequency %v, want %v (se %v)", i, got, want, se)
		}
	}
}

// TestTickLawTwoChoices: the updating vertex ends with opinion i with
// probability α(i)·(1 − γ + α(i)²)/α(i)... equivalently, summing
// Eq. (6) over the uniformly random updater's own opinion:
// P[end = i] = α(i)(1 − γ) + α(i)².
func TestTickLawTwoChoices(t *testing.T) {
	counts := []int64{50, 30, 20}
	v := population.MustFromCounts(counts)
	gamma := v.Gamma()
	r := rng.New(12)
	const trials = 300000
	hist := make([]int, 3)
	for i := 0; i < trials; i++ {
		f := population.NewFenwick(counts)
		hist[TwoChoices.Tick(r, f)]++
	}
	for i := 0; i < 3; i++ {
		a := v.Alpha(i)
		want := a*(1-gamma) + a*a
		got := float64(hist[i]) / trials
		se := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 6*se {
			t.Errorf("opinion %d: tick frequency %v, want %v (se %v)", i, got, want, se)
		}
	}
}

// TestTickLawVoter: the updating vertex ends with a uniform sample.
func TestTickLawVoter(t *testing.T) {
	counts := []int64{60, 40}
	r := rng.New(13)
	const trials = 200000
	hist := make([]int, 2)
	for i := 0; i < trials; i++ {
		f := population.NewFenwick(counts)
		hist[Voter.Tick(r, f)]++
	}
	got := float64(hist[0]) / trials
	if math.Abs(got-0.6) > 0.01 {
		t.Errorf("voter tick frequency %v, want 0.6", got)
	}
}

// TestGammaSubmartingaleAsync: averaged over ticks, γ must not
// decrease for async 3-Majority either (the drift analysis of the
// asynchronous companion paper CMRSS25).
func TestGammaSubmartingaleAsync(t *testing.T) {
	counts := []int64{40, 30, 20, 10}
	v := population.MustFromCounts(counts)
	gamma0 := v.Gamma()
	r := rng.New(14)
	const trials = 150000
	sum := 0.0
	for i := 0; i < trials; i++ {
		f := population.NewFenwick(counts)
		ThreeMajority.Tick(r, f)
		sum += f.Vector().Gamma()
	}
	if mean := sum / trials; mean < gamma0-1e-4 {
		t.Errorf("E[γ after tick] = %v below γ0 = %v", mean, gamma0)
	}
}
