package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestForEachTrialRunsEveryTrialOnce covers the scheduler the service
// layer shares: each trial index is handed to exactly one body call,
// for serial and parallel worker counts alike.
func TestForEachTrialRunsEveryTrialOnce(t *testing.T) {
	for _, parallelism := range []int{1, 3, 0, 100} {
		const trials = 57
		var calls [trials]atomic.Int32
		err := ForEachTrial(trials, parallelism, func(trial int) error {
			calls[trial].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		for i := range calls {
			if n := calls[i].Load(); n != 1 {
				t.Fatalf("parallelism %d: trial %d ran %d times", parallelism, i, n)
			}
		}
	}
}

// TestForEachTrialReturnsLowestIndexError pins deterministic error
// reporting: whichever worker finishes first, the caller sees the
// error of the lowest failing trial.
func TestForEachTrialReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("sentinel")
	for _, parallelism := range []int{1, 4} {
		err := ForEachTrial(40, parallelism, func(trial int) error {
			switch trial {
			case 7:
				return sentinel
			case 23:
				return fmt.Errorf("late error")
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("parallelism %d: got %v, want the trial-7 sentinel", parallelism, err)
		}
	}
}

func TestForEachTrialNoTrials(t *testing.T) {
	if err := ForEachTrial(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachTrial(-3, 1, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
