package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForEachTrialRunsEveryTrialOnce covers the scheduler the service
// layer shares: each trial index is handed to exactly one body call,
// for serial and parallel worker counts alike.
func TestForEachTrialRunsEveryTrialOnce(t *testing.T) {
	for _, parallelism := range []int{1, 3, 0, 100} {
		const trials = 57
		var calls [trials]atomic.Int32
		err := ForEachTrial(trials, parallelism, func(trial int) error {
			calls[trial].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		for i := range calls {
			if n := calls[i].Load(); n != 1 {
				t.Fatalf("parallelism %d: trial %d ran %d times", parallelism, i, n)
			}
		}
	}
}

// TestForEachTrialReturnsLowestIndexError pins deterministic error
// reporting: whichever worker finishes first, the caller sees the
// error of the lowest failing trial.
func TestForEachTrialReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("sentinel")
	for _, parallelism := range []int{1, 4} {
		err := ForEachTrial(40, parallelism, func(trial int) error {
			switch trial {
			case 7:
				return sentinel
			case 23:
				return fmt.Errorf("late error")
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("parallelism %d: got %v, want the trial-7 sentinel", parallelism, err)
		}
	}
}

func TestForEachTrialNoTrials(t *testing.T) {
	if err := ForEachTrial(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachTrial(-3, 1, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachTrialCtxRecoversPanics pins the panic-containment
// contract: a panicking trial becomes that trial's error (lowest index
// reported) and every other trial still runs.
func TestForEachTrialCtxRecoversPanics(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		const trials = 9
		var calls [trials]atomic.Int32
		err := ForEachTrialCtx(nil, trials, parallelism, func(trial int) error {
			calls[trial].Add(1)
			if trial == 3 || trial == 6 {
				panic(fmt.Sprintf("poisoned trial %d", trial))
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "trial 3 panicked") {
			t.Fatalf("parallelism %d: err = %v, want trial 3's panic", parallelism, err)
		}
		for i := range calls {
			if n := calls[i].Load(); n != 1 {
				t.Fatalf("parallelism %d: trial %d ran %d times", parallelism, i, n)
			}
		}
	}
}

// TestForEachTrialCtxStopsClaimingOnCancel: after the context fires no
// new trial starts; trials already claimed finish; the call reports
// ctx.Err().
func TestForEachTrialCtxStopsClaimingOnCancel(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		const trials = 1000
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForEachTrialCtx(ctx, trials, parallelism, func(trial int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", parallelism, err)
		}
		// At most the already-claimed trials (one per worker) run after
		// the cancel at trial 5.
		if n := ran.Load(); n < 5 || int(n) > 5+parallelism {
			t.Fatalf("parallelism %d: %d trials ran after cancel at 5", parallelism, n)
		}
	}
}

// TestForEachTrialCtxNilContextMatchesForEachTrial: with no context the
// ctx variant keeps the original run-to-completion semantics.
func TestForEachTrialCtxNilContextMatchesForEachTrial(t *testing.T) {
	const trials = 20
	var calls [trials]atomic.Int32
	sentinel := errors.New("sentinel")
	err := ForEachTrialCtx(nil, trials, 3, func(trial int) error {
		calls[trial].Add(1)
		if trial == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("trial %d ran %d times", i, n)
		}
	}
}
