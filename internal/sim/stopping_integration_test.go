package sim

import (
	"testing"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/theory"
)

// TestStoppingTimesAlongRealRun drives the Definition 4.4 tracker
// through full 3-Majority and 2-Choices runs from a biased two-leader
// configuration and checks the orderings the paper's proof outline
// (Figure 2) predicts along the winning path:
//
//   - the trailing leader becomes weak, then vanishes (τweak ≤ τvanish);
//   - the bias grows multiplicatively before the trailing leader dies
//     (τ↑_δ fires, and not after τvanish_J);
//   - γ eventually rises by a constant factor (τ↑_γ fires);
//   - the winner is the leading opinion (plurality condition).
func TestStoppingTimesAlongRealRun(t *testing.T) {
	for _, proto := range []core.Protocol{core.ThreeMajority{}, core.TwoChoices{}} {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			v0, err := population.TwoLeaders(50_000, 8, 0.5, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			st := theory.NewStoppingTimes(0, 1)
			st.XDelta = 0.2
			r := rng.New(77)
			res := core.Run(r, proto, v0, core.RunConfig{
				Observer: st.Observe,
			})
			if !res.Consensus {
				t.Fatal("no consensus")
			}
			if res.Winner != 0 {
				// With a 5% lead at n = 50000 the leading opinion wins
				// w.h.p.; a loss here is a drift bug, not noise.
				t.Fatalf("winner %d, want leading opinion 0", res.Winner)
			}
			if st.TauWeakJ == theory.Unset || st.TauVanishJ == theory.Unset {
				t.Fatalf("trailing leader never weak/vanished: %+v", st)
			}
			if st.TauWeakJ > st.TauVanishJ {
				t.Errorf("τweak_J (%d) after τvanish_J (%d)", st.TauWeakJ, st.TauVanishJ)
			}
			if st.TauUpDelta == theory.Unset {
				t.Error("bias never grew by (1+c↑_δ) despite initial lead")
			} else if st.TauUpDelta > st.TauVanishJ {
				t.Errorf("first bias growth (%d) after the rival died (%d)", st.TauUpDelta, st.TauVanishJ)
			}
			if st.TauUpGamma == theory.Unset {
				t.Error("γ never grew by (1+c↑_γ) on the way to consensus")
			}
			if st.TauAbsDelta == theory.Unset {
				t.Error("|δ| never reached 0.2 despite consensus on opinion 0")
			}
			if st.TauVanishI != theory.Unset {
				t.Error("winning opinion reported as vanished")
			}
		})
	}
}

// TestStoppingTimesGammaNeverDropsFar verifies Lemma 4.7 empirically
// along whole runs: starting from γ0 well above the threshold, τ↓_γ
// (a (1−c↓_γ) relative drop) should not fire on the way to consensus.
func TestStoppingTimesGammaNeverDropsFar(t *testing.T) {
	drops := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		v0, err := population.Geometric(20_000, 16, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		st := theory.NewStoppingTimes(0, 1)
		r := rng.New(rng.DeriveSeed(88, uint64(trial)))
		core.Run(r, core.ThreeMajority{}, v0, core.RunConfig{Observer: st.Observe})
		if st.TauDownGamma != theory.Unset {
			drops++
		}
	}
	if drops > 1 {
		t.Fatalf("γ dropped by c↓_γ in %d/%d runs; Lemma 4.7 says w.h.p. never", drops, trials)
	}
}
