package sim

import (
	"sync/atomic"
	"testing"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/rng"
)

func balancedInit(n int64, k int) func(int) *population.Vector {
	return func(int) *population.Vector { return population.Balanced(n, k) }
}

func TestRunManyBasics(t *testing.T) {
	spec := Spec{
		Protocol: core.ThreeMajority{},
		Init:     balancedInit(1000, 4),
		Trials:   8,
		Seed:     1,
	}
	results := RunMany(spec)
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Trial != i {
			t.Fatalf("result %d has trial %d", i, res.Trial)
		}
		if !res.Consensus {
			t.Fatalf("trial %d did not converge", i)
		}
		if res.Winner < 0 || res.Winner >= 4 {
			t.Fatalf("trial %d winner %d out of range", i, res.Winner)
		}
	}
	times, err := ConsensusTimes(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 8 {
		t.Fatalf("times = %v", times)
	}
}

func TestRunManyDeterministicAcrossParallelism(t *testing.T) {
	mk := func(par int) []TrialResult {
		return RunMany(Spec{
			Protocol:    core.TwoChoices{},
			Init:        balancedInit(500, 4),
			Trials:      6,
			Seed:        42,
			Parallelism: par,
		})
	}
	serial := mk(1)
	parallel := mk(4)
	for i := range serial {
		if serial[i].Rounds != parallel[i].Rounds || serial[i].Winner != parallel[i].Winner {
			t.Fatalf("trial %d differs across parallelism: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestRunManySeedSensitivity(t *testing.T) {
	a := RunMany(Spec{Protocol: core.ThreeMajority{}, Init: balancedInit(2000, 8), Trials: 4, Seed: 1})
	b := RunMany(Spec{Protocol: core.ThreeMajority{}, Init: balancedInit(2000, 8), Trials: 4, Seed: 2})
	same := true
	for i := range a {
		if a[i].Rounds != b[i].Rounds {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical round counts across all trials")
	}
}

func TestRunManyPanicsWithoutRequiredFields(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for missing fields")
		}
	}()
	RunMany(Spec{})
}

func TestRunManyDefaultsToOneTrial(t *testing.T) {
	results := RunMany(Spec{Protocol: core.ThreeMajority{}, Init: balancedInit(200, 2), Seed: 3})
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
}

func TestConsensusTimesFailsOnTruncatedTrial(t *testing.T) {
	results := RunMany(Spec{
		Protocol:  core.TwoChoices{},
		Init:      balancedInit(100000, 64),
		Trials:    2,
		Seed:      4,
		MaxRounds: 2,
	})
	if _, err := ConsensusTimes(results); err == nil {
		t.Fatal("expected error for non-converged trials")
	}
}

func TestWinnerFractions(t *testing.T) {
	results := []TrialResult{
		{Trial: 0, RunResult: core.RunResult{Consensus: true, Winner: 0}},
		{Trial: 1, RunResult: core.RunResult{Consensus: true, Winner: 0}},
		{Trial: 2, RunResult: core.RunResult{Consensus: true, Winner: 1}},
		{Trial: 3, RunResult: core.RunResult{Consensus: false, Winner: 2}},
	}
	fracs := WinnerFractions(results, 3)
	if fracs[0] != 2.0/3 || fracs[1] != 1.0/3 || fracs[2] != 0 {
		t.Fatalf("fracs = %v", fracs)
	}
	if CountConverged(results) != 3 {
		t.Fatal("CountConverged wrong")
	}
	empty := WinnerFractions(nil, 2)
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatal("empty fractions non-zero")
	}
}

func TestObservePerTrial(t *testing.T) {
	var calls int64
	RunMany(Spec{
		Protocol: core.ThreeMajority{},
		Init:     balancedInit(500, 4),
		Trials:   3,
		Seed:     5,
		Observe: func(trial int) func(int, *population.Vector) bool {
			return func(round int, v *population.Vector) bool {
				atomic.AddInt64(&calls, 1)
				return false
			}
		},
	})
	if calls == 0 {
		t.Fatal("observer never called")
	}
}

func TestCustomDoneThroughSpec(t *testing.T) {
	target := 0.5
	results := RunMany(Spec{
		Protocol: core.ThreeMajority{},
		Init:     balancedInit(10000, 50),
		Trials:   3,
		Seed:     6,
		Done:     func(v *population.Vector) bool { return v.Gamma() >= target },
	})
	for _, res := range results {
		if !res.Consensus {
			t.Fatal("gamma target not reached")
		}
	}
}

func TestTrajectoryRecords(t *testing.T) {
	tr := &Trajectory{}
	obs := tr.Observer()
	r := rng.New(7)
	v := population.Balanced(1000, 4)
	core.Run(r, core.ThreeMajority{}, v, core.RunConfig{Observer: obs})
	if len(tr.Rounds) < 2 {
		t.Fatalf("trajectory too short: %d", len(tr.Rounds))
	}
	if tr.Rounds[0] != 0 || tr.Gamma[0] != 0.25 {
		t.Fatalf("initial record wrong: round=%d γ=%v", tr.Rounds[0], tr.Gamma[0])
	}
	last := len(tr.Gamma) - 1
	if tr.Gamma[last] != 1 || tr.Live[last] != 1 || tr.MaxAlpha[last] != 1 {
		t.Fatalf("final record should be consensus: γ=%v live=%d max=%v",
			tr.Gamma[last], tr.Live[last], tr.MaxAlpha[last])
	}
	if tr.GammaHitTime(0.9) < 0 {
		t.Fatal("gamma hit time not found")
	}
	if tr.GammaHitTime(0.25) != 0 {
		t.Fatal("gamma hit time for initial value should be 0")
	}
	if tr.GammaHitTime(2) != -1 {
		t.Fatal("impossible threshold should give -1")
	}
}

func TestTrajectorySubsampling(t *testing.T) {
	tr := &Trajectory{Every: 5}
	obs := tr.Observer()
	v := population.Balanced(100, 2)
	for round := 0; round <= 20; round++ {
		obs(round, v)
	}
	if len(tr.Rounds) != 5 { // rounds 0,5,10,15,20
		t.Fatalf("recorded %d rounds: %v", len(tr.Rounds), tr.Rounds)
	}
}
