package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/rng"
)

// Spec describes a batch of independent trials of one dynamics.
type Spec struct {
	// Protocol is the dynamics to run. Required.
	Protocol core.Protocol
	// Init returns the initial configuration for a trial. Trials must
	// not share the returned Vector. Required.
	Init func(trial int) *population.Vector
	// Trials is the number of independent runs; it defaults to 1.
	Trials int
	// Seed is the base seed; trial i uses rng.DeriveSeed(Seed, i).
	Seed uint64
	// MaxRounds bounds each run (0 = core.DefaultMaxRounds).
	MaxRounds int
	// PostRound is forwarded to core.RunConfig (adversaries hook here).
	PostRound func(round int, r *rng.Rand, v *population.Vector)
	// Done is forwarded to core.RunConfig (custom stopping condition).
	Done func(v *population.Vector) bool
	// Observe, if non-nil, constructs a per-trial observer; it runs on
	// the worker goroutine of that trial.
	Observe func(trial int) func(round int, v *population.Vector) bool
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
}

// TrialResult is one trial's outcome.
type TrialResult struct {
	Trial int
	core.RunResult
}

// ForEachTrial is the deterministic trial scheduler shared by every
// execution mode (the count-space engine here, and the service layer's
// async/graph/gossip executors): it runs body(trial) for trial =
// 0..trials-1 across a pool of parallelism workers (<= 0 means
// GOMAXPROCS). Work is handed out by trial index and bodies must
// derive all randomness from that index (e.g. via rng.DeriveSeed), so
// the outcome of every trial — and anything the bodies write into
// per-trial slots — is identical for any worker count.
//
// All trials run even when some fail; the returned error is that of
// the lowest failing trial index, so error reporting is deterministic
// too. (Per-trial errors are config errors, surfaced long before any
// simulation work, so running the batch to completion costs nothing in
// practice.)
func ForEachTrial(trials, parallelism int, body func(trial int) error) error {
	if trials <= 0 {
		return nil
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	var firstErr error
	if workers == 1 {
		// Serial fast path: no goroutines, but the same
		// run-to-completion, lowest-index-error semantics.
		for trial := 0; trial < trials; trial++ {
			if err := body(trial); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, trials)
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				trial := int(atomic.AddInt64(&next, 1))
				if trial >= trials {
					return
				}
				errs[trial] = body(trial)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachTrialCtx is ForEachTrial with cooperative cancellation and
// per-trial panic containment — the scheduler variant the durable
// service layer drives: cancelling the context stops workers from
// *claiming* further trials (trials already claimed run to completion,
// so cancellation lands exactly at trial boundaries and every result
// that was produced is a complete, checkpointable trial), and a panic
// inside body is recovered into that trial's error instead of killing
// the process — a poisoned configuration fails one job, not the
// server.
//
// The error is the lowest failing trial index among the trials that
// ran (panics included), or ctx.Err() if the context was cancelled and
// no trial failed. A nil ctx never cancels.
func ForEachTrialCtx(ctx context.Context, trials, parallelism int, body func(trial int) error) error {
	if trials <= 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	guarded := func(trial int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("sim: trial %d panicked: %v", trial, p)
			}
		}()
		return body(trial)
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	var firstErr error
	if workers == 1 {
		for trial := 0; trial < trials; trial++ {
			if cancelled() {
				break
			}
			if err := guarded(trial); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr == nil && ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return firstErr
	}
	errs := make([]error, trials)
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					return
				}
				trial := int(atomic.AddInt64(&next, 1))
				if trial >= trials {
					return
				}
				errs[trial] = guarded(trial)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// ForEachTrialRangeCtx is the range-claiming variant of
// ForEachTrialCtx, built for batch executors that amortize per-config
// state across consecutive trials: each worker claims a contiguous
// range [lo, hi) of up to width trials at a time and runs
// body(lo, hi) once per claim. Bodies must derive all randomness from
// the absolute trial indices (e.g. rng.DeriveSeed per index), so —
// like the index scheduler — every trial's outcome is identical for
// any worker count and any width.
//
// Cancellation lands at range boundaries: a cancelled context stops
// workers from claiming further ranges, but a claimed range runs to
// completion (bodies are expected to check cancellation per trial
// themselves when ranges are long). A panic inside body is recovered
// into that range's error. The returned error is that of the
// lowest-starting failing range, or ctx.Err() if cancelled and no
// range failed.
func ForEachTrialRangeCtx(ctx context.Context, trials, parallelism, width int, body func(lo, hi int) error) error {
	if trials <= 0 {
		return nil
	}
	if width < 1 {
		width = 1
	}
	chunks := (trials + width - 1) / width
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	guarded := func(lo, hi int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("sim: trial range [%d, %d) panicked: %v", lo, hi, p)
			}
		}()
		return body(lo, hi)
	}
	span := func(chunk int) (lo, hi int) {
		lo = chunk * width
		hi = lo + width
		if hi > trials {
			hi = trials
		}
		return lo, hi
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	var firstErr error
	if workers == 1 {
		for chunk := 0; chunk < chunks; chunk++ {
			if cancelled() {
				break
			}
			lo, hi := span(chunk)
			if err := guarded(lo, hi); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr == nil && ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return firstErr
	}
	errs := make([]error, chunks)
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					return
				}
				chunk := int(atomic.AddInt64(&next, 1))
				if chunk >= chunks {
					return
				}
				lo, hi := span(chunk)
				errs[chunk] = guarded(lo, hi)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// RunMany executes the trials and returns the results indexed by
// trial. Trials are independent: trial i's stream depends only on
// (Seed, i), so results are reproducible regardless of parallelism.
func RunMany(spec Spec) []TrialResult {
	if spec.Protocol == nil || spec.Init == nil {
		panic("sim: Spec requires Protocol and Init")
	}
	trials := spec.Trials
	if trials <= 0 {
		trials = 1
	}
	results := make([]TrialResult, trials)
	ForEachTrial(trials, spec.Parallelism, func(trial int) error {
		r := rng.New(rng.DeriveSeed(spec.Seed, uint64(trial)))
		v := spec.Init(trial)
		cfg := core.RunConfig{
			MaxRounds: spec.MaxRounds,
			PostRound: spec.PostRound,
			Done:      spec.Done,
		}
		if spec.Observe != nil {
			cfg.Observer = spec.Observe(trial)
		}
		res := core.Run(r, spec.Protocol, v, cfg)
		results[trial] = TrialResult{Trial: trial, RunResult: res}
		return nil
	})
	return results
}

// ConsensusTimes extracts the round counts of the trials that reached
// the stopping condition; it errors if any trial failed to converge,
// since a truncated sample would silently bias time statistics.
func ConsensusTimes(results []TrialResult) ([]float64, error) {
	times := make([]float64, 0, len(results))
	for _, res := range results {
		if !res.Consensus {
			return nil, fmt.Errorf("sim: trial %d did not reach the stopping condition within %d rounds", res.Trial, res.Rounds)
		}
		times = append(times, float64(res.Rounds))
	}
	return times, nil
}

// WinnerFractions returns, for each opinion, the fraction of converged
// trials it won.
func WinnerFractions(results []TrialResult, k int) []float64 {
	fracs := make([]float64, k)
	converged := 0
	for _, res := range results {
		if res.Consensus {
			converged++
			if res.Winner >= 0 && res.Winner < k {
				fracs[res.Winner]++
			}
		}
	}
	if converged == 0 {
		return fracs
	}
	for i := range fracs {
		fracs[i] /= float64(converged)
	}
	return fracs
}

// CountConverged returns how many trials reached the stopping condition.
func CountConverged(results []TrialResult) int {
	n := 0
	for _, res := range results {
		if res.Consensus {
			n++
		}
	}
	return n
}

// Trajectory records per-round scalar summaries of one run. Attach
// via Spec.Observe (or core.RunConfig.Observer) and read the slices
// afterwards; entry t corresponds to round t (entry 0 is the initial
// configuration). Recording is cheap relative to the protocol step:
// Gamma and Live read the Vector's O(1) incremental aggregates and
// only MaxOpinion scans, at O(live).
type Trajectory struct {
	// Every controls subsampling: a round is recorded when
	// round % Every == 0 (Every <= 1 records all rounds). The final
	// recorded round is whatever matched last, so pair coarse Every
	// values with hitting-time logic, not last-element reads.
	Every int

	Rounds   []int
	Gamma    []float64
	Live     []int
	MaxAlpha []float64
}

// Observer returns an observer function that appends to the trajectory
// and never stops the run.
func (tr *Trajectory) Observer() func(round int, v *population.Vector) bool {
	every := tr.Every
	if every < 1 {
		every = 1
	}
	return func(round int, v *population.Vector) bool {
		if round%every != 0 {
			return false
		}
		tr.Rounds = append(tr.Rounds, round)
		tr.Gamma = append(tr.Gamma, v.Gamma())
		tr.Live = append(tr.Live, v.Live())
		_, c := v.MaxOpinion()
		tr.MaxAlpha = append(tr.MaxAlpha, float64(c)/float64(v.N()))
		return false
	}
}

// GammaHitTime returns the first recorded round where γ reached the
// threshold, or -1 if it never did.
func (tr *Trajectory) GammaHitTime(threshold float64) int {
	for i, g := range tr.Gamma {
		if g >= threshold {
			return tr.Rounds[i]
		}
	}
	return -1
}
