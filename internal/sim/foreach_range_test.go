package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForEachTrialRangeCoversEveryTrialOnce: for every (parallelism,
// width) shape, the claimed ranges partition [0, trials) — each index
// visited exactly once, every range non-empty, contiguous, and at most
// width wide.
func TestForEachTrialRangeCoversEveryTrialOnce(t *testing.T) {
	const trials = 57
	for _, parallelism := range []int{1, 3, 0, 100} {
		for _, width := range []int{1, 4, 8, 57, 1000, 0, -2} {
			var calls [trials]atomic.Int32
			err := ForEachTrialRangeCtx(nil, trials, parallelism, width, func(lo, hi int) error {
				if lo >= hi {
					return fmt.Errorf("empty range [%d, %d)", lo, hi)
				}
				if w := max(width, 1); hi-lo > w {
					return fmt.Errorf("range [%d, %d) wider than %d", lo, hi, w)
				}
				for i := lo; i < hi; i++ {
					calls[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("parallelism %d width %d: %v", parallelism, width, err)
			}
			for i := range calls {
				if n := calls[i].Load(); n != 1 {
					t.Fatalf("parallelism %d width %d: trial %d ran %d times", parallelism, width, i, n)
				}
			}
		}
	}
}

// TestForEachTrialRangeReturnsLowestRangeError pins deterministic
// error reporting across schedules: the caller sees the error of the
// lowest-starting failing range.
func TestForEachTrialRangeReturnsLowestRangeError(t *testing.T) {
	sentinel := errors.New("sentinel")
	for _, parallelism := range []int{1, 4} {
		err := ForEachTrialRangeCtx(nil, 40, parallelism, 4, func(lo, hi int) error {
			switch lo {
			case 8:
				return sentinel
			case 24:
				return errors.New("late error")
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("parallelism %d: got %v, want the range-8 sentinel", parallelism, err)
		}
	}
}

// TestForEachTrialRangePanicBecomesError: a panicking body is
// recovered into that range's error instead of crashing the scheduler.
func TestForEachTrialRangePanicBecomesError(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		err := ForEachTrialRangeCtx(nil, 20, parallelism, 5, func(lo, hi int) error {
			if lo == 10 {
				panic("boom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "[10, 15) panicked: boom") {
			t.Fatalf("parallelism %d: got %v, want the recovered panic", parallelism, err)
		}
	}
}

// TestForEachTrialRangeCancellation: a cancelled context stops further
// claims and surfaces ctx.Err() when no range failed.
func TestForEachTrialRangeCancellation(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForEachTrialRangeCtx(ctx, 1000, parallelism, 2, func(lo, hi int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: got %v, want context.Canceled", parallelism, err)
		}
		if n := ran.Load(); n >= 500 {
			t.Fatalf("parallelism %d: %d ranges ran after cancellation", parallelism, n)
		}
	}
}

// TestForEachTrialRangeNoTrials: empty inputs run nothing.
func TestForEachTrialRangeNoTrials(t *testing.T) {
	body := func(int, int) error { return errors.New("must not run") }
	if err := ForEachTrialRangeCtx(nil, 0, 4, 8, body); err != nil {
		t.Fatal(err)
	}
	if err := ForEachTrialRangeCtx(nil, -3, 1, 8, body); err != nil {
		t.Fatal(err)
	}
}
