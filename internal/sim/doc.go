// Package sim orchestrates repeated dynamics runs: deterministic
// per-trial seeding, parallel execution across a worker pool, and the
// observers/recorders the experiments use to extract trajectories and
// stopping times.
//
// The contract above is owned by DESIGN.md §"The unified Experiment
// API".
package sim
