package rng

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Reseed did not restart stream at %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square uniformity over 8 buckets; 80k draws. With a fixed
	// seed this is deterministic.
	r := New(99)
	const buckets, draws = 8, 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 7 degrees of freedom; 0.999 quantile is ~24.3.
	if chi2 > 24.3 {
		t.Fatalf("chi2 = %.2f too large; counts = %v", chi2, counts)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkDiverges(t *testing.T) {
	r := New(8)
	f := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("fork produced %d identical outputs of 100", same)
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[uint64]uint64)
	for base := uint64(0); base < 4; base++ {
		for idx := uint64(0); idx < 1000; idx++ {
			s := DeriveSeed(base, idx)
			if prev, ok := seen[s]; ok {
				t.Fatalf("DeriveSeed collision: %d for (%d,%d) and earlier %d", s, base, idx, prev)
			}
			seen[s] = base<<32 | idx
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(21)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want about 1", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(22)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp() = %v negative", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want about 1", mean)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(23)
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency = %v", p, got)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
