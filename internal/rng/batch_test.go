package rng

import (
	"math"
	"testing"
)

// scalarBinomialEach is the reference BinomialEach: the scalar calls
// the batched form promises to be draw-identical to.
func scalarBinomialEach(r *Rand, counts []int64, p float64, out []int64) int64 {
	var total int64
	for j, n := range counts {
		out[j] = r.Binomial(n, p)
		total += out[j]
	}
	return total
}

// assertBinomialEachMatches runs both forms from the same seed and
// requires equal outputs, equal totals and an equal generator state
// afterwards (same number of stream draws consumed).
func assertBinomialEachMatches(t *testing.T, counts []int64, p float64, seed uint64) {
	t.Helper()
	batched := New(seed)
	scalar := New(seed)
	gotOut := make([]int64, len(counts))
	wantOut := make([]int64, len(counts))
	gotTotal := batched.BinomialEach(counts, p, gotOut)
	wantTotal := scalarBinomialEach(scalar, counts, p, wantOut)
	for j := range counts {
		if gotOut[j] != wantOut[j] {
			t.Fatalf("BinomialEach(%v, %v)[%d] = %d, scalar %d", counts, p, j, gotOut[j], wantOut[j])
		}
	}
	if gotTotal != wantTotal {
		t.Fatalf("BinomialEach(%v, %v) total = %d, scalar %d", counts, p, gotTotal, wantTotal)
	}
	if g, w := batched.Uint64(), scalar.Uint64(); g != w {
		t.Fatalf("BinomialEach(%v, %v) left a diverged generator state", counts, p)
	}
}

func TestBinomialEachMatchesScalarStream(t *testing.T) {
	cases := []struct {
		name   string
		counts []int64
		p      float64
	}{
		{"empty", nil, 0.3},
		{"single", []int64{10}, 0.5},
		{"zeros-interleaved", []int64{0, 5, 0, 0, 12, 0}, 0.25},
		{"all-zero", []int64{0, 0, 0}, 0.7},
		{"binv-range", []int64{1, 2, 3, 40, 7}, 0.1},
		{"btpe-range", []int64{100_000, 250_000, 1}, 0.4},
		{"mixed-regimes", []int64{1, 100_000, 0, 30, 1_000_000}, 0.03},
		{"reflected", []int64{9, 1000, 0, 50_000}, 0.9},
		{"p-zero", []int64{5, 0, 9}, 0},
		{"p-negative", []int64{5, 9}, -0.5},
		{"p-one", []int64{5, 0, 9}, 1},
		{"p-above-one", []int64{5, 9}, 1.5},
		{"p-tiny", []int64{1 << 40}, 1e-12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				assertBinomialEachMatches(t, tc.counts, tc.p, seed^0xc0ffee)
			}
		})
	}
}

func TestBinomialEachNegativeCountPanics(t *testing.T) {
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BinomialEach with a negative count, p=%v: no panic", p)
				}
			}()
			r := New(1)
			out := make([]int64, 2)
			r.BinomialEach([]int64{3, -1}, p, out)
		}()
	}
}

// FuzzBinomialEachMatchesScalar is the draw-identity property under
// arbitrary count vectors, probabilities and seeds. Count magnitudes
// cycle through multipliers so the same input exercises the BINV, BTPE
// and reflected regimes side by side.
func FuzzBinomialEachMatchesScalar(f *testing.F) {
	f.Add([]byte{10, 0, 200}, 0.3, uint64(1))
	f.Add([]byte{1}, 0.999, uint64(2))
	f.Add([]byte{255, 255, 255, 255}, 0.5, uint64(3))
	f.Add([]byte{0, 0}, 0.0, uint64(4))
	f.Add([]byte{17, 4}, 1e-9, uint64(5))
	f.Fuzz(func(t *testing.T, raw []byte, p float64, seed uint64) {
		if math.IsNaN(p) || len(raw) > 64 {
			return
		}
		multipliers := []int64{1, 37, 1_001, 65_537}
		counts := make([]int64, len(raw))
		for i, b := range raw {
			counts[i] = int64(b) * multipliers[i%len(multipliers)]
		}
		assertBinomialEachMatches(t, counts, p, seed)
	})
}
