// Package rng provides the random-number substrate for the plurality
// library: a fast, reproducible xoshiro256++ generator plus the exact
// discrete samplers (binomial, multinomial, categorical) that the
// counts-based consensus-dynamics engine in internal/core relies on.
//
// The package deliberately does not use math/rand: the engine needs
// (a) reproducible streams that are stable across platforms and Go
// releases, (b) an exact binomial sampler (math/rand has none), and
// (c) cheap derivation of statistically independent sub-streams for
// parallel trials.
//
// The contract above is owned by DESIGN.md §"The sparse live-opinion
// engine".
package rng
