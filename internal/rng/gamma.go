package rng

import "math"

// Gamma returns a sample from the Gamma distribution with the given
// shape and unit scale, using the Marsaglia–Tsang squeeze method
// (exact accept/reject) with the standard boosting transform for
// shape < 1. It panics for non-positive shape.
func (r *Rand) Gamma(shape float64) float64 {
	if shape <= 0 || math.IsNaN(shape) {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: G(a) = G(a+1) · U^{1/a}.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.gammaMT(shape+1) * math.Pow(u, 1/shape)
	}
	return r.gammaMT(shape)
}

// gammaMT samples Gamma(shape) for shape >= 1.
func (r *Rand) gammaMT(shape float64) float64 {
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with one sample from the symmetric
// Dirichlet(concentration, ..., concentration) distribution over the
// simplex of dimension len(out). Small concentrations give spiky
// (high-γ) fraction vectors, large ones near-balanced vectors.
func (r *Rand) Dirichlet(concentration float64, out []float64) {
	if len(out) == 0 {
		panic("rng: Dirichlet with empty output")
	}
	total := 0.0
	for i := range out {
		out[i] = r.Gamma(concentration)
		total += out[i]
	}
	if total <= 0 {
		// Astronomically unlikely underflow for tiny concentrations;
		// fall back to a uniform corner.
		out[r.Intn(len(out))] = 1
		total = 1
	}
	for i := range out {
		out[i] /= total
	}
}
