package rng

import (
	"math"
	"math/bits"
)

// Rand is a xoshiro256++ pseudo-random generator. It is NOT safe for
// concurrent use; create one Rand per goroutine (see Fork and New).
//
// The zero value is not usable; construct with New.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x by the splitmix64 update and returns the next
// output. It is used to expand seeds into full xoshiro state and to
// derive independent sub-stream seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed. Distinct
// seeds yield (for all practical purposes) independent streams.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator state deterministically from seed.
func (r *Rand) Reseed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro must not be seeded with the all-zero state; splitmix64 of
	// any seed cannot produce four zero outputs, but guard regardless.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint64n returns a uniformly random integer in [0, n). It panics if
// n == 0. The implementation is Lemire's nearly-divisionless method
// with rejection, so the result is exactly uniform.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n without overflow
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniformly random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Float64 returns a uniformly random float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Fork derives a new generator whose stream is independent of the
// receiver's future output. It is the supported way to hand independent
// generators to worker goroutines.
func (r *Rand) Fork() *Rand {
	x := r.Uint64()
	y := r.Uint64()
	seed := x
	_ = splitmix64(&seed)
	return New(seed ^ rotl(y, 32))
}

// DeriveSeed maps (base, index) to a well-mixed 64-bit seed, so that
// parallel trials i = 0, 1, ... get reproducible independent streams.
func DeriveSeed(base, index uint64) uint64 {
	x := base
	a := splitmix64(&x)
	x = index ^ rotl(a, 17)
	return splitmix64(&x)
}

// Shuffle pseudo-randomly permutes the order of n elements using the
// Fisher–Yates algorithm; swap exchanges elements i and j.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. It is used only by test/statistics helpers, never by the
// exact dynamics engine.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponential variate with rate 1.
func (r *Rand) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
