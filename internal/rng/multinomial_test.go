package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMultinomialSumsToN(t *testing.T) {
	r := New(1)
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	out := make([]int64, len(probs))
	for _, n := range []int64{0, 1, 5, 1000, 1 << 30} {
		r.Multinomial(n, probs, out)
		var sum int64
		for _, c := range out {
			if c < 0 {
				t.Fatalf("negative count %d for n=%d", c, n)
			}
			sum += c
		}
		if sum != n {
			t.Fatalf("counts sum to %d, want %d", sum, n)
		}
	}
}

func TestMultinomialSumProperty(t *testing.T) {
	r := New(2)
	f := func(n uint16, rawProbs []float64) bool {
		if len(rawProbs) == 0 {
			return true
		}
		probs := make([]float64, len(rawProbs))
		total := 0.0
		for i, p := range rawProbs {
			probs[i] = math.Abs(p)
			if math.IsNaN(probs[i]) || math.IsInf(probs[i], 0) {
				probs[i] = 0
			}
			total += probs[i]
		}
		if total <= 0 {
			probs[0] = 1
		}
		out := make([]int64, len(probs))
		r.Multinomial(int64(n), probs, out)
		var sum int64
		for _, c := range out {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultinomialZeroProbGetsZero(t *testing.T) {
	r := New(3)
	probs := []float64{0.5, 0, 0.5, 0}
	out := make([]int64, 4)
	for i := 0; i < 100; i++ {
		r.Multinomial(1000, probs, out)
		if out[1] != 0 || out[3] != 0 {
			t.Fatalf("zero-probability category received mass: %v", out)
		}
	}
}

func TestMultinomialSingleCategory(t *testing.T) {
	r := New(4)
	out := make([]int64, 1)
	r.Multinomial(42, []float64{3.7}, out)
	if out[0] != 42 {
		t.Fatalf("single category got %d, want 42", out[0])
	}
}

func TestMultinomialUnnormalizedWeights(t *testing.T) {
	// Weights {2, 6} should behave like probabilities {0.25, 0.75}.
	r := New(5)
	out := make([]int64, 2)
	const n, trials = 1000, 2000
	total := 0.0
	for i := 0; i < trials; i++ {
		r.Multinomial(n, []float64{2, 6}, out)
		total += float64(out[0])
	}
	mean := total / trials
	want := 0.25 * n
	se := math.Sqrt(0.25 * 0.75 * n / trials)
	if math.Abs(mean-want) > 8*se {
		t.Fatalf("category-0 mean = %v, want %v", mean, want)
	}
}

func TestMultinomialMarginalMoments(t *testing.T) {
	r := New(6)
	probs := []float64{0.05, 0.15, 0.3, 0.5}
	const n, trials = 10000, 5000
	out := make([]int64, len(probs))
	sums := make([]float64, len(probs))
	sumSqs := make([]float64, len(probs))
	for i := 0; i < trials; i++ {
		r.Multinomial(n, probs, out)
		for j, c := range out {
			sums[j] += float64(c)
			sumSqs[j] += float64(c) * float64(c)
		}
	}
	for j, p := range probs {
		mean := sums[j] / trials
		wantMean := float64(n) * p
		variance := sumSqs[j]/trials - mean*mean
		wantVar := float64(n) * p * (1 - p)
		seMean := math.Sqrt(wantVar / trials)
		if math.Abs(mean-wantMean) > 6*seMean {
			t.Errorf("category %d mean = %v, want %v", j, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("category %d variance = %v, want %v", j, variance, wantVar)
		}
	}
}

func TestMultinomialPanics(t *testing.T) {
	r := New(7)
	t.Run("len mismatch", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on length mismatch")
			}
		}()
		r.Multinomial(10, []float64{1, 1}, make([]int64, 3))
	})
	t.Run("zero mass", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on zero total probability")
			}
		}()
		r.Multinomial(10, []float64{0, 0}, make([]int64, 2))
	})
}

func TestAliasMatchesWeights(t *testing.T) {
	r := New(8)
	weights := []float64{1, 0, 3, 6}
	a := NewAlias(weights)
	if a.K() != 4 {
		t.Fatalf("K = %d, want 4", a.K())
	}
	const trials = 200000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	total := 10.0
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %v, want %v", i, got, want)
		}
	}
}

func TestAliasSingle(t *testing.T) {
	a := NewAlias([]float64{2.5})
	r := New(9)
	for i := 0; i < 50; i++ {
		if got := a.Sample(r); got != 0 {
			t.Fatalf("Sample = %d, want 0", got)
		}
	}
}

func TestAliasPanics(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on empty weights")
			}
		}()
		NewAlias(nil)
	})
	t.Run("all zero", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on all-zero weights")
			}
		}()
		NewAlias([]float64{0, 0})
	})
}

func TestAliasManyCategories(t *testing.T) {
	// Uniform over 1000 categories; spot-check frequency bounds.
	k := 1000
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 1
	}
	a := NewAlias(weights)
	r := New(10)
	counts := make([]int, k)
	const trials = 500000
	for i := 0; i < trials; i++ {
		counts[a.Sample(r)]++
	}
	want := float64(trials) / float64(k)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("category %d count %d deviates from %v", i, c, want)
		}
	}
}

func BenchmarkMultinomialK100(b *testing.B) {
	r := New(1)
	probs := make([]float64, 100)
	for i := range probs {
		probs[i] = float64(i + 1)
	}
	out := make([]int64, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Multinomial(1_000_000, probs, out)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 1024)
	for i := range weights {
		weights[i] = float64(i%7 + 1)
	}
	a := NewAlias(weights)
	r := New(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += a.Sample(r)
	}
	_ = sink
}
