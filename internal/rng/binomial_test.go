package rng

import (
	"math"
	"testing"
)

func TestBinomialEdgeCases(t *testing.T) {
	r := New(1)
	cases := []struct {
		n    int64
		p    float64
		want int64
	}{
		{0, 0.5, 0},
		{10, 0, 0},
		{10, -0.5, 0},
		{10, 1, 10},
		{10, 1.5, 10},
		{1 << 40, 0, 0},
		{1 << 40, 1, 1 << 40},
	}
	for _, c := range cases {
		if got := r.Binomial(c.n, c.p); got != c.want {
			t.Errorf("Binomial(%d, %v) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

func TestBinomialPanicsOnNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, 0.5) did not panic")
		}
	}()
	New(1).Binomial(-1, 0.5)
}

func TestBinomialSupport(t *testing.T) {
	r := New(2)
	for _, c := range []struct {
		n int64
		p float64
	}{
		{1, 0.5}, {7, 0.2}, {100, 0.01}, {100, 0.99},
		{1000, 0.5}, {1000000, 0.4}, {1000000, 1e-7},
	} {
		for i := 0; i < 300; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d, %v) = %d out of support", c.n, c.p, v)
			}
		}
	}
}

// TestBinomialMoments verifies mean and variance across both the BINV
// regime (np < 30) and the BTPE regime (np >= 30), and across the
// p <= 0.5 / p > 0.5 symmetry split.
func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		name   string
		n      int64
		p      float64
		trials int
	}{
		{"binv_tiny", 10, 0.3, 200000},
		{"binv_moderate", 500, 0.02, 200000},
		{"binv_halfsym", 10, 0.7, 200000},
		{"btpe_small", 100, 0.5, 200000},
		{"btpe_large", 100000, 0.3, 50000},
		{"btpe_sym", 100000, 0.7, 50000},
		{"btpe_boundary", 60, 0.5, 200000}, // np = 30 exactly at cutoff
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := New(1234)
			mean := float64(c.n) * c.p
			variance := mean * (1 - c.p)
			var sum, sumSq float64
			for i := 0; i < c.trials; i++ {
				v := float64(r.Binomial(c.n, c.p))
				sum += v
				sumSq += v * v
			}
			gotMean := sum / float64(c.trials)
			gotVar := sumSq/float64(c.trials) - gotMean*gotMean
			// Allow 6 standard errors on the mean.
			seMean := math.Sqrt(variance / float64(c.trials))
			if math.Abs(gotMean-mean) > 6*seMean+1e-9 {
				t.Errorf("mean = %v, want %v (±%v)", gotMean, mean, 6*seMean)
			}
			if math.Abs(gotVar-variance) > 0.1*variance+1e-9 {
				t.Errorf("variance = %v, want %v", gotVar, variance)
			}
		})
	}
}

// TestBinomialChiSquareBINV compares empirical frequencies against the
// exact pmf in the inversion regime.
func TestBinomialChiSquareBINV(t *testing.T) {
	r := New(77)
	const n, p, trials = 12, 0.35, 120000
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		counts[r.Binomial(n, p)]++
	}
	chi2, df := binomialChi2(counts, n, p, trials)
	// 0.999 quantiles of chi-square for df up to 13 are all below 35.
	if chi2 > 35 {
		t.Fatalf("chi2 = %.2f (df=%d) too large; counts = %v", chi2, df, counts)
	}
}

// TestBinomialChiSquareBTPE compares empirical bucket frequencies
// against the exact pmf in the rejection regime, bucketing the tails.
func TestBinomialChiSquareBTPE(t *testing.T) {
	r := New(78)
	const n, p, trials = 150, 0.4, 120000
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		counts[r.Binomial(n, p)]++
	}
	// Bucket [lo, hi] around the mean, tails merged.
	lo, hi := 40, 80
	buckets := make([]int, hi-lo+3)
	expected := make([]float64, hi-lo+3)
	pmf := exactBinomialPMF(n, p)
	for x := 0; x <= n; x++ {
		idx := 0
		switch {
		case x < lo:
			idx = 0
		case x > hi:
			idx = len(buckets) - 1
		default:
			idx = x - lo + 1
		}
		buckets[idx] += counts[x]
		expected[idx] += pmf[x] * trials
	}
	chi2 := 0.0
	df := 0
	for i := range buckets {
		if expected[i] < 5 {
			continue
		}
		d := float64(buckets[i]) - expected[i]
		chi2 += d * d / expected[i]
		df++
	}
	// Generous threshold: 0.9999 quantile for ~43 df is about 80.
	if chi2 > 90 {
		t.Fatalf("chi2 = %.2f over %d cells too large", chi2, df)
	}
}

func binomialChi2(counts []int, n int64, p float64, trials int) (float64, int) {
	pmf := exactBinomialPMF(n, p)
	chi2 := 0.0
	df := 0
	for x, c := range counts {
		exp := pmf[x] * float64(trials)
		if exp < 5 {
			continue
		}
		d := float64(c) - exp
		chi2 += d * d / exp
		df++
	}
	return chi2, df - 1
}

// exactBinomialPMF computes the pmf by the stable log recurrence.
func exactBinomialPMF(n int64, p float64) []float64 {
	pmf := make([]float64, n+1)
	logp, logq := math.Log(p), math.Log(1-p)
	logC := 0.0 // log C(n, 0)
	for x := int64(0); x <= n; x++ {
		if x > 0 {
			logC += math.Log(float64(n-x+1)) - math.Log(float64(x))
		}
		pmf[x] = math.Exp(logC + float64(x)*logp + float64(n-x)*logq)
	}
	return pmf
}

// TestBinomialLargeNSanity exercises n big enough that naive Bernoulli
// summation would be infeasible, checking normalized deviation.
func TestBinomialLargeNSanity(t *testing.T) {
	r := New(5)
	const n, p = int64(1_000_000_000), 0.25
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	for i := 0; i < 200; i++ {
		v := float64(r.Binomial(n, p))
		if math.Abs(v-mean) > 8*sd {
			t.Fatalf("Binomial(%d,%v) = %v is %v sds from mean", n, p, v, math.Abs(v-mean)/sd)
		}
	}
}

func BenchmarkBinomialBINV(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Binomial(1000, 0.01)
	}
	_ = sink
}

func BenchmarkBinomialBTPE(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Binomial(1_000_000, 0.3)
	}
	_ = sink
}
