package rng

import "math"

// binvCutoff is the n*min(p,1-p) threshold below which the inversion
// algorithm (BINV) is used; above it the BTPE rejection algorithm is
// used. Kachitvichyanukul & Schmeiser recommend 30; with this
// package's multiplicative density test making BTPE iterations cheap,
// 15 measured fastest on the engine's conditional-multinomial
// workload (see the BenchmarkBinomialNp* regime benches).
const binvCutoff = 15

// Binomial returns an exact sample from the Binomial(n, p) distribution:
// the number of successes in n independent trials of probability p.
//
// The sampler is exact (not a normal approximation): it uses the BINV
// inversion algorithm when n*min(p,1-p) < binvCutoff and a BTPE-style
// accept/reject algorithm (Kachitvichyanukul & Schmeiser, 1988)
// otherwise. Values of p outside [0, 1] are clamped. Panics if n < 0.
func (r *Rand) Binomial(n int64, p float64) int64 {
	switch {
	case n < 0:
		panic("rng: Binomial with n < 0")
	case n == 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	if p > 0.5 {
		return n - r.binomialSmallP(n, 1-p)
	}
	return r.binomialSmallP(n, p)
}

// binomialSmallP samples Binomial(n, p) for 0 < p <= 0.5, n >= 1.
func (r *Rand) binomialSmallP(n int64, p float64) int64 {
	if float64(n)*p < binvCutoff {
		return r.binomialBINV(n, p)
	}
	return r.binomialBTPE(n, p)
}

// binomialBINV samples via sequential inversion of the CDF, walking up
// from 0 using the recurrence f(x+1) = f(x) * (n-x)/(x+1) * p/q.
// Requires n*p < binvCutoff so that q^n does not underflow.
func (r *Rand) binomialBINV(n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	f := math.Exp(float64(n) * math.Log1p(-p)) // q^n; safe: n*p < cutoff => exponent > -30
	for {
		u := r.Float64()
		fx := f
		var x int64
		for {
			if u < fx {
				return x
			}
			u -= fx
			x++
			if x > n {
				break // numeric leakage beyond the support; redraw
			}
			fx *= a/float64(x) - s
		}
	}
}

// binomialBTPE samples via the BTPE algorithm (Binomial, Triangle,
// Parallelogram, Exponential): a piecewise-majorizing accept/reject
// scheme with squeeze steps. The final inconclusive-squeeze test
// evaluates the exact density ratio multiplicatively (see
// densityRatioAccept), so the sampler is exact up to float64 rounding.
// Requires 0 < p <= 0.5, n*p >= binvCutoff.
func (r *Rand) binomialBTPE(n int64, p float64) int64 {
	var (
		nf  = float64(n)
		q   = 1 - p
		npq = nf * p * q
		fm  = nf*p + p
		m   = math.Floor(fm) // mode of the distribution
	)
	p1 := math.Floor(2.195*math.Sqrt(npq)-4.6*q) + 0.5
	xm := m + 0.5
	xl := xm - p1
	xr := xm + p1
	c := 0.134 + 20.5/(15.3+m)
	al := (fm - xl) / (fm - xl*p)
	laml := al * (1 + 0.5*al)
	ar := (xr - fm) / (xr * q)
	lamr := ar * (1 + 0.5*ar)
	p2 := p1 * (1 + 2*c)
	p3 := p2 + c/laml
	p4 := p3 + c/lamr

	for {
		var y float64
		u := r.Float64() * p4
		v := r.Float64()
		switch {
		case u <= p1:
			// Triangle region: accept immediately.
			y = math.Floor(xm - p1*v + u)
			return clampToRange(y, n)
		case u <= p2:
			// Parallelogram region.
			x := xl + (u-p1)/c
			v = v*c + 1 - math.Abs(m-x+0.5)/p1
			if v > 1 {
				continue
			}
			y = math.Floor(x)
		case u <= p3:
			// Left exponential tail.
			y = math.Floor(xl + math.Log(v)/laml)
			if y < 0 {
				continue
			}
			v *= (u - p2) * laml
		default:
			// Right exponential tail.
			y = math.Floor(xr - math.Log(v)/lamr)
			if y > nf {
				continue
			}
			v *= (u - p3) * lamr
		}

		k := math.Abs(y - m)
		if k > 20 && k < npq/2-1 {
			// Squeeze: quick accept / quick reject via quadratic bounds
			// on log(f(y)/f(m)).
			rho := (k / npq) * ((k*(k/3+0.625)+1.0/6)/npq + 0.5)
			t := -k * k / (2 * npq)
			a := math.Log(v)
			if a < t-rho {
				return clampToRange(y, n)
			}
			if a > t+rho {
				continue
			}
		}

		// Exact test: accept iff v <= f(y)/f(m), evaluated by the
		// recurrence f(x+1)/f(x) = (a/(x+1) - s) multiplicatively —
		// each factor is well-scaled around 1, so the running product
		// stays in float64 range over the |y−m| ≲ √npq span the sampler
		// proposes, and the per-term math.Log of the log-space
		// formulation is avoided on this hot path.
		if densityRatioAccept(nf, p, q, m, y, v) {
			return clampToRange(y, n)
		}
	}
}

// densityRatioAccept reports whether v <= f(y)/f(m) for the
// Binomial(n, p) pmf f with mode m, using the positive-factor
// recurrence f(x)/f(x-1) = a/x - s with s = p/q and a = (n+1)s. The
// ratio side that would need a division instead scales v, so the test
// needs no log or division: f(y)/f(m) ∈ (0, 1], and a product
// underflowing to 0 (or a rounding-negative factor in the far tail)
// only ever rejects, which is the correct limit.
func densityRatioAccept(nf, p, q, m, y, v float64) bool {
	s := p / q
	a := s * (nf + 1)
	switch {
	case m < y:
		ratio := 1.0
		for i := m + 1; i <= y; i++ {
			ratio *= a/i - s
		}
		return v <= ratio
	case m > y:
		// f(y)/f(m) = 1 / Π_{i=y+1..m} (a/i − s); fold the product into
		// v (overflow to +Inf rejects, as the true ratio underflows).
		for i := y + 1; i <= m; i++ {
			v *= a/i - s
		}
		return v <= 1
	default:
		return v <= 1
	}
}

// clampToRange converts the accepted float sample to int64, guarding
// against floating-point edge effects at the boundaries of the support.
func clampToRange(y float64, n int64) int64 {
	if y < 0 {
		return 0
	}
	if v := int64(y); v <= n {
		return v
	}
	return n
}
