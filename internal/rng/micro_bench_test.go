package rng

import "testing"

// Binomial microbenchmarks across the n·p regimes the conditional
// multinomial chain actually hits: the sparse engine's per-category
// draws have n·p equal to the round's trials-per-live-opinion ratio,
// so these pin the BINV/BTPE crossover and catch per-draw regressions.

func benchBinomial(b *testing.B, n int64, p float64) {
	r := New(7)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Binomial(n, p)
	}
	_ = sink
}

func BenchmarkBinomialNp1(b *testing.B)   { benchBinomial(b, 100_000, 1e-5) }
func BenchmarkBinomialNp6(b *testing.B)   { benchBinomial(b, 60_000, 1e-4) }
func BenchmarkBinomialNp12(b *testing.B)  { benchBinomial(b, 40_000, 3e-4) }
func BenchmarkBinomialNp25(b *testing.B)  { benchBinomial(b, 25_000, 1e-3) }
func BenchmarkBinomialNp100(b *testing.B) { benchBinomial(b, 10_000, 1e-2) }
func BenchmarkBinomialHalf(b *testing.B)  { benchBinomial(b, 1000, 0.4) }
