package rng

import (
	"math"
	"testing"
)

// FuzzBinomialSupport: for arbitrary (n, p, seed), samples must stay
// in [0, n] — across the BINV/BTPE split, the p > 1/2 reflection, and
// degenerate p.
func FuzzBinomialSupport(f *testing.F) {
	f.Add(uint32(10), 0.5, uint64(1))
	f.Add(uint32(1000), 0.01, uint64(2))
	f.Add(uint32(1_000_000), 0.999, uint64(3))
	f.Add(uint32(0), 0.5, uint64(4))
	f.Add(uint32(59), 0.5, uint64(5))  // just below the BTPE cutoff
	f.Add(uint32(61), 0.5, uint64(6))  // just above the BTPE cutoff
	f.Add(uint32(77), -1.0, uint64(7)) // clamped p
	f.Add(uint32(77), 2.0, uint64(8))
	f.Fuzz(func(t *testing.T, n uint32, p float64, seed uint64) {
		if math.IsNaN(p) {
			return // NaN probability has no defined semantics
		}
		r := New(seed)
		for i := 0; i < 8; i++ {
			v := r.Binomial(int64(n), p)
			if v < 0 || v > int64(n) {
				t.Fatalf("Binomial(%d, %v) = %d out of support", n, p, v)
			}
		}
	})
}

// FuzzMultinomialConservation: counts must be non-negative and sum to
// n for arbitrary weight vectors (after sanitizing invalid weights the
// way callers are documented to).
func FuzzMultinomialConservation(f *testing.F) {
	f.Add(uint16(100), []byte{1, 2, 3}, uint64(1))
	f.Add(uint16(0), []byte{5}, uint64(2))
	f.Add(uint16(65535), []byte{0, 0, 7, 0}, uint64(3))
	f.Fuzz(func(t *testing.T, n uint16, rawWeights []byte, seed uint64) {
		if len(rawWeights) == 0 {
			return
		}
		weights := make([]float64, len(rawWeights))
		total := 0.0
		for i, b := range rawWeights {
			weights[i] = float64(b)
			total += weights[i]
		}
		if total == 0 {
			weights[0] = 1
		}
		r := New(seed)
		out := make([]int64, len(weights))
		r.Multinomial(int64(n), weights, out)
		var sum int64
		for i, c := range out {
			if c < 0 {
				t.Fatalf("negative count %d at %d", c, i)
			}
			if weights[i] == 0 && c != 0 {
				t.Fatalf("zero-weight category %d received %d", i, c)
			}
			sum += c
		}
		if sum != int64(n) {
			t.Fatalf("counts sum to %d, want %d", sum, n)
		}
	})
}
