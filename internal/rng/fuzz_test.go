package rng

import (
	"math"
	"testing"
)

// FuzzBinomialSupport: for arbitrary (n, p, seed), samples must stay
// in [0, n] — across the BINV/BTPE split, the p > 1/2 reflection, and
// degenerate p.
func FuzzBinomialSupport(f *testing.F) {
	f.Add(uint32(10), 0.5, uint64(1))
	f.Add(uint32(1000), 0.01, uint64(2))
	f.Add(uint32(1_000_000), 0.999, uint64(3))
	f.Add(uint32(0), 0.5, uint64(4))
	f.Add(uint32(59), 0.5, uint64(5))  // just below the BTPE cutoff
	f.Add(uint32(61), 0.5, uint64(6))  // just above the BTPE cutoff
	f.Add(uint32(77), -1.0, uint64(7)) // clamped p
	f.Add(uint32(77), 2.0, uint64(8))
	f.Fuzz(func(t *testing.T, n uint32, p float64, seed uint64) {
		if math.IsNaN(p) {
			return // NaN probability has no defined semantics
		}
		r := New(seed)
		for i := 0; i < 8; i++ {
			v := r.Binomial(int64(n), p)
			if v < 0 || v > int64(n) {
				t.Fatalf("Binomial(%d, %v) = %d out of support", n, p, v)
			}
		}
	})
}

// FuzzMultinomialConservation: counts must be non-negative and sum to
// n for arbitrary weight vectors (after sanitizing invalid weights the
// way callers are documented to).
func FuzzMultinomialConservation(f *testing.F) {
	f.Add(uint16(100), []byte{1, 2, 3}, uint64(1))
	f.Add(uint16(0), []byte{5}, uint64(2))
	f.Add(uint16(65535), []byte{0, 0, 7, 0}, uint64(3))
	f.Fuzz(func(t *testing.T, n uint16, rawWeights []byte, seed uint64) {
		if len(rawWeights) == 0 {
			return
		}
		weights := make([]float64, len(rawWeights))
		total := 0.0
		for i, b := range rawWeights {
			weights[i] = float64(b)
			total += weights[i]
		}
		if total == 0 {
			weights[0] = 1
		}
		r := New(seed)
		out := make([]int64, len(weights))
		r.Multinomial(int64(n), weights, out)
		var sum int64
		for i, c := range out {
			if c < 0 {
				t.Fatalf("negative count %d at %d", c, i)
			}
			if weights[i] == 0 && c != 0 {
				t.Fatalf("zero-weight category %d received %d", i, c)
			}
			sum += c
		}
		if sum != int64(n) {
			t.Fatalf("counts sum to %d, want %d", sum, n)
		}
	})
}

// FuzzMultinomialDenseMatchesPadded is MultinomialDense's documented
// contract: for any strictly positive weight vector, its counts equal
// what Multinomial returns on a copy padded with zero-probability
// slots in arbitrary positions (the recursion never draws for an
// empty category). The padding mask doubles as the zero-weight-opinion
// degenerate case, and small n exercises the remaining == 0 residual
// path where trailing categories are assigned without a draw.
func FuzzMultinomialDenseMatchesPadded(f *testing.F) {
	f.Add(uint16(100), []byte{1, 2, 3}, []byte{0b101}, uint64(1))
	f.Add(uint16(0), []byte{5}, []byte{0xff}, uint64(2))
	f.Add(uint16(1), []byte{9, 9}, []byte{0}, uint64(3))
	f.Add(uint16(60000), []byte{1, 255, 1, 255}, []byte{0b0110}, uint64(4))
	f.Fuzz(func(t *testing.T, n uint16, rawWeights []byte, mask []byte, seed uint64) {
		if len(rawWeights) == 0 || len(rawWeights) > 32 {
			return
		}
		dense := make([]float64, len(rawWeights))
		for i, b := range rawWeights {
			dense[i] = float64(b) + 0.5 // strictly positive
		}
		maskBit := func(i int) bool {
			if len(mask) == 0 {
				return false
			}
			return mask[(i/8)%len(mask)]&(1<<(i%8)) != 0
		}
		// Interleave a zero-probability slot before dense[i] wherever
		// the mask selects, plus one trailing zero slot.
		var padded []float64
		var position []int // padded index of each dense slot
		for i, w := range dense {
			if maskBit(i) {
				padded = append(padded, 0)
			}
			position = append(position, len(padded))
			padded = append(padded, w)
		}
		padded = append(padded, 0)

		denseOut := make([]int64, len(dense))
		New(seed).MultinomialDense(int64(n), dense, denseOut)
		paddedOut := make([]int64, len(padded))
		New(seed).Multinomial(int64(n), padded, paddedOut)

		var sum int64
		for i := range dense {
			if denseOut[i] != paddedOut[position[i]] {
				t.Fatalf("dense[%d] = %d, padded = %d (n=%d weights=%v mask=%v)",
					i, denseOut[i], paddedOut[position[i]], n, dense, mask)
			}
			sum += denseOut[i]
		}
		if sum != int64(n) {
			t.Fatalf("dense counts sum to %d, want %d", sum, n)
		}
	})
}

// FuzzAliasFillMatchesFresh: a reused Alias table (Fill) must sample
// the identical index sequence as a freshly built one, never select a
// zero-weight category, and degenerate to constant 0 when k = 1.
func FuzzAliasFillMatchesFresh(f *testing.F) {
	f.Add([]byte{3, 0, 250}, []byte{8}, uint64(1))
	f.Add([]byte{1}, []byte{7, 7, 7}, uint64(2))
	f.Add([]byte{0, 0, 9, 0}, []byte{}, uint64(3))
	f.Fuzz(func(t *testing.T, first []byte, second []byte, seed uint64) {
		toWeights := func(raw []byte) []float64 {
			if len(raw) == 0 || len(raw) > 32 {
				return nil
			}
			w := make([]float64, len(raw))
			total := 0.0
			for i, b := range raw {
				w[i] = float64(b)
				total += w[i]
			}
			if total == 0 {
				w[0] = 1
			}
			return w
		}
		// Dirty the reused table with the first weight vector, then
		// Fill it with the second and compare against a fresh build.
		w1 := toWeights(first)
		w2 := toWeights(second)
		if w1 == nil || w2 == nil {
			return
		}
		reused := NewAlias(w1)
		reused.Fill(w2)
		fresh := NewAlias(w2)
		rReused := New(seed)
		rFresh := New(seed)
		for i := 0; i < 64; i++ {
			got := reused.Sample(rReused)
			want := fresh.Sample(rFresh)
			if got != want {
				t.Fatalf("reused sample %d = %d, fresh = %d (weights %v)", i, got, want, w2)
			}
			if w2[got] == 0 {
				t.Fatalf("sampled zero-weight category %d (weights %v)", got, w2)
			}
			if len(w2) == 1 && got != 0 {
				t.Fatalf("k=1 alias sampled %d", got)
			}
		}
	})
}
