package rng

import "math"

// BinomialEach draws out[j] ~ Binomial(counts[j], p) independently for
// every j and returns the total, consuming the stream draw-for-draw
// identically to calling Binomial(counts[j], p) in index order: the
// same generator values are read and every out[j] is bitwise equal.
// Zero counts (and p <= 0) consume no randomness and yield 0, exactly
// like the scalar call.
//
// The point of the batched form is hoisting the p-only setup out of
// the loop: the reflection to small p, the odds ratio s = p/q and
// log1p(-p) — the Exp/Log1p calls that dominate the BINV path's cost
// on the engine's one-binomial-per-live-slot rounds — are computed
// once per call instead of once per slot. The hoisted values feed the
// same expressions, so every sample is unchanged.
//
// len(out) must be at least len(counts); panics if any count is
// negative.
func (r *Rand) BinomialEach(counts []int64, p float64, out []int64) int64 {
	if p <= 0 {
		var bad bool
		for j, n := range counts {
			bad = bad || n < 0
			out[j] = 0
		}
		if bad {
			panic("rng: Binomial with n < 0")
		}
		return 0
	}
	if p >= 1 {
		var total int64
		for j, n := range counts {
			if n < 0 {
				panic("rng: Binomial with n < 0")
			}
			out[j] = n
			total += n
		}
		return total
	}
	reflect := p > 0.5
	ps := p
	if reflect {
		ps = 1 - p
	}
	// Hoisted BINV constants; the same expressions binomialBINV
	// evaluates per call.
	q := 1 - ps
	s := ps / q
	l1p := math.Log1p(-ps)

	var total int64
	for j, n := range counts {
		switch {
		case n < 0:
			panic("rng: Binomial with n < 0")
		case n == 0:
			out[j] = 0
			continue
		}
		var x int64
		if float64(n)*ps < binvCutoff {
			x = r.binomialBINVPre(n, s, float64(n+1)*s, math.Exp(float64(n)*l1p))
		} else {
			x = r.binomialBTPE(n, ps)
		}
		if reflect {
			x = n - x
		}
		out[j] = x
		total += x
	}
	return total
}

// binomialBINVPre is binomialBINV with the (n, p)-derived constants
// precomputed by the caller: s = p/q, a = (n+1)s, f = q^n (as
// Exp(n·Log1p(-p))). Draw-identical to binomialBINV given equal
// constants.
func (r *Rand) binomialBINVPre(n int64, s, a, f float64) int64 {
	for {
		u := r.Float64()
		fx := f
		var x int64
		for {
			if u < fx {
				return x
			}
			u -= fx
			x++
			if x > n {
				break // numeric leakage beyond the support; redraw
			}
			fx *= a/float64(x) - s
		}
	}
}
