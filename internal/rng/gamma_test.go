package rng

import (
	"math"
	"testing"
)

func TestGammaMoments(t *testing.T) {
	// Gamma(shape) has mean = shape and variance = shape.
	for _, shape := range []float64{0.3, 0.5, 1, 2.5, 10} {
		shape := shape
		r := New(31)
		const trials = 200000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			v := r.Gamma(shape)
			if v < 0 {
				t.Fatalf("Gamma(%v) produced %v", shape, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		seMean := math.Sqrt(shape / trials) // sd/√trials
		if math.Abs(mean-shape) > 8*seMean {
			t.Errorf("Gamma(%v) mean = %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.1*shape {
			t.Errorf("Gamma(%v) variance = %v", shape, variance)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	for _, shape := range []float64{0, -1, math.NaN()} {
		shape := shape
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v) did not panic", shape)
				}
			}()
			New(1).Gamma(shape)
		}()
	}
}

func TestDirichletSimplex(t *testing.T) {
	r := New(32)
	out := make([]float64, 8)
	for trial := 0; trial < 200; trial++ {
		r.Dirichlet(0.5, out)
		sum := 0.0
		for _, x := range out {
			if x < 0 || x > 1 {
				t.Fatalf("component %v outside [0,1]", x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("components sum to %v", sum)
		}
	}
}

func TestDirichletSymmetricMeans(t *testing.T) {
	r := New(33)
	const k, trials = 4, 50000
	out := make([]float64, k)
	sums := make([]float64, k)
	for i := 0; i < trials; i++ {
		r.Dirichlet(2, out)
		for j, x := range out {
			sums[j] += x
		}
	}
	for j, s := range sums {
		if math.Abs(s/trials-0.25) > 0.005 {
			t.Errorf("component %d mean %v, want 0.25", j, s/trials)
		}
	}
}

func TestDirichletConcentrationEffect(t *testing.T) {
	// Smaller concentration → spikier draws → larger E[Σ x²].
	r := New(34)
	avgGamma := func(conc float64) float64 {
		out := make([]float64, 10)
		total := 0.0
		const trials = 20000
		for i := 0; i < trials; i++ {
			r.Dirichlet(conc, out)
			g := 0.0
			for _, x := range out {
				g += x * x
			}
			total += g
		}
		return total / trials
	}
	spiky := avgGamma(0.1)
	flat := avgGamma(10)
	if spiky <= flat {
		t.Fatalf("concentration effect inverted: γ(0.1)=%v <= γ(10)=%v", spiky, flat)
	}
}

func TestDirichletPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).Dirichlet(1, nil)
}
