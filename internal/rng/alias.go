package rng

// Alias is a Walker–Vose alias table for O(1) sampling from a fixed
// discrete distribution over {0, ..., k-1}. Build cost is O(k).
//
// The table is immutable after construction and safe for concurrent
// sampling as long as each goroutine uses its own *Rand.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given non-negative weights.
// Weights need not be normalized. It panics if weights is empty or if
// every weight is zero or negative.
func NewAlias(weights []float64) *Alias {
	k := len(weights)
	if k == 0 {
		panic("rng: NewAlias with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: NewAlias with zero total weight")
	}

	a := &Alias{
		prob:  make([]float64, k),
		alias: make([]int32, k),
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, k)
	scale := float64(k) / total
	small := make([]int32, 0, k)
	large := make([]int32, 0, k)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Only reachable through floating-point rounding; treat as full.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// K returns the number of categories.
func (a *Alias) K() int { return len(a.prob) }

// Sample draws one category index according to the table's weights.
func (a *Alias) Sample(r *Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
