package rng

// Alias is a Walker–Vose alias table for O(1) sampling from a fixed
// discrete distribution over {0, ..., k-1}. Build cost is O(k).
//
// The table is immutable between Fill calls and safe for concurrent
// sampling as long as each goroutine uses its own *Rand. The zero
// value is valid and empty; populate it with Fill. Engines keep one
// Alias per worker and Fill it every round, so rebuilding allocates
// nothing once the buffers have grown to the working size.
type Alias struct {
	// cells fuses each slot's acceptance probability and alias target
	// so a Sample touches one cache line, which matters when the table
	// spans tens of thousands of live opinions.
	cells []aliasCell
	// Build scratch, retained across Fill calls.
	scaled []float64
	stack  []int32
}

type aliasCell struct {
	prob  float64
	alias int32
}

// NewAlias builds an alias table for the given non-negative weights.
// Weights need not be normalized. It panics if weights is empty or if
// every weight is zero or negative.
func NewAlias(weights []float64) *Alias {
	a := &Alias{}
	a.Fill(weights)
	return a
}

// Fill rebuilds the table in place for a new weight vector, reusing
// the previous allocation when it is large enough. Constraints are as
// for NewAlias.
func (a *Alias) Fill(weights []float64) {
	k := len(weights)
	if k == 0 {
		panic("rng: Alias.Fill with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Alias.Fill with zero total weight")
	}

	if cap(a.cells) < k {
		a.cells = make([]aliasCell, k)
		a.scaled = make([]float64, k)
		a.stack = make([]int32, k)
	}
	a.cells = a.cells[:k]
	a.scaled = a.scaled[:k]
	a.stack = a.stack[:k]

	// Scaled probabilities: mean 1. The stack buffer holds both Vose
	// worklists: entries below s are "small" (scaled < 1), entries at l
	// and above are "large".
	scale := float64(k) / total
	s, l := 0, k
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		sc := w * scale
		a.scaled[i] = sc
		if sc < 1 {
			a.stack[s] = int32(i)
			s++
		} else {
			l--
			a.stack[l] = int32(i)
		}
	}
	for s > 0 && l < k {
		s--
		sm := a.stack[s]
		lg := a.stack[l]
		a.cells[sm] = aliasCell{prob: a.scaled[sm], alias: lg}
		a.scaled[lg] += a.scaled[sm] - 1
		if a.scaled[lg] < 1 {
			// The donor dropped below mean weight: it moves from the
			// large worklist to the small one.
			l++
			a.stack[s] = lg
			s++
		}
	}
	for ; l < k; l++ {
		i := a.stack[l]
		a.cells[i] = aliasCell{prob: 1, alias: i}
	}
	for s > 0 {
		// Only reachable through floating-point rounding; treat as full.
		s--
		i := a.stack[s]
		a.cells[i] = aliasCell{prob: 1, alias: i}
	}
}

// K returns the number of categories.
func (a *Alias) K() int { return len(a.cells) }

// Sample draws one category index according to the table's weights.
func (a *Alias) Sample(r *Rand) int {
	i := r.Intn(len(a.cells))
	cell := a.cells[i]
	if r.Float64() < cell.prob {
		return i
	}
	return int(cell.alias)
}
