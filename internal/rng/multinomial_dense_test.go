package rng

import (
	"math"
	"testing"
)

func TestMultinomialDenseSumsToN(t *testing.T) {
	r := New(3)
	probs := []float64{0.4, 0.1, 0.25, 0.25}
	out := make([]int64, len(probs))
	for _, n := range []int64{0, 1, 7, 12345, 1 << 30} {
		r.MultinomialDense(n, probs, out)
		var sum int64
		for _, c := range out {
			if c < 0 {
				t.Fatalf("n=%d: negative count %v", n, out)
			}
			sum += c
		}
		if sum != n {
			t.Fatalf("n=%d: counts %v sum to %d", n, out, sum)
		}
	}
}

func TestMultinomialDenseSingleCategory(t *testing.T) {
	r := New(4)
	out := make([]int64, 1)
	r.MultinomialDense(42, []float64{0.3}, out)
	if out[0] != 42 {
		t.Fatalf("single category got %d, want 42", out[0])
	}
	r.MultinomialDense(0, []float64{1}, out)
	if out[0] != 0 {
		t.Fatalf("zero trials got %d, want 0", out[0])
	}
}

// TestMultinomialDenseZeroRemainingMass drives the sampler into the
// state where all trials are consumed before the last category, so the
// trailing slots must come back exactly zero.
func TestMultinomialDenseZeroRemainingMass(t *testing.T) {
	r := New(5)
	// A first category that dwarfs the rest: with n = 1 the single
	// trial usually lands on slot 0 and every later slot must be 0.
	probs := []float64{1e9, 1, 1, 1}
	out := make([]int64, len(probs))
	sawEarlyExhaustion := false
	for trial := 0; trial < 200; trial++ {
		r.MultinomialDense(1, probs, out)
		var sum int64
		for _, c := range out {
			sum += c
		}
		if sum != 1 {
			t.Fatalf("counts %v sum to %d, want 1", out, sum)
		}
		if out[0] == 1 {
			sawEarlyExhaustion = true
			if out[1] != 0 || out[2] != 0 || out[3] != 0 {
				t.Fatalf("trailing categories nonzero after exhaustion: %v", out)
			}
		}
	}
	if !sawEarlyExhaustion {
		t.Fatal("never exhausted trials early; test vector is wrong")
	}
}

// TestMultinomialDenseRoundingRemainder exercises the p >= remP
// assign-the-rest branch: when floating-point subtraction leaves the
// residual mass at or below the current weight, the remainder must be
// deposited without losing trials.
func TestMultinomialDenseRoundingRemainder(t *testing.T) {
	r := New(6)
	// Tiny trailing weights force remP toward the rounding regime.
	probs := []float64{1, 1e-14, 1e-14, 5e-15}
	out := make([]int64, len(probs))
	for trial := 0; trial < 100; trial++ {
		r.MultinomialDense(1000, probs, out)
		var sum int64
		for _, c := range out {
			if c < 0 {
				t.Fatalf("negative count in %v", out)
			}
			sum += c
		}
		if sum != 1000 {
			t.Fatalf("counts %v sum to %d, want 1000", out, sum)
		}
	}
}

// TestMultinomialDenseMatchesPaddedMultinomial checks the documented
// law-preservation property: on the same generator state, the dense
// sampler over compacted positive weights returns the same counts as
// the general sampler over the zero-padded vector.
func TestMultinomialDenseMatchesPaddedMultinomial(t *testing.T) {
	rDense := New(99)
	rPadded := New(99)
	denseProbs := []float64{0.5, 1.25, 0.25, 3, 0.125}
	padded := []float64{0, 0.5, 0, 0, 1.25, 0.25, 0, 3, 0.125, 0}
	liveSlots := []int{1, 4, 5, 7, 8}
	denseOut := make([]int64, len(denseProbs))
	paddedOut := make([]int64, len(padded))
	for _, n := range []int64{0, 1, 17, 9999, 123456} {
		rDense.MultinomialDense(n, denseProbs, denseOut)
		rPadded.Multinomial(n, padded, paddedOut)
		for j, slot := range liveSlots {
			if denseOut[j] != paddedOut[slot] {
				t.Fatalf("n=%d: dense %v vs padded %v diverge at live slot %d", n, denseOut, paddedOut, j)
			}
		}
		for slot, c := range paddedOut {
			if c != 0 && (slot == 0 || slot == 2 || slot == 3 || slot == 6 || slot == 9) {
				t.Fatalf("n=%d: padded sampler put %d trials on a zero-probability slot %d", n, c, slot)
			}
		}
	}
}

// TestMultinomialDenseMean checks first moments against n·p over many
// draws.
func TestMultinomialDenseMean(t *testing.T) {
	r := New(11)
	probs := []float64{1, 2, 3, 4}
	out := make([]int64, len(probs))
	sums := make([]float64, len(probs))
	const trials = 2000
	const n = 1000
	for i := 0; i < trials; i++ {
		r.MultinomialDense(n, probs, out)
		for j, c := range out {
			sums[j] += float64(c)
		}
	}
	for j, s := range sums {
		mean := s / trials
		want := float64(n) * probs[j] / 10
		sd := math.Sqrt(float64(n) * (probs[j] / 10) * (1 - probs[j]/10) / trials)
		if math.Abs(mean-want) > 6*sd {
			t.Fatalf("category %d mean %v, want %v ± %v", j, mean, want, sd)
		}
	}
}

func TestMultinomialDensePanics(t *testing.T) {
	r := New(12)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() {
		r.MultinomialDense(10, []float64{1, 2}, make([]int64, 3))
	})
	mustPanic("zero weight", func() {
		r.MultinomialDense(10, []float64{1, 0}, make([]int64, 2))
	})
	mustPanic("negative weight", func() {
		r.MultinomialDense(10, []float64{1, -1}, make([]int64, 2))
	})
	mustPanic("empty", func() {
		r.MultinomialDense(10, nil, nil)
	})
}
