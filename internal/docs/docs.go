package docs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"plurality/internal/service"
)

// TopLevelDocs are the markdown files the link checker walks. They are
// repo-root-relative, like every path in this package's reports.
var TopLevelDocs = []string{
	"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md",
}

// CurlDocs are the files whose curl examples must decode as valid
// service requests: the README quickstart and the conserve command
// documentation.
var CurlDocs = []string{"README.md", "cmd/conserve/main.go"}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// MarkdownLinks extracts the targets of inline markdown links
// [text](target) from md, in order of appearance.
func MarkdownLinks(md string) []string {
	var targets []string
	for _, m := range linkRe.FindAllStringSubmatch(md, -1) {
		targets = append(targets, m[1])
	}
	return targets
}

// CheckLinks verifies that every relative link in the given
// repo-root-relative markdown files points at an existing file.
// External links (scheme://, mailto:) and pure in-page anchors are
// skipped; a fragment on a relative link ("DESIGN.md#layering") is
// checked against the file part only. It returns one message per
// problem, empty when the docs are clean.
func CheckLinks(root string, files ...string) []string {
	var problems []string
	for _, f := range files {
		md, err := os.ReadFile(filepath.Join(root, f))
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", f, err))
			continue
		}
		for _, target := range MarkdownLinks(string(md)) {
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, _, _ := strings.Cut(target, "#")
			if path == "" {
				continue // in-page anchor
			}
			// Links resolve relative to the linking file, as on GitHub.
			resolved := filepath.Join(root, filepath.Dir(f), path)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", f, target))
			}
		}
	}
	return problems
}

// CheckGodoc verifies that every package directory under internal/ has
// a doc.go containing a godoc package comment ("// Package <name>").
// It returns one message per missing or malformed doc.go.
func CheckGodoc(root string) []string {
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return []string{fmt.Sprintf("internal/: %v", err)}
	}
	var problems []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		src, err := os.ReadFile(filepath.Join(root, "internal", name, "doc.go"))
		switch {
		case err != nil:
			problems = append(problems, fmt.Sprintf("internal/%s: no doc.go (package contract undocumented)", name))
		case !strings.Contains(string(src), "// Package "+name+" "):
			problems = append(problems, fmt.Sprintf("internal/%s: doc.go lacks a \"// Package %s\" comment", name, name))
		}
	}
	return problems
}

// CurlExample is one curl invocation found in a document: the endpoint
// path it POSTs to and its -d request body.
type CurlExample struct {
	Source   string // file the example came from
	Endpoint string // "/run" or "/sweep"
	Body     string // the single-quoted -d payload, verbatim
}

var (
	curlSplitRe = regexp.MustCompile(`(?m)^\s*(//\s*)?curl `)
	endpointRe  = regexp.MustCompile(`localhost:\d+/(run|sweep)`)
	bodyRe      = regexp.MustCompile(`(?s)-d '([^']*)'`)
)

// CurlExamples extracts every curl POST with a -d body from text.
// Bodies may span lines (the README wraps long JSON), and the text may
// be a Go source file whose examples live in // comments.
func CurlExamples(source, text string) []CurlExample {
	// Split at each curl invocation; the body and endpoint of command i
	// live between split i and split i+1.
	idx := curlSplitRe.FindAllStringIndex(text, -1)
	var out []CurlExample
	for i, loc := range idx {
		end := len(text)
		if i+1 < len(idx) {
			end = idx[i+1][0]
		}
		cmd := text[loc[0]:end]
		ep := endpointRe.FindStringSubmatch(cmd)
		body := bodyRe.FindStringSubmatch(cmd)
		if ep == nil || body == nil {
			continue // healthz, metrics, bodiless forms
		}
		// A body wrapped across doc-comment lines would carry "//"
		// continuation markers into the payload and fail JSON decoding
		// downstream — which is the desired signal, not a parser bug.
		out = append(out, CurlExample{Source: source, Endpoint: "/" + ep[1], Body: body[1]})
	}
	return out
}

// CheckCurlExamples verifies that every curl example in the given
// repo-root-relative files decodes as a valid, normalizable service
// request: /run bodies as service.Request, /sweep bodies as
// service.SweepRequest (expanded to points, each validated), unknown
// fields rejected in both — exactly the server's own decoding rules.
// It returns one message per invalid example, and an error message if
// a file yields no examples at all (the extractor has gone stale).
func CheckCurlExamples(root string, files ...string) []string {
	var problems []string
	for _, f := range files {
		text, err := os.ReadFile(filepath.Join(root, f))
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", f, err))
			continue
		}
		examples := CurlExamples(f, string(text))
		if len(examples) == 0 {
			problems = append(problems, fmt.Sprintf("%s: no curl examples found (extractor or doc stale)", f))
			continue
		}
		for _, ex := range examples {
			if err := validateExample(ex); err != nil {
				problems = append(problems, fmt.Sprintf("%s: curl %s body %s: %v", ex.Source, ex.Endpoint, ex.Body, err))
			}
		}
	}
	return problems
}

func validateExample(ex CurlExample) error {
	dec := json.NewDecoder(strings.NewReader(ex.Body))
	dec.DisallowUnknownFields()
	switch ex.Endpoint {
	case "/run":
		var q service.Request
		if err := dec.Decode(&q); err != nil {
			return err
		}
		return q.Normalize().Validate()
	case "/sweep":
		var sr service.SweepRequest
		if err := dec.Decode(&sr); err != nil {
			return err
		}
		points, err := sr.Normalize().Points()
		if err != nil {
			return err
		}
		for _, q := range points {
			if err := q.Validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown endpoint %q", ex.Endpoint)
	}
}
