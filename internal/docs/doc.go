// Package docs keeps the prose honest: it is the documentation
// counterpart of the convet static-analysis suite, checking in CI the
// claims the repository's markdown and godoc make about itself.
//
// Three checks, each runnable standalone and wired into `make
// docs-check`:
//
//   - Links: every relative markdown link in the top-level documents
//     (README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md, CHANGES.md)
//     resolves to a file that exists in the repository — renames and
//     deletions cannot silently strand a cross-reference.
//   - Godoc: every internal/* package has a doc.go whose package
//     comment states its contract (a bare `package x` clause hides the
//     package from godoc and from this audit).
//   - Curl examples: every `curl ... -d '...'` body in README.md and
//     the conserve command documentation decodes as a valid
//     service.Request (or SweepRequest for /sweep) with unknown fields
//     rejected — the quickstart cannot drift from the actual API.
//
// The contract above is owned by DESIGN.md §"Statically enforced
// contracts".
package docs
