package docs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot is where the checked documents live; tests run with the
// package directory as cwd.
const repoRoot = "../.."

func TestMarkdownLinks(t *testing.T) {
	md := `See [DESIGN](DESIGN.md) and [the API](https://pkg.go.dev/x),
an [anchor](#local), and [a section](DESIGN.md#layering).
Not a link: ](orphan) without brackets is still matched by the regex?`
	got := MarkdownLinks(md)
	want := []string{"DESIGN.md", "https://pkg.go.dev/x", "#local", "DESIGN.md#layering", "orphan"}
	if len(got) != len(want) {
		t.Fatalf("links = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("links[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCheckLinksFlagsBrokenAndAcceptsGood(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "real.md"), []byte("x"), 0o644)
	doc := "[ok](real.md) [ok2](real.md#frag) [ext](https://example.com) [gone](missing.md)"
	os.WriteFile(filepath.Join(dir, "doc.md"), []byte(doc), 0o644)
	problems := CheckLinks(dir, "doc.md")
	if len(problems) != 1 || !strings.Contains(problems[0], "missing.md") {
		t.Fatalf("problems = %v, want exactly the missing.md link", problems)
	}
}

func TestCheckGodocFlagsMissingDoc(t *testing.T) {
	dir := t.TempDir()
	mk := func(pkg, docSrc string) {
		d := filepath.Join(dir, "internal", pkg)
		os.MkdirAll(d, 0o755)
		if docSrc != "" {
			os.WriteFile(filepath.Join(d, "doc.go"), []byte(docSrc), 0o644)
		}
	}
	mk("good", "// Package good is documented.\npackage good\n")
	mk("bare", "package bare\n")
	mk("absent", "")
	problems := CheckGodoc(dir)
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want 2 (bare + absent)", problems)
	}
	for _, p := range problems {
		if !strings.Contains(p, "bare") && !strings.Contains(p, "absent") {
			t.Errorf("unexpected problem %q", p)
		}
	}
}

func TestCurlExamplesExtraction(t *testing.T) {
	text := `
curl -s localhost:8080/healthz
curl -s -X POST localhost:8080/run \
    -d '{"protocol":"3-majority","n":1000,
         "k":4}'
curl -s -X POST localhost:8080/sweep -d '{"base":{"protocol":"voter","n":100},"sweep":"k","values":[2]}'
curl -s localhost:8080/metrics
`
	got := CurlExamples("t.md", text)
	if len(got) != 2 {
		t.Fatalf("examples = %+v, want 2", got)
	}
	if got[0].Endpoint != "/run" || !strings.Contains(got[0].Body, `"k":4`) {
		t.Fatalf("run example = %+v", got[0])
	}
	if got[1].Endpoint != "/sweep" || !strings.HasPrefix(got[1].Body, `{"base"`) {
		t.Fatalf("sweep example = %+v", got[1])
	}
}

func TestValidateExampleRejectsUnknownFieldAndBadConfig(t *testing.T) {
	bad := []CurlExample{
		{Endpoint: "/run", Body: `{"protocol":"3-majority","n":1000,"k":4,"bogus":1}`},
		{Endpoint: "/run", Body: `{"protocol":"nope","n":1000,"k":4}`},
		{Endpoint: "/sweep", Body: `{"base":{"protocol":"3-majority","n":1000},"sweep":"nope","values":[1]}`},
	}
	for _, ex := range bad {
		if err := validateExample(ex); err == nil {
			t.Errorf("example %+v accepted", ex)
		}
	}
	good := CurlExample{Endpoint: "/run", Body: `{"protocol":"3-majority","n":1000000000,"k":100,"tier":"analytic"}`}
	if err := validateExample(good); err != nil {
		t.Errorf("analytic quickstart example rejected: %v", err)
	}
}

// The repo-level audits: these are the checks `make docs-check` and
// the CI docs job run against the actual documentation.

func TestRepoLinks(t *testing.T) {
	for _, p := range CheckLinks(repoRoot, TopLevelDocs...) {
		t.Error(p)
	}
}

func TestRepoGodoc(t *testing.T) {
	for _, p := range CheckGodoc(repoRoot) {
		t.Error(p)
	}
}

func TestRepoCurlExamples(t *testing.T) {
	for _, p := range CheckCurlExamples(repoRoot, CurlDocs...) {
		t.Error(p)
	}
}
