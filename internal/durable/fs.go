package durable

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the journal and result cache need.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to the given length.
	Truncate(size int64) error
}

// FS abstracts the filesystem operations the durability layer
// performs. OSFS is the real implementation; FaultFS wraps any FS with
// injectable failures.
type FS interface {
	// OpenAppend opens (creating if needed) the file for appending.
	OpenAppend(name string) (File, error)
	// Create opens the file for writing from scratch (truncating).
	Create(name string) (File, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the file.
	Remove(name string) error
	// MkdirAll creates the directory and its parents.
	MkdirAll(name string) error
	// ReadDir lists the directory's entry names.
	ReadDir(name string) ([]string, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(name string) error { return os.MkdirAll(name, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(name string) ([]string, error) {
	entries, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = filepath.Base(e.Name())
	}
	return names, nil
}
