package durable

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
)

// keyPattern is the only shape of key the cache will touch on disk: a
// canonical hex SHA-256. Everything else is rejected so a key can never
// traverse out of the cache directory.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ResultCache is the disk half of the result store: one file per
// canonical request key, written atomically (temp file, fsync, rename)
// so a reader never observes a torn result. It is safe for concurrent
// use with distinct keys; the Store serializes same-key writes.
type ResultCache struct {
	fs  FS
	dir string
}

// NewResultCache creates the cache directory if needed.
func NewResultCache(fsys FS, dir string) (*ResultCache, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: create result dir: %w", err)
	}
	return &ResultCache{fs: fsys, dir: dir}, nil
}

func (c *ResultCache) path(key string) (string, error) {
	if !keyPattern.MatchString(key) {
		return "", fmt.Errorf("durable: malformed result key %q", key)
	}
	return filepath.Join(c.dir, key+".json"), nil
}

// Put durably stores the result bytes for key: write to a temp file,
// fsync, rename into place. After Put returns nil the bytes are
// readable across a crash.
func (c *ResultCache) Put(key string, data []byte) error {
	path, err := c.path(key)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := c.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create result temp: %w", err)
	}
	n, err := f.Write(data)
	if err == nil && n < len(data) {
		err = fmt.Errorf("durable: result short write (%d of %d bytes)", n, len(data))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("durable: close result temp: %w", cerr)
	}
	if err != nil {
		c.fs.Remove(tmp) // best effort; a stale .tmp is harmless
		return err
	}
	if err := c.fs.Rename(tmp, path); err != nil {
		c.fs.Remove(tmp)
		return fmt.Errorf("durable: publish result: %w", err)
	}
	return nil
}

// Get returns the stored bytes for key, reporting whether they exist.
// Read errors other than absence surface as errors.
func (c *ResultCache) Get(key string) ([]byte, bool, error) {
	path, err := c.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err := c.fs.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("durable: read result: %w", err)
	}
	return data, true, nil
}

// Len counts the stored results (torn temp files excluded).
func (c *ResultCache) Len() (int, error) {
	names, err := c.fs.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, name := range names {
		if filepath.Ext(name) == ".json" {
			n++
		}
	}
	return n, nil
}
