package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"sync"
)

// Journal record operations, in job-lifecycle order.
const (
	// OpSubmitted records an admitted job: Key plus the normalized
	// Request JSON, enough to re-queue the job after a crash.
	OpSubmitted = "submitted"
	// OpStarted records an execution attempt beginning (Attempt is
	// 1-based); the count of started records is the job's attempt tally
	// across restarts.
	OpStarted = "started"
	// OpCheckpoint records resumable progress (State is an opaque
	// payload — the service layer's ResumeState). The latest checkpoint
	// for a key wins.
	OpCheckpoint = "checkpoint"
	// OpCompleted records a finished job whose result bytes were
	// already fsync'd into the result cache — the write ordering that
	// makes "completed record present ⇒ result readable" a crash-safe
	// invariant.
	OpCompleted = "completed"
	// OpFailed records a terminal failure (attempt budget exhausted or
	// per-job deadline exceeded); replay does not re-queue these.
	OpFailed = "failed"
)

// Record is one journal entry. Payload fields are optional per Op.
type Record struct {
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Key is the canonical SHA-256 request key the record is about.
	Key string `json:"key"`
	// Attempt is the 1-based execution attempt (OpStarted).
	Attempt int `json:"attempt,omitempty"`
	// Request is the normalized request JSON (OpSubmitted).
	Request json.RawMessage `json:"request,omitempty"`
	// State is the opaque resume payload (OpCheckpoint).
	State json.RawMessage `json:"state,omitempty"`
	// Error is the terminal failure message (OpFailed).
	Error string `json:"error,omitempty"`
}

// journalHeader identifies (and versions) the journal file format.
// Format after the header: length-prefixed records, each
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// where payload is the Record's JSON encoding. Appends are fsync'd, so
// a crash can only ever produce a torn *tail*: replay keeps the valid
// prefix and reports (never chokes on) the rest.
const journalHeader = "conserve-journal-v1\n"

// crcTable is the Castagnoli polynomial, the usual storage-CRC choice.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const recordFrameSize = 8 // length + checksum, before the payload

// errCorrupt tags replay corruption descriptions.
var errCorrupt = errors.New("durable: corrupt journal")

// Journal is an append-only record log. Appends are serialized and
// fsync'd before they return; a Journal is safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	fs   FS
	path string
	f    File
	// size is the on-disk byte length of the valid prefix — the offset
	// the next record lands at.
	size int64
}

// ReplayInfo describes what OpenJournal found on disk.
type ReplayInfo struct {
	// Records is the number of valid records replayed.
	Records int
	// ValidBytes is the length of the valid prefix.
	ValidBytes int64
	// CorruptTail describes a torn/garbage tail that was found (and
	// truncated away) after the valid prefix; empty for a clean file.
	CorruptTail string
}

// OpenJournal opens (creating if absent) the journal at path, replays
// its records, truncates any corrupt tail so appends land after the
// valid prefix, and returns the journal positioned for appending.
// Corruption — an empty or partial header, a torn last record, CRC
// mismatches, garbage after valid records — is never an error: the
// valid prefix is recovered and the damage is described in ReplayInfo
// for the caller to log.
func OpenJournal(fsys FS, path string) (*Journal, []Record, ReplayInfo, error) {
	data, err := fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, ReplayInfo{}, fmt.Errorf("durable: read journal: %w", err)
	}
	records, info := replay(data)

	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, ReplayInfo{}, fmt.Errorf("durable: open journal: %w", err)
	}
	j := &Journal{fs: fsys, path: path, f: f, size: info.ValidBytes}
	if int64(len(data)) > info.ValidBytes {
		// Drop the torn tail so the next append starts a clean record
		// at the valid offset.
		if err := f.Truncate(info.ValidBytes); err != nil {
			f.Close() //lint:allow durableorder best-effort cleanup; the truncate error already aborts the open
			return nil, nil, ReplayInfo{}, fmt.Errorf("durable: truncate corrupt tail: %w", err)
		}
	}
	if info.ValidBytes == 0 {
		// Fresh (or wholly corrupt) file: start over with a header.
		if len(data) > 0 {
			if err := f.Truncate(0); err != nil {
				f.Close() //lint:allow durableorder best-effort cleanup; the reset error already aborts the open
				return nil, nil, ReplayInfo{}, fmt.Errorf("durable: reset corrupt journal: %w", err)
			}
		}
		if err := j.write([]byte(journalHeader)); err != nil {
			f.Close() //lint:allow durableorder best-effort cleanup; the header-write error already aborts the open
			return nil, nil, ReplayInfo{}, err
		}
		j.size = int64(len(journalHeader))
	}
	return j, records, info, nil
}

// replay parses data into its valid record prefix. It cannot fail:
// anything unparseable ends the prefix and is described in the info.
func replay(data []byte) ([]Record, ReplayInfo) {
	var info ReplayInfo
	if len(data) == 0 {
		return nil, info
	}
	if len(data) < len(journalHeader) || string(data[:len(journalHeader)]) != journalHeader {
		info.CorruptTail = fmt.Sprintf("%v: missing or partial header (%d bytes)", errCorrupt, len(data))
		return nil, info
	}
	off := int64(len(journalHeader))
	info.ValidBytes = off
	var records []Record
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return records, info
		}
		if len(rest) < recordFrameSize {
			info.CorruptTail = fmt.Sprintf("%v: torn record frame at offset %d (%d trailing bytes)", errCorrupt, off, len(rest))
			return records, info
		}
		length := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if int64(length) > int64(len(rest)-recordFrameSize) {
			info.CorruptTail = fmt.Sprintf("%v: torn record payload at offset %d (want %d bytes, have %d)", errCorrupt, off, length, len(rest)-recordFrameSize)
			return records, info
		}
		payload := rest[recordFrameSize : recordFrameSize+int64(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			info.CorruptTail = fmt.Sprintf("%v: checksum mismatch at offset %d", errCorrupt, off)
			return records, info
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			info.CorruptTail = fmt.Sprintf("%v: unparseable record at offset %d: %v", errCorrupt, off, err)
			return records, info
		}
		records = append(records, rec)
		off += recordFrameSize + int64(length)
		info.Records++
		info.ValidBytes = off
	}
}

// Append frames, writes and fsyncs one record. On a write error (short
// write, ENOSPC) the journal truncates back to the last good offset so
// the on-disk file remains a valid prefix, and returns the error — the
// caller decides whether to degrade or fail.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: marshal record: %w", err)
	}
	frame := make([]byte, recordFrameSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[recordFrameSize:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("durable: journal is closed")
	}
	if err := j.write(frame); err != nil {
		// Restore the valid-prefix invariant: a torn append must not
		// poison every later record's framing.
		if terr := j.f.Truncate(j.size); terr != nil {
			return fmt.Errorf("durable: append failed (%v) and truncate-restore failed: %w", err, terr)
		}
		return err
	}
	j.size += int64(len(frame))
	return nil
}

// write pushes bytes plus an fsync through the file (caller holds mu
// or is the only owner).
func (j *Journal) write(b []byte) error {
	n, err := j.f.Write(b)
	if err != nil {
		return fmt.Errorf("durable: journal write: %w", err)
	}
	if n < len(b) {
		return fmt.Errorf("durable: journal short write (%d of %d bytes)", n, len(b))
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("durable: journal fsync: %w", err)
	}
	return nil
}

// Size returns the on-disk byte length of the valid prefix.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Close releases the journal file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
