package durable

import (
	"sync"
)

// FaultFS wraps an FS with injectable failures — the fault-injection
// harness behind the crash-safety tests. Hooks run before the real
// operation; returning a non-nil error suppresses it. WriteHook may
// additionally truncate a write (a torn write: the first `allow` bytes
// land, then the error surfaces), modelling ENOSPC and kernel
// short-write behavior.
//
// All hooks are optional; a zero-hook FaultFS is transparent. Hook
// fields must be set before the FS is handed to a Journal/Store (they
// are read without synchronization; the Calls counter is separate and
// safe for concurrent use).
type FaultFS struct {
	FS
	// WriteHook intercepts every File.Write: it sees the file name and
	// payload size and returns how many bytes to let through plus the
	// error to report. allow < 0 means "all of them".
	WriteHook func(name string, size int) (allow int, err error)
	// SyncHook intercepts every File.Sync.
	SyncHook func(name string) error
	// RenameHook intercepts Rename (atomic result publish).
	RenameHook func(oldname, newname string) error

	mu    sync.Mutex
	calls map[string]int
}

// NewFaultFS wraps base (OSFS{} for a real temp dir).
func NewFaultFS(base FS) *FaultFS {
	return &FaultFS{FS: base, calls: make(map[string]int)}
}

// Count returns how many times the named op ("write", "sync",
// "rename") ran (including suppressed ones).
func (f *FaultFS) Count(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

func (f *FaultFS) bump(op string) {
	f.mu.Lock()
	f.calls[op]++
	f.mu.Unlock()
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	file, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.bump("rename")
	if f.RenameHook != nil {
		if err := f.RenameHook(oldname, newname); err != nil {
			return err
		}
	}
	return f.FS.Rename(oldname, newname)
}

// faultFile threads the hooks through a single open file.
type faultFile struct {
	File
	fs   *FaultFS
	name string
}

func (f *faultFile) Write(b []byte) (int, error) {
	f.fs.bump("write")
	if hook := f.fs.WriteHook; hook != nil {
		allow, err := hook(f.name, len(b))
		if err != nil {
			if allow < 0 || allow > len(b) {
				allow = len(b)
			}
			n := 0
			if allow > 0 {
				// The torn half really lands on disk, exactly like a
				// crash mid-write.
				n, _ = f.File.Write(b[:allow])
			}
			return n, err
		}
	}
	return f.File.Write(b)
}

func (f *faultFile) Sync() error {
	f.fs.bump("sync")
	if hook := f.fs.SyncHook; hook != nil {
		if err := hook(f.name); err != nil {
			return err
		}
	}
	return f.File.Sync()
}
