package durable

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"time"
)

// JobState is the replayed state of one journaled key.
type JobState struct {
	// Key is the canonical request key.
	Key string
	// Request is the normalized request JSON from the submitted record.
	Request json.RawMessage
	// Attempts counts started records — execution attempts across every
	// process that ever picked the job up.
	Attempts int
	// Checkpoint is the latest checkpoint payload (nil if none).
	Checkpoint json.RawMessage
	// Completed reports a completed record whose result bytes are
	// readable from the cache.
	Completed bool
	// Failed reports a terminal failure record.
	Failed bool
	// Error is the terminal failure message.
	Error string
}

// Recovery is what Open found on disk, shaped for the runner's
// startup: results to serve without re-simulation and jobs to
// re-queue.
type Recovery struct {
	// Interrupted lists jobs that were submitted (and possibly
	// started / checkpointed) but neither completed nor terminally
	// failed — the jobs a restart re-queues, in journal order.
	Interrupted []*JobState
	// CompletedKeys is how many keys have a durable result.
	CompletedKeys int
	// Journal describes the raw replay (valid prefix, corrupt tail).
	Journal ReplayInfo
	// Anomalies lists non-fatal oddities found during replay —
	// duplicate completion records, completed records whose result file
	// is missing, unparseable request payloads. The caller logs them;
	// replay never fails on them.
	Anomalies []string
	// Elapsed is how long the replay took.
	Elapsed time.Duration
}

// Store is the durability layer the runner mounts: the journal plus
// the result cache under one data directory,
//
//	<dir>/journal.log
//	<dir>/results/<key>.json
//
// with replay-on-open. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	journal *Journal
	cache   *ResultCache
	// states carries replayed + live job states by key; completion
	// ordering decisions (duplicate completions, requeue-or-serve) are
	// made against it.
	states map[string]*JobState
	rec    Recovery
}

// Open mounts (creating if needed) the store at dir and replays the
// journal. Corruption never fails the open: the valid prefix is
// recovered and everything else is reported in Recovery.Anomalies /
// Recovery.Journal for the caller to log.
func Open(fsys FS, dir string) (*Store, error) {
	start := time.Now()
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: create data dir: %w", err)
	}
	cache, err := NewResultCache(fsys, filepath.Join(dir, "results"))
	if err != nil {
		return nil, err
	}
	journal, records, info, err := OpenJournal(fsys, filepath.Join(dir, "journal.log"))
	if err != nil {
		return nil, err
	}
	s := &Store{journal: journal, cache: cache, states: make(map[string]*JobState)}
	s.rec.Journal = info
	if info.CorruptTail != "" {
		s.rec.Anomalies = append(s.rec.Anomalies, info.CorruptTail)
	}

	// Fold the records into per-key states, journal order. order keeps
	// first-submission order for deterministic re-queueing.
	var order []string
	for _, rec := range records {
		st, ok := s.states[rec.Key]
		if !ok {
			st = &JobState{Key: rec.Key}
			s.states[rec.Key] = st
			order = append(order, rec.Key)
		}
		switch rec.Op {
		case OpSubmitted:
			if st.Completed {
				// A fresh submission after completion means the caller
				// decided to re-run (result evicted out-of-band); the
				// new lifecycle supersedes the old completion.
				st.Completed = false
			}
			st.Request = rec.Request
			st.Failed, st.Error = false, ""
		case OpStarted:
			st.Attempts++
		case OpCheckpoint:
			st.Checkpoint = rec.State
		case OpCompleted:
			if st.Completed {
				s.rec.Anomalies = append(s.rec.Anomalies,
					fmt.Sprintf("durable: duplicate completion record for key %s (kept the first)", rec.Key))
				continue
			}
			st.Completed = true
		case OpFailed:
			st.Failed, st.Error = true, rec.Error
		default:
			s.rec.Anomalies = append(s.rec.Anomalies,
				fmt.Sprintf("durable: unknown record op %q for key %s (ignored)", rec.Op, rec.Key))
		}
	}

	// Classify: completed ⇒ result must be readable (the write ordering
	// guarantees it, so a miss is an anomaly and the job re-queues);
	// submitted-but-unfinished ⇒ interrupted.
	for _, key := range order {
		st := s.states[key]
		if st.Completed {
			if _, ok, err := cache.Get(key); err != nil || !ok {
				s.rec.Anomalies = append(s.rec.Anomalies,
					fmt.Sprintf("durable: completed key %s has no readable result (%v); re-queueing", key, err))
				st.Completed = false
			} else {
				s.rec.CompletedKeys++
				continue
			}
		}
		if st.Failed {
			continue
		}
		if len(st.Request) == 0 {
			s.rec.Anomalies = append(s.rec.Anomalies,
				fmt.Sprintf("durable: key %s has lifecycle records but no submitted request; dropped", key))
			continue
		}
		s.rec.Interrupted = append(s.rec.Interrupted, st)
	}
	s.rec.Elapsed = time.Since(start)
	return s, nil
}

// Recovered returns what Open replayed. The Interrupted states are
// live pointers; treat them as read-only.
func (s *Store) Recovered() Recovery { return s.rec }

// Submitted journals a job admission.
func (s *Store) Submitted(key string, request []byte) error {
	s.mu.Lock()
	st, ok := s.states[key]
	if !ok {
		st = &JobState{Key: key}
		s.states[key] = st
	}
	st.Request = request
	st.Completed, st.Failed, st.Error = false, false, ""
	s.mu.Unlock()
	return s.journal.Append(Record{Op: OpSubmitted, Key: key, Request: request})
}

// Started journals an execution attempt (1-based).
func (s *Store) Started(key string, attempt int) error {
	s.mu.Lock()
	if st, ok := s.states[key]; ok {
		st.Attempts = attempt
	}
	s.mu.Unlock()
	return s.journal.Append(Record{Op: OpStarted, Key: key, Attempt: attempt})
}

// Checkpoint journals resumable progress for the key.
func (s *Store) Checkpoint(key string, state []byte) error {
	s.mu.Lock()
	if st, ok := s.states[key]; ok {
		st.Checkpoint = state
	}
	s.mu.Unlock()
	return s.journal.Append(Record{Op: OpCheckpoint, Key: key, State: state})
}

// Completed durably stores the result bytes, then journals completion
// — in that order, so a completed record on disk always implies a
// readable result whatever instant a crash hits.
func (s *Store) Completed(key string, result []byte) error {
	if err := s.cache.Put(key, result); err != nil {
		return err
	}
	s.mu.Lock()
	if st, ok := s.states[key]; ok {
		st.Completed = true
	}
	s.mu.Unlock()
	return s.journal.Append(Record{Op: OpCompleted, Key: key})
}

// Failed journals a terminal failure.
func (s *Store) Failed(key string, msg string) error {
	s.mu.Lock()
	if st, ok := s.states[key]; ok {
		st.Failed, st.Error = true, msg
	}
	s.mu.Unlock()
	return s.journal.Append(Record{Op: OpFailed, Key: key, Error: msg})
}

// Result returns the durable result bytes for key, if completed.
func (s *Store) Result(key string) ([]byte, bool) {
	data, ok, err := s.cache.Get(key)
	if err != nil || !ok {
		return nil, false
	}
	return data, true
}

// JournalSize returns the journal's on-disk valid length (tests and
// metrics).
func (s *Store) JournalSize() int64 { return s.journal.Size() }

// Close flushes nothing (every append already fsync'd) and releases
// the journal file.
func (s *Store) Close() error { return s.journal.Close() }
