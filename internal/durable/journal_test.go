package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tempJournalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.log")
}

func mustAppend(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
}

func rec(i int) Record {
	return Record{Op: OpSubmitted, Key: fmt.Sprintf("%064d", i), Request: json.RawMessage(`{"n":1}`)}
}

func TestJournalRoundTrip(t *testing.T) {
	path := tempJournalPath(t)
	j, recs, info, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || info.CorruptTail != "" {
		t.Fatalf("fresh journal replayed %d records, tail %q", len(recs), info.CorruptTail)
	}
	mustAppend(t, j, rec(1), rec(2),
		Record{Op: OpCheckpoint, Key: "k", State: json.RawMessage(`{"next_trial":3}`)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, info, err = OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if info.CorruptTail != "" {
		t.Fatalf("clean journal reported corruption: %s", info.CorruptTail)
	}
	if len(recs) != 3 || recs[0].Key != rec(1).Key || recs[2].Op != OpCheckpoint {
		t.Fatalf("replayed %+v", recs)
	}
	if string(recs[2].State) != `{"next_trial":3}` {
		t.Fatalf("checkpoint payload %s", recs[2].State)
	}
}

// TestJournalEmptyFile: a zero-byte journal (crash before the header
// was flushed) replays to nothing and becomes usable.
func TestJournalEmptyFile(t *testing.T) {
	path := tempJournalPath(t)
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, info, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatalf("empty journal failed to open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty journal replayed %d records", len(recs))
	}
	_ = info // an empty file is not corruption, but either report is acceptable
	mustAppend(t, j, rec(1))
	j.Close()
	_, recs, info, err = OpenJournal(OSFS{}, path)
	if err != nil || len(recs) != 1 || info.CorruptTail != "" {
		t.Fatalf("after reuse: recs=%d info=%+v err=%v", len(recs), info, err)
	}
}

// TestJournalPartialHeader: a torn header is corruption, recovered to
// an empty journal that is immediately usable again.
func TestJournalPartialHeader(t *testing.T) {
	path := tempJournalPath(t)
	if err := os.WriteFile(path, []byte(journalHeader[:7]), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, info, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatalf("partial header crashed the open: %v", err)
	}
	if len(recs) != 0 || info.CorruptTail == "" {
		t.Fatalf("partial header: recs=%d info=%+v", len(recs), info)
	}
	mustAppend(t, j, rec(9))
	j.Close()
	_, recs, info, err = OpenJournal(OSFS{}, path)
	if err != nil || len(recs) != 1 || info.CorruptTail != "" {
		t.Fatalf("after header reset: recs=%d info=%+v err=%v", len(recs), info, err)
	}
}

// TestJournalValidPrefixThenGarbage: records followed by garbage bytes
// replay to the records; the garbage is reported and truncated away so
// later appends stay parseable.
func TestJournalValidPrefixThenGarbage(t *testing.T) {
	path := tempJournalPath(t)
	j, _, _, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(1), rec(2), rec(3))
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("\xde\xad\xbe\xef not a record"))
	f.Close()

	j, recs, info, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatalf("garbage tail crashed the open: %v", err)
	}
	if len(recs) != 3 || info.CorruptTail == "" {
		t.Fatalf("garbage tail: recs=%d info=%+v", len(recs), info)
	}
	mustAppend(t, j, rec(4))
	j.Close()
	_, recs, info, err = OpenJournal(OSFS{}, path)
	if err != nil || len(recs) != 4 || info.CorruptTail != "" {
		t.Fatalf("after truncate+append: recs=%d info=%+v err=%v", len(recs), info, err)
	}
}

// TestJournalChecksumMismatch: a bit flip inside a record drops that
// record and everything after it (prefix semantics), never crashes.
func TestJournalChecksumMismatch(t *testing.T) {
	path := tempJournalPath(t)
	j, _, _, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(1), rec(2), rec(3))
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle record: find the second frame.
	recLen := (int64(len(data)) - int64(len(journalHeader))) / 3
	off := int64(len(journalHeader)) + recLen + recordFrameSize + 2
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, info, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatalf("checksum mismatch crashed the open: %v", err)
	}
	if len(recs) != 1 || info.CorruptTail == "" {
		t.Fatalf("mid-file flip: recs=%d info=%+v", len(recs), info)
	}
}

// TestJournalCrashAtEveryByte is the crash-at-every-record-boundary
// property, strengthened to every byte: for every possible crash point
// in the file, replay recovers exactly the fully-written records and
// reports corruption only for genuinely torn tails.
func TestJournalCrashAtEveryByte(t *testing.T) {
	path := tempJournalPath(t)
	j, _, _, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries []int64 // cumulative valid lengths after each record
	boundaries = append(boundaries, j.Size())
	for i := 1; i <= 5; i++ {
		mustAppend(t, j,
			Record{Op: OpSubmitted, Key: fmt.Sprintf("%064d", i), Request: json.RawMessage(fmt.Sprintf(`{"seed":%d}`, i))})
		boundaries = append(boundaries, j.Size())
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cut := filepath.Join(t.TempDir(), "cut.log")
	for n := 0; n <= len(full); n++ {
		if err := os.WriteFile(cut, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		// How many whole records fit in the first n bytes?
		want := 0
		for i := 1; i < len(boundaries); i++ {
			if int64(n) >= boundaries[i] {
				want = i
			}
		}
		jj, recs, info, err := OpenJournal(OSFS{}, cut)
		if err != nil {
			t.Fatalf("cut at %d bytes: open failed: %v", n, err)
		}
		jj.Close()
		if len(recs) != want {
			t.Fatalf("cut at %d bytes: recovered %d records, want %d", n, len(recs), want)
		}
		atBoundary := false
		for _, b := range boundaries {
			if int64(n) == b {
				atBoundary = true
			}
		}
		if atBoundary && n >= len(journalHeader) && info.CorruptTail != "" {
			t.Fatalf("cut at clean boundary %d reported corruption: %s", n, info.CorruptTail)
		}
		if !atBoundary && n > len(journalHeader) && info.CorruptTail == "" {
			t.Fatalf("cut mid-record at %d bytes reported no corruption", n)
		}
	}
}

// TestJournalAppendENOSPC: a write that fails mid-record (disk full)
// surfaces the error, and the on-disk file stays a replayable valid
// prefix — including after the fault clears and appends resume.
func TestJournalAppendENOSPC(t *testing.T) {
	path := tempJournalPath(t)
	ffs := NewFaultFS(OSFS{})
	j, _, _, err := OpenJournal(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(1))

	// ENOSPC after 5 bytes of the frame land.
	ffs.WriteHook = func(name string, size int) (int, error) {
		return 5, fmt.Errorf("no space left on device")
	}
	if err := j.Append(rec(2)); err == nil {
		t.Fatal("append on a full disk reported success")
	}
	ffs.WriteHook = nil

	// The torn frame was truncated away; the journal keeps working.
	mustAppend(t, j, rec(3))
	j.Close()
	_, recs, info, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || info.CorruptTail != "" {
		t.Fatalf("after ENOSPC: recs=%+v info=%+v", recs, info)
	}
	if recs[1].Key != rec(3).Key {
		t.Fatalf("post-fault record lost: %+v", recs)
	}
}

// TestJournalFsyncError: a failing fsync surfaces as an append error
// (the record may or may not be durable — the caller must treat it as
// not); the journal remains usable.
func TestJournalFsyncError(t *testing.T) {
	path := tempJournalPath(t)
	ffs := NewFaultFS(OSFS{})
	j, _, _, err := OpenJournal(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	ffs.SyncHook = func(name string) error { return fmt.Errorf("fsync: input/output error") }
	if err := j.Append(rec(1)); err == nil {
		t.Fatal("append with failing fsync reported success")
	}
	ffs.SyncHook = nil
	mustAppend(t, j, rec(2))
	j.Close()
	_, recs, _, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	// rec(1)'s bytes were truncated away on the failed append; only
	// rec(2) is durable.
	if len(recs) != 1 || recs[0].Key != rec(2).Key {
		t.Fatalf("after fsync fault: %+v", recs)
	}
}

// TestJournalTornWriteThenCrash: a short write (torn record, no error
// observed by anyone because the process died) leaves a corrupt tail
// that the next open recovers from.
func TestJournalTornWriteThenCrash(t *testing.T) {
	path := tempJournalPath(t)
	j, _, _, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, rec(1))
	j.Close()
	full, _ := os.ReadFile(path)

	// Simulate the crash: re-append only half of what rec(2) would be.
	j2, _, _, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j2, rec(2))
	j2.Close()
	grown, _ := os.ReadFile(path)
	torn := grown[:len(full)+(len(grown)-len(full))/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, info, err := OpenJournal(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || info.CorruptTail == "" {
		t.Fatalf("torn tail: recs=%d info=%+v", len(recs), info)
	}
	if !bytes.Equal([]byte(recs[0].Key), []byte(rec(1).Key)) {
		t.Fatalf("surviving record %+v", recs[0])
	}
}
