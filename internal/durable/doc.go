// Package durable is the crash-safety layer under the conserve
// service: an append-only, CRC-checksummed, fsync'd journal of job
// lifecycle records plus a disk-backed result cache, combined into a
// Store the runner replays on startup. Keys are the service layer's
// canonical SHA-256 request keys, so a journal written by one process
// is meaningful to any other process serving the same request space.
//
// Filesystem access goes through the small FS interface so the fault
// -injection harness (FaultFS) can exercise torn writes, ENOSPC and
// fsync failures without touching a real disk's failure modes.
//
// The contract above is owned by DESIGN.md §"Durability &
// crash-recovery contract".
package durable
