package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

func openStore(t *testing.T, fsys FS, dir string) *Store {
	t.Helper()
	s, err := Open(fsys, dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s
}

func TestStoreLifecycleAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, OSFS{}, dir)
	k1, k2, k3 := testKey(1), testKey(2), testKey(3)

	// k1 completes, k2 is interrupted mid-flight with a checkpoint,
	// k3 fails terminally.
	for _, step := range []func() error{
		func() error { return s.Submitted(k1, []byte(`{"mode":"sync"}`)) },
		func() error { return s.Started(k1, 1) },
		func() error { return s.Completed(k1, []byte(`{"trials":[1,2,3]}`)) },
		func() error { return s.Submitted(k2, []byte(`{"mode":"graph"}`)) },
		func() error { return s.Started(k2, 1) },
		func() error { return s.Checkpoint(k2, []byte(`{"next_trial":7}`)) },
		func() error { return s.Submitted(k3, []byte(`{"mode":"gossip"}`)) },
		func() error { return s.Started(k3, 1) },
		func() error { return s.Failed(k3, "attempt budget exhausted") },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if data, ok := s.Result(k1); !ok || string(data) != `{"trials":[1,2,3]}` {
		t.Fatalf("live result: ok=%v data=%s", ok, data)
	}
	s.Close()

	// Reopen: the crash-recovery path.
	s2 := openStore(t, OSFS{}, dir)
	defer s2.Close()
	rec := s2.Recovered()
	if rec.CompletedKeys != 1 {
		t.Fatalf("CompletedKeys = %d, want 1", rec.CompletedKeys)
	}
	if len(rec.Anomalies) != 0 {
		t.Fatalf("clean reopen reported anomalies: %v", rec.Anomalies)
	}
	if len(rec.Interrupted) != 1 {
		t.Fatalf("Interrupted = %+v, want exactly k2", rec.Interrupted)
	}
	st := rec.Interrupted[0]
	if st.Key != k2 || st.Attempts != 1 || string(st.Checkpoint) != `{"next_trial":7}` ||
		string(st.Request) != `{"mode":"graph"}` {
		t.Fatalf("interrupted state %+v", st)
	}
	if data, ok := s2.Result(k1); !ok || string(data) != `{"trials":[1,2,3]}` {
		t.Fatalf("recovered result: ok=%v data=%s", ok, data)
	}
	if _, ok := s2.Result(k2); ok {
		t.Fatal("interrupted key served a result")
	}
}

// TestStoreInterruptedOrder: re-queue order is first-submission order,
// so a restart drains the backlog in the order clients created it.
func TestStoreInterruptedOrder(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, OSFS{}, dir)
	var want []string
	for i := 5; i >= 1; i-- {
		k := testKey(i)
		want = append(want, k)
		if err := s.Submitted(k, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2 := openStore(t, OSFS{}, dir)
	defer s2.Close()
	got := s2.Recovered().Interrupted
	if len(got) != len(want) {
		t.Fatalf("recovered %d jobs, want %d", len(got), len(want))
	}
	for i, st := range got {
		if st.Key != want[i] {
			t.Fatalf("position %d: got %s want %s", i, st.Key, want[i])
		}
	}
}

// TestStoreDuplicateCompletion: a duplicate completed record is an
// anomaly (logged, kept-first), never a crash, and the key still
// serves its result.
func TestStoreDuplicateCompletion(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, OSFS{}, dir)
	k := testKey(1)
	if err := s.Submitted(k, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Completed(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Forge the duplicate directly in the journal, as a crashed writer
	// that double-journaled would have.
	if err := s.journal.Append(Record{Op: OpCompleted, Key: k}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openStore(t, OSFS{}, dir)
	defer s2.Close()
	rec := s2.Recovered()
	if rec.CompletedKeys != 1 || len(rec.Interrupted) != 0 {
		t.Fatalf("recovery %+v", rec)
	}
	found := false
	for _, a := range rec.Anomalies {
		if strings.Contains(a, "duplicate completion") && strings.Contains(a, k) {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate completion not reported: %v", rec.Anomalies)
	}
	if data, ok := s2.Result(k); !ok || string(data) != `{"v":1}` {
		t.Fatalf("result after duplicate: ok=%v data=%s", ok, data)
	}
}

// TestStoreCompletedWithoutResult: a completed record whose result file
// vanished re-queues the job instead of serving nothing.
func TestStoreCompletedWithoutResult(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, OSFS{}, dir)
	k := testKey(1)
	if err := s.Submitted(k, []byte(`{"mode":"async"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Completed(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, "results", k+".json")); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, OSFS{}, dir)
	defer s2.Close()
	rec := s2.Recovered()
	if rec.CompletedKeys != 0 {
		t.Fatalf("CompletedKeys = %d, want 0", rec.CompletedKeys)
	}
	if len(rec.Interrupted) != 1 || rec.Interrupted[0].Key != k {
		t.Fatalf("missing-result key not re-queued: %+v", rec.Interrupted)
	}
	found := false
	for _, a := range rec.Anomalies {
		if strings.Contains(a, "no readable result") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing result not reported: %v", rec.Anomalies)
	}
}

// TestStoreResubmitAfterCompletion: a fresh submitted record after a
// completion supersedes it (deliberate re-run), so replay re-queues.
func TestStoreResubmitAfterCompletion(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, OSFS{}, dir)
	k := testKey(1)
	if err := s.Submitted(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Completed(k, []byte(`{"r":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submitted(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, OSFS{}, dir)
	defer s2.Close()
	rec := s2.Recovered()
	if len(rec.Interrupted) != 1 || rec.Interrupted[0].Key != k {
		t.Fatalf("resubmitted key not re-queued: %+v", rec.Interrupted)
	}
}

// TestStoreCorruptTailRecovery: a garbage tail after live records is
// logged as an anomaly and the prefix state machine still works.
func TestStoreCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, OSFS{}, dir)
	k := testKey(1)
	if err := s.Submitted(k, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Completed(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	jp := filepath.Join(dir, "journal.log")
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0x01, 0x02})
	f.Close()

	s2 := openStore(t, OSFS{}, dir)
	defer s2.Close()
	rec := s2.Recovered()
	if rec.CompletedKeys != 1 {
		t.Fatalf("CompletedKeys = %d after torn tail", rec.CompletedKeys)
	}
	if rec.Journal.CorruptTail == "" || len(rec.Anomalies) == 0 {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
}

// TestStoreCrashAtEveryBoundary is the headline durability property:
// truncate the journal at every record boundary of a full lifecycle
// and assert that at no crash point is a completed result lost — a
// completed record always has readable result bytes — and keys only
// ever classify as completed / interrupted / failed, never vanish once
// submitted (unless their submission record itself is gone).
func TestStoreCrashAtEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, OSFS{}, dir)
	k1, k2 := testKey(1), testKey(2)
	var cuts []int64
	mark := func() { cuts = append(cuts, s.JournalSize()) }
	mark()
	steps := []func() error{
		func() error { return s.Submitted(k1, []byte(`{"a":1}`)) },
		func() error { return s.Started(k1, 1) },
		func() error { return s.Submitted(k2, []byte(`{"b":2}`)) },
		func() error { return s.Checkpoint(k1, []byte(`{"next_trial":4}`)) },
		func() error { return s.Completed(k1, []byte(`{"r":1}`)) },
		func() error { return s.Started(k2, 1) },
		func() error { return s.Failed(k2, "boom") },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			t.Fatal(err)
		}
		mark()
	}
	s.Close()
	full, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}

	// k1 completes at step index 5 (cuts[5] is the boundary after it).
	completedAt := cuts[5]
	for ci, cut := range cuts {
		cdir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(cdir, "results"), 0o755); err != nil {
			t.Fatal(err)
		}
		// The result cache is written before the completed record, so at
		// every journal cut the full cache directory is a valid (over-)
		// approximation of disk state.
		entries, err := os.ReadDir(filepath.Join(dir, "results"))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, "results", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(cdir, "results", e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(cdir, "journal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s2 := openStore(t, OSFS{}, cdir)
		rec := s2.Recovered()
		if cut >= completedAt {
			// Once the completed record is on disk, the result must be
			// servable — never lost, never re-queued.
			if rec.CompletedKeys != 1 {
				t.Fatalf("cut %d (offset %d): CompletedKeys=%d, completed result lost", ci, cut, rec.CompletedKeys)
			}
			data, ok := s2.Result(k1)
			if !ok || string(data) != `{"r":1}` {
				t.Fatalf("cut %d: completed result unreadable: ok=%v data=%s", ci, ok, data)
			}
			for _, st := range rec.Interrupted {
				if st.Key == k1 {
					t.Fatalf("cut %d: completed key re-queued", ci)
				}
			}
		} else if ci >= 1 {
			// k1 submitted but not completed: must be re-queued, exactly
			// once.
			n := 0
			for _, st := range rec.Interrupted {
				if st.Key == k1 {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("cut %d: submitted-not-completed key queued %d times", ci, n)
			}
		}
		s2.Close()
	}
}

// TestStoreResultCachePutFaults: ENOSPC / fsync / rename failures while
// publishing a result surface from Completed, leave no half-written
// result visible, and do not journal the completion.
func TestStoreResultCachePutFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		set  func(f *FaultFS)
	}{
		{"enospc", func(f *FaultFS) {
			f.WriteHook = func(name string, size int) (int, error) {
				if strings.Contains(name, "results") {
					return 3, fmt.Errorf("no space left on device")
				}
				return -1, nil
			}
		}},
		{"fsync", func(f *FaultFS) {
			f.SyncHook = func(name string) error {
				if strings.Contains(name, "results") {
					return fmt.Errorf("fsync: input/output error")
				}
				return nil
			}
		}},
		{"rename", func(f *FaultFS) {
			f.RenameHook = func(oldname, newname string) error {
				return fmt.Errorf("rename: input/output error")
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(OSFS{})
			s, err := Open(ffs, dir)
			if err != nil {
				t.Fatal(err)
			}
			k := testKey(1)
			if err := s.Submitted(k, []byte(`{}`)); err != nil {
				t.Fatal(err)
			}
			tc.set(ffs)
			if err := s.Completed(k, []byte(`{"r":1}`)); err == nil {
				t.Fatal("Completed succeeded under an injected fault")
			}
			ffs.WriteHook, ffs.SyncHook, ffs.RenameHook = nil, nil, nil
			if _, ok := s.Result(k); ok {
				t.Fatal("half-written result became visible")
			}
			s.Close()

			// Restart: the job must come back as interrupted, not
			// completed (the completed record was never journaled).
			s2 := openStore(t, OSFS{}, dir)
			defer s2.Close()
			rec := s2.Recovered()
			if rec.CompletedKeys != 0 || len(rec.Interrupted) != 1 {
				t.Fatalf("after %s fault: %+v", tc.name, rec)
			}
		})
	}
}

func TestResultCacheRejectsMalformedKeys(t *testing.T) {
	c, err := NewResultCache(OSFS{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"", "short", strings.Repeat("g", 64), "../../../../etc/passwd",
		strings.Repeat("A", 64), testKey(1) + "x",
	} {
		if err := c.Put(bad, []byte(`{}`)); err == nil {
			t.Fatalf("Put accepted malformed key %q", bad)
		}
		if _, _, err := c.Get(bad); err == nil {
			t.Fatalf("Get accepted malformed key %q", bad)
		}
	}
}

func TestResultCacheLenSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := NewResultCache(OSFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey(1), []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// A stale temp file from a crashed Put must not count.
	if err := os.WriteFile(filepath.Join(dir, testKey(2)+".json.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := c.Len()
	if err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}
