package core

import (
	"fmt"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// HMajority is the h-Majority dynamics (paper §2.5, BCNPST17): each
// vertex samples h uniformly random vertices with replacement and
// adopts the most frequent opinion among the samples, ties broken
// uniformly at random among the tied opinions.
//
//   - h = 1 coincides in law with Voter.
//   - h = 2 also coincides in law with Voter: the two samples either
//     agree (adopt) or tie, and a uniform pick of the two tied samples
//     is a single uniform sample.
//   - h = 3 coincides in law with 3-Majority: taking the majority of
//     three samples with a uniform three-way tie-break yields adoption
//     probability α(i)(1 + α(i) − γ), the same as Eq. (5). The h = 3
//     step therefore reuses the O(live) multinomial path; the tests
//     verify the equivalence against the sampled path.
//
// For h ≥ 4 no closed form for the adoption law is used; the step
// samples each vertex's h draws through an alias table over the live
// opinions, which costs O(n·h + live) per round but remains exact.
type HMajority struct {
	// H is the number of samples per vertex; must be >= 1.
	H int
}

var _ Protocol = HMajority{}

// Name implements Protocol.
func (p HMajority) Name() string { return fmt.Sprintf("majority-h%d", p.H) }

// Step implements Protocol.
func (p HMajority) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	switch {
	case p.H < 1:
		panic(fmt.Sprintf("core: HMajority with H=%d < 1", p.H))
	case p.H <= 2:
		Voter{}.Step(r, v, s)
		return
	case p.H == 3:
		ThreeMajority{}.Step(r, v, s)
		return
	}

	// The alias table is built over the live opinions only; a sample's
	// dense slot j stands for opinion live[j] throughout.
	live := v.LiveIndices()
	L := len(live)
	nf := float64(v.N())
	weights := s.Probs(L)
	for j, c := range v.LiveCounts() {
		weights[j] = float64(c) / nf
	}
	alias := s.Alias(weights)

	next := s.Outs(L)
	for j := range next {
		next[j] = 0
	}
	samples := s.Samples(p.H)
	tally := s.Aux(L)
	for vtx := int64(0); vtx < v.N(); vtx++ {
		next[sampleMajority(r, alias, p.H, samples, tally)]++
	}
	v.CommitLive(live, next)
}
