package core

import (
	"math"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// The exactness tests are the load-bearing validation of the engine:
// the O(live) count-space samplers must agree in distribution with the
// literal Definition 3.1 per-vertex process. We verify (a) one-round
// conditional means against the paper's closed forms (Lemma 4.1),
// (b) one-round variances against exact per-vertex computations, and
// (c) fast-vs-reference agreement of empirical means within Monte
// Carlo error.

// monteCarloMoments runs `trials` independent one-round steps of p
// from v0 and returns the per-opinion empirical mean and variance of
// the next-round counts.
func monteCarloMoments(t *testing.T, p Protocol, v0 *population.Vector, trials int, seed uint64) (mean, variance []float64) {
	t.Helper()
	r := rng.New(seed)
	s := &Scratch{}
	k := v0.K()
	sum := make([]float64, k)
	sumSq := make([]float64, k)
	v := v0.Clone()
	for i := 0; i < trials; i++ {
		v.CopyFrom(v0)
		p.Step(r, v, s)
		for j := 0; j < k; j++ {
			c := float64(v.Count(j))
			sum[j] += c
			sumSq[j] += c * c
		}
	}
	mean = make([]float64, k)
	variance = make([]float64, k)
	for j := 0; j < k; j++ {
		mean[j] = sum[j] / float64(trials)
		variance[j] = sumSq[j]/float64(trials) - mean[j]*mean[j]
	}
	return mean, variance
}

// expectedNextCount3Maj returns n·E[α'(i)] per Lemma 4.1(i).
func expectedNextCount3Maj(v *population.Vector, i int) float64 {
	return float64(v.N()) * v.Alpha(i) * (1 + v.Alpha(i) - v.Gamma())
}

// exactVarNextCount3Maj: counts'(i) ~ Bin(n, p_i), so Var = n·p(1−p).
func exactVarNextCount3Maj(v *population.Vector, i int) float64 {
	p := v.Alpha(i) * (1 + v.Alpha(i) - v.Gamma())
	return float64(v.N()) * p * (1 - p)
}

// exactVarNextCount2Choices: counts'(i) is a sum of independent
// per-vertex indicators with the two success probabilities of Eq. (6).
func exactVarNextCount2Choices(v *population.Vector, i int) float64 {
	a := v.Alpha(i)
	g := v.Gamma()
	pOwn := 1 - g + a*a
	pOther := a * a
	ci := float64(v.Count(i))
	rest := float64(v.N()) - ci
	return ci*pOwn*(1-pOwn) + rest*pOther*(1-pOther)
}

func testConfigs() []*population.Vector {
	return []*population.Vector{
		population.MustFromCounts([]int64{500, 300, 150, 50}),
		population.MustFromCounts([]int64{250, 250, 250, 250}),
		population.MustFromCounts([]int64{900, 50, 25, 25}),
		population.MustFromCounts([]int64{10, 700, 290}),
	}
}

func TestThreeMajorityMeanMatchesLemma41(t *testing.T) {
	const trials = 20000
	for ci, v0 := range testConfigs() {
		mean, _ := monteCarloMoments(t, ThreeMajority{}, v0, trials, 100+uint64(ci))
		for i := 0; i < v0.K(); i++ {
			want := expectedNextCount3Maj(v0, i)
			sd := math.Sqrt(exactVarNextCount3Maj(v0, i))
			se := sd / math.Sqrt(trials)
			if math.Abs(mean[i]-want) > 5*se+1e-9 {
				t.Errorf("config %d opinion %d: mean %v, want %v (se %v)", ci, i, mean[i], want, se)
			}
		}
	}
}

func TestThreeMajorityVarianceExact(t *testing.T) {
	const trials = 20000
	for ci, v0 := range testConfigs() {
		_, variance := monteCarloMoments(t, ThreeMajority{}, v0, trials, 200+uint64(ci))
		for i := 0; i < v0.K(); i++ {
			want := exactVarNextCount3Maj(v0, i)
			if want < 1 {
				continue
			}
			if math.Abs(variance[i]-want) > 0.15*want {
				t.Errorf("config %d opinion %d: variance %v, want %v", ci, i, variance[i], want)
			}
		}
	}
}

func TestTwoChoicesMeanMatchesLemma41(t *testing.T) {
	// Lemma 4.1(i) gives the same conditional mean for both dynamics.
	const trials = 20000
	for ci, v0 := range testConfigs() {
		mean, _ := monteCarloMoments(t, TwoChoices{}, v0, trials, 300+uint64(ci))
		for i := 0; i < v0.K(); i++ {
			want := expectedNextCount3Maj(v0, i)
			sd := math.Sqrt(exactVarNextCount2Choices(v0, i))
			se := sd/math.Sqrt(trials) + 1e-9
			if math.Abs(mean[i]-want) > 5*se {
				t.Errorf("config %d opinion %d: mean %v, want %v (se %v)", ci, i, mean[i], want, se)
			}
		}
	}
}

func TestTwoChoicesVarianceExact(t *testing.T) {
	const trials = 20000
	for ci, v0 := range testConfigs() {
		_, variance := monteCarloMoments(t, TwoChoices{}, v0, trials, 400+uint64(ci))
		for i := 0; i < v0.K(); i++ {
			want := exactVarNextCount2Choices(v0, i)
			if want < 1 {
				continue
			}
			if math.Abs(variance[i]-want) > 0.15*want {
				t.Errorf("config %d opinion %d: variance %v, want %v", ci, i, variance[i], want)
			}
		}
	}
}

// TestFastMatchesReference compares the empirical one-round mean of the
// O(live) samplers against the literal per-vertex reference steppers.
func TestFastMatchesReference(t *testing.T) {
	pairs := []struct {
		fast, ref Protocol
	}{
		{ThreeMajority{}, Reference{Rule: RefThreeMajority}},
		{TwoChoices{}, Reference{Rule: RefTwoChoices}},
		{Voter{}, Reference{Rule: RefVoter}},
		{Median{}, Reference{Rule: RefMedian}},
	}
	v0 := population.MustFromCounts([]int64{400, 250, 250, 100})
	const trials = 15000
	for _, pair := range pairs {
		pair := pair
		t.Run(pair.fast.Name(), func(t *testing.T) {
			fm, fv := monteCarloMoments(t, pair.fast, v0, trials, 500)
			rm, _ := monteCarloMoments(t, pair.ref, v0, trials, 600)
			for i := 0; i < v0.K(); i++ {
				// Two independent Monte Carlo means; compare within
				// combined standard error.
				se := math.Sqrt(2*fv[i]/trials) + 1e-9
				if math.Abs(fm[i]-rm[i]) > 6*se {
					t.Errorf("opinion %d: fast mean %v vs reference mean %v (se %v)", i, fm[i], rm[i], se)
				}
			}
		})
	}
}

// TestHMajority3MatchesThreeMajority verifies the distributional
// equivalence (majority of 3 with uniform tie-break == Definition 3.1
// 3-Majority) by forcing the H >= 4 sampled code path with H = 3
// semantics: we compare HMajority{5}'s invariants separately and the
// closed-form h=3 equality analytically via the sampled path of a
// custom 3-sample majority.
func TestHMajority3MatchesThreeMajority(t *testing.T) {
	// HMajority{3} delegates to ThreeMajority; verify the *sampled*
	// law agrees by comparing HMajority{3} (closed form) to the
	// reference three-majority stepper.
	v0 := population.MustFromCounts([]int64{300, 200, 100})
	const trials = 15000
	hm, hv := monteCarloMoments(t, HMajority{H: 3}, v0, trials, 700)
	rm, _ := monteCarloMoments(t, Reference{Rule: RefThreeMajority}, v0, trials, 800)
	for i := 0; i < v0.K(); i++ {
		se := math.Sqrt(2*hv[i]/trials) + 1e-9
		if math.Abs(hm[i]-rm[i]) > 6*se {
			t.Errorf("opinion %d: h=3 mean %v vs 3-majority reference %v", i, hm[i], rm[i])
		}
	}
}

// TestHMajorityDriftStrengthens: larger h gives stronger drift toward
// the current plurality, so E[count of the largest opinion] should be
// non-decreasing in h from a biased configuration.
func TestHMajorityDriftStrengthens(t *testing.T) {
	v0 := population.MustFromCounts([]int64{400, 300, 300})
	const trials = 8000
	prev := -math.MaxFloat64
	for _, h := range []int{1, 3, 5, 7} {
		mean, _ := monteCarloMoments(t, HMajority{H: h}, v0, trials, 900+uint64(h))
		if mean[0] < prev-3 { // small slack for Monte Carlo noise
			t.Errorf("h=%d: plurality mean %v dropped below h-smaller value %v", h, mean[0], prev)
		}
		prev = mean[0]
	}
}

// TestMedianAdoptionProbMatchesSampledLaw cross-checks the closed-form
// per-class CDF used by the O(k²) Median stepper against Monte Carlo
// frequencies from the reference stepper.
func TestMedianAdoptionProbMatchesSampledLaw(t *testing.T) {
	v0 := population.MustFromCounts([]int64{300, 500, 200})
	// All mass of class 0 transitions with the closed-form pmf; check
	// each destination probability sums to 1 and matches frequencies.
	for own := 0; own < 3; own++ {
		total := 0.0
		for x := 0; x < 3; x++ {
			p := MedianAdoptionProb(v0, own, x)
			if p < -1e-12 || p > 1+1e-12 {
				t.Fatalf("pmf out of range: own=%d x=%d p=%v", own, x, p)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("pmf for own=%d sums to %v", own, total)
		}
	}
	// Monte Carlo: track where class-2 vertices end up under the fast
	// stepper; destination 0 requires both samples < own.
	r := rng.New(42)
	s := &Scratch{}
	const trials = 20000
	sum := 0.0
	for i := 0; i < trials; i++ {
		v := v0.Clone()
		Median{}.Step(r, v, s)
		sum += float64(v.Count(0))
	}
	want := 0.0
	for own := 0; own < 3; own++ {
		want += float64(v0.Count(own)) * MedianAdoptionProb(v0, own, 0)
	}
	got := sum / trials
	if math.Abs(got-want) > 0.02*want+1 {
		t.Errorf("median: mean next count(0) = %v, want %v", got, want)
	}
}

// TestGammaSubmartingale verifies Lemma 4.1(iii): E[γ'] >= γ for both
// headline dynamics, at several configurations.
func TestGammaSubmartingale(t *testing.T) {
	const trials = 30000
	for _, p := range []Protocol{ThreeMajority{}, TwoChoices{}} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for ci, v0 := range testConfigs() {
				r := rng.New(1000 + uint64(ci))
				s := &Scratch{}
				sum := 0.0
				for i := 0; i < trials; i++ {
					v := v0.Clone()
					p.Step(r, v, s)
					sum += v.Gamma()
				}
				meanGamma := sum / trials
				// Allow a tiny Monte Carlo tolerance below γ.
				if meanGamma < v0.Gamma()-0.002 {
					t.Errorf("config %d: E[γ'] = %v < γ = %v", ci, meanGamma, v0.Gamma())
				}
			}
		})
	}
}

// TestVarianceBoundsLemma41 verifies that the paper's variance *bounds*
// (Lemma 4.1(i)) indeed dominate the exact variances.
func TestVarianceBoundsLemma41(t *testing.T) {
	for _, v0 := range testConfigs() {
		n := float64(v0.N())
		for i := 0; i < v0.K(); i++ {
			a := v0.Alpha(i)
			g := v0.Gamma()
			exact3 := exactVarNextCount3Maj(v0, i) / (n * n) // Var of α'(i)
			bound3 := a / n
			if exact3 > bound3+1e-12 {
				t.Errorf("3-majority: exact var %v exceeds Lemma 4.1 bound %v", exact3, bound3)
			}
			exact2 := exactVarNextCount2Choices(v0, i) / (n * n)
			bound2 := a * (a + g) / n
			if exact2 > bound2+1e-12 {
				t.Errorf("2-choices: exact var %v exceeds Lemma 4.1 bound %v", exact2, bound2)
			}
		}
	}
}
