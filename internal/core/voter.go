package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// Voter is the 1-Choice (pull voter) dynamics: each vertex adopts the
// opinion of a single uniformly random vertex. It is the classic
// baseline against which 3-Majority's and 2-Choices' drift is
// contrasted — the voter model has no drift toward the plurality
// (E[α'(i)] = α(i)) and reaches consensus only by diffusion, in Θ(n)
// expected rounds.
//
// One synchronous round is exactly Multinomial(n, α).
type Voter struct{}

var _ Protocol = Voter{}

// Name implements Protocol.
func (Voter) Name() string { return "voter" }

// Step implements Protocol.
func (Voter) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	k := v.K()
	counts := v.Counts()
	probs := s.Probs(k)
	nf := float64(v.N())
	for i, c := range counts {
		probs[i] = float64(c) / nf
	}
	next := s.Outs(k)
	r.Multinomial(v.N(), probs, next)
	v.SetAll(next)
}
