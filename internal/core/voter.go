package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// Voter is the 1-Choice (pull voter) dynamics: each vertex adopts the
// opinion of a single uniformly random vertex. It is the classic
// baseline against which 3-Majority's and 2-Choices' drift is
// contrasted — the voter model has no drift toward the plurality
// (E[α'(i)] = α(i)) and reaches consensus only by diffusion, in Θ(n)
// expected rounds.
//
// One synchronous round is exactly Multinomial(n, α), sampled over the
// live opinions only (extinct opinions have α = 0 and stay extinct).
type Voter struct{}

var _ Protocol = Voter{}

// Name implements Protocol.
func (Voter) Name() string { return "voter" }

// Step implements Protocol.
func (Voter) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	live := v.LiveIndices()
	probs := s.Probs(len(live))
	nf := float64(v.N())
	for j, c := range v.LiveCounts() {
		probs[j] = float64(c) / nf
	}
	next := s.Outs(len(live))
	sampleMultinomialGrouped(r, s, v.N(), v.LiveCounts(), probs, next)
	v.CommitLive(live, next)
}
