package core

import (
	"math"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

func TestLazyZeroBetaEqualsBaseLaw(t *testing.T) {
	v0 := population.MustFromCounts([]int64{300, 200, 100})
	const trials = 15000
	for _, base := range []Protocol{ThreeMajority{}, TwoChoices{}, Voter{}} {
		base := base
		t.Run(base.Name(), func(t *testing.T) {
			lm, lv := monteCarloMoments(t, Lazy{Base: base, Beta: 0}, v0, trials, 1)
			bm, _ := monteCarloMoments(t, base, v0, trials, 2)
			for i := 0; i < v0.K(); i++ {
				se := math.Sqrt(2*lv[i]/trials) + 1e-9
				if math.Abs(lm[i]-bm[i]) > 6*se {
					t.Errorf("opinion %d: lazy0 mean %v vs base mean %v", i, lm[i], bm[i])
				}
			}
		})
	}
}

// TestLazyDriftScaling: the lazy mean drift must be (1−β) times the
// base drift: E[c'(i)] = β·c(i) + (1−β)·n·law(i).
func TestLazyDriftScaling(t *testing.T) {
	v0 := population.MustFromCounts([]int64{500, 300, 200})
	const beta, trials = 0.6, 20000
	for _, base := range []Protocol{ThreeMajority{}, TwoChoices{}} {
		base := base
		t.Run(base.Name(), func(t *testing.T) {
			mean, _ := monteCarloMoments(t, Lazy{Base: base, Beta: beta}, v0, trials, 3)
			for i := 0; i < v0.K(); i++ {
				baseMean := expectedNextCount3Maj(v0, i) // Lemma 4.1 mean, shared by both
				want := beta*float64(v0.Count(i)) + (1-beta)*baseMean
				if math.Abs(mean[i]-want) > 0.02*want+1 {
					t.Errorf("opinion %d: lazy mean %v, want %v", i, mean[i], want)
				}
			}
		})
	}
}

func TestLazyInvariantsAndValidity(t *testing.T) {
	r := rng.New(4)
	s := &Scratch{}
	for _, base := range []Protocol{ThreeMajority{}, TwoChoices{}, Voter{}, HMajority{H: 5}} {
		p := Lazy{Base: base, Beta: 0.5}
		v := population.MustFromCounts([]int64{50, 0, 30, 20})
		for round := 0; round < 20; round++ {
			p.Step(r, v, s)
			if err := v.Validate(); err != nil {
				t.Fatalf("%s round %d: %v", p.Name(), round, err)
			}
			if v.Count(1) != 0 {
				t.Fatalf("%s: extinct opinion revived", p.Name())
			}
		}
	}
}

func TestLazySlowsConsensus(t *testing.T) {
	run := func(beta float64, seed uint64) int {
		v := population.Balanced(5000, 8)
		res := Run(rng.New(seed), Lazy{Base: ThreeMajority{}, Beta: beta}, v, RunConfig{MaxRounds: 500000})
		if !res.Consensus {
			t.Fatalf("beta=%v did not converge", beta)
		}
		return res.Rounds
	}
	fast, slow := 0, 0
	for i := uint64(0); i < 5; i++ {
		fast += run(0, 10+i)
		slow += run(0.75, 20+i)
	}
	// β = 0.75 scales the drift by 1/4; require at least 2x slowdown
	// to keep the test robust.
	if slow < 2*fast {
		t.Errorf("lazy(0.75) rounds %d not >> plain rounds %d", slow, fast)
	}
}

func TestLazyPanicsOnBadConfig(t *testing.T) {
	v := population.MustFromCounts([]int64{5, 5})
	t.Run("beta out of range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		Lazy{Base: ThreeMajority{}, Beta: 1}.Step(rng.New(1), v, &Scratch{})
	})
	t.Run("unsupported base", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		Lazy{Base: Median{}, Beta: 0.5}.Step(rng.New(1), v, &Scratch{})
	})
}

func TestLazyName(t *testing.T) {
	p := Lazy{Base: TwoChoices{}, Beta: 0.25}
	if p.Name() != "lazy0.25-2-choices" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestLazyConsensusAbsorbing(t *testing.T) {
	r := rng.New(5)
	s := &Scratch{}
	v := population.MustFromCounts([]int64{0, 77})
	p := Lazy{Base: TwoChoices{}, Beta: 0.3}
	for i := 0; i < 10; i++ {
		p.Step(r, v, s)
		if op, ok := v.Consensus(); !ok || op != 1 {
			t.Fatalf("consensus broken: %v", v.Counts())
		}
	}
}
