package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// RunConfig controls a single dynamics run.
type RunConfig struct {
	// MaxRounds bounds the run; 0 means DefaultMaxRounds. A run that
	// hits the bound reports Consensus = false.
	MaxRounds int
	// Observer, if non-nil, is called after every round (and once for
	// round 0 with the initial configuration). Returning true stops
	// the run early. The Vector must not be retained across calls.
	Observer func(round int, v *population.Vector) (stop bool)
	// PostRound, if non-nil, is invoked after each round's protocol
	// step and before the Observer; adversaries hook in here and may
	// mutate the configuration (preserving its invariants).
	PostRound func(round int, r *rng.Rand, v *population.Vector)
	// Done, if non-nil, replaces the default consensus test as the
	// termination condition (e.g. Undecided-State Dynamics terminates
	// on decided consensus; norm-growth experiments terminate on a γ
	// threshold).
	Done func(v *population.Vector) bool
	// Scratch, if non-nil, is the sampler arena to (re)use; batch
	// executors pass one shared arena across a whole trial range so
	// per-trial allocations amortize to zero. Scratch reuse never
	// changes results: every sampler fully (re)initializes the
	// portions it reads.
	Scratch *Scratch
}

// DefaultMaxRounds is the fallback round bound; it is far above the
// paper's Õ(n)-round worst cases for any configuration the library's
// experiments run, so hitting it indicates a stalled process (e.g. an
// overwhelming adversary) rather than normal slowness.
const DefaultMaxRounds = 50_000_000

// RunResult reports how a run ended.
type RunResult struct {
	// Rounds is the number of protocol steps executed.
	Rounds int
	// Consensus reports whether the termination condition was reached
	// (as opposed to hitting MaxRounds).
	Consensus bool
	// Winner is the consensus opinion when Consensus is true and the
	// run ended in an actual single-opinion state; otherwise the
	// currently largest opinion.
	Winner int
	// Gamma and Live are the final configuration's potential Γ = Σ α²
	// and live-opinion count — the hitting-time observables a run
	// stopped at a phase boundary (observer stop) is run for. Both are
	// O(1) reads of the Vector's incremental aggregates.
	Gamma float64
	Live  int
}

// Run executes protocol p from configuration v (mutated in place)
// until consensus, the Done condition, an Observer stop, or the round
// bound. It is the single-threaded building block; internal/sim layers
// parallel multi-trial execution on top of it.
func Run(r *rng.Rand, p Protocol, v *population.Vector, cfg RunConfig) RunResult {
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	done := cfg.Done
	if done == nil {
		done = func(v *population.Vector) bool {
			_, ok := v.Consensus()
			return ok
		}
	}
	s := cfg.Scratch
	if s == nil {
		s = &Scratch{}
	}

	finish := func(rounds int, consensus bool) RunResult {
		// At actual consensus the winner is the single live opinion,
		// available in O(1); only runs stopped by a custom Done, an
		// Observer, or the round bound pay the O(live) plurality scan.
		winner, ok := v.Consensus()
		if !ok {
			winner, _ = v.MaxOpinion()
		}
		return RunResult{Rounds: rounds, Consensus: consensus, Winner: winner, Gamma: v.Gamma(), Live: v.Live()}
	}

	if cfg.Observer != nil && cfg.Observer(0, v) {
		return finish(0, done(v))
	}
	if done(v) {
		return finish(0, true)
	}
	for t := 1; t <= maxRounds; t++ {
		p.Step(r, v, s)
		if cfg.PostRound != nil {
			cfg.PostRound(t, r, v)
		}
		if cfg.Observer != nil && cfg.Observer(t, v) {
			return finish(t, done(v))
		}
		if done(v) {
			return finish(t, true)
		}
	}
	return finish(maxRounds, false)
}
