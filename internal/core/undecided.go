package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// Undecided is the Undecided-State Dynamics (paper §2.5; Angluin,
// Aspnes & Eisenstat 2007 and the long line of follow-ups), included
// because the paper names its k-opinion consensus time as the central
// open question the new techniques might attack.
//
// The configuration uses opinion slot K−1 of the Vector as the
// "undecided" state; slots 0..K−2 are real opinions. In the pull
// variant implemented here each vertex samples one uniformly random
// vertex per round:
//
//   - a decided vertex keeps its opinion if the sample is undecided or
//     agrees with it, and becomes undecided otherwise;
//   - an undecided vertex adopts the sample's state (possibly staying
//     undecided).
//
// One synchronous round in counts: per decided class i the departures
// D(i) ~ Bin(c(i), 1 − α(i) − u) move to undecided, and the undecided
// class redistributes as T ~ Multinomial(c(u), α) over all states.
//
// Unlike the paper's dynamics, the undecided slot can be revived after
// emptying (departures flow into it every round), so the O(live) step
// commits over the live set extended with the undecided slot. Extinct
// decided opinions still never return.
type Undecided struct{}

var _ Protocol = Undecided{}

// Name implements Protocol.
func (Undecided) Name() string { return "undecided" }

// UndecidedSlot returns the index of the undecided state for a
// configuration with k slots.
func UndecidedSlot(k int) int { return k - 1 }

// Step implements Protocol.
func (Undecided) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	k := v.K()
	if k < 2 {
		return // one slot means everyone is undecided or consensus is trivial
	}
	u := int32(k - 1)
	cu := v.Count(int(u))
	live := v.LiveIndices()

	// The commit set is the live opinions plus the undecided slot,
	// which departures may revive. u is the highest index, so appending
	// it keeps the list ascending; when u is already live it is
	// already the last entry.
	idx := live
	if cu == 0 {
		buf := s.Idx(len(live) + 1)
		copy(buf, live)
		buf[len(live)] = u
		idx = buf
	}
	L := len(idx)
	uSlot := L - 1 // dense slot of u in idx, in both cases above
	nf := float64(v.N())
	uFrac := float64(cu) / nf

	// Departures from each decided class into the undecided pool.
	departed := s.Aux(L)
	var totalDeparted int64
	departed[uSlot] = 0
	for j := 0; j < L; j++ {
		if idx[j] == u {
			continue
		}
		c := v.Count(int(idx[j]))
		a := float64(c) / nf
		leave := 1 - a - uFrac
		if leave < 0 {
			leave = 0
		}
		departed[j] = r.Binomial(c, leave)
		totalDeparted += departed[j]
	}

	// Redistribution of the undecided pool over all live states.
	next := s.Outs(L)
	if cu > 0 {
		// u is live here, so idx == live and every slot has positive mass.
		probs := s.Probs(L)
		for j, i := range idx {
			probs[j] = float64(v.Count(int(i))) / nf
		}
		sampleMultinomial(r, s, cu, probs, next)
	} else {
		for j := range next {
			next[j] = 0
		}
	}
	for j := 0; j < L; j++ {
		if idx[j] == u {
			continue
		}
		next[j] += v.Count(int(idx[j])) - departed[j]
	}
	next[uSlot] += totalDeparted
	v.CommitLive(idx, next)
}

// DecidedConsensus reports whether all vertices are decided on one
// opinion, which is the USD termination condition.
func DecidedConsensus(v *population.Vector) (opinion int, ok bool) {
	u := UndecidedSlot(v.K())
	if v.Count(u) != 0 {
		return 0, false
	}
	return v.Consensus()
}
