package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// Undecided is the Undecided-State Dynamics (paper §2.5; Angluin,
// Aspnes & Eisenstat 2007 and the long line of follow-ups), included
// because the paper names its k-opinion consensus time as the central
// open question the new techniques might attack.
//
// The configuration uses opinion slot K−1 of the Vector as the
// "undecided" state; slots 0..K−2 are real opinions. In the pull
// variant implemented here each vertex samples one uniformly random
// vertex per round:
//
//   - a decided vertex keeps its opinion if the sample is undecided or
//     agrees with it, and becomes undecided otherwise;
//   - an undecided vertex adopts the sample's state (possibly staying
//     undecided).
//
// One synchronous round in counts: per decided class i the departures
// D(i) ~ Bin(c(i), 1 − α(i) − u) move to undecided, and the undecided
// class redistributes as T ~ Multinomial(c(u), α) over all states.
type Undecided struct{}

var _ Protocol = Undecided{}

// Name implements Protocol.
func (Undecided) Name() string { return "undecided" }

// UndecidedSlot returns the index of the undecided state for a
// configuration with k slots.
func UndecidedSlot(k int) int { return k - 1 }

// Step implements Protocol.
func (Undecided) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	k := v.K()
	if k < 2 {
		return // one slot means everyone is undecided or consensus is trivial
	}
	u := k - 1
	counts := v.Counts()
	nf := float64(v.N())
	uFrac := float64(counts[u]) / nf

	// Departures from each decided class into the undecided pool.
	departed := s.Aux(k)
	var totalDeparted int64
	for i := 0; i < u; i++ {
		departed[i] = 0
		if counts[i] == 0 {
			continue
		}
		a := float64(counts[i]) / nf
		leave := 1 - a - uFrac
		if leave < 0 {
			leave = 0
		}
		departed[i] = r.Binomial(counts[i], leave)
		totalDeparted += departed[i]
	}

	// Redistribution of the undecided pool over all states.
	next := s.Outs(k)
	if counts[u] > 0 {
		probs := s.Probs(k)
		for i, c := range counts {
			probs[i] = float64(c) / nf
		}
		r.Multinomial(counts[u], probs, next)
	} else {
		for i := range next {
			next[i] = 0
		}
	}
	for i := 0; i < u; i++ {
		next[i] += counts[i] - departed[i]
	}
	next[u] += totalDeparted
	v.SetAll(next)
}

// DecidedConsensus reports whether all vertices are decided on one
// opinion, which is the USD termination condition.
func DecidedConsensus(v *population.Vector) (opinion int, ok bool) {
	u := UndecidedSlot(v.K())
	if v.Count(u) != 0 {
		return 0, false
	}
	return v.Consensus()
}
