package core

import (
	"math"
	"testing"

	"plurality/internal/population"
)

// TestUndecidedOneRoundLaw pins the USD counts update to its exact
// conditional expectations: a decided vertex of opinion i stays with
// probability α(i) + u (sampled same opinion or an undecided vertex)
// and becomes undecided otherwise; an undecided vertex adopts opinion
// i with probability α(i). Hence
//
//	E[c'(i)] = c(i)·(α(i) + u) + c(u)·α(i)
//	E[c'(u)] = c(u)·u + Σ_i c(i)·(1 − α(i) − u).
func TestUndecidedOneRoundLaw(t *testing.T) {
	// Slots: opinions {0, 1, 2}, slot 3 = undecided.
	v0 := population.MustFromCounts([]int64{400, 250, 150, 200})
	const trials = 30000
	mean, _ := monteCarloMoments(t, Undecided{}, v0, trials, 777)

	n := float64(v0.N())
	u := v0.Alpha(3)
	for i := 0; i < 3; i++ {
		a := v0.Alpha(i)
		want := float64(v0.Count(i))*(a+u) + float64(v0.Count(3))*a
		se := math.Sqrt(n) / math.Sqrt(trials) * 3 // coarse bound on SEM of a count
		if math.Abs(mean[i]-want) > 6*se+1 {
			t.Errorf("opinion %d: mean %v, want %v", i, mean[i], want)
		}
	}
	wantU := float64(v0.Count(3)) * u
	for i := 0; i < 3; i++ {
		a := v0.Alpha(i)
		wantU += float64(v0.Count(i)) * (1 - a - u)
	}
	if math.Abs(mean[3]-wantU) > 10 {
		t.Errorf("undecided pool mean %v, want %v", mean[3], wantU)
	}
}

// TestUndecidedBiasAmplification: USD's signature property is that the
// undecided phase amplifies the leader's relative advantage — from a
// biased decided start, the leading opinion's expected share grows.
func TestUndecidedBiasAmplification(t *testing.T) {
	v0 := population.MustFromCounts([]int64{550, 450, 0}) // slot 2 = undecided
	const trials = 20000
	mean, _ := monteCarloMoments(t, Undecided{}, v0, trials, 778)
	// After one round, decided counts shrink (collisions create
	// undecided) but the leader keeps a larger share of the decided
	// mass than its initial 55%.
	decided := mean[0] + mean[1]
	if decided >= 1000 {
		t.Fatalf("no undecided vertices created: %v", mean)
	}
	if share := mean[0] / decided; share <= 0.55 {
		t.Errorf("leader decided-share %v did not grow from 0.55", share)
	}
}

// TestUndecidedSingleSlot covers the degenerate k = 1 configuration.
func TestUndecidedSingleSlot(t *testing.T) {
	v := population.MustFromCounts([]int64{10})
	Undecided{}.Step(nil, v, &Scratch{}) // must be a no-op, not a panic
	if v.Count(0) != 10 {
		t.Fatalf("counts changed: %v", v.Counts())
	}
}
