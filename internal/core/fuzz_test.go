package core

import (
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// FuzzStepInvariants drives both headline dynamics from arbitrary
// configurations and checks conservation, non-negativity, validity
// (extinct opinions stay extinct) and consensus absorption.
func FuzzStepInvariants(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint64(1))
	f.Add([]byte{0, 1}, uint64(2))
	f.Add([]byte{255, 0, 0, 255}, uint64(3))
	f.Add([]byte{1}, uint64(4))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		counts := make([]int64, len(raw))
		var n int64
		for i, b := range raw {
			counts[i] = int64(b)
			n += int64(b)
		}
		if n == 0 {
			counts[0] = 1
			n = 1
		}
		extinct := make([]bool, len(counts))
		for i, c := range counts {
			extinct[i] = c == 0
		}
		r := rng.New(seed)
		s := &Scratch{}
		for _, p := range []Protocol{ThreeMajority{}, TwoChoices{}, Voter{}, Median{}} {
			v := population.MustFromCounts(counts)
			for round := 0; round < 4; round++ {
				p.Step(r, v, s)
				if err := v.Validate(); err != nil {
					t.Fatalf("%s: %v (from %v)", p.Name(), err, counts)
				}
				if v.N() != n {
					t.Fatalf("%s: population changed %d -> %d", p.Name(), n, v.N())
				}
				for i, wasExtinct := range extinct {
					if wasExtinct && v.Count(i) != 0 {
						t.Fatalf("%s: extinct opinion %d revived (from %v)", p.Name(), i, counts)
					}
				}
			}
		}
	})
}
