package core

import (
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

func TestRunReachesConsensus(t *testing.T) {
	for _, p := range []Protocol{ThreeMajority{}, TwoChoices{}, Median{}} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			r := rng.New(42)
			v := population.Balanced(2000, 8)
			res := Run(r, p, v, RunConfig{MaxRounds: 200000})
			if !res.Consensus {
				t.Fatalf("no consensus within %d rounds", res.Rounds)
			}
			op, ok := v.Consensus()
			if !ok || op != res.Winner {
				t.Fatalf("result winner %d inconsistent with state %v", res.Winner, v.Counts())
			}
			if res.Rounds <= 0 {
				t.Fatalf("rounds = %d", res.Rounds)
			}
		})
	}
}

func TestRunImmediateConsensus(t *testing.T) {
	r := rng.New(1)
	v := population.MustFromCounts([]int64{0, 100})
	res := Run(r, ThreeMajority{}, v, RunConfig{})
	if !res.Consensus || res.Rounds != 0 || res.Winner != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestRunMaxRoundsCap(t *testing.T) {
	r := rng.New(2)
	v := population.Balanced(100000, 100)
	res := Run(r, TwoChoices{}, v, RunConfig{MaxRounds: 3})
	if res.Consensus {
		t.Fatal("consensus impossible in 3 rounds from balanced 100k/100")
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
}

func TestRunObserverSeesAllRounds(t *testing.T) {
	r := rng.New(3)
	v := population.Balanced(500, 4)
	var rounds []int
	res := Run(r, ThreeMajority{}, v, RunConfig{
		MaxRounds: 100000,
		Observer: func(round int, v *population.Vector) bool {
			rounds = append(rounds, round)
			return false
		},
	})
	if len(rounds) != res.Rounds+1 {
		t.Fatalf("observer called %d times for %d rounds", len(rounds), res.Rounds)
	}
	for i, got := range rounds {
		if got != i {
			t.Fatalf("observer round sequence broken at %d: %v", i, got)
		}
	}
}

func TestRunObserverEarlyStop(t *testing.T) {
	r := rng.New(4)
	v := population.Balanced(1000, 4)
	res := Run(r, ThreeMajority{}, v, RunConfig{
		Observer: func(round int, v *population.Vector) bool { return round >= 2 },
	})
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (early stop)", res.Rounds)
	}
	if res.Consensus {
		t.Fatal("early-stopped run should not report consensus")
	}
}

func TestRunCustomDone(t *testing.T) {
	r := rng.New(5)
	v := population.Balanced(10000, 100)
	target := 3 * v.Gamma()
	res := Run(r, ThreeMajority{}, v, RunConfig{
		Done: func(v *population.Vector) bool { return v.Gamma() >= target },
	})
	if !res.Consensus {
		t.Fatal("gamma-threshold condition never reached")
	}
	if v.Gamma() < target {
		t.Fatalf("final gamma %v below target %v", v.Gamma(), target)
	}
}

func TestRunPostRoundMutation(t *testing.T) {
	// A post-round hook that keeps restoring balance prevents progress.
	r := rng.New(6)
	init := population.Balanced(1000, 2)
	v := init.Clone()
	res := Run(r, ThreeMajority{}, v, RunConfig{
		MaxRounds: 50,
		PostRound: func(round int, r *rng.Rand, v *population.Vector) {
			v.CopyFrom(init)
		},
	})
	if res.Consensus {
		t.Fatal("consensus despite restoring adversary")
	}
	if res.Rounds != 50 {
		t.Fatalf("rounds = %d, want 50", res.Rounds)
	}
}

func TestRunValidity(t *testing.T) {
	// Winner must be an initially-supported opinion (validity).
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		v := population.MustFromCounts([]int64{0, 300, 200, 0, 500})
		res := Run(r, TwoChoices{}, v, RunConfig{})
		if !res.Consensus {
			t.Fatal("no consensus")
		}
		if res.Winner == 0 || res.Winner == 3 {
			t.Fatalf("winner %d was not initially supported", res.Winner)
		}
	}
}

func TestRunUndecidedDynamics(t *testing.T) {
	r := rng.New(8)
	// 3 real opinions + undecided slot; biased toward opinion 0.
	v := population.MustFromCounts([]int64{500, 300, 200, 0})
	res := Run(r, Undecided{}, v, RunConfig{
		MaxRounds: 200000,
		Done: func(v *population.Vector) bool {
			_, ok := DecidedConsensus(v)
			return ok
		},
	})
	if !res.Consensus {
		t.Fatalf("USD did not reach decided consensus in %d rounds", res.Rounds)
	}
	if u := v.Count(UndecidedSlot(v.K())); u != 0 {
		t.Fatalf("undecided pool non-empty at termination: %d", u)
	}
}

func BenchmarkThreeMajorityRoundK64(b *testing.B) {
	benchmarkRound(b, ThreeMajority{}, 1_000_000, 64)
}

func BenchmarkThreeMajorityRoundK1024(b *testing.B) {
	benchmarkRound(b, ThreeMajority{}, 1_000_000, 1024)
}

func BenchmarkTwoChoicesRoundK64(b *testing.B) {
	benchmarkRound(b, TwoChoices{}, 1_000_000, 64)
}

func BenchmarkTwoChoicesRoundK1024(b *testing.B) {
	benchmarkRound(b, TwoChoices{}, 1_000_000, 1024)
}

func BenchmarkReferenceThreeMajorityRound(b *testing.B) {
	benchmarkRound(b, Reference{Rule: RefThreeMajority}, 100_000, 64)
}

func benchmarkRound(b *testing.B, p Protocol, n int64, k int) {
	r := rng.New(1)
	v0 := population.Balanced(n, k)
	v := v0.Clone()
	s := &Scratch{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.CopyFrom(v0)
		p.Step(r, v, s)
	}
}
