package core

import (
	"reflect"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// roundObs is one round's full observable surface, as a stop condition
// or trace sampler would read it through View.
type roundObs struct {
	round    int
	n        int64
	gamma    float64
	live     int
	maxOp    int
	maxCount int64
	sumCubes float64
}

func observe(round int, v View) roundObs {
	op, c := v.MaxOpinion()
	return roundObs{
		round: round, n: v.N(), gamma: v.Gamma(), live: v.Live(),
		maxOp: op, maxCount: c, sumCubes: v.SumCubes(),
	}
}

// serialReference runs one trial on the generic Vector engine and
// records every round's observables — the reference the batch runner
// must reproduce bitwise.
func serialReference(p Protocol, counts []int64, seed uint64, maxRounds int) (RunResult, []roundObs) {
	v := population.MustFromCounts(counts)
	var seen []roundObs
	res := Run(rng.New(seed), p, v, RunConfig{
		MaxRounds: maxRounds,
		Observer: func(round int, v *population.Vector) bool {
			seen = append(seen, observe(round, v))
			return false
		},
	})
	return res, seen
}

// batchTrial runs one trial through a BatchRunner with the same
// observer wiring.
func batchTrial(b *BatchRunner, seed uint64, maxRounds int) (RunResult, []roundObs) {
	var seen []roundObs
	res := b.RunTrial(seed, BatchRunConfig{
		MaxRounds: maxRounds,
		Observer: func(round int, v View) bool {
			seen = append(seen, observe(round, v))
			return false
		},
	})
	return res, seen
}

func assertTrialMatches(t *testing.T, p Protocol, b *BatchRunner, counts []int64, seed uint64, maxRounds int) {
	t.Helper()
	wantRes, wantObs := serialReference(p, counts, seed, maxRounds)
	gotRes, gotObs := batchTrial(b, seed, maxRounds)
	if gotRes != wantRes {
		t.Fatalf("%s seed %#x: result %+v, serial %+v (counts %v)", p.Name(), seed, gotRes, wantRes, counts)
	}
	if !reflect.DeepEqual(gotObs, wantObs) {
		for i := range wantObs {
			if i >= len(gotObs) || gotObs[i] != wantObs[i] {
				t.Fatalf("%s seed %#x: round %d observables %+v, serial %+v (counts %v)",
					p.Name(), seed, i, gotObs[i], wantObs[i], counts)
			}
		}
		t.Fatalf("%s seed %#x: observed %d rounds, serial %d", p.Name(), seed, len(gotObs), len(wantObs))
	}
}

// batchProtocols is every dynamics the runner must reproduce: the
// three flat kernels, an h-majority alias of each, and generic-engine
// protocols without a flat kernel.
var batchProtocols = []Protocol{
	ThreeMajority{},
	TwoChoices{},
	Voter{},
	HMajority{H: 1},
	HMajority{H: 3},
	HMajority{H: 5},
	Median{},
	Undecided{},
}

func TestBatchRunnerIdenticalToSerial(t *testing.T) {
	configs := [][]int64{
		{50, 50, 50, 50},
		{1, 1, 1, 1, 1, 1, 1, 1},
		{997, 1, 1, 1},
		{0, 40, 0, 60, 0},
		{200},
		// Large enough for the BTPE binomial regime and the 2-choices
		// direct-per-slot path, small enough for the voter walk.
		{1 << 14, 1 << 12, 1 << 10, 5, 5, 5},
	}
	for _, p := range batchProtocols {
		for _, counts := range configs {
			template := population.MustFromCounts(counts)
			b := NewBatchRunner(p, template)
			for seed := uint64(0); seed < 3; seed++ {
				assertTrialMatches(t, p, b, counts, 0x9d2c^seed, 0)
			}
		}
	}
}

// TestBatchRunnerReusedStateIdentical pins full per-trial isolation:
// re-running a seed on a runner dirtied by other trials (including a
// MaxRounds cutoff mid-run) reproduces the first run exactly.
func TestBatchRunnerReusedStateIdentical(t *testing.T) {
	counts := []int64{300, 200, 100, 50, 25, 12}
	for _, p := range batchProtocols {
		template := population.MustFromCounts(counts)
		b := NewBatchRunner(p, template)
		firstRes, firstObs := batchTrial(b, 42, 0)
		batchTrial(b, 1001, 0) // dirty the shared state
		batchTrial(b, 7, 3)    // ... and leave a trial cut off mid-run
		againRes, againObs := batchTrial(b, 42, 0)
		if againRes != firstRes || !reflect.DeepEqual(againObs, firstObs) {
			t.Errorf("%s: trial not reproducible on a reused runner: %+v vs %+v",
				p.Name(), againRes, firstRes)
		}
	}
}

// TestBatchRunnerObserverStop: an observer stopping at round 2 must
// leave the same result as the serial engine stopped at round 2.
func TestBatchRunnerObserverStop(t *testing.T) {
	counts := []int64{500, 300, 200, 100}
	for _, p := range batchProtocols {
		stopAt := func(round int, _ View) bool { return round >= 2 }
		v := population.MustFromCounts(counts)
		want := Run(rng.New(5), p, v, RunConfig{
			Observer: func(round int, _ *population.Vector) bool { return round >= 2 },
		})
		b := NewBatchRunner(p, population.MustFromCounts(counts))
		got := b.RunTrial(5, BatchRunConfig{Observer: stopAt})
		if got != want {
			t.Errorf("%s: stopped result %+v, serial %+v", p.Name(), got, want)
		}
	}
}

// FuzzBatchRunnerMatchesSerial drives the batch runner from arbitrary
// configurations, protocols and seeds and requires bitwise identity
// with the serial engine on the result and every round's observables.
func FuzzBatchRunnerMatchesSerial(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint64(1), uint8(0), uint8(10))
	f.Add([]byte{1}, uint64(2), uint8(1), uint8(0))
	f.Add([]byte{255, 0, 0, 255}, uint64(3), uint8(2), uint8(3))
	f.Add([]byte{0, 200, 3}, uint64(4), uint8(3), uint8(50))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, uint64(5), uint8(4), uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64, protoSel uint8, maxRounds uint8) {
		if len(raw) == 0 || len(raw) > 48 {
			return
		}
		counts := make([]int64, len(raw))
		var n int64
		for i, b := range raw {
			counts[i] = int64(b)
			n += int64(b)
		}
		if n == 0 {
			counts[0] = 1
		}
		p := batchProtocols[int(protoSel)%len(batchProtocols)]
		template := population.MustFromCounts(counts)
		b := NewBatchRunner(p, template)
		// Two trials per input: the second runs on dirtied shared state.
		assertTrialMatches(t, p, b, counts, seed, int(maxRounds))
		assertTrialMatches(t, p, b, counts, seed^0x5bf03635, int(maxRounds))
	})
}
