package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// TwoChoices is the 2-Choices dynamics of Definition 3.1: each vertex
// samples two uniformly random vertices w1, w2 (with replacement,
// self-loops included); if opn(w1) = opn(w2) it adopts that opinion,
// otherwise it keeps its own.
//
// One synchronous round is sampled exactly in O(k) by the "agreement"
// decomposition: a vertex's two samples agree with probability γ, and
// conditioned on agreement the agreed opinion D is distributed as
// Pr[D=i] = α(i)²/γ independently of the vertex's own opinion. A
// vertex whose agreed opinion is its own keeps it, which coincides
// with adopting it, so with
//
//	A(j) ~ Bin(c(j), γ)  independent per class (agreeing vertices),
//	T    ~ Multinomial(Σ_j A(j), α²/γ)  (agreed destinations),
//
// the next counts are exactly c'(i) = c(i) − A(i) + T(i). This matches
// the per-vertex law of Eq. (6): Pr[opn'(v)=i] = 1 − γ + α(i)² when
// opn(v)=i and α(i)² otherwise.
type TwoChoices struct{}

var _ Protocol = TwoChoices{}

// Name implements Protocol.
func (TwoChoices) Name() string { return "2-choices" }

// Step implements Protocol.
func (TwoChoices) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	k := v.K()
	counts := v.Counts()
	gamma := v.Gamma()
	if gamma >= 1 {
		return // consensus is absorbing; every pair of samples agrees on the winner
	}
	nf := float64(v.N())

	agree := s.Aux(k)
	var totalAgree int64
	for i, c := range counts {
		if c == 0 {
			agree[i] = 0
			continue
		}
		agree[i] = r.Binomial(c, gamma)
		totalAgree += agree[i]
	}

	next := s.Outs(k)
	if totalAgree == 0 {
		copy(next, counts)
		v.SetAll(next)
		return
	}

	// Destination law of the agreed opinion: q(i) ∝ α(i)². The
	// multinomial sampler normalizes, so the γ divisor is omitted.
	probs := s.Probs(k)
	for i, c := range counts {
		if c == 0 {
			probs[i] = 0
			continue
		}
		a := float64(c) / nf
		probs[i] = a * a
	}
	dest := next // reuse as the multinomial output buffer
	r.Multinomial(totalAgree, probs, dest)
	for i := range dest {
		dest[i] += counts[i] - agree[i]
	}
	v.SetAll(dest)
}

// AdoptionProb returns the exact probability that a vertex currently
// holding opinion own ends round t with opinion i (Eq. (6)). Exported
// for tests and the drift experiments.
func (TwoChoices) AdoptionProb(v *population.Vector, own, i int) float64 {
	a := v.Alpha(i)
	if own == i {
		return 1 - v.Gamma() + a*a
	}
	return a * a
}
