package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// TwoChoices is the 2-Choices dynamics of Definition 3.1: each vertex
// samples two uniformly random vertices w1, w2 (with replacement,
// self-loops included); if opn(w1) = opn(w2) it adopts that opinion,
// otherwise it keeps its own.
//
// One synchronous round is sampled exactly in O(live) by the "agreement"
// decomposition: a vertex's two samples agree with probability γ, and
// conditioned on agreement the agreed opinion D is distributed as
// Pr[D=i] = α(i)²/γ independently of the vertex's own opinion. A
// vertex whose agreed opinion is its own keeps it, which coincides
// with adopting it, so with
//
//	A(j) ~ Bin(c(j), γ)  independent per class (agreeing vertices),
//	T    ~ Multinomial(Σ_j A(j), α²/γ)  (agreed destinations),
//
// the next counts are exactly c'(i) = c(i) − A(i) + T(i). This matches
// the per-vertex law of Eq. (6): Pr[opn'(v)=i] = 1 − γ + α(i)² when
// opn(v)=i and α(i)² otherwise.
type TwoChoices struct{}

var _ Protocol = TwoChoices{}

// Name implements Protocol.
func (TwoChoices) Name() string { return "2-choices" }

// Step implements Protocol.
func (TwoChoices) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	gamma := v.Gamma()
	if gamma >= 1 {
		return // consensus is absorbing; every pair of samples agrees on the winner
	}
	live := v.LiveIndices()
	L := len(live)
	nf := float64(v.N())

	agree := s.Aux(L)
	totalAgree := sampleBinomialEach(r, s, v, gamma, agree)
	if totalAgree == 0 {
		return // no pair of samples agreed; the configuration is unchanged
	}

	// Destination law of the agreed opinion: q(i) ∝ α(i)². The
	// multinomial sampler normalizes, so the γ divisor is omitted.
	counts := v.LiveCounts()
	probs := s.Probs(L)
	for j, c := range counts {
		a := float64(c) / nf
		probs[j] = a * a
	}
	dest := s.Outs(L)
	sampleMultinomialGrouped(r, s, totalAgree, counts, probs, dest)
	for j, c := range counts {
		dest[j] += c - agree[j]
	}
	v.CommitLive(live, dest)
}

// AdoptionProb returns the exact probability that a vertex currently
// holding opinion own ends round t with opinion i (Eq. (6)). Exported
// for tests and the drift experiments.
func (TwoChoices) AdoptionProb(v *population.Vector, own, i int) float64 {
	a := v.Alpha(i)
	if own == i {
		return 1 - v.Gamma() + a*a
	}
	return a * a
}
