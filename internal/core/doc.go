// Package core implements the paper's consensus dynamics — 3-Majority
// and 2-Choices (Shimizu & Shiraga, PODC 2025, Definition 3.1) — plus
// the related dynamics used as baselines and extensions: Voter
// (1-Choice), h-Majority, the Median rule of Doerr et al. (DGMSS11),
// and the Undecided-State Dynamics.
//
// All protocols here run on the n-vertex complete graph with
// self-loops, where a "random neighbor" is a uniformly random vertex.
// On that graph the opinion-count vector is a sufficient statistic for
// the whole process, and each protocol's one-round transition is
// sampled exactly from the counts:
//
//   - 3-Majority: by Eq. (5) of the paper the probability that a vertex
//     adopts opinion i is p(i) = α(i)(1 + α(i) − γ), independent of its
//     current opinion, so the next counts are exactly Multinomial(n, p).
//   - 2-Choices: a vertex's two samples agree on opinion D with
//     Pr[D=i] = α(i)², independent of its own opinion; "agree on your
//     own opinion and keep it" is indistinguishable from adopting it.
//     With A(j) ~ Bin(c(j), γ) agreeing vertices per class and
//     T ~ Multinomial(ΣA(j), α²/γ) agreed destinations, the next counts
//     are exactly c'(i) = c(i) − A(i) + T(i).
//
// Package core also provides brute-force per-vertex reference
// implementations of Definition 3.1 (see reference.go), against which
// the exact count-space samplers are validated in the tests.
//
// The contract above is owned by DESIGN.md §"The sparse live-opinion
// engine".
package core
