package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// ThreeMajority is the 3-Majority dynamics of Definition 3.1: each
// vertex samples three uniformly random vertices w1, w2, w3 (with
// replacement, self-loops included) and adopts opn(w1) if
// opn(w1) = opn(w2), else opn(w3).
//
// One synchronous round is sampled exactly as Multinomial(n, p) with
// p(i) = α(i)(1 + α(i) − γ), the per-vertex adoption law of Eq. (5);
// the law does not depend on the vertex's own opinion, so the counts
// update in O(k) regardless of n.
type ThreeMajority struct{}

var _ Protocol = ThreeMajority{}

// Name implements Protocol.
func (ThreeMajority) Name() string { return "3-majority" }

// Step implements Protocol.
func (ThreeMajority) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	k := v.K()
	counts := v.Counts()
	probs := s.Probs(k)
	gamma := v.Gamma()
	nf := float64(v.N())
	for i, c := range counts {
		if c == 0 {
			// Validity: an extinct opinion has p(i) = 0 and can never
			// return (Eq. (5) with α(i) = 0).
			probs[i] = 0
			continue
		}
		a := float64(c) / nf
		probs[i] = a * (1 + a - gamma)
	}
	next := s.Outs(k)
	r.Multinomial(v.N(), probs, next)
	v.SetAll(next)
}

// AdoptionProb returns the exact probability that a vertex adopts
// opinion i in one round of 3-Majority from configuration v (Eq. (5)).
// Exported for tests and the drift experiments.
func (ThreeMajority) AdoptionProb(v *population.Vector, i int) float64 {
	a := v.Alpha(i)
	return a * (1 + a - v.Gamma())
}
