package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// ThreeMajority is the 3-Majority dynamics of Definition 3.1: each
// vertex samples three uniformly random vertices w1, w2, w3 (with
// replacement, self-loops included) and adopts opn(w1) if
// opn(w1) = opn(w2), else opn(w3).
//
// One synchronous round is sampled exactly as Multinomial(n, p) with
// p(i) = α(i)(1 + α(i) − γ), the per-vertex adoption law of Eq. (5);
// the law does not depend on the vertex's own opinion. Validity means
// an extinct opinion has p(i) = 0 and can never return (Eq. (5) with
// α(i) = 0), so the step iterates only the live opinions and the
// counts update in O(live) regardless of n and k.
type ThreeMajority struct{}

var _ Protocol = ThreeMajority{}

// Name implements Protocol.
func (ThreeMajority) Name() string { return "3-majority" }

// Step implements Protocol.
func (ThreeMajority) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	live := v.LiveIndices()
	probs := s.Probs(len(live))
	gamma := v.Gamma()
	nf := float64(v.N())
	for j, c := range v.LiveCounts() {
		a := float64(c) / nf
		probs[j] = a * (1 + a - gamma)
	}
	next := s.Outs(len(live))
	sampleMultinomialGrouped(r, s, v.N(), v.LiveCounts(), probs, next)
	v.CommitLive(live, next)
}

// AdoptionProb returns the exact probability that a vertex adopts
// opinion i in one round of 3-Majority from configuration v (Eq. (5)).
// Exported for tests and the drift experiments.
func (ThreeMajority) AdoptionProb(v *population.Vector, i int) float64 {
	a := v.Alpha(i)
	return a * (1 + a - v.Gamma())
}
