package core

import (
	"fmt"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// Reference wraps a protocol with a brute-force per-vertex step that
// follows Definition 3.1 literally: it materializes a vertex→opinion
// assignment, samples uniformly random vertices for every vertex, and
// applies the update rule. It costs O(n) (or O(n·h)) per round and
// exists to validate the exact O(live) count-space samplers — the tests
// check that fast and reference steppers agree in distribution.
type Reference struct {
	// Rule selects which dynamics to emulate.
	Rule ReferenceRule
}

// ReferenceRule enumerates the dynamics with reference implementations.
type ReferenceRule int

// Reference rules. They mirror Definition 3.1 and the baselines.
const (
	RefThreeMajority ReferenceRule = iota + 1
	RefTwoChoices
	RefVoter
	RefMedian
)

var _ Protocol = Reference{}

// Name implements Protocol.
func (p Reference) Name() string {
	switch p.Rule {
	case RefThreeMajority:
		return "3-majority-reference"
	case RefTwoChoices:
		return "2-choices-reference"
	case RefVoter:
		return "voter-reference"
	case RefMedian:
		return "median-reference"
	default:
		return "reference-unknown"
	}
}

// Step implements Protocol by literal per-vertex simulation.
func (p Reference) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	n := v.N()
	if n > 1<<22 {
		panic(fmt.Sprintf("core: Reference.Step is per-vertex; n=%d too large", n))
	}
	k := v.K()

	// Materialize vertex opinions; vertex identity is exchangeable on
	// the complete graph, so any assignment consistent with the counts
	// yields the same count-process law.
	ops := s.Ops(int(n))
	idx := 0
	v.ForEachLive(func(op int, c int64) {
		for j := int64(0); j < c; j++ {
			ops[idx] = int32(op)
			idx++
		}
	})

	next := s.Outs(k)
	for i := range next {
		next[i] = 0
	}
	sample := func() int32 { return ops[r.Int63n(n)] }
	for vtx := int64(0); vtx < n; vtx++ {
		var newOp int32
		switch p.Rule {
		case RefThreeMajority:
			w1, w2, w3 := sample(), sample(), sample()
			if w1 == w2 {
				newOp = w1
			} else {
				newOp = w3
			}
		case RefTwoChoices:
			w1, w2 := sample(), sample()
			if w1 == w2 {
				newOp = w1
			} else {
				newOp = ops[vtx]
			}
		case RefVoter:
			newOp = sample()
		case RefMedian:
			newOp = median3(ops[vtx], sample(), sample())
		default:
			panic(fmt.Sprintf("core: unknown reference rule %d", p.Rule))
		}
		next[newOp]++
	}
	v.SetAll(next)
}

// median3 returns the median of three ordered opinions.
func median3(a, b, c int32) int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
