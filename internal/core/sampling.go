package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// This file holds the shared samplers of the O(live) engine hot path.
// Each one picks between two exact samplers of the same law whose
// costs scale differently — conditional binomial draws cost O(live)
// CALLS into the log/exp-heavy binomial sampler regardless of how few
// vertices actually move, while per-trial methods pay O(live) cheap
// setup plus O(trials) constant-time draws. In the paper's many-
// opinions regime (k up to n) the early rounds have live ≫ moved
// vertices, so the per-trial side wins by an order of magnitude; late
// rounds have live ≪ n and flip back. Both sides sample the exact
// per-round law, so the choice never changes the process distribution.

// perTrialTrialsPerCategory is the trials-to-categories ratio below
// which sampleMultinomial prefers alias-table tallying: one binomial
// draw costs about an order of magnitude more than one alias sample
// plus its share of the O(live) table build.
const perTrialTrialsPerCategory = 6

// sampleMultinomial draws Multinomial(n, probs) into out, choosing
// between the conditional-binomial chain (one binomial draw per
// category) and per-trial alias tallying (build an alias table over
// probs, drop each of the n trials in O(1)). probs must be strictly
// positive.
func sampleMultinomial(r *rng.Rand, s *Scratch, n int64, probs []float64, out []int64) {
	if n <= int64(len(probs))*perTrialTrialsPerCategory {
		alias := s.Alias(probs)
		for j := range out {
			out[j] = 0
		}
		for t := int64(0); t < n; t++ {
			out[alias.Sample(r)]++
		}
		return
	}
	r.MultinomialDense(n, probs, out)
}

// maxGroupedCount is the largest count value the grouped multinomial
// sampler merges: a category holding count c receives c trials per
// round in expectation, so beyond ~the per-trial crossover the uniform
// within-group split stops being cheaper than one binomial draw per
// category.
const maxGroupedCount = 32

// sampleMultinomialGrouped draws Multinomial(n, probs) into out for a
// probability vector that is a pure function of the category counts —
// true for every count-space adoption law in this package (3-Majority,
// Voter, the 2-Choices destination law, USD redistribution): equal
// counts mean equal (bitwise, since computed by the same expression)
// probabilities. Categories sharing a small count c ≤ maxGroupedCount
// are merged into one super-category of weight m_c·p(c) — multinomial
// categories merge exactly — and each group total is then split
// uniformly over the group's members (the conditional law given the
// total of equal-probability categories), which needs only an Intn per
// trial instead of a binomial draw per category. In the many-opinions
// regime the live set is dominated by small equal counts, so this
// collapses most of the O(live) expensive draws into O(trials) cheap
// ones; the remaining large-count categories go through the hybrid
// sampler unchanged.
func sampleMultinomialGrouped(r *rng.Rand, s *Scratch, n int64, cnts []int64, probs []float64, out []int64) {
	L := len(cnts)
	// Bucket the category slots by count value (counting sort, two
	// passes): members[off[c]:off[c+1]] lists the slots with count c;
	// larger counts stay individual categories.
	var size [maxGroupedCount + 1]int32
	rest := 0
	for _, c := range cnts {
		if c <= maxGroupedCount {
			size[c]++
		} else {
			rest++
		}
	}
	groups := 0
	for c := 1; c <= maxGroupedCount; c++ {
		if size[c] > 0 {
			groups++
		}
	}
	if groups+rest == L || L < 64 {
		// Every group is a singleton (or the problem is too small for
		// the two-stage overhead to pay off): merging gains nothing.
		sampleMultinomial(r, s, n, probs, out)
		return
	}
	var off [maxGroupedCount + 2]int32
	for c := 1; c <= maxGroupedCount; c++ {
		off[c+1] = off[c] + size[c]
	}
	members := s.Members(L)
	restList := members[off[maxGroupedCount+1]:] // tail holds the rest slots
	var cursor [maxGroupedCount + 1]int32
	copy(cursor[1:], off[1:])
	restN := 0
	for j, c := range cnts {
		if c <= maxGroupedCount {
			members[cursor[c]] = int32(j)
			cursor[c]++
		} else {
			restList[restN] = int32(j)
			restN++
		}
	}

	// Stage A: multinomial over the merged categories — one per
	// distinct small count (ascending), then the large categories in
	// slot order. Group weight = m_c · p(c), read off any member.
	gProbs := s.GroupProbs(groups + restN)
	gOuts := s.GroupOuts(groups + restN)
	g := 0
	for c := 1; c <= maxGroupedCount; c++ {
		if size[c] == 0 {
			continue
		}
		gProbs[g] = float64(size[c]) * probs[members[off[c]]]
		g++
	}
	for j := 0; j < restN; j++ {
		gProbs[groups+j] = probs[restList[j]]
	}
	sampleMultinomial(r, s, n, gProbs, gOuts)

	// Stage B: split each group total uniformly over its members.
	for j := range out {
		out[j] = 0
	}
	g = 0
	for c := 1; c <= maxGroupedCount; c++ {
		if size[c] == 0 {
			continue
		}
		m := int(size[c])
		grp := members[off[c] : off[c]+size[c]]
		T := gOuts[g]
		g++
		if T <= int64(m)*perTrialTrialsPerCategory {
			for t := int64(0); t < T; t++ {
				out[grp[r.Intn(m)]]++
			}
			continue
		}
		// Uniform conditional-binomial chain over the group members.
		remaining := T
		for j := 0; j < m-1 && remaining > 0; j++ {
			x := r.Binomial(remaining, 1/float64(m-j))
			out[grp[j]] = x
			remaining -= x
		}
		out[grp[m-1]] += remaining
	}
	for j := 0; j < restN; j++ {
		out[restList[j]] = gOuts[groups+j]
	}
}

// sampleBinomialEach draws agree[j] ~ Binomial(count(live[j]), p)
// independently for every live class and returns the total. The joint
// law is sampled one of two ways:
//
//   - directly, one binomial draw per class;
//   - or, when the expected total N·p is small relative to the number
//     of classes, by first drawing the total T ~ Binomial(N, p) — the
//     per-vertex view: every vertex independently succeeds with
//     probability p — and then selecting which T vertices succeeded as
//     a uniformly random T-subset, tallied per class by weighted
//     sampling without replacement on a Fenwick tree over the class
//     counts (O(live) build, O(T log live) draws). Conditioned on T
//     the subset is exactly uniform, so the per-class totals follow
//     the multivariate hypergeometric law, which recovers the same
//     independent-binomial joint distribution.
//
// 2-Choices' agreement decomposition is the caller: early many-opinion
// rounds have N·γ ≪ live, where the direct chain would pay live
// binomial draws to move a handful of vertices.
func sampleBinomialEach(r *rng.Rand, s *Scratch, v *population.Vector, p float64, agree []int64) int64 {
	counts := v.LiveCounts()
	if float64(v.N())*p >= float64(len(counts)) {
		var total int64
		for j, c := range counts {
			agree[j] = r.Binomial(c, p)
			total += agree[j]
		}
		return total
	}
	total := r.Binomial(v.N(), p)
	for j := range agree {
		agree[j] = 0
	}
	if total == 0 {
		return 0
	}
	// Fenwick tree over the dense live slots (1-based).
	tree := s.Fen(len(counts) + 1)
	for j := range tree {
		tree[j] = 0
	}
	for j, c := range counts {
		idx := j + 1
		tree[idx] += c
		if parent := idx + (idx & -idx); parent < len(tree) {
			tree[parent] += tree[idx]
		}
	}
	remaining := v.N()
	for t := int64(0); t < total; t++ {
		target := r.Int63n(remaining)
		// Descend the implicit prefix-sum tree.
		idx := 0
		bit := 1
		for bit<<1 <= len(tree)-1 {
			bit <<= 1
		}
		for ; bit > 0; bit >>= 1 {
			next := idx + bit
			if next < len(tree) && tree[next] <= target {
				target -= tree[next]
				idx = next
			}
		}
		agree[idx]++
		for at := idx + 1; at < len(tree); at += at & -at {
			tree[at]--
		}
		remaining--
	}
	return total
}
