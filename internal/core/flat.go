package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// This file holds the flat batch kernel: a re-representation of the
// count-space engine for the three protocols whose one-round law is a
// pure function of the count vector (3-Majority, Voter and the
// 2-Choices agreement decomposition). The kernel exists to make large
// trial batches cheap — see BatchRunner — and is proven byte-identical
// to the Vector-based Step implementations by the equivalence and fuzz
// tests in this package and at the root.
//
// # Why it is byte-identical
//
// The frozen determinism contract pins each trial's *draw sequence*:
// which generator values are consumed, in which order, and what each
// consumed draw produces. It does not pin the deterministic arithmetic
// between draws, so the kernel is free to restructure state as long as
// every draw sees bitwise-identical inputs. Three observations make a
// flat layout possible:
//
//   - Dead slots are free. rng.Binomial(0, p) returns before touching
//     the stream, a zero-weight Fenwick slot has an empty target range
//     and can never be selected, and a count-0 slot belongs to no
//     group of the grouped multinomial sampler. So the kernel keeps
//     extinct opinions in place as zeros instead of compacting every
//     round — the effective draw sequence over the live slots is
//     unchanged, because compaction preserves slot order.
//   - Group weights are pure functions of the count value. The probs
//     vectors of the supported protocols are computed slot-by-slot
//     from the same expression over the slot's count, so the kernel
//     evaluates the expression once per distinct count class instead
//     of once per slot; equal inputs give bitwise-equal weights.
//   - The count histogram, the rest list (counts above
//     maxGroupedCount) and the Fenwick tree are all deterministic
//     functions of the count vector, so they can be maintained
//     incrementally across rounds: the incrementally-updated structure
//     equals the per-round rebuild bit for bit (integer arithmetic is
//     exact), and 2-Choices' sparse early rounds — which move a
//     handful of vertices — stop paying several O(live) passes each.
type flatKind int

const (
	flatNone flatKind = iota
	flatThreeMajority
	flatVoter
	flatTwoChoices
)

// flatKindOf maps a Protocol to its flat kernel, or flatNone when the
// protocol must run through the Vector-based generic path. HMajority
// delegates its H <= 3 cases to Voter/ThreeMajority verbatim, so those
// map to the same kernels.
func flatKindOf(p Protocol) flatKind {
	switch q := p.(type) {
	case ThreeMajority:
		return flatThreeMajority
	case Voter:
		return flatVoter
	case TwoChoices:
		return flatTwoChoices
	case HMajority:
		switch {
		case q.H >= 1 && q.H <= 2:
			return flatVoter
		case q.H == 3:
			return flatThreeMajority
		}
	}
	return flatNone
}

// Sparse-round dispatch bounds for the 2-Choices destination split:
// when at most flatSparseAgreeMax vertices moved and their destination
// draws hit at most flatSparseClassMax distinct count classes, stage B
// resolves members by partial scans instead of building the full
// member lists. The dispatch reads only the current state and the
// stage-A outcome, so it is deterministic and never changes a draw.
const (
	flatSparseAgreeMax = 64
	flatSparseClassMax = 4
)

// flatState is one trial's configuration in the flat layout: parallel
// slot arrays (opinion id, count) in increasing-id order, possibly
// holding extinct slots as zeros, plus the incrementally maintained
// aggregates the samplers and observers read. The zeroth template
// fields are shared by every trial of a BatchRunner and immutable.
type flatState struct {
	kind flatKind
	n    int64
	nf   float64

	// Immutable template (the initial configuration).
	ids0   []int32
	cnt0   []int64
	hist0  [maxGroupedCount + 1]int32
	rest0  []int32
	sumSq0 int64

	// Per-trial state, reset from the template.
	ids     []int32
	cnt     []int64
	sumSq   int64
	numLive int
	hist    [maxGroupedCount + 1]int32 // hist[c] = live slots with count c <= maxGroupedCount
	rest    []int32                    // slots with count > maxGroupedCount, ascending
	fen     []int64                    // persistent Fenwick tree over the slots (1-based)
	fenOK   bool

	// Round buffers. out and agree are all-zero between rounds (the
	// commit zeroes exactly what a round wrote), so no per-round
	// clearing pass exists.
	out         []int64
	agree       []int64
	touched     []int32 // slots with agree deltas this round
	touchedDest []int32 // slots with destination deltas this round
	uniq        []int32
	mark        []uint8
	memberBuf   []int32
	idxBuf      []int32
	slotBuf     []int32
	probsBuf    []float64
	outBuf      []int64
}

// newFlatState captures v as the immutable template of a flat kernel.
func newFlatState(kind flatKind, v *population.Vector) *flatState {
	f := &flatState{kind: kind, n: v.N(), nf: float64(v.N())}
	f.ids0 = append([]int32(nil), v.LiveIndices()...)
	f.cnt0 = append([]int64(nil), v.LiveCounts()...)
	f.sumSq0 = v.SumSquares()
	for j, c := range f.cnt0 {
		if c <= maxGroupedCount {
			f.hist0[c]++
		} else {
			f.rest0 = append(f.rest0, int32(j))
		}
	}
	return f
}

// reset restores the template configuration for a fresh trial, reusing
// every buffer.
func (f *flatState) reset() {
	k := len(f.ids0)
	if cap(f.ids) < k {
		f.ids = make([]int32, k)
		f.cnt = make([]int64, k)
		f.out = make([]int64, k)
		f.agree = make([]int64, k)
		f.mark = make([]uint8, k)
		// k bounds the rest list too; full capacity up front keeps
		// commitDense append-free for the whole trial range.
		f.rest = make([]int32, 0, k)
	}
	// out/agree/mark hold only zeros between rounds (and at compaction
	// time), so re-extending them after a compacted trial re-exposes
	// zeros.
	f.ids = f.ids[:k]
	f.cnt = f.cnt[:k]
	f.out = f.out[:k]
	f.agree = f.agree[:k]
	f.mark = f.mark[:k]
	copy(f.ids, f.ids0)
	copy(f.cnt, f.cnt0)
	f.sumSq = f.sumSq0
	f.numLive = k
	f.hist = f.hist0
	f.rest = append(f.rest[:0], f.rest0...)
	f.fenOK = false
}

// The observable surface (the View interface): identical expressions,
// iteration order and skip rules as the *population.Vector methods of
// the same names, so every observed value is bitwise equal.

// N returns the number of vertices.
func (f *flatState) N() int64 { return f.n }

// Gamma returns γ = Σα² from the exact integer Σc² aggregate.
func (f *flatState) Gamma() float64 { return float64(f.sumSq) / (f.nf * f.nf) }

// Live returns the live-opinion count.
func (f *flatState) Live() int { return f.numLive }

// MaxOpinion returns the plurality opinion (lowest id on ties).
func (f *flatState) MaxOpinion() (opinion int, count int64) {
	for j, c := range f.cnt {
		if c > count {
			opinion, count = int(f.ids[j]), c
		}
	}
	return opinion, count
}

// SumCubes returns Σα³ summed in live order.
func (f *flatState) SumCubes() float64 {
	sum := 0.0
	for _, c := range f.cnt {
		if c == 0 {
			continue
		}
		a := float64(c) / f.nf
		sum += a * a * a
	}
	return sum
}

var _ View = (*flatState)(nil)

// step advances the configuration by one round, drawing exactly the
// serial Step's sequence from r.
func (f *flatState) step(r *rng.Rand, s *Scratch) {
	switch f.kind {
	case flatThreeMajority:
		gamma := f.Gamma()
		f.stepMultinomial(r, s, func(c int64) float64 {
			a := float64(c) / f.nf
			return a * (1 + a - gamma)
		})
	case flatVoter:
		f.stepMultinomial(r, s, func(c int64) float64 {
			return float64(c) / f.nf
		})
	case flatTwoChoices:
		f.stepTwoChoices(r, s)
	default:
		panic("core: flat step without a kernel")
	}
}

// stepMultinomial is the shared 3-Majority/Voter round: next counts ~
// Multinomial(n, p(count)) over the live slots, then a fused commit.
func (f *flatState) stepMultinomial(r *rng.Rand, s *Scratch, pFn func(int64) float64) {
	f.sampleGrouped(r, s, f.n, pFn, false)
	f.commitDense()
}

// stepTwoChoices is the 2-Choices round (agreement decomposition),
// with a sparse commit path for the early many-opinions rounds where
// only a handful of vertices move.
func (f *flatState) stepTwoChoices(r *rng.Rand, s *Scratch) {
	gamma := f.Gamma()
	if gamma >= 1 {
		return // consensus is absorbing; matches TwoChoices.Step
	}
	pSq := func(c int64) float64 {
		a := float64(c) / f.nf
		return a * a
	}
	if f.nf*gamma >= float64(f.numLive) {
		// Direct agreement path: one binomial per live slot, in slot
		// order. Zero-count slots consume no randomness, matching the
		// compacted serial iteration.
		total := r.BinomialEach(f.cnt, gamma, f.agree)
		if total == 0 {
			return // agree is all-zero again: BinomialEach wrote only zeros
		}
		f.sampleGrouped(r, s, total, pSq, false)
		f.foldAgreeDense()
		f.commitDense()
		return
	}
	// Sampled agreement path: total ~ Binomial(n, γ), then that many
	// vertices selected without replacement through the Fenwick tree.
	total := r.Binomial(f.n, gamma)
	if total == 0 {
		return
	}
	f.ensureFen()
	tree := f.fen
	remaining := f.n
	touched := f.touched[:0]
	for t := int64(0); t < total; t++ {
		target := r.Int63n(remaining)
		idx := 0
		bit := 1
		for bit<<1 <= len(tree)-1 {
			bit <<= 1
		}
		for ; bit > 0; bit >>= 1 {
			next := idx + bit
			if next < len(tree) && tree[next] <= target {
				target -= tree[next]
				idx = next
			}
		}
		if f.agree[idx] == 0 {
			touched = append(touched, int32(idx))
		}
		f.agree[idx]++
		for at := idx + 1; at < len(tree); at += at & -at {
			tree[at]--
		}
		remaining--
	}
	f.touched = touched
	if f.sampleGrouped(r, s, total, pSq, true) {
		f.commitSparse()
		return
	}
	// The destination split went dense; the tree no longer matches the
	// counts a full commit will install.
	f.fenOK = false
	f.foldAgreeDense()
	f.commitDense()
}

// foldAgreeDense turns the destination counts in out into the full
// next-round counts: out[j] += cnt[j] - agree[j] for every live slot
// (the serial "dest[j] += c - agree[j]" fixup), consuming the agree
// deltas.
func (f *flatState) foldAgreeDense() {
	for j, c := range f.cnt {
		if c == 0 {
			continue
		}
		f.out[j] += c - f.agree[j]
		f.agree[j] = 0
	}
}

// sampleGrouped replicates sampleMultinomialGrouped's draw sequence on
// the flat slot arrays, writing the sampled counts into f.out (which
// is all-zero on entry). pFn(c) must be the same expression the serial
// Step uses for a slot of count c. When trySparse is set and the round
// qualifies, stage B accumulates into f.out sparsely, records the
// touched slots in f.touchedDest, and the function returns true; the
// caller must then commit sparsely.
func (f *flatState) sampleGrouped(r *rng.Rand, s *Scratch, n int64, pFn func(int64) float64, trySparse bool) (sparse bool) {
	L := f.numLive
	groups := 0
	for c := 1; c <= maxGroupedCount; c++ {
		if f.hist[c] > 0 {
			groups++
		}
	}
	restN := len(f.rest)
	if groups+restN == L || L < 64 {
		f.samplePlain(r, s, n, pFn)
		return false
	}

	// Stage A: multinomial over the merged categories — one per
	// distinct small count (ascending), then the large slots in slot
	// order — with bitwise the serial group weights.
	gProbs := s.GroupProbs(groups + restN)
	gOuts := s.GroupOuts(groups + restN)
	g := 0
	for c := 1; c <= maxGroupedCount; c++ {
		if f.hist[c] == 0 {
			continue
		}
		gProbs[g] = float64(f.hist[c]) * pFn(int64(c))
		g++
	}
	for j, slot := range f.rest {
		gProbs[groups+j] = pFn(f.cnt[slot])
	}
	sampleMultinomial(r, s, n, gProbs, gOuts)

	if trySparse && n <= flatSparseAgreeMax {
		nz := 0
		for gi := 0; gi < groups; gi++ {
			if gOuts[gi] > 0 {
				nz++
			}
		}
		if nz <= flatSparseClassMax {
			f.stageBSparse(r, gOuts, groups)
			return true
		}
	}
	f.stageBDense(r, gOuts, groups)
	return false
}

// samplePlain mirrors the grouped sampler's fallback: the plain
// multinomial over the per-slot weights of the live slots, gathered
// compactly (the draws depend only on the weight vector, which equals
// the serial one) and scattered back.
func (f *flatState) samplePlain(r *rng.Rand, s *Scratch, n int64, pFn func(int64) float64) {
	L := f.numLive
	f.slotBuf = grown(f.slotBuf, L)
	f.probsBuf = grown(f.probsBuf, L)
	f.outBuf = grown(f.outBuf, L)
	slots := f.slotBuf
	probs := f.probsBuf
	outs := f.outBuf
	i := 0
	for j, c := range f.cnt {
		if c == 0 {
			continue
		}
		slots[i] = int32(j)
		probs[i] = pFn(c)
		i++
	}
	sampleMultinomial(r, s, n, probs, outs)
	for j := 0; j < L; j++ {
		f.out[slots[j]] = outs[j]
	}
}

// stageBDense splits each group total uniformly over its members,
// exactly as the serial stage B: the member lists are rebuilt by the
// same counting sort (over slots, skipping zeros — same relative
// order as the compacted serial pass).
func (f *flatState) stageBDense(r *rng.Rand, gOuts []int64, groups int) {
	var off [maxGroupedCount + 2]int32
	for c := 1; c <= maxGroupedCount; c++ {
		off[c+1] = off[c] + f.hist[c]
	}
	small := int(off[maxGroupedCount+1])
	f.memberBuf = grown(f.memberBuf, small)
	members := f.memberBuf
	var cursor [maxGroupedCount + 1]int32
	copy(cursor[1:], off[1:])
	for j, c := range f.cnt {
		if c >= 1 && c <= maxGroupedCount {
			members[cursor[c]] = int32(j)
			cursor[c]++
		}
	}
	g := 0
	for c := 1; c <= maxGroupedCount; c++ {
		if f.hist[c] == 0 {
			continue
		}
		m := int(f.hist[c])
		grp := members[off[c] : off[c]+f.hist[c]]
		T := gOuts[g]
		g++
		if T <= int64(m)*perTrialTrialsPerCategory {
			for t := int64(0); t < T; t++ {
				f.out[grp[r.Intn(m)]]++
			}
			continue
		}
		remaining := T
		for j := 0; j < m-1 && remaining > 0; j++ {
			x := r.Binomial(remaining, 1/float64(m-j))
			f.out[grp[j]] = x
			remaining -= x
		}
		f.out[grp[m-1]] += remaining
	}
	for j, slot := range f.rest {
		f.out[slot] = gOuts[groups+j]
	}
}

// stageBSparse is stage B for rounds that move a handful of vertices:
// instead of materializing every member list, each class with draws
// resolves its members by one partial scan. The Intn draws come first,
// in the serial order, so the stream is untouched by the
// restructuring.
func (f *flatState) stageBSparse(r *rng.Rand, gOuts []int64, groups int) {
	dest := f.touchedDest[:0]
	bump := func(slot int32, d int64) {
		if f.out[slot] == 0 {
			dest = append(dest, slot)
		}
		f.out[slot] += d
	}
	g := 0
	for c := 1; c <= maxGroupedCount; c++ {
		if f.hist[c] == 0 {
			continue
		}
		m := int(f.hist[c])
		T := gOuts[g]
		g++
		if T == 0 {
			continue
		}
		if T <= int64(m)*perTrialTrialsPerCategory {
			f.idxBuf = grown(f.idxBuf, int(T))
			idxs := f.idxBuf
			maxIdx := 0
			for t := range idxs {
				id := r.Intn(m)
				idxs[t] = int32(id)
				if id > maxIdx {
					maxIdx = id
				}
			}
			mem := f.memberScan(int64(c), maxIdx+1)
			for _, id := range idxs {
				bump(mem[id], 1)
			}
			continue
		}
		mem := f.memberScan(int64(c), m)
		remaining := T
		for j := 0; j < m-1 && remaining > 0; j++ {
			x := r.Binomial(remaining, 1/float64(m-j))
			if x != 0 {
				bump(mem[j], x)
			}
			remaining -= x
		}
		if remaining > 0 {
			bump(mem[m-1], remaining)
		}
	}
	for j, slot := range f.rest {
		if T := gOuts[groups+j]; T != 0 {
			bump(slot, T)
		}
	}
	f.touchedDest = dest
}

// memberScan returns the first need members of count class c in slot
// order (the prefix of the serial member list).
func (f *flatState) memberScan(c int64, need int) []int32 {
	f.memberBuf = grown(f.memberBuf, need)
	mem := f.memberBuf
	found := 0
	for j, cc := range f.cnt {
		if cc == c {
			mem[found] = int32(j)
			found++
			if found == need {
				break
			}
		}
	}
	return mem[:found]
}

// commitDense installs out as the next counts in one fused pass,
// zeroing out behind itself and rebuilding the aggregates (the values
// equal CommitLive's recomputation: integer arithmetic is exact).
func (f *flatState) commitDense() {
	var sumSq int64
	var hist [maxGroupedCount + 1]int32
	rest := f.rest[:0]
	numLive := 0
	for j := range f.cnt {
		c := f.out[j]
		f.out[j] = 0
		f.cnt[j] = c
		if c == 0 {
			continue
		}
		numLive++
		sumSq += c * c
		if c <= maxGroupedCount {
			hist[c]++
		} else {
			rest = append(rest, int32(j))
		}
	}
	f.sumSq = sumSq
	f.hist = hist
	f.rest = rest
	f.numLive = numLive
	f.fenOK = false
	f.maybeCompact()
}

// commitSparse applies the recorded agree/destination deltas in
// O(moved): per-slot count updates, incremental Σc², histogram and
// rest-list transitions, and Fenwick patching (the tree already
// carries the agree decrements from the sampling descent, so only the
// destination deltas remain).
func (f *flatState) commitSparse() {
	uniq := f.uniq[:0]
	for _, sl := range f.touched {
		if f.mark[sl] == 0 {
			f.mark[sl] = 1
			uniq = append(uniq, sl)
		}
	}
	for _, sl := range f.touchedDest {
		if f.mark[sl] == 0 {
			f.mark[sl] = 1
			uniq = append(uniq, sl)
		}
	}
	for _, sl := range uniq {
		f.mark[sl] = 0
		c := f.cnt[sl]
		d := f.out[sl]
		newC := c - f.agree[sl] + d
		f.agree[sl] = 0
		f.out[sl] = 0
		if d != 0 {
			for at := int(sl) + 1; at < len(f.fen); at += at & -at {
				f.fen[at] += d
			}
		}
		if newC == c {
			continue
		}
		f.sumSq += newC*newC - c*c
		f.cnt[sl] = newC
		if c <= maxGroupedCount {
			f.hist[c]--
		} else {
			f.restRemove(sl)
		}
		switch {
		case newC == 0:
			f.numLive--
		case newC <= maxGroupedCount:
			f.hist[newC]++
		default:
			f.restInsert(sl)
		}
	}
	f.uniq = uniq[:0]
	f.touched = f.touched[:0]
	f.touchedDest = f.touchedDest[:0]
	f.maybeCompact()
}

// restFind returns the position of slot sl in the ascending rest list,
// or the insertion point.
func (f *flatState) restFind(sl int32) int {
	lo, hi := 0, len(f.rest)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.rest[mid] < sl {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (f *flatState) restInsert(sl int32) {
	p := f.restFind(sl)
	f.rest = append(f.rest, 0)
	copy(f.rest[p+1:], f.rest[p:])
	f.rest[p] = sl
}

func (f *flatState) restRemove(sl int32) {
	p := f.restFind(sl)
	copy(f.rest[p:], f.rest[p+1:])
	f.rest = f.rest[:len(f.rest)-1]
}

// ensureFen (re)builds the persistent Fenwick tree over the slot
// counts. The tree is the unique Fenwick representation of the weight
// vector, so a rebuild and a run of incremental patches agree exactly.
func (f *flatState) ensureFen() {
	n1 := len(f.cnt) + 1
	if f.fenOK && len(f.fen) == n1 {
		return
	}
	if cap(f.fen) < n1 {
		f.fen = make([]int64, n1)
	}
	fen := f.fen[:n1]
	fen[0] = 0
	copy(fen[1:], f.cnt)
	for idx := 1; idx < n1; idx++ {
		if parent := idx + (idx & -idx); parent < n1 {
			fen[parent] += fen[idx]
		}
	}
	f.fen = fen
	f.fenOK = true
}

// maybeCompact drops dead slots once they outnumber the live ones,
// keeping the per-round passes proportional to the live set. Slot
// order is preserved, so the effective draw sequence is unchanged.
func (f *flatState) maybeCompact() {
	if len(f.ids) < 128 || f.numLive*2 >= len(f.ids) {
		return
	}
	w := 0
	for j, c := range f.cnt {
		if c != 0 {
			f.ids[w] = f.ids[j]
			f.cnt[w] = c
			w++
		}
	}
	f.ids = f.ids[:w]
	f.cnt = f.cnt[:w]
	// out/agree/mark hold only zeros here; truncate to stay aligned.
	f.out = f.out[:w]
	f.agree = f.agree[:w]
	f.mark = f.mark[:w]
	rest := f.rest[:0]
	for j, c := range f.cnt {
		if c > maxGroupedCount {
			rest = append(rest, int32(j))
		}
	}
	f.rest = rest
	f.fenOK = false
}
