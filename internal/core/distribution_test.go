package core

import (
	"math"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// Distribution-level tests: at small n the exact law of the next-round
// count of a fixed opinion is computable in closed form — Binomial for
// 3-Majority/Voter (the adoption law is vertex-independent) and
// Poisson-binomial for 2-Choices (each vertex has its own success
// probability per Eq. (6)). These chi-square tests pin the engine to
// the exact law, not just to its first two moments.

// chiSquare compares observed counts against expected probabilities,
// merging cells with expectation below 5 into their neighbor.
func chiSquare(observed []int, expected []float64, trials int) (chi2 float64, cells int) {
	accObs, accExp := 0.0, 0.0
	flush := func() {
		if accExp > 0 {
			d := accObs - accExp
			chi2 += d * d / accExp
			cells++
			accObs, accExp = 0, 0
		}
	}
	for i := range observed {
		accObs += float64(observed[i])
		accExp += expected[i] * float64(trials)
		if accExp >= 5 {
			flush()
		}
	}
	flush()
	return chi2, cells
}

// binomialPMF returns the Binomial(n, p) pmf by stable recurrence.
func binomialPMF(n int64, p float64) []float64 {
	pmf := make([]float64, n+1)
	if p <= 0 {
		pmf[0] = 1
		return pmf
	}
	if p >= 1 {
		pmf[n] = 1
		return pmf
	}
	logp, logq := math.Log(p), math.Log(1-p)
	logC := 0.0
	for x := int64(0); x <= n; x++ {
		if x > 0 {
			logC += math.Log(float64(n-x+1)) - math.Log(float64(x))
		}
		pmf[x] = math.Exp(logC + float64(x)*logp + float64(n-x)*logq)
	}
	return pmf
}

// poissonBinomialPMF returns the pmf of a sum of independent
// Bernoullis with the given success probabilities, by dynamic
// programming.
func poissonBinomialPMF(ps []float64) []float64 {
	pmf := make([]float64, len(ps)+1)
	pmf[0] = 1
	for _, p := range ps {
		for x := len(ps); x >= 1; x-- {
			pmf[x] = pmf[x]*(1-p) + pmf[x-1]*p
		}
		pmf[0] *= 1 - p
	}
	return pmf
}

func TestThreeMajorityExactLaw(t *testing.T) {
	// n = 12, counts (6, 4, 2): next count of opinion 0 must be
	// Binomial(12, p) with p = α(1 + α − γ).
	v0 := population.MustFromCounts([]int64{6, 4, 2})
	p := ThreeMajority{}.AdoptionProb(v0, 0)
	pmf := binomialPMF(12, p)

	r := rng.New(99)
	s := &Scratch{}
	const trials = 200000
	observed := make([]int, 13)
	v := v0.Clone()
	for i := 0; i < trials; i++ {
		v.CopyFrom(v0)
		ThreeMajority{}.Step(r, v, s)
		observed[v.Count(0)]++
	}
	chi2, cells := chiSquare(observed, pmf, trials)
	// 0.9999 quantile for <=12 df is under 40.
	if chi2 > 40 {
		t.Fatalf("chi2 = %.2f over %d cells; engine law deviates from Binomial", chi2, cells)
	}
}

func TestTwoChoicesExactLaw(t *testing.T) {
	// n = 12, counts (6, 4, 2): next count of opinion 0 is a
	// Poisson-binomial with 6 vertices at p_own = 1 − γ + α² and 6 at
	// p_other = α² (Eq. (6)).
	v0 := population.MustFromCounts([]int64{6, 4, 2})
	ps := make([]float64, 0, 12)
	for own := 0; own < 3; own++ {
		for j := int64(0); j < v0.Count(own); j++ {
			ps = append(ps, TwoChoices{}.AdoptionProb(v0, own, 0))
		}
	}
	pmf := poissonBinomialPMF(ps)

	r := rng.New(101)
	s := &Scratch{}
	const trials = 200000
	observed := make([]int, 13)
	v := v0.Clone()
	for i := 0; i < trials; i++ {
		v.CopyFrom(v0)
		TwoChoices{}.Step(r, v, s)
		observed[v.Count(0)]++
	}
	chi2, cells := chiSquare(observed, pmf, trials)
	if chi2 > 40 {
		t.Fatalf("chi2 = %.2f over %d cells; engine law deviates from Poisson-binomial", chi2, cells)
	}
}

func TestVoterExactLaw(t *testing.T) {
	v0 := population.MustFromCounts([]int64{7, 5})
	pmf := binomialPMF(12, 7.0/12)
	r := rng.New(102)
	s := &Scratch{}
	const trials = 200000
	observed := make([]int, 13)
	v := v0.Clone()
	for i := 0; i < trials; i++ {
		v.CopyFrom(v0)
		Voter{}.Step(r, v, s)
		observed[v.Count(0)]++
	}
	chi2, cells := chiSquare(observed, pmf, trials)
	if chi2 > 40 {
		t.Fatalf("chi2 = %.2f over %d cells; voter law deviates from Binomial", chi2, cells)
	}
}

// TestMedianK2EquivalentToTwoChoices: for two ordered opinions the
// median of {own, s1, s2} equals the agreed sample when s1 = s2 and
// own otherwise — exactly the 2-Choices rule (paper §1.1, DGMSS11).
// The per-class adoption probabilities must therefore coincide.
func TestMedianK2EquivalentToTwoChoices(t *testing.T) {
	v := population.MustFromCounts([]int64{8, 4})
	for own := 0; own < 2; own++ {
		for x := 0; x < 2; x++ {
			med := MedianAdoptionProb(v, own, x)
			tc := TwoChoices{}.AdoptionProb(v, own, x)
			if math.Abs(med-tc) > 1e-12 {
				t.Errorf("own=%d x=%d: median %v != 2-choices %v", own, x, med, tc)
			}
		}
	}
}

// TestMedianK2SampledLaw pins the sampled Median engine to the
// 2-Choices Poisson-binomial law at k = 2.
func TestMedianK2SampledLaw(t *testing.T) {
	v0 := population.MustFromCounts([]int64{8, 4})
	ps := make([]float64, 0, 12)
	for own := 0; own < 2; own++ {
		for j := int64(0); j < v0.Count(own); j++ {
			ps = append(ps, TwoChoices{}.AdoptionProb(v0, own, 0))
		}
	}
	pmf := poissonBinomialPMF(ps)

	r := rng.New(103)
	s := &Scratch{}
	const trials = 150000
	observed := make([]int, 13)
	v := v0.Clone()
	for i := 0; i < trials; i++ {
		v.CopyFrom(v0)
		Median{}.Step(r, v, s)
		observed[v.Count(0)]++
	}
	chi2, cells := chiSquare(observed, pmf, trials)
	if chi2 > 40 {
		t.Fatalf("chi2 = %.2f over %d cells; median(k=2) deviates from 2-choices law", chi2, cells)
	}
}

// TestRunDeterministicGolden pins exact round counts for fixed seeds —
// a regression guard for the RNG stream and the samplers. If this test
// fails after an intentional change to the rng package, update the
// golden values.
func TestRunDeterministicGolden(t *testing.T) {
	cases := []struct {
		name  string
		proto Protocol
		seed  uint64
	}{
		{"3maj", ThreeMajority{}, 12345},
		{"2ch", TwoChoices{}, 12345},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func() RunResult {
				v := population.Balanced(10000, 32)
				return Run(rng.New(c.seed), c.proto, v, RunConfig{})
			}
			first := run()
			second := run()
			if first != second {
				t.Fatalf("non-deterministic: %+v vs %+v", first, second)
			}
			if !first.Consensus {
				t.Fatal("no consensus")
			}
		})
	}
}

// TestPoissonBinomialPMFSelfCheck validates the DP helper against the
// plain binomial case.
func TestPoissonBinomialPMFSelfCheck(t *testing.T) {
	ps := []float64{0.3, 0.3, 0.3, 0.3}
	got := poissonBinomialPMF(ps)
	want := binomialPMF(4, 0.3)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("pmf[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	sum := 0.0
	for _, p := range got {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pmf sums to %v", sum)
	}
}
