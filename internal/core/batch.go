package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// View is the read-only observable surface of a running configuration:
// the aggregates stop conditions and trace samplers consume. Both
// *population.Vector and the flat batch kernel implement it, so
// observers written against View run unchanged on either executor.
type View interface {
	// N returns the number of vertices.
	N() int64
	// Gamma returns γ = Σ α².
	Gamma() float64
	// Live returns the number of live opinions.
	Live() int
	// MaxOpinion returns the plurality opinion and its count (lowest
	// index on ties).
	MaxOpinion() (opinion int, count int64)
	// SumCubes returns Σ α³.
	SumCubes() float64
}

var _ View = (*population.Vector)(nil)

// BatchRunConfig controls one trial of a BatchRunner. It mirrors
// RunConfig, with the observer widened to View so the flat kernel can
// drive it without materializing a Vector.
type BatchRunConfig struct {
	// MaxRounds bounds the run; 0 means DefaultMaxRounds.
	MaxRounds int
	// Observer, if non-nil, is called after every round (and once for
	// round 0). Returning true stops the run early. The View must not
	// be retained across calls.
	Observer func(round int, v View) (stop bool)
	// PostRound and Done are forwarded to the generic engine; either
	// being non-nil routes the trial off the flat kernel, since both
	// mutate or inspect the Vector representation directly.
	PostRound func(round int, r *rng.Rand, v *population.Vector)
	Done      func(v *population.Vector) bool
}

// BatchRunner runs many trials of one (protocol, initial configuration)
// pair, amortizing everything a single trial would rebuild from
// scratch: the initial configuration itself (cloned per trial from a
// shared template instead of re-deriving it), the sampler scratch
// arenas (alias tables, Fenwick trees, member lists), and — for the
// protocols with a flat kernel — the padded slot arrays and their
// incremental aggregates. Each trial still consumes its own rng stream
// in exactly the serial order, so results are byte-identical to
// running core.Run once per trial; only the allocation and setup work
// is shared.
//
// A BatchRunner is not safe for concurrent use: parallel executors
// create one runner per worker and hand each worker a contiguous trial
// range (sim.ForEachTrialRangeCtx).
type BatchRunner struct {
	proto    Protocol
	template *population.Vector
	flat     *flatState
	work     *population.Vector
	scratch  Scratch
	r        rng.Rand
}

// NewBatchRunner prepares a runner for trials starting from template
// (not mutated, not retained beyond the runner's lifetime).
func NewBatchRunner(p Protocol, template *population.Vector) *BatchRunner {
	b := &BatchRunner{proto: p, template: template}
	if kind := flatKindOf(p); kind != flatNone {
		b.flat = newFlatState(kind, template)
	}
	return b
}

// RunTrial executes one trial from the template configuration with the
// stream seeded by seed, byte-identical to
// Run(rng.New(seed), proto, template.Clone(), ...).
func (b *BatchRunner) RunTrial(seed uint64, cfg BatchRunConfig) RunResult {
	b.r.Reseed(seed)
	r := &b.r
	if b.flat != nil && cfg.PostRound == nil && cfg.Done == nil {
		return b.runFlat(r, cfg)
	}
	if b.work == nil {
		b.work = b.template.Clone()
	} else {
		b.work.CopyFrom(b.template)
	}
	rc := RunConfig{
		MaxRounds: cfg.MaxRounds,
		PostRound: cfg.PostRound,
		Done:      cfg.Done,
		Scratch:   &b.scratch,
	}
	if cfg.Observer != nil {
		obs := cfg.Observer
		rc.Observer = func(round int, v *population.Vector) bool {
			return obs(round, v)
		}
	}
	return Run(r, b.proto, b.work, rc)
}

// runFlat is Run's control flow on the flat kernel; every branch
// mirrors the generic engine so stop/trace observers fire at the same
// rounds with bitwise-equal observables.
func (b *BatchRunner) runFlat(r *rng.Rand, cfg BatchRunConfig) RunResult {
	f := b.flat
	f.reset()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}

	finish := func(rounds int, consensus bool) RunResult {
		// At consensus MaxOpinion's scan returns the single live slot —
		// the same winner Consensus() reports on the Vector path.
		winner, _ := f.MaxOpinion()
		return RunResult{Rounds: rounds, Consensus: consensus, Winner: winner, Gamma: f.Gamma(), Live: f.numLive}
	}

	if cfg.Observer != nil && cfg.Observer(0, f) {
		return finish(0, f.numLive == 1)
	}
	if f.numLive == 1 {
		return finish(0, true)
	}
	for t := 1; t <= maxRounds; t++ {
		f.step(r, &b.scratch)
		if cfg.Observer != nil && cfg.Observer(t, f) {
			return finish(t, f.numLive == 1)
		}
		if f.numLive == 1 {
			return finish(t, true)
		}
	}
	return finish(maxRounds, false)
}
