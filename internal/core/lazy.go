package core

import (
	"fmt"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// Lazy wraps a protocol with per-vertex laziness: each round every
// vertex independently keeps its current opinion with probability Beta
// and otherwise applies the base rule. Lazy variants are the standard
// robustness ablation for consensus dynamics (cf. the quasi-majority
// functional-voting framework of Shimizu & Shiraga, ICALP 2020, cited
// in the paper's §1.1): laziness scales every drift term by (1−β), so
// consensus times stretch by ≈1/(1−β) without changing who wins.
//
// The counts-space step stays exact: for own-opinion-independent base
// rules (3-Majority, Voter, h-Majority) the active vertices per class
// are A(i) ~ Bin(c(i), 1−β) and their destinations follow the base
// law; 2-Choices composes the same way because "lazy" and "samples
// disagreed" both mean keeping the current opinion.
type Lazy struct {
	// Base is the wrapped dynamics; ThreeMajority, TwoChoices, Voter
	// and HMajority are supported.
	Base Protocol
	// Beta is the per-round probability of staying put, in [0, 1).
	Beta float64
}

var _ Protocol = Lazy{}

// Name implements Protocol.
func (p Lazy) Name() string {
	return fmt.Sprintf("lazy%.2f-%s", p.Beta, p.Base.Name())
}

// Step implements Protocol.
func (p Lazy) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	if p.Beta < 0 || p.Beta >= 1 {
		panic(fmt.Sprintf("core: Lazy.Beta = %v out of [0, 1)", p.Beta))
	}
	if p.Beta == 0 {
		p.Base.Step(r, v, s)
		return
	}
	switch base := p.Base.(type) {
	case TwoChoices:
		p.stepTwoChoices(r, v, s)
	case ThreeMajority, Voter, HMajority:
		p.stepIndependentLaw(r, v, s, base)
	default:
		panic(fmt.Sprintf("core: Lazy does not support %s", p.Base.Name()))
	}
}

// stepIndependentLaw handles base rules whose adoption law does not
// depend on the vertex's own opinion: split each class into stayers
// and movers, run the base rule on a synthetic population of movers,
// and merge.
func (p Lazy) stepIndependentLaw(r *rng.Rand, v *population.Vector, s *Scratch, base Protocol) {
	live := v.LiveIndices()
	L := len(live)
	stay := s.Aux2(L)
	movers := v.N() - sampleBinomialEach(r, s, v, p.Beta, stay)
	if movers == 0 {
		return
	}
	// The movers' destinations follow the base law evaluated at the
	// FULL configuration (samples are drawn from everyone, including
	// stayers), so run the base step on a copy holding the full
	// configuration but only reassign `movers` vertices: all supported
	// base rules reduce to Multinomial(n, law(v)), so we sample
	// Multinomial(movers, law(v)) by running the base on a scaled
	// population. ThreeMajority and Voter expose their laws directly;
	// HMajority's sampled path draws per-vertex, so loop movers there.
	next := s.Outs(L)
	switch b := base.(type) {
	case ThreeMajority:
		probs := s.Probs(L)
		gamma := v.Gamma()
		nf := float64(v.N())
		for j, c := range v.LiveCounts() {
			a := float64(c) / nf
			probs[j] = a * (1 + a - gamma)
		}
		sampleMultinomial(r, s, movers, probs, next)
	case Voter:
		probs := s.Probs(L)
		nf := float64(v.N())
		for j, c := range v.LiveCounts() {
			probs[j] = float64(c) / nf
		}
		sampleMultinomial(r, s, movers, probs, next)
	case HMajority:
		// Reuse the per-vertex sampled path on the full configuration,
		// drawing one winner per mover; slot j stands for live[j].
		for j := range next {
			next[j] = 0
		}
		nf := float64(v.N())
		weights := s.Probs(L)
		for j, c := range v.LiveCounts() {
			weights[j] = float64(c) / nf
		}
		alias := s.Alias(weights)
		tally := s.Aux(L)
		samples := s.Samples(b.H)
		for m := int64(0); m < movers; m++ {
			next[sampleMajority(r, alias, b.H, samples, tally)]++
		}
	}
	for j := range next {
		next[j] += stay[j]
	}
	v.CommitLive(live, next)
}

// stepTwoChoices composes laziness with the agreement decomposition:
// a vertex moves only if it is active (prob 1−β) AND its two samples
// agree (prob γ), and the agreed destination law is unchanged.
func (p Lazy) stepTwoChoices(r *rng.Rand, v *population.Vector, s *Scratch) {
	gamma := v.Gamma()
	if gamma >= 1 {
		return
	}
	live := v.LiveIndices()
	L := len(live)
	nf := float64(v.N())
	activeAgree := (1 - p.Beta) * gamma

	agree := s.Aux(L)
	totalAgree := sampleBinomialEach(r, s, v, activeAgree, agree)
	if totalAgree == 0 {
		return
	}
	counts := v.LiveCounts()
	probs := s.Probs(L)
	for j, c := range counts {
		a := float64(c) / nf
		probs[j] = a * a
	}
	next := s.Outs(L)
	sampleMultinomial(r, s, totalAgree, probs, next)
	for j, c := range counts {
		next[j] += c - agree[j]
	}
	v.CommitLive(live, next)
}

// sampleMajority draws h samples from the alias table and returns the
// majority with uniform tie-breaking; tally must be a zeroed buffer of
// length k (it is re-zeroed before returning).
func sampleMajority(r *rng.Rand, alias *rng.Alias, h int, samples []int, tally []int64) int {
	best := -1
	bestCount := int64(0)
	for j := 0; j < h; j++ {
		o := alias.Sample(r)
		samples[j] = o
		tally[o]++
		if tally[o] > bestCount {
			bestCount = tally[o]
			best = o
		}
	}
	winner := best
	ties := 0
	for j := 0; j < h; j++ {
		o := samples[j]
		if tally[o] != bestCount {
			continue
		}
		ties++
		if r.Intn(ties) == 0 {
			winner = o
		}
		tally[o] = -tally[o]
	}
	for j := 0; j < h; j++ {
		tally[samples[j]] = 0
	}
	return winner
}
