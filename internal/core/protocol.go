package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// Protocol is a synchronous consensus dynamics: Step advances the
// configuration by one round, in place, sampling from the exact
// one-round transition law.
//
// Implementations are stateless: all working memory lives in the
// Scratch, so a single Protocol value may be shared across goroutines
// as long as each goroutine uses its own Rand and Scratch.
type Protocol interface {
	// Name returns a short stable identifier (e.g. "3-majority").
	Name() string
	// Step advances v by one synchronous round.
	Step(r *rng.Rand, v *population.Vector, s *Scratch)
}

// Scratch holds reusable working buffers for Step so that running a
// dynamics allocates nothing per round. The zero value is ready to
// use; buffers grow on demand. The sparse O(live) steps size every
// buffer to the live-opinion count, not K, so a run's per-round
// footprint shrinks along with the live set.
type Scratch struct {
	probs   []float64
	probs2  []float64
	outs    []int64
	aux     []int64
	aux2    []int64
	fen     []int64
	idx     []int32
	ops     []int32
	samples []int
	members []int32
	gProbs  []float64
	gOuts   []int64
	alias   rng.Alias
}

// grown returns buf resized to length n, reallocating with geometric
// capacity growth when needed. The hot loops re-request the Scratch
// buffers every round at fluctuating sizes, so exact-fit growth would
// realloc on every new high-water mark; doubling keeps buffer
// allocations logarithmic in the working-size range. Callers fully
// overwrite the portion they read, so stale contents never matter.
func grown[T int | int32 | int64 | float64](buf []T, n int) []T {
	if cap(buf) < n {
		buf = make([]T, max(n, 2*cap(buf), 64))
	}
	return buf[:n]
}

// Probs returns a float64 buffer of length k.
func (s *Scratch) Probs(k int) []float64 {
	s.probs = grown(s.probs, k)
	return s.probs
}

// Outs returns an int64 buffer of length k.
func (s *Scratch) Outs(k int) []int64 {
	s.outs = grown(s.outs, k)
	return s.outs
}

// Aux returns a second int64 buffer of length k.
func (s *Scratch) Aux(k int) []int64 {
	s.aux = grown(s.aux, k)
	return s.aux
}

// probsAux returns a second float64 buffer of length k.
func (s *Scratch) probsAux(k int) []float64 {
	s.probs2 = grown(s.probs2, k)
	return s.probs2
}

// Aux2 returns a third int64 buffer of length k.
func (s *Scratch) Aux2(k int) []int64 {
	s.aux2 = grown(s.aux2, k)
	return s.aux2
}

// Idx returns an int32 buffer of length m, used to assemble the
// opinion-index lists handed to population.Vector.CommitLive when the
// committed set extends the live view (e.g. the Undecided slot).
func (s *Scratch) Idx(m int) []int32 {
	s.idx = grown(s.idx, m)
	return s.idx
}

// Fen returns an int64 buffer of length m for the Fenwick tree of the
// without-replacement agreement sampler.
func (s *Scratch) Fen(m int) []int64 {
	s.fen = grown(s.fen, m)
	return s.fen
}

// Alias refills the Scratch's reusable alias table with the given
// weights and returns it, so per-round categorical sampling allocates
// nothing once the table has grown to the working size.
func (s *Scratch) Alias(weights []float64) *rng.Alias {
	s.alias.Fill(weights)
	return &s.alias
}

// Samples returns an int buffer of length h for h-Majority's
// per-vertex sample sets.
func (s *Scratch) Samples(h int) []int {
	s.samples = grown(s.samples, h)
	return s.samples
}

// Members returns an int32 buffer of length m for the grouped
// multinomial sampler's counting-sorted category-member lists.
func (s *Scratch) Members(m int) []int32 {
	s.members = grown(s.members, m)
	return s.members
}

// GroupProbs returns a float64 buffer of length m for the grouped
// multinomial sampler's merged-category weights.
func (s *Scratch) GroupProbs(m int) []float64 {
	s.gProbs = grown(s.gProbs, m)
	return s.gProbs
}

// GroupOuts returns an int64 buffer of length m for the grouped
// multinomial sampler's merged-category totals.
func (s *Scratch) GroupOuts(m int) []int64 {
	s.gOuts = grown(s.gOuts, m)
	return s.gOuts
}

// Ops returns an int32 buffer of length n (per-vertex opinions, used
// by the reference steppers and by h-Majority for h > 3).
func (s *Scratch) Ops(n int) []int32 {
	s.ops = grown(s.ops, n)
	return s.ops
}
