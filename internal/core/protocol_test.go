package core

import (
	"testing"
	"testing/quick"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// allProtocols lists every counts-space protocol for invariant tests.
func allProtocols() []Protocol {
	return []Protocol{
		ThreeMajority{},
		TwoChoices{},
		Voter{},
		HMajority{H: 1},
		HMajority{H: 2},
		HMajority{H: 3},
		HMajority{H: 5},
		Median{},
		Undecided{},
		Reference{Rule: RefThreeMajority},
		Reference{Rule: RefTwoChoices},
		Reference{Rule: RefVoter},
		Reference{Rule: RefMedian},
	}
}

func TestProtocolNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range allProtocols() {
		name := p.Name()
		if name == "" {
			t.Errorf("%T has empty name", p)
		}
		if seen[name] {
			t.Errorf("duplicate protocol name %q", name)
		}
		seen[name] = true
	}
}

// TestStepPreservesInvariants: counts stay non-negative and sum to n
// for every protocol across many random configurations.
func TestStepPreservesInvariants(t *testing.T) {
	r := rng.New(1)
	for _, p := range allProtocols() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			s := &Scratch{}
			for trial := 0; trial < 30; trial++ {
				k := 2 + r.Intn(8)
				counts := make([]int64, k)
				var n int64
				for i := range counts {
					counts[i] = int64(r.Intn(50))
					n += counts[i]
				}
				if n == 0 {
					counts[0] = 1
				}
				v := population.MustFromCounts(counts)
				for round := 0; round < 5; round++ {
					p.Step(r, v, s)
					if err := v.Validate(); err != nil {
						t.Fatalf("trial %d round %d: %v (counts=%v)", trial, round, err, v.Counts())
					}
				}
			}
		})
	}
}

// TestConsensusAbsorbing: once every vertex agrees, no protocol can
// leave the consensus state (validity condition).
func TestConsensusAbsorbing(t *testing.T) {
	r := rng.New(2)
	for _, p := range allProtocols() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			s := &Scratch{}
			v := population.MustFromCounts([]int64{0, 57, 0, 0})
			for round := 0; round < 10; round++ {
				p.Step(r, v, s)
				if op, ok := v.Consensus(); !ok || op != 1 {
					t.Fatalf("round %d: consensus broken, counts=%v", round, v.Counts())
				}
			}
		})
	}
}

// TestExtinctStaysExtinct: the validity condition requires that an
// opinion with no supporters can never reappear.
func TestExtinctStaysExtinct(t *testing.T) {
	r := rng.New(3)
	for _, p := range allProtocols() {
		p := p
		if (p == Undecided{}) {
			continue // the undecided slot legitimately refills
		}
		t.Run(p.Name(), func(t *testing.T) {
			s := &Scratch{}
			v := population.MustFromCounts([]int64{40, 0, 60, 0, 30})
			for round := 0; round < 20; round++ {
				p.Step(r, v, s)
				if v.Count(1) != 0 || v.Count(3) != 0 {
					t.Fatalf("round %d: extinct opinion resurrected, counts=%v", round, v.Counts())
				}
			}
		})
	}
}

// TestUndecidedExtinctDecidedStaysExtinct: for USD, an extinct real
// opinion stays extinct even though the undecided pool refills.
func TestUndecidedExtinctDecidedStaysExtinct(t *testing.T) {
	r := rng.New(4)
	s := &Scratch{}
	// Slots: opinions {0,1,2}, slot 3 = undecided. Opinion 1 extinct.
	v := population.MustFromCounts([]int64{40, 0, 30, 30})
	for round := 0; round < 30; round++ {
		(Undecided{}).Step(r, v, s)
		if v.Count(1) != 0 {
			t.Fatalf("round %d: extinct decided opinion resurrected: %v", round, v.Counts())
		}
	}
}

// TestStepInvariantsProperty drives the two headline dynamics through
// randomized configurations via testing/quick.
func TestStepInvariantsProperty(t *testing.T) {
	r := rng.New(5)
	s := &Scratch{}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int64, len(raw))
		var n int64
		for i, x := range raw {
			counts[i] = int64(x)
			n += int64(x)
		}
		if n == 0 {
			counts[0] = 1
		}
		for _, p := range []Protocol{ThreeMajority{}, TwoChoices{}} {
			v := population.MustFromCounts(counts)
			before := v.N()
			p.Step(r, v, s)
			if v.N() != before || v.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHMajorityPanicsOnBadH(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HMajority{H:0} did not panic")
		}
	}()
	v := population.MustFromCounts([]int64{1, 1})
	HMajority{H: 0}.Step(rng.New(1), v, &Scratch{})
}

func TestReferencePanicsOnHugeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reference with huge n did not panic")
		}
	}()
	v := population.MustFromCounts([]int64{1 << 23})
	Reference{Rule: RefVoter}.Step(rng.New(1), v, &Scratch{})
}

func TestMedian3(t *testing.T) {
	cases := []struct{ a, b, c, want int32 }{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 2, 5, 2}, {5, 5, 5, 5},
		{0, 9, 4, 4}, {9, 0, 4, 4}, {4, 9, 0, 4},
	}
	for _, c := range cases {
		if got := median3(c.a, c.b, c.c); got != c.want {
			t.Errorf("median3(%d,%d,%d) = %d, want %d", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestUndecidedSlot(t *testing.T) {
	if UndecidedSlot(5) != 4 {
		t.Fatal("UndecidedSlot(5) != 4")
	}
}

func TestDecidedConsensus(t *testing.T) {
	v := population.MustFromCounts([]int64{10, 0, 0}) // slot 2 = undecided
	if op, ok := DecidedConsensus(v); !ok || op != 0 {
		t.Fatalf("DecidedConsensus = (%d, %v)", op, ok)
	}
	v = population.MustFromCounts([]int64{9, 0, 1})
	if _, ok := DecidedConsensus(v); ok {
		t.Fatal("DecidedConsensus true with undecided vertices")
	}
	v = population.MustFromCounts([]int64{5, 5, 0})
	if _, ok := DecidedConsensus(v); ok {
		t.Fatal("DecidedConsensus true without consensus")
	}
}

func TestScratchBuffersGrow(t *testing.T) {
	s := &Scratch{}
	if len(s.Probs(4)) != 4 || len(s.Outs(8)) != 8 || len(s.Aux(2)) != 2 || len(s.Ops(16)) != 16 {
		t.Fatal("scratch buffers have wrong lengths")
	}
	// Shrinking reuses capacity.
	p := s.Probs(2)
	if len(p) != 2 {
		t.Fatal("shrunk buffer has wrong length")
	}
}
