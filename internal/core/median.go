package core

import (
	"plurality/internal/population"
	"plurality/internal/rng"
)

// Median is the median rule of Doerr, Goldberg, Minder, Sauerwald and
// Scheideler (DGMSS11), the protocol in which 2-Choices was first
// implicitly studied (paper §1.1): opinions are totally ordered
// 0 < 1 < ... < k−1, and each vertex adopts the median of its own
// opinion and two uniformly random samples. For k = 2 it coincides in
// law with 2-Choices.
//
// One synchronous round is sampled per current-opinion class: the new
// opinion of a vertex with opinion j has CDF
//
//	Pr[new ≤ x] = 1 − (1 − F(x))²  if j ≤ x   (one sample ≤ x suffices)
//	Pr[new ≤ x] = F(x)²            if j > x   (both samples must be ≤ x)
//
// where F is the configuration's opinion CDF, so each class's
// destinations form a multinomial and the whole round costs O(live²).
//
// The step works entirely in the compacted live-opinion space: the
// median of three live opinions is itself one of them, and both CDF
// branches are constant between consecutive live opinions, so the new
// opinion's distribution puts mass only on live opinions and the dense
// per-class multinomial over the ascending live list samples the exact
// law.
type Median struct{}

var _ Protocol = Median{}

// Name implements Protocol.
func (Median) Name() string { return "median" }

// Step implements Protocol.
func (Median) Step(r *rng.Rand, v *population.Vector, s *Scratch) {
	live := v.LiveIndices()
	L := len(live)
	nf := float64(v.N())

	// cdf[y] = F(live[y]) = Pr[sample <= live[y]]; LiveIndices is
	// ascending, which the CDF accumulation relies on.
	counts := v.LiveCounts()
	cdf := s.Probs(L)
	acc := 0.0
	for y, c := range counts {
		acc += float64(c) / nf
		cdf[y] = acc
	}

	next := s.Outs(L)
	for y := range next {
		next[y] = 0
	}
	pmf := s.probsAux(L)
	dest := s.Aux(L)
	for j := 0; j < L; j++ {
		c := counts[j]
		prev := 0.0
		for x := 0; x < L; x++ {
			var cur float64
			if j <= x {
				d := 1 - cdf[x]
				cur = 1 - d*d
			} else {
				cur = cdf[x] * cdf[x]
			}
			p := cur - prev
			if p < 0 {
				p = 0 // guard against floating-point rounding
			}
			pmf[x] = p
			prev = cur
		}
		r.Multinomial(c, pmf, dest)
		for x := 0; x < L; x++ {
			next[x] += dest[x]
		}
	}
	v.CommitLive(live, next)
}

// MedianAdoptionProb returns the exact probability that a vertex with
// opinion own ends the round with opinion x under the Median rule.
// Exported for the exactness tests.
func MedianAdoptionProb(v *population.Vector, own, x int) float64 {
	cdfAt := func(y int) float64 {
		if y < 0 {
			return 0
		}
		acc := 0.0
		for i := 0; i <= y && i < v.K(); i++ {
			acc += v.Alpha(i)
		}
		return acc
	}
	cdfNew := func(y int) float64 {
		if y < 0 {
			return 0
		}
		f := cdfAt(y)
		if own <= y {
			d := 1 - f
			return 1 - d*d
		}
		return f * f
	}
	return cdfNew(x) - cdfNew(x-1)
}
