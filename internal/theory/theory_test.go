package theory

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/population"
)

func TestDynamicsString(t *testing.T) {
	if ThreeMajority.String() != "3-Majority" || TwoChoices.String() != "2-Choices" {
		t.Fatal("dynamics names wrong")
	}
	if Dynamics(0).String() != "unknown" {
		t.Fatal("zero dynamics should be unknown")
	}
}

func TestExpAlphaNextFixedPoints(t *testing.T) {
	// Consensus (α=1, γ=1) and extinction (α=0) are fixed points.
	if got := ExpAlphaNext(1, 1); got != 1 {
		t.Errorf("ExpAlphaNext(1,1) = %v", got)
	}
	if got := ExpAlphaNext(0, 0.5); got != 0 {
		t.Errorf("ExpAlphaNext(0,·) = %v", got)
	}
	// Balanced two opinions: α = 1/2, γ = 1/2 is a fixed point too.
	if got := ExpAlphaNext(0.5, 0.5); got != 0.5 {
		t.Errorf("ExpAlphaNext(0.5,0.5) = %v", got)
	}
}

func TestExpAlphaNextDriftDirectionProperty(t *testing.T) {
	// α above γ grows in expectation, α below γ shrinks (paper §2.2).
	f := func(rawA, rawG uint16) bool {
		alpha := float64(rawA%1000) / 1000
		gamma := float64(rawG%1000) / 1000
		if gamma < alpha*alpha {
			gamma = alpha * alpha // γ >= α² always holds
		}
		next := ExpAlphaNext(alpha, gamma)
		switch {
		case alpha > gamma:
			return next >= alpha
		case alpha < gamma:
			return next <= alpha
		default:
			return math.Abs(next-alpha) < 1e-15
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExpDeltaNextAmplification(t *testing.T) {
	// With both opinions non-weak, 1 + α(i) + α(j) − γ > 1, so the bias
	// is amplified (Lemma 2.4 heuristic).
	got := ExpDeltaNext(0.1, 0.3, 0.2, 0.2)
	if got <= 0.1 {
		t.Errorf("bias not amplified: %v", got)
	}
	// Bias of zero stays zero.
	if got := ExpDeltaNext(0, 0.3, 0.2, 0.2); got != 0 {
		t.Errorf("zero bias drifted: %v", got)
	}
}

func TestExpGammaNextLowerBoundSubmartingale(t *testing.T) {
	for _, d := range []Dynamics{ThreeMajority, TwoChoices} {
		for _, gamma := range []float64{0.01, 0.1, 0.5, 0.9, 1} {
			lb := ExpGammaNextLowerBound(d, gamma, 1000)
			if lb < gamma {
				t.Errorf("%v: lower bound %v below γ=%v", d, lb, gamma)
			}
		}
	}
	// 3-Majority's additive term is Θ(1/n), 2-Choices' is Θ(γ/n) or
	// smaller — the paper's reason 2-Choices needs Õ(n) to grow γ.
	g3 := ExpGammaNextLowerBound(ThreeMajority, 0.01, 1000) - 0.01
	g2 := ExpGammaNextLowerBound(TwoChoices, 0.01, 1000) - 0.01
	if g3 <= g2 {
		t.Errorf("3-majority drift %v should exceed 2-choices drift %v at small γ", g3, g2)
	}
}

func TestVarBoundsNaNOnUnknown(t *testing.T) {
	if !math.IsNaN(VarAlphaBound(Dynamics(0), 0.1, 0.1, 10)) {
		t.Error("unknown dynamics should yield NaN")
	}
	if !math.IsNaN(VarDeltaBound(Dynamics(0), 0.1, 0.1, 0.1, 10)) {
		t.Error("unknown dynamics should yield NaN")
	}
	if !math.IsNaN(ExpGammaNextLowerBound(Dynamics(0), 0.1, 10)) {
		t.Error("unknown dynamics should yield NaN")
	}
	if !math.IsNaN(ConsensusTimeShape(Dynamics(0), 10, 2)) {
		t.Error("unknown dynamics should yield NaN")
	}
}

func TestDefaultConstantsMatchPaper(t *testing.T) {
	c := Default()
	if c.CWeak != 0.1 || c.CAlphaUp != 0.1 || c.CAlphaDown != 0.1 {
		t.Errorf("α/weak constants wrong: %+v", c)
	}
	if c.CDeltaUp != 0.05 || c.CDeltaDown != 0.05 || c.CActive != 0.05 {
		t.Errorf("δ/active constants wrong: %+v", c)
	}
	if math.Abs(c.CGammaUp-1.0/30) > 1e-15 || math.Abs(c.CGammaDown-1.0/30) > 1e-15 {
		t.Errorf("γ constants wrong: %+v", c)
	}
	if c.CEta != 1.0/1000 {
		t.Errorf("η constant wrong: %+v", c)
	}
	// Definition 4.4(v) requires c↓_γ < c_active < c_weak.
	if !(c.CGammaDown < c.CActive && c.CActive < c.CWeak) {
		t.Errorf("constant ordering violated: %+v", c)
	}
}

func TestIsWeakAndWeakSet(t *testing.T) {
	c := Default()
	v := population.MustFromCounts([]int64{70, 20, 10})
	gamma := v.Gamma() // 0.49 + 0.04 + 0.01 = 0.54
	if c.IsWeak(v.Alpha(0), gamma) {
		t.Error("plurality opinion classified weak")
	}
	if !c.IsWeak(v.Alpha(1), gamma) || !c.IsWeak(v.Alpha(2), gamma) {
		t.Error("minority opinions not classified weak")
	}
	weak := c.WeakSet(v)
	if len(weak) != 2 || weak[0] != 1 || weak[1] != 2 {
		t.Errorf("WeakSet = %v", weak)
	}
	// Extinct opinions are not reported.
	v2 := population.MustFromCounts([]int64{70, 30, 0})
	for _, i := range c.WeakSet(v2) {
		if i == 2 {
			t.Error("extinct opinion in weak set")
		}
	}
}

func TestMaxOpinionNeverWeakProperty(t *testing.T) {
	// max_i α(i) >= γ always, so the plurality is never weak (§2.2).
	c := Default()
	f := func(raw []uint8) bool {
		counts := make([]int64, 0, len(raw))
		var n int64
		for _, x := range raw {
			counts = append(counts, int64(x))
			n += int64(x)
		}
		if len(counts) == 0 || n == 0 {
			return true
		}
		v := population.MustFromCounts(counts)
		top, _ := v.MaxOpinion()
		return !c.IsWeak(v.Alpha(top), v.Gamma())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsActive(t *testing.T) {
	c := Default()
	if !c.IsActive(0.2, 0.2) {
		t.Error("α = γ₀ should be active")
	}
	if c.IsActive(0.1, 0.2) {
		t.Error("α = γ₀/2 should not be active")
	}
}

func TestScaledBias(t *testing.T) {
	v := population.MustFromCounts([]int64{40, 10, 50})
	want := (0.4 - 0.1) / math.Sqrt(0.4)
	if got := ScaledBias(v, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScaledBias = %v, want %v", got, want)
	}
	// Antisymmetric.
	if got := ScaledBias(v, 1, 0); math.Abs(got+want) > 1e-12 {
		t.Errorf("ScaledBias(j,i) = %v, want %v", got, -want)
	}
	v2 := population.MustFromCounts([]int64{0, 0, 50})
	if got := ScaledBias(v2, 0, 1); got != 0 {
		t.Errorf("ScaledBias of extinct pair = %v", got)
	}
}

func TestBernsteinMGFBound(t *testing.T) {
	// λ = 0 gives bound 1.
	b, ok := BernsteinMGFBound(0, 1, 1)
	if !ok || b != 1 {
		t.Errorf("bound at λ=0: %v, %v", b, ok)
	}
	// Outside the domain.
	if _, ok := BernsteinMGFBound(3, 1, 1); ok {
		t.Error("|λ|D = 3 should be out of domain")
	}
	// Monotone in |λ| within the domain.
	b1, _ := BernsteinMGFBound(0.5, 1, 1)
	b2, _ := BernsteinMGFBound(1.0, 1, 1)
	if b2 <= b1 {
		t.Errorf("bound not increasing: %v then %v", b1, b2)
	}
	// Symmetric in λ.
	bn, _ := BernsteinMGFBound(-1.0, 1, 1)
	if math.Abs(bn-b2) > 1e-12 {
		t.Errorf("bound not symmetric: %v vs %v", bn, b2)
	}
}

func TestFreedmanTailProperties(t *testing.T) {
	// Larger deviation h → smaller probability.
	p1 := FreedmanTail(1, 100, 0.01, 0.1)
	p2 := FreedmanTail(2, 100, 0.01, 0.1)
	if p2 >= p1 {
		t.Errorf("tail not decreasing in h: %v then %v", p1, p2)
	}
	// Longer horizon T → larger probability.
	p3 := FreedmanTail(1, 200, 0.01, 0.1)
	if p3 <= p1 {
		t.Errorf("tail not increasing in T: %v then %v", p1, p3)
	}
	// h <= 0 is trivial.
	if FreedmanTail(0, 100, 0.01, 0.1) != 1 {
		t.Error("h=0 should give probability bound 1")
	}
	// Bounds are probabilities.
	if p1 <= 0 || p1 > 1 {
		t.Errorf("bound %v not in (0,1]", p1)
	}
}

func TestBernsteinParams(t *testing.T) {
	d, s := BernsteinParamsAlpha(ThreeMajority, 0.2, 0.3, 100)
	if d != 0.01 || math.Abs(s-0.002) > 1e-15 {
		t.Errorf("alpha params = (%v, %v)", d, s)
	}
	d, s = BernsteinParamsDelta(TwoChoices, 0.2, 0.1, 0.3, 100)
	if d != 0.02 || math.Abs(s-0.3*(0.3+0.3)/100) > 1e-15 {
		t.Errorf("delta params = (%v, %v)", d, s)
	}
	d, s = BernsteinParamsGamma(ThreeMajority, 0.25, 100)
	if math.Abs(d-2*0.5/100) > 1e-15 || math.Abs(s-4*0.125/100) > 1e-15 {
		t.Errorf("gamma params = (%v, %v)", d, s)
	}
	_, s = BernsteinParamsGamma(TwoChoices, 0.25, 100)
	if math.Abs(s-8*0.0625/100) > 1e-15 {
		t.Errorf("2-choices gamma s = %v", s)
	}
}

func TestConsensusTimeShapeCrossover(t *testing.T) {
	n := 1e6
	// Small k: both shapes are k·ln n.
	if got, want := ConsensusTimeShape(ThreeMajority, n, 10), 10*math.Log(n); got != want {
		t.Errorf("3-majority small-k shape = %v, want %v", got, want)
	}
	// Huge k: 3-Majority saturates at √n·ln²n, 2-Choices keeps growing.
	big3 := ConsensusTimeShape(ThreeMajority, n, n)
	if want := math.Sqrt(n) * math.Log(n) * math.Log(n); big3 != want {
		t.Errorf("3-majority large-k shape = %v, want %v", big3, want)
	}
	big2 := ConsensusTimeShape(TwoChoices, n, n/10)
	if big2 <= big3 {
		t.Errorf("2-choices shape %v should exceed 3-majority cap %v at large k", big2, big3)
	}
	// The 3-Majority saturation point is near k = √n·ln n.
	kc := math.Sqrt(n) * math.Log(n)
	atCross := ConsensusTimeShape(ThreeMajority, n, kc)
	if math.Abs(atCross-math.Sqrt(n)*math.Log(n)*math.Log(n)) > 1e-6*atCross {
		t.Errorf("crossover mismatch: %v", atCross)
	}
}

func TestThresholdsAndMargins(t *testing.T) {
	n := 1e6
	if g3, g2 := GammaThreshold(ThreeMajority, n), GammaThreshold(TwoChoices, n); g3 <= g2 {
		t.Errorf("3-majority γ threshold %v should exceed 2-choices %v", g3, g2)
	}
	m3 := PluralityMargin(ThreeMajority, n, 0.5)
	m2 := PluralityMargin(TwoChoices, n, 0.25)
	if math.Abs(m3-math.Sqrt(math.Log(n)/n)) > 1e-15 {
		t.Errorf("3-majority margin = %v", m3)
	}
	if math.Abs(m2-math.Sqrt(0.25*math.Log(n)/n)) > 1e-15 {
		t.Errorf("2-choices margin = %v", m2)
	}
	if LowerBoundRounds(128) != 128 {
		t.Error("lower bound shape should be k")
	}
	if got := RemainingOpinionsBound(n, 0); got != n {
		t.Errorf("T=0 remaining bound = %v, want n", got)
	}
	if got := RemainingOpinionsBound(n, math.Log(n)); math.Abs(got-n) > 1e-6 {
		t.Errorf("T=ln n remaining bound = %v, want ~n", got)
	}
	if got := NormGrowthTimeShape(ThreeMajority, n); got >= NormGrowthTimeShape(TwoChoices, n) {
		t.Errorf("3-majority norm-growth %v should be below 2-choices", got)
	}
}

func TestRGamma(t *testing.T) {
	n := 1000.0
	if got := RGamma(ThreeMajority, 0.5, n); got != 0.5/n {
		t.Errorf("3-majority R_γ = %v", got)
	}
	if got := RGamma(TwoChoices, 0.5, n); math.Abs(got-0.25/(3*n*n)) > 1e-18 {
		t.Errorf("2-choices R_γ = %v", got)
	}
	if !math.IsNaN(RGamma(Dynamics(0), 0.5, n)) {
		t.Error("unknown dynamics should be NaN")
	}
	// Three-Majority's drift dominates 2-Choices' for n > 1.
	if RGamma(ThreeMajority, 0.5, n) <= RGamma(TwoChoices, 0.5, n) {
		t.Error("drift ordering violated")
	}
}

func TestGammaHitTimeBound(t *testing.T) {
	n := 10000.0
	eps := 0.5
	x := 0.01
	b3 := GammaHitTimeBound(ThreeMajority, eps, x, n)
	want3 := 64 * math.E * math.E / eps * x * n
	if math.Abs(b3-want3) > 1e-9*want3 {
		t.Errorf("3-majority bound = %v, want %v", b3, want3)
	}
	b2 := GammaHitTimeBound(TwoChoices, eps, x, n)
	if b2 <= b3 {
		t.Errorf("2-choices bound %v should exceed 3-majority bound %v", b2, b3)
	}
	if !math.IsNaN(GammaHitTimeBound(Dynamics(0), eps, x, n)) {
		t.Error("unknown dynamics should be NaN")
	}
	// The bound is linear in the target x_γ.
	if got := GammaHitTimeBound(ThreeMajority, eps, 2*x, n); math.Abs(got-2*b3) > 1e-9*got {
		t.Errorf("bound not linear in x: %v vs %v", got, 2*b3)
	}
}
