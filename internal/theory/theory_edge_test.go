package theory

import (
	"math"
	"testing"
)

// Edge-case and property tests for the theorem-level predictors: the
// boundaries of their domains (γ₀ → 0, γ₀ → 1, n → ∞, k = 2),
// monotonicity in each argument, and agreement between the Theorem 1.1
// and Theorem 2.1 formulations where their regimes overlap.

var bothDynamics = []Dynamics{ThreeMajority, TwoChoices}

func TestGammaBoundaries(t *testing.T) {
	const n = 1e6

	// γ₀ → 0: the Theorem 2.1 shape ln(n)/γ₀ diverges — no finite
	// consensus-time prediction from a vanishing norm.
	if got := ConsensusTimeFromGamma(n, 0); !math.IsInf(got, 1) {
		t.Errorf("ConsensusTimeFromGamma(n, 0) = %v, want +Inf", got)
	}
	for _, g := range []float64{1e-3, 1e-6, 1e-9} {
		if got := ConsensusTimeFromGamma(n, g); !(got > 0) || math.IsInf(got, 1) {
			t.Errorf("ConsensusTimeFromGamma(n, %g) = %v, want finite positive", g, got)
		}
	}

	// γ₀ = 1 is consensus: the shape bottoms out at ln n, and one round
	// of either dynamics keeps γ exactly at 1 (consensus is absorbing,
	// so the Lemma 4.1(iii) lower bound must not overshoot).
	if got, want := ConsensusTimeFromGamma(n, 1), math.Log(n); got != want {
		t.Errorf("ConsensusTimeFromGamma(n, 1) = %v, want ln n = %v", got, want)
	}
	for _, d := range bothDynamics {
		if got := ExpGammaNextLowerBound(d, 1, n); got != 1 {
			t.Errorf("%v: ExpGammaNextLowerBound(γ=1) = %v, want 1 (absorbing)", d, got)
		}
	}

	// The submartingale property (Eq. (2)) on the whole of [0, 1]: the
	// lower bound on E[γ'] never falls below γ, and never exceeds 1.
	for _, d := range bothDynamics {
		for g := 0.0; g <= 1.0; g += 1.0 / 64 {
			got := ExpGammaNextLowerBound(d, g, n)
			if got < g || got > 1 {
				t.Errorf("%v: ExpGammaNextLowerBound(γ=%v) = %v, want in [γ, 1]", d, g, got)
			}
		}
	}
}

func TestDriftFixedPoints(t *testing.T) {
	// Extinct opinions stay extinct (validity): α = 0 is a fixed point
	// of Eq. (1) for every γ, and δ = 0 of Eq. (3).
	for _, g := range []float64{0, 0.25, 0.5, 1} {
		if got := ExpAlphaNext(0, g); got != 0 {
			t.Errorf("ExpAlphaNext(0, %v) = %v, want 0", g, got)
		}
		if got := ExpDeltaNext(0, 0.3, 0.3, g); got != 0 {
			t.Errorf("ExpDeltaNext(0, ·, ·, %v) = %v, want 0", g, got)
		}
	}
	// Consensus (α = γ = 1) is a fixed point of Eq. (1).
	if got := ExpAlphaNext(1, 1); got != 1 {
		t.Errorf("ExpAlphaNext(1, 1) = %v, want 1", got)
	}
}

func TestKEqualsTwoClosedForm(t *testing.T) {
	// k = 2 with fractions (1+δ)/2 and (1−δ)/2: γ = (1+δ²)/2 and
	// Eq. (3) collapses to the classical two-opinion drift
	// E[δ'] = δ(3−δ²)/2, since α(1)+α(2) = 1.
	for _, delta := range []float64{0, 0.1, 0.5, 0.9, 1} {
		a1, a2 := (1+delta)/2, (1-delta)/2
		gamma := a1*a1 + a2*a2
		got := ExpDeltaNext(delta, a1, a2, gamma)
		want := delta * (3 - delta*delta) / 2
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("δ=%v: ExpDeltaNext = %v, want δ(3−δ²)/2 = %v", delta, got, want)
		}
	}

	// At k = 2 the Theorem 1.1 shape is the k-branch for any realistic
	// n (2·ln n is far below both norm-growth shapes), and the balanced
	// configuration has γ₀ = 1/2, so Theorem 2.1 gives the same number.
	for _, d := range bothDynamics {
		for _, n := range []float64{100, 1e6, 1e12} {
			shape := ConsensusTimeShape(d, n, 2)
			fromGamma := ConsensusTimeFromGamma(n, 0.5)
			if math.Abs(shape-fromGamma) > 1e-12*fromGamma {
				t.Errorf("%v n=%g: ConsensusTimeShape(k=2) = %v, ConsensusTimeFromGamma(γ₀=1/2) = %v", d, n, shape, fromGamma)
			}
		}
	}
}

func TestLargeNLimits(t *testing.T) {
	// n → ∞ at fixed k: the min in Theorem 1.1 settles on the k·ln n
	// branch (the norm-growth branches grow polynomially), so the ratio
	// shape/(k·ln n) reaches exactly 1 and stays there.
	for _, d := range bothDynamics {
		for _, n := range []float64{1e6, 1e9, 1e15} {
			const k = 64
			if got, want := ConsensusTimeShape(d, n, k), k*math.Log(n); got != want {
				t.Errorf("%v n=%g: shape = %v, want k·ln n = %v", d, n, got, want)
			}
		}
	}

	// The Theorem 2.1 applicability threshold vanishes as n → ∞, but is
	// strictly positive at every finite n and decreasing in n beyond
	// e² (where ln n/√n and ln²n/n both turn monotone).
	for _, d := range bothDynamics {
		prev := math.Inf(1)
		for _, n := range []float64{10, 1e3, 1e6, 1e9, 1e12} {
			th := GammaThreshold(d, n)
			if !(th > 0) || th >= prev {
				t.Errorf("%v: GammaThreshold(%g) = %v, want positive and decreasing (prev %v)", d, n, th, prev)
			}
			prev = th
		}
	}

	// Remark 2.5: at t ≤ 0 nothing has been eliminated (bound = n), the
	// bound decays like 1/t, and by t = n·ln n at most a constant
	// number of opinions can remain.
	const n = 1e6
	if got := RemainingOpinionsBound(n, 0); got != n {
		t.Errorf("RemainingOpinionsBound(n, 0) = %v, want n", got)
	}
	if got := RemainingOpinionsBound(n, n*math.Log(n)); got != 1 {
		t.Errorf("RemainingOpinionsBound(n, n·ln n) = %v, want 1", got)
	}
}

func TestPredictorMonotonicity(t *testing.T) {
	ns := []float64{100, 1e4, 1e6, 1e9, 1e12}
	ks := []float64{2, 4, 16, 64, 1024, 1 << 20}

	for _, d := range bothDynamics {
		// Nondecreasing in k at fixed n: more opinions never speed
		// consensus up (Theorem 2.7's Ω(k) lower bound).
		for _, n := range ns {
			for i := 1; i < len(ks); i++ {
				lo, hi := ConsensusTimeShape(d, n, ks[i-1]), ConsensusTimeShape(d, n, ks[i])
				if hi < lo {
					t.Errorf("%v n=%g: shape(k=%g)=%v > shape(k=%g)=%v", d, n, ks[i-1], lo, ks[i], hi)
				}
			}
		}
		// Nondecreasing in n at fixed k.
		for _, k := range ks {
			for i := 1; i < len(ns); i++ {
				lo, hi := ConsensusTimeShape(d, ns[i-1], k), ConsensusTimeShape(d, ns[i], k)
				if hi < lo {
					t.Errorf("%v k=%g: shape(n=%g)=%v > shape(n=%g)=%v", d, k, ns[i-1], lo, ns[i], hi)
				}
			}
		}
	}

	// ConsensusTimeFromGamma: strictly decreasing in γ₀, increasing in n.
	for i, g := range []float64{1e-6, 1e-3, 0.1, 0.5, 1} {
		if i > 0 {
			prevG := []float64{1e-6, 1e-3, 0.1, 0.5, 1}[i-1]
			if !(ConsensusTimeFromGamma(1e6, g) < ConsensusTimeFromGamma(1e6, prevG)) {
				t.Errorf("ConsensusTimeFromGamma not decreasing at γ₀=%v", g)
			}
		}
	}
	for i := 1; i < len(ns); i++ {
		if !(ConsensusTimeFromGamma(ns[i], 0.25) > ConsensusTimeFromGamma(ns[i-1], 0.25)) {
			t.Errorf("ConsensusTimeFromGamma not increasing in n at n=%g", ns[i])
		}
	}
}

func TestFormulationAgreement(t *testing.T) {
	// The two theorem formulations agree on their overlap: from the
	// balanced configuration γ₀ = 1/k, so wherever the k-branch of
	// Theorem 1.1 is active, ln(n)/γ₀ is the identical number — and the
	// other branch is by definition the Theorem 2.2 norm-growth shape.
	for _, d := range bothDynamics {
		for _, n := range []float64{1e3, 1e6, 1e9} {
			for _, k := range []float64{2, 8, 64, 512} {
				shape := ConsensusTimeShape(d, n, k)
				fromGamma := ConsensusTimeFromGamma(n, 1/k)
				growth := NormGrowthTimeShape(d, n)
				want := math.Min(fromGamma, growth)
				if math.Abs(shape-want) > 1e-12*want {
					t.Errorf("%v n=%g k=%g: shape = %v, min(ln n·k, growth) = %v", d, n, k, shape, want)
				}
			}
		}
	}

	// Unknown dynamics answer NaN, never a plausible number.
	for _, f := range []float64{
		ConsensusTimeShape(0, 1e6, 8),
		GammaThreshold(0, 1e6),
		NormGrowthTimeShape(0, 1e6),
		ExpGammaNextLowerBound(0, 0.5, 1e6),
	} {
		if !math.IsNaN(f) {
			t.Errorf("unknown Dynamics produced %v, want NaN", f)
		}
	}
}
