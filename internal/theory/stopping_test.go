package theory

import (
	"testing"

	"plurality/internal/population"
)

func TestStoppingTimesSynthetic(t *testing.T) {
	// Drive the tracker through a hand-built trajectory of three
	// opinions and check each first-hit round.
	st := NewStoppingTimes(0, 1)
	trajectory := [][]int64{
		{50, 40, 10}, // round 0: α0(0)=0.5, α0(1)=0.4, δ0=0.1, γ0=0.42
		{52, 38, 10}, // round 1
		{60, 30, 10}, // round 2: α(0)=0.6 ≥ 1.1·0.5 → τ↑_I = 2
		{70, 20, 10}, // round 3: α(1)=0.2 ≤ 0.9·0.4 → τ↓_J fired earlier? 0.3 ≤ 0.36 at round 2
		{85, 5, 10},  // round 4
		{90, 0, 10},  // round 5: J vanishes
	}
	for round, counts := range trajectory {
		st.Observe(round, population.MustFromCounts(counts))
	}
	if st.Alpha0I != 0.5 || st.Alpha0J != 0.4 || st.Delta0 != 0.1 {
		t.Fatalf("reference values wrong: %+v", st)
	}
	if st.TauUpI != 2 {
		t.Errorf("τ↑_I = %d, want 2", st.TauUpI)
	}
	if st.TauDownJ != 2 { // 30/100 = 0.3 ≤ 0.9·0.4 = 0.36
		t.Errorf("τ↓_J = %d, want 2", st.TauDownJ)
	}
	if st.TauVanishJ != 5 {
		t.Errorf("τvanish_J = %d, want 5", st.TauVanishJ)
	}
	if st.TauVanishI != Unset {
		t.Errorf("τvanish_I = %d, want Unset", st.TauVanishI)
	}
	if st.TauDownI != Unset {
		t.Errorf("τ↓_I = %d, want Unset", st.TauDownI)
	}
	// γ grows along this trajectory, so τ↑_γ fires and τ↓_γ does not.
	if st.TauUpGamma == Unset {
		t.Error("τ↑_γ never fired despite γ growth")
	}
	if st.TauDownGamma != Unset {
		t.Errorf("τ↓_γ = %d, want Unset", st.TauDownGamma)
	}
	// δ grows from 0.1 to 0.9: τ↑_δ fires, τ↓_δ does not.
	if st.TauUpDelta == Unset || st.TauDownDelta != Unset {
		t.Errorf("δ stopping times wrong: up=%d down=%d", st.TauUpDelta, st.TauDownDelta)
	}
}

func TestStoppingTimesWeakBeforeVanish(t *testing.T) {
	// Vanishing implies weakness (α = 0 ≤ (1−c)γ), so τweak ≤ τvanish
	// on every trajectory where both fire.
	st := NewStoppingTimes(0, 1)
	trajectory := [][]int64{
		{10, 45, 45},
		{5, 50, 45},
		{0, 55, 45},
	}
	for round, counts := range trajectory {
		st.Observe(round, population.MustFromCounts(counts))
	}
	if st.TauVanishI == Unset || st.TauWeakI == Unset {
		t.Fatalf("expected both weak and vanish to fire: %+v", st)
	}
	if st.TauWeakI > st.TauVanishI {
		t.Fatalf("τweak (%d) after τvanish (%d)", st.TauWeakI, st.TauVanishI)
	}
}

func TestStoppingTimesAbsDelta(t *testing.T) {
	st := NewStoppingTimes(0, 1)
	st.XDelta = 0.5
	st.Observe(0, population.MustFromCounts([]int64{50, 50}))
	if st.TauAbsDelta != Unset {
		t.Fatal("τ+_δ fired at zero bias")
	}
	// Negative bias also counts (|δ| threshold).
	st.Observe(1, population.MustFromCounts([]int64{20, 80}))
	if st.TauAbsDelta != 1 {
		t.Fatalf("τ+_δ = %d, want 1", st.TauAbsDelta)
	}
}

func TestStoppingTimesZeroConstantsDefaulted(t *testing.T) {
	st := &StoppingTimes{I: 0, J: 1}
	st.reset()
	st.Observe(0, population.MustFromCounts([]int64{60, 40}))
	if st.C == (Constants{}) {
		t.Fatal("constants not defaulted")
	}
}

func TestStoppingTimesXDeltaDisabled(t *testing.T) {
	st := NewStoppingTimes(0, 1)
	st.Observe(0, population.MustFromCounts([]int64{90, 10}))
	if st.TauAbsDelta != Unset {
		t.Fatal("τ+_δ fired with threshold disabled")
	}
}
