// Package theory encodes the paper's analytical apparatus in
// executable form: the Lemma 4.1 closed-form drift expressions, the
// Definition 4.4 weak/strong/active classification with the paper's
// constants, the Bernstein condition of Definition 3.3, the
// Freedman-type tail bound of Corollary 3.8, and the theorem-level
// consensus-time predictors used by the experiments to normalize
// measured round counts.
//
// The contract above is owned by DESIGN.md §"Answer tiers: simulation
// and analytic".
package theory
