package theory

import (
	"math"

	"plurality/internal/population"
)

// Dynamics selects which of the two headline protocols a bound refers
// to (several of the paper's expressions differ between them).
type Dynamics int

// The two dynamics analyzed by the paper.
const (
	ThreeMajority Dynamics = iota + 1
	TwoChoices
)

// String returns the paper's name for the dynamics.
func (d Dynamics) String() string {
	switch d {
	case ThreeMajority:
		return "3-Majority"
	case TwoChoices:
		return "2-Choices"
	default:
		return "unknown"
	}
}

// ---------------------------------------------------------------------------
// Lemma 4.1: one-round conditional expectations and variance bounds.
// ---------------------------------------------------------------------------

// ExpAlphaNext returns E_{t-1}[α_t(i)] = α(i)(1 + α(i) − γ), the
// conditional one-round expectation shared by both dynamics
// (Lemma 4.1(i), Eq. (1)).
func ExpAlphaNext(alpha, gamma float64) float64 {
	return alpha * (1 + alpha - gamma)
}

// VarAlphaBound returns the Lemma 4.1(i) upper bound on
// Var_{t-1}[α_t(i)]: α(i)/n for 3-Majority and α(i)(α(i)+γ)/n for
// 2-Choices.
func VarAlphaBound(d Dynamics, alpha, gamma, n float64) float64 {
	switch d {
	case ThreeMajority:
		return alpha / n
	case TwoChoices:
		return alpha * (alpha + gamma) / n
	default:
		return math.NaN()
	}
}

// ExpDeltaNext returns E_{t-1}[δ_t(i,j)] =
// δ(i,j)(1 + α(i) + α(j) − γ) (Lemma 4.1(ii), Eq. (3)).
func ExpDeltaNext(delta, alphaI, alphaJ, gamma float64) float64 {
	return delta * (1 + alphaI + alphaJ - gamma)
}

// VarDeltaBound returns the Lemma 4.1(ii) upper bound on
// Var_{t-1}[δ_t(i,j)].
func VarDeltaBound(d Dynamics, alphaI, alphaJ, gamma, n float64) float64 {
	s := alphaI + alphaJ
	switch d {
	case ThreeMajority:
		return 2 * s / n
	case TwoChoices:
		return s * (s + gamma) / n
	default:
		return math.NaN()
	}
}

// ExpGammaNextLowerBound returns the Lemma 4.1(iii) lower bound on
// E_{t-1}[γ_t]: γ + (1−γ)/n for 3-Majority and
// γ + (1−√γ)(1−γ)γ/n for 2-Choices. In particular the bound is always
// at least γ (γ_t is a submartingale, Eq. (2)).
func ExpGammaNextLowerBound(d Dynamics, gamma, n float64) float64 {
	switch d {
	case ThreeMajority:
		return gamma + (1-gamma)/n
	case TwoChoices:
		return gamma + (1-math.Sqrt(gamma))*(1-gamma)*gamma/n
	default:
		return math.NaN()
	}
}

// ---------------------------------------------------------------------------
// Definition 4.4: stopping-time classification and the paper's constants.
// ---------------------------------------------------------------------------

// Constants carries the universal constants of Definition 4.4. The
// paper proves its lemmas for the concrete values in Default.
type Constants struct {
	CAlphaUp   float64 // c↑_α
	CAlphaDown float64 // c↓_α
	CDeltaUp   float64 // c↑_δ
	CDeltaDown float64 // c↓_δ
	CGammaUp   float64 // c↑_γ
	CGammaDown float64 // c↓_γ
	CWeak      float64 // c_weak: i is weak when α(i) ≤ (1 − c_weak)·γ
	CActive    float64 // c_active: i is active when α(i) ≥ (1 − c_active)·γ₀
	CEta       float64 // c↑_η (2-Choices scaled bias, Definition 5.3)
}

// Default returns the constants the paper fixes below Definition 4.4
// (c↑_α = c↓_α = c_weak = 1/10, c↑_δ = c↓_δ = c_active = 1/20,
// c↑_γ = c↓_γ = 1/30) and c↑_η = 1/1000 from Definition 5.3.
func Default() Constants {
	return Constants{
		CAlphaUp:   1.0 / 10,
		CAlphaDown: 1.0 / 10,
		CDeltaUp:   1.0 / 20,
		CDeltaDown: 1.0 / 20,
		CGammaUp:   1.0 / 30,
		CGammaDown: 1.0 / 30,
		CWeak:      1.0 / 10,
		CActive:    1.0 / 20,
		CEta:       1.0 / 1000,
	}
}

// IsWeak reports whether an opinion with fraction alpha is weak at a
// configuration with norm gamma: α(i) ≤ (1 − c_weak)·γ
// (Definition 4.4(iv)).
func (c Constants) IsWeak(alpha, gamma float64) bool {
	return alpha <= (1-c.CWeak)*gamma
}

// IsActive reports whether an opinion with fraction alpha is active
// relative to the initial norm gamma0: α(i) ≥ (1 − c_active)·γ₀
// (Definition 4.4(v)).
func (c Constants) IsActive(alpha, gamma0 float64) bool {
	return alpha >= (1-c.CActive)*gamma0
}

// WeakSet returns the indices of the supported opinions that are weak
// at configuration v. The most popular opinion is never weak
// (max α(i) ≥ γ always).
func (c Constants) WeakSet(v *population.Vector) []int {
	gamma := v.Gamma()
	var weak []int
	for i := 0; i < v.K(); i++ {
		if v.Count(i) > 0 && c.IsWeak(v.Alpha(i), gamma) {
			weak = append(weak, i)
		}
	}
	return weak
}

// ScaledBias returns η(i,j) = δ(i,j)/√max{α(i), α(j)}, the 2-Choices
// bias measure of Definition 5.3. It returns 0 when both opinions are
// extinct.
func ScaledBias(v *population.Vector, i, j int) float64 {
	m := math.Max(v.Alpha(i), v.Alpha(j))
	if m == 0 {
		return 0
	}
	return v.Bias(i, j) / math.Sqrt(m)
}

// ---------------------------------------------------------------------------
// §3.2–3.3: Bernstein condition and the Freedman-type inequality.
// ---------------------------------------------------------------------------

// BernsteinMGFBound returns the (D, s)-Bernstein moment-generating-
// function bound exp(λ²s/2 / (1 − |λ|D/3)) of Definition 3.3, and
// ok = false when |λ|·D ≥ 3 (outside the condition's domain).
func BernsteinMGFBound(lambda, d, s float64) (bound float64, ok bool) {
	if math.Abs(lambda)*d >= 3 {
		return math.Inf(1), false
	}
	return math.Exp(lambda * lambda * s / 2 / (1 - math.Abs(lambda)*d/3)), true
}

// FreedmanTail returns the Corollary 3.8 tail bound
// exp(−h²/2 / (T·s + h·D/3)) on Pr[∃t ≤ T: X_t − X_0 ≥ h] for a
// supermartingale whose one-step increments satisfy the one-sided
// (D, s)-Bernstein condition.
func FreedmanTail(h, t, s, d float64) float64 {
	if h <= 0 {
		return 1
	}
	return math.Exp(-(h * h / 2) / (t*s + h*d/3))
}

// BernsteinParamsAlpha returns the (D, s) Bernstein parameters that
// Lemma 4.2(i) establishes for the centered increment
// α_t(i) − E[α_t(i)]: D = 1/n for both dynamics, s = α(i)/n for
// 3-Majority and α(i)(α(i)+γ)/n for 2-Choices.
func BernsteinParamsAlpha(dyn Dynamics, alpha, gamma, n float64) (d, s float64) {
	return 1 / n, VarAlphaBound(dyn, alpha, gamma, n)
}

// BernsteinParamsDelta returns the (D, s) parameters of Lemma 4.2(ii)
// for the centered bias increment: D = 2/n.
func BernsteinParamsDelta(dyn Dynamics, alphaI, alphaJ, gamma, n float64) (d, s float64) {
	return 2 / n, VarDeltaBound(dyn, alphaI, alphaJ, gamma, n)
}

// BernsteinParamsGamma returns the one-sided (D, s) parameters of
// Lemma 4.2(iii) for γ_{t-1} − γ_t: D = 2√γ/n, s = 4γ^{1.5}/n for
// 3-Majority and 8γ²/n for 2-Choices.
func BernsteinParamsGamma(dyn Dynamics, gamma, n float64) (d, s float64) {
	d = 2 * math.Sqrt(gamma) / n
	switch dyn {
	case ThreeMajority:
		s = 4 * math.Pow(gamma, 1.5) / n
	case TwoChoices:
		s = 8 * gamma * gamma / n
	default:
		s = math.NaN()
	}
	return d, s
}

// ---------------------------------------------------------------------------
// Theorem-level predictors: the shapes the experiments normalize by.
// ---------------------------------------------------------------------------

// ConsensusTimeShape returns the paper's Theorem 1.1 consensus-time
// shape (poly-log factors included, constants set to 1):
// min{k·ln n, √n·(ln n)²} for 3-Majority and min{k·ln n, n·(ln n)³}
// for 2-Choices.
func ConsensusTimeShape(d Dynamics, n, k float64) float64 {
	ln := math.Log(n)
	switch d {
	case ThreeMajority:
		return math.Min(k*ln, math.Sqrt(n)*ln*ln)
	case TwoChoices:
		return math.Min(k*ln, n*ln*ln*ln)
	default:
		return math.NaN()
	}
}

// ConsensusTimeFromGamma returns ln(n)/γ₀, the Theorem 2.1 shape for
// the consensus time from a configuration with norm γ₀.
func ConsensusTimeFromGamma(n, gamma0 float64) float64 {
	return math.Log(n) / gamma0
}

// GammaThreshold returns the γ level above which Theorem 2.1 applies:
// C·ln(n)/√n for 3-Majority and C·(ln n)²/n for 2-Choices, with C = 1.
func GammaThreshold(d Dynamics, n float64) float64 {
	ln := math.Log(n)
	switch d {
	case ThreeMajority:
		return ln / math.Sqrt(n)
	case TwoChoices:
		return ln * ln / n
	default:
		return math.NaN()
	}
}

// NormGrowthTimeShape returns the Theorem 2.2 shape of the time for γ
// to reach the GammaThreshold level from any configuration:
// √n·(ln n)² for 3-Majority and n·(ln n)³ for 2-Choices.
func NormGrowthTimeShape(d Dynamics, n float64) float64 {
	ln := math.Log(n)
	switch d {
	case ThreeMajority:
		return math.Sqrt(n) * ln * ln
	case TwoChoices:
		return n * ln * ln * ln
	default:
		return math.NaN()
	}
}

// PluralityMargin returns the Theorem 2.6 initial-margin shape (with
// C = 1) that guarantees plurality consensus: √(ln n/n) for 3-Majority
// and √(α₁·ln n/n) for 2-Choices, where alpha1 is the fraction of the
// most popular opinion.
func PluralityMargin(d Dynamics, n, alpha1 float64) float64 {
	switch d {
	case ThreeMajority:
		return math.Sqrt(math.Log(n) / n)
	case TwoChoices:
		return math.Sqrt(alpha1 * math.Log(n) / n)
	default:
		return math.NaN()
	}
}

// LowerBoundRounds returns the Theorem 2.7 lower-bound shape Ω(k)
// (constant 1) on the consensus time from the balanced configuration,
// valid for k ≤ c√(n/ln n) (3-Majority) resp. k ≤ c·n/ln n (2-Choices).
func LowerBoundRounds(k float64) float64 { return k }

// RemainingOpinionsBound returns the BCEKMN17 bound cited as
// Remark 2.5: after T rounds of 3-Majority at most O(n·ln n/T)
// opinions remain (constant 1).
func RemainingOpinionsBound(n, t float64) float64 {
	if t <= 0 {
		return n
	}
	return n * math.Log(n) / t
}

// RGamma returns the per-round additive drift parameter R_γ of
// Lemma 5.13 used in the optional-stopping bound on the γ hitting
// time: ε/n for 3-Majority and ε²/(3n²) for 2-Choices, valid for γ
// targets x_γ ≤ 1 − ε.
func RGamma(d Dynamics, eps, n float64) float64 {
	switch d {
	case ThreeMajority:
		return eps / n
	case TwoChoices:
		return eps * eps / (3 * n * n)
	default:
		return math.NaN()
	}
}

// GammaHitTimeBound returns the explicit Lemma 5.12 bound on the
// expected time for γ to reach x_γ from any configuration:
// (64e²/ε)·x_γ·n for 3-Majority and (192e²/ε²)·x_γ·n² for 2-Choices,
// valid for C²·lg²n/n ≤ x_γ ≤ 1 − ε. These are the paper's actual
// constants, so measured hitting times can be compared against them
// directly (they should sit far below the bound).
func GammaHitTimeBound(d Dynamics, eps, xGamma, n float64) float64 {
	e2 := math.E * math.E
	switch d {
	case ThreeMajority:
		return 64 * e2 / eps * xGamma * n
	case TwoChoices:
		return 192 * e2 / (eps * eps) * xGamma * n * n
	default:
		return math.NaN()
	}
}
