package theory

import "plurality/internal/population"

// Unset marks a stopping time that has not fired yet.
const Unset = -1

// StoppingTimes tracks, along one run, the first hitting rounds of the
// Definition 4.4 stopping times for a fixed pair of opinions (I, J)
// and for the norm γ. Attach Observe to the engine's per-round
// observer; every field is Unset until its event first occurs.
//
// Reference values (α(I), α(J), δ(I,J), γ at round 0) are captured on
// the first Observe call, matching the paper's convention that the
// thresholds are relative to the initial configuration.
type StoppingTimes struct {
	// C supplies the universal constants; zero value is replaced by
	// Default() on first use.
	C Constants
	// I and J are the tracked opinions; the paper's convention δ ≥ 0
	// is NOT assumed — δ-thresholds use the round-0 bias as reference.
	I, J int

	// Reference values captured at round 0.
	Alpha0I, Alpha0J, Delta0, Gamma0 float64

	// First hitting rounds (Definition 4.4); Unset until they occur.
	TauUpI, TauDownI         int // τ↑_I, τ↓_I: α(I) vs (1±c)·α0(I)
	TauUpJ, TauDownJ         int // τ↑_J, τ↓_J
	TauWeakI, TauWeakJ       int // τweak: α ≤ (1−c_weak)·γ_t
	TauVanishI, TauVanishJ   int // first round with zero supporters
	TauUpGamma, TauDownGamma int // τ↑_γ, τ↓_γ: γ vs (1±c)·γ0
	TauUpDelta, TauDownDelta int // τ↑_δ, τ↓_δ: δ vs (1±c)·δ0
	TauAbsDelta              int // τ+_δ: |δ| ≥ XDelta

	// XDelta is the |δ| threshold for TauAbsDelta (Definition 4.4(ii));
	// 0 disables that stopping time.
	XDelta float64

	started bool
}

// NewStoppingTimes returns a tracker for opinions i and j with the
// paper's default constants.
func NewStoppingTimes(i, j int) *StoppingTimes {
	st := &StoppingTimes{C: Default(), I: i, J: j}
	st.reset()
	return st
}

func (st *StoppingTimes) reset() {
	st.TauUpI, st.TauDownI = Unset, Unset
	st.TauUpJ, st.TauDownJ = Unset, Unset
	st.TauWeakI, st.TauWeakJ = Unset, Unset
	st.TauVanishI, st.TauVanishJ = Unset, Unset
	st.TauUpGamma, st.TauDownGamma = Unset, Unset
	st.TauUpDelta, st.TauDownDelta = Unset, Unset
	st.TauAbsDelta = Unset
	st.started = false
}

// Observe processes the configuration at the given round. Call it for
// round 0 first (it captures the reference values there) and then once
// per round; it is shaped to slot into core.RunConfig.Observer and
// never requests a stop.
func (st *StoppingTimes) Observe(round int, v *population.Vector) bool {
	if (st.C == Constants{}) {
		st.C = Default()
	}
	if !st.started {
		st.started = true
		st.Alpha0I = v.Alpha(st.I)
		st.Alpha0J = v.Alpha(st.J)
		st.Delta0 = v.Bias(st.I, st.J)
		st.Gamma0 = v.Gamma()
	}
	gamma := v.Gamma()
	alphaI := v.Alpha(st.I)
	alphaJ := v.Alpha(st.J)
	delta := v.Bias(st.I, st.J)

	hit := func(field *int, cond bool) {
		if *field == Unset && cond {
			*field = round
		}
	}
	hit(&st.TauUpI, alphaI >= (1+st.C.CAlphaUp)*st.Alpha0I)
	hit(&st.TauDownI, alphaI <= (1-st.C.CAlphaDown)*st.Alpha0I)
	hit(&st.TauUpJ, alphaJ >= (1+st.C.CAlphaUp)*st.Alpha0J)
	hit(&st.TauDownJ, alphaJ <= (1-st.C.CAlphaDown)*st.Alpha0J)
	hit(&st.TauWeakI, st.C.IsWeak(alphaI, gamma))
	hit(&st.TauWeakJ, st.C.IsWeak(alphaJ, gamma))
	hit(&st.TauVanishI, v.Count(st.I) == 0)
	hit(&st.TauVanishJ, v.Count(st.J) == 0)
	hit(&st.TauUpGamma, gamma >= (1+st.C.CGammaUp)*st.Gamma0)
	hit(&st.TauDownGamma, gamma <= (1-st.C.CGammaDown)*st.Gamma0)
	hit(&st.TauUpDelta, delta >= (1+st.C.CDeltaUp)*st.Delta0)
	hit(&st.TauDownDelta, delta <= (1-st.C.CDeltaDown)*st.Delta0)
	if st.XDelta > 0 {
		abs := delta
		if abs < 0 {
			abs = -abs
		}
		hit(&st.TauAbsDelta, abs >= st.XDelta)
	}
	return false
}
