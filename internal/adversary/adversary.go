package adversary

import (
	"fmt"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// Adversary corrupts up to its budget of vertices after each round.
type Adversary interface {
	// Name identifies the strategy.
	Name() string
	// Corrupt mutates v, changing the opinions of at most F vertices,
	// and preserves the population invariants.
	Corrupt(round int, r *rng.Rand, v *population.Vector)
}

// PostRound adapts an Adversary to the core engine's PostRound hook.
func PostRound(a Adversary) func(round int, r *rng.Rand, v *population.Vector) {
	if a == nil {
		return nil
	}
	return func(round int, r *rng.Rand, v *population.Vector) {
		a.Corrupt(round, r, v)
	}
}

// Hinder is the strongest stalling strategy against consensus on a
// complete graph: every round it moves up to F vertices from the
// current plurality opinion to the smallest surviving rival, pushing
// the configuration back toward balance. (It never revives extinct
// opinions, preserving validity.)
type Hinder struct {
	// F is the per-round corruption budget.
	F int64
}

var _ Adversary = Hinder{}

// Name implements Adversary.
func (a Hinder) Name() string { return fmt.Sprintf("hinder-F%d", a.F) }

// Corrupt implements Adversary.
func (a Hinder) Corrupt(_ int, _ *rng.Rand, v *population.Vector) {
	if a.F <= 0 {
		return
	}
	top, topCount := v.MaxOpinion()
	weakest, weakestCount := weakestRival(v, top)
	if weakest == -1 {
		return // consensus already; nothing to stall without reviving
	}
	move := a.F
	// Never invert the order: moving more than half the gap would make
	// the "weakest" the new plurality, which helps rather than hinders.
	if gap := (topCount - weakestCount) / 2; move > gap {
		move = gap
	}
	if move <= 0 {
		return
	}
	v.Move(top, weakest, move)
}

// weakestRival returns the smallest surviving opinion other than top,
// or -1 when top is the only live opinion. O(live).
func weakestRival(v *population.Vector, top int) (weakest int, count int64) {
	weakest = -1
	v.ForEachLive(func(i int, c int64) {
		if i == top {
			return
		}
		if weakest == -1 || c < count {
			weakest, count = i, c
		}
	})
	return weakest, count
}

// Help accelerates consensus: every round it moves up to F vertices
// from the smallest surviving opinion to the plurality. It serves as
// the control strategy in the adversary experiments.
type Help struct {
	// F is the per-round corruption budget.
	F int64
}

var _ Adversary = Help{}

// Name implements Adversary.
func (a Help) Name() string { return fmt.Sprintf("help-F%d", a.F) }

// Corrupt implements Adversary.
func (a Help) Corrupt(_ int, _ *rng.Rand, v *population.Vector) {
	if a.F <= 0 {
		return
	}
	top, _ := v.MaxOpinion()
	weakest, weakestCount := weakestRival(v, top)
	if weakest == -1 {
		return
	}
	move := a.F
	if move > weakestCount {
		move = weakestCount
	}
	v.Move(weakest, top, move)
}

// Scatter corrupts F uniformly random vertices to uniformly random
// surviving opinions — unbiased noise rather than a directed attack.
type Scatter struct {
	// F is the per-round corruption budget.
	F int64
}

var _ Adversary = Scatter{}

// Name implements Adversary.
func (a Scatter) Name() string { return fmt.Sprintf("scatter-F%d", a.F) }

// Corrupt implements Adversary.
func (a Scatter) Corrupt(_ int, r *rng.Rand, v *population.Vector) {
	if a.F <= 0 || v.Live() < 2 {
		return
	}
	n := v.N()
	for m := int64(0); m < a.F; m++ {
		// A uniformly random vertex belongs to opinion i with
		// probability count(i)/n; only live opinions hold vertices, and
		// the random destination is drawn from the CURRENT live set, so
		// extinct opinions are never revived.
		live := v.LiveIndices()
		target := r.Int63n(n)
		from := -1
		var acc int64
		for _, i := range live {
			acc += v.Count(int(i))
			if target < acc {
				from = int(i)
				break
			}
		}
		to := int(live[r.Intn(len(live))])
		if from == to || v.Count(from) == 0 {
			continue
		}
		v.Move(from, to, 1)
	}
}
