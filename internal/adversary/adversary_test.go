package adversary

import (
	"strings"
	"testing"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/rng"
)

func TestNames(t *testing.T) {
	for _, a := range []Adversary{Hinder{F: 5}, Help{F: 5}, Scatter{F: 5}} {
		if a.Name() == "" || !strings.Contains(a.Name(), "F5") {
			t.Errorf("bad name %q", a.Name())
		}
	}
}

func TestPostRoundNil(t *testing.T) {
	if PostRound(nil) != nil {
		t.Fatal("PostRound(nil) should be nil")
	}
	hook := PostRound(Hinder{F: 1})
	if hook == nil {
		t.Fatal("PostRound of an adversary should be non-nil")
	}
	v := population.MustFromCounts([]int64{10, 2})
	hook(1, rng.New(1), v)
	if v.N() != 12 {
		t.Fatal("hook broke population invariants")
	}
}

func TestHinderMovesTowardBalance(t *testing.T) {
	v := population.MustFromCounts([]int64{80, 20})
	Hinder{F: 10}.Corrupt(1, rng.New(1), v)
	if v.Count(0) != 70 || v.Count(1) != 30 {
		t.Fatalf("counts = %v", v.Counts())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHinderNeverInvertsOrder(t *testing.T) {
	// Budget larger than half the gap must be clipped.
	v := population.MustFromCounts([]int64{60, 50})
	Hinder{F: 100}.Corrupt(1, rng.New(1), v)
	if v.Count(0) < v.Count(1) {
		t.Fatalf("hinder inverted the plurality: %v", v.Counts())
	}
	if v.Count(0) != 55 || v.Count(1) != 55 {
		t.Fatalf("expected perfect balance, got %v", v.Counts())
	}
}

func TestHinderNeverRevivesExtinct(t *testing.T) {
	v := population.MustFromCounts([]int64{80, 0, 20})
	Hinder{F: 5}.Corrupt(1, rng.New(1), v)
	if v.Count(1) != 0 {
		t.Fatalf("extinct opinion revived: %v", v.Counts())
	}
}

func TestHinderNoopAtConsensus(t *testing.T) {
	v := population.MustFromCounts([]int64{100, 0})
	Hinder{F: 5}.Corrupt(1, rng.New(1), v)
	if v.Count(0) != 100 {
		t.Fatalf("consensus perturbed: %v", v.Counts())
	}
}

func TestHinderZeroBudget(t *testing.T) {
	v := population.MustFromCounts([]int64{80, 20})
	Hinder{F: 0}.Corrupt(1, rng.New(1), v)
	if v.Count(0) != 80 {
		t.Fatal("zero-budget adversary acted")
	}
}

func TestHelpConcentrates(t *testing.T) {
	v := population.MustFromCounts([]int64{80, 15, 5})
	Help{F: 10}.Corrupt(1, rng.New(1), v)
	if v.Count(0) != 85 || v.Count(2) != 0 {
		t.Fatalf("counts = %v", v.Counts())
	}
	// Budget clips at the donor's supply.
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScatterPreservesInvariants(t *testing.T) {
	r := rng.New(2)
	v := population.MustFromCounts([]int64{50, 30, 20, 0})
	for round := 0; round < 100; round++ {
		Scatter{F: 7}.Corrupt(round, r, v)
		if err := v.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if v.Count(3) != 0 {
			t.Fatalf("scatter revived extinct opinion: %v", v.Counts())
		}
	}
}

func TestScatterSingleLiveNoop(t *testing.T) {
	v := population.MustFromCounts([]int64{100, 0})
	Scatter{F: 5}.Corrupt(1, rng.New(3), v)
	if v.Count(0) != 100 {
		t.Fatal("scatter acted at consensus")
	}
}

// TestHinderDelaysConsensus is the integration check: a hindering
// adversary must slow 3-Majority down measurably, and a large enough
// budget must stall it entirely (cf. GL18's F = O(√n/k^1.5) threshold).
func TestHinderDelaysConsensus(t *testing.T) {
	const n, k = 2000, 2
	run := func(f int64, seed uint64) core.RunResult {
		v := population.Balanced(n, k)
		return core.Run(rng.New(seed), core.ThreeMajority{}, v, core.RunConfig{
			MaxRounds: 2000,
			PostRound: PostRound(Hinder{F: f}),
		})
	}
	var freeRounds, slowRounds int
	const trials = 5
	for i := uint64(0); i < trials; i++ {
		r0 := run(0, 10+i)
		if !r0.Consensus {
			t.Fatal("unhindered run failed to converge")
		}
		freeRounds += r0.Rounds
		r1 := run(5, 20+i)
		slowRounds += r1.Rounds
	}
	if slowRounds <= freeRounds {
		t.Errorf("hindered rounds %d not larger than free %d", slowRounds, freeRounds)
	}
	// An overwhelming budget (≥ n/4 per round) stalls the dynamics.
	stall := run(n/4, 99)
	if stall.Consensus {
		t.Error("consensus despite overwhelming adversary")
	}
}

// TestHelpAcceleratesConsensus: the helping control shortens runs.
func TestHelpAcceleratesConsensus(t *testing.T) {
	const n, k = 5000, 16
	var free, helped int
	for i := uint64(0); i < 5; i++ {
		v := population.Balanced(n, k)
		r0 := core.Run(rng.New(30+i), core.ThreeMajority{}, v, core.RunConfig{MaxRounds: 100000})
		free += r0.Rounds
		v = population.Balanced(n, k)
		r1 := core.Run(rng.New(40+i), core.ThreeMajority{}, v, core.RunConfig{
			MaxRounds: 100000,
			PostRound: PostRound(Help{F: 50}),
		})
		if !r1.Consensus {
			t.Fatal("helped run failed")
		}
		helped += r1.Rounds
	}
	if helped >= free {
		t.Errorf("helped rounds %d not smaller than free %d", helped, free)
	}
}
