// Package adversary implements the bounded adversary of the paper's
// §2.5 (studied for 3-Majority by Ghaffari & Lengler, PODC 2018): after
// every round the adversary may corrupt the opinions of up to F
// vertices, F = o(n). GL18 show 3-Majority still reaches (almost)
// consensus for F = O(√n/k^1.5); the `adv` experiment measures how the
// consensus delay grows with F and where the process stalls.
//
// Because the dynamics run on the complete graph, an adversary
// strategy is just a bounded mutation of the opinion-count vector; the
// strategies plug into core.RunConfig.PostRound.
//
// The contract above is owned by DESIGN.md §"The sparse live-opinion
// engine".
package adversary
