package analytic

import (
	"fmt"
	"math"
)

// Check is one cross-validation comparison: a held-out simulated
// observation against the model's prediction interval for the same
// configuration.
type Check struct {
	Observation Observation `json:"observation"`
	Prediction  Prediction  `json:"prediction"`
	Hit         bool        `json:"hit"` // observed median inside [RoundsLo, RoundsHi]
}

// Report is the cross-validation result the CI harness gates on.
type Report struct {
	ModelVersion string  `json:"model_version"`
	Confidence   float64 `json:"confidence"`
	Checks       []Check `json:"checks"`
	Hits         int     `json:"hits"`
}

// CrossValidate scores held-out observations against the model's
// prediction intervals. A prediction failure (unknown dynamics,
// degenerate densities) is an error — a model that cannot answer a
// simulable configuration must fail the harness, not skip the point.
func (m *Model) CrossValidate(obs []Observation) (Report, error) {
	rep := Report{ModelVersion: m.Version, Confidence: m.Confidence}
	for _, o := range obs {
		p, err := m.Predict(o.Dynamics, o.N, o.Gamma0, o.Delta)
		if err != nil {
			return Report{}, fmt.Errorf("analytic: cross-validation point (%s n=%v): %w", o.Dynamics, o.N, err)
		}
		hit := o.Rounds >= p.RoundsLo && o.Rounds <= p.RoundsHi
		if hit {
			rep.Hits++
		}
		rep.Checks = append(rep.Checks, Check{Observation: o, Prediction: p, Hit: hit})
	}
	return rep, nil
}

// HitRate is the fraction of checks whose observation fell inside the
// prediction interval (1 for an empty report).
func (r Report) HitRate() float64 {
	if len(r.Checks) == 0 {
		return 1
	}
	return float64(r.Hits) / float64(len(r.Checks))
}

// Pass reports whether observed values fell outside the interval no
// more often than the nominal rate allows: hit-rate ≥ confidence,
// with the integer-count slack of a finite grid (a grid of m points
// cannot resolve a miss-rate finer than 1/m, so the threshold rounds
// the allowed misses up to the nearest whole check).
func (r Report) Pass() bool {
	// The epsilon absorbs float noise like (1-0.95)*20 = 1.0000…9,
	// which a bare Ceil would round to 2 allowed misses.
	allowedMisses := int(math.Ceil((1-r.Confidence)*float64(len(r.Checks)) - 1e-9))
	return len(r.Checks)-r.Hits <= allowedMisses
}
